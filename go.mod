module rasc

go 1.22
