// Command mopscheck model-checks mini-C programs against temporal safety
// properties, with both engines of §8:
//
//   - the regularly-annotated-set-constraint engine (the paper's
//     contribution; package pdm), and
//   - the post*-saturation pushdown checker (the MOPS baseline; package
//     mops).
//
// Usage:
//
//	mopscheck [-prop simple|full|taint|file.spec] [-engine rasc|mops|both] prog.c
//	mopscheck -table1
//
// -table1 regenerates Table 1: it generates the four synthetic packages at
// the paper's sizes, checks each executable with both engines against the
// full privilege property, and prints the timing table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/mops"
	"rasc/internal/pdm"
	"rasc/internal/spec"
	"rasc/internal/synth"
)

func main() {
	propFlag := flag.String("prop", "simple", "property: simple, full, taint, chroot, tempfile, or a .spec file")
	engine := flag.String("engine", "both", "engine: rasc, mops or both")
	entry := flag.String("entry", "main", "entry function")
	table1 := flag.Bool("table1", false, "regenerate Table 1 on synthetic packages")
	chop := flag.String("chop", "", "report the danger points (statements on some violating path) of the named function instead of checking")
	chopExact := flag.Bool("chop-exact", false, "report the exact interprocedural chop (post* ∩ pre*) instead of checking")
	flag.Parse()

	if *table1 {
		runTable1()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mopscheck [flags] prog.c  |  mopscheck -table1")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prop, events, err := resolveProperty(*propFlag)
	if err != nil {
		fatal(err)
	}

	if *chopExact {
		lines, err := mops.ChopLines(prog, prop, events, *entry)
		if err != nil {
			fatal(err)
		}
		if len(lines) == 0 {
			fmt.Println("no statement lies on a violating run")
			return
		}
		fmt.Println("statements on violating runs (post* ∩ pre*):")
		for _, l := range lines {
			fmt.Printf("  %s:%d\n", flag.Arg(0), l)
		}
		os.Exit(3)
	}
	if *chop != "" {
		lines, err := pdm.DangerLines(prog, prop, events, *chop)
		if err != nil {
			fatal(err)
		}
		if len(lines) == 0 {
			fmt.Printf("%s: no statement lies on a violating path\n", *chop)
			return
		}
		fmt.Printf("%s: statements on violating paths (forward ∩ backward chop):\n", *chop)
		for _, l := range lines {
			fmt.Printf("  %s:%d\n", flag.Arg(0), l)
		}
		os.Exit(3)
	}

	violating := false
	if *engine == "rasc" || *engine == "both" {
		t0 := time.Now()
		res, err := pdm.Check(prog, prop, events, *entry, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rasc: %d violation(s) in %v\n", len(res.Violations), time.Since(t0).Round(time.Millisecond))
		for _, v := range res.Violations {
			fmt.Println(" ", v)
			for _, tp := range v.Trace {
				arrow := "->"
				if tp.Enter {
					arrow = "=> call"
				}
				fmt.Printf("      %s %s:%d\n", arrow, tp.Fn, tp.Line)
			}
		}
		violating = violating || len(res.Violations) > 0
	}
	if *engine == "mops" || *engine == "both" {
		t0 := time.Now()
		res, err := mops.Check(prog, prop, events, *entry)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mops: violating=%v (%d error nodes) in %v\n",
			res.Violating, len(res.ErrorNodes), time.Since(t0).Round(time.Millisecond))
		violating = violating || res.Violating
	}
	if violating {
		os.Exit(3)
	}
}

func resolveProperty(name string) (*spec.Property, *minic.EventMap, error) {
	switch name {
	case "simple":
		return pdm.SimplePrivilegeProperty(), minic.PrivilegeEvents(), nil
	case "full":
		return pdm.FullPrivilegeProperty(), pdm.FullPrivilegeEvents(), nil
	case "taint":
		return bitvector.TaintProperty(), bitvector.TaintEvents(), nil
	case "chroot":
		return pdm.ChrootProperty(), pdm.ChrootEvents(), nil
	case "tempfile":
		return pdm.TempFileProperty(), pdm.TempFileEvents(), nil
	default:
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		prop, err := spec.Compile(string(src), spec.Options{})
		if err != nil {
			return nil, nil, err
		}
		// Custom specs use the full privilege event mapping by default.
		return prop, pdm.FullPrivilegeEvents(), nil
	}
}

func runTable1() {
	prop := pdm.FullPrivilegeProperty()
	events := pdm.FullPrivilegeEvents()
	fmt.Printf("%-18s %6s %9s %12s %12s\n", "Benchmark", "Size", "Programs", "RASC (s)", "MOPS (s)")
	for _, row := range synth.Table1() {
		var tRasc, tMops time.Duration
		anyViol := false
		for p := 0; p < row.Programs; p++ {
			cfg := row.Config
			cfg.Seed += int64(p) * 1000
			prog, err := minic.Parse(synth.Generate(cfg))
			if err != nil {
				fatal(err)
			}
			t0 := time.Now()
			res, err := pdm.Check(prog, prop, events, "", core.Options{})
			if err != nil {
				fatal(err)
			}
			tRasc += time.Since(t0)
			t0 = time.Now()
			mres, err := mops.Check(prog, prop, events, "")
			if err != nil {
				fatal(err)
			}
			tMops += time.Since(t0)
			if (len(res.Violations) > 0) != mres.Violating {
				fmt.Fprintf(os.Stderr, "WARNING: engines disagree on %s program %d\n", row.Name, p)
			}
			anyViol = anyViol || mres.Violating
		}
		fmt.Printf("%-18s %5dk %9d %12.2f %12.2f   violating=%v\n",
			row.Name, row.Lines/1000, row.Programs,
			tRasc.Seconds(), tMops.Seconds(), anyViol)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mopscheck:", err)
	os.Exit(1)
}
