package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/server"
)

// serverOpts carries the -server client mode's inputs.
type serverOpts struct {
	addr     string
	program  string
	timeout  time.Duration
	paths    []string
	checkers string
	entries  []string
	format   string
	failOn   string
	explain  bool
}

// runServer is gocheck's client mode: read the local file set, diff it
// against the daemon's manifest, post the minimal delta, and render the
// returned report through the same renderers as an in-process run —
// output and exit codes are identical to a one-shot gocheck over the
// same sources.
func runServer(o serverOpts) int {
	threshold, ok := parseThreshold(o.failOn)
	if !ok {
		fmt.Fprintf(os.Stderr, "gocheck: unknown -fail-on severity %q\n", o.failOn)
		return 2
	}

	files, err := analysis.ReadPathFiles(o.paths)
	if err != nil {
		return fail(err)
	}
	var checkerNames []string
	if o.checkers != "" && o.checkers != "all" {
		for _, name := range strings.Split(o.checkers, ",") {
			if name = strings.TrimSpace(name); name != "" {
				checkerNames = append(checkerNames, name)
			}
		}
	}

	// The client retries a connection-refused failure once with backoff
	// by default, so a daemon mid-restart doesn't fail the check; server
	// errors come back tagged with the request's trace ID for log lookup.
	c := server.NewClientWith(o.addr, server.ClientOptions{Timeout: o.timeout})
	rep, err := c.CheckFiles(o.program, files, server.CheckRequest{
		Checkers: checkerNames,
		Entries:  o.entries,
		Explain:  o.explain,
	})
	if err != nil {
		return fail(err)
	}
	if err := render(rep, o.format); err != nil {
		if _, unknown := err.(unknownFormatError); unknown {
			fmt.Fprintln(os.Stderr, "gocheck:", err)
			return 2
		}
		return fail(err)
	}
	if rep.HasFindingsAtLeast(threshold) {
		return 3
	}
	return 0
}
