// Command gocheck is the package-level static-analysis driver for Go
// sources: it loads files, directories or recursive dir/... trees,
// translates them into the toolkit's intermediate form, and runs the
// registered API-usage checkers (regularly-annotated-set-constraint
// properties) concurrently over the package's entry functions.
//
// Usage:
//
//	gocheck [-checkers all|name,...] [-entry fn,...]
//	        [-format text|json|sarif|github] [-fail-on error|warning|note]
//	        [-parallel N] [-cache-dir dir] [-skeleton-cache=false]
//	        [-trace-out f.json] [-metrics-json f.json] [-explain] [-progress]
//	        [-cpuprofile f.prof] [-memprofile f.prof] path...
//	gocheck -server addr [-program name] [-server-timeout 30s] path...
//	gocheck -list
//	gocheck -speclint [-checkers all|name,...]
//
// Diagnostics carry file:line positions from the original Go source and
// witness traces (two traces for race and lockorder findings, one per
// goroutine). A //rasc:ignore or //rasc:ignore=checker,... line comment
// suppresses findings reported on that line; //rasc:ignore-file[=...]
// suppresses a whole file. The github format emits ::error/::warning
// workflow commands for inline pull-request annotations. Exit status is
// 3 when findings at or above the -fail-on severity remain, 1 on
// errors, 2 on usage errors.
//
// -cache-dir enables the incremental result cache: job results are
// content-keyed by function summaries (internal/ir), so an unchanged
// package re-analyzes from disk without solving anything, and an edit
// re-solves only the edited function's SCC and its callers. A one-line
// cache summary goes to stderr; the report itself is byte-identical to
// a cacheless run. With the cache on, solved constraint skeletons are
// additionally serialized as frozen snapshots (-skeleton-cache, default
// true): a cold process whose source is unchanged reconstructs each
// entry's solved base layer directly from bytes instead of translating
// and re-solving it. Corrupt or version-skewed snapshots demote to a
// live build, never a wrong report.
//
// Observability: -trace-out writes a Chrome trace-event JSON of every
// driver phase (load, translate, ir.lower, skeleton builds, per-job
// solve and cache traffic, merge, render) viewable in Perfetto or
// chrome://tracing; -metrics-json writes a snapshot of the solver,
// skeleton, cache and driver metric registries; -explain attaches a
// derivation chain ("provenance") to every finding in the text, json
// and sarif formats; -progress prints coarse phase lines to stderr.
// None of these change the findings themselves: a run with all of them
// on reports byte-identical diagnostics to a plain run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rasc/internal/analysis"
	"rasc/internal/core"
	"rasc/internal/obs"
)

func main() {
	os.Exit(run())
}

// run carries the whole driver so that deferred profile writers execute
// before the process exits (os.Exit in main would skip them).
func run() int {
	checkersFlag := flag.String("checkers", "all", "comma-separated checker names, or all")
	entryFlag := flag.String("entry", "", "comma-separated entry functions (default: package roots)")
	format := flag.String("format", "text", "output format: text, json, sarif or github")
	failOn := flag.String("fail-on", "warning", "lowest severity that fails the run (error, warning or note)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "directory for the incremental result cache (empty = no cache)")
	skelCache := flag.Bool("skeleton-cache", true, "with -cache-dir, snapshot solved constraint skeletons for instant cold starts")
	list := flag.Bool("list", false, "list registered checkers and exit")
	speclint := flag.Bool("speclint", false, "lint the checkers' property specs and exit (3 on findings)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the analysis to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run's phases to this file")
	metricsJSON := flag.String("metrics-json", "", "write a JSON snapshot of the run's metric registry to this file")
	explain := flag.Bool("explain", false, "attach a derivation chain (provenance) to every finding")
	progress := flag.Bool("progress", false, "print coarse progress lines to stderr while analyzing")
	verbose := flag.Bool("verbose", false, "print secondary cache telemetry (skeleton snapshots) to stderr")
	serverAddr := flag.String("server", "", "check through a running gocheckd at this address instead of analyzing in-process")
	program := flag.String("program", "default", "with -server, the resident program name to check against")
	serverTimeout := flag.Duration("server-timeout", 0, "with -server, per-request HTTP timeout (0 = default 5m)")
	flag.Parse()

	if *list {
		if err := analysis.ListText(os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *speclint {
		checkers, err := analysis.Resolve(*checkersFlag)
		if err != nil {
			return fail(err)
		}
		findings := analysis.Speclint(checkers)
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) > 0 {
			return 3
		}
		fmt.Printf("gocheck: speclint clean over %d checker(s)\n", len(checkers))
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocheck [flags] path...  (gocheck -list for checkers)")
		return 2
	}
	checkers, err := analysis.Resolve(*checkersFlag)
	if err != nil {
		return fail(err)
	}
	var entries []string
	for _, e := range strings.Split(*entryFlag, ",") {
		if e = strings.TrimSpace(e); e != "" {
			entries = append(entries, e)
		}
	}

	if *serverAddr != "" {
		return runServer(serverOpts{
			addr:     *serverAddr,
			program:  *program,
			timeout:  *serverTimeout,
			paths:    flag.Args(),
			checkers: *checkersFlag,
			entries:  entries,
			format:   *format,
			failOn:   *failOn,
			explain:  *explain,
		})
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var cache *analysis.Cache
	if *cacheDir != "" {
		if cache, err = analysis.OpenCache(*cacheDir); err != nil {
			return fail(err)
		}
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	var registry *obs.Registry
	if *metricsJSON != "" {
		registry = obs.NewRegistry()
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr)
	}

	pkg, err := analysis.LoadPathsTraced(flag.Args(), tracer)
	if err != nil {
		return fail(err)
	}
	rep, err := analysis.Analyze(pkg, analysis.Config{
		Checkers:            checkers,
		Entries:             entries,
		Parallel:            *parallel,
		Opts:                core.Options{},
		Cache:               cache,
		NoSkeletonSnapshots: !*skelCache,
		Trace:               tracer,
		Metrics:             registry,
		Explain:             *explain,
		Progress:            prog,
	})
	if err != nil {
		return fail(err)
	}
	if rep.Cache != nil {
		// Cache telemetry goes to stderr and is then dropped from the
		// report, so every rendered format stays byte-identical across
		// cacheless, cold and warm runs.
		cs := rep.Cache
		fmt.Fprintf(os.Stderr, "gocheck: cache hits=%d misses=%d rate=%.1f%% resolved=%d/%d\n",
			cs.Hits, cs.Misses, cs.HitRate(), cs.ResolvedFunctions, cs.TotalFunctions)
		// Skeleton-snapshot telemetry is secondary: scripted consumers
		// only want it on request (-verbose); the counts always land in
		// -metrics-json as the snapshot.* counters.
		if *verbose && cs.SkeletonHits+cs.SkeletonMisses > 0 {
			fmt.Fprintf(os.Stderr, "gocheck: skeleton snapshots hits=%d misses=%d corrupt=%d\n",
				cs.SkeletonHits, cs.SkeletonMisses, cs.SkeletonCorrupt)
		}
		for _, n := range cs.Notes {
			fmt.Fprintf(os.Stderr, "gocheck: %s\n", n)
		}
		rep.Cache = nil
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		runtime.GC() // materialize live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}

	threshold, ok := parseThreshold(*failOn)
	if !ok {
		fmt.Fprintf(os.Stderr, "gocheck: unknown -fail-on severity %q\n", *failOn)
		return 2
	}

	rsp := tracer.Start("render")
	err = render(rep, *format)
	rsp.SetAttr("format", *format)
	rsp.Finish()
	if err != nil {
		if _, unknown := err.(unknownFormatError); unknown {
			fmt.Fprintln(os.Stderr, "gocheck:", err)
			return 2
		}
		return fail(err)
	}
	if err := writeObsOutputs(tracer, *traceOut, registry, *metricsJSON); err != nil {
		return fail(err)
	}
	if rep.HasFindingsAtLeast(threshold) {
		return 3
	}
	return 0
}

// writeObsOutputs flushes the trace and metrics files after rendering,
// so the trace covers every phase including render itself.
func writeObsOutputs(tracer *obs.Tracer, tracePath string, registry *obs.Registry, metricsPath string) error {
	if tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if registry != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := registry.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// parseThreshold maps a -fail-on value to a severity.
func parseThreshold(failOn string) (analysis.Severity, bool) {
	switch failOn {
	case "error":
		return analysis.SeverityError, true
	case "warning":
		return analysis.SeverityWarning, true
	case "note":
		return analysis.SeverityNote, true
	}
	return 0, false
}

// unknownFormatError marks a bad -format value (usage error, exit 2).
type unknownFormatError struct{ format string }

func (e unknownFormatError) Error() string { return fmt.Sprintf("unknown format %q", e.format) }

// render writes the report to stdout in the selected format. The same
// renderers serve in-process and -server runs, so both modes emit
// byte-identical output for identical reports.
func render(rep *analysis.Report, format string) error {
	switch format {
	case "text":
		return rep.Text(os.Stdout)
	case "json":
		return rep.JSON(os.Stdout)
	case "sarif":
		return rep.SARIF(os.Stdout)
	case "github":
		return rep.Github(os.Stdout)
	}
	return unknownFormatError{format}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "gocheck:", err)
	return 1
}
