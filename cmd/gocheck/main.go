// Command gocheck model-checks real Go source against API-usage
// properties, by translating the Go AST into the toolkit's intermediate
// form and running the regularly-annotated-set-constraint engine.
//
// Usage:
//
//	gocheck [-prop doublelock|fileleak|taint|file.spec] [-entry fn] file.go
//
// With -prop fileleak the report lists files possibly open when the entry
// function returns; otherwise property violations are reported with
// witness traces.
package main

import (
	"flag"
	"fmt"
	"os"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/gosrc"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

func main() {
	propFlag := flag.String("prop", "doublelock", "property: doublelock, fileleak, taint, or a .spec file")
	entry := flag.String("entry", "main", "entry function")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gocheck [flags] file.go")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var prop *spec.Property
	var events *minic.EventMap
	switch *propFlag {
	case "doublelock":
		prop, events = gosrc.DoubleLockProperty(), gosrc.DoubleLockEvents()
	case "fileleak":
		prop, events = gosrc.FileLeakProperty(), gosrc.FileLeakEvents()
	case "taint":
		prop, events = bitvector.TaintProperty(), bitvector.TaintEvents()
	default:
		specSrc, err := os.ReadFile(*propFlag)
		if err != nil {
			fatal(err)
		}
		prop, err = spec.Compile(string(specSrc), spec.Options{})
		if err != nil {
			fatal(err)
		}
		events = gosrc.DoubleLockEvents()
	}

	res, err := gosrc.Check(string(src), prop, events, *entry, core.Options{})
	if err != nil {
		fatal(err)
	}
	if *propFlag == "fileleak" {
		open := res.OpenInstancesAtExit(*entry)
		if len(open) == 0 {
			fmt.Println("no files possibly left open")
			return
		}
		fmt.Println("possibly left open at exit:", open)
		os.Exit(3)
	}
	if len(res.Violations) == 0 {
		fmt.Println("no violations")
		return
	}
	for _, v := range res.Violations {
		fmt.Printf("%s:%d: %s\n", flag.Arg(0), v.Line, v.String())
		for _, tp := range v.Trace {
			fmt.Printf("    via %s:%d\n", tp.Fn, tp.Line)
		}
	}
	os.Exit(3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocheck:", err)
	os.Exit(1)
}
