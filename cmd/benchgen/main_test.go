package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Two -bench-json runs with the same seed must produce byte-identical
// output apart from the wall-time fields: slices are sorted and no map
// iteration order leaks into the file, so committed BENCH_*.json diffs
// stay minimal.
func TestBenchJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full driver benchmark twice")
	}
	dir := t.TempDir()
	emit := func(name string) []byte {
		path := filepath.Join(dir, name)
		if err := runBench(path, 1, 2, 3, 12, 1); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "wall_ms")
		if c, ok := m["cache"].(map[string]any); ok {
			delete(c, "cold_wall_ms")
			delete(c, "warm_wall_ms")
			delete(c, "speedup")
			delete(c, "snapshot_cold_wall_ms")
			delete(c, "snapshot_cold_speedup")
		}
		if s, ok := m["server"].(map[string]any); ok {
			delete(s, "server_p50_ms")
			delete(s, "server_p99_ms")
			delete(s, "telemetry_p50_ms")
			delete(s, "telemetry_p99_ms")
			delete(s, "telemetry_overhead_pct")
		}
		out, err := json.Marshal(m) // map marshaling sorts keys
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := emit("a.json"), emit("b.json")
	if string(a) != string(b) {
		t.Fatalf("bench JSON not deterministic:\n%s\n%s", a, b)
	}
}
