// Command benchgen emits synthetic mini-C workloads (the Table 1
// substitution programs and taint workloads) to stdout.
//
// Usage:
//
//	benchgen [-kind priv|taint] [-seed N] [-functions N] [-stmts N]
//	         [-unsafe N] [-full]
//	benchgen -row "Sendmail 8.12.8"      # a Table 1 package's program
//	benchgen -list                        # list Table 1 rows
package main

import (
	"flag"
	"fmt"
	"os"

	"rasc/internal/synth"
)

func main() {
	kind := flag.String("kind", "priv", "workload kind: priv or taint")
	seed := flag.Int64("seed", 1, "random seed")
	functions := flag.Int("functions", 10, "number of functions")
	stmts := flag.Int("stmts", 30, "statements per function")
	unsafe := flag.Int("unsafe", 1, "injected violations")
	safe := flag.Int("safe", 3, "injected safe patterns")
	full := flag.Bool("full", false, "use the full (11-state) property vocabulary")
	row := flag.String("row", "", "generate a named Table 1 package program")
	list := flag.Bool("list", false, "list Table 1 rows")
	flag.Parse()

	if *list {
		for _, r := range synth.Table1() {
			fmt.Printf("%-18s %6d lines, %d program(s)\n", r.Name, r.Lines, r.Programs)
		}
		return
	}
	if *row != "" {
		for _, r := range synth.Table1() {
			if r.Name == *row {
				fmt.Print(synth.Generate(r.Config))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "benchgen: unknown row %q (try -list)\n", *row)
		os.Exit(1)
	}
	switch *kind {
	case "priv":
		fmt.Print(synth.Generate(synth.Config{
			Seed: *seed, Functions: *functions, StmtsPerFn: *stmts,
			CallProb: 0.12, BranchProb: 0.15, LoopProb: 0.06,
			SafePatterns: *safe, UnsafePatterns: *unsafe, FullProperty: *full,
		}))
	case "taint":
		fmt.Print(synth.GenerateTaint(synth.TaintConfig{
			Seed: *seed, Functions: *functions, StmtsPerFn: *stmts,
			CallProb: 0.12, Tainted: *unsafe, Cleaned: *safe,
		}))
	default:
		fmt.Fprintln(os.Stderr, "benchgen: unknown kind", *kind)
		os.Exit(2)
	}
}
