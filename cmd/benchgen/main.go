// Command benchgen emits synthetic mini-C workloads (the Table 1
// substitution programs and taint workloads) to stdout.
//
// Usage:
//
//	benchgen [-kind priv|taint|go] [-seed N] [-functions N] [-stmts N]
//	         [-unsafe N] [-full]
//	benchgen -kind go -gofiles 8 -outdir dir   # multi-file Go package
//	benchgen -row "Sendmail 8.12.8"      # a Table 1 package's program
//	benchgen -list                        # list Table 1 rows
//	benchgen -bench-json BENCH_analysis.json   # run the driver benchmark
//	benchgen -core-json BENCH_core.json [-iters N]   # solver microbenchmarks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/core"
	"rasc/internal/corebench"
	"rasc/internal/gosrc"
	"rasc/internal/obs"
	"rasc/internal/synth"
)

func main() {
	kind := flag.String("kind", "priv", "workload kind: priv or taint")
	seed := flag.Int64("seed", 1, "random seed")
	functions := flag.Int("functions", 10, "number of functions")
	stmts := flag.Int("stmts", 30, "statements per function")
	unsafe := flag.Int("unsafe", 1, "injected violations")
	safe := flag.Int("safe", 3, "injected safe patterns")
	full := flag.Bool("full", false, "use the full (11-state) property vocabulary")
	row := flag.String("row", "", "generate a named Table 1 package program")
	gofiles := flag.Int("gofiles", 4, "number of Go files (-kind go)")
	outdir := flag.String("outdir", "", "write -kind go files into this directory")
	list := flag.Bool("list", false, "list Table 1 rows")
	benchJSON := flag.String("bench-json", "", "generate a Go corpus, run the analysis driver, write timing/findings JSON to this path")
	coreJSON := flag.String("core-json", "", "run the solver-only microbenchmark suite, write timing JSON to this path")
	iters := flag.Int("iters", 5, "timed iterations per core microbenchmark (-core-json)")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBench(*benchJSON, *seed, *gofiles, *functions, *stmts, *unsafe); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if *coreJSON != "" {
		if err := runCoreBench(*coreJSON, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range synth.Table1() {
			fmt.Printf("%-18s %6d lines, %d program(s)\n", r.Name, r.Lines, r.Programs)
		}
		return
	}
	if *row != "" {
		for _, r := range synth.Table1() {
			if r.Name == *row {
				fmt.Print(synth.Generate(r.Config))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "benchgen: unknown row %q (try -list)\n", *row)
		os.Exit(1)
	}
	switch *kind {
	case "priv":
		fmt.Print(synth.Generate(synth.Config{
			Seed: *seed, Functions: *functions, StmtsPerFn: *stmts,
			CallProb: 0.12, BranchProb: 0.15, LoopProb: 0.06,
			SafePatterns: *safe, UnsafePatterns: *unsafe, FullProperty: *full,
		}))
	case "taint":
		fmt.Print(synth.GenerateTaint(synth.TaintConfig{
			Seed: *seed, Functions: *functions, StmtsPerFn: *stmts,
			CallProb: 0.12, Tainted: *unsafe, Cleaned: *safe,
		}))
	case "go":
		files := synth.GenerateGo(synth.GoConfig{
			Seed:          *seed,
			Files:         *gofiles,
			FuncsPerFile:  *functions,
			StmtsPerFn:    *stmts,
			UnsafePerFile: *unsafe,
		})
		if *outdir == "" {
			for _, f := range files {
				fmt.Printf("// ---- %s ----\n%s", f.Name, f.Src)
			}
			return
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		for _, f := range files {
			path := filepath.Join(*outdir, f.Name)
			if err := os.WriteFile(path, []byte(f.Src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			fmt.Println(path)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgen: unknown kind", *kind)
		os.Exit(2)
	}
}

// benchResult is the schema of the -bench-json report. Solver totals
// come from the driver's summed per-job constraint-system stats; the
// model-based checkers (race, lockorder) contribute findings but no
// constraints. Every field except the wall times is deterministic for a
// fixed seed: slices are sorted, and by_severity relies on
// encoding/json's sorted map-key rendering.
type benchResult struct {
	Corpus struct {
		Seed      int64 `json:"seed"`
		Files     int   `json:"files"`
		Functions int   `json:"functions"`
	} `json:"corpus"`
	WallMS     float64              `json:"wall_ms"`
	Jobs       int                  `json:"jobs"`
	Checkers   []string             `json:"checkers"`
	Findings   int                  `json:"findings"`
	BySeverity map[string]int       `json:"by_severity"`
	Solver     analysis.SolverStats `json:"solver"`
	// Cache measures the incremental cache: a cold run populating a fresh
	// cache directory, then a warm run over an identical fresh Package.
	// The warm run must hit on every lookup, re-solve zero functions and
	// reproduce the cold run's findings byte-for-byte (enforced, not just
	// recorded).
	Cache struct {
		ColdWallMS            float64 `json:"cold_wall_ms"`
		WarmWallMS            float64 `json:"warm_wall_ms"`
		Speedup               float64 `json:"speedup"`
		ColdResolvedFunctions int     `json:"cold_resolved_functions"`
		WarmResolvedFunctions int     `json:"warm_resolved_functions"`
		WarmHits              int     `json:"warm_hits"`
		WarmMisses            int     `json:"warm_misses"`
		WarmIdentical         bool    `json:"warm_identical"`
		// WarmStores counts records written during the warm run (0 on a
		// fully cached run) and ColdStores during the cold run, both from
		// the observability cache counters.
		ColdStores int64 `json:"cold_stores"`
		WarmStores int64 `json:"warm_stores"`
		// The snapshot-cold scenario is a fresh process image (fresh
		// Package, zero in-memory reuse) over a populated skeleton+result
		// cache: job results are served from the result cache, and every
		// entry's solved constraint skeleton is reconstructed from its
		// frozen snapshot — the per-entry stats memos are dropped first so
		// the snapshot decode path genuinely runs instead of being
		// shadowed by the memo. Findings must again be byte-identical to
		// the cold run, with every skeleton a snapshot hit (enforced).
		SnapshotColdWallMS float64 `json:"snapshot_cold_wall_ms"`
		// SnapshotColdSpeedup is cold_wall_ms / snapshot_cold_wall_ms.
		SnapshotColdSpeedup float64 `json:"snapshot_cold_speedup"`
		SnapshotHits        int     `json:"snapshot_hits"`
		SnapshotMisses      int     `json:"snapshot_misses"`
		SnapshotIdentical   bool    `json:"snapshot_identical"`
	} `json:"cache"`
	// Server measures the resident-engine (gocheckd) hot path over the
	// same corpus: an analysis.Engine backed by the populated cache
	// directory takes a full seed push, then a stream of single-file
	// edit requests toggling one tick function's body between two
	// variants. Once both variants have been seen, every job replays
	// from the engine's in-memory memo, so the steady-state latency is
	// what a warm gocheckd client pays per request. The tick function is
	// clean and excluded from the entry set, so every response must
	// reproduce the cold run's findings byte-for-byte, and steady-state
	// ticks must be fully memoized — both enforced, not just recorded.
	Server struct {
		Ticks      int     `json:"ticks"`
		P50MS      float64 `json:"server_p50_ms"`
		P99MS      float64 `json:"server_p99_ms"`
		MemoHits   int64   `json:"memo_hits"`
		MemoMisses int64   `json:"memo_misses"`
		Identical  bool    `json:"identical"`
		// The telemetry_* fields re-run the identical tick stream on a
		// second engine with the full telemetry stack on — a flight
		// recorder capturing every request, which also turns on
		// per-request tracing inside the engine — so the overhead number
		// is the disabled-vs-enabled delta on the same steady-state hot
		// path. The findings must again match the cold run byte-for-byte
		// (enforced): telemetry observes the analysis, never perturbs it.
		TelemetryP50MS       float64 `json:"telemetry_p50_ms"`
		TelemetryP99MS       float64 `json:"telemetry_p99_ms"`
		TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
		TelemetryIdentical   bool    `json:"telemetry_identical"`
	} `json:"server"`
	// SolverMetrics are the internal/obs hook counters from the main
	// (cacheless) run: solver work beyond the System-size totals in
	// "solver". All are deterministic for a fixed seed — each job solves
	// on its own System with a deterministic worklist, and summing across
	// concurrently finishing jobs is order-independent.
	SolverMetrics struct {
		WorklistPushes    int64 `json:"worklist_pushes"`
		WorklistHighWater int64 `json:"worklist_high_water"`
		EdgesAdded        int64 `json:"edges_added"`
		CycleEliminations int64 `json:"cycle_eliminations"`
		Compositions      int64 `json:"compositions"`
		SkeletonBuilds    int64 `json:"skeleton_builds"`
		SkeletonForks     int64 `json:"skeleton_forks"`
	} `json:"solver_metrics"`
}

// coreBenchResult is the schema of one -core-json suite entry. Times
// are per measured operation (best and mean of -iters runs after one
// warm-up); the solver stats identify the workload so that regressions
// in derived-fact counts are visible next to regressions in time.
type coreBenchResult struct {
	Name     string  `json:"name"`
	Desc     string  `json:"desc"`
	Iters    int     `json:"iters"`
	BestMS   float64 `json:"best_ms"`
	MeanMS   float64 `json:"mean_ms"`
	Vars     int     `json:"vars"`
	Edges    int     `json:"edges"`
	Reach    int     `json:"reach"`
	ConsN    int     `json:"cons_nodes"`
	Collapse int     `json:"collapsed"`
}

func runCoreBench(path string, iters int) error {
	if iters < 1 {
		iters = 1
	}
	var out struct {
		Iters     int               `json:"iters"`
		Scenarios []coreBenchResult `json:"scenarios"`
	}
	out.Iters = iters
	for _, sc := range corebench.Scenarios() {
		op := sc.Setup(core.Options{})
		st := op() // warm-up, and the workload fingerprint
		r := coreBenchResult{
			Name: sc.Name, Desc: sc.Desc, Iters: iters,
			Vars: st.Vars, Edges: st.Edges, Reach: st.Reach,
			ConsN: st.ConsNodes, Collapse: st.Collapsed,
		}
		var total float64
		for i := 0; i < iters; i++ {
			start := time.Now()
			op()
			ms := float64(time.Since(start).Microseconds()) / 1000
			total += ms
			if i == 0 || ms < r.BestMS {
				r.BestMS = ms
			}
		}
		r.MeanMS = total / float64(iters)
		out.Scenarios = append(out.Scenarios, r)
		fmt.Printf("%-40s best %8.3f ms  mean %8.3f ms  (%d reach, %d edges)\n",
			sc.Name, r.BestMS, r.MeanMS, r.Reach, r.Edges)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func runBench(path string, seed int64, files, functions, stmts, unsafe int) error {
	gen := synth.GenerateGo(synth.GoConfig{
		Seed:          seed,
		Files:         files,
		FuncsPerFile:  functions,
		StmtsPerFn:    stmts,
		UnsafePerFile: unsafe,
		Racy:          true,
	})
	in := make([]gosrc.File, len(gen))
	for i, f := range gen {
		in[i] = gosrc.File{Name: f.Name, Src: f.Src}
	}
	pkg, err := analysis.LoadFiles(in)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	start := time.Now()
	rep, err := analysis.Analyze(pkg, analysis.Config{Metrics: reg})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	var out benchResult
	out.Corpus.Seed = seed
	out.Corpus.Files = rep.Files
	out.Corpus.Functions = rep.Functions
	out.WallMS = float64(wall.Microseconds()) / 1000
	out.Jobs = rep.Jobs
	out.Checkers = rep.Checkers
	out.Findings = len(rep.Diagnostics)
	out.BySeverity = map[string]int{}
	for _, d := range rep.Diagnostics {
		out.BySeverity[d.Severity.String()]++
	}
	out.Solver = rep.Solver
	sm := obs.NewSolverMetrics(reg) // interned: returns the run's instruments
	pm := obs.NewPDMMetrics(reg)
	out.SolverMetrics.WorklistPushes = sm.WorklistPushes.Value()
	out.SolverMetrics.WorklistHighWater = sm.WorklistHigh.Value()
	out.SolverMetrics.EdgesAdded = sm.EdgesAdded.Value()
	out.SolverMetrics.CycleEliminations = sm.CycleElims.Value()
	out.SolverMetrics.Compositions = sm.Compositions.Value()
	out.SolverMetrics.SkeletonBuilds = pm.SkeletonBuilds.Value()
	out.SolverMetrics.SkeletonForks = pm.SkeletonForks.Value()

	if err := runCacheBench(&out, in); err != nil {
		return err
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d findings over %d jobs in %.1f ms (cache: cold %.1f ms, snapshot-cold %.1f ms [%.1fx], warm %.1f ms [%.1fx]; server p50 %.1f ms p99 %.1f ms; telemetry p50 %.1f ms [%+.1f%%])\n",
		path, out.Findings, out.Jobs, out.WallMS, out.Cache.ColdWallMS,
		out.Cache.SnapshotColdWallMS, out.Cache.SnapshotColdSpeedup,
		out.Cache.WarmWallMS, out.Cache.Speedup,
		out.Server.P50MS, out.Server.P99MS,
		out.Server.TelemetryP50MS, out.Server.TelemetryOverheadPct)
	return nil
}

// runCacheBench measures the incremental cache on the same corpus: a
// cold run into a fresh cache directory, then a warm run over a fresh
// Package (no in-process skeleton reuse), checking the warm run skips
// all solving and reproduces the findings exactly.
func runCacheBench(out *benchResult, in []gosrc.File) error {
	dir, err := os.MkdirTemp("", "benchgen-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cache, err := analysis.OpenCache(dir)
	if err != nil {
		return err
	}
	run := func(reg *obs.Registry) (*analysis.Report, float64, error) {
		pkg, err := analysis.LoadFiles(in)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		rep, err := analysis.Analyze(pkg, analysis.Config{Cache: cache, Metrics: reg})
		return rep, float64(time.Since(start).Microseconds()) / 1000, err
	}
	coldReg, warmReg := obs.NewRegistry(), obs.NewRegistry()
	cold, coldMS, err := run(coldReg)
	if err != nil {
		return err
	}
	warm, warmMS, err := run(warmReg)
	if err != nil {
		return err
	}
	coldJSON, _ := json.Marshal(cold.Diagnostics)
	warmJSON, _ := json.Marshal(warm.Diagnostics)
	out.Cache.ColdWallMS = coldMS
	out.Cache.WarmWallMS = warmMS
	if warmMS > 0 {
		out.Cache.Speedup = coldMS / warmMS
	}
	out.Cache.ColdResolvedFunctions = cold.Cache.ResolvedFunctions
	out.Cache.WarmResolvedFunctions = warm.Cache.ResolvedFunctions
	out.Cache.WarmHits = warm.Cache.Hits
	out.Cache.WarmMisses = warm.Cache.Misses
	out.Cache.WarmIdentical = string(coldJSON) == string(warmJSON)
	out.Cache.ColdStores = obs.NewCacheMetrics(coldReg).Stores.Value()
	out.Cache.WarmStores = obs.NewCacheMetrics(warmReg).Stores.Value()
	if !out.Cache.WarmIdentical {
		return fmt.Errorf("warm cached run changed the findings")
	}
	if warm.Cache.ResolvedFunctions != 0 || warm.Cache.Misses != 0 {
		return fmt.Errorf("warm cached run was not fully cached: %d misses, %d functions re-solved",
			warm.Cache.Misses, warm.Cache.ResolvedFunctions)
	}

	// Snapshot-cold: a fresh process image over the populated cache. The
	// per-entry stats memos are removed so the solved skeletons must be
	// reconstructed, which routes through the frozen-snapshot decoder; a
	// run that never touches the snapshot tier would measure nothing.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "entry-") && strings.HasSuffix(e.Name(), ".json") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	snap, snapMS, err := run(obs.NewRegistry())
	if err != nil {
		return err
	}
	snapJSON, _ := json.Marshal(snap.Diagnostics)
	out.Cache.SnapshotColdWallMS = snapMS
	if snapMS > 0 {
		out.Cache.SnapshotColdSpeedup = coldMS / snapMS
	}
	out.Cache.SnapshotHits = snap.Cache.SkeletonHits
	out.Cache.SnapshotMisses = snap.Cache.SkeletonMisses
	out.Cache.SnapshotIdentical = string(snapJSON) == string(coldJSON)
	if !out.Cache.SnapshotIdentical {
		return fmt.Errorf("snapshot-cold run changed the findings")
	}
	if snap.Cache.SkeletonHits == 0 || snap.Cache.SkeletonMisses != 0 || snap.Cache.SkeletonCorrupt != 0 {
		return fmt.Errorf("snapshot-cold run did not decode every skeleton: hits=%d misses=%d corrupt=%d",
			snap.Cache.SkeletonHits, snap.Cache.SkeletonMisses, snap.Cache.SkeletonCorrupt)
	}

	return runServerBench(out, in, cache, coldJSON)
}

// serverTicks is the number of timed warm-server requests. The first
// two ticks introduce the two tick-function variants (memo misses that
// replay from disk); the remaining ten are steady-state memo replays,
// so the median lands on the resident hot path.
const serverTicks = 12

// runServerBench measures the resident-engine request latency: the
// scenario a gocheckd client sees against a warm daemon. The engine
// shares the populated cache directory; each tick upserts one file
// whose single function alternates between two bodies, forcing a
// re-fingerprint and a fresh whole-program digest without touching any
// entry's summary.
func runServerBench(out *benchResult, in []gosrc.File, cache *analysis.Cache, coldJSON []byte) error {
	pkg, err := analysis.LoadFiles(in)
	if err != nil {
		return err
	}
	entries := pkg.Roots()
	eng := analysis.NewEngine(analysis.EngineConfig{Cache: cache})
	out.Server.Ticks = serverTicks
	samples, err := tickLoop(eng, in, entries, coldJSON)
	if err != nil {
		return err
	}
	out.Server.Identical = true
	out.Server.P50MS = quantile(samples, 50)
	out.Server.P99MS = quantile(samples, 99)
	st := eng.Stats()
	out.Server.MemoHits = st.MemoHits
	out.Server.MemoMisses = st.MemoMisses
	if st.MemoHits == 0 {
		return fmt.Errorf("server scenario never hit the memo")
	}

	// Telemetry variant: the identical tick stream against a second
	// engine with the flight recorder on, which also switches the engine
	// to per-request tracing. Same cache directory, same entries, same
	// steady-state memo path — the only difference is the telemetry.
	teng := analysis.NewEngine(analysis.EngineConfig{
		Cache:  cache,
		Flight: obs.NewFlight(obs.FlightConfig{}),
	})
	tsamples, err := tickLoop(teng, in, entries, coldJSON)
	if err != nil {
		return fmt.Errorf("telemetry scenario: %v", err)
	}
	out.Server.TelemetryIdentical = true
	out.Server.TelemetryP50MS = quantile(tsamples, 50)
	out.Server.TelemetryP99MS = quantile(tsamples, 99)

	// The overhead number compares the fastest steady-state ticks on the
	// two warm engines, alternating per round so ambient noise (GC,
	// scheduler) lands on both sides: the memoized tick is deterministic
	// work, so the low tail approximates its true cost where a 12-sample
	// median would be mostly measuring the machine. Averaging the k
	// smallest samples per side smooths the residual jitter a single
	// minimum keeps.
	runtime.GC() // start the comparison from a quiesced heap
	plainLow := make([]float64, 0, overheadRounds)
	telLow := make([]float64, 0, overheadRounds)
	for r := 0; r < overheadRounds; r++ {
		i := serverTicks + 1 + r
		first, second := eng, teng
		if r%2 == 1 {
			// Swap which engine ticks first so systematic drift (thermal,
			// background load ramping) cancels instead of biasing one side.
			first, second = teng, eng
		}
		a, err := tickOnce(first, entries, i, coldJSON)
		if err != nil {
			return err
		}
		b, err := tickOnce(second, entries, i, coldJSON)
		if err != nil {
			return err
		}
		if r%2 == 1 {
			a, b = b, a
		}
		plainLow = append(plainLow, a)
		telLow = append(telLow, b)
	}
	// Paired estimator: each round's two ticks run back to back, so slow
	// machine moments hit both sides of a pair; the median of per-round
	// differences discards the pairs where noise hit only one tick. An
	// A/A run of this harness (both engines plain) reads within a
	// fraction of a percent, where unpaired low-tail comparisons drift
	// several percent with ambient load.
	diffs := make([]float64, overheadRounds)
	for r := range diffs {
		diffs[r] = telLow[r] - plainLow[r]
	}
	sort.Float64s(diffs)
	medianDiff := diffs[len(diffs)/2]
	sort.Float64s(plainLow)
	if base := plainLow[len(plainLow)/2]; base > 0 {
		out.Server.TelemetryOverheadPct = medianDiff / base * 100
	}
	return nil
}

// overheadRounds is the number of alternating steady-state tick pairs
// the telemetry-overhead comparison takes its best-of minimum over.
const overheadRounds = 128

// tickFile is the single-function edit file whose body toggles between
// two variants with the tick index.
func tickFile(i int) gosrc.File {
	return gosrc.File{
		Name: "zz_edit_tick.go",
		Src:  fmt.Sprintf("package bench\n\nfunc editTick() int {\n\tx := %d\n\treturn x\n}\n", i%2),
	}
}

// tickOnce times one edit tick against eng. Every response must
// reproduce coldJSON byte-for-byte, and steady-state ticks (both
// variants resident, i > 2) must be fully memoized: once both variants
// have been seen, a tick must never fall back to disk or re-solve
// anything — the memo key (which includes the whole-program digest) has
// been seen before.
func tickOnce(eng *analysis.Engine, entries []string, i int, coldJSON []byte) (float64, error) {
	start := time.Now()
	rep, err := eng.Check(analysis.CheckRequest{
		Upserts: []gosrc.File{tickFile(i)},
		Entries: entries,
	})
	if err != nil {
		return 0, fmt.Errorf("server tick %d: %v", i, err)
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	tickJSON, _ := json.Marshal(rep.Diagnostics)
	if string(tickJSON) != string(coldJSON) {
		return 0, fmt.Errorf("server tick %d changed the findings", i)
	}
	if i > 2 && rep.Cache != nil && (rep.Cache.Misses != 0 || rep.Cache.ResolvedFunctions != 0) {
		return 0, fmt.Errorf("server tick %d was not fully memoized: %d misses, %d functions re-solved",
			i, rep.Cache.Misses, rep.Cache.ResolvedFunctions)
	}
	return ms, nil
}

// tickLoop seeds eng with the corpus, then drives serverTicks single-file
// edit requests toggling one tick function's body between two variants.
// Returns the per-tick latencies in milliseconds.
func tickLoop(eng *analysis.Engine, in []gosrc.File, entries []string, coldJSON []byte) ([]float64, error) {
	if _, err := eng.Check(analysis.CheckRequest{Upserts: in, Entries: entries}); err != nil {
		return nil, fmt.Errorf("server seed push: %v", err)
	}
	samples := make([]float64, 0, serverTicks)
	for i := 1; i <= serverTicks; i++ {
		ms, err := tickOnce(eng, entries, i, coldJSON)
		if err != nil {
			return nil, err
		}
		samples = append(samples, ms)
	}
	return samples, nil
}

// quantile returns the q-th percentile of the samples (nearest-rank,
// matching the historical p50/p99 formulas). The input is sorted in
// place.
func quantile(samples []float64, q int) float64 {
	sort.Float64s(samples)
	if q == 50 {
		return samples[len(samples)/2]
	}
	return samples[(len(samples)*q+q)/100-1]
}
