package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
	"rasc/internal/obs"
)

// TestRequireMetricNames runs the counting checkers over a small source
// with a live metrics registry, writes the snapshot, and checks the
// -require-metrics validation: the relational spec metrics must be
// present in a real run's snapshot, and a bogus name must fail with a
// message that names it.
func TestRequireMetricNames(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

func Hold(n int) {
	sem.Acquire(ctx, 1)
	if n > 0 {
		return
	}
	sem.Release(1)
}
`
	srcPath := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadPaths([]string{srcPath})
	if err != nil {
		t.Fatal(err)
	}
	checkers, err := analysis.Resolve("semabalance,lockbalance,poolexchange")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := analysis.Analyze(pkg, analysis.Config{Checkers: checkers, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "metrics.json")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	required := "spec.relations,spec.relation_states,spec.relation_saturations"
	if err := requireMetricNames(snapPath, required); err != nil {
		t.Errorf("relation metrics missing from a counting run's snapshot: %v", err)
	}
	err = requireMetricNames(snapPath, required+",spec.nosuch")
	if err == nil || !strings.Contains(err.Error(), "spec.nosuch") {
		t.Errorf("bogus metric name not reported: %v", err)
	}
	if err := requireMetricNames(snapPath, " "); err != nil {
		t.Errorf("blank requirement list must pass: %v", err)
	}
}

// TestRequireHistogramNames drives an analysis.Engine (the gocheckd
// core) with a metrics registry so the request-latency histogram gets
// real samples, then checks the -require-histograms validation: the
// served histogram passes, a missing one is named, an empty one is
// rejected, and a bucket/count mismatch is caught.
func TestRequireHistogramNames(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

import "sync"

var mu sync.Mutex

func Use() {
	mu.Lock()
	mu.Unlock()
}
`
	reg := obs.NewRegistry()
	eng := analysis.NewEngine(analysis.EngineConfig{Metrics: reg})
	if _, err := eng.Check(analysis.CheckRequest{
		Upserts: []gosrc.File{{Name: "demo.go", Src: src}},
	}); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "metrics.json")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := requireHistogramNames(snapPath, "server.request_ms"); err != nil {
		t.Errorf("request-latency histogram missing from a served engine's snapshot: %v", err)
	}
	err = requireHistogramNames(snapPath, "server.nosuch_ms")
	if err == nil || !strings.Contains(err.Error(), "server.nosuch_ms") {
		t.Errorf("missing histogram not reported: %v", err)
	}
	// relower_ms exists in the snapshot too; it must also have samples
	// (the seed push re-lowered the program).
	if err := requireHistogramNames(snapPath, "server.request_ms, server.relower_ms"); err != nil {
		t.Errorf("relower histogram: %v", err)
	}

	// An empty histogram fails the sample requirement, and a corrupted
	// bucket breakdown fails the consistency requirement.
	empty := obs.NewRegistry()
	empty.Histogram("idle_ms", obs.DefaultLatencyBounds)
	emptyPath := filepath.Join(dir, "empty.json")
	f, err = os.Create(emptyPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	err = requireHistogramNames(emptyPath, "idle_ms")
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Errorf("empty histogram not rejected: %v", err)
	}

	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	h := snap.Histograms["server.request_ms"]
	h.Count += 9
	snap.Histograms["server.request_ms"] = h
	corrupt, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corruptPath, corrupt, 0o666); err != nil {
		t.Fatal(err)
	}
	err = requireHistogramNames(corruptPath, "server.request_ms")
	if err == nil || !strings.Contains(err.Error(), "buckets sum") {
		t.Errorf("inconsistent histogram not rejected: %v", err)
	}
}
