package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc/internal/analysis"
	"rasc/internal/obs"
)

// TestRequireMetricNames runs the counting checkers over a small source
// with a live metrics registry, writes the snapshot, and checks the
// -require-metrics validation: the relational spec metrics must be
// present in a real run's snapshot, and a bogus name must fail with a
// message that names it.
func TestRequireMetricNames(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

func Hold(n int) {
	sem.Acquire(ctx, 1)
	if n > 0 {
		return
	}
	sem.Release(1)
}
`
	srcPath := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadPaths([]string{srcPath})
	if err != nil {
		t.Fatal(err)
	}
	checkers, err := analysis.Resolve("semabalance,lockbalance,poolexchange")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := analysis.Analyze(pkg, analysis.Config{Checkers: checkers, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "metrics.json")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	required := "spec.relations,spec.relation_states,spec.relation_saturations"
	if err := requireMetricNames(snapPath, required); err != nil {
		t.Errorf("relation metrics missing from a counting run's snapshot: %v", err)
	}
	err = requireMetricNames(snapPath, required+",spec.nosuch")
	if err == nil || !strings.Contains(err.Error(), "spec.nosuch") {
		t.Errorf("bogus metric name not reported: %v", err)
	}
	if err := requireMetricNames(snapPath, " "); err != nil {
		t.Errorf("blank requirement list must pass: %v", err)
	}
}
