// Command obslint validates gocheck's observability artifacts in CI:
// the Chrome trace-event JSON written by -trace-out, the metrics
// snapshot written by -metrics-json, and (optionally) that every
// finding of an -explain run's JSON report carries a non-empty
// provenance chain.
//
// Usage:
//
//	obslint [-trace f.json] [-metrics f.json]
//	        [-findings report.json] [-require-provenance]
//
// Exit status is 1 when any named artifact fails validation, 2 on
// usage errors. Flags left empty are skipped, so the command composes
// with CI jobs that only produce a subset of the artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rasc/internal/obs"
)

func main() {
	trace := flag.String("trace", "", "validate this Chrome trace-event JSON file")
	metrics := flag.String("metrics", "", "validate this metrics snapshot JSON file")
	findings := flag.String("findings", "", "validate this gocheck -format json report")
	requireProv := flag.Bool("require-provenance", false, "with -findings: every diagnostic must carry a non-empty provenance chain")
	flag.Parse()

	if *trace == "" && *metrics == "" && *findings == "" {
		fmt.Fprintln(os.Stderr, "usage: obslint [-trace f.json] [-metrics f.json] [-findings report.json] [-require-provenance]")
		os.Exit(2)
	}

	failed := false
	check := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Printf("obslint: %s: ok\n", name)
	}
	if *trace != "" {
		check(*trace, validateFile(*trace, obs.ValidateTraceJSON))
	}
	if *metrics != "" {
		check(*metrics, validateFile(*metrics, obs.ValidateMetricsJSON))
	}
	if *findings != "" {
		check(*findings, validateFindings(*findings, *requireProv))
	}
	if failed {
		os.Exit(1)
	}
}

func validateFile(path string, validate func([]byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return validate(data)
}

// validateFindings checks the report parses and, when required, that
// every diagnostic has provenance. It decodes just the fields it
// inspects: the report schema may grow without breaking this tool.
func validateFindings(path string, requireProv bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Diagnostics []struct {
			Checker    string           `json:"checker"`
			File       string           `json:"file"`
			Line       int              `json:"line"`
			Provenance []map[string]any `json:"provenance"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("not a gocheck JSON report: %v", err)
	}
	if !requireProv {
		return nil
	}
	for _, d := range rep.Diagnostics {
		if len(d.Provenance) == 0 {
			return fmt.Errorf("%s finding at %s:%d has no provenance chain", d.Checker, d.File, d.Line)
		}
		for _, hop := range d.Provenance {
			if r, _ := hop["rule"].(string); r == "" {
				return fmt.Errorf("%s finding at %s:%d has a provenance hop without a rule", d.Checker, d.File, d.Line)
			}
		}
	}
	return nil
}
