// Command obslint validates gocheck's observability artifacts in CI:
// the Chrome trace-event JSON written by -trace-out (and the daemon's
// flight-recorder dumps), the metrics snapshot written by
// -metrics-json, a Prometheus text exposition scraped from gocheckd's
// /v1/metrics?format=prometheus, and (optionally) that every finding of
// an -explain run's JSON report carries a non-empty provenance chain.
//
// Usage:
//
//	obslint [-trace f.json] [-metrics f.json] [-require-metrics name,...]
//	        [-require-histograms name,...] [-prometheus f.prom]
//	        [-findings report.json] [-require-provenance]
//
// Exit status is 1 when any named artifact fails validation, 2 on
// usage errors. Flags left empty are skipped, so the command composes
// with CI jobs that only produce a subset of the artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rasc/internal/obs"
)

func main() {
	trace := flag.String("trace", "", "validate this Chrome trace-event JSON file")
	metrics := flag.String("metrics", "", "validate this metrics snapshot JSON file")
	requireMetrics := flag.String("require-metrics", "", "with -metrics: comma-separated metric names that must be present in the snapshot")
	requireHists := flag.String("require-histograms", "", "with -metrics: comma-separated histogram names that must be present with samples and self-consistent buckets")
	prometheus := flag.String("prometheus", "", "validate this Prometheus text-format exposition (as scraped from gocheckd /v1/metrics?format=prometheus)")
	findings := flag.String("findings", "", "validate this gocheck -format json report")
	requireProv := flag.Bool("require-provenance", false, "with -findings: every diagnostic must carry a non-empty provenance chain")
	flag.Parse()

	if *trace == "" && *metrics == "" && *prometheus == "" && *findings == "" {
		fmt.Fprintln(os.Stderr, "usage: obslint [-trace f.json] [-metrics f.json] [-prometheus f.prom] [-findings report.json] [-require-provenance]")
		os.Exit(2)
	}

	failed := false
	check := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Printf("obslint: %s: ok\n", name)
	}
	if *trace != "" {
		check(*trace, validateFile(*trace, obs.ValidateTraceJSON))
	}
	if *metrics != "" {
		check(*metrics, validateFile(*metrics, obs.ValidateMetricsJSON))
		if *requireMetrics != "" {
			check(*metrics+" required metrics", requireMetricNames(*metrics, *requireMetrics))
		}
		if *requireHists != "" {
			check(*metrics+" required histograms", requireHistogramNames(*metrics, *requireHists))
		}
	}
	if *prometheus != "" {
		check(*prometheus, validateFile(*prometheus, obs.ValidatePrometheus))
	}
	if *findings != "" {
		check(*findings, validateFindings(*findings, *requireProv))
	}
	if failed {
		os.Exit(1)
	}
}

// requireMetricNames checks that every name in the comma-separated list
// appears in the snapshot, in any of the three metric families. CI uses
// this to pin down the spec.* instrumentation: a run over the counting
// checkers must actually emit spec.relations and its siblings, not just
// a structurally valid snapshot.
func requireMetricNames(path, names string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %v", err)
	}
	var missing []string
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := snap.Counters[n]; ok {
			continue
		}
		if _, ok := snap.Gauges[n]; ok {
			continue
		}
		if _, ok := snap.Histograms[n]; ok {
			continue
		}
		missing = append(missing, n)
	}
	if len(missing) > 0 {
		return fmt.Errorf("metrics missing from snapshot: %s", strings.Join(missing, ", "))
	}
	return nil
}

// requireHistogramNames checks that every named histogram is present,
// has recorded at least one sample, and is internally consistent: the
// per-bucket counts must sum to the histogram's total count. CI uses
// this on the daemon's metrics snapshot to pin the request-latency
// histogram (server.request_ms): a smoke run that served traffic must
// have observed it, and an exporter bug that drops or double-counts a
// bucket is a validation failure, not a dashboard mystery.
func requireHistogramNames(path, names string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %v", err)
	}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		h, ok := snap.Histograms[n]
		if !ok {
			return fmt.Errorf("histogram %s missing from snapshot", n)
		}
		if h.Count <= 0 {
			return fmt.Errorf("histogram %s has no samples", n)
		}
		var sum int64
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if sum != h.Count {
			return fmt.Errorf("histogram %s buckets sum to %d, count says %d", n, sum, h.Count)
		}
	}
	return nil
}

func validateFile(path string, validate func([]byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return validate(data)
}

// validateFindings checks the report parses and, when required, that
// every diagnostic has provenance. It decodes just the fields it
// inspects: the report schema may grow without breaking this tool.
func validateFindings(path string, requireProv bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Diagnostics []struct {
			Checker    string           `json:"checker"`
			File       string           `json:"file"`
			Line       int              `json:"line"`
			Provenance []map[string]any `json:"provenance"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("not a gocheck JSON report: %v", err)
	}
	if !requireProv {
		return nil
	}
	for _, d := range rep.Diagnostics {
		if len(d.Provenance) == 0 {
			return fmt.Errorf("%s finding at %s:%d has no provenance chain", d.Checker, d.File, d.Line)
		}
		for _, hop := range d.Provenance {
			if r, _ := hop["rule"].(string); r == "" {
				return fmt.Errorf("%s finding at %s:%d has a provenance hop without a rule", d.Checker, d.File, d.Line)
			}
		}
	}
	return nil
}
