// Command gocheckd is the resident analysis daemon: one hot
// analysis.Engine serving check/explain requests from many concurrent
// clients over a plain HTTP/JSON API. Clients (gocheck -server, editor
// integrations, CI shards) push file deltas; the engine re-lowers only
// the changed files, re-solves only the dirtied SCCs, and replays
// everything else from resident state, so a warm single-edit re-check
// answers in low single-digit milliseconds with findings byte-identical
// to a one-shot gocheck run.
//
// Usage:
//
//	gocheckd [-addr 127.0.0.1:7433] [-cache-dir dir] [-skeleton-cache=false]
//	         [-parallel N] [-memory-budget MB] [-memo-entries N]
//	         [-allow-shutdown=false] [-verbose]
//
// Endpoints: POST /v1/check, GET /v1/manifest, GET /v1/list,
// GET /v1/metrics, GET /v1/health, POST /v1/shutdown (when enabled).
// See internal/server for the protocol types. The daemon stops
// gracefully on SIGINT/SIGTERM or (with -allow-shutdown, the default)
// POST /v1/shutdown, draining in-flight requests first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/core"
	"rasc/internal/obs"
	"rasc/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory for the shared on-disk incremental cache (empty = memory only)")
	skelCache := flag.Bool("skeleton-cache", true, "with -cache-dir, snapshot solved constraint skeletons")
	parallel := flag.Int("parallel", 0, "per-request worker pool size (0 = GOMAXPROCS)")
	budgetMB := flag.Int64("memory-budget", 0, "resident-program memory budget in MiB; past it, least-recently-used programs are evicted (0 = unlimited)")
	memoEntries := flag.Int("memo-entries", 0, "in-memory job-result memo capacity in records (0 = default)")
	allowShutdown := flag.Bool("allow-shutdown", true, "enable POST /v1/shutdown")
	verbose := flag.Bool("verbose", false, "log each request to stderr")
	flag.Parse()

	registry := obs.NewRegistry()
	var cache *analysis.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = analysis.OpenCache(*cacheDir); err != nil {
			return fail(err)
		}
	}
	engine := analysis.NewEngine(analysis.EngineConfig{
		Cache:               cache,
		NoSkeletonSnapshots: !*skelCache,
		Opts:                core.Options{},
		Parallel:            *parallel,
		MemoryBudget:        *budgetMB << 20,
		MemoEntries:         *memoEntries,
		Metrics:             registry,
	})

	stop := make(chan struct{})
	var onShutdown func()
	if *allowShutdown {
		onShutdown = func() { close(stop) }
	}
	h := server.NewHandler(engine, registry, onShutdown)
	mux := h.Mux()
	var handler http.Handler = mux
	if *verbose {
		handler = logRequests(mux)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "gocheckd: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "gocheckd: %v, shutting down\n", s)
	case <-stop:
		fmt.Fprintln(os.Stderr, "gocheckd: shutdown requested, shutting down")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail(err)
	}
	st := engine.Stats()
	fmt.Fprintf(os.Stderr, "gocheckd: served %d request(s), %d error(s), %d resident program(s)\n",
		st.Requests, st.Errors, st.ResidentPrograms)
	return 0
}

// logRequests is a minimal stderr access log for -verbose.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		fmt.Fprintf(os.Stderr, "gocheckd: %s %s %s\n", r.Method, r.URL.Path, time.Since(t0).Round(time.Microsecond))
	})
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "gocheckd:", err)
	return 1
}
