// Command gocheckd is the resident analysis daemon: one hot
// analysis.Engine serving check/explain requests from many concurrent
// clients over a plain HTTP/JSON API. Clients (gocheck -server, editor
// integrations, CI shards) push file deltas; the engine re-lowers only
// the changed files, re-solves only the dirtied SCCs, and replays
// everything else from resident state, so a warm single-edit re-check
// answers in low single-digit milliseconds with findings byte-identical
// to a one-shot gocheck run.
//
// Usage:
//
//	gocheckd [-addr 127.0.0.1:7433] [-cache-dir dir] [-skeleton-cache=false]
//	         [-parallel N] [-memory-budget MB] [-memo-entries N]
//	         [-allow-shutdown=false] [-log-level info] [-debug-addr addr]
//	         [-flight-entries N] [-flight-slowest N] [-slow-ms N] [-flight-dir dir]
//	         [-slo-p99-ms N] [-slo-error-rate F]
//
// Endpoints: POST /v1/check, GET /v1/manifest, GET /v1/list,
// GET /v1/metrics (?format=prometheus), GET /v1/health,
// GET /v1/debug/flight, GET /v1/debug/vars, POST /v1/shutdown (when
// enabled). See internal/server for the protocol types. With
// -debug-addr, net/http/pprof is served on a second listener, kept off
// the API port so profiling exposure is an explicit opt-in. The daemon
// stops gracefully on SIGINT/SIGTERM or (with -allow-shutdown, the
// default) POST /v1/shutdown, draining in-flight requests first.
//
// Telemetry: every request is recorded in a bounded in-memory flight
// recorder (-flight-entries recent, plus the -flight-slowest slowest
// ever), dumpable via /v1/debug/flight; requests slower than -slow-ms
// are persisted as Chrome trace JSON under -flight-dir. Access and
// lifecycle logs are structured JSON lines on stderr at -log-level.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/core"
	"rasc/internal/obs"
	"rasc/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory for the shared on-disk incremental cache (empty = memory only)")
	skelCache := flag.Bool("skeleton-cache", true, "with -cache-dir, snapshot solved constraint skeletons")
	parallel := flag.Int("parallel", 0, "per-request worker pool size (0 = GOMAXPROCS)")
	budgetMB := flag.Int64("memory-budget", 0, "resident-program memory budget in MiB; past it, least-recently-used programs are evicted (0 = unlimited)")
	memoEntries := flag.Int("memo-entries", 0, "in-memory job-result memo capacity in records (0 = default)")
	allowShutdown := flag.Bool("allow-shutdown", true, "enable POST /v1/shutdown")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = pprof off)")
	flightEntries := flag.Int("flight-entries", 64, "flight recorder: recent requests retained")
	flightSlowest := flag.Int("flight-slowest", 8, "flight recorder: slowest-ever requests retained beyond the ring")
	slowMS := flag.Int64("slow-ms", 0, "persist traces of requests slower than this many milliseconds (0 = off)")
	flightDir := flag.String("flight-dir", "", "directory for persisted slow-request traces (required by -slow-ms)")
	sloP99 := flag.Int64("slo-p99-ms", 0, "degrade /v1/health when a window's p99 exceeds this (0 = default 2000)")
	sloErrRate := flag.Float64("slo-error-rate", 0, "degrade /v1/health when a window's error fraction exceeds this (0 = default 0.05)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fail(nil, err)
	}
	log := obs.NewLogger(os.Stderr, level)

	registry := obs.NewRegistry()
	var cache *analysis.Cache
	if *cacheDir != "" {
		if cache, err = analysis.OpenCache(*cacheDir); err != nil {
			return fail(log, err)
		}
	}
	flight := obs.NewFlight(obs.FlightConfig{
		Recent:  *flightEntries,
		Slowest: *flightSlowest,
		SlowUS:  *slowMS * 1000,
		Dir:     *flightDir,
		Metrics: registry,
	})
	engine := analysis.NewEngine(analysis.EngineConfig{
		Cache:               cache,
		NoSkeletonSnapshots: !*skelCache,
		Opts:                core.Options{},
		Parallel:            *parallel,
		MemoryBudget:        *budgetMB << 20,
		MemoEntries:         *memoEntries,
		Metrics:             registry,
		Flight:              flight,
	})

	stop := make(chan struct{})
	var onShutdown func()
	if *allowShutdown {
		onShutdown = func() { close(stop) }
	}
	h := server.NewHandler(server.HandlerConfig{
		Engine:     engine,
		Registry:   registry,
		Flight:     flight,
		Log:        log,
		OnShutdown: onShutdown,
		SLO:        server.SLOConfig{P99MS: *sloP99, ErrorRate: *sloErrRate},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(log, err)
	}
	srv := &http.Server{Handler: h.Root()}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(log, err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go debugSrv.Serve(dln)
		defer debugSrv.Close()
	}

	// One structured startup line with the fully resolved configuration,
	// so a log capture alone reconstructs how the daemon was running.
	log.Info("starting",
		"version", server.Version,
		"go_version", runtime.Version(),
		"addr", ln.Addr().String(),
		"debug_addr", *debugAddr,
		"cache_dir", *cacheDir,
		"skeleton_cache", *skelCache,
		"parallel", *parallel,
		"memory_budget_mb", *budgetMB,
		"memo_entries", *memoEntries,
		"allow_shutdown", *allowShutdown,
		"flight_entries", *flightEntries,
		"flight_slowest", *flightSlowest,
		"slow_ms", *slowMS,
		"flight_dir", *flightDir,
		"log_level", level.String(),
	)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("shutting down", "reason", s.String())
	case <-stop:
		log.Info("shutting down", "reason", "shutdown requested")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(log, err)
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail(log, err)
	}
	st := engine.Stats()
	fs := flight.Stats()
	log.Info("stopped",
		"requests", st.Requests,
		"errors", st.Errors,
		"resident_programs", st.ResidentPrograms,
		"flight_recorded", fs.Recorded,
	)
	return 0
}

func fail(log *obs.Logger, err error) int {
	if log != nil {
		log.Error("fatal", "error", err.Error())
	} else {
		os.Stderr.WriteString("gocheckd: " + err.Error() + "\n")
	}
	return 1
}
