// Command flowan runs the §7 type-based flow analyses on a program in the
// mini functional language, answering label-flow queries.
//
// Usage:
//
//	flowan [-dual] [-pn] [-query FROM:TO]... prog.flow
//
// Without -query flags, every ordered pair of user labels is queried.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rasc/internal/flow"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	dual := flag.Bool("dual", false, "use the dual analysis of §7.6")
	pn := flag.Bool("pn", false, "use PN (partially matched) reachability for queries")
	var queries queryList
	flag.Var(&queries, "query", "FROM:TO label query (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flowan [flags] prog.flow")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	type flowQuerier interface {
		Flows(from, to string) (bool, error)
	}
	var q flowQuerier
	var labels []string
	var primal *flow.Analysis

	if *dual {
		a, err := flow.AnalyzeDual(string(src), flow.Options{})
		if err != nil {
			fatal(err)
		}
		q = a
		labels = labelNames(string(src))
		fmt.Printf("dual analysis: call-depth bound %d, |F^≡| = %d\n", a.CallDepth, a.Mon.Size())
	} else {
		a, err := flow.Analyze(string(src), flow.Options{})
		if err != nil {
			fatal(err)
		}
		q = a
		primal = a
		labels = labelNames(string(src))
		fmt.Printf("primal analysis: max type depth %d, |F^≡| = %d\n", a.MaxDepth, a.Mon.Size())
	}

	var pairs [][2]string
	if len(queries) > 0 {
		for _, s := range queries {
			parts := strings.SplitN(s, ":", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad query %q (want FROM:TO)", s))
			}
			pairs = append(pairs, [2]string{parts[0], parts[1]})
		}
	} else {
		for _, a := range labels {
			for _, b := range labels {
				if a != b {
					pairs = append(pairs, [2]string{a, b})
				}
			}
		}
	}
	for _, p := range pairs {
		var ans bool
		var err error
		if *pn {
			if primal == nil {
				fatal(fmt.Errorf("-pn requires the primal analysis"))
			}
			ans, err = primal.FlowsPN(p[0], p[1])
		} else {
			ans, err = q.Flows(p[0], p[1])
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: %v\n", p[0], p[1], ans)
	}
}

// labelNames extracts ^Label annotations from source order-independently.
func labelNames(src string) []string {
	set := map[string]bool{}
	for i := 0; i < len(src); i++ {
		if src[i] != '^' {
			continue
		}
		j := i + 1
		for j < len(src) && (isIdent(src[j])) {
			j++
		}
		if j > i+1 {
			set[src[i+1:j]] = true
		}
	}
	var out []string
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func isIdent(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowan:", err)
	os.Exit(1)
}
