// Command rasc solves a regularly annotated set constraint system written
// in the textual language of internal/clang and answers its queries.
//
// Usage:
//
//	rasc [-no-cycle-elim] [-no-proj-merge] [-no-hashcons] file.rasc
package main

import (
	"flag"
	"fmt"
	"os"

	"rasc/internal/clang"
	"rasc/internal/core"
)

func main() {
	noCE := flag.Bool("no-cycle-elim", false, "disable online cycle elimination")
	noPM := flag.Bool("no-proj-merge", false, "disable projection merging")
	noHC := flag.Bool("no-hashcons", false, "disable hash-consing of constructor expressions")
	dot := flag.Bool("dot", false, "print the solved constraint graph in Graphviz dot format and exit")
	dotMachine := flag.Bool("dot-machine", false, "print the property automaton in Graphviz dot format and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rasc [flags] file.rasc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasc:", err)
		os.Exit(1)
	}
	opts := core.Options{NoCycleElim: *noCE, NoProjMerge: *noPM, NoHashCons: *noHC}
	f, err := clang.Load(string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasc:", err)
		os.Exit(1)
	}
	if *dotMachine {
		fmt.Print(f.Prop.Machine.DOT("property"))
		return
	}
	if *dot {
		fmt.Print(f.Sys.DOT("constraints"))
		return
	}
	results, err := f.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasc:", err)
		os.Exit(1)
	}
	fmt.Print(f.Report(results))
	if !f.Sys.Consistent() {
		os.Exit(3)
	}
}
