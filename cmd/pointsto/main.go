// Command pointsto runs the Andersen-style set-constraint points-to
// analysis on a mini-C program and answers points-to and alias queries.
//
// Usage:
//
//	pointsto [-alias fn.x,fn.y]... prog.c
//
// Without -alias flags, every variable's points-to set is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pointsto"
)

type aliasList []string

func (a *aliasList) String() string     { return strings.Join(*a, " ") }
func (a *aliasList) Set(s string) error { *a = append(*a, s); return nil }

func main() {
	var aliases aliasList
	flag.Var(&aliases, "alias", "alias query fn.x,fn.y (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pointsto [flags] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	res, err := pointsto.Analyze(prog, core.Options{})
	if err != nil {
		fatal(err)
	}

	if len(aliases) == 0 {
		// Print every user variable's points-to set.
		type row struct{ fn, v string }
		var rows []row
		for _, fd := range prog.Funcs {
			seen := map[string]bool{}
			for _, p := range fd.Params {
				if !seen[p] {
					seen[p] = true
					rows = append(rows, row{fd.Name, p})
				}
			}
			collectDecls(fd.Body, func(name string) {
				if !seen[name] {
					seen[name] = true
					rows = append(rows, row{fd.Name, name})
				}
			})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].fn != rows[j].fn {
				return rows[i].fn < rows[j].fn
			}
			return rows[i].v < rows[j].v
		})
		for _, r := range rows {
			pts := res.PointsTo(r.fn, r.v)
			if len(pts) > 0 {
				fmt.Printf("pt(%s.%s) = {%s}\n", r.fn, r.v, strings.Join(pts, ", "))
			}
		}
		return
	}
	for _, q := range aliases {
		parts := strings.Split(q, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -alias %q (want fn.x,fn.y)", q))
		}
		f1, v1, ok1 := splitVar(parts[0])
		f2, v2, ok2 := splitVar(parts[1])
		if !ok1 || !ok2 {
			fatal(fmt.Errorf("bad -alias %q (want fn.x,fn.y)", q))
		}
		loc := res.MayAlias(f1, v1, f2, v2)
		stack := res.MayAliasStackAware(f1, v1, f2, v2)
		fmt.Printf("alias(%s, %s): locations=%v stack-aware=%v\n", parts[0], parts[1], loc, stack)
	}
}

func splitVar(s string) (fn, v string, ok bool) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

func collectDecls(body []minic.Stmt, f func(string)) {
	for _, st := range body {
		switch s := st.(type) {
		case *minic.DeclStmt:
			f(s.Name)
		case *minic.IfStmt:
			collectDecls(s.Then, f)
			collectDecls(s.Else, f)
		case *minic.WhileStmt:
			collectDecls(s.Body, f)
		case *minic.BlockStmt:
			collectDecls(s.Body, f)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pointsto:", err)
	os.Exit(1)
}
