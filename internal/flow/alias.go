package flow

import (
	"rasc/internal/core"
	"rasc/internal/terms"
)

// StackAwareAlias implements the §7.5 query: two expressions may alias
// only when the *term* intersection of their points-to solutions is
// non-empty. Because solutions are terms whose unary constructors record
// the call stack (o_1(a) "a reached through call site 1"), intersecting
// terms rather than erased abstract locations distinguishes contexts: for
// the paper's example, pt(x) = {o1(a), o2(b)} and pt(y) = {o2(a), o1(b)}
// intersect as location sets but not as term sets, proving x and y
// unaliased inside foo.
//
// The system must be solved. maxDepth bounds term enumeration (use at
// least the deepest call chain + 1); limit caps the enumerated set
// (0 = unlimited).
func StackAwareAlias(sys *core.System, x, y core.VarID, bank *terms.Bank, maxDepth, limit int) (bool, []terms.TermID) {
	tx := sys.TermsIn(x, bank, maxDepth, limit)
	ty := sys.TermsIn(y, bank, maxDepth, limit)
	inY := make(map[terms.TermID]bool, len(ty))
	for _, t := range ty {
		inY[t] = true
	}
	var common []terms.TermID
	for _, t := range tx {
		if inY[t] {
			common = append(common, t)
		}
	}
	return len(common) > 0, common
}

// LocationAlias is the classic context-insensitive alias query used as
// the §7.5 foil: intersect the sets of abstract locations (term leaves),
// erasing the call-stack constructors.
func LocationAlias(sys *core.System, x, y core.VarID, bank *terms.Bank, maxDepth, limit int) bool {
	lx := leafSet(sys, x, bank, maxDepth, limit)
	ly := leafSet(sys, y, bank, maxDepth, limit)
	for l := range lx {
		if ly[l] {
			return true
		}
	}
	return false
}

func leafSet(sys *core.System, v core.VarID, bank *terms.Bank, maxDepth, limit int) map[terms.ConsID]bool {
	out := map[terms.ConsID]bool{}
	for _, t := range sys.TermsIn(v, bank, maxDepth, limit) {
		collectLeaves(bank, t, out)
	}
	return out
}

func collectLeaves(bank *terms.Bank, t terms.TermID, acc map[terms.ConsID]bool) {
	args := bank.Args(t)
	if len(args) == 0 {
		acc[bank.Cons(t)] = true
		return
	}
	for _, a := range args {
		collectLeaves(bank, a, acc)
	}
}
