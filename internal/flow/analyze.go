package flow

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// Analysis is the primal flow analysis of §7: polymorphic recursion
// context sensitivity through call-site constructors, pair flow through
// bracket annotations.
type Analysis struct {
	Prog *Program
	Sys  *core.System
	Mon  *monoid.Monoid
	Sig  *terms.Signature
	// MaxDepth is the depth of the largest pair type: the bound of the
	// Figure 10 annotation machine.
	MaxDepth int

	labelVar map[int]core.VarID
	named    map[string]int // user label name -> label id
	probes   map[string]core.CNode
	exprTy   map[Expr]*lty
	defs     map[string]*fnInfo
	nextLbl  int
	recs     []rec
	solved   bool
}

type fnInfo struct {
	param *lty // nil for nullary functions
	ret   *lty
}

type recKind int

const (
	recSub recKind = iota
	recPair
	recProj
	recCall
)

type rec struct {
	kind recKind
	// sub
	from, to *lty
	// pair: ty with components
	ty *lty
	// proj
	xTy, resTy *lty
	idx        int
	// call
	site   string
	argTy  *lty
	fn     *fnInfo
	callTy *lty
}

// Options configures Analyze.
type Options struct {
	// Solver is passed to the constraint system.
	Solver core.Options
	// MonoidLimit caps the bracket machine's monoid (<=0: default). The
	// paper observes (§9) that the bidirectional solver's monoid grows
	// with the largest type, so deep programs can exceed sane limits.
	MonoidLimit int
}

// Analyze parses and analyzes a program.
func Analyze(src string, opts Options) (*Analysis, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(prog, opts)
}

// MustAnalyze panics on error.
func MustAnalyze(src string) *Analysis {
	a, err := Analyze(src, Options{})
	if err != nil {
		panic(err)
	}
	return a
}

// AnalyzeProgram analyzes a parsed program: types it (pass 1), derives
// the bracket machine bound (the largest type), and generates the
// annotated constraints of Figure 9 (pass 2).
func AnalyzeProgram(prog *Program, opts Options) (*Analysis, error) {
	a := &Analysis{
		Prog:     prog,
		labelVar: map[int]core.VarID{},
		named:    map[string]int{},
		probes:   map[string]core.CNode{},
		exprTy:   map[Expr]*lty{},
		defs:     map[string]*fnInfo{},
	}
	// Declare all signatures first (allows forward references and
	// recursion).
	for _, d := range prog.Defs {
		scope := map[string]*lty{}
		fi := &fnInfo{}
		if d.Param != "" {
			fi.param = a.spread(d.ParamTy, scope)
		}
		fi.ret = a.spread(d.RetTy, scope)
		a.defs[d.Name] = fi
	}
	// Type bodies.
	for _, d := range prog.Defs {
		fi := a.defs[d.Name]
		env := map[string]*lty{}
		if d.Param != "" {
			env[d.Param] = fi.param
		}
		bodyTy, err := a.typeExpr(d.Body, env)
		if err != nil {
			return nil, err
		}
		if err := a.sub(bodyTy, fi.ret, d.Line); err != nil {
			return nil, err
		}
	}
	// Pass 2: the largest type bounds the annotation machine (Fig 10).
	for _, r := range a.recs {
		for _, t := range []*lty{r.from, r.to, r.ty, r.xTy, r.resTy, r.argTy, r.callTy} {
			if t != nil {
				if d := t.depth(); d > a.MaxDepth {
					a.MaxDepth = d
				}
			}
		}
	}
	for _, fi := range a.defs {
		for _, t := range []*lty{fi.param, fi.ret} {
			if t != nil {
				if d := t.depth(); d > a.MaxDepth {
					a.MaxDepth = d
				}
			}
		}
	}
	machine := BracketMachine(a.MaxDepth)
	mon, err := monoid.Build(machine, opts.MonoidLimit)
	if err != nil {
		return nil, err
	}
	a.Mon = mon
	a.Sig = terms.NewSignature()
	// Dead-class pruning (§3.1): bracket compositions that can never
	// cancel (e.g. [1 followed by ]2) are absorbing and useless; pruning
	// them restricts solving to the substring domain T^{M^sub}.
	solverOpts := opts.Solver
	solverOpts.PruneDead = true
	a.Sys = core.NewSystem(core.FuncAlgebra{Mon: mon}, a.Sig, solverOpts)

	ident := core.Annot(mon.Identity())
	annot := func(sym string) core.Annot {
		f, ok := mon.SymbolFuncByName(sym)
		if !ok {
			panic("flow: missing bracket symbol " + sym)
		}
		return core.Annot(f)
	}

	for _, r := range a.recs {
		switch r.kind {
		case recSub:
			if r.from.label != r.to.label {
				a.Sys.AddVar(a.varOf(r.from.label), a.varOf(r.to.label), ident)
			}
		case recPair:
			lvl := r.ty.depth()
			a.Sys.AddVar(a.varOf(r.ty.resolve().fst.label), a.varOf(r.ty.label), annot(openSym(1, lvl)))
			a.Sys.AddVar(a.varOf(r.ty.resolve().snd.label), a.varOf(r.ty.label), annot(openSym(2, lvl)))
		case recProj:
			lvl := r.xTy.depth()
			a.Sys.AddVar(a.varOf(r.xTy.label), a.varOf(r.resTy.label), annot(closeSym(r.idx, lvl)))
		case recCall:
			oc := a.Sig.MustDeclare("o@"+r.site, 1)
			if r.argTy != nil && r.fn.param != nil {
				a.Sys.AddLowerE(a.Sys.Cons(oc, a.varOf(r.argTy.label)), a.varOf(r.fn.param.label))
			}
			a.Sys.AddProjE(oc, 0, a.varOf(r.fn.ret.label), a.varOf(r.callTy.label))
		}
	}
	a.Sys.Solve()
	a.solved = true
	return a, nil
}

func (a *Analysis) freshLbl() int {
	a.nextLbl++
	return a.nextLbl
}

func (a *Analysis) varOf(lbl int) core.VarID {
	if v, ok := a.labelVar[lbl]; ok {
		return v
	}
	v := a.Sys.Var(fmt.Sprintf("L%d", lbl))
	a.labelVar[lbl] = v
	return v
}

// spread implements the spread operator of §7.1: fresh labels on every
// type node. Type variables are scoped to the definition's signature.
func (a *Analysis) spread(te *TypeExpr, scope map[string]*lty) *lty {
	switch te.Kind {
	case "int":
		return &lty{kind: tyInt, label: a.freshLbl()}
	case "var":
		if v, ok := scope[te.Name]; ok {
			return v
		}
		v := &lty{kind: tyVar, label: a.freshLbl(), name: te.Name}
		scope[te.Name] = v
		return v
	default:
		return &lty{
			kind:  tyPair,
			label: a.freshLbl(),
			fst:   a.spread(te.Fst, scope),
			snd:   a.spread(te.Snd, scope),
		}
	}
}

// copySkeleton returns a type with a fresh top-level label and the
// argument's structure. Pair components are shared (only top-level labels
// ever appear in constraints; deeper flow rides bracket annotations), and
// unbound variables are chained (ref) so later bindings of the original
// are visible through the copy. Projection and call results use this so
// that a type's constructor depth — and with it the bracket level of
// Figure 10 — is preserved through destructions.
func (a *Analysis) copySkeleton(t *lty) *lty {
	r := t.resolve()
	switch r.kind {
	case tyInt:
		return &lty{kind: tyInt, label: a.freshLbl()}
	case tyPair:
		return &lty{kind: tyPair, label: a.freshLbl(), fst: r.fst, snd: r.snd}
	default:
		return &lty{kind: tyVar, label: a.freshLbl(), name: r.name + "'", ref: r}
	}
}

// sub records a non-structural subtyping step σ ≤ σ' (only the top-level
// labels are related, §7.2); unbound type variables are bound to the
// other side's structure, which is how β = int^A ×^P int^Y arises in
// §7.4.
func (a *Analysis) sub(from, to *lty, line int) error {
	fr, tr := from.resolve(), to.resolve()
	if tr.kind == tyVar {
		if err := bind(tr, from); err != nil {
			return err
		}
	} else if fr.kind == tyVar {
		if err := bind(fr, to); err != nil {
			return err
		}
	}
	a.recs = append(a.recs, rec{kind: recSub, from: from, to: to})
	return nil
}

func (a *Analysis) registerLabel(e Expr, t *lty) error {
	name := e.LabelName()
	if name == "" {
		return nil
	}
	if _, dup := a.named[name]; dup {
		return &Error{e.Pos(), fmt.Sprintf("duplicate label %q", name)}
	}
	a.named[name] = t.label
	return nil
}

func (a *Analysis) typeExpr(e Expr, env map[string]*lty) (*lty, error) {
	t, err := a.typeExprInner(e, env)
	if err != nil {
		return nil, err
	}
	a.exprTy[e] = t
	if err := a.registerLabel(e, t); err != nil {
		return nil, err
	}
	return t, nil
}

func (a *Analysis) typeExprInner(e Expr, env map[string]*lty) (*lty, error) {
	switch x := e.(type) {
	case *IntLit:
		return &lty{kind: tyInt, label: a.freshLbl()}, nil
	case *VarRef:
		t, ok := env[x.Name]
		if !ok {
			return nil, &Error{x.Line, fmt.Sprintf("unbound variable %q", x.Name)}
		}
		return t, nil
	case *PairExpr:
		f, err := a.typeExpr(x.Fst, env)
		if err != nil {
			return nil, err
		}
		s, err := a.typeExpr(x.Snd, env)
		if err != nil {
			return nil, err
		}
		ty := &lty{kind: tyPair, label: a.freshLbl(), fst: f, snd: s}
		a.recs = append(a.recs, rec{kind: recPair, ty: ty})
		return ty, nil
	case *ProjExpr:
		tx, err := a.typeExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		r := tx.resolve()
		if r.kind == tyVar {
			// Force pair structure with fresh components.
			p := &lty{
				kind:  tyPair,
				label: a.freshLbl(),
				fst:   &lty{kind: tyVar, label: a.freshLbl(), name: "π1"},
				snd:   &lty{kind: tyVar, label: a.freshLbl(), name: "π2"},
			}
			if err := bind(r, p); err != nil {
				return nil, err
			}
			r = p
		}
		if r.kind != tyPair {
			return nil, &Error{x.Line, fmt.Sprintf("projection .%d on non-pair type %s", x.Index, r)}
		}
		comp := r.fst
		if x.Index == 2 {
			comp = r.snd
		}
		res := a.copySkeleton(comp)
		a.recs = append(a.recs, rec{kind: recProj, xTy: tx, resTy: res, idx: x.Index})
		return res, nil
	case *LetExpr:
		vt, err := a.typeExpr(x.Val, env)
		if err != nil {
			return nil, err
		}
		inner := map[string]*lty{}
		for k, v := range env {
			inner[k] = v
		}
		inner[x.Name] = vt
		return a.typeExpr(x.Body, inner)
	case *CallExpr:
		fi, ok := a.defs[x.Fn]
		if !ok {
			return nil, &Error{x.Line, fmt.Sprintf("undefined function %q", x.Fn)}
		}
		r := rec{kind: recCall, site: x.Site, fn: fi}
		if x.Arg != nil {
			if fi.param == nil {
				return nil, &Error{x.Line, fmt.Sprintf("%q takes no argument", x.Fn)}
			}
			at, err := a.typeExpr(x.Arg, env)
			if err != nil {
				return nil, err
			}
			r.argTy = at
		} else if fi.param != nil {
			return nil, &Error{x.Line, fmt.Sprintf("%q requires an argument", x.Fn)}
		}
		res := a.copySkeleton(fi.ret)
		r.callTy = res
		a.recs = append(a.recs, r)
		return res, nil
	}
	return nil, fmt.Errorf("flow: unknown expression %T", e)
}

// Label resolves a user label name (the ^Name annotations) to its set
// variable.
func (a *Analysis) Label(name string) (core.VarID, bool) {
	id, ok := a.named[name]
	if !ok {
		return 0, false
	}
	return a.varOf(id), true
}

// probe returns (allocating on demand) the query constant for a label,
// the "fresh constant x with x ⊆ X" of §7.3.
func (a *Analysis) probe(name string) (core.CNode, error) {
	if cn, ok := a.probes[name]; ok {
		return cn, nil
	}
	v, ok := a.Label(name)
	if !ok {
		return 0, fmt.Errorf("flow: unknown label %q", name)
	}
	c := a.Sig.MustDeclare("probe@"+name, 0)
	cn := a.Sys.Constant(c)
	a.Sys.AddLowerE(cn, v)
	a.Sys.Solve() // online solving extends the solution
	return cn, nil
}

// Flows answers the matched flow query of §7.3: does label `from` flow to
// label `to` with matched call/returns (term level) and matched pair
// construction/projection (accepting bracket annotation)?
func (a *Analysis) Flows(from, to string) (bool, error) {
	cn, err := a.probe(from)
	if err != nil {
		return false, err
	}
	v, ok := a.Label(to)
	if !ok {
		return false, fmt.Errorf("flow: unknown label %q", to)
	}
	a.probes[from] = cn
	return a.Sys.ConstEntailed(cn, v), nil
}

// Reaches reports whether `from` reaches `to` with any annotation —
// including non-accepting bracket words (e.g. a component sitting inside
// a pair, its bracket still open).
func (a *Analysis) Reaches(from, to string) (bool, error) {
	cn, err := a.probe(from)
	if err != nil {
		return false, err
	}
	v, ok := a.Label(to)
	if !ok {
		return false, fmt.Errorf("flow: unknown label %q", to)
	}
	a.probes[from] = cn
	return a.Sys.Flows(cn, v), nil
}

// FlowsPN extends Flows to partially matched call paths with PN
// reachability (§7.3's extension via [15]).
func (a *Analysis) FlowsPN(from, to string) (bool, error) {
	cn, err := a.probe(from)
	if err != nil {
		return false, err
	}
	v, ok := a.Label(to)
	if !ok {
		return false, fmt.Errorf("flow: unknown label %q", to)
	}
	a.probes[from] = cn
	pn := a.Sys.PNReach(cn)
	_, acc := pn.AcceptingAt(v)
	return acc, nil
}

// FlowsForward answers the matched-flow query with the forward
// unidirectional strategy of §5 — the strategy §9 expects to scale for
// this analysis, since the bracket machine (and hence F_M^≡) grows with
// the largest type while the forward solver tracks only |S| states per
// fact. It solves the recorded constraints demand-driven from the probe.
func (a *Analysis) FlowsForward(from, to string) (bool, error) {
	cn, err := a.probe(from)
	if err != nil {
		return false, err
	}
	v, ok := a.Label(to)
	if !ok {
		return false, fmt.Errorf("flow: unknown label %q", to)
	}
	fw, err := a.Sys.SolveForward([]core.CNode{cn})
	if err != nil {
		return false, err
	}
	return fw.ConstEntailed(cn, v), nil
}
