package flow

import (
	"fmt"
	"sort"
	"strings"

	"rasc/internal/dfa"
)

// lty is a labeled type (§7.1): every type node carries a set-variable
// label (the result of the spread operator). Type variables may be bound
// during checking; binding shares the bound type's labels, which is how
// the example of §7.4 obtains β = int^A ×^P int^Y.
type lty struct {
	kind  tyKind
	label int  // label id, materialized to a set variable in pass 2
	fst   *lty // pair components
	snd   *lty
	ref   *lty // binding for type variables
	name  string
}

type tyKind int

const (
	tyInt tyKind = iota
	tyPair
	tyVar
)

// resolve follows variable bindings.
func (t *lty) resolve() *lty {
	for t.kind == tyVar && t.ref != nil {
		t = t.ref
	}
	return t
}

// depth is 0 for ints and unbound variables, 1 + max component depth for
// pairs. The paper bounds the annotation language by the depth of the
// largest type (Figure 10).
func (t *lty) depth() int {
	t = t.resolve()
	if t.kind != tyPair {
		return 0
	}
	f, s := t.fst.depth(), t.snd.depth()
	if s > f {
		f = s
	}
	return f + 1
}

// occurs reports whether v occurs in t (for the occurs check: recursive
// types are outside the analysis, §7.2.2).
func (t *lty) occurs(v *lty) bool {
	t = t.resolve()
	if t == v {
		return true
	}
	if t.kind == tyPair {
		return t.fst.occurs(v) || t.snd.occurs(v)
	}
	return false
}

func (t *lty) String() string {
	t = t.resolve()
	switch t.kind {
	case tyInt:
		return "int"
	case tyVar:
		return t.name
	default:
		return "(" + t.fst.String() + " * " + t.snd.String() + ")"
	}
}

// bind binds type variable v to t, with an occurs check.
func bind(v, t *lty) error {
	v = v.resolve()
	t = t.resolve()
	if v == t {
		return nil
	}
	if v.kind != tyVar {
		return fmt.Errorf("flow: cannot bind non-variable %s", v)
	}
	if t.occurs(v) {
		return fmt.Errorf("flow: recursive type %s = %s (recursive types require approximation, §7.2.2)", v.name, t)
	}
	v.ref = t
	return nil
}

// BracketAlphabetSymbol names the open/close bracket for component i at
// level l, e.g. "[2@1".
func openSym(i, l int) string  { return fmt.Sprintf("[%d@%d", i, l) }
func closeSym(i, l int) string { return fmt.Sprintf("]%d@%d", i, l) }

// BracketMachine builds the Figure 10 automaton for pair-bracket matching
// up to depth d: words over {[i@l, ]i@l | i ∈ 1..2, l ∈ 1..d} whose
// brackets cancel. Because the language has no recursive types, open
// levels strictly increase left to right, so the machine's states are the
// strictly-increasing stacks of open brackets (empty stack accepting) plus
// a dead state for violations.
func BracketMachine(d int) *dfa.DFA {
	var names []string
	for l := 1; l <= d; l++ {
		for i := 1; i <= 2; i++ {
			names = append(names, openSym(i, l), closeSym(i, l))
		}
	}
	alpha := dfa.NewAlphabet(names...)

	type frame struct{ i, l int }
	key := func(st []frame) string {
		var b strings.Builder
		for _, f := range st {
			fmt.Fprintf(&b, "%d.%d|", f.i, f.l)
		}
		return b.String()
	}
	index := map[string]dfa.State{}
	var stacks [][]frame
	intern := func(st []frame) dfa.State {
		k := key(st)
		if id, ok := index[k]; ok {
			return id
		}
		id := dfa.State(len(stacks))
		index[k] = id
		stacks = append(stacks, st)
		return id
	}
	start := intern(nil)
	type tr struct {
		from dfa.State
		sym  dfa.Symbol
		to   dfa.State
	}
	var trans []tr
	for n := 0; n < len(stacks); n++ {
		st := stacks[n]
		top := 0
		if len(st) > 0 {
			top = st[len(st)-1].l
		}
		for l := 1; l <= d; l++ {
			for i := 1; i <= 2; i++ {
				if l > top {
					sym, _ := alpha.Lookup(openSym(i, l))
					next := append(append([]frame{}, st...), frame{i, l})
					trans = append(trans, tr{dfa.State(n), sym, intern(next)})
				}
				if len(st) > 0 && st[len(st)-1] == (frame{i, l}) {
					sym, _ := alpha.Lookup(closeSym(i, l))
					trans = append(trans, tr{dfa.State(n), sym, intern(st[:len(st)-1])})
				}
			}
		}
	}
	m := dfa.NewDFA(alpha, len(stacks), start)
	m.SetAccept(start) // empty stack: fully cancelled
	names2 := make([]string, len(stacks))
	for i, st := range stacks {
		if len(st) == 0 {
			names2[i] = "ε"
		} else {
			var b strings.Builder
			for _, f := range st {
				fmt.Fprintf(&b, "[%d@%d", f.i, f.l)
			}
			names2[i] = b.String()
		}
	}
	m.StateName = names2
	for _, t := range trans {
		m.SetTransition(t.from, t.sym, t.to)
	}
	return m.Complete() // violations go to a dead state
}

// CallBracketMachine builds the dual analysis's automaton (§7.6): bracket
// symbols "[site" and "]site" for every call site, with stacking
// restricted to consistent caller chains (a site may be pushed on top of
// site s only when its enclosing function is s's callee) and bounded by
// maxDepth. Recursive (intra-SCC) calls should be given the empty
// annotation by the caller — this is exactly the monomorphic treatment of
// recursion.
func CallBracketMachine(sites []CallSite, maxDepth int) *dfa.DFA {
	var names []string
	for _, s := range sites {
		names = append(names, "["+s.Name, "]"+s.Name)
	}
	alpha := dfa.NewAlphabet(names...)
	byName := map[string]CallSite{}
	var order []string
	for _, s := range sites {
		byName[s.Name] = s
		order = append(order, s.Name)
	}
	sort.Strings(order)

	key := func(st []string) string { return strings.Join(st, "|") }
	index := map[string]dfa.State{}
	var stacks [][]string
	intern := func(st []string) dfa.State {
		k := key(st)
		if id, ok := index[k]; ok {
			return id
		}
		id := dfa.State(len(stacks))
		index[k] = id
		stacks = append(stacks, st)
		return id
	}
	start := intern(nil)
	type tr struct {
		from dfa.State
		sym  dfa.Symbol
		to   dfa.State
	}
	var trans []tr
	for n := 0; n < len(stacks); n++ {
		st := stacks[n]
		for _, name := range order {
			s := byName[name]
			// Push: consistent chains only.
			ok := len(st) < maxDepth
			if ok && len(st) > 0 {
				ok = byName[st[len(st)-1]].Callee == s.Caller
			}
			if ok {
				sym, _ := alpha.Lookup("[" + name)
				trans = append(trans, tr{dfa.State(n), sym, intern(append(append([]string{}, st...), name))})
			}
			if len(st) > 0 && st[len(st)-1] == name {
				sym, _ := alpha.Lookup("]" + name)
				trans = append(trans, tr{dfa.State(n), sym, intern(st[:len(st)-1])})
			}
		}
	}
	m := dfa.NewDFA(alpha, len(stacks), start)
	m.SetAccept(start)
	for _, t := range trans {
		m.SetTransition(t.from, t.sym, t.to)
	}
	return m.Complete()
}

// CallSite describes one instantiation site for CallBracketMachine.
type CallSite struct {
	Name   string
	Caller string // enclosing function
	Callee string
}
