package flow

import (
	"os"
	"testing"
)

func TestFig11Fixture(t *testing.T) {
	src, err := os.ReadFile("testdata/fig11.flow")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(string(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Flows("B", "V"); !ok {
		t.Error("fixture should derive B ⊆ V")
	}
	d, err := AnalyzeDual(string(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Flows("B", "V"); !ok {
		t.Error("dual on fixture should derive B ⊆ V")
	}
}
