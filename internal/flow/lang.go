// Package flow implements the type-based flow analysis application of §7:
// context-sensitive (polymorphic recursive) label flow with non-structural
// subtyping over a first-order functional language with pairs. The
// analysis combines both matching problems the section studies:
//
//   - function call/return matching is modeled context-freely with one
//     unary constructor o_i per call site and its projection (the
//     set-constraint/CFL-reachability reduction of Kodumal & Aiken 2004),
//   - type constructor/destructor matching is modeled regularly with
//     bracket annotations [^i_l and ]^i_l on constraints, whose automaton
//     (Figure 10) is bounded by the depth of the largest type in the
//     program.
//
// The package also implements the dual analysis of §7.6 (roles swapped: a
// binary pair constructor with projections for fields, bracket
// annotations for call sites, recursion approximated monomorphically) and
// stack-aware alias queries (§7.5).
//
// Source syntax, following the paper's examples (labels after ^ name the
// flow variables used in queries):
//
//	pair (y : int) : b = (1^A, y^Y)^P;
//	main () : int = (pair@i 2^B).2^V;
package flow

import (
	"fmt"
	"unicode"
)

// --- AST -----------------------------------------------------------------

// Def is a function definition f(x : τ) : τ' = e or a zero-parameter
// definition f() : τ' = e.
type Def struct {
	Name    string
	Param   string // "" when nullary
	ParamTy *TypeExpr
	RetTy   *TypeExpr
	Body    Expr
	Line    int
}

// Program is a parsed program.
type Program struct {
	Defs   []*Def
	ByName map[string]*Def
}

// TypeExpr is a surface type: int, a type variable, or a pair.
type TypeExpr struct {
	// Kind: "int", "var", "pair".
	Kind     string
	Name     string // for var
	Fst, Snd *TypeExpr
}

func (t *TypeExpr) String() string {
	switch t.Kind {
	case "int":
		return "int"
	case "var":
		return t.Name
	default:
		return "(" + t.Fst.String() + " * " + t.Snd.String() + ")"
	}
}

// Expr is an expression. Every expression can carry an optional label
// annotation ^Name naming its flow variable.
type Expr interface {
	exprNode()
	LabelName() string
	Pos() int
}

type exprBase struct {
	Label string
	Line  int
}

func (b exprBase) LabelName() string { return b.Label }
func (b exprBase) Pos() int          { return b.Line }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value string
}

// VarRef is a variable use.
type VarRef struct {
	exprBase
	Name string
}

// PairExpr is (e1, e2).
type PairExpr struct {
	exprBase
	Fst, Snd Expr
}

// ProjExpr is e.1 or e.2.
type ProjExpr struct {
	exprBase
	X     Expr
	Index int // 1 or 2
}

// CallExpr is f@site e (or f@site for nullary f).
type CallExpr struct {
	exprBase
	Fn   string
	Site string // instantiation site name; auto-generated if omitted
	Arg  Expr   // nil for nullary
}

// LetExpr is let x = e1 in e2 (monomorphic; polymorphism comes from
// named function definitions).
type LetExpr struct {
	exprBase
	Name string
	Val  Expr
	Body Expr
}

func (*IntLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*PairExpr) exprNode() {}
func (*ProjExpr) exprNode() {}
func (*CallExpr) exprNode() {}
func (*LetExpr) exprNode()  {}

// --- Lexer/parser ----------------------------------------------------------

// Error is a flow-language front-end error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("flow:%d: %s", e.Line, e.Msg) }

type fToken struct {
	kind string // ident num punct eof
	text string
	line int
}

func lexFlow(src string) ([]fToken, error) {
	var toks []fToken
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#' || (r == '/' && i+1 < len(rs) && rs[i+1] == '/'):
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, fToken{"ident", string(rs[i:j]), line})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			toks = append(toks, fToken{"num", string(rs[i:j]), line})
			i = j
		default:
			switch r {
			case '(', ')', ',', ':', ';', '=', '*', '.', '^', '@':
				toks = append(toks, fToken{"punct", string(r), line})
				i++
			default:
				return nil, &Error{line, fmt.Sprintf("unexpected character %q", string(r))}
			}
		}
	}
	toks = append(toks, fToken{"eof", "", line})
	return toks, nil
}

type fParser struct {
	toks     []fToken
	pos      int
	autoSite int
}

func (p *fParser) cur() fToken  { return p.toks[p.pos] }
func (p *fParser) bump() fToken { t := p.toks[p.pos]; p.pos++; return t }

func (p *fParser) errf(format string, args ...interface{}) *Error {
	return &Error{p.cur().line, fmt.Sprintf(format, args...)}
}

func (p *fParser) punct(s string) error {
	if p.cur().kind != "punct" || p.cur().text != s {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.bump()
	return nil
}

func (p *fParser) isPunct(s string) bool {
	return p.cur().kind == "punct" && p.cur().text == s
}

func (p *fParser) ident(what string) (fToken, error) {
	if p.cur().kind != "ident" {
		return p.cur(), p.errf("expected %s, found %q", what, p.cur().text)
	}
	return p.bump(), nil
}

// ParseProgram parses a flow-language program.
func ParseProgram(src string) (*Program, error) {
	toks, err := lexFlow(src)
	if err != nil {
		return nil, err
	}
	p := &fParser{toks: toks}
	prog := &Program{ByName: map[string]*Def{}}
	for p.cur().kind != "eof" {
		d, err := p.def()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.ByName[d.Name]; dup {
			return nil, &Error{d.Line, fmt.Sprintf("duplicate definition %q", d.Name)}
		}
		prog.Defs = append(prog.Defs, d)
		prog.ByName[d.Name] = d
	}
	if len(prog.Defs) == 0 {
		return nil, &Error{1, "empty program"}
	}
	return prog, nil
}

// MustParseProgram panics on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *fParser) def() (*Def, error) {
	name, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	d := &Def{Name: name.text, Line: name.line}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		pn, err := p.ident("parameter name")
		if err != nil {
			return nil, err
		}
		d.Param = pn.text
		if err := p.punct(":"); err != nil {
			return nil, err
		}
		d.ParamTy, err = p.typeExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	if err := p.punct(":"); err != nil {
		return nil, err
	}
	d.RetTy, err = p.typeExpr()
	if err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	d.Body, err = p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.punct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// typeExpr := tprimary ('*' tprimary)?   (right-assoc not needed; binary)
func (p *fParser) typeExpr() (*TypeExpr, error) {
	l, err := p.typePrimary()
	if err != nil {
		return nil, err
	}
	if p.isPunct("*") {
		p.bump()
		r, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		return &TypeExpr{Kind: "pair", Fst: l, Snd: r}, nil
	}
	return l, nil
}

func (p *fParser) typePrimary() (*TypeExpr, error) {
	t := p.cur()
	switch {
	case t.kind == "ident" && t.text == "int":
		p.bump()
		return &TypeExpr{Kind: "int"}, nil
	case t.kind == "ident":
		p.bump()
		return &TypeExpr{Kind: "var", Name: t.text}, nil
	case p.isPunct("("):
		p.bump()
		x, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected type, found %q", t.text)
}

// expr := primary postfix*
func (p *fParser) expr() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.postfix(e)
}

func (p *fParser) postfix(e Expr) (Expr, error) {
	for {
		switch {
		case p.isPunct("."):
			p.bump()
			n := p.cur()
			if n.kind != "num" || (n.text != "1" && n.text != "2") {
				return nil, p.errf("expected projection index 1 or 2")
			}
			p.bump()
			idx := 1
			if n.text == "2" {
				idx = 2
			}
			pe := &ProjExpr{X: e, Index: idx}
			pe.Line = n.line
			e = pe
		case p.isPunct("^"):
			p.bump()
			lbl, err := p.ident("label name")
			if err != nil {
				return nil, err
			}
			e = withLabel(e, lbl.text)
		default:
			return e, nil
		}
	}
}

func withLabel(e Expr, lbl string) Expr {
	switch x := e.(type) {
	case *IntLit:
		x.Label = lbl
	case *VarRef:
		x.Label = lbl
	case *PairExpr:
		x.Label = lbl
	case *ProjExpr:
		x.Label = lbl
	case *CallExpr:
		x.Label = lbl
	}
	return e
}

func (p *fParser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == "num":
		p.bump()
		e := &IntLit{Value: t.text}
		e.Line = t.line
		return p.postfix(e)
	case t.kind == "ident" && t.text == "let":
		p.bump()
		name, err := p.ident("let-bound name")
		if err != nil {
			return nil, err
		}
		if err := p.punct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if in := p.cur(); in.kind != "ident" || in.text != "in" {
			return nil, p.errf("expected 'in', found %q", in.text)
		}
		p.bump()
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		le := &LetExpr{Name: name.text, Val: val, Body: body}
		le.Line = t.line
		return le, nil
	case t.kind == "ident":
		p.bump()
		// Call: f@site arg, f@site, or f arg (auto site); otherwise a
		// variable reference.
		site := ""
		if p.isPunct("@") {
			p.bump()
			s := p.cur()
			if s.kind != "ident" && s.kind != "num" {
				return nil, p.errf("expected instantiation site after @")
			}
			p.bump()
			site = s.text
		}
		if site != "" || p.startsExpr() {
			c := &CallExpr{Fn: t.text, Site: site}
			c.Line = t.line
			if site == "" {
				p.autoSite++
				c.Site = fmt.Sprintf("s%d", p.autoSite)
			}
			if p.startsExpr() {
				arg, err := p.primary()
				if err != nil {
					return nil, err
				}
				c.Arg = arg
			}
			return c, nil
		}
		v := &VarRef{Name: t.text}
		v.Line = t.line
		return v, nil
	case p.isPunct("("):
		p.bump()
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.isPunct(",") {
			p.bump()
			second, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.punct(")"); err != nil {
				return nil, err
			}
			pe := &PairExpr{Fst: first, Snd: second}
			pe.Line = t.line
			return pe, nil
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		return first, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}

// startsExpr reports whether the current token can begin an argument.
// An identifier directly following a function name is always an argument:
// the language has no other juxtaposition.
func (p *fParser) startsExpr() bool {
	t := p.cur()
	return t.kind == "num" || t.kind == "ident" || p.isPunct("(")
}
