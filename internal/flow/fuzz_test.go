package flow

import "testing"

// FuzzAnalyze checks the whole front end + analysis pipeline never panics
// on arbitrary program text.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		fig11,
		"main () : int = 1;",
		"id (x : int) : int = x; main () : int = id@1 1;",
		"main () : int = let p = (1, 2) in p.1;",
		"main () : int = (((1,2),3),4).1.1.1;",
		"f (p : int * int) : int = p.2; main () : int = f@1 (1, 2);",
		"broken ( : int = ;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := Analyze(src, Options{MonoidLimit: 512})
		if err != nil {
			return
		}
		_ = a.MaxDepth
		// The dual analysis must also be total on valid inputs.
		if _, err := AnalyzeDual(src, Options{MonoidLimit: 512}); err != nil {
			t.Fatalf("primal ok but dual failed: %v", err)
		}
	})
}
