package flow

import (
	"fmt"
	"sort"

	"rasc/internal/core"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// DualAnalysis implements §7.6: the roles of terms and annotations are
// swapped relative to the primal analysis. A binary constructor pair(·,·)
// with projections pair^-1, pair^-2 models field construction and
// destruction context-freely, while call/return matching is reduced to a
// regular language of call-site brackets [i and ]i; mutually recursive
// calls get the empty annotation, which is exactly the monomorphic
// treatment of recursion used by most context-sensitive analyses.
type DualAnalysis struct {
	Prog *Program
	Sys  *core.System
	Mon  *monoid.Monoid
	Sig  *terms.Signature
	// CallDepth is the call-chain bound of the bracket machine (the
	// condensation depth of the call graph).
	CallDepth int

	labelVar map[int]core.VarID
	named    map[string]int
	probes   map[string]core.CNode
	defs     map[string]*fnInfo
	nextLbl  int
	recs     []rec
	pairCons terms.ConsID
}

// AnalyzeDual runs the dual analysis on a program source.
func AnalyzeDual(src string, opts Options) (*DualAnalysis, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	a := &DualAnalysis{
		Prog:     prog,
		labelVar: map[int]core.VarID{},
		named:    map[string]int{},
		probes:   map[string]core.CNode{},
		defs:     map[string]*fnInfo{},
	}
	// Reuse the primal front end for typing: it records the same recs.
	p := &Analysis{
		Prog:     prog,
		labelVar: map[int]core.VarID{},
		named:    map[string]int{},
		probes:   map[string]core.CNode{},
		exprTy:   map[Expr]*lty{},
		defs:     map[string]*fnInfo{},
	}
	for _, d := range prog.Defs {
		scope := map[string]*lty{}
		fi := &fnInfo{}
		if d.Param != "" {
			fi.param = p.spread(d.ParamTy, scope)
		}
		fi.ret = p.spread(d.RetTy, scope)
		p.defs[d.Name] = fi
	}
	siteCaller := map[string]string{}
	siteCallee := map[string]string{}
	for _, d := range prog.Defs {
		fi := p.defs[d.Name]
		env := map[string]*lty{}
		if d.Param != "" {
			env[d.Param] = fi.param
		}
		// Record call sites' enclosing function for the bracket machine.
		collectSites(d.Body, d.Name, siteCaller, siteCallee)
		bodyTy, err := p.typeExpr(d.Body, env)
		if err != nil {
			return nil, err
		}
		if err := p.sub(bodyTy, fi.ret, d.Line); err != nil {
			return nil, err
		}
	}
	a.named = p.named
	a.nextLbl = p.nextLbl
	a.recs = p.recs
	a.defs = p.defs

	// Build the call-site bracket machine over the call graph's
	// condensation; intra-SCC sites are recursive and excluded (ε).
	recursive := recursiveSites(prog, siteCaller, siteCallee)
	var sites []CallSite
	for name, caller := range siteCaller {
		if recursive[name] {
			continue
		}
		sites = append(sites, CallSite{Name: name, Caller: caller, Callee: siteCallee[name]})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Name < sites[j].Name })
	a.CallDepth = chainDepth(sites)
	machine := CallBracketMachine(sites, a.CallDepth)
	mon, err := monoid.Build(machine, opts.MonoidLimit)
	if err != nil {
		return nil, err
	}
	a.Mon = mon
	a.Sig = terms.NewSignature()
	a.pairCons = a.Sig.MustDeclare("pair", 2)
	a.Sys = core.NewSystem(core.FuncAlgebra{Mon: mon}, a.Sig, opts.Solver)

	ident := core.Annot(mon.Identity())
	annot := func(sym string) core.Annot {
		if f, ok := mon.SymbolFuncByName(sym); ok {
			return core.Annot(f)
		}
		return ident // recursive site: monomorphic ε
	}

	for _, r := range a.recs {
		switch r.kind {
		case recSub:
			if r.from.label != r.to.label {
				a.Sys.AddVar(a.varOf(r.from.label), a.varOf(r.to.label), ident)
			}
		case recPair:
			// pair(A, Y) ⊆ H: construction as a term (§7.6 uses the n-ary
			// constructor to cluster the components).
			cn := a.Sys.Cons(a.pairCons,
				a.varOf(r.ty.resolve().fst.label),
				a.varOf(r.ty.resolve().snd.label))
			a.Sys.AddLowerE(cn, a.varOf(r.ty.label))
		case recProj:
			// pair^-i(T) ⊆ V.
			a.Sys.AddProjE(a.pairCons, r.idx-1, a.varOf(r.xTy.label), a.varOf(r.resTy.label))
		case recCall:
			// B ⊆^{[i} Y and H ⊆^{]i} T.
			if r.argTy != nil && r.fn.param != nil {
				a.Sys.AddVar(a.varOf(r.argTy.label), a.varOf(r.fn.param.label), annot("["+r.site))
			}
			a.Sys.AddVar(a.varOf(r.fn.ret.label), a.varOf(r.callTy.label), annot("]"+r.site))
		}
	}
	a.Sys.Solve()
	return a, nil
}

// MustAnalyzeDual panics on error.
func MustAnalyzeDual(src string) *DualAnalysis {
	a, err := AnalyzeDual(src, Options{})
	if err != nil {
		panic(err)
	}
	return a
}

func collectSites(e Expr, fn string, caller, callee map[string]string) {
	switch x := e.(type) {
	case *PairExpr:
		collectSites(x.Fst, fn, caller, callee)
		collectSites(x.Snd, fn, caller, callee)
	case *ProjExpr:
		collectSites(x.X, fn, caller, callee)
	case *CallExpr:
		caller[x.Site] = fn
		callee[x.Site] = x.Fn
		if x.Arg != nil {
			collectSites(x.Arg, fn, caller, callee)
		}
	case *LetExpr:
		collectSites(x.Val, fn, caller, callee)
		collectSites(x.Body, fn, caller, callee)
	}
}

// recursiveSites marks call sites inside call-graph cycles (their
// caller's SCC contains their callee).
func recursiveSites(prog *Program, siteCaller, siteCallee map[string]string) map[string]bool {
	// Call graph adjacency.
	adj := map[string][]string{}
	for s, c := range siteCaller {
		adj[c] = append(adj[c], siteCallee[s])
	}
	// Simple SCC via repeated reachability (programs are small).
	reach := func(from string) map[string]bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range adj[f] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		return seen
	}
	sameSCC := func(a, b string) bool {
		return a == b && reach(a)[a] || reach(a)[b] && reach(b)[a]
	}
	out := map[string]bool{}
	for s := range siteCaller {
		caller, callee := siteCaller[s], siteCallee[s]
		if caller == callee {
			out[s] = true
			continue
		}
		if sameSCC(caller, callee) {
			out[s] = true
		}
	}
	return out
}

// chainDepth returns the longest consistent caller chain over the
// non-recursive sites (the bracket machine's stack bound).
func chainDepth(sites []CallSite) int {
	// Longest path in the site DAG where s2 can follow s1 iff
	// s1.Callee == s2.Caller... measured from any site.
	memo := map[string]int{}
	var depth func(s CallSite) int
	depth = func(s CallSite) int {
		if d, ok := memo[s.Name]; ok {
			return d
		}
		memo[s.Name] = 1 // cycle guard (should not trigger: recursion excluded)
		best := 1
		for _, t := range sites {
			if s.Callee == t.Caller {
				if d := depth(t) + 1; d > best {
					best = d
				}
			}
		}
		memo[s.Name] = best
		return best
	}
	best := 0
	for _, s := range sites {
		if d := depth(s); d > best {
			best = d
		}
	}
	return best
}

func (a *DualAnalysis) varOf(lbl int) core.VarID {
	if v, ok := a.labelVar[lbl]; ok {
		return v
	}
	v := a.Sys.Var(fmt.Sprintf("L%d", lbl))
	a.labelVar[lbl] = v
	return v
}

// Label resolves a user label name.
func (a *DualAnalysis) Label(name string) (core.VarID, bool) {
	id, ok := a.named[name]
	if !ok {
		return 0, false
	}
	return a.varOf(id), true
}

// Flows answers the matched flow query in the dual encoding.
func (a *DualAnalysis) Flows(from, to string) (bool, error) {
	cn, ok := a.probes[from]
	if !ok {
		v, okL := a.Label(from)
		if !okL {
			return false, fmt.Errorf("flow: unknown label %q", from)
		}
		c := a.Sig.MustDeclare("probe@"+from, 0)
		cn = a.Sys.Constant(c)
		a.Sys.AddLowerE(cn, v)
		a.Sys.Solve()
		a.probes[from] = cn
	}
	v, ok2 := a.Label(to)
	if !ok2 {
		return false, fmt.Errorf("flow: unknown label %q", to)
	}
	return a.Sys.ConstEntailed(cn, v), nil
}
