package flow

import (
	"strings"
	"testing"

	"rasc/internal/core"
	"rasc/internal/terms"
)

// The Figure 11 program, with the paper's label names.
const fig11 = `
pair (y : int) : b = (1^A, y^Y)^P;
main () : int = (pair@i 2^B).2^V;
`

func TestParseFlowProgram(t *testing.T) {
	prog, err := ParseProgram(fig11)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Defs) != 2 {
		t.Fatalf("got %d defs, want 2", len(prog.Defs))
	}
	d := prog.ByName["pair"]
	if d.Param != "y" || d.ParamTy.Kind != "int" || d.RetTy.Kind != "var" {
		t.Error("pair signature parsed wrong")
	}
	body, ok := d.Body.(*PairExpr)
	if !ok {
		t.Fatalf("pair body is %T", d.Body)
	}
	if body.LabelName() != "P" {
		t.Errorf("pair label = %q, want P", body.LabelName())
	}
	mainBody, ok := prog.ByName["main"].Body.(*ProjExpr)
	if !ok {
		t.Fatalf("main body is %T", prog.ByName["main"].Body)
	}
	if mainBody.Index != 2 || mainBody.LabelName() != "V" {
		t.Error("projection parsed wrong")
	}
	call, ok := mainBody.X.(*CallExpr)
	if !ok || call.Fn != "pair" || call.Site != "i" {
		t.Error("call parsed wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "empty program"},
		{"f () : int = 1; f () : int = 2;", "duplicate definition"},
		{"f () : int = $;", "unexpected character"},
		{"f () : int = (1,2).3;", "projection index"},
		{"f (x : ) : int = 1;", "expected type"},
		{"f () : int = 1", "expected \";\""},
	}
	for _, c := range cases {
		if _, err := ParseProgram(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseProgram(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestBracketMachineDepth1(t *testing.T) {
	m := BracketMachine(1)
	// [1]1 and [2]2 cancel; [1]2 does not; ε accepts.
	if !m.AcceptsNames("[1@1", "]1@1") {
		t.Error("[1]1 should cancel")
	}
	if !m.AcceptsNames("[2@1", "]2@1") {
		t.Error("[2]2 should cancel")
	}
	if m.AcceptsNames("[1@1", "]2@1") {
		t.Error("[1]2 must not cancel")
	}
	if !m.AcceptsNames() {
		t.Error("ε should accept")
	}
	if !m.AcceptsNames("[1@1", "]1@1", "[2@1", "]2@1") {
		t.Error("sequential matched pairs should accept")
	}
	// No recursive types: [1 cannot follow [1 without closing.
	if m.AcceptsNames("[1@1", "[1@1", "]1@1", "]1@1") {
		t.Error("same-level nesting must be rejected (no recursive types)")
	}
}

func TestBracketMachineDepth2(t *testing.T) {
	m := BracketMachine(2)
	// Inner (level 1) then outer (level 2), closed in LIFO order.
	if !m.AcceptsNames("[1@1", "[2@2", "]2@2", "]1@1") {
		t.Error("nested levels should cancel")
	}
	if m.AcceptsNames("[2@2", "[1@1", "]1@1", "]2@2") {
		t.Error("opening a lower level inside a higher one is impossible without recursive types")
	}
	if m.AcceptsNames("[1@1", "[2@2", "]1@1", "]2@2") {
		t.Error("crossing brackets must be rejected")
	}
}

// §7.4 / Figure 12: B flows to V through the call and the pair; A (the
// literal 1's label) does not flow to V (it is the first component).
func TestFigure11Flow(t *testing.T) {
	a := MustAnalyze(fig11)
	if a.MaxDepth != 1 {
		t.Errorf("MaxDepth = %d, want 1", a.MaxDepth)
	}
	got, err := a.Flows("B", "V")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("B should flow to V (the paper's B ⊆ V)")
	}
	got, err = a.Flows("A", "V")
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("A must not flow to V (wrong component)")
	}
	// And into the pair: A reaches P but only with an open bracket, so
	// the matched (accepting) query says no while raw reachability says
	// yes.
	if ok, _ := a.Flows("A", "P"); ok {
		t.Error("A reaches P only with an unclosed bracket: matched flow must say no")
	}
	if ok, _ := a.Reaches("A", "P"); !ok {
		t.Error("A should reach P with a non-accepting annotation")
	}
}

// Context sensitivity of the primal analysis: two call sites of the
// identity function must not be conflated.
func TestPolymorphicCallSites(t *testing.T) {
	src := `
id (x : int) : int = x^X;
main () : int = (id@1 1^One, id@2 2^Two)^Res;
`
	a := MustAnalyze(src)
	one2, err := a.Flows("One", "Two")
	if err != nil {
		t.Fatal(err)
	}
	if one2 {
		t.Error("One must not flow to Two")
	}
	// Both flow through X (the shared parameter/body), but only as
	// partially matched flow: o_1(One) ⊆ X has an unmatched call.
	if ok, _ := a.FlowsPN("One", "X"); !ok {
		t.Error("One should reach X partially matched")
	}
}

// Matched flow through a call: the result of id@1 1 is 1, not 2.
func TestCallResultFlow(t *testing.T) {
	src := `
id (x : int) : int = x;
main () : int = (id@1 1^One).1;
`
	// .1 on an int would be a type error; use a pair result instead.
	_ = src
	src2 := `
id (x : int) : int = x;
wrap (z : int) : int * int = (z^Z, 3^Three)^W;
main () : int = (wrap@w (id@1 1^One)).1^Out;
`
	a := MustAnalyze(src2)
	if ok, _ := a.Flows("One", "Out"); !ok {
		t.Error("One should flow to Out through id, wrap and .1")
	}
	if ok, _ := a.Flows("Three", "Out"); ok {
		t.Error("Three is the second component; must not flow to Out")
	}
}

// Polymorphic recursion: a recursive function keeps call sites apart.
func TestPolymorphicRecursion(t *testing.T) {
	src := `
rec (x : int) : int = rec@r x;
main () : int = (rec@1 1^One, rec@2 2^Two)^P;
`
	a := MustAnalyze(src)
	if ok, _ := a.Flows("One", "Two"); ok {
		t.Error("recursion must not conflate call sites")
	}
}

// Nested pairs exercise depth-2 brackets.
func TestNestedPairFlow(t *testing.T) {
	src := `
main () : int = (((1^In, 2)^Inner, 3)^Outer).1.1^Out;
`
	a := MustAnalyze(src)
	if a.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", a.MaxDepth)
	}
	if ok, _ := a.Flows("In", "Out"); !ok {
		t.Error("In should flow to Out through two levels")
	}
}

// Regression: projection results must preserve the component's type depth
// so bracket levels stay consistent across chained projections (depth 3
// breaks if results degrade to depth-1 skeletons).
func TestTripleNestedPairFlow(t *testing.T) {
	src := `
main () : int = ((((1^In, 2), 3), 4).1.1.1)^Out;
`
	a := MustAnalyze(src)
	if a.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", a.MaxDepth)
	}
	if ok, _ := a.Flows("In", "Out"); !ok {
		t.Error("In should flow to Out through three levels")
	}
}

// Call results must preserve the callee's result depth for later
// projections.
func TestCallResultDepth(t *testing.T) {
	src := `
mk (z : int) : (int * int) * int = ((z^Z, 1), 2)^P;
main () : int = (mk@1 7^Seven).1.1^Out;
`
	a := MustAnalyze(src)
	if ok, _ := a.Flows("Seven", "Out"); !ok {
		t.Error("Seven should flow through the call and two projections")
	}
	if ok, _ := a.Flows("Z", "Out"); ok {
		t.Error("Z is the parameter's label; matched flow carries Seven, not Z itself... Z and Seven share the cell")
	}
}

func TestNestedPairWrongComponent(t *testing.T) {
	src := `
main () : int = (((1, 2^In)^Inner, 3)^Outer).1.1^Out;
`
	a := MustAnalyze(src)
	if ok, _ := a.Flows("In", "Out"); ok {
		t.Error("In is component 2; .1.1 must not receive it")
	}
}

// Non-structural subtyping: the paper's motivation is that σ and σ' need
// not share structure; a function can declare an opaque result type. A
// value created in the callee escapes through an unmatched return, so the
// query needs PN reachability (§7.3).
func TestNonStructuralResultVar(t *testing.T) {
	src := `
mk () : r = (1^A, 2^B)^P;
main () : int = (mk@1).2^V;
`
	a := MustAnalyze(src)
	if ok, _ := a.FlowsPN("B", "V"); !ok {
		t.Error("B should flow to V through the opaque result type (PN)")
	}
	if ok, _ := a.FlowsPN("A", "V"); ok {
		t.Error("A must not flow to V even with PN")
	}
	// The matched-only query cannot see the unmatched return.
	if ok, _ := a.Flows("B", "V"); ok {
		t.Error("matched-only flow should miss the callee-origin value")
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main () : int = 1.1;", "non-pair"},
		{"main () : int = x;", "unbound variable"},
		{"main () : int = nope@1 1;", "undefined function"},
		{"f () : int = 1; main () : int = f@1 2;", "takes no argument"},
		{"f (x : int) : int = x; main () : int = f@1;", "requires an argument"},
		{"main () : int = (1^L, 2^L);", "duplicate label"},
	}
	for _, c := range cases {
		if _, err := Analyze(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Analyze(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestUnknownLabelQueries(t *testing.T) {
	a := MustAnalyze(fig11)
	if _, err := a.Flows("Nope", "V"); err == nil {
		t.Error("unknown source label should error")
	}
	if _, err := a.Flows("B", "Nope"); err == nil {
		t.Error("unknown target label should error")
	}
}

// --- Dual analysis (§7.6) -------------------------------------------------

func TestDualAnalysisFigure11(t *testing.T) {
	a := MustAnalyzeDual(fig11)
	got, err := a.Flows("B", "V")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("dual analysis should derive B ⊆ V")
	}
	if ok, _ := a.Flows("A", "V"); ok {
		t.Error("dual analysis must not flow A to V")
	}
}

func TestDualPolymorphicCallSites(t *testing.T) {
	src := `
id (x : int) : int = x^X;
main () : int = (id@1 1^One, id@2 2^Two)^Res;
`
	a, err := AnalyzeDual(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Flows("One", "Two"); ok {
		t.Error("dual analysis must keep call sites apart")
	}
}

// §7.6's key approximation: recursion is monomorphic in the dual
// analysis, so recursive call sites ARE conflated (unlike the primal).
func TestDualMonomorphicRecursion(t *testing.T) {
	src := `
rec (x : int) : int = rec@r x;
main () : int = (rec@1 1^One, rec@2 2^Two)^P;
`
	// The primal analysis keeps them apart (polymorphic recursion).
	pa := MustAnalyze(src)
	if ok, _ := pa.Flows("One", "Two"); ok {
		t.Error("primal: call sites must stay apart under recursion")
	}
	// The dual still distinguishes the two *outer* sites 1 and 2 (they
	// are non-recursive); only the inner recursive site r collapses.
	da := MustAnalyzeDual(src)
	if ok, _ := da.Flows("One", "Two"); ok {
		t.Error("dual: the outer sites are not recursive and stay apart")
	}
}

func TestDualAgreesWithPrimalOnCorpus(t *testing.T) {
	corpus := []struct {
		src      string
		from, to string
		want     bool
	}{
		{fig11, "B", "V", true},
		{fig11, "A", "V", false},
		{`
id (x : int) : int = x;
wrap (z : int) : int * int = (z, 3^Three)^W;
main () : int = (wrap@w (id@1 1^One)).1^Out;
`, "One", "Out", true},
		{`
swap (p : int * int) : int * int = (p.2^S2, p.1^S1);
main () : int = (swap@1 (1^A, 2^B)).1^Out;
`, "B", "Out", true},
		{`
swap (p : int * int) : int * int = (p.2, p.1);
main () : int = (swap@1 (1^A, 2^B)).1^Out;
`, "A", "Out", false},
	}
	for i, c := range corpus {
		pa, err := Analyze(c.src, Options{})
		if err != nil {
			t.Fatalf("case %d primal: %v", i, err)
		}
		da, err := AnalyzeDual(c.src, Options{})
		if err != nil {
			t.Fatalf("case %d dual: %v", i, err)
		}
		pg, err := pa.Flows(c.from, c.to)
		if err != nil {
			t.Fatal(err)
		}
		dg, err := da.Flows(c.from, c.to)
		if err != nil {
			t.Fatal(err)
		}
		if pg != c.want {
			t.Errorf("case %d: primal %s→%s = %v, want %v", i, c.from, c.to, pg, c.want)
		}
		if dg != c.want {
			t.Errorf("case %d: dual %s→%s = %v, want %v", i, c.from, c.to, dg, c.want)
		}
	}
}

// --- Stack-aware aliasing (§7.5) -------------------------------------------

// The paper's example: foo(&a,&b) at site 1 and foo(&b,&a) at site 2.
// pt(x) and pt(y) intersect as locations but not as stack-annotated terms.
func TestStackAwareAliasing(t *testing.T) {
	sig := terms.NewSignature()
	locA := sig.MustDeclare("a", 0)
	locB := sig.MustDeclare("b", 0)
	o1 := sig.MustDeclare("o1", 1)
	o2 := sig.MustDeclare("o2", 1)

	sys := core.NewSystem(core.TrivialAlgebra{}, sig, core.Options{})
	// Points-to inputs at the two call sites.
	A1, B1 := sys.Var("argA@1"), sys.Var("argB@1")
	A2, B2 := sys.Var("argA@2"), sys.Var("argB@2")
	X, Y := sys.Var("x"), sys.Var("y")
	sys.AddLowerE(sys.Constant(locA), A1)
	sys.AddLowerE(sys.Constant(locB), B1)
	sys.AddLowerE(sys.Constant(locB), A2)
	sys.AddLowerE(sys.Constant(locA), B2)
	// x receives the first argument wrapped per call site; y the second.
	sys.AddLowerE(sys.Cons(o1, A1), X)
	sys.AddLowerE(sys.Cons(o2, A2), X)
	sys.AddLowerE(sys.Cons(o1, B1), Y)
	sys.AddLowerE(sys.Cons(o2, B2), Y)
	sys.Solve()

	bank := terms.NewBank(sig)
	aliased, common := StackAwareAlias(sys, X, Y, bank, 3, 0)
	if aliased {
		names := make([]string, len(common))
		for i, c := range common {
			names[i] = bank.String(c, nil)
		}
		t.Errorf("stack-aware query must prove no alias; common = %v", names)
	}
	// The context-insensitive foil says "may alias".
	if !LocationAlias(sys, X, Y, bank, 3, 0) {
		t.Error("location-based query should (imprecisely) report aliasing")
	}
	// Sanity: x aliases x.
	if ok, _ := StackAwareAlias(sys, X, X, bank, 3, 0); !ok {
		t.Error("x must alias itself")
	}
}

// The forward strategy answers the same flow queries (§9's suggested
// scalable implementation).
func TestFlowsForwardAgrees(t *testing.T) {
	cases := []struct {
		src      string
		from, to string
	}{
		{fig11, "B", "V"},
		{fig11, "A", "V"},
		{`
id (x : int) : int = x;
wrap (z : int) : int * int = (z, 3^Three)^W;
main () : int = (wrap@w (id@1 1^One)).1^Out;
`, "One", "Out"},
		{`
main () : int = (((1^In, 2), 3).1.1)^Out;
`, "In", "Out"},
	}
	for i, c := range cases {
		a, err := Analyze(c.src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bidir, err := a.Flows(c.from, c.to)
		if err != nil {
			t.Fatal(err)
		}
		fwd, err := a.FlowsForward(c.from, c.to)
		if err != nil {
			t.Fatal(err)
		}
		if bidir != fwd {
			t.Errorf("case %d: bidirectional=%v forward=%v", i, bidir, fwd)
		}
	}
}

func TestLetExpression(t *testing.T) {
	src := `
main () : int = let p = (1^A, 2^B) in p.2^Out;
`
	a := MustAnalyze(src)
	if ok, _ := a.Flows("B", "Out"); !ok {
		t.Error("B should flow through the let binding")
	}
	if ok, _ := a.Flows("A", "Out"); ok {
		t.Error("A must not flow to Out")
	}
	// Nested lets and shadowing.
	src2 := `
main () : int = let x = 1^First in let x = 2^Second in x^Use;
`
	a2 := MustAnalyze(src2)
	if ok, _ := a2.Flows("Second", "Use"); !ok {
		t.Error("inner binding should shadow")
	}
	if ok, _ := a2.Flows("First", "Use"); ok {
		t.Error("outer binding is shadowed")
	}
}

func TestLetParseErrors(t *testing.T) {
	for _, src := range []string{
		"main () : int = let = 1 in 2;",
		"main () : int = let x = 1 2;",
		"main () : int = let x 1 in 2;",
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestLetInDualAnalysis(t *testing.T) {
	src := `
id (x : int) : int = x;
main () : int = let v = id@1 1^One in v^Use;
`
	d := MustAnalyzeDual(src)
	if ok, _ := d.Flows("One", "Use"); !ok {
		t.Error("dual analysis should flow through let")
	}
}
