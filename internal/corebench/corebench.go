// Package corebench defines the solver-only microbenchmark scenarios
// shared by the cmd/benchgen -core-json report and the Go benchmarks in
// internal/core. Each scenario isolates one hot path of the online
// solver — transitive closure over chains, projection fan-out through
// constructor expressions, cycle collapsing, and copy-on-write forking
// of a solved base — on synthetic constraint systems with no front end
// in the loop.
package corebench

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// Scenario is one microbenchmark. Setup performs unmeasured
// preparation and returns the operation to measure; the operation must
// be repeatable (each call does the full measured work) and returns the
// final solver statistics so callers can sanity-check the workload and
// keep the work observable.
type Scenario struct {
	Name string
	Desc string
	// Setup builds the scenario under opts and returns the measured op.
	Setup func(opts core.Options) func() core.Stats
}

// oneBitMonoid is the 1-bit gen/kill transition monoid of §3.3: three
// elements (ε, gen, kill), enough to exercise annotation composition
// without the annotation table dominating the measurement.
func oneBitMonoid() *monoid.Monoid {
	alpha := dfa.NewAlphabet("g", "k")
	d := dfa.NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	m, err := monoid.Build(d, 0)
	if err != nil {
		panic("corebench: " + err.Error())
	}
	return m
}

// Scenarios returns the benchmark suite in report order.
func Scenarios() []Scenario {
	return []Scenario{
		transitiveChain(2000, 8),
		projectionFanout(64, 64),
		cycleHeavy(64, 32),
		forkReuse(1500, 9, 40),
	}
}

// transitiveChain propagates k constants down an n-variable chain of
// annotated edges: the pure transitive-closure hot path (addEdge /
// addReach with the reach-set lookup on every step).
func transitiveChain(n, k int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("transitive-chain/n=%d,k=%d", n, k),
		Desc: "k constants propagated through an n-variable chain of annotated edges",
		Setup: func(opts core.Options) func() core.Stats {
			mon := oneBitMonoid()
			g, _ := mon.SymbolFuncByName("g")
			kf, _ := mon.SymbolFuncByName("k")
			return func() core.Stats {
				sig := terms.NewSignature()
				sys := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, opts)
				sys.ReserveVars(n)
				vars := make([]core.VarID, n)
				for i := range vars {
					vars[i] = sys.Anon()
				}
				for i := 0; i+1 < n; i++ {
					a := core.Annot(g)
					if i%2 == 1 {
						a = core.Annot(kf)
					}
					sys.AddVar(vars[i], vars[i+1], a)
				}
				for j := 0; j < k; j++ {
					c := sig.MustDeclare(fmt.Sprintf("c%d", j), 0)
					sys.AddLowerE(sys.Constant(c), vars[0])
				}
				sys.Solve()
				return sys.Stats()
			}
		},
	}
}

// projectionFanout routes m constructor terms through one variable and
// projects them onto f targets: the proj/occur fan-out hot path, where
// every new lower bound triggers a pass over the pending projections.
func projectionFanout(m, f int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("projection-fanout/m=%d,f=%d", m, f),
		Desc: "m constructor terms meeting f projections on one variable",
		Setup: func(opts core.Options) func() core.Stats {
			return func() core.Stats {
				sig := terms.NewSignature()
				sys := core.NewSystem(core.TrivialAlgebra{}, sig, opts)
				cc := sig.MustDeclare("c", 1)
				sys.ReserveVars(2*m + f + 1)
				hub := sys.Anon()
				srcs := make([]core.VarID, m)
				for i := range srcs {
					srcs[i] = sys.Anon()
					ki := sig.MustDeclare(fmt.Sprintf("k%d", i), 0)
					sys.AddLowerE(sys.Constant(ki), srcs[i])
					sys.AddLowerE(sys.Cons(cc, srcs[i]), hub)
				}
				for j := 0; j < f; j++ {
					sys.AddProjE(cc, 0, hub, sys.Anon())
				}
				sys.Solve()
				return sys.Stats()
			}
		},
	}
}

// cycleHeavy chains r rings of s ε-edges each, seeding a constant at the
// head: the online cycle-elimination hot path (tryCollapse DFS plus
// union-find merging) dominates, since every ring collapses to one
// representative as its closing edge arrives.
func cycleHeavy(r, s int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("cycle-heavy/rings=%d,size=%d", r, s),
		Desc: "r rings of s identity edges, collapsed online, linked in a chain",
		Setup: func(opts core.Options) func() core.Stats {
			return func() core.Stats {
				sig := terms.NewSignature()
				sys := core.NewSystem(core.TrivialAlgebra{}, sig, opts)
				sys.ReserveVars(r * s)
				rings := make([][]core.VarID, r)
				for i := range rings {
					ring := make([]core.VarID, s)
					for j := range ring {
						ring[j] = sys.Anon()
					}
					for j := range ring {
						sys.AddVarE(ring[j], ring[(j+1)%s])
					}
					rings[i] = ring
					if i > 0 {
						sys.AddVarE(rings[i-1][s/2], ring[0])
					}
				}
				c := sig.MustDeclare("seed", 0)
				sys.AddLowerE(sys.Constant(c), rings[0][0])
				sys.Solve()
				return sys.Stats()
			}
		},
	}
}

// forkReuse builds and solves one n-variable base system (unmeasured),
// then measures layering k property-sized deltas of e annotated edges
// each on copy-on-write forks — the driver's shared-skeleton pattern.
// The measured op covers Fork + layer insertion + the incremental solve,
// and returns the summed per-fork delta stats.
func forkReuse(n, k, e int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("fork-reuse/base=%d,forks=%d,layer=%d", n, k, e),
		Desc: "k copy-on-write forks of one solved base, each layering e annotated edges",
		Setup: func(opts core.Options) func() core.Stats {
			mon := oneBitMonoid()
			g, _ := mon.SymbolFuncByName("g")
			sig := terms.NewSignature()
			base := core.NewSystem(core.TrivialAlgebra{}, sig, opts)
			base.ReserveVars(n)
			vars := make([]core.VarID, n)
			for i := range vars {
				vars[i] = base.Anon()
			}
			for i := 0; i+1 < n; i++ {
				base.AddVarE(vars[i], vars[i+1])
			}
			// Sparse back edges give the base some derived structure
			// without collapsing the whole chain into one ring.
			for i := 100; i < n; i += 100 {
				base.AddVarE(vars[i], vars[i-50])
			}
			c := sig.MustDeclare("seed", 0)
			base.AddLowerE(base.Constant(c), vars[0])
			base.Solve()
			base.Freeze()
			baseStats := base.Stats()
			return func() core.Stats {
				var sum core.Stats
				for j := 0; j < k; j++ {
					f := base.Fork(core.FuncAlgebra{Mon: mon})
					for x := 0; x < e; x++ {
						from := vars[(x*37+j*113)%(n-1)]
						f.AddVar(from, vars[(x*53+j*71)%(n-1)], core.Annot(g))
					}
					f.Solve()
					d := f.Stats().Minus(baseStats)
					sum.Vars += d.Vars
					sum.ConsNodes += d.ConsNodes
					sum.Reach += d.Reach
					sum.Edges += d.Edges
					sum.Collapsed += d.Collapsed
					sum.Clashes += d.Clashes
				}
				return sum
			}
		},
	}
}
