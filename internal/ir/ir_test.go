package ir

import (
	"strings"
	"testing"
)

// diamond: main -> {left, right} -> shared; plus a two-function cycle
// (ping <-> pong) reachable from right, and an unreachable extra.
const diamondSrc = `
void main() {
    left();
    right();
}
void left() {
    shared();
}
void right() {
    shared();
    ping();
}
void shared() {
    work(1);
}
void ping() {
    pong();
}
void pong() {
    ping();
}
void extra() {
    work(2);
}
`

func mustLower(t *testing.T, src string) *Program {
	t.Helper()
	p, err := FromMiniC(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func names(p *Program, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = p.Funcs[id].Name
	}
	return out
}

func TestCallGraphAndSCCs(t *testing.T) {
	p := mustLower(t, diamondSrc)
	if len(p.Funcs) != 7 {
		t.Fatalf("got %d functions", len(p.Funcs))
	}
	main := p.ByName["main"]
	if got := names(p, main.Callees); strings.Join(got, ",") != "left,right" {
		t.Fatalf("main callees = %v", got)
	}
	// ping and pong share an SCC; everyone else is a singleton.
	if p.ByName["ping"].SCC != p.ByName["pong"].SCC {
		t.Fatalf("ping/pong not in one SCC")
	}
	if p.ByName["main"].SCC == p.ByName["left"].SCC {
		t.Fatalf("main and left collapsed")
	}
	// Bottom-up order: every callee SCC precedes its callers.
	for _, f := range p.Funcs {
		for _, c := range f.Callees {
			cs := p.Funcs[c].SCC
			if cs != f.SCC && cs > f.SCC {
				t.Fatalf("SCC order not bottom-up: %s (scc %d) calls %s (scc %d)",
					f.Name, f.SCC, p.Funcs[c].Name, cs)
			}
		}
	}
	if got := names(p, p.Reachable("main")); strings.Join(got, ",") != "main,left,right,shared,ping,pong" {
		t.Fatalf("Reachable(main) = %v", got)
	}
	if got := p.Roots(); strings.Join(got, ",") != "extra,main" {
		t.Fatalf("Roots = %v", got)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := mustLower(t, diamondSrc)
	b := mustLower(t, diamondSrc)
	for i := range a.Funcs {
		if a.Funcs[i].Fingerprint != b.Funcs[i].Fingerprint {
			t.Fatalf("fingerprint of %s not reproducible", a.Funcs[i].Name)
		}
		if a.Funcs[i].Summary != b.Funcs[i].Summary {
			t.Fatalf("summary of %s not reproducible", a.Funcs[i].Name)
		}
		if a.Funcs[i].Fingerprint.IsZero() || a.Funcs[i].Summary.IsZero() {
			t.Fatalf("unset digest on %s", a.Funcs[i].Name)
		}
	}
}

// Editing one function must change the summaries of exactly its SCC and
// transitive callers; fingerprints change only for the edited function.
func TestSummaryInvalidationFrontier(t *testing.T) {
	before := mustLower(t, diamondSrc)
	// Same-line edit: inserting lines would shift the definitions below
	// and (correctly) invalidate them too.
	after := mustLower(t, strings.Replace(diamondSrc, "work(1);", "work(3);", 1))
	changedFP := map[string]bool{}
	changedSum := map[string]bool{}
	for i := range before.Funcs {
		name := before.Funcs[i].Name
		if before.Funcs[i].Fingerprint != after.Funcs[i].Fingerprint {
			changedFP[name] = true
		}
		if before.Funcs[i].Summary != after.Funcs[i].Summary {
			changedSum[name] = true
		}
	}
	if len(changedFP) != 1 || !changedFP["shared"] {
		t.Fatalf("fingerprints changed: %v, want only shared", changedFP)
	}
	// Dependents of shared: shared, left, right, main. ping/pong/extra
	// must keep their summaries.
	want := map[string]bool{"shared": true, "left": true, "right": true, "main": true}
	if len(changedSum) != len(want) {
		t.Fatalf("summaries changed: %v, want %v", changedSum, want)
	}
	for n := range want {
		if !changedSum[n] {
			t.Fatalf("summary of %s should have changed (changed: %v)", n, changedSum)
		}
	}
	deps := names(before, before.Dependents(before.ByName["shared"].ID))
	if strings.Join(deps, ",") != "main,left,right,shared" {
		t.Fatalf("Dependents(shared) = %v", deps)
	}
}

// A cycle member's edit invalidates the whole SCC plus callers.
func TestSummaryInvalidationThroughCycle(t *testing.T) {
	before := mustLower(t, diamondSrc)
	after := mustLower(t, strings.Replace(diamondSrc, "pong();", "pong(9);", 1))
	var changed []string
	for i := range before.Funcs {
		if before.Funcs[i].Summary != after.Funcs[i].Summary {
			changed = append(changed, before.Funcs[i].Name)
		}
	}
	// ping edited: SCC {ping,pong} plus right and main change.
	if strings.Join(changed, ",") != "main,right,ping,pong" {
		t.Fatalf("changed summaries = %v", changed)
	}
}

// Line numbers are part of the fingerprint: diagnostics carry positions,
// so shifting a body down one line must invalidate it.
func TestFingerprintSensitiveToLines(t *testing.T) {
	a := mustLower(t, "void main() { f(); }\nvoid f() { g(1); }")
	b := mustLower(t, "void main() { f(); }\n\nvoid f() { g(1); }")
	if a.ByName["f"].Fingerprint == b.ByName["f"].Fingerprint {
		t.Fatal("fingerprint ignored a line shift")
	}
}

// Call resolution is part of the fingerprint: defining a previously
// external callee changes the caller's hash even though its text is
// unchanged.
func TestFingerprintSensitiveToResolution(t *testing.T) {
	a := mustLower(t, "void main() { helper(); }")
	b := mustLower(t, "void main() { helper(); }\nvoid helper() { }")
	if a.ByName["main"].Fingerprint == b.ByName["main"].Fingerprint {
		t.Fatal("fingerprint ignored a call-resolution change")
	}
}

func TestFromMiniCRejectsBadSource(t *testing.T) {
	if _, err := FromMiniC("void main( {"); err == nil {
		t.Fatal("expected a parse error")
	}
}
