// Package ir is the frontend-neutral middle layer of the toolkit: a
// Program/Function representation with stable IDs, content fingerprints
// and a call-graph SCC DAG, to which every front end (the Go translator
// in gosrc, the mini-C parser) lowers, and which the pushdown model
// checker (pdm) and the package driver (analysis) consume.
//
// The operational core of the IR is the minic kernel — statements, the
// whole-program CFG, event maps — re-exported here through type aliases
// so that downstream layers depend on a single package. What ir adds on
// top of the kernel is identity and change tracking:
//
//   - every function gets a stable ID (its index in definition order)
//     and a content Fingerprint: a hash of its normalized body together
//     with the resolved canonical name of every callee, so that any
//     edit that could change analysis results — including a change of
//     call resolution elsewhere in the package — changes the hash;
//   - the resolved call graph (calls and goroutine spawns) is condensed
//     into strongly connected components, ordered bottom-up, and each
//     function receives a Summary key combining its own fingerprint
//     with the transitive fingerprints of everything it can reach.
//
// A function's Summary therefore identifies the exact analysis input of
// the subprogram rooted at it: two programs in which a function has
// equal Summaries produce identical analysis results for that function
// as an entry. Incremental drivers key their per-entry caches by it and
// re-solve, after an edit, exactly the edited function's SCC and its
// transitive callers (see internal/analysis).
package ir

import (
	"fmt"
	"sort"
	"sync"

	"rasc/internal/minic"
)

// Kernel re-exports: the operational IR types downstream layers consume
// through this package. Aliases keep them assignment-compatible with the
// minic kernel, so front ends lowering via minic need no conversion.
type (
	// CFG is the whole-program control-flow graph.
	CFG = minic.CFG
	// Node is one CFG node.
	Node = minic.Node
	// NodeKind classifies CFG nodes.
	NodeKind = minic.NodeKind
	// ConcOp classifies a node's concurrency event.
	ConcOp = minic.ConcOp
	// FuncDef is a function definition in the kernel form.
	FuncDef = minic.FuncDef
	// CallExpr is a function-call expression.
	CallExpr = minic.CallExpr
	// EventMap maps calls to property-alphabet events.
	EventMap = minic.EventMap
	// Rule is one event-map rule.
	Rule = minic.Rule
	// Event is a matched property event.
	Event = minic.Event
)

// CFG node kinds.
const (
	NEntry  = minic.NEntry
	NExit   = minic.NExit
	NAction = minic.NAction
	NJoin   = minic.NJoin
	NSpawn  = minic.NSpawn
	NAccess = minic.NAccess
)

// Concurrency events.
const (
	ConcNone    = minic.ConcNone
	ConcSpawn   = minic.ConcSpawn
	ConcSend    = minic.ConcSend
	ConcRecv    = minic.ConcRecv
	ConcClose   = minic.ConcClose
	ConcLock    = minic.ConcLock
	ConcUnlock  = minic.ConcUnlock
	ConcRLock   = minic.ConcRLock
	ConcRUnlock = minic.ConcRUnlock
	ConcLoad    = minic.ConcLoad
	ConcStore   = minic.ConcStore
)

// SourceFile is one source file handed to a front end.
type SourceFile struct {
	// Name is the file's (display) path, used in positions and notes.
	Name string
	// Src is the file's content.
	Src string
}

// Note is a translation remark: a construct a front end's abstraction
// handles imprecisely (goto, duplicate definitions, ambiguous methods).
type Note struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Msg  string `json:"msg"`
}

func (n Note) String() string { return fmt.Sprintf("%s:%d: %s", n.File, n.Line, n.Msg) }

// Meta is the frontend-provided metadata attached to a Program: remarks
// and suppression directives that are not part of any function body.
type Meta struct {
	// Notes lists translation imprecisions, ordered by file then line.
	Notes []Note
	// Ignores maps file name -> line -> checker names named in
	// //rasc:ignore comments on that line. An empty name list means the
	// line suppresses every checker.
	Ignores map[string]map[int][]string
	// FileIgnores maps file name -> checker names named in
	// //rasc:ignore-file comments anywhere in that file.
	FileIgnores map[string][]string
	// Shared lists the package-level variables treated as shared state by
	// the concurrency checkers, sorted.
	Shared []string
}

// Function is one defined function with its identity and change-tracking
// metadata.
type Function struct {
	// ID is the function's stable identifier: its index in Program.Funcs
	// (definition order).
	ID int
	// Name is the canonical name, File/Line the definition site.
	Name string
	File string
	Line int
	// Def is the kernel definition.
	Def *FuncDef
	// Callees lists the IDs of defined functions this one calls or
	// spawns, sorted and deduplicated.
	Callees []int
	// SCC is the index of the function's strongly connected component in
	// Program.SCCs.
	SCC int
	// Fingerprint hashes the function's own content: definition site,
	// parameters, normalized body, and the resolved canonical callee of
	// every call expression.
	Fingerprint Digest
	// Summary keys the analysis input of the subprogram rooted here: the
	// function's fingerprint combined with the transitive fingerprints of
	// its SCC and every SCC it can reach.
	Summary Digest
}

// Program is a lowered, frontend-neutral program.
type Program struct {
	// MC is the kernel (minic) program the front end lowered to.
	MC *minic.Program
	// Graph is the whole-program CFG, built once at lowering time.
	Graph *CFG
	// Funcs holds one Function per defined function, indexed by ID.
	Funcs []*Function
	// ByName maps canonical function names to Functions. Kernel aliases
	// (bare method names for uniquely named methods) also resolve here.
	ByName map[string]*Function
	// SCCs lists the call graph's strongly connected components in
	// bottom-up order: every callee SCC precedes its callers.
	SCCs [][]int
	// Digest fingerprints the whole program: every function's name and
	// fingerprint in definition order. Anything that depends on global
	// program shape — such as skeleton construction, which allocates a
	// constraint variable per CFG node of the entire program — is pinned
	// by this, not by any single entry's Summary.
	Digest Digest
	// Meta carries frontend notes and suppression directives.
	Meta

	rootsOnce sync.Once
	roots     []string
}

// New lowers a kernel program into the IR: it builds the CFG, resolves
// the call graph, condenses it into SCCs and computes fingerprints and
// summary keys. The meta block comes from the front end (zero for bare
// kernel programs).
func New(mc *minic.Program, meta Meta) (*Program, error) {
	p, err := build(mc, meta)
	if err != nil {
		return nil, err
	}
	p.fingerprint()
	return p, nil
}

// build lowers a kernel program into the IR minus fingerprints: CFG,
// call graph, SCC condensation. New and NewIncremental share it and
// differ only in how fingerprints are obtained.
func build(mc *minic.Program, meta Meta) (*Program, error) {
	cfg, err := minic.Build(mc)
	if err != nil {
		return nil, fmt.Errorf("ir: %w", err)
	}
	p := &Program{MC: mc, Graph: cfg, ByName: map[string]*Function{}, Meta: meta}
	index := map[string]int{}
	for i, fd := range mc.Funcs {
		f := &Function{ID: i, Name: fd.Name, File: fd.File, Line: fd.Line, Def: fd}
		p.Funcs = append(p.Funcs, f)
		index[fd.Name] = i
	}
	// ByName resolves canonical names and kernel aliases alike.
	for name, fd := range mc.ByName {
		if i, ok := index[fd.Name]; ok {
			p.ByName[name] = p.Funcs[i]
		}
	}
	// Callee edges: calls and goroutine spawns that resolve to a defined
	// function, read off the CFG so resolution matches the analyses.
	calleeSet := make([]map[int]bool, len(p.Funcs))
	for _, n := range cfg.Nodes {
		if (n.Kind != NAction && n.Kind != NSpawn) || n.Call == nil {
			continue
		}
		def, ok := mc.ByName[n.Call.Name]
		if !ok {
			continue
		}
		from, ok := index[n.Fn]
		if !ok {
			continue
		}
		if calleeSet[from] == nil {
			calleeSet[from] = map[int]bool{}
		}
		calleeSet[from][index[def.Name]] = true
	}
	for i, set := range calleeSet {
		for id := range set {
			p.Funcs[i].Callees = append(p.Funcs[i].Callees, id)
		}
		sort.Ints(p.Funcs[i].Callees)
	}
	p.SCCs = condense(p.Funcs)
	for ci, members := range p.SCCs {
		for _, id := range members {
			p.Funcs[id].SCC = ci
		}
	}
	return p, nil
}

// FromProgram lowers a bare kernel program with empty metadata.
func FromProgram(mc *minic.Program) (*Program, error) { return New(mc, Meta{}) }

// FromMiniC parses mini-C source and lowers it.
func FromMiniC(src string) (*Program, error) {
	mc, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromProgram(mc)
}

// FileOf maps a (canonical or alias) function name to its source file,
// "" when unknown.
func (p *Program) FileOf(fn string) string {
	if f, ok := p.ByName[fn]; ok {
		return f.File
	}
	return ""
}

// Roots returns the default entry functions: canonical names of defined
// functions that no other defined function calls or spawns, sorted; if
// the call graph has no such root (everything is called), every function
// is an entry.
func (p *Program) Roots() []string {
	p.rootsOnce.Do(func() {
		called := map[string]bool{}
		for _, n := range p.Graph.Nodes {
			// Spawned callees count as called: a worker started only via
			// `go worker()` is not a root.
			if (n.Kind != NAction && n.Kind != NSpawn) || n.Call == nil {
				continue
			}
			if def, ok := p.MC.ByName[n.Call.Name]; ok {
				called[def.Name] = true
			}
		}
		for _, fd := range p.MC.Funcs {
			if !called[fd.Name] {
				p.roots = append(p.roots, fd.Name)
			}
		}
		if len(p.roots) == 0 {
			for _, fd := range p.MC.Funcs {
				p.roots = append(p.roots, fd.Name)
			}
		}
		sort.Strings(p.roots)
	})
	return p.roots
}

// Reachable returns the IDs of the functions in the call-graph closure
// of entry (including entry itself), ascending. Unknown entries yield
// nil.
func (p *Program) Reachable(entry string) []int {
	f, ok := p.ByName[entry]
	if !ok {
		return nil
	}
	seen := map[int]bool{f.ID: true}
	queue := []int{f.ID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range p.Funcs[id].Callees {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Dependents returns the IDs of every function that can reach id through
// the call graph (including id itself), ascending: the functions whose
// Summary an edit of id changes.
func (p *Program) Dependents(id int) []int {
	callers := make([][]int, len(p.Funcs))
	for _, f := range p.Funcs {
		for _, c := range f.Callees {
			callers[c] = append(callers[c], f.ID)
		}
	}
	seen := map[int]bool{id: true}
	queue := []int{id}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, c := range callers[at] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}
