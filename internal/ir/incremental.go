package ir

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"rasc/internal/minic"
)

// NewIncremental lowers a kernel program like New, but reuses function
// Fingerprints from a previous lowering of the same evolving program
// wherever that is provably sound, skipping the per-statement hash walk
// for unchanged bodies. It exists for resident drivers that re-lower a
// program after a small file delta: the memoized front end (gosrc.Memo)
// shares *minic.FuncDef pointers for untouched files, so almost every
// function's fingerprint carries over and re-lowering cost tracks the
// size of the edit, not the program.
//
// A fingerprint covers the function's own normalized content plus, for
// every call expression, the canonical name the call resolves to. Reuse
// is therefore sound iff
//
//   - the definition is the same object as before (pointer identity —
//     front ends never mutate a FuncDef after translation, so identity
//     proves content equality), and
//   - every name resolves exactly as it did before, which is implied by
//     the two programs having equal resolution maps (same alias →
//     canonical-name pairs).
//
// The second condition is checked once per call via a digest of the
// whole resolution map rather than per function: resolution changes are
// rare (a definition or alias appeared, vanished, or moved) and cheap
// to recompute wholesale when they happen. Summaries are always
// recomputed — the SCC closure pass is linear in the call graph and not
// worth caching.
//
// New and NewIncremental produce identical Programs for identical
// inputs; TestNewIncrementalEquivalence enforces this.
func NewIncremental(mc *minic.Program, meta Meta, prev *Program) (*Program, error) {
	p, err := build(mc, meta)
	if err != nil {
		return nil, err
	}
	if prev == nil {
		p.fingerprint()
		return p, nil
	}
	reuse := resolutionDigest(mc) == resolutionDigest(prev.MC)
	for _, f := range p.Funcs {
		if reuse {
			if pf, ok := prev.ByName[f.Name]; ok && pf.Def == f.Def {
				f.Fingerprint = pf.Fingerprint
				continue
			}
		}
		f.Fingerprint = fingerprintFunc(mc, f.Def)
	}
	p.summarize()
	return p, nil
}

// resolutionDigest hashes a program's name-resolution map: every name
// the kernel resolves (canonical names and aliases) paired with the
// canonical definition it resolves to. Two programs with equal digests
// resolve every call expression identically.
func resolutionDigest(mc *minic.Program) Digest {
	pairs := make([]string, 0, len(mc.ByName))
	for alias, fd := range mc.ByName {
		pairs = append(pairs, alias+"\x00"+fd.Name)
	}
	sort.Strings(pairs)
	h := sha256.New()
	for _, pr := range pairs {
		fmt.Fprintf(h, "%s\n", pr)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}
