package ir

import (
	"testing"

	"rasc/internal/minic"
)

const incrSrc = `
void leaf() { work(); }
void mid() { leaf(); helper(); }
void helper() { leaf(); }
void main() { mid(); }
`

// parseMC parses mini-C and fails the test on error.
func parseMC(t *testing.T, src string) *minic.Program {
	t.Helper()
	mc, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

// sameIR asserts two Programs agree on everything fingerprint-related.
func sameIR(t *testing.T, step string, got, want *Program) {
	t.Helper()
	if len(got.Funcs) != len(want.Funcs) {
		t.Fatalf("%s: %d funcs vs %d", step, len(got.Funcs), len(want.Funcs))
	}
	for i, f := range got.Funcs {
		w := want.Funcs[i]
		if f.Name != w.Name || f.Fingerprint != w.Fingerprint || f.Summary != w.Summary || f.SCC != w.SCC {
			t.Errorf("%s: func %s: fp/summary/scc diverge from full lowering", step, f.Name)
		}
	}
}

// TestNewIncrementalEquivalence re-lowers an edited program with shared
// FuncDef pointers (the shape the memoized front end produces) and
// checks NewIncremental against a from-scratch New.
func TestNewIncrementalEquivalence(t *testing.T) {
	mc1 := parseMC(t, incrSrc)
	prev, err := New(mc1, Meta{})
	if err != nil {
		t.Fatal(err)
	}

	// Edit: replace helper's body; every other def is the same pointer.
	edited := parseMC(t, `
void leaf() { work(); }
void mid() { leaf(); helper(); }
void helper() { leaf(); leaf(); }
void main() { mid(); }
`)
	mc2 := &minic.Program{ByName: map[string]*minic.FuncDef{}}
	for _, fd := range mc1.Funcs {
		def := fd
		if fd.Name == "helper" {
			def = edited.ByName["helper"]
		}
		mc2.Funcs = append(mc2.Funcs, def)
		mc2.ByName[def.Name] = def
	}

	got, err := NewIncremental(mc2, Meta{}, prev)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(parseMC(t, `
void leaf() { work(); }
void mid() { leaf(); helper(); }
void helper() { leaf(); leaf(); }
void main() { mid(); }
`), Meta{})
	if err != nil {
		t.Fatal(err)
	}
	sameIR(t, "single edit", got, want)

	// The edit must invalidate exactly helper and its callers.
	for _, name := range []string{"leaf"} {
		if got.ByName[name].Summary != prev.ByName[name].Summary {
			t.Errorf("%s: summary changed by unrelated edit", name)
		}
	}
	for _, name := range []string{"helper", "mid", "main"} {
		if got.ByName[name].Summary == prev.ByName[name].Summary {
			t.Errorf("%s: summary should change after helper edit", name)
		}
	}

	// Resolution change: add a definition for the previously external
	// callee `work`. Pointer-identical bodies must NOT reuse their old
	// fingerprints, because leaf's call now resolves.
	withWork := parseMC(t, `
void leaf() { work(); }
void mid() { leaf(); helper(); }
void helper() { leaf(); }
void main() { mid(); }
void work() { }
`)
	mc3 := &minic.Program{ByName: map[string]*minic.FuncDef{}}
	for _, fd := range mc1.Funcs {
		mc3.Funcs = append(mc3.Funcs, fd)
		mc3.ByName[fd.Name] = fd
	}
	wdef := withWork.ByName["work"]
	mc3.Funcs = append(mc3.Funcs, wdef)
	mc3.ByName["work"] = wdef

	got3, err := NewIncremental(mc3, Meta{}, prev)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := New(withWork, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	sameIR(t, "resolution change", got3, want3)
	if got3.ByName["leaf"].Fingerprint == prev.ByName["leaf"].Fingerprint {
		t.Error("leaf fingerprint must change when its callee gains a definition")
	}

	// nil prev falls back to a full lowering.
	got4, err := NewIncremental(mc1, Meta{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIR(t, "nil prev", got4, prev)
}
