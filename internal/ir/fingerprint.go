package ir

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"rasc/internal/minic"
)

// Digest is a content fingerprint (SHA-256).
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d == Digest{} }

// fingerprint computes every function's content Fingerprint and then the
// Summary keys bottom-up over the SCC DAG.
//
// The fingerprint must change whenever the function's contribution to
// any analysis result could change. It therefore covers:
//
//   - the canonical name, source file and definition line (diagnostics
//     embed positions, so a moved definition must re-solve);
//   - the parameter list and the full normalized statement tree with
//     per-statement line numbers;
//   - for every call expression, the canonical name of the defined
//     function it resolves to ("" for external calls). Resolution
//     depends on the whole program — adding a second method named M
//     elsewhere turns an unambiguous alias call into an external one —
//     so baking the resolved name into the caller's fingerprint makes
//     such non-local edits invalidate exactly the affected callers.
//
// The Summary of a function combines its own fingerprint with a closure
// hash of its SCC: the sorted member fingerprints plus the sorted
// closure hashes of every callee SCC. Computed bottom-up, an edit to
// function f changes the Summary of exactly f's SCC members and their
// transitive callers — the invalidation frontier incremental drivers
// re-solve.
func (p *Program) fingerprint() {
	for _, f := range p.Funcs {
		f.Fingerprint = fingerprintFunc(p.MC, f.Def)
	}
	p.summarize()
}

// summarize computes the SCC closure hashes and per-function Summary
// keys from the already-set Fingerprints (bottom-up over the SCC DAG).
func (p *Program) summarize() {
	closure := make([]Digest, len(p.SCCs))
	for ci, members := range p.SCCs { // bottom-up: callees first
		h := sha256.New()
		fps := make([]string, 0, len(members))
		for _, id := range members {
			fps = append(fps, p.Funcs[id].Fingerprint.String())
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fmt.Fprintf(h, "m:%s\n", fp)
		}
		calleeSCCs := map[int]bool{}
		for _, id := range members {
			for _, c := range p.Funcs[id].Callees {
				if cs := p.Funcs[c].SCC; cs != ci {
					calleeSCCs[cs] = true
				}
			}
		}
		subs := make([]string, 0, len(calleeSCCs))
		for cs := range calleeSCCs {
			subs = append(subs, closure[cs].String())
		}
		sort.Strings(subs)
		for _, s := range subs {
			fmt.Fprintf(h, "c:%s\n", s)
		}
		copy(closure[ci][:], h.Sum(nil))
	}
	for _, f := range p.Funcs {
		h := sha256.New()
		fmt.Fprintf(h, "summary\nfp:%s\nscc:%s\n", f.Fingerprint, closure[f.SCC])
		copy(f.Summary[:], h.Sum(nil))
	}
	ph := sha256.New()
	fmt.Fprintf(ph, "program\n")
	for _, f := range p.Funcs {
		fmt.Fprintf(ph, "fn:%s:%s\n", f.Name, f.Fingerprint)
	}
	copy(p.Digest[:], ph.Sum(nil))
}

// fingerprintFunc hashes one function's normalized content.
func fingerprintFunc(mc *minic.Program, fd *minic.FuncDef) Digest {
	h := sha256.New()
	w := bufio.NewWriter(h)
	fmt.Fprintf(w, "func %s file %s line %d params", fd.Name, fd.File, fd.Line)
	for _, prm := range fd.Params {
		fmt.Fprintf(w, " %s", prm)
	}
	w.WriteByte('\n')
	fw := &fpWriter{w: w, mc: mc}
	fw.stmts(fd.Body)
	w.Flush()
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// fpWriter renders the statement tree in a canonical textual form.
type fpWriter struct {
	w  *bufio.Writer
	mc *minic.Program
}

func (f *fpWriter) stmts(body []minic.Stmt) {
	f.w.WriteByte('{')
	for _, st := range body {
		f.stmt(st)
	}
	f.w.WriteByte('}')
}

func (f *fpWriter) stmt(st minic.Stmt) {
	switch s := st.(type) {
	case *minic.ExprStmt:
		fmt.Fprintf(f.w, "expr@%d ", s.Line)
		f.expr(s.X)
	case *minic.DeclStmt:
		fmt.Fprintf(f.w, "decl@%d %s=", s.Line, s.Name)
		f.expr(s.Init)
	case *minic.AssignStmt:
		fmt.Fprintf(f.w, "assign@%d %s=", s.Line, s.Name)
		f.expr(s.X)
	case *minic.StoreStmt:
		fmt.Fprintf(f.w, "store@%d *%s=", s.Line, s.Name)
		f.expr(s.X)
	case *minic.IfStmt:
		fmt.Fprintf(f.w, "if@%d ", s.Line)
		f.expr(s.Cond)
		f.stmts(s.Then)
		if s.Else != nil {
			f.w.WriteString("else")
			f.stmts(s.Else)
		}
	case *minic.WhileStmt:
		fmt.Fprintf(f.w, "while@%d:%s ", s.Line, s.Label)
		f.expr(s.Cond)
		f.stmts(s.Body)
	case *minic.DoWhileStmt:
		fmt.Fprintf(f.w, "dowhile@%d:%s ", s.Line, s.Label)
		f.expr(s.Cond)
		f.stmts(s.Body)
	case *minic.ForStmt:
		fmt.Fprintf(f.w, "for@%d:%s init", s.Line, s.Label)
		if s.Init != nil {
			f.stmt(s.Init)
		}
		f.w.WriteString(" cond ")
		f.expr(s.Cond)
		f.w.WriteString(" post")
		if s.Post != nil {
			f.stmt(s.Post)
		}
		f.stmts(s.Body)
	case *minic.BreakStmt:
		fmt.Fprintf(f.w, "break@%d:%s", s.Line, s.Label)
	case *minic.ContinueStmt:
		fmt.Fprintf(f.w, "continue@%d:%s", s.Line, s.Label)
	case *minic.SwitchStmt:
		fmt.Fprintf(f.w, "switch@%d:%s ", s.Line, s.Label)
		f.expr(s.Cond)
		for _, c := range s.Cases {
			fmt.Fprintf(f.w, "case@%d default=%t ", c.Line, c.IsDefault)
			f.expr(c.Value)
			f.stmts(c.Body)
		}
	case *minic.ReturnStmt:
		fmt.Fprintf(f.w, "return@%d ", s.Line)
		f.expr(s.X)
	case *minic.BlockStmt:
		fmt.Fprintf(f.w, "block@%d:%s", s.Line, s.Label)
		f.stmts(s.Body)
	case *minic.SpawnStmt:
		fmt.Fprintf(f.w, "spawn@%d ", s.Line)
		f.expr(s.Call)
	case *minic.SendStmt:
		fmt.Fprintf(f.w, "send@%d %s<-", s.Line, s.Chan)
		f.expr(s.Value)
	case *minic.RecvStmt:
		fmt.Fprintf(f.w, "recv@%d %s=<-%s", s.Line, s.AssignTo, s.Chan)
	case *minic.CloseStmt:
		fmt.Fprintf(f.w, "close@%d %s", s.Line, s.Chan)
	case *minic.AccessStmt:
		fmt.Fprintf(f.w, "access@%d %s write=%t", s.Line, s.Name, s.Write)
	default:
		// A front end lowering a new statement kind must extend this
		// renderer; hashing a lossy form would silently under-invalidate.
		panic(fmt.Sprintf("ir: fingerprint: unknown statement %T", st))
	}
	f.w.WriteByte(';')
}

func (f *fpWriter) expr(e minic.Expr) {
	switch x := e.(type) {
	case nil:
		f.w.WriteString("nil")
	case *minic.CallExpr:
		resolved := ""
		if def, ok := f.mc.ByName[x.Name]; ok {
			resolved = def.Name
		}
		fmt.Fprintf(f.w, "call@%d %s->%s(", x.Line, x.Name, resolved)
		for i, a := range x.Args {
			if i > 0 {
				f.w.WriteByte(',')
			}
			f.expr(a)
		}
		f.w.WriteByte(')')
	case *minic.IdentExpr:
		fmt.Fprintf(f.w, "id:%s", x.Name)
	case *minic.NumExpr:
		fmt.Fprintf(f.w, "num:%s", x.Text)
	case *minic.StrExpr:
		fmt.Fprintf(f.w, "str:%q", x.Text)
	case *minic.UnaryExpr:
		fmt.Fprintf(f.w, "un:%s(", x.Op)
		f.expr(x.X)
		f.w.WriteByte(')')
	case *minic.BinExpr:
		fmt.Fprintf(f.w, "bin:%s(", x.Op)
		f.expr(x.L)
		f.w.WriteByte(',')
		f.expr(x.R)
		f.w.WriteByte(')')
	default:
		panic(fmt.Sprintf("ir: fingerprint: unknown expression %T", e))
	}
}
