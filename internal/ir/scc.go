package ir

// condense computes the strongly connected components of the resolved
// call graph with an iterative Tarjan, returning them in bottom-up
// order: when an SCC is emitted, every SCC it has an edge into has
// already been emitted. Iterative, because synthetic corpora produce
// call chains deep enough to overflow a recursive walk.
func condense(funcs []*Function) [][]int {
	n := len(funcs)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]int
		stack   []int // Tarjan's component stack
		next    int   // next DFS index
		callPos []int // per-frame position in the callee list
		call    []int // DFS frame stack (function IDs)
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], root)
		callPos = append(callPos[:0], 0)
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			v := call[len(call)-1]
			pos := callPos[len(call)-1]
			if pos < len(funcs[v].Callees) {
				callPos[len(call)-1]++
				w := funcs[v].Callees[pos]
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, w)
					callPos = append(callPos, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is exhausted: pop the frame, fold low into the parent,
			// and emit v's component if v is a root.
			call = call[:len(call)-1]
			callPos = callPos[:len(callPos)-1]
			if len(call) > 0 {
				if p := call[len(call)-1]; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
