package synth

import (
	"strings"
	"testing"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/mops"
	"rasc/internal/pdm"
	"rasc/internal/spec"
)

const privilegeSpec = `
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
`

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Functions: 5, StmtsPerFn: 20, CallProb: 0.2, BranchProb: 0.2, LoopProb: 0.1,
		SafePatterns: 2, UnsafePatterns: 1}
	a, b := Generate(cfg), Generate(cfg)
	if a != b {
		t.Error("generation must be deterministic per seed")
	}
	cfg.Seed = 8
	if Generate(cfg) == a {
		t.Error("different seeds should differ")
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := Config{Seed: seed, Functions: 8, StmtsPerFn: 30, CallProb: 0.15,
			BranchProb: 0.2, LoopProb: 0.1, SafePatterns: 3, UnsafePatterns: 2}
		src := Generate(cfg)
		if _, err := minic.Parse(src); err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v", seed, err)
		}
	}
}

// The injected violation count is exactly what both engines find.
func TestViolationCountMatchesInjection(t *testing.T) {
	prop := spec.MustCompile(privilegeSpec)
	for _, unsafeN := range []int{0, 1, 3} {
		cfg := Config{Seed: 11, Functions: 6, StmtsPerFn: 25, CallProb: 0.15,
			BranchProb: 0.15, LoopProb: 0.05, SafePatterns: 3, UnsafePatterns: unsafeN}
		prog, err := minic.Parse(Generate(cfg))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pdm.Check(prog, prop, minic.PrivilegeEvents(), "", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != unsafeN {
			t.Errorf("unsafe=%d: constraint engine found %d violations", unsafeN, len(res.Violations))
		}
		mres, err := mops.Check(prog, prop, minic.PrivilegeEvents(), "")
		if err != nil {
			t.Fatal(err)
		}
		if mres.Violating != (unsafeN > 0) {
			t.Errorf("unsafe=%d: mops verdict %v", unsafeN, mres.Violating)
		}
	}
}

// Differential fuzzing across seeds: engines agree on the verdict.
func TestEnginesAgreeAcrossSeeds(t *testing.T) {
	prop := spec.MustCompile(privilegeSpec)
	for seed := int64(100); seed < 112; seed++ {
		cfg := Config{Seed: seed, Functions: 5, StmtsPerFn: 15, CallProb: 0.2,
			BranchProb: 0.25, LoopProb: 0.1, SafePatterns: 2,
			UnsafePatterns: int(seed % 3)}
		prog, err := minic.Parse(Generate(cfg))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pdm.Check(prog, prop, minic.PrivilegeEvents(), "", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mres, err := mops.Check(prog, prop, minic.PrivilegeEvents(), "")
		if err != nil {
			t.Fatal(err)
		}
		if (len(res.Violations) > 0) != mres.Violating {
			t.Errorf("seed %d: engines disagree (pdm %d, mops %v)",
				seed, len(res.Violations), mres.Violating)
		}
	}
}

func TestTable1Configs(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	wantNames := []string{"VixieCron 3.0.1", "At 3.1.8", "Sendmail 8.12.8", "Apache 2.0.40"}
	wantLines := []int{4000, 6000, 222000, 229000}
	wantProgs := []int{2, 2, 1, 1}
	for i, r := range rows {
		if r.Name != wantNames[i] || r.Lines != wantLines[i] || r.Programs != wantProgs[i] {
			t.Errorf("row %d = %s/%d/%d", i, r.Name, r.Lines, r.Programs)
		}
		// Generated size is in the right ballpark (±50% of lines/programs).
		src := Generate(r.Config)
		lines := strings.Count(src, "\n")
		per := r.Lines / r.Programs
		if lines < per/2 || lines > per*2 {
			t.Errorf("%s: generated %d lines, target %d", r.Name, lines, per)
		}
	}
}

// With the full (11-state) Table 1 property, the two engines agree on the
// verdict across seeds.
func TestEnginesAgreeFullProperty(t *testing.T) {
	prop := pdm.FullPrivilegeProperty()
	events := pdm.FullPrivilegeEvents()
	for seed := int64(200); seed < 210; seed++ {
		cfg := Config{Seed: seed, Functions: 6, StmtsPerFn: 20, CallProb: 0.15,
			BranchProb: 0.2, LoopProb: 0.08, SafePatterns: 2,
			UnsafePatterns: int(seed % 2), FullProperty: true}
		prog, err := minic.Parse(Generate(cfg))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pdm.Check(prog, prop, events, "", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mres, err := mops.Check(prog, prop, events, "")
		if err != nil {
			t.Fatal(err)
		}
		if (len(res.Violations) > 0) != mres.Violating {
			t.Errorf("seed %d: engines disagree (pdm %d, mops %v)",
				seed, len(res.Violations), mres.Violating)
		}
	}
}

func TestGenerateTaintParsesAndChecks(t *testing.T) {
	src := GenerateTaint(TaintConfig{Seed: 3, Functions: 5, StmtsPerFn: 12, CallProb: 0.2,
		Tainted: 3, Cleaned: 2})
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := bitvector.CheckIterative(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bitvector.Check(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All taint patterns are within single functions; reachability from
	// main does not matter for the constraint engine? It does — only
	// functions on the guaranteed chain are analyzed from pc. The
	// iterative baseline analyzes everything reachable too, so the two
	// must agree.
	if len(iter.Violations) != len(res.Violations) {
		t.Errorf("iterative %d vs constraints %d violations",
			len(iter.Violations), len(res.Violations))
	}
}
