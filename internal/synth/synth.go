// Package synth generates synthetic mini-C workloads for the Table 1
// experiment. The paper checked the process-privilege property on
// VixieCron 3.0.1 (4k lines), At 3.1.8 (6k), Sendmail 8.12.8 (222k) and
// Apache 2.0.40 (229k); those sources (and the exact MOPS harness) are not
// part of this reproduction, so we generate seeded random programs with
// matching statement counts, realistic call structure (a call DAG with
// branches and loops), and injected privilege patterns — mostly safe
// grant/drop/exec sequences plus a configurable number of unsafe sites
// where the drop is missing on one branch. What Table 1 measures is how
// the two engines scale with program size on a fixed 11-state property,
// and that is preserved.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes program generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Functions is the number of function definitions.
	Functions int
	// StmtsPerFn is the average number of statements per function.
	StmtsPerFn int
	// CallProb is the probability a statement calls another defined
	// function (wired as a DAG: callees have higher indices).
	CallProb float64
	// BranchProb and LoopProb control control-flow shape.
	BranchProb float64
	LoopProb   float64
	// SafePatterns is the number of safe grant/drop/exec sequences.
	SafePatterns int
	// UnsafePatterns is the number of injected violations (drop missing
	// on one branch).
	UnsafePatterns int
	// FullProperty switches the injected patterns to the syscall
	// vocabulary of the complete Table 1 privilege model (setgroups +
	// setresuid drops); with it, violation counts depend on pattern
	// order along paths (a full drop is permanent), so benchmarks
	// compare verdicts rather than counts.
	FullProperty bool
}

// Named is a labeled configuration, e.g. a Table 1 row.
type Named struct {
	Name string
	// Lines is the paper's reported size for the package.
	Lines int
	// Programs is the paper's number of executables in the package.
	Programs int
	Config   Config
}

// Table1 returns configurations matching the four packages of Table 1.
// Statement counts approximate the reported line counts; each "package"
// is checked as Programs separate executables of Lines/Programs lines,
// exactly as the paper checks each executable separately.
func Table1() []Named {
	mk := func(name string, lines, programs, unsafe int, seed int64) Named {
		perProgram := lines / programs
		fns := perProgram / 40
		if fns < 4 {
			fns = 4
		}
		return Named{
			Name:     name,
			Lines:    lines,
			Programs: programs,
			Config: Config{
				Seed:           seed,
				Functions:      fns,
				StmtsPerFn:     perProgram / fns,
				CallProb:       0.08,
				BranchProb:     0.12,
				LoopProb:       0.05,
				SafePatterns:   2 + perProgram/2000,
				UnsafePatterns: unsafe,
				FullProperty:   true,
			},
		}
	}
	return []Named{
		mk("VixieCron 3.0.1", 4000, 2, 1, 41),
		mk("At 3.1.8", 6000, 2, 1, 42),
		mk("Sendmail 8.12.8", 222000, 1, 2, 43),
		mk("Apache 2.0.40", 229000, 1, 0, 44),
	}
}

// Generate produces one program's mini-C source.
func Generate(cfg Config) string {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &gen{cfg: cfg, r: r}
	return g.program()
}

type gen struct {
	cfg  Config
	r    *rand.Rand
	b    strings.Builder
	next int // fresh name counter
}

func (g *gen) fresh(prefix string) string {
	g.next++
	return fmt.Sprintf("%s%d", prefix, g.next)
}

// program lays out functions fn0..fnN-1 plus main; fnI may call fnJ for
// J > I, keeping the call graph acyclic (plus occasional self-recursion).
func (g *gen) program() string {
	n := g.cfg.Functions
	// Decide where to put the privilege patterns: function index -> kind.
	type pat struct{ unsafe bool }
	patterns := map[int][]pat{}
	for i := 0; i < g.cfg.SafePatterns; i++ {
		f := g.r.Intn(n)
		patterns[f] = append(patterns[f], pat{false})
	}
	for i := 0; i < g.cfg.UnsafePatterns; i++ {
		f := g.r.Intn(n)
		patterns[f] = append(patterns[f], pat{true})
	}
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&g.b, "void fn%d(int a) {\n", i)
		for _, p := range patterns[i] {
			if p.unsafe {
				g.unsafePattern()
			} else {
				g.safePattern()
			}
		}
		// Guarantee a call chain fn0 → fn1 → …, so every injected
		// pattern is reachable from main and the expected violation
		// count is exactly UnsafePatterns.
		if i+1 < n {
			fmt.Fprintf(&g.b, "    fn%d(a);\n", i+1)
		}
		g.body(i, g.cfg.StmtsPerFn, 1)
		g.b.WriteString("}\n")
	}
	g.b.WriteString("void main() {\n")
	g.b.WriteString("    fn0(1);\n")
	// main also calls a few random functions.
	calls := g.r.Intn(3)
	for i := 0; i < calls; i++ {
		fmt.Fprintf(&g.b, "    fn%d(%d);\n", g.r.Intn(n), g.r.Intn(100))
	}
	g.body(-1, g.cfg.StmtsPerFn/2, 1)
	g.b.WriteString("}\n")
	return g.b.String()
}

func (g *gen) indent(depth int) {
	for i := 0; i < depth; i++ {
		g.b.WriteString("    ")
	}
}

// body emits about budget statements for function index fn (-1 = main).
func (g *gen) body(fn, budget, depth int) {
	for s := 0; s < budget; s++ {
		switch {
		case depth < 3 && g.r.Float64() < g.cfg.BranchProb:
			inner := 1 + g.r.Intn(4)
			g.indent(depth)
			fmt.Fprintf(&g.b, "if (x%d < %d) {\n", g.r.Intn(8), g.r.Intn(100))
			g.body(fn, inner, depth+1)
			if g.r.Intn(2) == 0 {
				g.indent(depth)
				g.b.WriteString("} else {\n")
				g.body(fn, inner, depth+1)
			}
			g.indent(depth)
			g.b.WriteString("}\n")
			s += inner
		case depth < 3 && g.r.Float64() < g.cfg.LoopProb:
			inner := 1 + g.r.Intn(3)
			g.indent(depth)
			fmt.Fprintf(&g.b, "while (x%d) {\n", g.r.Intn(8))
			g.body(fn, inner, depth+1)
			g.indent(depth)
			g.b.WriteString("}\n")
			s += inner
		case fn >= 0 && fn+1 < g.cfg.Functions && g.r.Float64() < g.cfg.CallProb:
			callee := fn + 1 + g.r.Intn(g.cfg.Functions-fn-1)
			g.indent(depth)
			fmt.Fprintf(&g.b, "fn%d(%d);\n", callee, g.r.Intn(100))
		default:
			g.indent(depth)
			fmt.Fprintf(&g.b, "work%d(%d);\n", g.r.Intn(50), g.r.Intn(100))
		}
	}
}

// safePattern grants, drops, then execs: no violation.
func (g *gen) safePattern() {
	if g.cfg.FullProperty {
		// A full drop (groups + all uids) is safe from any state.
		g.b.WriteString("    setgroups(0);\n")
		g.b.WriteString("    setresuid(u, u, u);\n")
		fmt.Fprintf(&g.b, "    execl(\"/bin/%s\", \"x\");\n", g.fresh("safe"))
		return
	}
	g.b.WriteString("    seteuid(0);\n")
	g.b.WriteString("    seteuid(getuid());\n")
	fmt.Fprintf(&g.b, "    execl(\"/bin/%s\", \"x\");\n", g.fresh("safe"))
}

// unsafePattern misses the drop on the else branch (the §6.3 bug), then
// cleans up so privilege does not leak into unrelated code.
func (g *gen) unsafePattern() {
	if g.cfg.FullProperty {
		fmt.Fprintf(&g.b, "    if (x%d) {\n", g.r.Intn(8))
		g.b.WriteString("        setresuid(u, u, u);\n")
		g.b.WriteString("    }\n")
		fmt.Fprintf(&g.b, "    execl(\"/bin/%s\", \"x\");\n", g.fresh("unsafe"))
		return
	}
	g.b.WriteString("    seteuid(0);\n")
	fmt.Fprintf(&g.b, "    if (x%d) {\n", g.r.Intn(8))
	g.b.WriteString("        seteuid(getuid());\n")
	g.b.WriteString("    }\n")
	fmt.Fprintf(&g.b, "    execl(\"/bin/%s\", \"x\");\n", g.fresh("unsafe"))
	g.b.WriteString("    seteuid(getuid());\n")
}

// TaintConfig parameterizes taint workload generation (for the bit-vector
// experiment): like Config but with source/sanitize/sink patterns.
type TaintConfig struct {
	Seed       int64
	Functions  int
	StmtsPerFn int
	CallProb   float64
	// Tainted and Cleaned count injected sink-reaching and sanitized
	// flows respectively.
	Tainted int
	Cleaned int
}

// GenerateTaint produces a taint-analysis workload.
func GenerateTaint(cfg TaintConfig) string {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &gen{cfg: Config{
		Seed: cfg.Seed, Functions: cfg.Functions, StmtsPerFn: cfg.StmtsPerFn,
		CallProb: cfg.CallProb, BranchProb: 0.1, LoopProb: 0.04,
	}, r: r}
	n := cfg.Functions
	taint := map[int]int{}
	clean := map[int]int{}
	for i := 0; i < cfg.Tainted; i++ {
		taint[r.Intn(n)]++
	}
	for i := 0; i < cfg.Cleaned; i++ {
		clean[r.Intn(n)]++
	}
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&g.b, "void fn%d(int a) {\n", i)
		for j := 0; j < taint[i]; j++ {
			v := g.fresh("t")
			fmt.Fprintf(&g.b, "    int %s = source();\n    sink(%s);\n", v, v)
		}
		for j := 0; j < clean[i]; j++ {
			v := g.fresh("c")
			fmt.Fprintf(&g.b, "    int %s = source();\n    sanitize(%s);\n    sink(%s);\n", v, v, v)
		}
		g.body(i, cfg.StmtsPerFn, 1)
		g.b.WriteString("}\n")
	}
	g.b.WriteString("void main() {\n")
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&g.b, "    fn%d(1);\n", r.Intn(n))
	}
	g.b.WriteString("}\n")
	return g.b.String()
}
