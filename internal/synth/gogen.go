package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// GoConfig parameterizes the synthetic Go package generator used by the
// analysis-driver benchmark: a multi-file package with one root function
// per file, call chains through the file's locals, and injected
// mutex/file usage patterns (some deliberately buggy).
type GoConfig struct {
	Seed          int64
	Files         int
	FuncsPerFile  int
	StmtsPerFn    int
	UnsafePerFile int  // injected double-lock / leak patterns per file
	Racy          bool // leave some goroutine writes unguarded (race corpus)
}

// GoFile is one generated source file.
type GoFile struct {
	Name string
	Src  string
}

// GenerateGo emits a deterministic synthetic Go package. The sources
// only need to parse (the gosrc front end is type-blind), but they are
// kept plausible: per-file mutexes, os.Open/Close pairs, loops and
// branches that exercise the checkers' automata.
func GenerateGo(cfg GoConfig) []GoFile {
	if cfg.Files <= 0 {
		cfg.Files = 4
	}
	if cfg.FuncsPerFile <= 0 {
		cfg.FuncsPerFile = 5
	}
	if cfg.StmtsPerFn <= 0 {
		cfg.StmtsPerFn = 20
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]GoFile, 0, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "package bench\n\nimport (\n\t\"os\"\n\t\"sync\"\n)\n\n")
		fmt.Fprintf(&b, "var mu%d sync.Mutex\n", i)
		fmt.Fprintf(&b, "var shared%d int\n", i)
		fmt.Fprintf(&b, "var sem%d Sem\n", i)
		fmt.Fprintf(&b, "var pool%d Pool\n", i)
		fmt.Fprintf(&b, "var bufs%d Bufs\n\n", i)
		// Root: the entry function the driver will pick up. It spawns a
		// background bumper so the race checker has ≥2 goroutines to
		// reason about.
		fmt.Fprintf(&b, "func Root%d() {\n", i)
		fmt.Fprintf(&b, "\tgo bump%d()\n", i)
		fmt.Fprintf(&b, "\tmu%d.Lock()\n\tshared%d = 1\n\tmu%d.Unlock()\n", i, i, i)
		fmt.Fprintf(&b, "\tnest%d(3)\n", i)
		fmt.Fprintf(&b, "\tg%d_0(1)\n", i)
		b.WriteString("}\n\n")
		fmt.Fprintf(&b, "func bump%d() {\n", i)
		if cfg.Racy && i%2 == 0 {
			fmt.Fprintf(&b, "\tshared%d++\n", i)
		} else {
			fmt.Fprintf(&b, "\tmu%d.Lock()\n\tshared%d++\n\tmu%d.Unlock()\n", i, i, i)
		}
		b.WriteString("}\n\n")
		// Deep recursion through an Enter/Leave pair per level: balanced,
		// but of unbounded depth, so the depthbound checker's counter
		// saturates (a may-exceed finding by design).
		fmt.Fprintf(&b, "func nest%d(n int) {\n\tEnter()\n\tif n > 0 {\n\t\tnest%d(n - 1)\n\t}\n\tLeave()\n}\n\n", i, i)
		unsafeAt := map[int]bool{}
		for u := 0; u < cfg.UnsafePerFile; u++ {
			unsafeAt[r.Intn(cfg.FuncsPerFile)] = true
		}
		for j := 0; j < cfg.FuncsPerFile; j++ {
			fmt.Fprintf(&b, "func g%d_%d(n int) {\n", i, j)
			if unsafeAt[j] {
				genGoUnsafe(&b, r, i)
			} else {
				genGoSafe(&b, r, i)
			}
			for s := 0; s < cfg.StmtsPerFn; s++ {
				genGoStmt(&b, r, i, s)
			}
			if j+1 < cfg.FuncsPerFile {
				fmt.Fprintf(&b, "\tg%d_%d(n + 1)\n", i, j+1)
			}
			b.WriteString("}\n\n")
		}
		out = append(out, GoFile{
			Name: fmt.Sprintf("gen_%d.go", i),
			Src:  b.String(),
		})
	}
	return out
}

func genGoSafe(b *strings.Builder, r *rand.Rand, file int) {
	switch r.Intn(7) {
	case 0:
		fmt.Fprintf(b, "\tmu%d.Lock()\n\twork(n)\n\tmu%d.Unlock()\n", file, file)
	case 5:
		// Deep balanced semaphore burst: five permits held at once, deeper
		// than an independent counter's bound — only the relational
		// acq−rel tracker verifies this without a may-verdict.
		fmt.Fprintf(b, "\tsem%d.Acquire(ctx, 1)\n\tsem%d.Acquire(ctx, 1)\n\tsem%d.Acquire(ctx, 1)\n\tsem%d.Acquire(ctx, 1)\n\tsem%d.Acquire(ctx, 1)\n\twork(n)\n\tsem%d.Release(1)\n\tsem%d.Release(1)\n\tsem%d.Release(1)\n\tsem%d.Release(1)\n\tsem%d.Release(1)\n",
			file, file, file, file, file, file, file, file, file, file)
	case 6:
		// Get/Put exchange loop: the tk−gv difference returns to 0 each
		// round, clean under poolexchange at any iteration count.
		fmt.Fprintf(b, "\tfor k := 0; k < n; k++ {\n\t\tb%d := bufs%d.Get()\n\t\tuse(b%d)\n\t\tbufs%d.Put(b%d)\n\t}\n", file, file, file, file, file)
	case 1:
		// Balanced semaphore hold, including a nested reacquire on one
		// branch — exercises the counting checkers' exact range.
		fmt.Fprintf(b, "\tsem%d.Acquire(ctx, 1)\n\tif n > 1 {\n\t\tsem%d.Acquire(ctx, 1)\n\t\twork(n)\n\t\tsem%d.Release(1)\n\t}\n\tsem%d.Release(1)\n", file, file, file, file)
	case 2:
		fmt.Fprintf(b, "\tc%d := pool%d.Checkout()\n\tuse(c%d)\n\tpool%d.Checkin(c%d)\n", file, file, file, file, file)
	case 3:
		fmt.Fprintf(b, "\tEnter()\n\twork(n)\n\tLeave()\n")
	default:
		fmt.Fprintf(b, "\tf%d, _ := os.Open(\"data\")\n\twork(n)\n\tf%d.Close()\n", file, file)
	}
}

func genGoUnsafe(b *strings.Builder, r *rand.Rand, file int) {
	switch r.Intn(6) {
	case 0:
		fmt.Fprintf(b, "\tmu%d.Lock()\n\tif n > 0 {\n\t\tmu%d.Lock()\n\t}\n\tmu%d.Unlock()\n", file, file, file)
	case 5:
		// Get hoard: checkouts without returns push tk−gv over the band.
		fmt.Fprintf(b, "\tfor k := 0; k < n; k++ {\n\t\tb%d := bufs%d.Get()\n\t\tuse(b%d)\n\t}\n", file, file, file)
	case 1:
		// Unbalanced semaphore: the permit stays held on one branch.
		fmt.Fprintf(b, "\tsem%d.Acquire(ctx, 1)\n\tif n > 0 {\n\t\tsem%d.Release(1)\n\t}\n", file, file)
	case 2:
		// Pool checkouts in a loop without checkins: exceeds capacity.
		fmt.Fprintf(b, "\tfor k := 0; k < n; k++ {\n\t\tc%d := pool%d.Checkout()\n\t\tuse(c%d)\n\t}\n", file, file, file)
	case 3:
		// More Dones than the Add total: negative WaitGroup counter.
		fmt.Fprintf(b, "\tvar wg%d sync.WaitGroup\n\twg%d.Add(1)\n\twork(n)\n\twg%d.Done()\n\twg%d.Done()\n", file, file, file, file)
	default:
		fmt.Fprintf(b, "\tleak%d, _ := os.Open(\"data\")\n\tif n > 0 {\n\t\tleak%d.Close()\n\t}\n", file, file)
	}
}

func genGoStmt(b *strings.Builder, r *rand.Rand, file, s int) {
	switch r.Intn(6) {
	case 0:
		fmt.Fprintf(b, "\tif cond(n) {\n\t\twork(%d)\n\t} else {\n\t\tother(%d)\n\t}\n", s, s)
	case 1:
		fmt.Fprintf(b, "\tfor k := 0; k < n; k++ {\n\t\tmu%d.Lock()\n\t\tstep(k)\n\t\tmu%d.Unlock()\n\t}\n", file, file)
	case 2:
		fmt.Fprintf(b, "\th%d_%d, _ := os.Open(\"tmp\")\n\tuse(h%d_%d)\n\th%d_%d.Close()\n", file, s, file, s, file, s)
	case 3:
		fmt.Fprintf(b, "\tswitch pick(n) {\n\tcase 1:\n\t\twork(%d)\n\tcase 2:\n\t\tother(%d)\n\tdefault:\n\t\tstep(%d)\n\t}\n", s, s, s)
	default:
		fmt.Fprintf(b, "\twork(%d)\n", s)
	}
}
