// Package terms implements constructor signatures and hash-consed
// annotated ground terms: the M-annotated domain T^M of §2.3 of the paper.
// Every constructor in a term carries its own annotation (a representative
// function standing for a ≡_M class of words); the append operation ·w
// extends the annotation at every level of the term.
//
// Hash-consing is the memory optimization called out in §8: because the
// solver omits representative function variables during resolution, terms
// can be interned aggressively, and structurally equal terms share one
// node.
package terms

import (
	"fmt"
	"strings"

	"rasc/internal/monoid"
)

// ConsID identifies a constructor within a Signature.
type ConsID int32

// Variance of a constructor argument. The paper's domain (§2.1) is
// covariant; contravariant arguments (Banshee-style, used by the
// points-to encoding's ref "set" component) reverse the derived flow in
// the structural rule.
type Variance int8

// Argument variances.
const (
	Covariant Variance = iota
	Contravariant
)

// Constructor is a named constructor with a fixed arity. Constants are
// constructors of arity zero. Variances has one entry per argument; nil
// means all covariant.
type Constructor struct {
	Name      string
	Arity     int
	Variances []Variance
}

// Signature interns constructors by name. Declaring the same name twice
// with different arities is an error.
type Signature struct {
	cons  []Constructor
	index map[string]ConsID
}

// NewSignature returns an empty signature.
func NewSignature() *Signature {
	return &Signature{index: make(map[string]ConsID)}
}

// Declare interns a covariant constructor, checking arity consistency.
func (s *Signature) Declare(name string, arity int) (ConsID, error) {
	return s.DeclareVariance(name, arity, nil)
}

// DeclareVariance interns a constructor with explicit argument variances
// (nil = all covariant).
func (s *Signature) DeclareVariance(name string, arity int, variances []Variance) (ConsID, error) {
	if id, ok := s.index[name]; ok {
		if s.cons[id].Arity != arity {
			return 0, fmt.Errorf("terms: constructor %q redeclared with arity %d (was %d)",
				name, arity, s.cons[id].Arity)
		}
		return id, nil
	}
	if arity < 0 {
		return 0, fmt.Errorf("terms: constructor %q has negative arity", name)
	}
	if variances != nil && len(variances) != arity {
		return 0, fmt.Errorf("terms: constructor %q has %d variances for arity %d",
			name, len(variances), arity)
	}
	id := ConsID(len(s.cons))
	s.cons = append(s.cons, Constructor{name, arity, append([]Variance{}, variances...)})
	s.index[name] = id
	return id, nil
}

// MustDeclare is Declare that panics on error.
func (s *Signature) MustDeclare(name string, arity int) ConsID {
	id, err := s.Declare(name, arity)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the constructor id for name.
func (s *Signature) Lookup(name string) (ConsID, bool) {
	id, ok := s.index[name]
	return id, ok
}

// Cons returns the constructor for id.
func (s *Signature) Cons(id ConsID) Constructor { return s.cons[id] }

// Arity returns the arity of id.
func (s *Signature) Arity(id ConsID) int { return s.cons[id].Arity }

// VarianceOf returns the variance of argument i of id.
func (s *Signature) VarianceOf(id ConsID, i int) Variance {
	v := s.cons[id].Variances
	if len(v) == 0 {
		return Covariant
	}
	return v[i]
}

// Name returns the name of id.
func (s *Signature) Name(id ConsID) string { return s.cons[id].Name }

// Size returns the number of declared constructors.
func (s *Signature) Size() int { return len(s.cons) }

// TermID identifies a hash-consed term within a Bank.
type TermID int32

// NoTerm is the absence of a term.
const NoTerm TermID = -1

type termData struct {
	cons  ConsID
	annot monoid.FuncID
	args  []TermID
}

// Bank hash-conses annotated ground terms over a signature.
type Bank struct {
	Sig   *Signature
	terms []termData
	index map[string]TermID
}

// NewBank returns an empty term bank.
func NewBank(sig *Signature) *Bank {
	return &Bank{Sig: sig, index: make(map[string]TermID)}
}

func termKey(cons ConsID, annot monoid.FuncID, args []TermID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d^%d(", cons, annot)
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	b.WriteByte(')')
	return b.String()
}

// Mk interns the term cons^annot(args...). The number of args must match
// the constructor's arity.
func (b *Bank) Mk(cons ConsID, annot monoid.FuncID, args ...TermID) (TermID, error) {
	if got, want := len(args), b.Sig.Arity(cons); got != want {
		return NoTerm, fmt.Errorf("terms: %s applied to %d args, want %d", b.Sig.Name(cons), got, want)
	}
	k := termKey(cons, annot, args)
	if id, ok := b.index[k]; ok {
		return id, nil
	}
	id := TermID(len(b.terms))
	b.terms = append(b.terms, termData{cons, annot, append([]TermID{}, args...)})
	b.index[k] = id
	return id, nil
}

// MustMk is Mk that panics on error.
func (b *Bank) MustMk(cons ConsID, annot monoid.FuncID, args ...TermID) TermID {
	id, err := b.Mk(cons, annot, args...)
	if err != nil {
		panic(err)
	}
	return id
}

// Cons returns the root constructor of t.
func (b *Bank) Cons(t TermID) ConsID { return b.terms[t].cons }

// Annot returns the root annotation of t.
func (b *Bank) Annot(t TermID) monoid.FuncID { return b.terms[t].annot }

// Args returns the argument terms of t (do not mutate).
func (b *Bank) Args(t TermID) []TermID { return b.terms[t].args }

// Size returns the number of interned terms.
func (b *Bank) Size() int { return len(b.terms) }

// Append implements the ·w operation of §2.3 over representative
// functions: every annotation in the term is extended by f
// (c^w(t1,…,tn)·w' = c^{ww'}(t1·w', …, tn·w')). Hash-consing makes the
// rebuilt term share structure with existing terms.
func (b *Bank) Append(t TermID, f monoid.FuncID, mon *monoid.Monoid) TermID {
	if f == mon.Identity() {
		return t
	}
	d := b.terms[t]
	args := make([]TermID, len(d.args))
	for i, a := range d.args {
		args[i] = b.Append(a, f, mon)
	}
	return b.MustMk(d.cons, mon.Then(d.annot, f), args...)
}

// Equiv implements ≡_M on terms: equal constructors, ≡_M-equal
// annotations (identical FuncIDs, since the monoid already quotients by
// ≡_M) and pointwise-equivalent arguments. With hash-consing this reduces
// to identity.
func (b *Bank) Equiv(s, t TermID) bool { return s == t }

// String renders t in the paper's notation, using mon for annotation
// names when non-nil.
func (b *Bank) String(t TermID, mon *monoid.Monoid) string {
	var sb strings.Builder
	b.render(&sb, t, mon)
	return sb.String()
}

func (b *Bank) render(sb *strings.Builder, t TermID, mon *monoid.Monoid) {
	d := b.terms[t]
	sb.WriteString(b.Sig.Name(d.cons))
	if mon != nil {
		if d.annot == mon.Identity() {
			sb.WriteString("^ε")
		} else {
			fmt.Fprintf(sb, "^[%s]", strings.Join(mon.WitnessNames(d.annot), " "))
		}
	} else {
		fmt.Fprintf(sb, "^%d", d.annot)
	}
	if len(d.args) > 0 {
		sb.WriteByte('(')
		for i, a := range d.args {
			if i > 0 {
				sb.WriteByte(',')
			}
			b.render(sb, a, mon)
		}
		sb.WriteByte(')')
	}
}

// Depth returns the constructor depth of t (constants have depth 1).
func (b *Bank) Depth(t TermID) int {
	d := b.terms[t]
	max := 0
	for _, a := range d.args {
		if dep := b.Depth(a); dep > max {
			max = dep
		}
	}
	return max + 1
}
