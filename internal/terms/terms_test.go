package terms

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
)

func oneBitMonoid(t testing.TB) *monoid.Monoid {
	t.Helper()
	alpha := dfa.NewAlphabet("g", "k")
	d := dfa.NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	m, err := monoid.Build(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSignature(t *testing.T) {
	sig := NewSignature()
	c, err := sig.Declare("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Name(c) != "c" || sig.Arity(c) != 1 {
		t.Error("declare/lookup mismatch")
	}
	c2, err := sig.Declare("c", 1)
	if err != nil || c2 != c {
		t.Error("re-declaration with same arity should return same id")
	}
	if _, err := sig.Declare("c", 2); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := sig.Declare("bad", -1); err == nil {
		t.Error("negative arity should error")
	}
	if _, ok := sig.Lookup("missing"); ok {
		t.Error("missing constructor should not be found")
	}
	if sig.Size() != 1 {
		t.Errorf("Size = %d, want 1", sig.Size())
	}
}

func TestHashConsing(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := NewSignature()
	c := sig.MustDeclare("c", 0)
	o := sig.MustDeclare("o", 1)

	b := NewBank(sig)
	t1 := b.MustMk(c, mon.Identity())
	t2 := b.MustMk(c, mon.Identity())
	if t1 != t2 {
		t.Error("identical terms must be shared")
	}
	u1 := b.MustMk(o, mon.Identity(), t1)
	u2 := b.MustMk(o, mon.Identity(), t2)
	if u1 != u2 {
		t.Error("identical compound terms must be shared")
	}
	if b.Size() != 2 {
		t.Errorf("bank has %d terms, want 2", b.Size())
	}
	fg, _ := mon.SymbolFuncByName("g")
	u3 := b.MustMk(o, fg, t1)
	if u3 == u1 {
		t.Error("different annotations must not be shared")
	}
}

func TestMkArityCheck(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := NewSignature()
	o := sig.MustDeclare("o", 1)
	b := NewBank(sig)
	if _, err := b.Mk(o, mon.Identity()); err == nil {
		t.Error("arity mismatch should error")
	}
}

// The ·w operation appends at every level (§2.3):
// c^w(t1,…)·w' = c^{ww'}(t1·w', …).
func TestAppendAllLevels(t *testing.T) {
	mon := oneBitMonoid(t)
	fg, _ := mon.SymbolFuncByName("g")
	fk, _ := mon.SymbolFuncByName("k")

	sig := NewSignature()
	c := sig.MustDeclare("c", 0)
	o := sig.MustDeclare("o", 1)
	b := NewBank(sig)

	inner := b.MustMk(c, fg)
	outer := b.MustMk(o, mon.Identity(), inner)
	res := b.Append(outer, fk, mon)

	if b.Annot(res) != fk {
		t.Errorf("outer annotation = %s, want f_k (ε·k)", mon.String(b.Annot(res)))
	}
	in := b.Args(res)[0]
	if b.Annot(in) != mon.Then(fg, fk) {
		t.Errorf("inner annotation = %s, want g·k", mon.String(b.Annot(in)))
	}
}

func TestAppendIdentityIsNoop(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := NewSignature()
	c := sig.MustDeclare("c", 0)
	b := NewBank(sig)
	t1 := b.MustMk(c, mon.Identity())
	if b.Append(t1, mon.Identity(), mon) != t1 {
		t.Error("appending ε must be the identity")
	}
}

// Lemma 2.2 via hash-consing: t ≡ t' implies t·w ≡ t'·w, trivially because
// equivalent terms are the same TermID; check Append is deterministic.
func TestQuickAppendHomomorphism(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := NewSignature()
	c := sig.MustDeclare("c", 0)
	o := sig.MustDeclare("o", 1)
	p := sig.MustDeclare("p", 2)
	b := NewBank(sig)

	var randTerm func(r *rand.Rand, depth int) TermID
	randTerm = func(r *rand.Rand, depth int) TermID {
		annot := monoid.FuncID(r.Intn(mon.Size()))
		if depth == 0 || r.Intn(2) == 0 {
			return b.MustMk(c, annot)
		}
		if r.Intn(2) == 0 {
			return b.MustMk(o, annot, randTerm(r, depth-1))
		}
		return b.MustMk(p, annot, randTerm(r, depth-1), randTerm(r, depth-1))
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm := randTerm(r, 3)
		f1 := monoid.FuncID(r.Intn(mon.Size()))
		f2 := monoid.FuncID(r.Intn(mon.Size()))
		// (t·f1)·f2 == t·(f1 then f2)
		lhs := b.Append(b.Append(tm, f1, mon), f2, mon)
		rhs := b.Append(tm, mon.Then(f1, f2), mon)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDepth(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := NewSignature()
	c := sig.MustDeclare("c", 0)
	o := sig.MustDeclare("o", 1)
	b := NewBank(sig)
	t0 := b.MustMk(c, mon.Identity())
	t1 := b.MustMk(o, mon.Identity(), t0)
	t2 := b.MustMk(o, mon.Identity(), t1)
	if b.Depth(t0) != 1 || b.Depth(t1) != 2 || b.Depth(t2) != 3 {
		t.Error("depth wrong")
	}
}

func TestStringRendering(t *testing.T) {
	mon := oneBitMonoid(t)
	fg, _ := mon.SymbolFuncByName("g")
	sig := NewSignature()
	c := sig.MustDeclare("pc", 0)
	o := sig.MustDeclare("o1", 1)
	b := NewBank(sig)
	tm := b.MustMk(o, fg, b.MustMk(c, mon.Identity()))
	s := b.String(tm, mon)
	if !strings.Contains(s, "o1") || !strings.Contains(s, "pc") || !strings.Contains(s, "ε") {
		t.Errorf("bad rendering %q", s)
	}
	s2 := b.String(tm, nil)
	if !strings.Contains(s2, "o1") {
		t.Errorf("bad rendering %q", s2)
	}
}
