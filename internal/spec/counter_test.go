package spec

import (
	"errors"
	"strings"
	"testing"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
)

// semCounterSrc is the canonical bounded-counter specification used
// throughout the tests: a single permit counter with both inline and
// exit asserts (the semabalance shape).
const semCounterSrc = `
counter c bound 4;

start state S :
    | acquire(x) [c += 1] -> S
    | release(x) [c -= 1] -> S;

assert c >= 0;
assert c == 0 at exit;
`

func TestCounterCompile(t *testing.T) {
	p, err := Compile(semCounterSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Domain(); got != "counting(c≤4)" {
		t.Errorf("Domain() = %q, want counting(c≤4)", got)
	}
	if len(p.Counters) != 1 || p.Counters[0].Name != "c" || p.Counters[0].Bound != 4 {
		t.Errorf("Counters = %+v, want one counter c bound 4", p.Counters)
	}
	// 1 base state × (4 exact + sat + neg + fail) tracker values, minus the
	// unreachable product combinations dfa.Union trims.
	if p.Stats.ExpandedStates == 0 || p.Stats.ExpandedStates != p.Machine.NumStates {
		t.Errorf("Stats.ExpandedStates = %d, machine has %d states", p.Stats.ExpandedStates, p.Machine.NumStates)
	}
	if p.Stats.SaturatingEdges == 0 {
		t.Error("expected at least one saturating edge for acquire at c=3")
	}
	// Product state names carry the counter valuation.
	var names []string
	for s := 0; s < p.Machine.NumStates; s++ {
		names = append(names, p.Machine.NameOf(dfa.State(s)))
	}
	joined := strings.Join(names, " ")
	// The "c<0" tracker value is unreachable here: the inline `>= 0` assert
	// routes underflow straight to fail, and the product trims it.
	for _, want := range []string{"S·c=0", "S·c>=4", "S·c:fail"} {
		if !strings.Contains(joined, want) {
			t.Errorf("state names %q missing %q", joined, want)
		}
	}
}

// TestCounterSemantics drives the compiled monoid through the abstract
// counter domain: exact values below the bound behave precisely,
// underflow condemns the run, and saturation yields a may-verdict.
func TestCounterSemantics(t *testing.T) {
	p, err := Compile(semCounterSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acq, ok := p.Mon.SymbolFuncByName("acquire")
	if !ok {
		t.Fatal("no acquire symbol")
	}
	rel, ok := p.Mon.SymbolFuncByName("release")
	if !ok {
		t.Fatal("no release symbol")
	}
	seq := func(fs ...monoid.FuncID) monoid.FuncID {
		f := p.Mon.Identity()
		for _, g := range fs {
			f = p.Mon.Then(f, g)
		}
		return f
	}
	rep := func(f monoid.FuncID, n int) []monoid.FuncID {
		out := make([]monoid.FuncID, n)
		for i := range out {
			out[i] = f
		}
		return out
	}
	cases := []struct {
		name string
		f    monoid.FuncID
		acc  bool
	}{
		{"empty trace: balanced", p.Mon.Identity(), false},
		{"lone acquire: held at exit", acq, true},
		{"acquire release: balanced", seq(acq, rel), false},
		{"release first: underflow", seq(rel, acq), true},
		{"three acquires three releases: exact range", seq(acq, acq, acq, rel, rel, rel), false},
		{"five acquires five releases: saturated may-verdict", seq(append(rep(acq, 5), rep(rel, 5)...)...), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := p.Mon.Accepting(c.f); got != c.acc {
				st := p.Mon.Apply(c.f, p.Machine.Start)
				t.Errorf("accepting = %v (state %s), want %v", got, p.Machine.NameOf(st), c.acc)
			}
		})
	}
	// The underflow and saturated states are sticky: no suffix recovers.
	under := seq(rel, acq)
	if !p.Mon.Accepting(p.Mon.Then(under, seq(rep(acq, 3)...))) {
		t.Error("underflow must stay condemned after further acquires")
	}
}

// TestCounterSyntaxErrors checks positions and messages on malformed
// counter syntax — the lexer and parser must point at the offending
// token, not just fail.
func TestCounterSyntaxErrors(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		want      string
		line, col int
	}{
		{"missing bound keyword", "counter c 4;", "expected 'bound'", 1, 11},
		{"missing bound value", "counter c bound;", "expected counter bound", 1, 16},
		{"lone <", "counter c bound 2;\nassert c < 1;", "expected '<=' after '<'", 2, 11},
		{"at without exit", "counter c bound 2;\nassert c == 0 at end;", "expected 'exit' after 'at'", 2, 18},
		{"bad op", "start state S :\n | a [c * 1] -> S;", "expected '+=' or '-='", 2, 9},
		{"bad char", "start state S :\n | a [c @ 1] -> S;", "unexpected character", 2, 9},
		{"negative delta", "start state S :\n | a [c += -1] -> S;", "must be non-negative", 2, 12},
		{"unclosed bracket", "start state S :\n | a [+1 -> S;", "expected ']'", 2, 10},
		{"empty brackets", "start state S :\n | a [] -> S;", "expected counter update", 2, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *SyntaxError", err)
			}
			if se.Line != c.line || se.Col != c.col {
				t.Errorf("error at %d:%d, want %d:%d (%s)", se.Line, se.Col, c.line, c.col, se.Msg)
			}
		})
	}
}

func TestCounterSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"assert without counters",
			"start state S : | a -> S;\nassert c <= 1;",
			"no counters are declared"},
		{"update without counters",
			"start state S : | a [+1] -> S;\naccept state B;",
			"no counters are declared"},
		{"duplicate counter",
			"counter c bound 2;\ncounter c bound 3;\nstart state S : | a [c += 1] -> S;\nassert c <= 1;",
			"duplicate counter"},
		{"bound zero",
			"counter c bound 0;\nstart state S : | a [c += 1] -> S;\nassert c <= 1;",
			"out of range"},
		{"bound huge",
			"counter c bound 65;\nstart state S : | a [c += 1] -> S;\nassert c <= 1;",
			"out of range"},
		{"undeclared in assert",
			"counter c bound 2;\nstart state S : | a [c += 1] -> S;\nassert d <= 1;",
			"undeclared counter"},
		{"undeclared in update",
			"counter c bound 2;\nstart state S : | a [d += 1] -> S;\nassert c <= 1;",
			"undeclared counter"},
		{"never asserted",
			"counter c bound 2;\nstart state S : | a [c += 1] -> S;\naccept state B;",
			"never asserted"},
		{"assert value at bound",
			"counter c bound 2;\nstart state S : | a [c += 1] -> S;\nassert c <= 2;",
			"out of range"},
		{"inline ==",
			"counter c bound 2;\nstart state S : | a [c += 1] -> S;\nassert c == 1;",
			"only supported 'at exit'"},
		{"inline >= nonzero",
			"counter c bound 3;\nstart state S : | a [c += 1] -> S;\nassert c >= 1;",
			"supports only 0"},
		{"ambiguous shorthand",
			"counter c bound 2;\ncounter d bound 2;\nstart state S : | a [+1] -> S;\nassert c <= 1;\nassert d <= 1;",
			"ambiguous"},
		{"inconsistent deltas",
			"counter c bound 2;\nstart state S : | a [c += 1] -> T;\nstate T : | a [c -= 1] -> S;\nassert c <= 1;",
			"must be per-symbol"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
			var se *SemanticError
			if !errors.As(err, &se) {
				t.Errorf("error %T is not a *SemanticError", err)
			}
		})
	}
}

// TestCounterExpansionCap exercises the product-size guard: several wide
// counters multiply past maxExpandedStates and must fail with a clear
// message instead of building an enormous machine.
func TestCounterExpansionCap(t *testing.T) {
	src := `
counter a bound 20;
counter b bound 20;
counter c bound 20;

start state S :
    | x [a += 1] -> S
    | y [b += 1] -> S
    | z [c += 1] -> S;

assert a <= 19;
assert b <= 19;
assert c <= 19;
`
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("expected expansion-cap error")
	}
	if !strings.Contains(err.Error(), "counter expansion exceeds") {
		t.Errorf("error %q does not mention the expansion cap", err)
	}
}

// TestCounterMonoidLimit checks that a counter spec whose monoid blows
// past Options.MonoidLimit surfaces monoid.ErrTooLarge (wrapped, with
// the limit in the message) rather than panicking.
func TestCounterMonoidLimit(t *testing.T) {
	_, err := Compile(semCounterSrc, Options{MonoidLimit: 4})
	if err == nil {
		t.Fatal("expected monoid-limit error")
	}
	if !errors.Is(err, monoid.ErrTooLarge) {
		t.Errorf("error %q is not monoid.ErrTooLarge", err)
	}
	if !strings.Contains(err.Error(), "more than 4") {
		t.Errorf("error %q does not name the limit", err)
	}
}
