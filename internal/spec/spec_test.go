package spec

import (
	"strings"
	"testing"

	"rasc/internal/dfa"
)

const privilegeSrc = `
# Figure 3: process privilege property.
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
`

const fileSrc = `
// Figure 5: file state tracking with a parametric symbol.
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

func TestParsePrivilege(t *testing.T) {
	ast, err := Parse(privilegeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.States) != 3 {
		t.Fatalf("got %d states, want 3", len(ast.States))
	}
	if !ast.States[0].IsStart || ast.States[0].Name != "Unpriv" {
		t.Error("first decl should be start state Unpriv")
	}
	if !ast.States[2].IsAccept || len(ast.States[2].Arms) != 0 {
		t.Error("Error should be an accept state with no arms")
	}
	if len(ast.States[1].Arms) != 2 {
		t.Error("Priv should have two arms")
	}
}

func TestCompilePrivilege(t *testing.T) {
	p, err := Compile(privilegeSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := p.Machine
	if m.NumStates != 3 {
		t.Fatalf("machine has %d states, want 3", m.NumStates)
	}
	if !p.IsMinimal() {
		t.Error("privilege machine should already be minimal")
	}
	if !m.AcceptsNames("seteuid_zero", "execl") {
		t.Error("violating trace should accept")
	}
	if m.AcceptsNames("seteuid_zero", "seteuid_nonzero", "execl") {
		t.Error("safe trace should not accept")
	}
	// Stuttering: execl in Unpriv self-loops.
	if m.AcceptsNames("execl") {
		t.Error("unprivileged execl should self-loop")
	}
	if p.Mon.Size() == 0 {
		t.Error("monoid not built")
	}
	if p.IsParametric() {
		t.Error("privilege property has no parameters")
	}
	if p.StateOf["Error"] != dfa.State(2) {
		t.Error("state mapping lost")
	}
}

func TestCompileParametric(t *testing.T) {
	p, err := Compile(fileSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsParametric() {
		t.Fatal("file property should be parametric")
	}
	if p.ParamOf["open"] != "x" || p.ParamOf["close"] != "x" {
		t.Errorf("ParamOf = %v", p.ParamOf)
	}
	// open then close returns to Closed (not accepting); open alone accepts.
	if !p.Machine.AcceptsNames("open") {
		t.Error("open should reach the accepting Opened state")
	}
	if p.Machine.AcceptsNames("open", "close") {
		t.Error("open;close should return to Closed")
	}
}

func TestCompileMinimizeOption(t *testing.T) {
	// Redundant state B behaves exactly like A.
	src := `
start state S :
    | a -> A
    | b -> B;
accept state A :
    | a -> A;
accept state B :
    | a -> A;
`
	p, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.IsMinimal() {
		t.Fatal("test machine should be non-minimal")
	}
	pm, err := Compile(src, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Machine.NumStates >= p.Machine.NumStates {
		t.Error("Minimize did not shrink the machine")
	}
	if !pm.IsMinimal() {
		t.Error("minimized machine should be minimal")
	}
	// Language preserved.
	for _, w := range [][]string{{"a"}, {"b"}, {"a", "a"}, {"b", "a"}, {}} {
		if p.Machine.AcceptsNames(w...) != pm.Machine.AcceptsNames(w...) {
			t.Errorf("language changed on %v", w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "empty specification"},
		{"missing semi", "start state A", "expected ';'"},
		{"bad token", "start state A $;", "unexpected character"},
		{"arrow", "start state A : | x - B;", "expected '->'"},
		{"no arms", "start state A : ;", "at least one"},
		{"dup start qual", "start start state A;", "duplicate 'start'"},
		{"not a decl", "foo;", "expected 'start', 'accept' or 'state'"},
		{"missing target", "start state A : | x -> ;", "expected target state"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no start", "state A; accept state B;", "no start state"},
		{"no accept", "start state A;", "no accept state"},
		{"two starts", "start state A; start state B; accept state C;", "second start state"},
		{"dup state", "start state A; accept state A;", "duplicate state"},
		{"bad target", "start state A : | x -> Z; accept state B;", "undeclared target"},
		{"dup transition", "start state A : | x -> A | x -> B; accept state B;", "two transitions"},
		{"param clash", "start state A : | f(x) -> A | g -> B; accept state B : | f(y) -> A;",
			"inconsistent parameters"},
		{"param vs none", "start state A : | f(x) -> A | f -> B; accept state B;",
			"inconsistent parameters"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading\n// also this\nstart state A : // trailing\n | x -> B; # end\naccept state B;\n"
	p, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Machine.AcceptsNames("x") {
		t.Error("comments broke compilation")
	}
}

func TestSymbolLookup(t *testing.T) {
	p := MustCompile(privilegeSrc)
	if _, ok := p.Symbol("execl"); !ok {
		t.Error("execl should be interned")
	}
	if _, ok := p.Symbol("nonsense"); ok {
		t.Error("nonsense should be unknown")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile("garbage $$")
}

// Monoid of the compiled privilege property matches the hand analysis in
// the monoid package tests.
func TestCompiledMonoid(t *testing.T) {
	p := MustCompile(privilegeSrc)
	f0, ok := p.Mon.SymbolFuncByName("seteuid_zero")
	if !ok {
		t.Fatal("seteuid_zero missing")
	}
	f2, _ := p.Mon.SymbolFuncByName("execl")
	bad := p.Mon.Then(f0, f2)
	if !p.Mon.Accepting(bad) {
		t.Error("seteuid_zero·execl should accept")
	}
}

// FromRegex: the 1-bit gen/kill language as the expression of §3.3
// ("ends generated"): (g|k)* g — and its monoid is the same 3 functions.
func TestFromRegex(t *testing.T) {
	p, err := FromRegex("(g | k)* g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Machine.AcceptsNames("g") || p.Machine.AcceptsNames("g", "k") || !p.Machine.AcceptsNames("k", "g") {
		t.Error("wrong language")
	}
	if p.Mon.Size() != 3 {
		t.Errorf("|F^≡| = %d, want 3", p.Mon.Size())
	}
	if _, err := FromRegex("((", Options{}); err == nil {
		t.Error("bad regex should error")
	}
}
