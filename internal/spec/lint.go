package spec

import (
	"fmt"
	"sort"

	"rasc/internal/dfa"
)

// speclint: static analysis over specifications themselves. Where
// compilation rejects specs that cannot mean anything (hard semantic
// errors), lint flags specs that compile but almost certainly do not mean
// what their author intended:
//
//	dead-state          a declared state (and all its arms) is unreachable
//	no-accept-reachable the compiled machine can never accept
//	vacuous-assert      no reachable valuation can ever fire the assert
//	shadowed-assert     a tighter inline assert on the same (pair of)
//	                    counter(s) makes this one unobservable
//	loose-band          a relation band is wider than any reachable
//	                    difference, or the difference never leaves it
//	inconsistent-delta  an unreachable arm disagrees with the reachable
//	                    per-symbol counter deltas (reachable conflicts
//	                    stay hard compile errors)
//
// The assert checks work on the same product the compiler builds — the
// declared machine joined with each counter / relation tracker — using
// the shared step functions (counterStep, relationSpec.step), so lint
// verdicts cannot drift from compiled semantics.

// LintFinding is one speclint warning.
type LintFinding struct {
	Code string `json:"code"`
	Line int    `json:"line"`
	Msg  string `json:"msg"`
}

func (f LintFinding) String() string {
	return fmt.Sprintf("spec:%d: [%s] %s", f.Line, f.Code, f.Msg)
}

// Lint parses, compiles and lints a specification source. Parse and
// compile errors are returned as the error; lint findings never are.
func Lint(src string, opts Options) ([]LintFinding, error) {
	p, err := Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return LintProperty(p), nil
}

// LintProperty lints a compiled property. Properties without an AST
// (FromRegex) only get the machine-level checks.
func LintProperty(p *Property) []LintFinding {
	var out []LintFinding
	if !anyReachableAccept(p.Machine) {
		out = append(out, LintFinding{Code: "no-accept-reachable", Line: 1,
			Msg: "no accepting state is reachable: the property can never report"})
	}
	if p.AST == nil {
		return out
	}
	ast := p.AST
	reach := declaredReachable(ast)
	for _, d := range ast.States {
		if !reach[d.Name] {
			out = append(out, LintFinding{Code: "dead-state", Line: d.Line,
				Msg: fmt.Sprintf("state %q is unreachable from the start state; its %d arm(s) are dead", d.Name, len(d.Arms))})
		}
	}
	cs, err := validateCounters(ast)
	if err != nil || cs == nil {
		sortFindings(out)
		return out
	}
	dm, err := buildDeclaredMachine(ast)
	if err != nil {
		sortFindings(out)
		return out
	}
	base := dm.dfa.CompleteSelfLoop()

	out = append(out, lintDeltas(ast, cs)...)
	out = append(out, lintCounterAsserts(ast, cs, base)...)
	out = append(out, lintRelations(ast, cs, base)...)
	sortFindings(out)
	return out
}

func sortFindings(out []LintFinding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		return out[i].Msg < out[j].Msg
	})
}

func anyReachableAccept(m *dfa.DFA) bool {
	reach := m.Reachable()
	for s, r := range reach {
		if r && m.Accept[s] {
			return true
		}
	}
	return false
}

// lintDeltas reports per-symbol counter-delta conflicts confined to
// unreachable arms — the cases validateCounters deliberately tolerates.
func lintDeltas(ast *AST, cs *counterSpec) []LintFinding {
	var out []LintFinding
	bounds := map[string]int{}
	for _, c := range ast.Counters {
		bounds[c.Name] = c.Bound
	}
	soleCounter := ""
	if len(ast.Counters) == 1 {
		soleCounter = ast.Counters[0].Name
	}
	type canon struct {
		net  map[string]symDelta
		line int
	}
	unreachSeen := map[string]canon{} // symbols appearing only on unreachable arms
	for _, d := range ast.States {
		if cs.reachable[d.Name] {
			continue
		}
		for _, arm := range d.Arms {
			net, err := armNet(arm, soleCounter, len(ast.Counters), bounds)
			if err != nil {
				continue
			}
			if reachable, ok := cs.deltas[arm.Symbol]; ok {
				if !sameDeltas(net, reachable) {
					out = append(out, LintFinding{Code: "inconsistent-delta", Line: arm.Line,
						Msg: fmt.Sprintf("unreachable arm for %q carries different counter updates than the reachable arms; compilation used the reachable deltas", arm.Symbol)})
				}
				continue
			}
			if prev, seen := unreachSeen[arm.Symbol]; seen {
				if !sameDeltas(net, prev.net) {
					out = append(out, LintFinding{Code: "inconsistent-delta", Line: arm.Line,
						Msg: fmt.Sprintf("unreachable arm for %q disagrees with the unreachable arm at line %d about counter updates", arm.Symbol, prev.line)})
				}
			} else {
				unreachSeen[arm.Symbol] = canon{net: net, line: arm.Line}
			}
		}
	}
	return out
}

// trackerReach folds one tracker into the completed base machine and
// returns which tracker components are reachable in the product.
func trackerReach(base, t *dfa.DFA) map[int]bool {
	prod, pairs := dfa.UnionPairs(base, t)
	reach := prod.Reachable()
	comp := map[int]bool{}
	for s, ok := range reach {
		if ok {
			comp[int(pairs[s][1])] = true
		}
	}
	return comp
}

// lintCounterAsserts checks each individual-counter assert for
// vacuousness and shadowing against the reachable tracker valuations.
func lintCounterAsserts(ast *AST, cs *counterSpec, base *dfa.DFA) []LintFinding {
	var out []LintFinding
	byName := map[string]CounterDecl{}
	for _, c := range ast.Counters {
		byName[c.Name] = c
	}
	reachOf := map[string]map[int]bool{}
	causesOf := map[string]map[stepCause]bool{}
	for _, c := range ast.Counters {
		if !cs.tracked[c.Name] {
			continue
		}
		var dummy CounterStats
		t := cs.counterTracker(c, base.Alpha, &dummy)
		comp := trackerReach(base, t)
		reachOf[c.Name] = comp
		causes := map[stepCause]bool{}
		inlineMax, nonneg := cs.inlineMax[c.Name], cs.inlineNonneg[c.Name]
		for v := 0; v < c.Bound; v++ {
			if !comp[v] {
				continue
			}
			for i := 0; i < base.Alpha.Size(); i++ {
				delta := cs.deltas[base.Alpha.Name(dfa.Symbol(i))][c.Name]
				_, cause := counterStep(c.Bound, inlineMax, nonneg, delta, v)
				causes[cause] = true
			}
		}
		causesOf[c.Name] = causes
	}
	for _, a := range ast.Asserts {
		if a.CounterB != "" {
			continue
		}
		c, ok := byName[a.Counter]
		if !ok {
			continue
		}
		comp, causes := reachOf[a.Counter], causesOf[a.Counter]
		k := c.Bound
		sat, neg := k, k+1
		if a.AtExit {
			fires := false
			for v := 0; v < k; v++ {
				if comp[v] && violatesExact(a, v) {
					fires = true
				}
			}
			if (a.Cmp == "==" || a.Cmp == "<=") && comp[sat] {
				fires = true
			}
			if (a.Cmp == "==" || a.Cmp == ">=") && comp[neg] {
				fires = true
			}
			if !fires {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("exit assert on %q can never fire: no reachable counter valuation violates it", a.Counter)})
			}
			continue
		}
		switch a.Cmp {
		case "<=":
			if a.Value > cs.inlineMax[a.Counter] {
				out = append(out, LintFinding{Code: "shadowed-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %q <= %d is shadowed by the tighter <= %d", a.Counter, a.Value, cs.inlineMax[a.Counter])})
				continue
			}
			if !causes[causeFailMax] && !(cs.wildPlus[a.Counter] && comp[sat]) {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %q <= %d can never fire: no reachable valuation exceeds it", a.Counter, a.Value)})
			}
		case ">=":
			if !causes[causeFailNonneg] && !(cs.wildMinus[a.Counter] && comp[neg]) {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %q >= %d can never fire: no reachable valuation goes under it", a.Counter, a.Value)})
			}
		}
	}
	return out
}

// lintRelations checks relational asserts for vacuousness / shadowing and
// each relation band against the reachable differences.
func lintRelations(ast *AST, cs *counterSpec, base *dfa.DFA) []LintFinding {
	var out []LintFinding
	type relReach struct {
		comp   map[int]bool
		causes map[stepCause]bool
	}
	reachOf := map[*relationSpec]relReach{}
	for _, rs := range cs.relations {
		var dummy CounterStats
		t, _ := rs.tracker(base.Alpha, &dummy)
		comp := trackerReach(base, t)
		causes := map[stepCause]bool{}
		lo, hi := rs.decl.Lo, rs.decl.Hi
		for v := lo; v <= hi; v++ {
			if !comp[v-lo] {
				continue
			}
			for i := 0; i < base.Alpha.Size(); i++ {
				dl := rs.diffs[base.Alpha.Name(dfa.Symbol(i))]
				_, cause := rs.step(dl, v)
				causes[cause] = true
			}
		}
		reachOf[rs] = relReach{comp: comp, causes: causes}

		// Band checks: reachable exact differences should span the band,
		// and the difference should be able to leave it (through a sticky
		// state or an inline fail) — otherwise the band is loose.
		width := hi - lo + 1
		dmin, dmax, any := 0, 0, false
		for v := lo; v <= hi; v++ {
			if comp[v-lo] {
				if !any || v < dmin {
					dmin = v
				}
				if !any || v > dmax {
					dmax = v
				}
				any = true
			}
		}
		switch {
		case any && (dmin > lo || dmax < hi):
			out = append(out, LintFinding{Code: "loose-band", Line: rs.decl.Line,
				Msg: fmt.Sprintf("band [%d, %d] of relation %s - %s is loose: reachable differences span only [%d, %d]", lo, hi, rs.decl.A, rs.decl.B, dmin, dmax)})
		case !comp[width] && !comp[width+1] && !comp[width+2]:
			out = append(out, LintFinding{Code: "loose-band", Line: rs.decl.Line,
				Msg: fmt.Sprintf("the difference %s - %s never leaves the band [%d, %d]; the relation constrains nothing beyond its exit asserts", rs.decl.A, rs.decl.B, lo, hi)})
		}
	}
	for _, a := range ast.Asserts {
		if a.CounterB == "" {
			continue
		}
		var rs *relationSpec
		for _, r := range cs.relations {
			if r.decl.A == a.Counter && r.decl.B == a.CounterB {
				rs = r
				break
			}
		}
		if rs == nil {
			continue
		}
		rr := reachOf[rs]
		lo, hi := rs.decl.Lo, rs.decl.Hi
		width := hi - lo + 1
		hiS, loS := width, width+1
		pair := fmt.Sprintf("%s - %s", a.Counter, a.CounterB)
		if a.AtExit {
			fires := false
			for v := lo; v <= hi; v++ {
				if rr.comp[v-lo] && violatesExact(a, v) {
					fires = true
				}
			}
			if (a.Cmp == "==" || a.Cmp == "<=") && rr.comp[hiS] {
				fires = true
			}
			if (a.Cmp == "==" || a.Cmp == ">=") && rr.comp[loS] {
				fires = true
			}
			if !fires {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("exit assert on %s can never fire: no reachable difference violates it", pair)})
			}
			continue
		}
		switch a.Cmp {
		case "<=":
			if a.Value > rs.inlineMax {
				out = append(out, LintFinding{Code: "shadowed-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %s <= %d is shadowed by the tighter <= %d", pair, a.Value, rs.inlineMax)})
				continue
			}
			if !rr.causes[causeFailMax] && !(rs.wildPlus && rr.comp[hiS]) {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %s <= %d can never fire: no reachable difference exceeds it", pair, a.Value)})
			}
		case ">=":
			if a.Value < rs.inlineMin {
				out = append(out, LintFinding{Code: "shadowed-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %s >= %d is shadowed by the tighter >= %d", pair, a.Value, rs.inlineMin)})
				continue
			}
			if !rr.causes[causeFailNonneg] && !(rs.wildMinus && rr.comp[loS]) {
				out = append(out, LintFinding{Code: "vacuous-assert", Line: a.Line,
					Msg: fmt.Sprintf("inline assert %s >= %d can never fire: no reachable difference goes under it", pair, a.Value)})
			}
		}
	}
	return out
}
