package spec

import "fmt"

// AST types.

// Arm is one transition clause `| sym -> Target` or `| sym(x) -> Target`.
type Arm struct {
	Symbol string
	Param  string // parameter variable, "" if non-parametric
	Target string
	Line   int
}

// StateDecl is one `state` declaration.
type StateDecl struct {
	Name     string
	IsStart  bool
	IsAccept bool
	Arms     []Arm
	Line     int
}

// AST is a parsed specification.
type AST struct {
	States []StateDecl
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %s %q", k, t.kind, t.text)
	}
	return p.bump(), nil
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected %s, found %s %q", what, t.kind, t.text)
	}
	return p.bump(), nil
}

// Parse parses a specification source into an AST.
func Parse(src string) (*AST, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast := &AST{}
	for p.cur().kind != tokEOF {
		decl, err := p.stateDecl()
		if err != nil {
			return nil, err
		}
		ast.States = append(ast.States, decl)
	}
	if len(ast.States) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "empty specification"}
	}
	return ast, nil
}

func (p *parser) stateDecl() (StateDecl, error) {
	var d StateDecl
	d.Line = p.cur().line
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return d, p.errf(t, "expected 'state' declaration")
		}
		switch t.text {
		case "start":
			if d.IsStart {
				return d, p.errf(t, "duplicate 'start' qualifier")
			}
			d.IsStart = true
			p.bump()
		case "accept":
			if d.IsAccept {
				return d, p.errf(t, "duplicate 'accept' qualifier")
			}
			d.IsAccept = true
			p.bump()
		case "state":
			p.bump()
			name, err := p.expectIdent("state name")
			if err != nil {
				return d, err
			}
			d.Name = name.text
			goto body
		default:
			return d, p.errf(t, "expected 'start', 'accept' or 'state', found %q", t.text)
		}
	}
body:
	// Optional ':' arms.
	if p.cur().kind == tokColon {
		p.bump()
		for p.cur().kind == tokBar {
			arm, err := p.arm()
			if err != nil {
				return d, err
			}
			d.Arms = append(d.Arms, arm)
		}
		if len(d.Arms) == 0 {
			return d, p.errf(p.cur(), "expected at least one '|' arm after ':'")
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return d, err
	}
	return d, nil
}

func (p *parser) arm() (Arm, error) {
	var a Arm
	bar, err := p.expect(tokBar)
	if err != nil {
		return a, err
	}
	a.Line = bar.line
	sym, err := p.expectIdent("symbol name")
	if err != nil {
		return a, err
	}
	a.Symbol = sym.text
	if p.cur().kind == tokLParen {
		p.bump()
		param, err := p.expectIdent("parameter variable")
		if err != nil {
			return a, err
		}
		a.Param = param.text
		if _, err := p.expect(tokRParen); err != nil {
			return a, err
		}
	}
	if _, err := p.expect(tokArrow); err != nil {
		return a, err
	}
	tgt, err := p.expectIdent("target state")
	if err != nil {
		return a, err
	}
	a.Target = tgt.text
	return a, nil
}
