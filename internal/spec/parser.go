package spec

import (
	"fmt"
	"strconv"
)

// AST types.

// CounterOp is one counter update attached to an arm, e.g. `c += 1`. The
// shorthand forms `[+1]` / `[-1]` leave Counter empty and are resolved to
// the specification's sole counter during compilation. A wildcard update
// `c += *` / `c -= *` (for non-literal program arguments) sets Wild and
// stores only the sign of the change in Delta (+1 or -1); its magnitude
// is unknown, so the tracker saturates into a may-state.
type CounterOp struct {
	Counter string
	Delta   int
	Wild    bool
	Line    int
}

// Arm is one transition clause `| sym -> Target`, `| sym(x) -> Target`,
// or with counter updates `| sym(x) [c += 1] -> Target`.
type Arm struct {
	Symbol string
	Param  string // parameter variable, "" if non-parametric
	Ops    []CounterOp
	Target string
	Line   int
}

// StateDecl is one `state` declaration.
type StateDecl struct {
	Name     string
	IsStart  bool
	IsAccept bool
	Arms     []Arm
	Line     int
}

// CounterDecl is one `counter c bound k;` declaration.
type CounterDecl struct {
	Name  string
	Bound int
	Line  int
}

// AssertDecl is one `assert c <= n;` / `assert c >= 0;` /
// `assert c == 0 at exit;` declaration, or the relational form
// `assert a - b <= n;` (CounterB non-empty) constraining the difference
// of a declared counter pair.
type AssertDecl struct {
	Counter  string
	CounterB string // second counter of `assert a - b ...`, "" otherwise
	Cmp      string // "<=", ">=" or "=="
	Value    int
	AtExit   bool
	Line     int
}

// RelateDecl is one `relate a - b in [lo, hi];` declaration: the
// difference a−b is tracked jointly through a saturating zone domain
// {lo..hi exact, <lo sticky, >hi sticky, fail absorbing}.
type RelateDecl struct {
	A, B   string
	Lo, Hi int
	Line   int
}

// AST is a parsed specification.
type AST struct {
	States    []StateDecl
	Counters  []CounterDecl
	Relations []RelateDecl
	Asserts   []AssertDecl
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %s %q", k, t.kind, t.text)
	}
	return p.bump(), nil
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected %s, found %s %q", what, t.kind, t.text)
	}
	return p.bump(), nil
}

// Parse parses a specification source into an AST.
func Parse(src string) (*AST, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast := &AST{}
	for p.cur().kind != tokEOF {
		switch t := p.cur(); {
		case t.kind == tokIdent && t.text == "counter":
			decl, err := p.counterDecl()
			if err != nil {
				return nil, err
			}
			ast.Counters = append(ast.Counters, decl)
		case t.kind == tokIdent && t.text == "relate":
			decl, err := p.relateDecl()
			if err != nil {
				return nil, err
			}
			ast.Relations = append(ast.Relations, decl)
		case t.kind == tokIdent && t.text == "assert":
			decl, err := p.assertDecl()
			if err != nil {
				return nil, err
			}
			ast.Asserts = append(ast.Asserts, decl)
		default:
			decl, err := p.stateDecl()
			if err != nil {
				return nil, err
			}
			ast.States = append(ast.States, decl)
		}
	}
	if len(ast.States) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "empty specification"}
	}
	return ast, nil
}

func (p *parser) expectNumber(what string) (int, token, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, t, p.errf(t, "expected %s, found %s %q", what, t.kind, t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, t, p.errf(t, "invalid number %q", t.text)
	}
	return n, p.bump(), nil
}

// counterDecl parses `counter <name> bound <k> ;`.
func (p *parser) counterDecl() (CounterDecl, error) {
	var d CounterDecl
	d.Line = p.cur().line
	p.bump() // "counter"
	name, err := p.expectIdent("counter name")
	if err != nil {
		return d, err
	}
	d.Name = name.text
	kw := p.cur()
	if kw.kind != tokIdent || kw.text != "bound" {
		return d, p.errf(kw, "expected 'bound', found %s %q", kw.kind, kw.text)
	}
	p.bump()
	d.Bound, _, err = p.expectNumber("counter bound")
	if err != nil {
		return d, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return d, err
	}
	return d, nil
}

// relateDecl parses `relate <a> - <b> in [ <lo> , <hi> ] ;`.
func (p *parser) relateDecl() (RelateDecl, error) {
	var d RelateDecl
	d.Line = p.cur().line
	p.bump() // "relate"
	a, err := p.expectIdent("counter name")
	if err != nil {
		return d, err
	}
	d.A = a.text
	if _, err := p.expect(tokMinus); err != nil {
		return d, err
	}
	b, err := p.expectIdent("counter name")
	if err != nil {
		return d, err
	}
	d.B = b.text
	kw := p.cur()
	if kw.kind != tokIdent || kw.text != "in" {
		return d, p.errf(kw, "expected 'in', found %s %q", kw.kind, kw.text)
	}
	p.bump()
	if _, err := p.expect(tokLBracket); err != nil {
		return d, err
	}
	d.Lo, _, err = p.expectNumber("band lower bound")
	if err != nil {
		return d, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return d, err
	}
	d.Hi, _, err = p.expectNumber("band upper bound")
	if err != nil {
		return d, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return d, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return d, err
	}
	return d, nil
}

// assertDecl parses `assert <counter> (<=|>=|==) <n> [at exit] ;` or the
// relational form `assert <a> - <b> (<=|>=|==) <n> [at exit] ;`.
func (p *parser) assertDecl() (AssertDecl, error) {
	var d AssertDecl
	d.Line = p.cur().line
	p.bump() // "assert"
	name, err := p.expectIdent("counter name")
	if err != nil {
		return d, err
	}
	d.Counter = name.text
	if p.cur().kind == tokMinus {
		p.bump()
		b, err := p.expectIdent("counter name")
		if err != nil {
			return d, err
		}
		d.CounterB = b.text
	}
	switch t := p.cur(); t.kind {
	case tokLE, tokGE, tokEqEq:
		d.Cmp = t.text
		p.bump()
	default:
		return d, p.errf(t, "expected '<=', '>=' or '==', found %s %q", t.kind, t.text)
	}
	d.Value, _, err = p.expectNumber("comparison value")
	if err != nil {
		return d, err
	}
	if t := p.cur(); t.kind == tokIdent && t.text == "at" {
		p.bump()
		ex := p.cur()
		if ex.kind != tokIdent || ex.text != "exit" {
			return d, p.errf(ex, "expected 'exit' after 'at', found %s %q", ex.kind, ex.text)
		}
		p.bump()
		d.AtExit = true
	}
	if _, err := p.expect(tokSemi); err != nil {
		return d, err
	}
	return d, nil
}

func (p *parser) stateDecl() (StateDecl, error) {
	var d StateDecl
	d.Line = p.cur().line
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return d, p.errf(t, "expected 'state' declaration")
		}
		switch t.text {
		case "start":
			if d.IsStart {
				return d, p.errf(t, "duplicate 'start' qualifier")
			}
			d.IsStart = true
			p.bump()
		case "accept":
			if d.IsAccept {
				return d, p.errf(t, "duplicate 'accept' qualifier")
			}
			d.IsAccept = true
			p.bump()
		case "state":
			p.bump()
			name, err := p.expectIdent("state name")
			if err != nil {
				return d, err
			}
			d.Name = name.text
			goto body
		default:
			return d, p.errf(t, "expected 'start', 'accept' or 'state', found %q", t.text)
		}
	}
body:
	// Optional ':' arms.
	if p.cur().kind == tokColon {
		p.bump()
		for p.cur().kind == tokBar {
			arm, err := p.arm()
			if err != nil {
				return d, err
			}
			d.Arms = append(d.Arms, arm)
		}
		if len(d.Arms) == 0 {
			return d, p.errf(p.cur(), "expected at least one '|' arm after ':'")
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return d, err
	}
	return d, nil
}

func (p *parser) arm() (Arm, error) {
	var a Arm
	bar, err := p.expect(tokBar)
	if err != nil {
		return a, err
	}
	a.Line = bar.line
	sym, err := p.expectIdent("symbol name")
	if err != nil {
		return a, err
	}
	a.Symbol = sym.text
	if p.cur().kind == tokLParen {
		p.bump()
		param, err := p.expectIdent("parameter variable")
		if err != nil {
			return a, err
		}
		a.Param = param.text
		if _, err := p.expect(tokRParen); err != nil {
			return a, err
		}
	}
	if p.cur().kind == tokLBracket {
		p.bump()
		for {
			op, err := p.counterOp()
			if err != nil {
				return a, err
			}
			a.Ops = append(a.Ops, op)
			if p.cur().kind != tokComma {
				break
			}
			p.bump()
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return a, err
		}
	}
	if _, err := p.expect(tokArrow); err != nil {
		return a, err
	}
	tgt, err := p.expectIdent("target state")
	if err != nil {
		return a, err
	}
	a.Target = tgt.text
	return a, nil
}

// counterOp parses one bracketed counter update: either the shorthand
// `+1` / `-1` (resolved to the sole counter later) or `c += 1` / `c -= 1`.
func (p *parser) counterOp() (CounterOp, error) {
	var op CounterOp
	t := p.cur()
	op.Line = t.line
	switch t.kind {
	case tokNumber:
		n, _, err := p.expectNumber("counter delta")
		if err != nil {
			return op, err
		}
		op.Delta = n
		return op, nil
	case tokIdent:
		op.Counter = p.bump().text
		neg := false
		switch t := p.cur(); t.kind {
		case tokPlusEq:
			p.bump()
		case tokMinusEq:
			neg = true
			p.bump()
		default:
			return op, p.errf(t, "expected '+=' or '-=', found %s %q", t.kind, t.text)
		}
		if p.cur().kind == tokStar {
			p.bump()
			op.Wild = true
			op.Delta = 1
			if neg {
				op.Delta = -1
			}
			return op, nil
		}
		n, nt, err := p.expectNumber("counter delta")
		if err != nil {
			return op, err
		}
		if n < 0 {
			return op, p.errf(nt, "counter delta after '+=' or '-=' must be non-negative")
		}
		if neg {
			n = -n
		}
		op.Delta = n
		return op, nil
	default:
		return op, p.errf(t, "expected counter update, found %s %q", t.kind, t.text)
	}
}
