package spec

import (
	"strings"
	"testing"
)

const privSrc = `
start state Unpriv :
    | seteuid_zero -> Priv;
state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;
accept state Error;
`

const chrootSrc = `
# chroot must be followed by chdir before anything else filesystem-y;
# here simplified: chroot followed by execl without chdir is an error.
start state Clean :
    | chroot -> Rooted;
state Rooted :
    | chdir -> Clean
    | execl -> Error;
accept state Error;
`

func TestUnionCombinesAlphabets(t *testing.T) {
	a := MustCompile(privSrc)
	b := MustCompile(chrootSrc)
	u, err := Union(Options{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Union alphabet: seteuid_zero, seteuid_nonzero, execl, chroot, chdir.
	if got := u.Machine.Alpha.Size(); got != 5 {
		t.Fatalf("alphabet size = %d, want 5", got)
	}
	// A violation of either property accepts.
	if !u.Machine.AcceptsNames("seteuid_zero", "execl") {
		t.Error("privilege violation should accept in the union")
	}
	if !u.Machine.AcceptsNames("chroot", "execl") {
		t.Error("chroot violation should accept in the union")
	}
	// Foreign symbols stutter: chroot does not disturb the privilege
	// machine.
	if !u.Machine.AcceptsNames("seteuid_zero", "chroot", "chdir", "execl") {
		t.Error("privilege state must persist through chroot/chdir")
	}
	// Safe traces stay safe.
	if u.Machine.AcceptsNames("seteuid_zero", "seteuid_nonzero", "chroot", "chdir", "execl") {
		t.Error("jointly safe trace should not accept")
	}
	if u.Mon.Size() == 0 {
		t.Error("monoid not built")
	}
}

func TestIntersectRequiresBoth(t *testing.T) {
	a := MustCompile(privSrc)
	b := MustCompile(chrootSrc)
	i, err := Intersect(Options{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Violating only one property does not accept.
	if i.Machine.AcceptsNames("seteuid_zero", "execl") {
		t.Error("single violation should not accept the intersection")
	}
	// One execl can violate both at once (both machines step on it).
	if !i.Machine.AcceptsNames("seteuid_zero", "chroot", "execl") {
		t.Error("the shared execl violates both simultaneously")
	}
}

func TestCombineParamConsistency(t *testing.T) {
	a := MustCompile(`
start state S : | open(x) -> T;
accept state T;
`)
	b := MustCompile(`
start state S : | open(y) -> T;
accept state T;
`)
	if _, err := Union(Options{}, a, b); err == nil || !strings.Contains(err.Error(), "inconsistent parameters") {
		t.Errorf("err = %v, want inconsistent parameters", err)
	}
	c := MustCompile(`
start state S : | close(x) -> T;
accept state T;
`)
	u, err := Union(Options{}, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if u.ParamOf["open"] != "x" || u.ParamOf["close"] != "x" {
		t.Errorf("ParamOf = %v", u.ParamOf)
	}
	if !u.IsParametric() {
		t.Error("union of parametric properties is parametric")
	}
}

func TestCombineEmpty(t *testing.T) {
	if _, err := Union(Options{}); err == nil {
		t.Error("empty union should error")
	}
}

func TestUnionSingle(t *testing.T) {
	a := MustCompile(privSrc)
	u, err := Union(Options{}, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]string{
		{"seteuid_zero", "execl"},
		{"seteuid_zero", "seteuid_nonzero", "execl"},
		{"execl"},
	} {
		if a.Machine.AcceptsNames(w...) != u.Machine.AcceptsNames(w...) {
			t.Errorf("single union changed language on %v", w)
		}
	}
}
