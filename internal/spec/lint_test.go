package spec

import (
	"strings"
	"testing"
)

// lintCodes collects the codes of a source's findings.
func lintCodes(t *testing.T, src string) []string {
	t.Helper()
	fs, err := Lint(src, Options{})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	var codes []string
	for _, f := range fs {
		codes = append(codes, f.Code)
	}
	return codes
}

func wantCode(t *testing.T, src, code, msgFrag string) {
	t.Helper()
	fs, err := Lint(src, Options{})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, f := range fs {
		if f.Code == code && strings.Contains(f.Msg, msgFrag) {
			if f.Line <= 0 {
				t.Errorf("finding [%s] has no line: %s", code, f)
			}
			return
		}
	}
	t.Errorf("no [%s] finding containing %q; got %v", code, msgFrag, fs)
}

func TestLintCleanSpecs(t *testing.T) {
	clean := []string{
		// Plain regular property.
		`start state A : | open -> B; state B : | close -> E; accept state E;`,
		// Counter spec with both assert directions exercised.
		`counter c bound 3;
start state S : | up [c += 1] -> S | down [c -= 1] -> S;
assert c >= 0;
assert c == 0 at exit;`,
		// Relational spec: band fully spanned, fail reachable.
		`counter a bound 4;
counter b bound 4;
relate a - b in [0, 2];
start state S : | up [a += 1] -> S | down [b += 1] -> S;
assert a - b >= 0;
assert a - b == 0 at exit;`,
	}
	for i, src := range clean {
		if codes := lintCodes(t, src); len(codes) != 0 {
			t.Errorf("spec %d: want clean, got %v", i, codes)
		}
	}
}

func TestLintDeadState(t *testing.T) {
	wantCode(t, `start state A : | go -> B; accept state B; state Dead : | go -> A;`,
		"dead-state", `state "Dead" is unreachable`)
}

func TestLintNoAcceptReachable(t *testing.T) {
	// The accept state exists but no arm leads to it.
	wantCode(t, `start state A : | go -> A; accept state E;`,
		"no-accept-reachable", "can never report")
}

func TestLintVacuousCounterAsserts(t *testing.T) {
	// No decrement anywhere: the non-negativity assert can never fire.
	wantCode(t, `counter c bound 3;
start state S : | up [c += 1] -> S;
assert c >= 0;
assert c == 0 at exit;`,
		"vacuous-assert", `"c" >= 0 can never fire`)

	// Exit assert on a valuation no reachable path produces: the counter
	// only decrements from 0, which the inline assert fails first, so the
	// only violating valuations of `== 0` (1..k-1, sat) are unreachable.
	wantCode(t, `counter c bound 3;
start state S : | down [c -= 1] -> S;
assert c >= 0;
assert c == 0 at exit;`,
		"vacuous-assert", "exit assert")
}

func TestLintShadowedCounterAssert(t *testing.T) {
	wantCode(t, `counter c bound 5;
start state S : | up [c += 1] -> S;
assert c <= 2;
assert c <= 3;`,
		"shadowed-assert", `"c" <= 3 is shadowed by the tighter <= 2`)
}

func TestLintLooseBand(t *testing.T) {
	// The difference only ever rises: [-2, 2] is loose below.
	wantCode(t, `counter a bound 4;
counter b bound 4;
relate a - b in [-2, 2];
start state S : | up [a += 1] -> S;
assert a - b == 0 at exit;`,
		"loose-band", "span only [0, 2]")

	// Deltas cancel: the difference never moves, so it spans the whole
	// (zero-width) band yet can never leave it — the relation constrains
	// nothing beyond its exit asserts.
	wantCode(t, `counter a bound 4;
counter b bound 4;
relate a - b in [0, 0];
start state S : | both [a += 1, b += 1] -> S;
assert a - b == 0 at exit;`,
		"loose-band", "never leaves the band")
}

func TestLintShadowedRelationAssert(t *testing.T) {
	wantCode(t, `counter a bound 6;
counter b bound 6;
relate a - b in [0, 4];
start state S : | up [a += 1] -> S | down [b += 1] -> S;
assert a - b <= 2;
assert a - b <= 3;`,
		"shadowed-assert", "a - b <= 3 is shadowed by the tighter <= 2")
}

func TestLintVacuousRelationAssert(t *testing.T) {
	// The difference only rises; the >= assert can never fire.
	wantCode(t, `counter a bound 4;
counter b bound 4;
relate a - b in [0, 2];
start state S : | up [a += 1] -> S;
assert a - b >= 0;
assert a - b <= 2;`,
		"vacuous-assert", "a - b >= 0 can never fire")
}

func TestLintInconsistentDeltaUnreachable(t *testing.T) {
	// The unreachable state's arm for "up" disagrees with the reachable
	// delta; compilation tolerates it (the arm is dead), lint flags it.
	wantCode(t, `counter c bound 3;
start state S : | up [c += 1] -> S | down [c -= 1] -> S;
state Dead : | up [c += 2] -> Dead;
assert c >= 0;`,
		"inconsistent-delta", `unreachable arm for "up"`)
}

func TestLintFindingsSortedAndStable(t *testing.T) {
	src := `counter c bound 3;
start state S : | up [c += 1] -> S;
state Dead : | up [c += 2] -> Dead;
assert c >= 0;
assert c == 0 at exit;`
	a, err := Lint(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lint(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) < 2 {
		t.Fatalf("want >= 2 findings to check ordering, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("finding %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Line > a[i].Line {
			t.Errorf("findings not sorted by line: %v before %v", a[i-1], a[i])
		}
	}
}

func TestLintStringFormat(t *testing.T) {
	f := LintFinding{Code: "dead-state", Line: 4, Msg: "state \"X\" is unreachable"}
	if got := f.String(); got != `spec:4: [dead-state] state "X" is unreachable` {
		t.Errorf("String() = %q", got)
	}
}
