// Package spec implements the annotation specification language of §8 of
// the paper: a small ML-pattern-style DSL describing the finite state
// automaton for a regular reachability property. For example, the process
// privilege automaton of Figure 3 is written
//
//	start state Unpriv :
//	    | seteuid_zero -> Priv;
//
//	state Priv :
//	    | seteuid_nonzero -> Unpriv
//	    | execl -> Error;
//
//	accept state Error;
//
// Symbols may be parametric (§6.4): `open(x) -> Opened` declares the
// symbol `open` with parameter variable `x`, to be instantiated with
// program labels (e.g. file descriptors) at analysis time.
//
// A specification is compiled (Compile) to a completed DFA — symbols not
// mentioned in a state self-loop, matching the stuttering semantics of
// security automata — and the DFA's transition monoid, yielding a Property
// ready to hand to the constraint solver.
package spec

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokColon
	tokSemi
	tokBar
	tokArrow
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokNumber
	tokPlusEq
	tokMinusEq
	tokMinus
	tokStar
	tokLE
	tokGE
	tokEqEq
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokBar:
		return "'|'"
	case tokArrow:
		return "'->'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokNumber:
		return "number"
	case tokPlusEq:
		return "'+='"
	case tokMinusEq:
		return "'-='"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokLE:
		return "'<='"
	case tokGE:
		return "'>='"
	case tokEqEq:
		return "'=='"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("spec:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				for l.pos < len(l.src) && l.peek() != '\n' {
					l.advance()
				}
			} else {
				return l.errf("unexpected '/'")
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case isIdentStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return token{tokIdent, string(l.src[start:l.pos]), line, col}, nil
	case r == ':':
		l.advance()
		return token{tokColon, ":", line, col}, nil
	case r == ';':
		l.advance()
		return token{tokSemi, ";", line, col}, nil
	case r == '|':
		l.advance()
		return token{tokBar, "|", line, col}, nil
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == '[':
		l.advance()
		return token{tokLBracket, "[", line, col}, nil
	case r == ']':
		l.advance()
		return token{tokRBracket, "]", line, col}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '*':
		l.advance()
		return token{tokStar, "*", line, col}, nil
	case unicode.IsDigit(r):
		return l.number(line, col, false), nil
	case r == '-':
		l.advance()
		switch {
		case l.peek() == '>':
			l.advance()
			return token{tokArrow, "->", line, col}, nil
		case l.peek() == '=':
			l.advance()
			return token{tokMinusEq, "-=", line, col}, nil
		case unicode.IsDigit(l.peek()):
			return l.number(line, col, true), nil
		}
		return token{tokMinus, "-", line, col}, nil
	case r == '+':
		l.advance()
		switch {
		case l.peek() == '=':
			l.advance()
			return token{tokPlusEq, "+=", line, col}, nil
		case unicode.IsDigit(l.peek()):
			return l.number(line, col, false), nil
		}
		return token{}, l.errf("expected '+=' or a number after '+'")
	case r == '<':
		l.advance()
		if l.peek() != '=' {
			return token{}, l.errf("expected '<=' after '<'")
		}
		l.advance()
		return token{tokLE, "<=", line, col}, nil
	case r == '>':
		l.advance()
		if l.peek() != '=' {
			return token{}, l.errf("expected '>=' after '>'")
		}
		l.advance()
		return token{tokGE, ">=", line, col}, nil
	case r == '=':
		l.advance()
		if l.peek() != '=' {
			return token{}, l.errf("expected '==' after '='")
		}
		l.advance()
		return token{tokEqEq, "==", line, col}, nil
	}
	return token{}, l.errf("unexpected character %q", string(r))
}

// number lexes a run of digits (the leading sign, if any, was already
// consumed by next).
func (l *lexer) number(line, col int, neg bool) token {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	text := string(l.src[start:l.pos])
	if neg {
		text = "-" + text
	}
	return token{tokNumber, text, line, col}
}

func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
