package spec

import "testing"

// FuzzCompile checks that arbitrary inputs never panic the compiler, and
// that compiled machines validate.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		privilegeSrc,
		fileSrc,
		"accept start state A : | g -> A;",
		"start state A : | x -> B; accept state B;",
		"state;;",
		"start accept state Z : | a(b) -> Z;",
		// Bounded-counter specifications: a valid semabalance shape, then
		// malformed bracket/assert fragments the parser must reject cleanly.
		semCounterSrc,
		"counter c bound 2;\nstart state S : | up(x) [+1] -> S | dn(x) [-1] -> S;\nassert c <= 1;",
		"counter c bound 2; counter d bound 3;\nstart state S : | a [c += 1, d += 2] -> S;\nassert c <= 1; assert d == 0 at exit;",
		"counter c bound 0; assert c <= 9;",
		"start state S : | a [c -> S;",
		"assert <= at exit;;",
		"counter bound bound bound;",
		"start state S : | a [c += -] -> S;",
		// Relational counters and wildcard updates: the valid semabalance v2
		// shape, a wildcard spec, then malformed relate/assert fragments.
		relSemSrc,
		"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\nstart state S : | up(x) [a += 1] -> S | dn(x) [b += 1] -> S;\nassert a - b <= 2;",
		"counter c bound 3;\nstart state S : | add(x) [c += *] -> S | take(x) [c -= *] -> S;\nassert c >= 0;",
		"relate a - b in [0, 2];",
		"relate a b in [0, 2];",
		"relate a - b in [2, 0];",
		"relate a - b in [0, 2;",
		"relate a - b in [*, *];",
		"assert a - b <= ;",
		"assert a - <= 1;",
		"start state S : | m(x) [c += *, c += 1] -> S;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src, Options{MonoidLimit: 512})
		if err != nil {
			return
		}
		if err := p.Machine.Validate(); err != nil {
			t.Fatalf("compiled machine invalid: %v", err)
		}
	})
}

// FuzzRegexProperty mirrors FuzzCompile for the regex front end.
func FuzzRegexProperty(f *testing.F) {
	for _, s := range []string{"a", "(a | b)* a", "g (k g)*", "ε | x+", "((", "a |"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := FromRegex(expr, Options{MonoidLimit: 512})
		if err != nil {
			return
		}
		if err := p.Machine.Validate(); err != nil {
			t.Fatalf("regex machine invalid: %v", err)
		}
	})
}
