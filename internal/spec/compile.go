package spec

import (
	"fmt"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
)

// Property is a compiled specification: the automaton, its transition
// monoid (the representative functions with their composition table), and
// the parameter variable of each parametric symbol.
type Property struct {
	AST     *AST
	Machine *dfa.DFA       // total (stuttering completion of the declared machine)
	Mon     *monoid.Monoid // F_M^≡ with composition table
	// ParamOf maps symbol name to its parameter variable, "" if the
	// symbol is non-parametric.
	ParamOf map[string]string
	// StateOf maps declared state names to machine states (valid only
	// when the machine was not minimized away from the declaration and
	// has no counters; counter expansion replaces states with products).
	StateOf map[string]dfa.State
	// Counters lists the individually tracked bounded counters (nil for
	// plain regular specifications and for counters that appear only in
	// relations).
	Counters []CounterInfo
	// Relations lists the declared counter-pair relations.
	Relations []RelationInfo
	// Stats reports counter-expansion cost (zero for regular specs).
	Stats CounterStats
	// mayStates marks machine states resting on saturated tracker
	// valuations; see MayState.
	mayStates []bool
}

// Options configures Compile.
type Options struct {
	// MonoidLimit caps |F_M^≡|; <= 0 means monoid.DefaultLimit.
	MonoidLimit int
	// Minimize replaces the declared machine with its minimal equivalent
	// before computing the monoid. State names are lost. The theory of
	// the paper assumes a minimized machine; our hand-written properties
	// are already minimal (see IsMinimal), so the default keeps the
	// declared machine and its state names.
	Minimize bool
}

// SemanticError reports a problem found during compilation.
type SemanticError struct {
	Line int
	Msg  string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("spec:%d: %s", e.Line, e.Msg)
}

// Compile parses and compiles a specification source.
func Compile(src string, opts Options) (*Property, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(ast, opts)
}

// MustCompile is Compile that panics on error; for tests and fixed
// built-in properties.
func MustCompile(src string) *Property {
	p, err := Compile(src, Options{})
	if err != nil {
		panic(err)
	}
	return p
}

// declaredMachine is the declared (pre-expansion) automaton of a
// specification, shared between compilation and speclint.
type declaredMachine struct {
	dfa       *dfa.DFA // declared machine, not yet stuttering-completed
	stateOf   map[string]dfa.State
	paramOf   map[string]string
	anyAccept bool
}

// buildDeclaredMachine constructs the declared automaton of ast: states,
// arms and the shared alphabet, before stuttering completion and counter
// expansion.
func buildDeclaredMachine(ast *AST) (*declaredMachine, error) {
	stateOf := make(map[string]dfa.State)
	var names []string
	for _, d := range ast.States {
		if _, dup := stateOf[d.Name]; dup {
			return nil, &SemanticError{d.Line, fmt.Sprintf("duplicate state %q", d.Name)}
		}
		stateOf[d.Name] = dfa.State(len(names))
		names = append(names, d.Name)
	}

	start := dfa.None
	anyAccept := false
	paramOf := make(map[string]string)
	alpha := &dfa.Alphabet{}
	// First pass: collect alphabet and check parameter consistency.
	for _, d := range ast.States {
		if d.IsStart {
			if start != dfa.None {
				return nil, &SemanticError{d.Line, fmt.Sprintf("second start state %q", d.Name)}
			}
			start = stateOf[d.Name]
		}
		if d.IsAccept {
			anyAccept = true
		}
		for _, a := range d.Arms {
			if prev, seen := paramOf[a.Symbol]; seen {
				if prev != a.Param {
					return nil, &SemanticError{a.Line,
						fmt.Sprintf("symbol %q used with inconsistent parameters (%q vs %q)", a.Symbol, prev, a.Param)}
				}
			} else {
				paramOf[a.Symbol] = a.Param
				alpha.Intern(a.Symbol)
			}
			if _, ok := stateOf[a.Target]; !ok {
				return nil, &SemanticError{a.Line, fmt.Sprintf("undeclared target state %q", a.Target)}
			}
		}
	}
	if start == dfa.None {
		return nil, &SemanticError{ast.States[0].Line, "no start state declared"}
	}

	d := dfa.NewDFA(alpha, len(names), start)
	d.StateName = names
	for _, decl := range ast.States {
		from := stateOf[decl.Name]
		if decl.IsAccept {
			d.SetAccept(from)
		}
		seen := make(map[string]bool)
		for _, a := range decl.Arms {
			if seen[a.Symbol] {
				return nil, &SemanticError{a.Line,
					fmt.Sprintf("state %q has two transitions on %q", decl.Name, a.Symbol)}
			}
			seen[a.Symbol] = true
			sym, _ := alpha.Lookup(a.Symbol)
			d.SetTransition(from, sym, stateOf[a.Target])
		}
	}
	return &declaredMachine{dfa: d, stateOf: stateOf, paramOf: paramOf, anyAccept: anyAccept}, nil
}

// CompileAST compiles a parsed specification.
func CompileAST(ast *AST, opts Options) (*Property, error) {
	cs, err := validateCounters(ast)
	if err != nil {
		return nil, err
	}
	dm, err := buildDeclaredMachine(ast)
	if err != nil {
		return nil, err
	}
	// Counter asserts supply acceptance, so a counter spec need not
	// declare an accept state.
	if !dm.anyAccept && cs == nil {
		return nil, &SemanticError{ast.States[0].Line, "no accept state declared"}
	}
	stateOf, paramOf := dm.stateOf, dm.paramOf
	machine := dm.dfa.CompleteSelfLoop()
	exposedStates := stateOf
	ex, err := expandCounters(machine, cs)
	if err != nil {
		return nil, err
	}
	machine = ex.machine
	if ex.counters != nil || ex.relations != nil {
		exposedStates = nil
	}
	if opts.Minimize {
		machine = dfa.Minimize(machine)
		exposedStates = nil
		ex.may = nil
	}
	mon, err := monoid.Build(machine, opts.MonoidLimit)
	if err != nil {
		return nil, err
	}
	return &Property{
		AST:       ast,
		Machine:   machine,
		Mon:       mon,
		ParamOf:   paramOf,
		StateOf:   exposedStates,
		Counters:  ex.counters,
		Relations: ex.relations,
		Stats:     ex.stats,
		mayStates: ex.may,
	}, nil
}

// IsMinimal reports whether the compiled (stuttering-completed) machine is
// already minimal.
func (p *Property) IsMinimal() bool {
	return dfa.Minimize(p.Machine).NumStates == p.Machine.NumStates
}

// IsParametric reports whether any symbol carries a parameter.
func (p *Property) IsParametric() bool {
	for _, v := range p.ParamOf {
		if v != "" {
			return true
		}
	}
	return false
}

// Symbol looks up a symbol by name.
func (p *Property) Symbol(name string) (dfa.Symbol, bool) {
	return p.Machine.Alpha.Lookup(name)
}

// FromRegex compiles a regular expression over symbol names (see
// dfa.CompileRegex for the syntax) into a Property — an alternative to
// the state-machine DSL for annotation languages that are easier to give
// as expressions, e.g. "g (k g)*".
func FromRegex(expr string, opts Options) (*Property, error) {
	m, err := dfa.CompileRegex(expr, nil)
	if err != nil {
		return nil, err
	}
	mon, err := monoid.Build(m, opts.MonoidLimit)
	if err != nil {
		return nil, err
	}
	return &Property{
		Machine: m,
		Mon:     mon,
		ParamOf: map[string]string{},
	}, nil
}
