package spec

import (
	"fmt"
	"sort"

	"rasc/internal/dfa"
)

// This file implements bounded-counter annotations: a counter automaton
// whose counters saturate at a declared bound k, so its transition
// structure stays a finite DFA and the induced monoid F_M^≡ (and with it
// Then/Apply and the whole solver) works unchanged.
//
// A specification may declare
//
//	counter c bound 4;
//
// attach updates to arms (`| acquire(x) [c += 1] -> S`, the shorthand
// `[+1]` when there is exactly one counter, or the wildcard `[c += *]`
// for non-literal program arguments), and assert
//
//	assert c <= 3;          // inline: violating transitions accept
//	assert c >= 0;          // inline: only 0 is supported
//	assert c == 0 at exit;  // exit: violating valuations accept
//
// Each individually asserted counter compiles to a small tracker DFA over
// the abstract domain
//
//	{0, 1, …, k-1} ∪ {≥k} ∪ {<0} ∪ {fail}
//
// where ≥k is the saturated value (any further information is lost — a
// finding that depends on a saturated counter is a MAY verdict), <0 is a
// sticky "went below zero" value, and fail is the absorbing accepting
// state entered when an inline assert is violated. The trackers are folded
// into the declared machine with the synchronous product (dfa.Union), so
// the final accept set is "base accepts OR any counter assert fires", and
// product state names like "S·c=2" carry the counter valuation into
// witnesses and -explain provenance.
//
// Counter pairs may additionally (or instead) be related — see
// relation.go for the joint difference trackers behind
//
//	relate a - b in [-2, 2];
//	assert a - b <= 1;
//
// A counter that appears only in relations gets no individual tracker:
// its absolute value may grow without bound while the differences it
// participates in stay finitely tracked.
//
// The product factorization requires that a counter update depend only on
// the symbol, not the source state: every arm mentioning a symbol must
// carry the same counter deltas (unmentioned symbols stutter with delta
// 0). Compilation rejects inconsistent deltas between reachable states;
// conflicts confined to states unreachable in the declared machine are
// left to speclint (see lint.go), which reports them as warnings.

// CounterInfo describes one individually tracked counter of a compiled
// Property.
type CounterInfo struct {
	Name  string
	Bound int
}

// RelationInfo describes one declared counter-pair relation of a compiled
// Property: the difference A−B is tracked over the band [Lo, Hi].
type RelationInfo struct {
	A, B   string
	Lo, Hi int
}

// CounterStats reports the cost of counter and relation expansion, for
// obs metrics and regression guards.
type CounterStats struct {
	// ExpandedStates is the state count of the machine after all counter
	// and relation trackers were folded in (0 for counter-free specs).
	ExpandedStates int
	// SaturatingEdges counts individual-tracker transitions that clamp an
	// exact counter value into the saturated ≥k (or sticky <0) state — the
	// places where the abstraction loses information.
	SaturatingEdges int
	// RelationStates is the total state count of all relation trackers
	// before folding.
	RelationStates int
	// RelationSaturatingEdges counts relation-tracker transitions that
	// clamp an exact difference into a sticky out-of-band state.
	RelationSaturatingEdges int
}

// maxCounterBound caps a single counter's bound and a relation band's
// magnitude; beyond this the tracker alone would dwarf any realistic
// property machine.
const maxCounterBound = 64

// maxExpandedStates caps the product of the declared machine with all
// counter and relation trackers.
const maxExpandedStates = 4096

// symDelta is the canonical effect of one symbol on one counter: either a
// literal net delta, or a wildcard change of known sign but unknown
// magnitude (≥ 1).
type symDelta struct {
	n    int  // literal net delta (wild == false)
	wild bool // non-literal magnitude
	sign int  // +1 / -1, meaningful only when wild
}

// counterSpec is the validated form of the counter declarations:
// per-symbol deltas and the assert lists split per counter and relation.
type counterSpec struct {
	decls     []CounterDecl
	relations []*relationSpec
	// deltas[sym][counter] = net delta applied by symbol sym (absent = 0).
	deltas map[string]map[string]symDelta
	// inlineMax[counter] = smallest inline `<= v` bound (-1 if none).
	inlineMax map[string]int
	// inlineNonneg[counter] = an inline `>= 0` assert exists.
	inlineNonneg map[string]bool
	// exit[counter] = exit asserts on that counter.
	exit map[string][]AssertDecl
	// tracked[counter] = the counter has individual asserts and gets its
	// own tracker DFA. Counters that appear only in relations do not.
	tracked map[string]bool
	// wildPlus/wildMinus[counter] = some reachable arm updates the counter
	// with `+= *` / `-= *`.
	wildPlus  map[string]bool
	wildMinus map[string]bool
	// reachable[state] = the declared state is reachable from the start
	// state in the declared transition graph (conflicting deltas on
	// unreachable arms are a lint warning, not a compile error).
	reachable map[string]bool
}

// declaredReachable computes which declared states are reachable from the
// start state through the declared arms. If no (or several) start states
// are declared — errors reported later by CompileAST — every state is
// treated as reachable so delta validation stays conservative.
func declaredReachable(ast *AST) map[string]bool {
	byName := map[string]*StateDecl{}
	start := ""
	starts := 0
	for i := range ast.States {
		d := &ast.States[i]
		if _, dup := byName[d.Name]; !dup {
			byName[d.Name] = d
		}
		if d.IsStart {
			start = d.Name
			starts++
		}
	}
	reach := map[string]bool{}
	if starts != 1 {
		for _, d := range ast.States {
			reach[d.Name] = true
		}
		return reach
	}
	work := []string{start}
	reach[start] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		d := byName[n]
		if d == nil {
			continue
		}
		for _, arm := range d.Arms {
			if !reach[arm.Target] {
				if _, known := byName[arm.Target]; known {
					reach[arm.Target] = true
					work = append(work, arm.Target)
				}
			}
		}
	}
	return reach
}

// validateCounters checks the counter declarations, relations, arm
// updates and asserts of ast, returning the canonical per-symbol deltas.
// It returns (nil, nil) for counter-free specifications.
func validateCounters(ast *AST) (*counterSpec, error) {
	if len(ast.Counters) == 0 {
		if len(ast.Relations) > 0 {
			r := ast.Relations[0]
			return nil, &SemanticError{r.Line, fmt.Sprintf("relation %s - %s declared but no counters are declared", r.A, r.B)}
		}
		if len(ast.Asserts) > 0 {
			a := ast.Asserts[0]
			return nil, &SemanticError{a.Line, fmt.Sprintf("assert references counter %q but no counters are declared", a.Counter)}
		}
		for _, d := range ast.States {
			for _, arm := range d.Arms {
				if len(arm.Ops) > 0 {
					return nil, &SemanticError{arm.Line, fmt.Sprintf("arm for %q updates a counter but no counters are declared", arm.Symbol)}
				}
			}
		}
		return nil, nil
	}

	cs := &counterSpec{
		decls:        ast.Counters,
		deltas:       map[string]map[string]symDelta{},
		inlineMax:    map[string]int{},
		inlineNonneg: map[string]bool{},
		exit:         map[string][]AssertDecl{},
		tracked:      map[string]bool{},
		wildPlus:     map[string]bool{},
		wildMinus:    map[string]bool{},
		reachable:    declaredReachable(ast),
	}
	bounds := map[string]int{}
	for _, c := range ast.Counters {
		if _, dup := bounds[c.Name]; dup {
			return nil, &SemanticError{c.Line, fmt.Sprintf("duplicate counter %q", c.Name)}
		}
		if c.Bound < 1 || c.Bound > maxCounterBound {
			return nil, &SemanticError{c.Line, fmt.Sprintf("counter %q bound %d out of range [1, %d]", c.Name, c.Bound, maxCounterBound)}
		}
		bounds[c.Name] = c.Bound
		cs.inlineMax[c.Name] = -1
	}

	if err := cs.validateRelations(ast, bounds); err != nil {
		return nil, err
	}

	related := map[string]bool{}
	for _, r := range cs.relations {
		related[r.decl.A] = true
		related[r.decl.B] = true
	}

	for _, a := range ast.Asserts {
		if a.CounterB != "" {
			if err := cs.addRelationAssert(a); err != nil {
				return nil, err
			}
			continue
		}
		bound, ok := bounds[a.Counter]
		if !ok {
			return nil, &SemanticError{a.Line, fmt.Sprintf("assert references undeclared counter %q", a.Counter)}
		}
		if a.Value < 0 || a.Value > bound-1 {
			return nil, &SemanticError{a.Line,
				fmt.Sprintf("assert value %d for counter %q out of range [0, %d] (bound %d must exceed the asserted value)", a.Value, a.Counter, bound-1, bound)}
		}
		cs.tracked[a.Counter] = true
		if a.AtExit {
			cs.exit[a.Counter] = append(cs.exit[a.Counter], a)
			continue
		}
		switch a.Cmp {
		case "<=":
			if cur := cs.inlineMax[a.Counter]; cur < 0 || a.Value < cur {
				cs.inlineMax[a.Counter] = a.Value
			}
		case ">=":
			if a.Value != 0 {
				return nil, &SemanticError{a.Line, fmt.Sprintf("inline '>=' assert on %q supports only 0", a.Counter)}
			}
			cs.inlineNonneg[a.Counter] = true
		case "==":
			return nil, &SemanticError{a.Line, "'==' asserts are only supported 'at exit'"}
		}
	}
	for _, r := range cs.relations {
		if len(r.exit) == 0 && !r.hasInlineMax && !r.hasInlineMin {
			return nil, &SemanticError{r.decl.Line, fmt.Sprintf("relation %s - %s is never asserted", r.decl.A, r.decl.B)}
		}
	}
	for _, c := range ast.Counters {
		if !cs.tracked[c.Name] && !related[c.Name] {
			return nil, &SemanticError{c.Line, fmt.Sprintf("counter %q is never asserted or related", c.Name)}
		}
	}

	// Canonicalize arm updates into per-symbol deltas and check that every
	// reachable arm on a symbol agrees (the product factorization needs
	// per-symbol updates).
	soleCounter := ""
	if len(ast.Counters) == 1 {
		soleCounter = ast.Counters[0].Name
	}
	seenArm := map[string]int{} // symbol -> line of first reachable arm
	for _, d := range ast.States {
		for _, arm := range d.Arms {
			net, err := armNet(arm, soleCounter, len(ast.Counters), bounds)
			if err != nil {
				return nil, err
			}
			if !cs.reachable[d.Name] {
				continue
			}
			if prev, seen := cs.deltas[arm.Symbol]; seen {
				if !sameDeltas(prev, net) {
					return nil, &SemanticError{arm.Line,
						fmt.Sprintf("symbol %q carries different counter updates than its arm at line %d (counter updates must be per-symbol)", arm.Symbol, seenArm[arm.Symbol])}
				}
			} else {
				cs.deltas[arm.Symbol] = net
				seenArm[arm.Symbol] = arm.Line
			}
			for name, e := range net {
				if e.wild {
					if e.sign > 0 {
						cs.wildPlus[name] = true
					} else {
						cs.wildMinus[name] = true
					}
				}
			}
		}
	}
	if err := cs.resolveRelationDiffs(); err != nil {
		return nil, err
	}
	return cs, nil
}

// armNet canonicalizes the counter updates of one arm into net per-counter
// deltas, resolving the `[+1]` shorthand against the sole counter and
// rejecting undeclared counters and wildcard/literal mixes.
func armNet(arm Arm, soleCounter string, numCounters int, bounds map[string]int) (map[string]symDelta, error) {
	net := map[string]symDelta{}
	opsOn := map[string]int{}
	for _, op := range arm.Ops {
		name := op.Counter
		if name == "" {
			if soleCounter == "" {
				return nil, &SemanticError{op.Line,
					fmt.Sprintf("shorthand counter update on %q is ambiguous with %d counters; name the counter", arm.Symbol, numCounters)}
			}
			name = soleCounter
		}
		if _, ok := bounds[name]; !ok {
			return nil, &SemanticError{op.Line, fmt.Sprintf("arm for %q updates undeclared counter %q", arm.Symbol, name)}
		}
		opsOn[name]++
		if op.Wild {
			if opsOn[name] > 1 {
				return nil, &SemanticError{op.Line,
					fmt.Sprintf("wildcard update of counter %q cannot be combined with another update of it in the same arm", name)}
			}
			net[name] = symDelta{wild: true, sign: op.Delta}
			continue
		}
		e := net[name]
		if e.wild {
			return nil, &SemanticError{op.Line,
				fmt.Sprintf("wildcard update of counter %q cannot be combined with another update of it in the same arm", name)}
		}
		e.n += op.Delta
		net[name] = e
	}
	for name, e := range net {
		if !e.wild && e.n == 0 {
			delete(net, name)
		}
	}
	return net, nil
}

// stepCause classifies a tracker transition so lint can attribute fail
// edges to the assert that caused them.
type stepCause int

const (
	causeExact      stepCause = iota // lands on an exact value
	causeSat                         // clamps into the saturated / >hi state
	causeNeg                         // clamps into the negative / <lo state
	causeFailMax                     // violates the inline `<=` assert
	causeFailNonneg                  // violates the inline `>=` assert
)

// counterStep computes the successor of exact counter value v (0 ≤ v < k)
// in the individual tracker under delta: the returned state uses the
// tracker layout 0..k-1 exact, k saturated, k+1 negative, k+2 fail.
func counterStep(k, inlineMax int, nonneg bool, delta symDelta, v int) (int, stepCause) {
	sat, neg, fail := k, k+1, k+2
	switch {
	case delta.wild && delta.sign > 0:
		// Unknown increase: it definitely violates an inline maximum the
		// next value cannot stay under; otherwise the exact value is lost
		// upward (a may-state).
		if inlineMax >= 0 && v+1 > inlineMax {
			return fail, causeFailMax
		}
		return sat, causeSat
	case delta.wild:
		// Unknown decrease: from 0 it definitely goes negative; otherwise
		// the exact value is lost, possibly negative.
		if nonneg && v == 0 {
			return fail, causeFailNonneg
		}
		return neg, causeNeg
	}
	switch nv := v + delta.n; {
	case nv < 0:
		if nonneg {
			return fail, causeFailNonneg
		}
		return neg, causeNeg
	case inlineMax >= 0 && nv > inlineMax:
		return fail, causeFailMax
	case nv >= k:
		return sat, causeSat
	default:
		return nv, causeExact
	}
}

func sameDeltas(a, b map[string]symDelta) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// counterTracker builds the tracker DFA for one individually asserted
// counter over the shared spec alphabet. States: 0..k-1 exact, k
// saturated (≥k), k+1 negative (<0), k+2 fail (absorbing, accepting).
func (cs *counterSpec) counterTracker(c CounterDecl, alpha *dfa.Alphabet, stats *CounterStats) *dfa.DFA {
	k := c.Bound
	sat := dfa.State(k)
	neg := dfa.State(k + 1)
	fail := dfa.State(k + 2)
	d := dfa.NewDFA(alpha, k+3, 0)
	names := make([]string, k+3)
	for v := 0; v < k; v++ {
		names[v] = fmt.Sprintf("%s=%d", c.Name, v)
	}
	names[sat] = fmt.Sprintf("%s>=%d", c.Name, k)
	names[neg] = fmt.Sprintf("%s<0", c.Name)
	names[fail] = fmt.Sprintf("%s:fail", c.Name)
	d.StateName = names

	inlineMax := cs.inlineMax[c.Name]
	nonneg := cs.inlineNonneg[c.Name]

	// Accepting valuations: fail always; exact / saturated / negative
	// values iff they violate some exit assert. The saturated value
	// stands for "anything ≥ k", so it may-violates `==` and `<=` exit
	// asserts; the negative value records that the counter once went
	// below zero, which violates `==` and `>=` exit asserts (a precision
	// choice: `<=` is treated as still satisfiable). With wildcard
	// updates in play the sticky values also may-violate inline asserts:
	// a `+= *` lands in ≥k having possibly crossed an inline maximum,
	// and a `-= *` lands in <0 having possibly gone negative.
	d.SetAccept(fail)
	for _, a := range cs.exit[c.Name] {
		for v := 0; v < k; v++ {
			if violatesExact(a, v) {
				d.SetAccept(dfa.State(v))
			}
		}
		switch a.Cmp {
		case "==", "<=":
			d.SetAccept(sat)
		}
		switch a.Cmp {
		case "==", ">=":
			d.SetAccept(neg)
		}
	}
	if cs.wildPlus[c.Name] && inlineMax >= 0 {
		d.SetAccept(sat)
	}
	if cs.wildMinus[c.Name] && nonneg {
		d.SetAccept(neg)
	}

	for i := 0; i < alpha.Size(); i++ {
		sym := dfa.Symbol(i)
		delta := cs.deltas[alpha.Name(sym)][c.Name]
		for v := 0; v < k; v++ {
			nv, cause := counterStep(k, inlineMax, nonneg, delta, v)
			if cause == causeSat || (cause == causeNeg && delta.wild) {
				stats.SaturatingEdges++
			}
			d.SetTransition(dfa.State(v), sym, dfa.State(nv))
		}
		// Saturated, negative and failed values are sticky: once the
		// abstraction has lost (or condemned) the exact value, no update
		// can restore it.
		d.SetTransition(sat, sym, sat)
		d.SetTransition(neg, sym, neg)
		d.SetTransition(fail, sym, fail)
	}
	return d
}

func violatesExact(a AssertDecl, v int) bool {
	switch a.Cmp {
	case "==":
		return v != a.Value
	case "<=":
		return v > a.Value
	case ">=":
		return v < a.Value
	}
	return false
}

// expansion is the result of folding all counter and relation trackers
// into the completed base machine.
type expansion struct {
	machine   *dfa.DFA
	counters  []CounterInfo
	relations []RelationInfo
	stats     CounterStats
	// may[s] = machine state s rests on a saturated / sticky tracker
	// valuation, so an accepting run landing there is a MAY verdict.
	may []bool
}

// expandCounters folds the counter and relation trackers into the
// completed base machine via the synchronous product (accept = OR),
// preserving state names so witnesses read "S·c=2" / "S·a-b=1" and
// tracking which product states rest on saturated valuations.
func expandCounters(base *dfa.DFA, cs *counterSpec) (expansion, error) {
	ex := expansion{machine: base}
	if cs == nil {
		return ex, nil
	}
	ex.may = make([]bool, base.NumStates)
	fold := func(t *dfa.DFA, sticky map[dfa.State]bool, line int, what string) error {
		m2, pairs := dfa.UnionPairs(ex.machine, t)
		may2 := make([]bool, m2.NumStates)
		for s, p := range pairs {
			may2[s] = ex.may[p[0]] || sticky[p[1]]
		}
		ex.machine, ex.may = m2, may2
		if m2.NumStates > maxExpandedStates {
			return &SemanticError{line,
				fmt.Sprintf("counter expansion exceeds %d states at %s; lower the bounds", maxExpandedStates, what)}
		}
		return nil
	}
	for _, c := range cs.decls {
		if !cs.tracked[c.Name] {
			continue
		}
		ex.counters = append(ex.counters, CounterInfo{Name: c.Name, Bound: c.Bound})
		t := cs.counterTracker(c, base.Alpha, &ex.stats)
		sticky := map[dfa.State]bool{dfa.State(c.Bound): true, dfa.State(c.Bound + 1): true}
		if err := fold(t, sticky, c.Line, fmt.Sprintf("counter %q (bound %d)", c.Name, c.Bound)); err != nil {
			return ex, err
		}
	}
	for _, r := range cs.relations {
		ex.relations = append(ex.relations, RelationInfo{A: r.decl.A, B: r.decl.B, Lo: r.decl.Lo, Hi: r.decl.Hi})
		t, sticky := r.tracker(base.Alpha, &ex.stats)
		ex.stats.RelationStates += t.NumStates
		if err := fold(t, sticky, r.decl.Line, fmt.Sprintf("relation %s - %s (band [%d, %d])", r.decl.A, r.decl.B, r.decl.Lo, r.decl.Hi)); err != nil {
			return ex, err
		}
	}
	ex.stats.ExpandedStates = ex.machine.NumStates
	return ex, nil
}

// CounterList returns the individually tracked counters of the property
// (nil for plain regular specifications), sorted by name.
func (p *Property) CounterList() []CounterInfo {
	out := append([]CounterInfo(nil), p.Counters...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationList returns the declared counter-pair relations, sorted by
// (A, B).
func (p *Property) RelationList() []RelationInfo {
	out := append([]RelationInfo(nil), p.Relations...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// MayState reports whether machine state s rests on a saturated / sticky
// counter or relation valuation — an accepting annotation landing there
// is a MAY verdict, not a definite one.
func (p *Property) MayState(s dfa.State) bool {
	return p.mayStates != nil && int(s) < len(p.mayStates) && p.mayStates[s]
}

// signedNum renders n with a typographic minus for display strings.
func signedNum(n int) string {
	if n < 0 {
		return fmt.Sprintf("−%d", -n)
	}
	return fmt.Sprintf("%d", n)
}

// Domain describes the annotation domain of the property for display:
// "regular" for plain finite-state specifications, "counting(c≤4)" style
// for bounded-counter ones, with relations rendered as their band, e.g.
// "counting(a−b∈[−2,2])". The rendering is sorted (counters by name,
// then relations by pair) so -list output stays byte-stable.
func (p *Property) Domain() string {
	if len(p.Counters) == 0 && len(p.Relations) == 0 {
		return "regular"
	}
	s := "counting("
	sep := ""
	for _, c := range p.CounterList() {
		s += sep + fmt.Sprintf("%s≤%d", c.Name, c.Bound)
		sep = ","
	}
	for _, r := range p.RelationList() {
		s += sep + fmt.Sprintf("%s−%s∈[%s,%s]", r.A, r.B, signedNum(r.Lo), signedNum(r.Hi))
		sep = ","
	}
	return s + ")"
}
