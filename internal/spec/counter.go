package spec

import (
	"fmt"
	"sort"

	"rasc/internal/dfa"
)

// This file implements bounded-counter annotations: a counter automaton
// whose counters saturate at a declared bound k, so its transition
// structure stays a finite DFA and the induced monoid F_M^≡ (and with it
// Then/Apply and the whole solver) works unchanged.
//
// A specification may declare
//
//	counter c bound 4;
//
// attach updates to arms (`| acquire(x) [c += 1] -> S`, or the shorthand
// `[+1]` when there is exactly one counter), and assert
//
//	assert c <= 3;          // inline: violating transitions accept
//	assert c >= 0;          // inline: only 0 is supported
//	assert c == 0 at exit;  // exit: violating valuations accept
//
// Each counter compiles to a small tracker DFA over the abstract domain
//
//	{0, 1, …, k-1} ∪ {≥k} ∪ {<0} ∪ {fail}
//
// where ≥k is the saturated value (any further information is lost — a
// finding that depends on a saturated counter is a MAY verdict), <0 is a
// sticky "went below zero" value, and fail is the absorbing accepting
// state entered when an inline assert is violated. The trackers are folded
// into the declared machine with the synchronous product (dfa.Union), so
// the final accept set is "base accepts OR any counter assert fires", and
// product state names like "S·c=2" carry the counter valuation into
// witnesses and -explain provenance.
//
// The product factorization requires that a counter update depend only on
// the symbol, not the source state: every arm mentioning a symbol must
// carry the same counter deltas (unmentioned symbols stutter with delta
// 0). Compilation rejects inconsistent deltas.

// CounterInfo describes one declared counter of a compiled Property.
type CounterInfo struct {
	Name  string
	Bound int
}

// CounterStats reports the cost of counter expansion, for obs metrics and
// regression guards.
type CounterStats struct {
	// ExpandedStates is the state count of the machine after all counter
	// trackers were folded in (0 for counter-free specs).
	ExpandedStates int
	// SaturatingEdges counts tracker transitions that clamp an exact
	// counter value into the saturated ≥k state — the places where the
	// abstraction loses information.
	SaturatingEdges int
}

// maxCounterBound caps a single counter's bound; beyond this the tracker
// alone would dwarf any realistic property machine.
const maxCounterBound = 64

// maxExpandedStates caps the product of the declared machine with all
// counter trackers.
const maxExpandedStates = 4096

// counterSpec is the validated form of the counter declarations: per-symbol
// deltas and the assert lists split per counter.
type counterSpec struct {
	decls []CounterDecl
	// deltas[sym][counter] = net delta applied by symbol sym (absent = 0).
	deltas map[string]map[string]int
	// inlineMax[counter] = smallest inline `<= v` bound (-1 if none).
	inlineMax map[string]int
	// inlineNonneg[counter] = an inline `>= 0` assert exists.
	inlineNonneg map[string]bool
	// exit[counter] = exit asserts on that counter.
	exit map[string][]AssertDecl
}

// validateCounters checks the counter declarations, arm updates and
// asserts of ast, returning the canonical per-symbol deltas. It returns
// (nil, nil) for counter-free specifications.
func validateCounters(ast *AST) (*counterSpec, error) {
	if len(ast.Counters) == 0 {
		if len(ast.Asserts) > 0 {
			a := ast.Asserts[0]
			return nil, &SemanticError{a.Line, fmt.Sprintf("assert references counter %q but no counters are declared", a.Counter)}
		}
		for _, d := range ast.States {
			for _, arm := range d.Arms {
				if len(arm.Ops) > 0 {
					return nil, &SemanticError{arm.Line, fmt.Sprintf("arm for %q updates a counter but no counters are declared", arm.Symbol)}
				}
			}
		}
		return nil, nil
	}

	cs := &counterSpec{
		decls:        ast.Counters,
		deltas:       map[string]map[string]int{},
		inlineMax:    map[string]int{},
		inlineNonneg: map[string]bool{},
		exit:         map[string][]AssertDecl{},
	}
	bounds := map[string]int{}
	for _, c := range ast.Counters {
		if _, dup := bounds[c.Name]; dup {
			return nil, &SemanticError{c.Line, fmt.Sprintf("duplicate counter %q", c.Name)}
		}
		if c.Bound < 1 || c.Bound > maxCounterBound {
			return nil, &SemanticError{c.Line, fmt.Sprintf("counter %q bound %d out of range [1, %d]", c.Name, c.Bound, maxCounterBound)}
		}
		bounds[c.Name] = c.Bound
		cs.inlineMax[c.Name] = -1
	}

	asserted := map[string]bool{}
	for _, a := range ast.Asserts {
		bound, ok := bounds[a.Counter]
		if !ok {
			return nil, &SemanticError{a.Line, fmt.Sprintf("assert references undeclared counter %q", a.Counter)}
		}
		if a.Value < 0 || a.Value > bound-1 {
			return nil, &SemanticError{a.Line,
				fmt.Sprintf("assert value %d for counter %q out of range [0, %d] (bound %d must exceed the asserted value)", a.Value, a.Counter, bound-1, bound)}
		}
		asserted[a.Counter] = true
		if a.AtExit {
			cs.exit[a.Counter] = append(cs.exit[a.Counter], a)
			continue
		}
		switch a.Cmp {
		case "<=":
			if cur := cs.inlineMax[a.Counter]; cur < 0 || a.Value < cur {
				cs.inlineMax[a.Counter] = a.Value
			}
		case ">=":
			if a.Value != 0 {
				return nil, &SemanticError{a.Line, fmt.Sprintf("inline '>=' assert on %q supports only 0", a.Counter)}
			}
			cs.inlineNonneg[a.Counter] = true
		case "==":
			return nil, &SemanticError{a.Line, "'==' asserts are only supported 'at exit'"}
		}
	}
	for _, c := range ast.Counters {
		if !asserted[c.Name] {
			return nil, &SemanticError{c.Line, fmt.Sprintf("counter %q is never asserted", c.Name)}
		}
	}

	// Canonicalize arm updates into per-symbol deltas and check that every
	// arm on a symbol agrees (the product factorization needs per-symbol
	// updates).
	soleCounter := ""
	if len(ast.Counters) == 1 {
		soleCounter = ast.Counters[0].Name
	}
	seenArm := map[string]int{} // symbol -> line of first arm
	for _, d := range ast.States {
		for _, arm := range d.Arms {
			net := map[string]int{}
			for _, op := range arm.Ops {
				name := op.Counter
				if name == "" {
					if soleCounter == "" {
						return nil, &SemanticError{op.Line,
							fmt.Sprintf("shorthand counter update on %q is ambiguous with %d counters; name the counter", arm.Symbol, len(ast.Counters))}
					}
					name = soleCounter
				}
				if _, ok := bounds[name]; !ok {
					return nil, &SemanticError{op.Line, fmt.Sprintf("arm for %q updates undeclared counter %q", arm.Symbol, name)}
				}
				net[name] += op.Delta
			}
			for name, dl := range net {
				if dl == 0 {
					delete(net, name)
				}
			}
			if prev, seen := cs.deltas[arm.Symbol]; seen {
				if !sameDeltas(prev, net) {
					return nil, &SemanticError{arm.Line,
						fmt.Sprintf("symbol %q carries different counter updates than its arm at line %d (counter updates must be per-symbol)", arm.Symbol, seenArm[arm.Symbol])}
				}
			} else {
				cs.deltas[arm.Symbol] = net
				seenArm[arm.Symbol] = arm.Line
			}
		}
	}
	return cs, nil
}

func sameDeltas(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// counterTracker builds the tracker DFA for one counter over the shared
// spec alphabet. States: 0..k-1 exact, k saturated (≥k), k+1 negative
// (<0), k+2 fail (absorbing, accepting).
func (cs *counterSpec) counterTracker(c CounterDecl, alpha *dfa.Alphabet, stats *CounterStats) *dfa.DFA {
	k := c.Bound
	sat := dfa.State(k)
	neg := dfa.State(k + 1)
	fail := dfa.State(k + 2)
	d := dfa.NewDFA(alpha, k+3, 0)
	names := make([]string, k+3)
	for v := 0; v < k; v++ {
		names[v] = fmt.Sprintf("%s=%d", c.Name, v)
	}
	names[sat] = fmt.Sprintf("%s>=%d", c.Name, k)
	names[neg] = fmt.Sprintf("%s<0", c.Name)
	names[fail] = fmt.Sprintf("%s:fail", c.Name)
	d.StateName = names

	inlineMax := cs.inlineMax[c.Name]
	nonneg := cs.inlineNonneg[c.Name]

	// Accepting valuations: fail always; exact / saturated / negative
	// values iff they violate some exit assert. The saturated value
	// stands for "anything ≥ k", so it may-violates `==` and `<=` exit
	// asserts; the negative value records that the counter once went
	// below zero, which violates `==` and `>=` exit asserts (a precision
	// choice: `<=` is treated as still satisfiable).
	d.SetAccept(fail)
	for _, a := range cs.exit[c.Name] {
		for v := 0; v < k; v++ {
			if violatesExact(a, v) {
				d.SetAccept(dfa.State(v))
			}
		}
		switch a.Cmp {
		case "==", "<=":
			d.SetAccept(sat)
		}
		switch a.Cmp {
		case "==", ">=":
			d.SetAccept(neg)
		}
	}

	for i := 0; i < alpha.Size(); i++ {
		sym := dfa.Symbol(i)
		delta := cs.deltas[alpha.Name(sym)][c.Name]
		for v := 0; v < k; v++ {
			next := dfa.State(0)
			switch nv := v + delta; {
			case nv < 0:
				if nonneg {
					next = fail
				} else {
					next = neg
				}
			case inlineMax >= 0 && nv > inlineMax:
				next = fail
			case nv >= k:
				next = sat
				stats.SaturatingEdges++
			default:
				next = dfa.State(nv)
			}
			d.SetTransition(dfa.State(v), sym, next)
		}
		// Saturated, negative and failed values are sticky: once the
		// abstraction has lost (or condemned) the exact value, no update
		// can restore it.
		d.SetTransition(sat, sym, sat)
		d.SetTransition(neg, sym, neg)
		d.SetTransition(fail, sym, fail)
	}
	return d
}

func violatesExact(a AssertDecl, v int) bool {
	switch a.Cmp {
	case "==":
		return v != a.Value
	case "<=":
		return v > a.Value
	case ">=":
		return v < a.Value
	}
	return false
}

// expandCounters folds the counter trackers into the completed base
// machine via the synchronous product (accept = OR), preserving state
// names so witnesses read "S·c=2".
func expandCounters(base *dfa.DFA, cs *counterSpec) (*dfa.DFA, []CounterInfo, CounterStats, error) {
	var stats CounterStats
	if cs == nil {
		return base, nil, stats, nil
	}
	info := make([]CounterInfo, len(cs.decls))
	machine := base
	for i, c := range cs.decls {
		info[i] = CounterInfo{Name: c.Name, Bound: c.Bound}
		machine = dfa.Union(machine, cs.counterTracker(c, base.Alpha, &stats))
		if machine.NumStates > maxExpandedStates {
			return nil, nil, stats, &SemanticError{c.Line,
				fmt.Sprintf("counter expansion exceeds %d states at counter %q (bound %d); lower the bounds", maxExpandedStates, c.Name, c.Bound)}
		}
	}
	stats.ExpandedStates = machine.NumStates
	return machine, info, stats, nil
}

// Counters returns the declared counters of the property (nil for plain
// regular specifications), sorted by name.
func (p *Property) CounterList() []CounterInfo {
	out := append([]CounterInfo(nil), p.Counters...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Domain describes the annotation domain of the property for display:
// "regular" for plain finite-state specifications, "counting(c≤4)" style
// for bounded-counter ones.
func (p *Property) Domain() string {
	if len(p.Counters) == 0 {
		return "regular"
	}
	s := "counting("
	for i, c := range p.CounterList() {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s≤%d", c.Name, c.Bound)
	}
	return s + ")"
}
