package spec

import (
	"fmt"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
)

// This file implements §2.2's observation that "it is sufficient to deal
// only with a single machine representing the product of all the regular
// reachability properties for a given application": several compiled
// properties are combined over the union of their alphabets (each machine
// stutters on foreign symbols) into one Property whose annotations track
// all of them at once.

// Union combines properties so the result accepts when ANY component
// accepts — the natural combination for safety monitors whose accept
// state means "violation".
func Union(opts Options, props ...*Property) (*Property, error) {
	return combine(opts, dfa.Union, props)
}

// Intersect combines properties so the result accepts only when EVERY
// component accepts simultaneously.
func Intersect(opts Options, props ...*Property) (*Property, error) {
	return combine(opts, dfa.Intersect, props)
}

func combine(opts Options, op func(a, b *dfa.DFA) *dfa.DFA, props []*Property) (*Property, error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("spec: no properties to combine")
	}
	// Union alphabet with parameter-consistency checking.
	alpha := &dfa.Alphabet{}
	paramOf := map[string]string{}
	for _, p := range props {
		for _, name := range p.Machine.Alpha.Names() {
			alpha.Intern(name)
			param := p.ParamOf[name]
			if prev, seen := paramOf[name]; seen && prev != param {
				return nil, fmt.Errorf("spec: symbol %q has inconsistent parameters (%q vs %q) across properties",
					name, prev, param)
			}
			paramOf[name] = param
		}
	}
	// Re-home each machine on the union alphabet, stuttering on foreign
	// symbols (matching the DSL's semantics for unmentioned symbols).
	cur := rehome(props[0].Machine, alpha)
	for _, p := range props[1:] {
		cur = dfa.Minimize(op(cur, rehome(p.Machine, alpha)))
	}
	cur = dfa.Minimize(cur)
	mon, err := monoid.Build(cur, opts.MonoidLimit)
	if err != nil {
		return nil, err
	}
	return &Property{
		Machine: cur,
		Mon:     mon,
		ParamOf: paramOf,
	}, nil
}

// rehome rebuilds m over the union alphabet; symbols m does not know
// self-loop.
func rehome(m *dfa.DFA, alpha *dfa.Alphabet) *dfa.DFA {
	m = m.Complete()
	out := dfa.NewDFA(alpha, m.NumStates, m.Start)
	copy(out.Accept, m.Accept)
	if m.StateName != nil {
		out.StateName = append([]string{}, m.StateName...)
	}
	for s := 0; s < m.NumStates; s++ {
		for i := 0; i < alpha.Size(); i++ {
			name := alpha.Name(dfa.Symbol(i))
			if old, ok := m.Alpha.Lookup(name); ok {
				out.Delta[s][i] = m.Delta[s][old]
			} else {
				out.Delta[s][i] = dfa.State(s)
			}
		}
	}
	return out
}
