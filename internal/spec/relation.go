package spec

import (
	"fmt"

	"rasc/internal/dfa"
)

// Relational counting: a declared pair relation
//
//	relate a - b in [lo, hi];
//
// tracks the difference a−b jointly through one tracker DFA over the
// saturating zone domain
//
//	{lo, …, hi} ∪ {>hi sticky} ∪ {<lo sticky} ∪ {fail absorbing}
//
// so two individually unbounded event streams stay finitely analyzable as
// long as their difference is what the property constrains. The band must
// contain 0 — the initial difference. Relational asserts
//
//	assert a - b <= k;          // inline, k ≥ 0
//	assert a - b >= k;          // inline, k ≤ 0
//	assert a - b == 0 at exit;  // exit
//
// fail the tracker (inline, on the violating transition) or mark
// valuations accepting (exit). Out-of-band sticky states are MAY
// valuations: `>hi` may-violates `==`/`<=` exit asserts, `<lo`
// may-violates `==`/`>=` ones, mirroring the single-counter precision
// choices in counter.go.
//
// The per-symbol update of the difference is the difference of the
// per-symbol counter updates; a wildcard update contributes a change of
// known sign and unknown magnitude, so it is admissible only when every
// contribution on that symbol pushes the difference the same way (the
// tracker then jumps straight to the sticky state on that side).
//
// Each relation is one tracker for one declared pair — deliberately not a
// difference-bound matrix over all counters: the product of the declared
// machine with one zone per declared pair stays small and the monoid
// finite, while a full DBM closure would square the state space for
// constraints no spec asserts. See DESIGN.md "Relational counters".

// relationSpec is the validated form of one `relate` declaration plus the
// asserts attached to its pair.
type relationSpec struct {
	decl RelateDecl

	hasInlineMax bool
	inlineMax    int // smallest inline `<= v`
	hasInlineMin bool
	inlineMin    int // largest inline `>= v`
	exit         []AssertDecl

	// diffs[sym] = canonical per-symbol update of the difference A−B.
	diffs map[string]symDelta
	// wildPlus / wildMinus = some symbol moves the difference by a
	// wildcard amount up / down.
	wildPlus  bool
	wildMinus bool
}

// validateRelations checks the `relate` declarations against the counter
// table.
func (cs *counterSpec) validateRelations(ast *AST, bounds map[string]int) error {
	seen := map[[2]string]bool{}
	for _, r := range ast.Relations {
		if _, ok := bounds[r.A]; !ok {
			return &SemanticError{r.Line, fmt.Sprintf("relation references undeclared counter %q", r.A)}
		}
		if _, ok := bounds[r.B]; !ok {
			return &SemanticError{r.Line, fmt.Sprintf("relation references undeclared counter %q", r.B)}
		}
		if r.A == r.B {
			return &SemanticError{r.Line, fmt.Sprintf("relation relates counter %q to itself", r.A)}
		}
		if seen[[2]string{r.A, r.B}] || seen[[2]string{r.B, r.A}] {
			return &SemanticError{r.Line, fmt.Sprintf("duplicate relation between %q and %q", r.A, r.B)}
		}
		seen[[2]string{r.A, r.B}] = true
		if r.Lo > r.Hi {
			return &SemanticError{r.Line, fmt.Sprintf("relation band [%d, %d] is empty", r.Lo, r.Hi)}
		}
		if r.Lo > 0 || r.Hi < 0 {
			return &SemanticError{r.Line, fmt.Sprintf("relation band [%d, %d] must contain 0, the initial difference", r.Lo, r.Hi)}
		}
		if r.Lo < -maxCounterBound || r.Hi > maxCounterBound {
			return &SemanticError{r.Line, fmt.Sprintf("relation band [%d, %d] out of range [%d, %d]", r.Lo, r.Hi, -maxCounterBound, maxCounterBound)}
		}
		cs.relations = append(cs.relations, &relationSpec{decl: r})
	}
	return nil
}

// addRelationAssert attaches one relational assert `a - b <cmp> v` to its
// declared relation.
func (cs *counterSpec) addRelationAssert(a AssertDecl) error {
	var rs *relationSpec
	for _, r := range cs.relations {
		if r.decl.A == a.Counter && r.decl.B == a.CounterB {
			rs = r
			break
		}
		if r.decl.A == a.CounterB && r.decl.B == a.Counter {
			return &SemanticError{a.Line,
				fmt.Sprintf("relation is declared as %s - %s; write the assert in the same orientation", r.decl.A, r.decl.B)}
		}
	}
	if rs == nil {
		return &SemanticError{a.Line, fmt.Sprintf("no relation declared for %s - %s (add `relate %s - %s in [lo, hi];`)", a.Counter, a.CounterB, a.Counter, a.CounterB)}
	}
	lo, hi := rs.decl.Lo, rs.decl.Hi
	if a.Value < lo || a.Value > hi {
		return &SemanticError{a.Line,
			fmt.Sprintf("assert value %d for relation %s - %s out of range: the band [%d, %d] must cover it", a.Value, a.Counter, a.CounterB, lo, hi)}
	}
	if a.AtExit {
		rs.exit = append(rs.exit, a)
		return nil
	}
	switch a.Cmp {
	case "<=":
		if a.Value < 0 {
			return &SemanticError{a.Line,
				fmt.Sprintf("inline '<=' on relation %s - %s requires a non-negative value (the initial difference 0 must satisfy it)", a.Counter, a.CounterB)}
		}
		if !rs.hasInlineMax || a.Value < rs.inlineMax {
			rs.hasInlineMax, rs.inlineMax = true, a.Value
		}
	case ">=":
		if a.Value > 0 {
			return &SemanticError{a.Line,
				fmt.Sprintf("inline '>=' on relation %s - %s requires a non-positive value (the initial difference 0 must satisfy it)", a.Counter, a.CounterB)}
		}
		if !rs.hasInlineMin || a.Value > rs.inlineMin {
			rs.hasInlineMin, rs.inlineMin = true, a.Value
		}
	case "==":
		return &SemanticError{a.Line, "'==' asserts are only supported 'at exit'"}
	}
	return nil
}

// resolveRelationDiffs derives each relation's canonical per-symbol
// difference update from the counter deltas, rejecting wildcard
// combinations whose net direction on the difference is indeterminate.
func (cs *counterSpec) resolveRelationDiffs() error {
	for _, rs := range cs.relations {
		rs.diffs = map[string]symDelta{}
		for sym, net := range cs.deltas {
			da, db := net[rs.decl.A], net[rs.decl.B]
			if !da.wild && !db.wild {
				if d := da.n - db.n; d != 0 {
					rs.diffs[sym] = symDelta{n: d}
				}
				continue
			}
			// At least one wildcard contribution: every effect on the
			// difference must push the same direction.
			sign := 0
			indeterminate := false
			push := func(s int) {
				if s == 0 {
					return
				}
				if sign == 0 {
					sign = s
				} else if sign != s {
					indeterminate = true
				}
			}
			if da.wild {
				push(da.sign)
			} else {
				push(signOf(da.n))
			}
			if db.wild {
				push(-db.sign)
			} else {
				push(signOf(-db.n))
			}
			if indeterminate {
				return &SemanticError{rs.decl.Line,
					fmt.Sprintf("symbol %q moves the difference %s - %s in an indeterminate direction (wildcard and opposing updates); split the symbol or align the updates", sym, rs.decl.A, rs.decl.B)}
			}
			rs.diffs[sym] = symDelta{wild: true, sign: sign}
			if sign > 0 {
				rs.wildPlus = true
			} else {
				rs.wildMinus = true
			}
		}
	}
	return nil
}

func signOf(n int) int {
	switch {
	case n > 0:
		return 1
	case n < 0:
		return -1
	}
	return 0
}

// step computes the successor of the exact difference v (lo ≤ v ≤ hi)
// under the per-symbol difference update dl: the returned state uses the
// tracker layout 0..hi-lo exact (difference lo+i), then >hi, <lo, fail.
// causeSat / causeNeg stand for the >hi / <lo sticky jumps, causeFailMax /
// causeFailNonneg for inline `<=` / `>=` violations.
func (rs *relationSpec) step(dl symDelta, v int) (int, stepCause) {
	lo, hi := rs.decl.Lo, rs.decl.Hi
	width := hi - lo + 1
	hiS, loS, fail := width, width+1, width+2
	idx := func(d int) int { return d - lo }
	switch {
	case dl.wild && dl.sign > 0:
		// Unknown increase of the difference: it definitely violates an
		// inline maximum the next difference cannot stay under; otherwise
		// the exact difference is lost upward.
		if rs.hasInlineMax && v+1 > rs.inlineMax {
			return fail, causeFailMax
		}
		return hiS, causeSat
	case dl.wild:
		if rs.hasInlineMin && v-1 < rs.inlineMin {
			return fail, causeFailNonneg
		}
		return loS, causeNeg
	}
	switch nd := v + dl.n; {
	case rs.hasInlineMin && nd < rs.inlineMin:
		return fail, causeFailNonneg
	case rs.hasInlineMax && nd > rs.inlineMax:
		return fail, causeFailMax
	case nd > hi:
		return hiS, causeSat
	case nd < lo:
		return loS, causeNeg
	default:
		return idx(nd), causeExact
	}
}

// tracker builds the zone-domain difference tracker DFA for the relation
// over the shared spec alphabet, returning it together with its sticky
// (MAY) states. States: indices 0..hi-lo exact (difference lo+i), then
// >hi, <lo, fail.
func (rs *relationSpec) tracker(alpha *dfa.Alphabet, stats *CounterStats) (*dfa.DFA, map[dfa.State]bool) {
	lo, hi := rs.decl.Lo, rs.decl.Hi
	width := hi - lo + 1
	hiS := dfa.State(width)
	loS := dfa.State(width + 1)
	fail := dfa.State(width + 2)
	idx := func(v int) dfa.State { return dfa.State(v - lo) }
	start := idx(0)
	d := dfa.NewDFA(alpha, width+3, start)
	pair := rs.decl.A + "-" + rs.decl.B
	names := make([]string, width+3)
	for v := lo; v <= hi; v++ {
		names[idx(v)] = fmt.Sprintf("%s=%d", pair, v)
	}
	names[hiS] = fmt.Sprintf("%s>%d", pair, hi)
	names[loS] = fmt.Sprintf("%s<%d", pair, lo)
	names[fail] = fmt.Sprintf("%s:fail", pair)
	d.StateName = names

	// Accepting valuations: fail always; exact differences iff they
	// violate an exit assert; the sticky states for the exit asserts they
	// may-violate, plus the inline asserts a wildcard jump may have
	// crossed.
	d.SetAccept(fail)
	for _, a := range rs.exit {
		for v := lo; v <= hi; v++ {
			if violatesExact(a, v) {
				d.SetAccept(idx(v))
			}
		}
		switch a.Cmp {
		case "==", "<=":
			d.SetAccept(hiS)
		}
		switch a.Cmp {
		case "==", ">=":
			d.SetAccept(loS)
		}
	}
	if rs.wildPlus && rs.hasInlineMax {
		d.SetAccept(hiS)
	}
	if rs.wildMinus && rs.hasInlineMin {
		d.SetAccept(loS)
	}

	for i := 0; i < alpha.Size(); i++ {
		sym := dfa.Symbol(i)
		dl := rs.diffs[alpha.Name(sym)]
		for v := lo; v <= hi; v++ {
			ns, cause := rs.step(dl, v)
			if cause == causeSat || cause == causeNeg {
				stats.RelationSaturatingEdges++
			}
			d.SetTransition(idx(v), sym, dfa.State(ns))
		}
		// Out-of-band and failed differences are sticky.
		d.SetTransition(hiS, sym, hiS)
		d.SetTransition(loS, sym, loS)
		d.SetTransition(fail, sym, fail)
	}
	return d, map[dfa.State]bool{hiS: true, loS: true}
}
