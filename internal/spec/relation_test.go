package spec

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
)

// relSemSrc is the canonical relational specification used throughout
// the tests: two individually unbounded counters whose difference is
// tracked jointly through one zone tracker (the semabalance v2 shape).
const relSemSrc = `
counter acq bound 8;
counter rel bound 8;

relate acq - rel in [0, 6];

start state S :
    | acquire(x) [acq += 1] -> S
    | release(x) [rel += 1] -> S;

assert acq - rel >= 0;
assert acq - rel == 0 at exit;
`

func TestRelationCompile(t *testing.T) {
	p, err := Compile(relSemSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Domain(); got != "counting(acq−rel∈[0,6])" {
		t.Errorf("Domain() = %q, want counting(acq−rel∈[0,6])", got)
	}
	if len(p.Relations) != 1 {
		t.Fatalf("Relations = %+v, want one", p.Relations)
	}
	if r := p.Relations[0]; r.A != "acq" || r.B != "rel" || r.Lo != 0 || r.Hi != 6 {
		t.Errorf("Relations[0] = %+v, want acq-rel in [0,6]", r)
	}
	// Neither counter is asserted on its own, so neither gets an
	// individual tracker: the relation carries the whole property.
	if len(p.Counters) != 0 {
		t.Errorf("Counters = %+v, want none (relation-only counters)", p.Counters)
	}
	if p.Stats.RelationStates == 0 {
		t.Error("Stats.RelationStates = 0, want the tracker counted")
	}
	if p.Stats.RelationSaturatingEdges == 0 {
		t.Error("Stats.RelationSaturatingEdges = 0, want the out-of-band jump counted")
	}
	var names []string
	for s := 0; s < p.Machine.NumStates; s++ {
		names = append(names, p.Machine.NameOf(dfa.State(s)))
	}
	joined := strings.Join(names, " ")
	// The "<lo" zone state is unreachable here: the inline `>= 0` assert
	// routes underflow straight to fail, and the product trims it.
	for _, want := range []string{"S·acq-rel=0", "S·acq-rel=6", "S·acq-rel>6", "S·acq-rel:fail"} {
		if !strings.Contains(joined, want) {
			t.Errorf("state names %q missing %q", joined, want)
		}
	}
}

// relSeq composes the monoid functions of a symbol sequence.
func relSeq(t *testing.T, p *Property, syms ...string) monoid.FuncID {
	t.Helper()
	f := p.Mon.Identity()
	for _, s := range syms {
		g, ok := p.Mon.SymbolFuncByName(s)
		if !ok {
			t.Fatalf("no symbol %q", s)
		}
		f = p.Mon.Then(f, g)
	}
	return f
}

func repSyms(sym string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = sym
	}
	return out
}

// TestRelationSemantics drives the compiled monoid through the zone
// domain: balanced traffic of any depth within the band stays exact
// (the relational win over independent saturating counters), imbalance
// at exit is a definite report, band overflow is a may-report, and
// over-release fails definitely.
func TestRelationSemantics(t *testing.T) {
	p, err := Compile(relSemSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	landing := func(f monoid.FuncID) dfa.State { return p.Mon.RightClass(f) }
	cases := []struct {
		name string
		syms []string
		acc  bool
		may  bool
	}{
		{"empty trace: balanced", nil, false, false},
		{"lone acquire: held at exit, definite", []string{"acquire"}, true, false},
		{"acquire release: balanced", []string{"acquire", "release"}, false, false},
		{"five acquires five releases: still exact (v1 saturated here)",
			append(repSyms("acquire", 5), repSyms("release", 5)...), false, false},
		{"six acquires five releases: definite imbalance",
			append(repSyms("acquire", 6), repSyms("release", 5)...), true, false},
		{"seven acquires: band overflow, may-verdict", repSyms("acquire", 7), true, true},
		{"release first: underflow fails definitely", []string{"release", "acquire"}, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := relSeq(t, p, c.syms...)
			if got := p.Mon.Accepting(f); got != c.acc {
				t.Errorf("accepting = %v (state %s), want %v", got, p.Machine.NameOf(landing(f)), c.acc)
			}
			if got := p.MayState(landing(f)); got != c.may {
				t.Errorf("MayState = %v (state %s), want %v", got, p.Machine.NameOf(landing(f)), c.may)
			}
		})
	}
	// Sticky: once out of the band, no suffix recovers exactness.
	over := relSeq(t, p, repSyms("acquire", 7)...)
	relF, _ := p.Mon.SymbolFuncByName("release")
	if f := p.Mon.Then(over, relF); !p.Mon.Accepting(f) || !p.MayState(p.Mon.RightClass(f)) {
		t.Error("band overflow must stay an accepting may-state after a release")
	}
}

// TestRelationFewerMayVerdicts is the point of the relational domain: on
// balanced paired patterns deeper than the independent counter's bound,
// the v1 single-counter spec saturates and may-reports, while the
// relational spec tracks the difference exactly and stays silent.
func TestRelationFewerMayVerdicts(t *testing.T) {
	indep, err := Compile(semCounterSrc, Options{}) // counter c bound 4
	if err != nil {
		t.Fatal(err)
	}
	relp, err := Compile(relSemSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for depth := 5; depth <= 6; depth++ {
		syms := append(repSyms("acquire", depth), repSyms("release", depth)...)
		if f := relSeq(t, indep, syms...); !indep.Mon.Accepting(f) {
			t.Errorf("depth %d: independent counter should saturate and may-report", depth)
		}
		if f := relSeq(t, relp, syms...); relp.Mon.Accepting(f) {
			t.Errorf("depth %d: relational tracker should verify the balanced pattern", depth)
		}
	}
	// No regression on true positives: both report the unbalanced run.
	syms := repSyms("acquire", 2)
	if f := relSeq(t, indep, syms...); !indep.Mon.Accepting(f) {
		t.Error("independent counter missed the unbalanced run")
	}
	if f := relSeq(t, relp, syms...); !relp.Mon.Accepting(f) {
		t.Error("relational tracker missed the unbalanced run")
	}
}

// TestWildcardUpdates checks `c += *` / `c -= *` semantics: a wildcard
// increase saturates (no report without an assert to cross), a wildcard
// decrease from an exactly-zero counter definitely violates `>= 0`, and
// from a positive counter it may-violates it.
func TestWildcardUpdates(t *testing.T) {
	src := `
counter c bound 3;

start state S :
    | add(x) [c += *] -> S
    | take(x) [c -= *] -> S
    | inc(x) [c += 1] -> S
    | done(x) [c -= 1] -> S;

assert c >= 0;
`
	p, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		syms []string
		acc  bool
		may  bool
	}{
		{"wildcard add alone: saturated but nothing violated", []string{"add"}, false, true},
		{"wildcard take at zero: definite underflow", []string{"take"}, true, false},
		{"done at zero: definite underflow", []string{"done"}, true, false},
		{"take from saturated: saturation is sticky, still nothing definite", []string{"add", "take"}, false, true},
		{"wildcard take from a positive value: may-underflow", []string{"inc", "inc", "take"}, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := relSeq(t, p, c.syms...)
			if got := p.Mon.Accepting(f); got != c.acc {
				t.Errorf("accepting = %v, want %v", got, c.acc)
			}
			if got := p.MayState(p.Mon.RightClass(f)); got != c.may {
				t.Errorf("MayState = %v, want %v", got, c.may)
			}
		})
	}
}

// TestRelationSyntaxErrors checks positions and messages on malformed
// relate / relational-assert grammar.
func TestRelationSyntaxErrors(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		want      string
		line, col int
	}{
		{"missing minus", "relate a b in [0, 2];", "expected '-'", 1, 10},
		{"missing in", "relate a - b [0, 2];", "expected 'in'", 1, 14},
		{"missing lbracket", "relate a - b in 0, 2;", "expected '['", 1, 17},
		{"missing comma", "relate a - b in [0 2];", "expected ','", 1, 20},
		{"missing rbracket", "relate a - b in [0, 2;", "expected ']'", 1, 22},
		{"missing lower bound", "relate a - b in [, 2];", "expected band lower bound", 1, 18},
		{"assert missing second counter", "assert a - <= 1;", "expected counter name", 1, 12},
		{"wildcard outside brackets", "start state S :\n | a [c += 1] -> S *;", "expected", 2, 20},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *SyntaxError", err)
			}
			if se.Line != c.line || se.Col != c.col {
				t.Errorf("error at %d:%d, want %d:%d (%s)", se.Line, se.Col, c.line, c.col, se.Msg)
			}
		})
	}
}

func TestRelationSemanticErrors(t *testing.T) {
	// decl is the shared two-counter preamble and machine.
	const machine = "start state S : | up(x) [a += 1] -> S | dn(x) [b += 1] -> S;\n"
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"relate without counters",
			"relate a - b in [0, 2];\n" + machine,
			"no counters are declared"},
		{"undeclared counter",
			"counter a bound 4;\nrelate a - z in [0, 2];\n" + machine +
				"assert a - z == 0 at exit;",
			"undeclared counter"},
		{"self relation",
			"counter a bound 4;\nrelate a - a in [0, 2];\n" + machine +
				"assert a - a == 0 at exit;",
			"to itself"},
		{"duplicate relation reversed",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\nrelate b - a in [-2, 0];\n" + machine +
				"assert a - b == 0 at exit;",
			"duplicate relation"},
		{"empty band",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [2, 0];\n" + machine +
				"assert a - b == 0 at exit;",
			"is empty"},
		{"band without zero",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [1, 3];\n" + machine +
				"assert a - b == 0 at exit;",
			"must contain 0"},
		{"band out of range",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [-65, 0];\n" + machine +
				"assert a - b == 0 at exit;",
			"out of range"},
		{"assert wrong orientation",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert b - a == 0 at exit;",
			"same orientation"},
		{"assert without relation",
			"counter a bound 4;\ncounter b bound 4;\ncounter z bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert a - b == 0 at exit;\nassert a - z == 0 at exit;",
			"no relation declared"},
		{"assert value outside band",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert a - b <= 3;",
			"must cover it"},
		{"inline <= negative",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [-2, 2];\n" + machine +
				"assert a - b <= -1;",
			"requires a non-negative value"},
		{"inline >= positive",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert a - b >= 1;",
			"requires a non-positive value"},
		{"inline ==",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert a - b == 0;",
			"only supported 'at exit'"},
		{"relation never asserted",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" + machine,
			"never asserted"},
		{"counter neither asserted nor related",
			"counter a bound 4;\ncounter b bound 4;\ncounter z bound 4;\nrelate a - b in [0, 2];\n" + machine +
				"assert a - b == 0 at exit;",
			"never asserted or related"},
		{"indeterminate wildcard direction",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" +
				"start state S : | m(x) [a += *, b += 2] -> S;\n" +
				"assert a - b == 0 at exit;",
			"indeterminate direction"},
		{"wildcard combined with literal on same counter",
			"counter a bound 4;\ncounter b bound 4;\nrelate a - b in [0, 2];\n" +
				"start state S : | m(x) [a += *, a += 1] -> S | dn(x) [b += 1] -> S;\n" +
				"assert a - b == 0 at exit;",
			"cannot be combined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
			var se *SemanticError
			if !errors.As(err, &se) {
				t.Errorf("error %T is not a *SemanticError", err)
			}
		})
	}
}

// TestRelationRandomizedOracle drives the compiled relational monoid
// with random acquire/release strings and checks every verdict against
// a direct simulation of the zone domain: exact difference while inside
// [0, 6], absorbing fail on underflow (the inline `>= 0`), sticky
// saturation above the band. The same strings run through the v1
// independent-counter spec as a differential: the relational machine
// never accepts a string the independent one verifies, and it produces
// strictly fewer may-verdicts over the batch.
func TestRelationRandomizedOracle(t *testing.T) {
	relp, err := Compile(relSemSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Compile(semCounterSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const fail, his = -1, -2
	relMays, indepMays := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(24)
		syms := make([]string, n)
		diff := 0 // oracle zone state: 0..6 exact, fail, his
		for i := range syms {
			if rng.Intn(2) == 0 {
				syms[i] = "acquire"
			} else {
				syms[i] = "release"
			}
			if diff == fail || diff == his {
				continue // sticky
			}
			d := 1
			if syms[i] == "release" {
				d = -1
			}
			switch nd := diff + d; {
			case nd < 0:
				diff = fail
			case nd > 6:
				diff = his
			default:
				diff = nd
			}
		}
		wantAcc := diff == fail || diff == his || diff > 0
		wantMay := diff == his

		f := relSeq(t, relp, syms...)
		acc, may := relp.Mon.Accepting(f), relp.MayState(relp.Mon.RightClass(f))
		if acc != wantAcc || may != (wantMay && acc) {
			t.Fatalf("trial %d %v: accepting/may = %v/%v, oracle %v/%v",
				trial, syms, acc, may, wantAcc, wantMay)
		}
		g := relSeq(t, indep, syms...)
		iacc := indep.Mon.Accepting(g)
		if acc && !may && !iacc {
			t.Fatalf("trial %d %v: relational reports definitely but independent is silent", trial, syms)
		}
		if acc && may {
			relMays++
		}
		if iacc && indep.MayState(indep.Mon.RightClass(g)) {
			indepMays++
		}
	}
	if relMays >= indepMays {
		t.Errorf("relational may-verdicts = %d, independent = %d; want strictly fewer", relMays, indepMays)
	}
}

// TestRelationZeroRelationIdentical: a counter spec with no relations
// must compile to exactly the same machine, monoid and stats as before
// the relational extension existed (the expansion path must not perturb
// wildcard-free, relation-free specs).
func TestRelationZeroRelationIdentical(t *testing.T) {
	p, err := Compile(semCounterSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Relations) != 0 {
		t.Fatalf("Relations = %+v, want none", p.Relations)
	}
	if p.Stats.RelationStates != 0 || p.Stats.RelationSaturatingEdges != 0 {
		t.Errorf("relation stats nonzero on a relation-free spec: %+v", p.Stats)
	}
	// No state of a wildcard-free, relation-free counter spec is a
	// may-state *unless* it is one of the PR-6 sticky sat/neg valuations;
	// here the sat state exists and must still be flagged.
	saw := false
	for s := 0; s < p.Machine.NumStates; s++ {
		if p.MayState(dfa.State(s)) {
			saw = true
			if name := p.Machine.NameOf(dfa.State(s)); !strings.Contains(name, ">=") && !strings.Contains(name, "<0") {
				t.Errorf("unexpected may-state %q", name)
			}
		}
	}
	if !saw {
		t.Error("the saturated valuation should be a may-state")
	}
}
