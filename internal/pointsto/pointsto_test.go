package pointsto

import (
	"reflect"
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAddressOfAndCopy(t *testing.T) {
	r := analyze(t, `
void main() {
    int a;
    int *p = &a;
    int *q = p;
}
`)
	if got := r.PointsTo("main", "p"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(p) = %v", got)
	}
	if got := r.PointsTo("main", "q"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(q) = %v", got)
	}
}

func TestLoad(t *testing.T) {
	r := analyze(t, `
void main() {
    int a;
    int *p = &a;
    int **pp = &p;
    int *q = *pp;
}
`)
	if got := r.PointsTo("main", "pp"); !reflect.DeepEqual(got, []string{"main.p"}) {
		t.Errorf("pt(pp) = %v", got)
	}
	if got := r.PointsTo("main", "q"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(q) = %v (load through pp)", got)
	}
}

func TestStore(t *testing.T) {
	r := analyze(t, `
void main() {
    int a;
    int b;
    int *p;
    int **pp = &p;
    *pp = &a;
    int *q = p;
    *pp = &b;
}
`)
	got := r.PointsTo("main", "p")
	if !reflect.DeepEqual(got, []string{"main.a", "main.b"}) {
		t.Errorf("pt(p) = %v, want both stores (flow-insensitive)", got)
	}
	if got := r.PointsTo("main", "q"); len(got) != 2 {
		t.Errorf("pt(q) = %v", got)
	}
}

// The contravariant set side must not leak backwards: storing into *pp
// does not make p point to pp's other contents' sources.
func TestStoreDirectionality(t *testing.T) {
	r := analyze(t, `
void main() {
    int a;
    int b;
    int *p = &a;
    int *r = &b;
    int **pp = &p;
    *pp = r;
}
`)
	// p gets b (through the store); r must NOT get a.
	if got := r.PointsTo("main", "p"); !reflect.DeepEqual(got, []string{"main.a", "main.b"}) {
		t.Errorf("pt(p) = %v", got)
	}
	if got := r.PointsTo("main", "r"); !reflect.DeepEqual(got, []string{"main.b"}) {
		t.Errorf("pt(r) = %v: the store must not flow backwards", got)
	}
}

func TestInterproceduralParamAndReturn(t *testing.T) {
	r := analyze(t, `
int *id(int *x) {
    return x;
}
void main() {
    int a;
    int *p = id(&a);
}
`)
	if got := r.PointsTo("id", "x"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(x) = %v", got)
	}
	if got := r.PointsTo("main", "p"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(p) = %v (return flow)", got)
	}
}

// The §7.5 example, end to end from source code: foo(&a,&b) at one site,
// foo(&b,&a) at another. Location-based aliasing says x and y may alias;
// the stack-aware query proves they cannot.
func TestStackAwareAliasFromSource(t *testing.T) {
	r := analyze(t, `
void foo(int *x, int *y) {
    nop(x, y);
}
void main() {
    int a;
    int b;
    foo(&a, &b);
    foo(&b, &a);
}
`)
	// Context-insensitive points-to: both params see both locations.
	if got := r.PointsTo("foo", "x"); len(got) != 2 {
		t.Fatalf("pt(x) = %v, want a and b", got)
	}
	if !r.MayAlias("foo", "x", "foo", "y") {
		t.Fatal("location-based query should (imprecisely) report aliasing")
	}
	if r.MayAliasStackAware("foo", "x", "foo", "y") {
		t.Error("stack-aware query must prove x and y unaliased (§7.5)")
	}
	// Sanity: a variable aliases itself.
	if !r.MayAliasStackAware("foo", "x", "foo", "x") {
		t.Error("x aliases x")
	}
}

// When the two parameters really can alias (same argument passed twice),
// the stack-aware query must keep saying yes.
func TestStackAwareAliasPositive(t *testing.T) {
	r := analyze(t, `
void foo(int *x, int *y) {
    nop(x, y);
}
void main() {
    int a;
    foo(&a, &a);
}
`)
	if !r.MayAliasStackAware("foo", "x", "foo", "y") {
		t.Error("x and y alias through the same call")
	}
}

// Memory-mediated flows disable the refinement (fall back to the sound
// location answer).
func TestStackAwareFallbackOnMemory(t *testing.T) {
	r := analyze(t, `
void foo(int *x, int *y) {
    nop(x, y);
}
void main() {
    int a;
    int *p = &a;
    int **pp = &p;
    int *q = *pp;
    foo(q, &a);
}
`)
	// q's address flow passes through memory; x's context is unknown.
	if !r.MayAliasStackAware("foo", "x", "foo", "y") {
		t.Error("memory-mediated flow must fall back to the location answer")
	}
}

func TestRecursionTerminates(t *testing.T) {
	r := analyze(t, `
int *walk(int *p, int n) {
    if (n) {
        return walk(p, n - 1);
    }
    return p;
}
void main() {
    int a;
    int *q = walk(&a, 3);
}
`)
	if got := r.PointsTo("main", "q"); !reflect.DeepEqual(got, []string{"main.a"}) {
		t.Errorf("pt(q) = %v", got)
	}
}

func TestUnsupportedAddressOf(t *testing.T) {
	prog := minic.MustParse(`
void main() {
    int *p = &f();
}
`)
	if _, err := Analyze(prog, core.Options{}); err == nil {
		t.Error("&call() should be rejected")
	}
}

func TestBranchesAndLoops(t *testing.T) {
	r := analyze(t, `
void main() {
    int a;
    int b;
    int *p;
    if (c) {
        p = &a;
    } else {
        p = &b;
    }
    while (d) {
        p = &a;
    }
}
`)
	if got := r.PointsTo("main", "p"); !reflect.DeepEqual(got, []string{"main.a", "main.b"}) {
		t.Errorf("pt(p) = %v", got)
	}
}
