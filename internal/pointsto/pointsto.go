// Package pointsto implements a field-insensitive, flow-insensitive
// Andersen-style points-to analysis for mini-C as a set-constraint
// problem — the representative application class the paper cites in §1
// ([26], and BANSHEE's own points-to analyses) — together with the
// stack-aware alias refinement of §7.5.
//
// The encoding is the classic one:
//
//	x = &y     ref(loc_y, PT(y), PT(y)) ⊆ PT(x)
//	x = y      PT(y) ⊆ PT(x)
//	x = *p     ref^-2(PT(p)) ⊆ PT(x)          (the covariant "get" side)
//	*p = y     PT(p) ⊆ ref(_, _, PT(y))       (the contravariant "set" side)
//
// where ref's third argument is contravariant: the structural rule then
// derives PT(y) ⊆ PT(l) for every location l that p may point to —
// exactly the store semantics, with no special-case code in the solver.
//
// In parallel, the analysis tracks context terms CT(x): copies of the
// address flows in which every call site wraps values in a unary
// constructor o_site (the §7.5 encoding). When a variable's context terms
// cover its points-to set (no flow passed through memory), alias queries
// can intersect the term sets instead of the location sets, recovering
// call-stack sensitivity for free.
package pointsto

import (
	"fmt"
	"sort"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/terms"
)

// Result is a solved points-to analysis.
type Result struct {
	Sys  *core.System
	Sig  *terms.Signature
	Bank *terms.Bank

	prog    *minic.Program
	refCons terms.ConsID
	unknown terms.ConsID
	pt      map[string]core.VarID // qualified "fn.var" -> PT variable
	ct      map[string]core.VarID // qualified -> context-term variable
	locCons map[string]terms.ConsID
	locName map[terms.ConsID]string
	nextTmp int

	unknownPN *core.PNResult // lazy cache for hasUnknown
}

// Analyze runs the analysis on a parsed program.
func Analyze(prog *minic.Program, opts core.Options) (*Result, error) {
	sig := terms.NewSignature()
	r := &Result{
		Sig:     sig,
		prog:    prog,
		pt:      map[string]core.VarID{},
		ct:      map[string]core.VarID{},
		locCons: map[string]terms.ConsID{},
		locName: map[terms.ConsID]string{},
	}
	var err error
	r.refCons, err = sig.DeclareVariance("ref", 3,
		[]terms.Variance{terms.Covariant, terms.Covariant, terms.Contravariant})
	if err != nil {
		return nil, err
	}
	r.unknown = sig.MustDeclare("unknown", 0)
	r.Sys = core.NewSystem(core.TrivialAlgebra{}, sig, opts)
	r.Bank = terms.NewBank(sig)

	for _, fd := range prog.Funcs {
		for _, st := range fd.Body {
			if err := r.stmt(fd.Name, st); err != nil {
				return nil, err
			}
		}
	}
	r.Sys.Solve()
	return r, nil
}

// MustAnalyze panics on error.
func MustAnalyze(prog *minic.Program, opts core.Options) *Result {
	r, err := Analyze(prog, opts)
	if err != nil {
		panic(err)
	}
	return r
}

func qualify(fn, v string) string { return fn + "." + v }

func (r *Result) ptVar(fn, v string) core.VarID {
	q := qualify(fn, v)
	if x, ok := r.pt[q]; ok {
		return x
	}
	x := r.Sys.Var("PT(" + q + ")")
	r.pt[q] = x
	return x
}

func (r *Result) ctVar(fn, v string) core.VarID {
	q := qualify(fn, v)
	if x, ok := r.ct[q]; ok {
		return x
	}
	x := r.Sys.Var("CT(" + q + ")")
	r.ct[q] = x
	return x
}

func (r *Result) loc(fn, v string) terms.ConsID {
	q := qualify(fn, v)
	if c, ok := r.locCons[q]; ok {
		return c
	}
	c := r.Sig.MustDeclare("loc:"+q, 0)
	r.locCons[q] = c
	r.locName[c] = q
	return c
}

func (r *Result) tmp(fn string) (core.VarID, core.VarID) {
	r.nextTmp++
	name := fmt.Sprintf("$t%d", r.nextTmp)
	return r.ptVar(fn, name), r.ctVar(fn, name)
}

func (r *Result) stmt(fn string, st minic.Stmt) error {
	switch s := st.(type) {
	case *minic.DeclStmt:
		if s.Init != nil {
			return r.assign(fn, s.Name, s.Init)
		}
		return nil
	case *minic.AssignStmt:
		return r.assign(fn, s.Name, s.X)
	case *minic.StoreStmt:
		// *p = e: PT(p) ⊆ ref(_, _, rhs).
		pt, ct, err := r.eval(fn, s.X)
		if err != nil {
			return err
		}
		_ = ct // stores pass through memory: loads mark unknown
		w1 := r.Sys.Fresh("wild")
		w2 := r.Sys.Fresh("wild")
		r.Sys.AddUpperE(r.ptVar(fn, s.Name), r.Sys.Cons(r.refCons, w1, w2, pt))
		return nil
	case *minic.ExprStmt:
		_, _, err := r.eval(fn, s.X)
		return err
	case *minic.ReturnStmt:
		if s.X != nil {
			return r.assign(fn, "$ret", s.X)
		}
		return nil
	case *minic.IfStmt:
		for _, body := range [][]minic.Stmt{s.Then, s.Else} {
			for _, st := range body {
				if err := r.stmt(fn, st); err != nil {
					return err
				}
			}
		}
		return nil
	case *minic.WhileStmt:
		for _, st := range s.Body {
			if err := r.stmt(fn, st); err != nil {
				return err
			}
		}
		return nil
	case *minic.BlockStmt:
		for _, st := range s.Body {
			if err := r.stmt(fn, st); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

func (r *Result) assign(fn, name string, e minic.Expr) error {
	pt, ct, err := r.eval(fn, e)
	if err != nil {
		return err
	}
	r.Sys.AddVarE(pt, r.ptVar(fn, name))
	r.Sys.AddVarE(ct, r.ctVar(fn, name))
	return nil
}

// eval returns the (PT, CT) variables holding the value of e.
func (r *Result) eval(fn string, e minic.Expr) (core.VarID, core.VarID, error) {
	switch x := e.(type) {
	case *minic.IdentExpr:
		return r.ptVar(fn, x.Name), r.ctVar(fn, x.Name), nil
	case *minic.NumExpr, *minic.StrExpr:
		pt, ct := r.tmp(fn)
		return pt, ct, nil
	case *minic.UnaryExpr:
		switch x.Op {
		case "&":
			id, ok := x.X.(*minic.IdentExpr)
			if !ok {
				return 0, 0, fmt.Errorf("pointsto: &%s unsupported (only &variable)", x.X.Render())
			}
			pt, ct := r.tmp(fn)
			lc := r.loc(fn, id.Name)
			inner := r.ptVar(fn, id.Name)
			r.Sys.AddLowerE(r.Sys.Cons(r.refCons, r.lbox(lc), inner, inner), pt)
			r.Sys.AddLowerE(r.Sys.Constant(lc), ct)
			return pt, ct, nil
		case "*":
			ipt, _, err := r.eval(fn, x.X)
			if err != nil {
				return 0, 0, err
			}
			pt, ct := r.tmp(fn)
			r.Sys.AddProjE(r.refCons, 1, ipt, pt) // the covariant "get" side
			// Loads pass through memory: the context terms are unknown.
			r.Sys.AddLowerE(r.Sys.Constant(r.unknown), ct)
			return pt, ct, nil
		default:
			return r.eval(fn, x.X)
		}
	case *minic.BinExpr:
		// Pointer arithmetic etc.: both operands may flow.
		pt, ct := r.tmp(fn)
		for _, side := range []minic.Expr{x.L, x.R} {
			spt, sct, err := r.eval(fn, side)
			if err != nil {
				return 0, 0, err
			}
			r.Sys.AddVarE(spt, pt)
			r.Sys.AddVarE(sct, ct)
		}
		return pt, ct, nil
	case *minic.CallExpr:
		fd, defined := r.prog.ByName[x.Name]
		if !defined {
			// External call: no pointer effects tracked.
			pt, ct := r.tmp(fn)
			for _, a := range x.Args {
				if _, _, err := r.eval(fn, a); err != nil {
					return 0, 0, err
				}
			}
			return pt, ct, nil
		}
		site := fmt.Sprintf("o@%s:%d", x.Name, x.Line)
		oc := r.Sig.MustDeclare(site, 1)
		for i, a := range x.Args {
			apt, act, err := r.eval(fn, a)
			if err != nil {
				return 0, 0, err
			}
			if i < len(fd.Params) {
				// PT: context-insensitive copy; CT: wrapped per site (§7.5).
				r.Sys.AddVarE(apt, r.ptVar(fd.Name, fd.Params[i]))
				r.Sys.AddLowerE(r.Sys.Cons(oc, act), r.ctVar(fd.Name, fd.Params[i]))
			}
		}
		pt, ct := r.tmp(fn)
		r.Sys.AddVarE(r.ptVar(fd.Name, "$ret"), pt)
		r.Sys.AddProjE(oc, 0, r.ctVar(fd.Name, "$ret"), ct)
		return pt, ct, nil
	}
	pt, ct := r.tmp(fn)
	return pt, ct, nil
}

// lbox returns a variable holding exactly the location constant, used as
// ref's identity component.
func (r *Result) lbox(lc terms.ConsID) core.VarID {
	v := r.Sys.Var("LOC(" + r.locName[lc] + ")")
	r.Sys.AddLowerE(r.Sys.Constant(lc), v)
	return v
}

// PointsTo returns the names of the locations variable fn.v may point to,
// sorted.
func (r *Result) PointsTo(fn, v string) []string {
	q := qualify(fn, v)
	x, ok := r.pt[q]
	if !ok {
		return nil
	}
	var out []string
	for _, f := range r.Sys.SourcesAt(x) {
		cd := r.Sys.ConsOf(f.Cn)
		if cd == r.refCons {
			// The identity component names the location.
			idVar := r.Sys.ArgsOf(f.Cn)[0]
			for _, lf := range r.Sys.SourcesAt(idVar) {
				if name, ok := r.locName[r.Sys.ConsOf(lf.Cn)]; ok {
					out = append(out, name)
				}
			}
		}
	}
	sort.Strings(out)
	return dedup(out)
}

func dedup(ss []string) []string {
	var out []string
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// MayAlias is the classic location-intersection query.
func (r *Result) MayAlias(fn1, v1, fn2, v2 string) bool {
	a := r.PointsTo(fn1, v1)
	b := map[string]bool{}
	for _, l := range r.PointsTo(fn2, v2) {
		b[l] = true
	}
	for _, l := range a {
		if b[l] {
			return true
		}
	}
	return false
}

// MayAliasStackAware refines MayAlias with the §7.5 term-intersection
// query: when both variables' address flows avoided memory (no "unknown"
// context), the call-stack-annotated term sets are intersected instead of
// the location sets. Falls back to MayAlias otherwise (sound).
func (r *Result) MayAliasStackAware(fn1, v1, fn2, v2 string) bool {
	if !r.MayAlias(fn1, v1, fn2, v2) {
		return false
	}
	c1, ok1 := r.ct[qualify(fn1, v1)]
	c2, ok2 := r.ct[qualify(fn2, v2)]
	if !ok1 || !ok2 || r.hasUnknown(c1) || r.hasUnknown(c2) {
		return true // memory flows involved: keep the location answer
	}
	t1 := r.Sys.TermsIn(c1, r.Bank, 8, 4096)
	set := map[terms.TermID]bool{}
	for _, t := range t1 {
		set[t] = true
	}
	for _, t := range r.Sys.TermsIn(c2, r.Bank, 8, 4096) {
		if set[t] {
			return true
		}
	}
	return false
}

func (r *Result) hasUnknown(v core.VarID) bool {
	// The unknown marker may sit inside call-site wrappers: check at any
	// constructor depth with PN reachability.
	if r.unknownPN == nil {
		r.unknownPN = r.Sys.PNReach(r.Sys.Constant(r.unknown))
	}
	return len(r.unknownPN.At(v)) > 0
}
