/* §7.5: foo called with its arguments swapped. */
void foo(int *x, int *y) {
    nop(x, y);
}
void main() {
    int a;
    int b;
    foo(&a, &b);
    foo(&b, &a);
}
