package analysis

import (
	"bytes"
	"strings"
	"testing"
)

// TestListGolden keeps the -list output byte-stable: sorted by checker
// name, with the relational counting domains rendered in the domain
// column ("counting(acq−rel∈[0,6])").
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ListText(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, buf.Bytes(), "testdata/list.golden")

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(All()) {
		t.Errorf("listing has %d lines, want one per checker (%d)", len(lines), len(All()))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("listing not sorted at line %d:\n%s\n%s", i, lines[i-1], lines[i])
		}
	}
}

// TestListStable requires two renderings to be byte-identical (the
// registry iteration is sorted, not map-ordered).
func TestListStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := ListText(&a); err != nil {
		t.Fatal(err)
	}
	if err := ListText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two -list renderings differ")
	}
}

// TestSpeclintBuiltinsClean is the CI gate: every built-in property spec
// must lint clean — a dead state, vacuous assert or loose band in a
// shipped checker is a checker bug.
func TestSpeclintBuiltinsClean(t *testing.T) {
	for _, f := range Speclint(All()) {
		t.Errorf("builtin spec lint finding: %s", f)
	}
}
