// Package race seeds one data race and one correctly guarded access
// pattern: counter is written by main and by the spawned updater with no
// lock, total is only ever touched under mu. The race checker must flag
// counter — with one witness trace per goroutine — and stay silent
// about total.
package race

import "sync"

var mu sync.Mutex

var counter int
var total int

func main() {
	go update()
	counter = 1
	mu.Lock()
	total = 1
	mu.Unlock()
	publish(counter)
}

func update() {
	counter++
	mu.Lock()
	total++
	mu.Unlock()
}

func publish(v int) {}
