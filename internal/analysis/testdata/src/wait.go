package demo

import "sync"

// Broadcast reuses the WaitGroup without a new round of Adds: the
// second Add races with the completed Wait.
func Broadcast() {
	var wg sync.WaitGroup
	wg.Add(2)
	go run(&wg)
	go run(&wg)
	wg.Wait()
	wg.Add(1)
}

func run(wg *sync.WaitGroup) {}
