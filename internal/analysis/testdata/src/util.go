package demo

// helperLock acquires the package mutex; callers must not hold it.
func helperLock() {
	mu.Lock()
	defer mu.Unlock()
	work()
}

func work() {}
