package demo

import "sync"

// SemBalanced acquires and releases the semaphore in matched pairs on
// every path: clean under semabalance.
func SemBalanced(n int) {
	sem.Acquire(ctx, 1)
	if n > 0 {
		sem.Acquire(ctx, 1)
		work()
		sem.Release(1)
	}
	work()
	sem.Release(1)
}

// SemHold leaves a permit held on the early-return path: semabalance
// reports the unbalanced exit.
func SemHold(n int) {
	sem.Acquire(ctx, 1)
	if n > 0 {
		return
	}
	sem.Release(1)
}

// PoolBalanced checks a connection out and back in: clean under
// poolexhaust.
func PoolBalanced() {
	c := pool.Checkout()
	use(c)
	pool.Checkin(c)
}

// PoolSpike checks out in a loop without checking back in: some path
// exceeds the pool capacity.
func PoolSpike(n int) {
	for i := 0; i < n; i++ {
		c := pool.Checkout()
		use(c)
	}
}

// ExchangeBalanced gets a buffer and puts it back every round: the
// get/put difference returns to 0 exactly, clean under poolexchange no
// matter how many iterations run.
func ExchangeBalanced(n int) {
	for i := 0; i < n; i++ {
		b := buffers.Get()
		use(b)
		buffers.Put(b)
	}
}

// ExchangeHoard gets buffers in a loop without putting them back: some
// path takes more than 4 out of the exchange.
func ExchangeHoard(n int) {
	for i := 0; i < n; i++ {
		b := buffers.Get()
		use(b)
	}
}

// NestShallow enters and leaves two levels: clean under depthbound.
func NestShallow() {
	Enter()
	Enter()
	work()
	Leave()
	Leave()
}

// DeepTrace pushes an Enter/Leave pair per recursion level; the
// recursion is unbounded, so some path exceeds the depth bound.
func DeepTrace(n int) {
	descend(n)
}

func descend(n int) {
	Enter()
	if n > 0 {
		descend(n - 1)
	}
	Leave()
}

// NegativeDone calls Done more often than Add provided: the WaitGroup
// counter would go negative ("sync: negative WaitGroup counter").
func NegativeDone() {
	var wg2 sync.WaitGroup
	wg2.Add(1)
	work()
	wg2.Done()
	wg2.Done()
}
