package demo

import "os"

// ReadConfig leaks the opened file on the success path.
func ReadConfig() {
	f, err := os.Open("config")
	if err != nil {
		return
	}
	parse(f)
}

// QueryUsers leaks the sql.Rows when use() is reached.
func QueryUsers(db DB) {
	rows, err := db.Query("select id from users")
	if err != nil {
		return
	}
	use(rows)
}

// CopyFile is clean: both files are closed on every path.
func CopyFile() {
	src, _ := os.Open("a")
	defer src.Close()
	dst, _ := os.Create("b")
	defer dst.Close()
	transfer(dst, src)
}

func parse(f File)       {}
func use(rows Rows)      {}
func transfer(d, s File) {}

// DB, File and Rows stand in for the real database/sql and os types.
type DB struct{}
type File struct{}
type Rows struct{}
