package demo

import "sync"

var mu sync.Mutex

// LockTwice double-locks mu through a cross-file helper.
func LockTwice() {
	mu.Lock()
	helperLock()
	mu.Unlock()
}

// SuppressedUnlock misuses mu but is suppressed for doublelock.
func SuppressedUnlock() {
	mu.Unlock() //rasc:ignore=doublelock
}
