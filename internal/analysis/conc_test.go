package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rasc/internal/gosrc"
)

func loadRaceCorpus(t *testing.T) *Package {
	t.Helper()
	pkg, err := LoadPaths([]string{"testdata/race"})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func analyzeRace(t *testing.T, pkg *Package, parallel int) *Report {
	t.Helper()
	race, _ := Get("race")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{race}, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRaceCheckerSeededRace: the seeded two-goroutine race on counter is
// reported with a witness trace per goroutine; the mutex-guarded total
// is not reported.
func TestRaceCheckerSeededRace(t *testing.T) {
	rep := analyzeRace(t, loadRaceCorpus(t), 0)
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %+v, want exactly the counter race", rep.Diagnostics)
	}
	d := rep.Diagnostics[0]
	if d.Checker != "race" || d.Label != "counter" || d.Severity != SeverityError {
		t.Fatalf("diagnostic = %+v", d)
	}
	if len(d.Trace) == 0 || len(d.SecondTrace) == 0 {
		t.Fatalf("race finding needs two witness traces, got %d and %d hops", len(d.Trace), len(d.SecondTrace))
	}
	// The first trace stays in main; the second must enter the spawned
	// goroutine's body.
	entered := false
	for _, tp := range d.SecondTrace {
		if tp.Enter && tp.Fn == "update" {
			entered = true
		}
	}
	if !entered {
		t.Errorf("second trace must enter the spawned goroutine: %+v", d.SecondTrace)
	}
	for _, d := range rep.Diagnostics {
		if d.Label == "total" {
			t.Error("mutex-guarded variable must not be reported")
		}
	}
}

// TestRaceCheckerGuarded: once every counter access is guarded by the
// same mutex, the checker reports nothing.
func TestRaceCheckerGuarded(t *testing.T) {
	src := `package p

import "sync"

var mu sync.Mutex
var counter int

func main() {
	go update()
	mu.Lock()
	counter = 1
	mu.Unlock()
}

func update() {
	mu.Lock()
	counter++
	mu.Unlock()
}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "g.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeRace(t, pkg, 0)
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("guarded program must be race-free, got %+v", rep.Diagnostics)
	}
}

// TestRaceCheckerRWLock: two RLock-protected reads do not exclude each
// other, but they do not race either (no write); a write under Lock
// against a read under RLock of the same lock is protected.
func TestRaceCheckerRWLock(t *testing.T) {
	src := `package p

import "sync"

var mu sync.RWMutex
var state int

func main() {
	go reader()
	mu.Lock()
	state = 1
	mu.Unlock()
}

func reader() {
	mu.RLock()
	use(state)
	mu.RUnlock()
}

func use(v int) {}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "rw.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeRace(t, pkg, 0)
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("write under Lock vs read under RLock is protected, got %+v", rep.Diagnostics)
	}
	// Drop the writer's Lock: now the RLock does not protect the read.
	racy := strings.Replace(src, "\tmu.Lock()\n\tstate = 1\n\tmu.Unlock()", "\tstate = 1", 1)
	pkg2, err := LoadFiles([]gosrc.File{{Name: "rw.go", Src: racy}})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := analyzeRace(t, pkg2, 0)
	if len(rep2.Diagnostics) != 1 {
		t.Fatalf("unguarded write vs RLock read must race, got %+v", rep2.Diagnostics)
	}
}

// TestRaceCheckerSpawnInLoop: a goroutine spawned in a loop is
// multi-instance — two copies of its own write race with each other.
func TestRaceCheckerSpawnInLoop(t *testing.T) {
	src := `package p

var hits int

func main() {
	for i := 0; i < 10; i++ {
		go bump()
	}
}

func bump() {
	hits++
}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "loop.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeRace(t, pkg, 0)
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Label != "hits" {
		t.Fatalf("loop-spawned goroutine must race with itself, got %+v", rep.Diagnostics)
	}
}

// TestLockOrderChecker: AB in one goroutine and BA in another is an
// inversion; consistent order is not.
func TestLockOrderChecker(t *testing.T) {
	src := `package p

import "sync"

var a sync.Mutex
var b sync.Mutex

func main() {
	go backwards()
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func backwards() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "ord.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := Get("lockorder")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{lo}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %+v, want one inversion", rep.Diagnostics)
	}
	d := rep.Diagnostics[0]
	if d.Label != "a and b" || len(d.Trace) == 0 || len(d.SecondTrace) == 0 {
		t.Fatalf("inversion diagnostic = %+v", d)
	}

	consistent := strings.Replace(src, "\tb.Lock()\n\ta.Lock()\n\ta.Unlock()\n\tb.Unlock()",
		"\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()", 1)
	pkg2, err := LoadFiles([]gosrc.File{{Name: "ord.go", Src: consistent}})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Analyze(pkg2, Config{Checkers: []*Checker{lo}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Diagnostics) != 0 {
		t.Fatalf("consistent order must not be flagged, got %+v", rep2.Diagnostics)
	}
}

// TestChanCloseChecker: double close and send-after-close are flagged,
// per channel object.
func TestChanCloseChecker(t *testing.T) {
	src := `package p

func main() {
	ch := make(chan int)
	ok := make(chan int)
	ch <- 1
	close(ch)
	close(ch)
	ok <- 1
	close(ok)
}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "ch.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := Get("chanclose")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{cc}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Label != "ch" {
		t.Fatalf("diagnostics = %+v, want one double close of ch", rep.Diagnostics)
	}
}

// TestRWLockChecker: RUnlock with no read lock held is flagged; a
// matched pair is not.
func TestRWLockChecker(t *testing.T) {
	src := `package p

import "sync"

var mu sync.RWMutex
var other sync.RWMutex

func main() {
	other.RLock()
	other.RUnlock()
	mu.RUnlock()
}
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "rwl.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	rw, _ := Get("rwlock")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{rw}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Label != "mu" {
		t.Fatalf("diagnostics = %+v, want one unmatched RUnlock of mu", rep.Diagnostics)
	}
}

// TestRaceDeterministicParallel8: the race checker's report is
// byte-identical across repeated runs with -parallel 8.
func TestRaceDeterministicParallel8(t *testing.T) {
	pkg := loadRaceCorpus(t)
	var outs [][]byte
	for i := 0; i < 2; i++ {
		rep := analyzeRace(t, pkg, 8)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("race report differs across runs at parallel=8:\n%s\n---\n%s", outs[0], outs[1])
	}
}

// TestRaceGoldenJSON and TestRaceGoldenSARIF lock the seeded race's
// rendering — including both witness traces — into golden files.
func TestRaceGoldenJSON(t *testing.T) {
	rep := analyzeRace(t, loadRaceCorpus(t), 0)
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, buf.Bytes(), "testdata/race_report.json.golden")
}

func TestRaceGoldenSARIF(t *testing.T) {
	rep := analyzeRace(t, loadRaceCorpus(t), 0)
	var buf bytes.Buffer
	if err := rep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	// The race result must carry one codeFlow with two threadFlows.
	var log struct {
		Runs []struct {
			Results []struct {
				CodeFlows []struct {
					ThreadFlows []struct {
						Locations []struct{} `json:"locations"`
					} `json:"threadFlows"`
				} `json:"codeFlows"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("SARIF shape: %s", buf.Bytes())
	}
	cf := log.Runs[0].Results[0].CodeFlows
	if len(cf) != 1 || len(cf[0].ThreadFlows) != 2 {
		t.Fatalf("race result must have one codeFlow with two threadFlows, got %+v", cf)
	}
	goldenCompare(t, buf.Bytes(), "testdata/race_report.sarif.golden")
}

// TestFileIgnoreDirective: //rasc:ignore-file suppresses every finding
// in the file (optionally per checker).
func TestFileIgnoreDirective(t *testing.T) {
	base := `package p

import "sync"

var mu sync.Mutex

func main() {
	mu.Unlock()
}
`
	for _, tc := range []struct {
		name      string
		directive string
		want      int // surviving diagnostics
	}{
		{"bare", "//rasc:ignore-file\n", 0},
		{"named", "//rasc:ignore-file=doublelock\n", 0},
		{"other-checker", "//rasc:ignore-file=fileleak\n", 1},
		{"not-a-directive", "//rasc:ignore-filex\n", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := LoadFiles([]gosrc.File{{Name: "f.go", Src: tc.directive + base}})
			if err != nil {
				t.Fatal(err)
			}
			dl, _ := Get("doublelock")
			rep, err := Analyze(pkg, Config{Checkers: []*Checker{dl}})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Diagnostics) != tc.want {
				t.Errorf("diagnostics = %+v, want %d", rep.Diagnostics, tc.want)
			}
			if tc.want == 0 && rep.Suppressed != 1 {
				t.Errorf("suppressed = %d, want 1", rep.Suppressed)
			}
		})
	}
}

// TestSeverityThreshold covers HasFindingsAtLeast, the -fail-on logic.
func TestSeverityThreshold(t *testing.T) {
	r := &Report{Diagnostics: []Diagnostic{{Severity: SeverityWarning}}}
	if r.HasFindingsAtLeast(SeverityError) {
		t.Error("a warning is not at least an error")
	}
	if !r.HasFindingsAtLeast(SeverityWarning) || !r.HasFindingsAtLeast(SeverityNote) {
		t.Error("a warning satisfies the warning and note thresholds")
	}
}

// TestGithubRenderer checks the workflow-command format and escaping.
func TestGithubRenderer(t *testing.T) {
	r := &Report{Diagnostics: []Diagnostic{
		{Checker: "race", Severity: SeverityError, File: "a.go", Line: 7, Message: "bad 100%"},
		{Checker: "lockorder", Severity: SeverityWarning, File: "b.go", Line: 3, Message: "risky"},
	}}
	var buf bytes.Buffer
	if err := r.Github(&buf); err != nil {
		t.Fatal(err)
	}
	want := "::error file=a.go,line=7::race: bad 100%25\n::warning file=b.go,line=3::lockorder: risky\n"
	if buf.String() != want {
		t.Errorf("github output:\n%q\nwant:\n%q", buf.String(), want)
	}
}
