package analysis

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc/internal/snapshot"
)

// renderAll renders a report in every machine- and human-facing format
// (text, JSON, SARIF), with the cache telemetry dropped the way gocheck
// drops it before rendering. Byte equality of this string is the
// differential test's notion of "identical output".
func renderAll(t *testing.T, rep *Report) string {
	t.Helper()
	shadow := *rep
	shadow.Cache = nil
	var buf bytes.Buffer
	for _, render := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return shadow.Text(b) },
		func(b *bytes.Buffer) error { return shadow.JSON(b) },
		func(b *bytes.Buffer) error { return shadow.SARIF(b) },
	} {
		if err := render(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("\n----\n")
	}
	return buf.String()
}

// snapshotCorpusRun populates dir with a cached run over the full test
// corpus, strips the JSON result records so only the frozen skeleton
// snapshots remain, and returns a fresh-Package run that reconstructs
// every skeleton from bytes and re-solves every job on top of them.
func snapshotCorpusRun(t *testing.T, dir string, parallel int) *Report {
	t.Helper()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: true, Parallel: parallel}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".json"):
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		}
	}
	if snaps == 0 {
		t.Fatal("populate run wrote no skeleton snapshots")
	}
	rep, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: true, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The full-corpus differential: every checker over every root entry,
// with explain (provenance) on, must render byte-identically — text,
// JSON and SARIF — whether the constraint skeletons were built and
// solved live or reconstructed from frozen snapshots, at -parallel 1
// and 8 alike.
func TestSnapshotDifferentialFullCorpus(t *testing.T) {
	var want string
	for _, parallel := range []int{1, 8} {
		live, err := Analyze(loadCorpus(t), Config{Explain: true, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		liveOut := renderAll(t, live)
		if want == "" {
			want = liveOut
		} else if liveOut != want {
			t.Fatalf("parallel=%d: live run output depends on parallelism", parallel)
		}

		rep := snapshotCorpusRun(t, t.TempDir(), parallel)
		if rep.Cache.SkeletonHits == 0 || rep.Cache.SkeletonMisses != 0 {
			t.Fatalf("parallel=%d: snapshot run hits=%d misses=%d, want every skeleton decoded",
				parallel, rep.Cache.SkeletonHits, rep.Cache.SkeletonMisses)
		}
		if got := renderAll(t, rep); got != want {
			t.Fatalf("parallel=%d: snapshot-loaded skeletons changed the rendered output", parallel)
		}
	}
}

// Corrupt snapshots demote to a live skeleton build — counted and
// noted, findings unchanged, never a wrong report.
func TestSnapshotCorruptionDemotesToLiveBuild(t *testing.T) {
	live, err := Analyze(loadCorpus(t), Config{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, live)

	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: true}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		if strings.HasSuffix(e.Name(), ".json") {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Flip a payload byte without resealing: the container's SHA-256
		// catches it and the decoder classifies the file as corrupt.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.SkeletonCorrupt == 0 || rep.Cache.SkeletonHits != 0 {
		t.Fatalf("corrupt snapshots: hits=%d corrupt=%d, want 0 hits and corruption counted",
			rep.Cache.SkeletonHits, rep.Cache.SkeletonCorrupt)
	}
	noted := false
	for _, n := range rep.Cache.Notes {
		if strings.Contains(n, "skeleton snapshot") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("corruption must be noted: %v", rep.Cache.Notes)
	}
	if got := renderAll(t, rep); got != want {
		t.Fatal("corrupt snapshots changed the rendered output")
	}
	// The corrupt files were discarded; the next run rebuilds and
	// re-stores clean snapshots, then hits again.
	if _, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: true}); err != nil {
		t.Fatal(err)
	}
}

// Version-skewed snapshots (a future or past container format) demote
// to a live build as skew, not corruption, and change nothing.
func TestSnapshotVersionSkewDemotesToLiveBuild(t *testing.T) {
	live, err := Analyze(loadCorpus(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, live)

	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loadCorpus(t), Config{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		if strings.HasSuffix(e.Name(), ".json") {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(raw[4:], uint32(snapshot.FormatVersion+1))
		if err := os.WriteFile(path, snapshot.Reseal(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Analyze(loadCorpus(t), Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.SkeletonHits != 0 || rep.Cache.SkeletonMisses == 0 || rep.Cache.SkeletonCorrupt != 0 {
		t.Fatalf("skewed snapshots: hits=%d misses=%d corrupt=%d, want pure misses",
			rep.Cache.SkeletonHits, rep.Cache.SkeletonMisses, rep.Cache.SkeletonCorrupt)
	}
	noted := false
	for _, n := range rep.Cache.Notes {
		if strings.Contains(n, "format version") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("skew must be noted: %v", rep.Cache.Notes)
	}
	if got := renderAll(t, rep); got != want {
		t.Fatal("version-skewed snapshots changed the rendered output")
	}
}

// NoSkeletonSnapshots must suppress the snapshot tier entirely.
func TestSnapshotOptOut(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(loadCorpus(t), Config{Cache: cache, NoSkeletonSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.SkeletonHits != 0 || rep.Cache.SkeletonMisses != 0 {
		t.Fatalf("opted out but skeleton lookups ran: %+v", rep.Cache)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".snap") {
			t.Fatalf("opted out but snapshot %s was written", e.Name())
		}
	}
}
