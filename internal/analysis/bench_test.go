package analysis

import (
	"fmt"
	"runtime"
	"testing"

	"rasc/internal/gosrc"
	"rasc/internal/synth"
)

// benchPackage loads a synthetic multi-file Go package (benchgen-style
// corpus) once; jobs are (checker x root) pairs, one root per file.
func benchPackage(tb testing.TB, files int) *Package {
	tb.Helper()
	gen := synth.GenerateGo(synth.GoConfig{
		Seed:          7,
		Files:         files,
		FuncsPerFile:  6,
		StmtsPerFn:    25,
		UnsafePerFile: 2,
	})
	in := make([]gosrc.File, len(gen))
	for i, f := range gen {
		in[i] = gosrc.File{Name: f.Name, Src: f.Src}
	}
	pkg, err := LoadFiles(in)
	if err != nil {
		tb.Fatal(err)
	}
	return pkg
}

// BenchmarkDriver measures the whole-package analysis at worker-pool
// sizes 1 and GOMAXPROCS; the per-job solves are independent, so the
// parallel run should scale with cores.
func BenchmarkDriver(b *testing.B) {
	pkg := benchPackage(b, 8)
	pools := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pools = append(pools, n)
	} else {
		// Single-core machine: still exercise the pool path so the
		// comparison exists, even though no speedup is possible.
		pools = append(pools, 4)
	}
	for _, par := range pools {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Analyze(pkg, Config{Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Diagnostics) == 0 {
					b.Fatal("benchmark corpus must produce findings")
				}
			}
		})
	}
}
