// Persistent incremental-analysis cache. Results are content-addressed:
// every key bakes in the cache format version indirectly (checked per
// file), the checker-registry fingerprint, the solver options, and the
// transitive summary digest of the entry function (internal/ir), so a
// key can never resolve to a result computed from different analysis
// input. Invalidation is therefore free — an edit changes the summary
// digests of exactly the edited function's SCC and its transitive
// callers, their keys stop resolving, and only those entries re-solve;
// everything else is a hit.
//
// The on-disk format is deliberately dumb: one JSON file per record in a
// flat directory, each wrapped in an envelope carrying the format
// version and a SHA-256 of the body. Any defect — truncation, garbage,
// a failed integrity check, a version bump — demotes the record to a
// cache miss with a note; the cache never panics and never changes what
// a run reports (beyond the Report.Cache block).
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rasc/internal/core"
	"rasc/internal/obs"
	"rasc/internal/pdm"
	"rasc/internal/snapshot"
)

// CacheVersion is the on-disk format version. Bump it whenever the
// record schema or key derivation changes incompatibly; records written
// under another version read as misses (with a note), never as wrong
// results.
const CacheVersion = 1

// Cache is a handle on an on-disk result cache directory. It is safe for
// concurrent use by any number of Analyze runs.
type Cache struct {
	dir string

	mu    sync.Mutex
	notes []string
	noted map[string]bool
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: cache: %w", err)
	}
	return &Cache{dir: dir, noted: map[string]bool{}}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// note records a non-fatal cache incident (corrupt record, version
// skew, failed write) once per distinct message.
func (c *Cache) note(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.mu.Lock()
	if !c.noted[msg] {
		c.noted[msg] = true
		c.notes = append(c.notes, msg)
	}
	c.mu.Unlock()
}

func (c *Cache) takeNotes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.notes
	c.notes = nil
	c.noted = map[string]bool{}
	return out
}

// envelope wraps every on-disk record with an integrity check.
type envelope struct {
	Version int             `json:"version"`
	Sum     string          `json:"sum"` // hex SHA-256 of Body
	Body    json.RawMessage `json:"body"`
}

// loadStatus classifies one record lookup, for metric hooks. Every
// status except loadHit behaves as a miss.
type loadStatus int

const (
	loadHit loadStatus = iota
	loadAbsent
	loadCorrupt // decode, integrity-check or body failure
	loadSkew    // format version mismatch
	loadError   // unreadable file (permissions, I/O)
)

// load reads the record at path into out. A missing file is a silent
// miss; a corrupt or version-skewed file is a miss with a note (and a
// best-effort removal of corrupt files so they cannot keep tripping).
// The returned status distinguishes the miss causes for metrics; every
// caller treating it as a boolean compares against loadHit.
func (c *Cache) load(path string, out any) loadStatus {
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.note("cache: unreadable %s: %v", filepath.Base(path), err)
			return loadError
		}
		return loadAbsent
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		c.note("cache: corrupt record %s discarded: %v", filepath.Base(path), err)
		os.Remove(path)
		return loadCorrupt
	}
	if env.Version != CacheVersion {
		c.note("cache: record %s has format version %d, want %d; falling back to a cold solve",
			filepath.Base(path), env.Version, CacheVersion)
		return loadSkew
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.Sum {
		c.note("cache: record %s failed its integrity check; discarded", filepath.Base(path))
		os.Remove(path)
		return loadCorrupt
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		c.note("cache: record %s body undecodable; discarded: %v", filepath.Base(path), err)
		os.Remove(path)
		return loadCorrupt
	}
	return loadHit
}

// store writes a record atomically (temp file + rename). Failures are
// noted and otherwise ignored: a cache that cannot write degrades to a
// cache that never hits.
func (c *Cache) store(path string, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		c.note("cache: encoding %s: %v", filepath.Base(path), err)
		return
	}
	sum := sha256.Sum256(raw)
	env := envelope{Version: CacheVersion, Sum: hex.EncodeToString(sum[:]), Body: raw}
	enc, err := json.Marshal(env)
	if err != nil {
		c.note("cache: encoding %s: %v", filepath.Base(path), err)
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		c.note("cache: writing %s: %v", filepath.Base(path), err)
		return
	}
	_, werr := tmp.Write(enc)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.note("cache: writing %s: %v", filepath.Base(path), firstErr(werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.note("cache: writing %s: %v", filepath.Base(path), err)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CacheStats summarizes the cache's effect on one Analyze run.
type CacheStats struct {
	// Hits and Misses count content-key lookups (one per job, plus one
	// per entry with a property checker for the skeleton's base stats).
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// ResolvedFunctions counts the functions whose constraints were
	// actually (re-)solved this run: functions reachable from some missed
	// entry that had no valid up-to-date stamp. 0 on a fully warm run.
	ResolvedFunctions int `json:"resolved_functions"`
	// TotalFunctions is the package's function count, for context.
	TotalFunctions int `json:"total_functions"`
	// Resolved lists the re-solved functions' canonical names, sorted.
	Resolved []string `json:"resolved,omitempty"`
	// SkeletonHits counts entry skeletons reconstructed from a frozen
	// snapshot instead of a live build-and-solve; SkeletonMisses counts
	// skeleton builds that had no usable snapshot. Skeleton lookups are
	// deliberately not folded into Hits/Misses: those count result-record
	// lookups, and their hit rate is what the cache-effectiveness CI job
	// asserts on.
	SkeletonHits   int `json:"skeleton_hits,omitempty"`
	SkeletonMisses int `json:"skeleton_misses,omitempty"`
	// SkeletonCorrupt counts snapshots discarded by integrity or
	// structural validation (also counted in SkeletonMisses).
	SkeletonCorrupt int `json:"skeleton_corrupt,omitempty"`
	// Notes lists non-fatal cache incidents (corruption, version skew).
	Notes []string `json:"notes,omitempty"`
}

// HitRate returns hits/(hits+misses) in percent, 100 for an empty run.
func (s *CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 100
	}
	return 100 * float64(s.Hits) / float64(total)
}

// jobRecord is a cached raw job result: the pre-suppression diagnostics
// and the job's solver-stats delta. Suppression directives are applied
// afresh by every run's merge phase, so //rasc:ignore edits never
// require invalidation.
type jobRecord struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Stats       core.Stats   `json:"stats"`
}

// entryRecord caches an entry's skeleton base stats so warm runs can
// report identical solver totals without rebuilding the skeleton.
type entryRecord struct {
	Base core.Stats `json:"base"`
}

// fnRecord stamps one function's summary digest as solved under the
// session's registry/options: its presence means the cached results
// covering this function are up to date.
type fnRecord struct {
	Fn string `json:"fn"`
}

// cacheSession binds a Cache to one Analyze run: it pins the registry
// and options fingerprints, tracks hit/miss counters and computes the
// set of functions the run had to re-solve.
type cacheSession struct {
	c     *Cache
	pkg   *Package
	regFP string
	opts  string
	// optsRaw is opts without the explain marker: skeleton snapshots are
	// property-independent, so explain and non-explain runs share them.
	optsRaw string
	// coreOpts are the session's solver options, revalidated against the
	// options a snapshot was encoded under at decode time.
	coreOpts core.Options
	// snapshots enables the frozen-skeleton snapshot path (load before a
	// live BuildSkeleton, store after one).
	snapshots bool

	// metrics (nil OK) receives per-lookup hit/miss/corrupt/skew and
	// per-write store counts for job and entry records. Function-stamp
	// probes are not counted, matching CacheStats.
	metrics *obs.CacheMetrics
	// snapM (nil OK) receives skeleton-snapshot hit/miss/corrupt/skew
	// counts, byte volumes and encode/decode timings.
	snapM *obs.SnapshotMetrics

	hits, misses                      atomic.Int64
	skelHits, skelMisses, skelCorrupt atomic.Int64

	// stale[id] reports that function id had no valid stamp when the
	// session started (its summary changed, or the cache is cold).
	stale map[int]bool

	mu     sync.Mutex
	solved map[string]bool // entries some job actually solved
}

// session starts a cache session for one Analyze run. It stamps-checks
// every function up front so that re-solved accounting is independent
// of job scheduling. Explain runs key separately: cached records store
// diagnostics verbatim, and a record written without provenance must
// never satisfy a run that wants it (or vice versa). Non-explain keys
// are unchanged, so existing caches keep hitting.
func (c *Cache) session(pkg *Package, opts core.Options, explain bool, m *obs.CacheMetrics) *cacheSession {
	optKey := fmt.Sprintf("%+v", opts)
	if explain {
		optKey += " explain"
	}
	cs := &cacheSession{
		c:        c,
		pkg:      pkg,
		regFP:    registryFingerprint(),
		opts:     optKey,
		optsRaw:  fmt.Sprintf("%+v", opts),
		coreOpts: opts,
		metrics:  m,
		stale:    map[int]bool{},
		solved:   map[string]bool{},
	}
	for _, f := range pkg.Prog.Funcs {
		var rec fnRecord
		if c.load(cs.fnPath(f.ID), &rec) != loadHit || rec.Fn != f.Name {
			cs.stale[f.ID] = true
		}
	}
	return cs
}

// observe feeds one job/entry lookup's outcome into the metric bundle.
func (cs *cacheSession) observe(st loadStatus) {
	m := cs.metrics
	if m == nil {
		return
	}
	if st == loadHit {
		m.Hits.Inc()
		return
	}
	m.Misses.Inc()
	switch st {
	case loadCorrupt:
		m.Corrupt.Inc()
	case loadSkew:
		m.VersionSkew.Inc()
	}
}

// key derives a content key; kind separates the key spaces.
func (cs *cacheSession) key(kind string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nreg:%s\nopts:%s\n", kind, cs.regFP, cs.opts)
	for _, p := range parts {
		fmt.Fprintf(h, "%s\n", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// summaryOf returns the entry function's transitive summary digest.
func (cs *cacheSession) summaryOf(entry string) string {
	return cs.pkg.Prog.ByName[entry].Summary.String()
}

func (cs *cacheSession) jobPath(c *Checker, entry string) string {
	return filepath.Join(cs.c.dir,
		"job-"+cs.key("job", c.fingerprint(), "entry:"+entry, "sum:"+cs.summaryOf(entry))+".json")
}

func (cs *cacheSession) entryPath(entry string) string {
	return filepath.Join(cs.c.dir,
		"entry-"+cs.key("entry", "entry:"+entry, "sum:"+cs.summaryOf(entry))+".json")
}

func (cs *cacheSession) fnPath(id int) string {
	f := cs.pkg.Prog.Funcs[id]
	return filepath.Join(cs.c.dir,
		"fn-"+cs.key("fn", "fn:"+f.Name, "sum:"+f.Summary.String())+".json")
}

// loadJob looks one (checker, entry) job up.
func (cs *cacheSession) loadJob(c *Checker, entry string) ([]Diagnostic, core.Stats, bool) {
	var rec jobRecord
	st := cs.c.load(cs.jobPath(c, entry), &rec)
	cs.observe(st)
	if st != loadHit {
		cs.misses.Add(1)
		cs.mu.Lock()
		cs.solved[entry] = true
		cs.mu.Unlock()
		return nil, core.Stats{}, false
	}
	cs.hits.Add(1)
	return rec.Diagnostics, rec.Stats, true
}

// storeJob persists one solved job's raw result.
func (cs *cacheSession) storeJob(c *Checker, entry string, ds []Diagnostic, st core.Stats) {
	cs.c.store(cs.jobPath(c, entry), jobRecord{Diagnostics: ds, Stats: st})
	if cs.metrics != nil {
		cs.metrics.Stores.Inc()
	}
}

// loadEntry looks an entry's skeleton base stats up.
func (cs *cacheSession) loadEntry(entry string) (core.Stats, bool) {
	var rec entryRecord
	st := cs.c.load(cs.entryPath(entry), &rec)
	cs.observe(st)
	if st != loadHit {
		cs.misses.Add(1)
		return core.Stats{}, false
	}
	cs.hits.Add(1)
	return rec.Base, true
}

func (cs *cacheSession) storeEntry(entry string, base core.Stats) {
	cs.c.store(cs.entryPath(entry), entryRecord{Base: base})
	if cs.metrics != nil {
		cs.metrics.Stores.Inc()
	}
}

// skelPath derives the on-disk name of an entry's frozen-skeleton
// snapshot. The key bakes in everything the snapshot's validity depends
// on: the container format version, the checker-registry fingerprint
// (event callees shape skeleton construction), the solver options, and
// the entry's transitive summary digest — any code or configuration
// change moves the key, so a stale snapshot is an ordinary miss, never
// a wrong skeleton. Explain mode is deliberately absent: skeletons are
// property-independent, so both run flavors share one snapshot.
func (cs *cacheSession) skelPath(entry string) string {
	h := sha256.New()
	fmt.Fprintf(h, "skel\nv:%d\nreg:%s\nopts:%s\nentry:%s\nsum:%s\n",
		snapshot.FormatVersion, cs.regFP, cs.optsRaw, entry, cs.summaryOf(entry))
	return filepath.Join(cs.c.dir, "skel-"+hex.EncodeToString(h.Sum(nil))+".snap")
}

// loadSkeleton reconstructs entry's skeleton from its snapshot, if one
// exists and survives validation. Every failure demotes to a live build:
// a missing file is a silent miss, version skew is a counted miss with a
// note, and corruption (container integrity, structural validation, or
// a program/entry mismatch that the content key should have prevented)
// is a counted miss with a note and a best-effort removal.
func (cs *cacheSession) loadSkeleton(entry string) (*pdm.Skeleton, bool) {
	path := cs.skelPath(entry)
	m := cs.snapM
	miss := func() (*pdm.Skeleton, bool) {
		cs.skelMisses.Add(1)
		if m != nil {
			m.Misses.Inc()
		}
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			cs.c.note("cache: unreadable skeleton snapshot %s: %v", filepath.Base(path), err)
		}
		return miss()
	}
	t0 := time.Now()
	sk, err := pdm.LoadSkeleton(data, cs.pkg.Prog, entry, cs.coreOpts)
	if err != nil {
		if errors.Is(err, snapshot.ErrVersion) {
			cs.c.note("cache: skeleton snapshot %s has a different format version; falling back to a live build",
				filepath.Base(path))
			if m != nil {
				m.VersionSkew.Inc()
			}
			return miss()
		}
		cs.c.note("cache: corrupt skeleton snapshot %s discarded: %v", filepath.Base(path), err)
		os.Remove(path)
		cs.skelCorrupt.Add(1)
		if m != nil {
			m.Corrupt.Inc()
		}
		return miss()
	}
	cs.skelHits.Add(1)
	if m != nil {
		m.Hits.Inc()
		m.Bytes.Add(int64(len(data)))
		m.DecodeMs.Observe(time.Since(t0).Milliseconds())
	}
	return sk, true
}

// storeSkeleton serializes a freshly built skeleton beside the JSON
// result records (atomic temp-file + rename; the container carries its
// own SHA-256 and per-section CRCs, so no envelope is needed). Write
// failures degrade to a snapshot that never hits.
func (cs *cacheSession) storeSkeleton(entry string, sk *pdm.Skeleton) {
	t0 := time.Now()
	data := sk.Snapshot()
	encodeMs := time.Since(t0).Milliseconds()
	path := cs.skelPath(entry)
	tmp, err := os.CreateTemp(cs.c.dir, "tmp-*")
	if err != nil {
		cs.c.note("cache: writing %s: %v", filepath.Base(path), err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		cs.c.note("cache: writing %s: %v", filepath.Base(path), firstErr(werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		cs.c.note("cache: writing %s: %v", filepath.Base(path), err)
		return
	}
	if m := cs.snapM; m != nil {
		m.Stores.Inc()
		m.Bytes.Add(int64(len(data)))
		m.EncodeMs.Observe(encodeMs)
	}
}

// finish computes the run's CacheStats and writes the function stamps
// for everything the run solved.
func (cs *cacheSession) finish() *CacheStats {
	st := &CacheStats{
		Hits:            int(cs.hits.Load()),
		Misses:          int(cs.misses.Load()),
		TotalFunctions:  len(cs.pkg.Prog.Funcs),
		SkeletonHits:    int(cs.skelHits.Load()),
		SkeletonMisses:  int(cs.skelMisses.Load()),
		SkeletonCorrupt: int(cs.skelCorrupt.Load()),
	}
	cs.mu.Lock()
	solved := make([]string, 0, len(cs.solved))
	for e := range cs.solved {
		solved = append(solved, e)
	}
	cs.mu.Unlock()
	resolved := map[int]bool{}
	for _, e := range solved {
		for _, id := range cs.pkg.Prog.Reachable(e) {
			if cs.stale[id] {
				resolved[id] = true
			}
		}
	}
	for id := range resolved {
		st.Resolved = append(st.Resolved, cs.pkg.Prog.Funcs[id].Name)
		cs.c.store(cs.fnPath(id), fnRecord{Fn: cs.pkg.Prog.Funcs[id].Name})
	}
	sort.Strings(st.Resolved)
	st.ResolvedFunctions = len(st.Resolved)
	st.Notes = cs.c.takeNotes()
	return st
}
