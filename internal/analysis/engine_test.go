package analysis

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"rasc/internal/gosrc"
	"rasc/internal/obs"
)

// Two-file corpus: a.go holds a double-lock bug under Top, b.go a clean
// tree under Other, so edits can dirty either tree independently.
const engASrc = `package p

import "sync"

var mu sync.Mutex

func Top() { mid() }

func mid() { leaf() }

func leaf() {
	mu.Lock()
	mu.Lock() // BUG
}
`

const engBSrc = `package p

import "sync"

var mu2 sync.Mutex

func Other() { ok() }

func ok() {
	mu2.Lock()
	mu2.Unlock()
}
`

const engCSrc = `package p

func Third() { ok() }
`

// sortedFiles returns the file map as a name-sorted slice, the order
// both LoadPaths and the engine analyze in.
func sortedFiles(m map[string]string) []gosrc.File {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// insertion sort; the corpus is tiny
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	files := make([]gosrc.File, len(names))
	for i, n := range names {
		files[i] = gosrc.File{Name: n, Src: m[n]}
	}
	return files
}

// TestEngineDifferentialEditSequence drives a sequence of file deltas
// through one warm Engine and checks every step's report — rendered as
// text, JSON and SARIF, with and without -explain, at -parallel 1 and 8
// — byte-identical against a one-shot Analyze over the same sources.
//
// Run twice. Memory-only: the reference is a completely fresh one-shot,
// so the engine's memo and incremental re-lowering must be invisible.
// Disk-backed: the reference one-shot shares the engine's cache dir
// (running after it, fully warm), pinning the cross-layer contract that
// records the engine stores satisfy one-shot runs byte-for-byte and
// vice versa — the same guarantee the cache layer itself makes between
// two one-shot processes.
func TestEngineDifferentialEditSequence(t *testing.T) {
	type step struct {
		name    string
		upserts map[string]string
		removes []string
	}
	steps := []step{
		{name: "initial", upserts: map[string]string{"a.go": engASrc, "b.go": engBSrc}},
		{name: "fix-a", upserts: map[string]string{
			"a.go": strings.Replace(engASrc, "mu.Lock() // BUG", "mu.Unlock()", 1)}},
		{name: "break-b", upserts: map[string]string{
			"b.go": strings.Replace(engBSrc, "mu2.Unlock()", "mu2.Lock()", 1)}},
		{name: "add-c", upserts: map[string]string{"c.go": engCSrc}},
		{name: "remove-c", removes: []string{"c.go"}},
		{name: "restore-a-bug", upserts: map[string]string{"a.go": engASrc}},
	}

	for _, mode := range []string{"nocache", "diskcache"} {
		t.Run(mode, func(t *testing.T) {
			var cache *Cache
			if mode == "diskcache" {
				var err error
				if cache, err = OpenCache(t.TempDir()); err != nil {
					t.Fatal(err)
				}
			}
			eng := NewEngine(EngineConfig{Cache: cache})
			current := map[string]string{}

			for _, st := range steps {
				// Apply the delta locally to know the full set for the
				// fresh one-shot reference.
				for _, rm := range st.removes {
					delete(current, rm)
				}
				for name, src := range st.upserts {
					current[name] = src
				}

				first := true
				for _, parallel := range []int{1, 8} {
					for _, explain := range []bool{false, true} {
						req := CheckRequest{Parallel: parallel, Explain: explain}
						if first {
							// Only the first request of the step carries the
							// delta; the rest re-check the resident snapshot.
							for name, src := range st.upserts {
								req.Upserts = append(req.Upserts, gosrc.File{Name: name, Src: src})
							}
							req.Removes = st.removes
							first = false
						}
						got, err := eng.Check(req)
						if err != nil {
							t.Fatalf("%s: engine check: %v", st.name, err)
						}

						pkg, err := LoadFiles(sortedFiles(current))
						if err != nil {
							t.Fatal(err)
						}
						want, err := Analyze(pkg, Config{Parallel: parallel, Explain: explain, Cache: cache})
						if err != nil {
							t.Fatalf("%s: one-shot: %v", st.name, err)
						}
						label := st.name
						if explain {
							label += "/explain"
						}
						if parallel == 8 {
							label += "/par8"
						}
						if g, w := renderAll(t, got), renderAll(t, want); g != w {
							t.Errorf("%s: engine output differs from one-shot:\nengine:\n%s\none-shot:\n%s", label, g, w)
						}
					}
				}
			}

			es := eng.Stats()
			if es.Requests != int64(len(steps)*4) {
				t.Fatalf("engine served %d requests, want %d", es.Requests, len(steps)*4)
			}
			if es.Errors != 0 {
				t.Fatalf("engine recorded %d errors", es.Errors)
			}
			// The repeat requests inside each step must replay from the
			// in-memory memo, not re-solve.
			if es.MemoHits == 0 {
				t.Fatal("warm repeat requests never hit the job memo")
			}
		})
	}
}

// TestEngineConcurrentRequests hammers one Engine (shared disk cache,
// shared metrics registry) from many goroutines mixing check, explain,
// multi-program and stats traffic. Primarily a -race exercise for the
// engine's atomic accounting (CacheStats merging) and the per-program
// locking; it also asserts every concurrent report matches the
// single-threaded reference byte for byte.
func TestEngineConcurrentRequests(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineConfig{Cache: cache, Metrics: obs.NewRegistry()})

	full := []gosrc.File{{Name: "a.go", Src: engASrc}, {Name: "b.go", Src: engBSrc}}
	seed, err := eng.Check(CheckRequest{Upserts: full, Checkers: []string{"doublelock"}})
	if err != nil {
		t.Fatal(err)
	}
	wantPlain := findingsJSON(t, seed)
	seedEx, err := eng.Check(CheckRequest{Checkers: []string{"doublelock"}, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	wantExplain := findingsJSON(t, seedEx)

	const workers = 16
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := CheckRequest{Checkers: []string{"doublelock"}}
				want := wantPlain
				switch w % 4 {
				case 1:
					req.Explain = true
					want = wantExplain
				case 2:
					// A second resident program exercises create/evict paths
					// and cross-program cache sharing.
					req.Program = "alt"
					req.Upserts = full
					req.Reset = true
				case 3:
					// Stats and Programs must be callable mid-flight.
					eng.Stats()
					eng.Programs()
				}
				rep, err := eng.Check(req)
				if err != nil {
					errc <- err
					continue
				}
				if got := findingsJSON(t, rep); got != want {
					t.Errorf("worker %d iter %d: report diverged:\ngot:  %s\nwant: %s", w, i, got, want)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := eng.Stats()
	wantReqs := int64(2 + workers*iters)
	if st.Requests != wantReqs {
		t.Fatalf("requests = %d, want %d", st.Requests, wantReqs)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d, want 0", st.Errors)
	}
	// Every warm request replays; the engine-wide accumulation must have
	// seen traffic from both the memo and the per-request sessions.
	if st.MemoHits == 0 && st.CacheHits == 0 {
		t.Fatal("no hit traffic recorded across concurrent requests")
	}
}

// TestEngineEviction caps the memory budget below two resident
// programs, checks three, and expects LRU eviction plus a correct
// re-check of an evicted program once its full set is pushed again.
func TestEngineEviction(t *testing.T) {
	full := []gosrc.File{{Name: "a.go", Src: engASrc}, {Name: "b.go", Src: engBSrc}}
	pkg, err := LoadFiles(full)
	if err != nil {
		t.Fatal(err)
	}
	budget := estimateCost(pkg) + estimateCost(pkg)/2 // fits one, not two
	eng := NewEngine(EngineConfig{MemoryBudget: budget})

	for _, name := range []string{"p1", "p2", "p3"} {
		if _, err := eng.Check(CheckRequest{Program: name, Upserts: full, Checkers: []string{"doublelock"}}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st := eng.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under budget %d: %+v", budget, st)
	}
	if st.ResidentPrograms >= 3 {
		t.Fatalf("all programs still resident: %+v", st)
	}

	// A delta-only request against the evicted program must fail loudly
	// (its file set is gone) ...
	if _, err := eng.Check(CheckRequest{Program: "p1", Checkers: []string{"doublelock"}}); err == nil {
		t.Fatal("delta request against an evicted program succeeded")
	}
	// ... and a full re-push must answer correctly again.
	rep, err := eng.Check(CheckRequest{Program: "p1", Upserts: full, Reset: true, Checkers: []string{"doublelock"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Checker != "doublelock" {
		t.Fatalf("re-pushed program reported %+v", rep.Diagnostics)
	}
}

// TestEngineBadDeltaDoesNotPoison: a delta that fails to parse returns
// an error and leaves the resident snapshot untouched; subsequent
// requests keep answering from the last good state.
func TestEngineBadDeltaDoesNotPoison(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	full := []gosrc.File{{Name: "a.go", Src: engASrc}, {Name: "b.go", Src: engBSrc}}
	good, err := eng.Check(CheckRequest{Upserts: full, Checkers: []string{"doublelock"}})
	if err != nil {
		t.Fatal(err)
	}
	want := findingsJSON(t, good)

	if _, err := eng.Check(CheckRequest{
		Upserts:  []gosrc.File{{Name: "a.go", Src: "package p\nfunc broken( {"}},
		Checkers: []string{"doublelock"},
	}); err == nil {
		t.Fatal("parse-error delta did not fail")
	}

	rep, err := eng.Check(CheckRequest{Checkers: []string{"doublelock"}})
	if err != nil {
		t.Fatalf("re-check after failed delta: %v", err)
	}
	if got := findingsJSON(t, rep); got != want {
		t.Fatalf("failed delta poisoned the resident state:\ngot:  %s\nwant: %s", got, want)
	}

	st := eng.Stats()
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

// TestEngineUnknownChecker: name resolution fails before any state
// mutates.
func TestEngineUnknownChecker(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	_, err := eng.Check(CheckRequest{
		Upserts:  []gosrc.File{{Name: "a.go", Src: engASrc}},
		Checkers: []string{"nosuchchecker"},
	})
	if err == nil || !strings.Contains(err.Error(), "nosuchchecker") {
		t.Fatalf("err = %v, want unknown-checker error", err)
	}
	// Whether or not a program record exists after the failed request,
	// none may hold an analyzed snapshot.
	for _, p := range eng.Programs() {
		if p.Files != 0 {
			t.Fatalf("failed request left an analyzed snapshot: %+v", eng.Programs())
		}
	}
}

// TestEngineStatsJSONSchema pins the EngineStats wire names the metrics
// endpoint and obslint depend on.
func TestEngineStatsJSONSchema(t *testing.T) {
	b, err := json.Marshal(EngineStats{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "errors", "evictions", "resident_programs",
		"memo_hits", "memo_misses", "memo_entries",
		"cache_hits", "cache_misses", "resolved_functions",
		"skeleton_hits", "skeleton_misses",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("EngineStats JSON lacks %q (got %s)", key, b)
		}
	}
}
