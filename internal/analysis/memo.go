package analysis

import (
	"sync"
	"sync/atomic"

	"rasc/internal/core"
	"rasc/internal/obs"
)

// jobMemo is the in-memory analogue of the on-disk result cache: raw
// (pre-suppression) per-job diagnostics and entry base stats, keyed by
// the disk cache's content coordinates — checker registry fingerprint,
// solver options (with the explain marker), checker fingerprint, entry
// name and the entry's transitive summary digest — plus the
// whole-program digest (see memoKey.prog), which makes memo replays
// byte-identical to fresh solves. Because every key pins the full
// analysis input, a memo entry can never resolve to a result computed
// from different code, options or checker definitions; the memo
// therefore needs no invalidation — an edit moves the program digest
// and old keys simply stop resolving.
//
// The memo lives on an Engine and is shared by every resident program
// and request: content addressing makes cross-program sharing sound.
// Lookups and stores are mutex-guarded; capacity is bounded by a FIFO
// over insertion order (content keys have no useful recency structure —
// a stale summary never hits again regardless of eviction order).
type jobMemo struct {
	mu      sync.Mutex
	max     int
	entries map[memoKey]memoVal
	order   []memoKey

	hits, misses atomic.Int64
	m            *obs.ServerMetrics // nil-safe instruments
}

type memoKey struct {
	kind    string // "job" or "entry"
	regFP   string
	opts    string
	checker string // checker fingerprint; "" for entry records
	entry   string
	summary string
	// prog is the whole-program digest. Skeleton construction allocates
	// a constraint variable per CFG node of the entire program and the
	// property layer adds edges at every deferred call site, reachable
	// from the entry or not — so both entry base stats and per-job solver
	// deltas are pinned by global program shape, not by the entry's
	// summary alone. Including prog makes a memo replay byte-identical to
	// a fresh solve, which the summary-keyed disk records deliberately
	// are not (they trade exact solver-size telemetry for cross-edit
	// incrementality; findings are summary-determined either way).
	prog string
}

type memoVal struct {
	ds    []Diagnostic
	stats core.Stats
	base  core.Stats
}

// defaultMemoEntries bounds the memo when EngineConfig leaves it unset:
// enough for dozens of warm programs, small next to the program state
// itself (a record is one job's diagnostics).
const defaultMemoEntries = 8192

func newJobMemo(max int, m *obs.ServerMetrics) *jobMemo {
	if max <= 0 {
		max = defaultMemoEntries
	}
	return &jobMemo{max: max, entries: map[memoKey]memoVal{}, m: m}
}

func (jm *jobMemo) load(k memoKey) (memoVal, bool) {
	jm.mu.Lock()
	v, ok := jm.entries[k]
	jm.mu.Unlock()
	if ok {
		jm.hits.Add(1)
		if jm.m != nil {
			jm.m.MemoHits.Inc()
		}
	} else {
		jm.misses.Add(1)
		if jm.m != nil {
			jm.m.MemoMisses.Inc()
		}
	}
	return v, ok
}

func (jm *jobMemo) store(k memoKey, v memoVal) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if _, ok := jm.entries[k]; !ok {
		for len(jm.order) >= jm.max {
			drop := jm.order[0]
			jm.order = jm.order[1:]
			delete(jm.entries, drop)
		}
		jm.order = append(jm.order, k)
	}
	jm.entries[k] = v
}

// loadJob / storeJob mirror cacheSession.loadJob/storeJob in memory,
// with the whole-program digest added to the key (see memoKey.prog).
func (jm *jobMemo) loadJob(regFP, opts, prog, checkerFP, entry, summary string) ([]Diagnostic, core.Stats, bool) {
	v, ok := jm.load(memoKey{kind: "job", regFP: regFP, opts: opts, checker: checkerFP, entry: entry, summary: summary, prog: prog})
	return v.ds, v.stats, ok
}

func (jm *jobMemo) storeJob(regFP, opts, prog, checkerFP, entry, summary string, ds []Diagnostic, st core.Stats) {
	jm.store(memoKey{kind: "job", regFP: regFP, opts: opts, checker: checkerFP, entry: entry, summary: summary, prog: prog},
		memoVal{ds: ds, stats: st})
}

// loadEntry / storeEntry mirror the skeleton base-stats records,
// likewise program-digest keyed.
func (jm *jobMemo) loadEntry(regFP, opts, prog, entry, summary string) (core.Stats, bool) {
	v, ok := jm.load(memoKey{kind: "entry", regFP: regFP, opts: opts, entry: entry, summary: summary, prog: prog})
	return v.base, ok
}

func (jm *jobMemo) storeEntry(regFP, opts, prog, entry, summary string, base core.Stats) {
	jm.store(memoKey{kind: "entry", regFP: regFP, opts: opts, entry: entry, summary: summary, prog: prog},
		memoVal{base: base})
}

// lazySession defers cacheSession construction to the first lookup
// that actually needs disk: session setup stamps every function in the
// program against the cache directory, which is pure overhead for a
// request the in-memory memo can serve outright. Nil-safe — a nil
// *lazySession (no cache configured) gets and reports nil sessions.
type lazySession struct {
	once sync.Once
	mk   func() *cacheSession
	cs   *cacheSession
}

// get materializes (once) and returns the session.
func (l *lazySession) get() *cacheSession {
	if l == nil {
		return nil
	}
	l.once.Do(func() { l.cs = l.mk() })
	return l.cs
}

// made returns the session only if some caller already materialized
// it. Callers must be ordered after every get() site (the driver calls
// it after its worker WaitGroup), so the plain read is safe.
func (l *lazySession) made() *cacheSession {
	if l == nil {
		return nil
	}
	return l.cs
}

func (jm *jobMemo) len() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return len(jm.entries)
}
