package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc/internal/gosrc"
	"rasc/internal/spec"
)

// countingCheckerNames are the bounded-counter checkers, with the
// counter-valuation marker their provenance annotations must carry
// (product state names render as "S·c=2", "S·held>=5", …).
var countingCheckerNames = map[string]string{
	"semabalance":  "·acq-rel",
	"lockbalance":  "·lk-un",
	"poolexchange": "·tk-gv",
	"poolexhaust":  "·held",
	"depthbound":   "·depth",
	"waitgroup":    "·c",
}

func countingCheckers(t *testing.T) []*Checker {
	t.Helper()
	cs, err := Resolve("semabalance,lockbalance,poolexchange,poolexhaust,depthbound,waitgroup")
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestExplainCountingProvenance checks that -explain derivation chains
// on counting findings actually show the counter valuation: every
// finding must have at least one provenance hop whose annotation names
// the checker's counter (e.g. "S·c=1" on a semabalance chain).
func TestExplainCountingProvenance(t *testing.T) {
	rep, err := Analyze(loadCorpus(t), Config{Checkers: countingCheckers(t), Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range rep.Diagnostics {
		marker := countingCheckerNames[d.Checker]
		if marker == "" {
			t.Errorf("unexpected checker %q in counting-only run", d.Checker)
			continue
		}
		seen[d.Checker] = true
		found := false
		for _, ps := range d.Provenance {
			if strings.Contains(ps.Annot, marker) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s finding at %s:%d: no provenance hop carries the counter marker %q",
				d.Checker, d.File, d.Line, marker)
		}
	}
	for name := range countingCheckerNames {
		if !seen[name] {
			t.Errorf("corpus produced no %s finding to check", name)
		}
	}
}

// TestCountingCacheColdWarmIdentical runs the counting checkers cold
// (populating a fresh cache) and warm (fully cached) and requires
// byte-identical reports: the counter bound lives in the spec source,
// which is part of the cache key, so a cached record can never cross a
// bound change.
func TestCountingCacheColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func() []byte {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(loadCorpus(t), Config{Checkers: countingCheckers(t), Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diagnostics) == 0 {
			t.Fatal("counting run produced no findings")
		}
		rep.Cache = nil
		var buf bytes.Buffer
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cold := run()
	warm := run()
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm counting report differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

// TestRelationalFewerMayVerdicts is the end-to-end form of the
// relational precision claim: on a burst of five balanced
// acquire/release pairs — deeper than the v1 counter's bound of 4 —
// the independent-counter baseline saturates and may-reports an
// unbalanced exit, while the relational semabalance tracks the
// difference exactly, verifies the function, and reports nothing.
// Both still report the genuinely unbalanced function, definitely.
func TestRelationalFewerMayVerdicts(t *testing.T) {
	dir := t.TempDir()
	src := `package diffdemo

func BurstBalanced() {
	sem.Acquire(ctx, 1)
	sem.Acquire(ctx, 1)
	sem.Acquire(ctx, 1)
	sem.Acquire(ctx, 1)
	sem.Acquire(ctx, 1)
	work()
	sem.Release(1)
	sem.Release(1)
	sem.Release(1)
	sem.Release(1)
	sem.Release(1)
}

func BurstHold(n int) {
	sem.Acquire(ctx, 1)
	if n > 0 {
		return
	}
	sem.Release(1)
}
`
	if err := os.WriteFile(filepath.Join(dir, "burst.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPaths([]string{dir})
	if err != nil {
		t.Fatal(err)
	}

	relational, err := Resolve("semabalance")
	if err != nil {
		t.Fatal(err)
	}
	indep := &Checker{
		Name:        "semabalance-indep",
		Doc:         "v1 single-counter baseline for the relational semabalance",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		Spec:        gosrc.SemaBalanceIndepSpecSrc,
		NewProperty: func() *spec.Property { return spec.MustCompile(gosrc.SemaBalanceIndepSpecSrc) },
		NewEvents:   gosrc.SemaBalanceEvents,
		Message:     "semaphore %s: acquires and releases may be unbalanced when the entry function returns",
	}

	findings := func(cs []*Checker) map[string]bool {
		rep, err := Analyze(pkg, Config{Checkers: cs})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, d := range rep.Diagnostics {
			out[d.Entry] = d.May
		}
		return out
	}

	rel := findings(relational)
	base := findings([]*Checker{indep})

	if may, ok := base["BurstBalanced"]; !ok || !may {
		t.Errorf("independent baseline on BurstBalanced = (reported=%v, may=%v), want a may finding", ok, may)
	}
	if _, ok := rel["BurstBalanced"]; ok {
		t.Error("relational semabalance reported the balanced burst; the joint tracker should verify it")
	}
	for name, fs := range map[string]map[string]bool{"relational": rel, "independent": base} {
		if may, ok := fs["BurstHold"]; !ok || may {
			t.Errorf("%s on BurstHold = (reported=%v, may=%v), want a definite finding", name, ok, may)
		}
	}
	if len(rel) >= len(base) {
		t.Errorf("relational findings = %d, independent = %d; want strictly fewer may-verdicts", len(rel), len(base))
	}
}

// TestCountingDeterministicAcrossPoolSizes requires the counting
// checkers to render byte-identical reports at 1 and 8 workers.
func TestCountingDeterministicAcrossPoolSizes(t *testing.T) {
	one := analyzeJSON(t, loadCorpus(t), Config{Checkers: countingCheckers(t), Parallel: 1})
	eight := analyzeJSON(t, loadCorpus(t), Config{Checkers: countingCheckers(t), Parallel: 8})
	if !bytes.Equal(one, eight) {
		t.Errorf("parallel=8 counting report differs from parallel=1:\n1:\n%s\n8:\n%s", one, eight)
	}
}
