package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"

	"rasc/internal/gosrc"
	"rasc/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("expected >= 5 built-in checkers, got %d", len(all))
	}
	for _, name := range []string{"doublelock", "fileleak", "taint", "sqlrows", "waitgroup"} {
		if _, ok := Get(name); !ok {
			t.Errorf("checker %s not registered", name)
		}
	}
	got, err := Resolve("doublelock,fileleak")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "doublelock" || got[1].Name != "fileleak" {
		t.Errorf("Resolve = %v", got)
	}
	if _, err := Resolve("nosuch"); err == nil {
		t.Error("unknown checker must error")
	}
	if all2, err := Resolve("all"); err != nil || len(all2) != len(all) {
		t.Errorf("Resolve(all) = %v, %v", all2, err)
	}
}

func loadCorpus(t *testing.T) *Package {
	t.Helper()
	pkg, err := LoadPaths([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestDriverOnCorpus(t *testing.T) {
	pkg := loadCorpus(t)
	if len(pkg.Files) < 3 {
		t.Fatalf("corpus must span >= 3 files, got %d", len(pkg.Files))
	}
	rep, err := Analyze(pkg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(All())*len(pkg.Roots()) {
		t.Errorf("jobs = %d, want checkers x roots = %d", rep.Jobs, len(All())*len(pkg.Roots()))
	}
	// One finding per injected bug, across >= 2 checkers and >= 2 files.
	byChecker := map[string]int{}
	byFile := map[string]bool{}
	for _, d := range rep.Diagnostics {
		byChecker[d.Checker]++
		byFile[d.File] = true
	}
	// The counting family: semabalance/poolexhaust/depthbound flag their
	// unbalanced corpus cases (the balanced twins stay clean), and the
	// counting waitgroup adds the negative-counter case to the original
	// Add-after-Wait one. The relational pair: poolexchange flags the
	// hoarding loop, and lockbalance the suppressed-for-doublelock
	// over-unlock (its difference tracker fails on Unlock-before-Lock).
	want := map[string]int{
		"doublelock": 1, "fileleak": 1, "sqlrows": 1, "waitgroup": 2,
		"semabalance": 1, "poolexhaust": 1, "depthbound": 1,
		"lockbalance": 1, "poolexchange": 1,
	}
	if !reflect.DeepEqual(byChecker, want) {
		t.Errorf("findings by checker = %v, want %v", byChecker, want)
	}
	if len(byFile) < 2 {
		t.Errorf("findings span %d files, want >= 2", len(byFile))
	}
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (//rasc:ignore=doublelock)", rep.Suppressed)
	}
	// The cross-file double lock must carry an interprocedural trace
	// ending in the helper's file.
	var dl *Diagnostic
	for i := range rep.Diagnostics {
		if rep.Diagnostics[i].Checker == "doublelock" {
			dl = &rep.Diagnostics[i]
		}
	}
	if dl == nil || !strings.HasSuffix(dl.File, "util.go") || dl.Label != "mu" {
		t.Fatalf("doublelock diagnostic = %+v", dl)
	}
	entered := false
	for _, tp := range dl.Trace {
		if tp.Enter {
			entered = true
		}
	}
	if !entered {
		t.Error("cross-file trace must record the call entry hop")
	}
}

func TestDriverDeterministicAcrossPoolSizes(t *testing.T) {
	pkg := loadCorpus(t)
	var reports []*Report
	for _, par := range []int{1, 4} {
		rep, err := Analyze(pkg, Config{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	a, _ := json.Marshal(reports[0])
	b, _ := json.Marshal(reports[1])
	if !bytes.Equal(a, b) {
		t.Error("report differs between parallel=1 and parallel=4")
	}
}

// The shared-skeleton reuse layer must not introduce scheduling
// dependence: a synthetic multi-file corpus analyzed with a fresh
// package per pool size (so each run builds the skeleton cache under
// its own concurrency) yields byte-identical reports at parallel 1 and 8.
func TestDriverDeterministicOnSynthCorpus(t *testing.T) {
	gen := synth.GenerateGo(synth.GoConfig{
		Seed: 11, Files: 4, FuncsPerFile: 4, StmtsPerFn: 18,
		UnsafePerFile: 2, Racy: true,
	})
	files := make([]gosrc.File, len(gen))
	for i, f := range gen {
		files[i] = gosrc.File{Name: f.Name, Src: f.Src}
	}
	var reports [][]byte
	for _, par := range []int{1, 8} {
		pkg, err := LoadFiles(files)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(pkg, Config{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diagnostics) == 0 {
			t.Fatal("synthetic corpus produced no findings; corpus too weak to test determinism")
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("report differs between parallel=1 and parallel=8 on the synthetic corpus")
	}
}

func TestSuppressionVariants(t *testing.T) {
	src := `package p

import "sync"

var mu sync.Mutex

func A() { mu.Unlock() } //rasc:ignore
func B() { mu.Unlock() } //rasc:ignore=doublelock
func C() { mu.Unlock() } //rasc:ignore=fileleak
func D() { mu.Unlock() }
`
	pkg, err := LoadFiles([]gosrc.File{{Name: "s.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	dl, _ := Get("doublelock")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{dl}})
	if err != nil {
		t.Fatal(err)
	}
	// A and B are suppressed; C names the wrong checker; D is plain.
	if rep.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", rep.Suppressed)
	}
	var lines []int
	for _, d := range rep.Diagnostics {
		lines = append(lines, d.Line)
	}
	if len(lines) != 2 || lines[0] != 9 || lines[1] != 10 {
		t.Errorf("diagnostic lines = %v, want [9 10]", lines)
	}
	// KeepSuppressed retains them for reporting.
	rep2, err := Analyze(pkg, Config{Checkers: []*Checker{dl}, KeepSuppressed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Diagnostics) != 4 || rep2.Suppressed != 2 {
		t.Errorf("KeepSuppressed: %d diags, %d suppressed", len(rep2.Diagnostics), rep2.Suppressed)
	}
}

func TestEntriesOverrideAndErrors(t *testing.T) {
	pkg := loadCorpus(t)
	dl, _ := Get("doublelock")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{dl}, Entries: []string{"LockTwice"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 1 || len(rep.Diagnostics) != 1 {
		t.Errorf("jobs = %d, diags = %d", rep.Jobs, len(rep.Diagnostics))
	}
	if _, err := Analyze(pkg, Config{Entries: []string{"NoSuchFn"}}); err == nil {
		t.Error("undefined entry must error")
	}
	if _, err := LoadPaths([]string{"testdata/does-not-exist"}); err == nil {
		t.Error("missing path must error")
	}
}

func TestRoots(t *testing.T) {
	pkg := loadCorpus(t)
	roots := pkg.Roots()
	want := []string{"Broadcast", "CopyFile", "DeepTrace", "ExchangeBalanced", "ExchangeHoard",
		"LockTwice", "NegativeDone", "NestShallow", "PoolBalanced", "PoolSpike",
		"QueryUsers", "ReadConfig", "SemBalanced", "SemHold", "SuppressedUnlock"}
	if !reflect.DeepEqual(roots, want) {
		t.Errorf("roots = %v, want %v", roots, want)
	}
}

func goldenCompare(t *testing.T, got []byte, path string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s", path, got)
	}
}

func TestGoldenJSON(t *testing.T) {
	pkg := loadCorpus(t)
	rep, err := Analyze(pkg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The report must round-trip as JSON.
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	goldenCompare(t, buf.Bytes(), "testdata/report.json.golden")
}

func TestGoldenSARIF(t *testing.T) {
	pkg := loadCorpus(t)
	rep, err := Analyze(pkg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	// Structural SARIF sanity: versioned log, one run, rule per checker,
	// every result's ruleId declared.
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF shape: version=%s runs=%d", log.Version, len(log.Runs))
	}
	rules := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, res := range log.Runs[0].Results {
		if !rules[res.RuleID] {
			t.Errorf("result rule %q not declared", res.RuleID)
		}
		if len(res.Locations) == 0 || res.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result %q lacks a positioned location", res.RuleID)
		}
	}
	goldenCompare(t, buf.Bytes(), "testdata/report.sarif.golden")
}

func TestTextRenderer(t *testing.T) {
	pkg := loadCorpus(t)
	rep, err := Analyze(pkg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Text(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"doublelock", "fileleak", "1 suppressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestHasFindings(t *testing.T) {
	r := &Report{}
	if r.HasFindings() {
		t.Error("empty report has no findings")
	}
	r.Diagnostics = []Diagnostic{{Severity: SeverityNote}}
	if r.HasFindings() {
		t.Error("notes alone are not findings")
	}
	r.Diagnostics = append(r.Diagnostics, Diagnostic{Severity: SeverityWarning})
	if !r.HasFindings() {
		t.Error("warnings are findings")
	}
}
