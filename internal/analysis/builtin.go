package analysis

import (
	"rasc/internal/bitvector"
	"rasc/internal/gosrc"
)

// The built-in checker suite: the Go-facing properties already in the
// toolkit (doublelock, fileleak, taint) plus the sql.Rows and
// sync.WaitGroup typestate checkers.
func init() {
	Register(&Checker{
		Name:        "doublelock",
		Doc:         "sync.Mutex locked while held, or unlocked while not held",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		NewProperty: gosrc.DoubleLockProperty,
		NewEvents:   gosrc.DoubleLockEvents,
		Message:     "mutex %s locked while already held (or unlocked while not held)",
	})
	Register(&Checker{
		Name:        "fileleak",
		Doc:         "file opened with os.Open/OpenFile/Create possibly not closed",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		NewProperty: gosrc.FileLeakProperty,
		NewEvents:   gosrc.FileLeakEvents,
		Message:     "file %s possibly still open when the entry function returns",
	})
	Register(&Checker{
		Name:        "taint",
		Doc:         "value from source() reaches sink() without sanitize()",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		NewProperty: bitvector.TaintProperty,
		NewEvents:   bitvector.TaintEvents,
		Message:     "tainted value %s reaches a sink unsanitized",
	})
	Register(&Checker{
		Name:        "sqlrows",
		Doc:         "sql.Rows from Query/QueryContext possibly not closed",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		NewProperty: gosrc.SQLRowsProperty,
		NewEvents:   gosrc.SQLRowsEvents,
		Message:     "rows %s possibly still open when the entry function returns",
	})
	Register(&Checker{
		Name:        "waitgroup",
		Doc:         "sync.WaitGroup.Add called after Wait has started",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		NewProperty: gosrc.WaitGroupProperty,
		NewEvents:   gosrc.WaitGroupEvents,
		Message:     "WaitGroup %s: Add after Wait (reuse without a new round of Adds)",
	})
}
