package analysis

import (
	"rasc/internal/bitvector"
	"rasc/internal/gosrc"
)

// The built-in checker suite: the Go-facing properties already in the
// toolkit (doublelock, fileleak, taint), the sql.Rows and sync.WaitGroup
// typestate checkers, the per-channel close/send-after-close and RWMutex
// properties, and the model-based concurrency checkers (race,
// lockorder) built on the goroutine/lockset abstraction in conc.go.
func init() {
	Register(&Checker{
		Name:     "race",
		Doc:      "shared variable accessed by concurrent goroutines without a common lock",
		Severity: SeverityError,
		Run:      raceDiagnostics,
		Version:  "1",
		Message:  "possible data race on %s: conflicting accesses from concurrent goroutines with no common lock held",
	})
	Register(&Checker{
		Name:     "lockorder",
		Doc:      "two locks acquired in opposite orders on different paths (deadlock risk)",
		Severity: SeverityWarning,
		Run:      lockOrderDiagnostics,
		Version:  "1",
		Message:  "locks %s are acquired in opposite orders on different paths (deadlock risk)",
	})
	Register(&Checker{
		Name:        "chanclose",
		Doc:         "channel closed twice or sent on after close",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		Spec:        gosrc.ChanCloseSpecSrc,
		NewProperty: gosrc.ChanCloseProperty,
		NewEvents:   gosrc.ChanCloseEvents,
		Message:     "channel %s may be closed or sent on after being closed",
	})
	Register(&Checker{
		Name:        "rwlock",
		Doc:         "sync.RWMutex.RUnlock called with no read lock held",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		Spec:        gosrc.RWLockSpecSrc,
		NewProperty: gosrc.RWLockProperty,
		NewEvents:   gosrc.RWLockEvents,
		Message:     "RWMutex %s: RUnlock without a matching RLock",
	})
	Register(&Checker{
		Name:        "doublelock",
		Doc:         "sync.Mutex locked while held, or unlocked while not held",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		Spec:        gosrc.DoubleLockSpecSrc,
		NewProperty: gosrc.DoubleLockProperty,
		NewEvents:   gosrc.DoubleLockEvents,
		Message:     "mutex %s locked while already held (or unlocked while not held)",
	})
	Register(&Checker{
		Name:        "fileleak",
		Doc:         "file opened with os.Open/OpenFile/Create possibly not closed",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		Spec:        gosrc.FileLeakSpecSrc,
		NewProperty: gosrc.FileLeakProperty,
		NewEvents:   gosrc.FileLeakEvents,
		Message:     "file %s possibly still open when the entry function returns",
	})
	Register(&Checker{
		Name:        "taint",
		Doc:         "value from source() reaches sink() without sanitize()",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		Spec:        bitvector.TaintSpecSrc,
		NewProperty: bitvector.TaintProperty,
		NewEvents:   bitvector.TaintEvents,
		Message:     "tainted value %s reaches a sink unsanitized",
	})
	Register(&Checker{
		Name:        "sqlrows",
		Doc:         "sql.Rows from Query/QueryContext possibly not closed",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		Spec:        gosrc.SQLRowsSpecSrc,
		NewProperty: gosrc.SQLRowsProperty,
		NewEvents:   gosrc.SQLRowsEvents,
		Message:     "rows %s possibly still open when the entry function returns",
	})
	Register(&Checker{
		Name:        "waitgroup",
		Doc:         "sync.WaitGroup counter misuse: Add after Wait, or Done driving the counter negative",
		Severity:    SeverityError,
		Mode:        ModeViolations,
		Spec:        gosrc.WaitGroupCountSpecSrc,
		NewProperty: gosrc.WaitGroupCountProperty,
		NewEvents:   gosrc.WaitGroupCountEvents,
		Version:     "3",
		Message:     "WaitGroup %s misused: Add after Wait, or more Done calls than the Add total",
	})
	Register(&Checker{
		Name:        "semabalance",
		Doc:         "semaphore Acquire/Release balance: permits still held (or over-released) at exit",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		Spec:        gosrc.SemaBalanceSpecSrc,
		NewProperty: gosrc.SemaBalanceProperty,
		NewEvents:   gosrc.SemaBalanceEvents,
		Version:     "2",
		Message:     "semaphore %s: acquires and releases may be unbalanced when the entry function returns",
	})
	Register(&Checker{
		Name:        "lockbalance",
		Doc:         "mutex Lock/Unlock balance: lock still held (or over-unlocked) at exit",
		Severity:    SeverityWarning,
		Mode:        ModeLeakAtExit,
		Spec:        gosrc.LockBalanceSpecSrc,
		NewProperty: gosrc.LockBalanceProperty,
		NewEvents:   gosrc.LockBalanceEvents,
		Message:     "mutex %s: Lock and Unlock calls may be unbalanced when the entry function returns",
	})
	Register(&Checker{
		Name:        "poolexchange",
		Doc:         "sync.Pool-style Get/Put exchange: outstanding Get results may exceed the band",
		Severity:    SeverityWarning,
		Mode:        ModeViolations,
		Spec:        gosrc.PoolExchangeSpecSrc,
		NewProperty: gosrc.PoolExchangeProperty,
		NewEvents:   gosrc.PoolExchangeEvents,
		Message:     "pool %s: more than 4 Get results outstanding (Get/Put exchange unbalanced)",
	})
	Register(&Checker{
		Name:        "poolexhaust",
		Doc:         "connection-pool checkouts in flight may exceed the pool capacity",
		Severity:    SeverityWarning,
		Mode:        ModeViolations,
		Spec:        gosrc.PoolExhaustSpecSrc,
		NewProperty: gosrc.PoolExhaustProperty,
		NewEvents:   gosrc.PoolExhaustEvents,
		Message:     "pool %s: more than 4 connections may be checked out at once",
	})
	Register(&Checker{
		Name:        "depthbound",
		Doc:         "Enter/Leave nesting depth may exceed the declared bound",
		Severity:    SeverityWarning,
		Mode:        ModeViolations,
		Spec:        gosrc.DepthBoundSpecSrc,
		NewProperty: gosrc.DepthBoundProperty,
		NewEvents:   gosrc.DepthBoundEvents,
		Message:     "Enter/Leave nesting may exceed depth 4 (counter saturated at its bound)",
	})
}
