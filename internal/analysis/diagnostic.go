package analysis

import (
	"sort"

	"rasc/internal/gosrc"
)

// Diagnostic is one finding, positioned in the original Go source.
type Diagnostic struct {
	// Checker is the registry name of the checker that produced it.
	Checker string `json:"checker"`
	// Severity is error, warning or note.
	Severity Severity `json:"severity"`
	// File and Line locate the finding in the loaded sources.
	File string `json:"file"`
	Line int    `json:"line"`
	// Message is the human-readable finding text.
	Message string `json:"message"`
	// Label is the parameter instantiation (the offending mutex, file,
	// ...), "" for non-parametric findings.
	Label string `json:"label,omitempty"`
	// May marks a verdict that rests on a saturated counter or relation
	// valuation: the tracker lost the exact value, so the finding is
	// possible but not witnessed by an exact execution. Omitted (false)
	// for definite findings, keeping prior reports byte-identical.
	May bool `json:"may,omitempty"`
	// Entry is the entry function whose run found it.
	Entry string `json:"entry,omitempty"`
	// Trace is the witness path, oldest hop first (empty for leak-mode
	// findings, which have no single violating statement).
	Trace []TraceStep `json:"trace,omitempty"`
	// SecondTrace is the second witness for two-sided findings: the
	// other goroutine's path to a racy access, or the inverted
	// acquisition order of a lock-order finding.
	SecondTrace []TraceStep `json:"second_trace,omitempty"`
	// Provenance is the derivation chain behind the finding, oldest hop
	// first, present only on explain runs (Config.Explain / -explain).
	// Property-checker findings carry a solver-level chain (rules seed,
	// edge, wrap, pop, plus the final event/exit transition); findings
	// without one get a chain synthesized from their witness trace
	// (rules seed, enter, step, access, finding). Omitted from JSON when
	// empty, so non-explain reports are byte-identical to before.
	Provenance []ProvStep `json:"provenance,omitempty"`
}

// ProvStep is one hop of a finding's derivation chain.
type ProvStep struct {
	File string `json:"file,omitempty"`
	Fn   string `json:"fn,omitempty"`
	Line int    `json:"line"`
	// Rule names the derivation rule that produced the hop.
	Rule string `json:"rule"`
	// Annot is the composed automaton annotation at this hop, rendered
	// through the property's algebra ("" for synthesized chains).
	Annot string `json:"annot,omitempty"`
}

// TraceStep is one hop of a witness trace.
type TraceStep struct {
	File string `json:"file"`
	Fn   string `json:"fn"`
	Line int    `json:"line"`
	// Enter marks hops that enter a callee through a call site.
	Enter bool `json:"enter,omitempty"`
}

// key identifies a diagnostic for deduplication across entry functions:
// two roots reaching the same defect report it once.
func (d *Diagnostic) key() string {
	return d.Checker + "\x00" + d.File + "\x00" + itoa(d.Line) + "\x00" + d.Label + "\x00" + d.Message
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Report is the outcome of one driver run.
type Report struct {
	// Diagnostics, deduplicated and ordered by file, line, checker.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Notes are translation imprecisions (goto, ambiguous methods, ...).
	Notes []gosrc.Note `json:"notes,omitempty"`
	// Suppressed counts diagnostics dropped by //rasc:ignore comments.
	Suppressed int `json:"suppressed"`
	// Files, Functions, Checkers and Jobs describe the run's shape.
	Files     int      `json:"files"`
	Functions int      `json:"functions"`
	Checkers  []string `json:"checkers"`
	Entries   []string `json:"entries"`
	Jobs      int      `json:"jobs"`
	// Solver sums constraint-solver statistics over every property job
	// (model-based checkers contribute nothing).
	Solver SolverStats `json:"solver"`
	// Cache summarizes incremental-cache effectiveness; nil when the run
	// had no cache, keeping cacheless reports byte-identical to before.
	Cache *CacheStats `json:"cache,omitempty"`

	// Request telemetry, populated by the resident Engine and excluded
	// from every rendered form (json:"-") so findings and reports stay
	// byte-identical whether or not telemetry is on. TraceID identifies
	// the request; TraceJSON holds its Chrome trace when the request
	// asked for one inline; MemoHits/MemoMisses count this request's
	// job-memo lookups.
	TraceID    string `json:"-"`
	TraceJSON  []byte `json:"-"`
	MemoHits   int64  `json:"-"`
	MemoMisses int64  `json:"-"`
}

// SolverStats aggregates constraint-system sizes across jobs.
type SolverStats struct {
	// Vars is the total number of set variables created.
	Vars int `json:"vars"`
	// ConsNodes is the total number of constructed-term nodes.
	ConsNodes int `json:"cons_nodes"`
	// Edges is the total number of constraint-graph edges added.
	Edges int `json:"edges"`
}

// HasFindings reports whether any diagnostic of Severity error or
// warning survived suppression (the CI failure condition).
func (r *Report) HasFindings() bool {
	return r.HasFindingsAtLeast(SeverityWarning)
}

// HasFindingsAtLeast reports whether any surviving diagnostic is at
// least as severe as min (severities rank error > warning > note).
func (r *Report) HasFindingsAtLeast(min Severity) bool {
	for _, d := range r.Diagnostics {
		if d.Severity <= min {
			return true
		}
	}
	return false
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Message < b.Message
	})
}
