package analysis

import (
	"fmt"
	"hash/fnv"
	"io"

	"rasc/internal/spec"
)

// ListText writes the registered-checker listing (gocheck -list): one
// line per checker, sorted by name, with severity, annotation domain,
// spec digest, version and doc. Spec and Version are the checker-identity
// inputs of the cache key (Checker.fingerprint), so the listing shows
// exactly what invalidates cached results; specs are multi-line automaton
// sources, printed as a stable FNV-1a digest instead of the text. The
// output is byte-stable across runs — tests keep it under a golden file.
func ListText(w io.Writer) error {
	for _, c := range All() {
		specDigest := "-"
		if c.Spec != "" {
			h := fnv.New32a()
			h.Write([]byte(c.Spec))
			specDigest = fmt.Sprintf("%08x", h.Sum32())
		}
		version := c.Version
		if version == "" {
			version = "-"
		}
		if _, err := fmt.Fprintf(w, "%-12s %-7s %-24s spec=%-8s version=%-4s %s\n",
			c.Name, c.Severity, c.Domain(), specDigest, version, c.Doc); err != nil {
			return err
		}
	}
	return nil
}

// SpeclintFinding pairs a checker name with one finding from linting its
// property specification.
type SpeclintFinding struct {
	Checker string           `json:"checker"`
	Finding spec.LintFinding `json:"finding"`
}

func (f SpeclintFinding) String() string {
	return f.Checker + ": " + f.Finding.String()
}

// Speclint runs the specification linter (spec.LintProperty) over every
// property-based checker in cs, in registry order. Model-based checkers
// (Run set) have no spec and are skipped. CI runs this over the full
// registry and fails on any finding: a built-in checker whose spec has a
// dead state, a vacuous assert or a loose relation band is a bug in the
// checker, not in the analyzed program.
func Speclint(cs []*Checker) []SpeclintFinding {
	var out []SpeclintFinding
	for _, c := range cs {
		if c.NewProperty == nil {
			continue
		}
		prop, _ := c.compiled()
		for _, f := range spec.LintProperty(prop) {
			out = append(out, SpeclintFinding{Checker: c.Name, Finding: f})
		}
	}
	return out
}
