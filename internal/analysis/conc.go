package analysis

import (
	"sort"
	"strings"
	"sync"

	"rasc/internal/minic"
)

// This file is the driver's concurrency model. The translation marks
// goroutine spawns (NSpawn), per-object lock events (ConcLock/...),
// channel operations and shared-variable accesses (NAccess) in the CFG;
// here those are lifted to an abstraction suitable for lockset checking:
//
//   - a goroutine abstraction: one goroutine per static spawn site
//     reachable from the entry (plus the entry goroutine g0), marked
//     multi-instance when its spawn sits in a loop or in a
//     multi-instance spawner;
//   - a flow relation over the interprocedural CFG in which a spawn
//     node continues to its successors (the spawner's flow) and never
//     returns from the spawned callee (the child's flow starts fresh at
//     the callee's entry);
//   - a lockset dataflow over that relation, per goroutine root: the
//     set of (lock, mode) pairs possibly held at each node, seeded with
//     the empty lockset (a new goroutine holds nothing).
//
// Soundness caveats (also in DESIGN.md): there is no happens-before
// order — an access before a spawn is treated as concurrent with the
// spawned goroutine, channel synchronization establishes no ordering,
// and call/return flow is context-insensitive (locksets can flow from
// one call site's entry to another's return). The model over-reports
// rather than misses: every lock that MUST be held is in the
// intersection of a node's locksets.

// lockHold is one held lock with its mode (write for Lock, read for
// RLock). Two read holds of the same lock do not exclude each other.
type lockHold struct {
	Name  string
	Write bool
}

// lockset is a canonically sorted set of holds.
type lockset []lockHold

func (ls lockset) key() string {
	var b strings.Builder
	for _, h := range ls {
		b.WriteString(h.Name)
		if h.Write {
			b.WriteString("/w;")
		} else {
			b.WriteString("/r;")
		}
	}
	return b.String()
}

// with returns ls ∪ {h}, canonical.
func (ls lockset) with(h lockHold) lockset {
	for _, x := range ls {
		if x == h {
			return ls
		}
	}
	out := make(lockset, 0, len(ls)+1)
	out = append(out, ls...)
	out = append(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return !out[i].Write && out[j].Write
	})
	return out
}

// without returns ls \ {h}.
func (ls lockset) without(h lockHold) lockset {
	for i, x := range ls {
		if x == h {
			out := make(lockset, 0, len(ls)-1)
			out = append(out, ls[:i]...)
			out = append(out, ls[i+1:]...)
			return out
		}
	}
	return ls
}

// transfer applies a node's lock event to the lockset holding BEFORE the
// node (events happen on outgoing edges, matching §6.1's constraint
// scheme).
func transfer(n *minic.Node, ls lockset) lockset {
	switch n.Conc {
	case minic.ConcLock:
		return ls.with(lockHold{n.ConcArg, true})
	case minic.ConcRLock:
		return ls.with(lockHold{n.ConcArg, false})
	case minic.ConcUnlock:
		return ls.without(lockHold{n.ConcArg, true})
	case minic.ConcRUnlock:
		return ls.without(lockHold{n.ConcArg, false})
	}
	return ls
}

// concModel caches the whole-program CFG, the goroutine flow relation
// and per-root lockset dataflow results for a Package.
type concModel struct {
	cfg *minic.CFG
	// flowSuccs is the single-goroutine flow relation: intraprocedural
	// edges, call site -> callee entry, callee exit -> every return site
	// (context-insensitive). Spawn nodes flow only to their successors.
	flowSuccs [][]int

	mu      sync.Mutex
	lsCache map[string]map[int][]lockset // root fn -> node -> locksets
}

// concModel builds (once) the concurrency model of the package.
func (p *Package) concModel() *concModel {
	p.concOnce.Do(func() {
		cfg := p.Prog.Graph
		m := &concModel{cfg: cfg, flowSuccs: make([][]int, len(cfg.Nodes)), lsCache: map[string]map[int][]lockset{}}
		retSites := map[string][]int{}
		callee := func(n *minic.Node) *minic.FuncDef {
			if n.Call == nil {
				return nil
			}
			def, ok := cfg.Prog.ByName[n.Call.Name]
			if !ok {
				return nil
			}
			return def
		}
		for _, n := range cfg.Nodes {
			if n.Kind == minic.NAction {
				if def := callee(n); def != nil {
					retSites[def.Name] = append(retSites[def.Name], n.Succs...)
				}
			}
		}
		for _, n := range cfg.Nodes {
			switch {
			case n.Kind == minic.NAction && callee(n) != nil:
				m.flowSuccs[n.ID] = []int{cfg.Entry[callee(n).Name]}
			case n.Kind == minic.NExit:
				m.flowSuccs[n.ID] = retSites[n.Fn]
			default:
				m.flowSuccs[n.ID] = n.Succs
			}
		}
		p.conc = m
	})
	return p.conc
}

// goroutine is one abstract goroutine: the entry goroutine, or one
// static spawn site.
type goroutine struct {
	ID    int
	Root  string      // root function (canonical name)
	Spawn *minic.Node // nil for the entry goroutine
	Multi bool        // more than one instance may run concurrently
	// Prefix is the witness trace from the program entry to this
	// goroutine's spawn statement (empty for the entry goroutine).
	Prefix []TraceStep
	// reach is the set of nodes this goroutine may execute; parent is a
	// BFS tree over the flow relation for witness paths.
	reach  map[int]bool
	parent map[int]int
}

// explore fills g.reach and g.parent by BFS from the root's entry.
func (m *concModel) explore(g *goroutine) {
	g.reach = map[int]bool{}
	g.parent = map[int]int{}
	start := m.cfg.Entry[g.Root]
	g.reach[start] = true
	g.parent[start] = -1
	queue := []int{start}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, s := range m.flowSuccs[id] {
			if !g.reach[s] {
				g.reach[s] = true
				g.parent[s] = id
				queue = append(queue, s)
			}
		}
	}
}

// path returns the witness trace from the goroutine's root entry to node
// id, keeping entry hops and event nodes.
func (m *concModel) path(p *Package, g *goroutine, id int) []TraceStep {
	var ids []int
	for at := id; at >= 0; at = g.parent[at] {
		ids = append(ids, at)
	}
	out := append([]TraceStep(nil), g.Prefix...)
	for i := len(ids) - 1; i >= 0; i-- {
		n := m.cfg.Nodes[ids[i]]
		switch n.Kind {
		case minic.NEntry:
			out = append(out, TraceStep{File: p.fileOf(n.Fn), Fn: n.Fn, Line: n.Line, Enter: true})
		case minic.NAction, minic.NSpawn, minic.NAccess:
			out = append(out, TraceStep{File: p.fileOf(n.Fn), Fn: n.Fn, Line: n.Line})
		}
	}
	return out
}

// inCycle reports whether node id can reach itself through the flow
// relation (a spawn in a loop or in a recursive function spawns many
// instances).
func (m *concModel) inCycle(id int) bool {
	seen := map[int]bool{}
	queue := append([]int(nil), m.flowSuccs[id]...)
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if at == id {
			return true
		}
		if seen[at] {
			continue
		}
		seen[at] = true
		queue = append(queue, m.flowSuccs[at]...)
	}
	return false
}

// goroutines enumerates the abstract goroutines of an entry function:
// g0 (the entry itself) plus one per reachable static spawn site, each
// owned by the first goroutine (in discovery order) that reaches it.
func (m *concModel) goroutines(p *Package, entry string) []*goroutine {
	g0 := &goroutine{ID: 0, Root: entry}
	m.explore(g0)
	out := []*goroutine{g0}
	claimed := map[int]bool{}
	for qi := 0; qi < len(out); qi++ {
		g := out[qi]
		// Spawn sites in ascending node order, for determinism.
		var spawns []int
		for id := range g.reach {
			if m.cfg.Nodes[id].Kind == minic.NSpawn {
				spawns = append(spawns, id)
			}
		}
		sort.Ints(spawns)
		for _, id := range spawns {
			if claimed[id] {
				continue
			}
			n := m.cfg.Nodes[id]
			def, ok := m.cfg.Prog.ByName[n.Call.Name]
			if !ok {
				continue // external spawn: body unknown
			}
			claimed[id] = true
			// The prefix ends at the spawn statement; the child's own
			// path starts with its root's entry hop.
			prefix := m.path(p, g, id)
			child := &goroutine{
				ID:     len(out),
				Root:   def.Name,
				Spawn:  n,
				Multi:  g.Multi || m.inCycle(id),
				Prefix: prefix,
			}
			m.explore(child)
			out = append(out, child)
		}
	}
	return out
}

// locksets runs (and memoizes) the lockset dataflow from root's entry
// with the empty seed. Every goroutine starts holding nothing, so the
// result depends only on the root function.
func (m *concModel) locksets(root string) map[int][]lockset {
	m.mu.Lock()
	if cached, ok := m.lsCache[root]; ok {
		m.mu.Unlock()
		return cached
	}
	m.mu.Unlock()

	states := map[int]map[string]lockset{}
	type item struct {
		node int
		ls   lockset
	}
	start := m.cfg.Entry[root]
	states[start] = map[string]lockset{"": nil}
	queue := []item{{start, nil}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		out := transfer(m.cfg.Nodes[it.node], it.ls)
		k := out.key()
		for _, s := range m.flowSuccs[it.node] {
			if states[s] == nil {
				states[s] = map[string]lockset{}
			}
			if _, seen := states[s][k]; !seen {
				states[s][k] = out
				queue = append(queue, item{s, out})
			}
		}
	}
	result := make(map[int][]lockset, len(states))
	for id, set := range states {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			result[id] = append(result[id], set[k])
		}
	}
	m.mu.Lock()
	m.lsCache[root] = result
	m.mu.Unlock()
	return result
}

// mustHold intersects a node's locksets: the locks held on EVERY path
// reaching it.
func mustHold(sets []lockset) lockset {
	if len(sets) == 0 {
		return nil
	}
	out := sets[0]
	for _, ls := range sets[1:] {
		var next lockset
		for _, h := range out {
			for _, x := range ls {
				if x == h {
					next = append(next, h)
					break
				}
			}
		}
		out = next
		if len(out) == 0 {
			break
		}
	}
	return out
}

// excluded reports whether two critical sections are mutually exclusive:
// some lock is must-held by both, with at least one side in write mode.
func excluded(a, b lockset) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Name == y.Name && (x.Write || y.Write) {
				return true
			}
		}
	}
	return false
}

// access is one shared-variable access in one goroutine.
type access struct {
	g    *goroutine
	node *minic.Node
	must lockset
}

// raceDiagnostics is the lockset-based data-race checker: two accesses
// to the same shared variable, at least one a write, from goroutines
// that may run concurrently, with no common must-held lock. One finding
// is reported per variable (the first racy pair in node order), carrying
// a witness trace per goroutine.
func raceDiagnostics(pkg *Package, c *Checker, entry string) []Diagnostic {
	m := pkg.concModel()
	gs := m.goroutines(pkg, entry)
	if len(gs) == 1 {
		return nil // single goroutine: no races
	}
	byVar := map[string][]access{}
	var vars []string
	for _, g := range gs {
		ls := m.locksets(g.Root)
		var ids []int
		for id := range g.reach {
			if m.cfg.Nodes[id].Kind == minic.NAccess {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			n := m.cfg.Nodes[id]
			if _, seen := byVar[n.ConcArg]; !seen {
				vars = append(vars, n.ConcArg)
			}
			byVar[n.ConcArg] = append(byVar[n.ConcArg], access{g: g, node: n, must: mustHold(ls[id])})
		}
	}
	sort.Strings(vars)
	var out []Diagnostic
	for _, v := range vars {
		accs := byVar[v]
		if d, ok := firstRace(pkg, m, c, entry, v, accs); ok {
			out = append(out, d)
		}
	}
	return out
}

// firstRace scans the accesses of one variable for the first racy pair.
func firstRace(pkg *Package, m *concModel, c *Checker, entry, v string, accs []access) (Diagnostic, bool) {
	for i, a := range accs {
		for j := i; j < len(accs); j++ {
			b := accs[j]
			write := a.node.Conc == minic.ConcStore || b.node.Conc == minic.ConcStore
			if !write {
				continue
			}
			// Concurrent: different goroutines, or two instances of a
			// multi-instance goroutine. The same single access races
			// with itself only when its goroutine is multi-instance.
			if a.g == b.g && !a.g.Multi {
				continue
			}
			if i == j && !a.g.Multi {
				continue
			}
			if excluded(a.must, b.must) {
				continue
			}
			d := Diagnostic{
				Checker:     c.Name,
				Severity:    c.Severity,
				File:        pkg.fileOf(a.node.Fn),
				Line:        a.node.Line,
				Message:     c.message(v),
				Label:       v,
				Entry:       entry,
				Trace:       m.path(pkg, a.g, a.node.ID),
				SecondTrace: m.path(pkg, b.g, b.node.ID),
			}
			return d, true
		}
	}
	return Diagnostic{}, false
}

// lockOrderDiagnostics is the deadlock-order checker: it records, per
// goroutine, every "acquire L while holding M" edge seen by the lockset
// dataflow, and reports each inverted pair (A taken before B on one
// path, B before A on another) once, with a witness trace per acquire
// site. Read acquisitions participate: an RLock waiting behind a writer
// deadlocks the same way.
func lockOrderDiagnostics(pkg *Package, c *Checker, entry string) []Diagnostic {
	m := pkg.concModel()
	gs := m.goroutines(pkg, entry)
	type witness struct {
		g    *goroutine
		node *minic.Node
	}
	edges := map[string]map[string]witness{} // held -> acquired -> first witness
	var heldNames []string
	for _, g := range gs {
		ls := m.locksets(g.Root)
		var ids []int
		for id := range g.reach {
			op := m.cfg.Nodes[id].Conc
			if op == minic.ConcLock || op == minic.ConcRLock {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			n := m.cfg.Nodes[id]
			for _, set := range ls[id] {
				for _, h := range set {
					if h.Name == n.ConcArg {
						continue
					}
					if edges[h.Name] == nil {
						edges[h.Name] = map[string]witness{}
						heldNames = append(heldNames, h.Name)
					}
					if _, seen := edges[h.Name][n.ConcArg]; !seen {
						edges[h.Name][n.ConcArg] = witness{g, n}
					}
				}
			}
		}
	}
	sort.Strings(heldNames)
	var out []Diagnostic
	for _, a := range heldNames {
		for _, b := range sortedKeys(edges[a]) {
			if a >= b {
				continue // report each unordered pair once, from the smaller name
			}
			back, ok := edges[b]
			if !ok {
				continue
			}
			inv, ok := back[a]
			if !ok {
				continue
			}
			fwd := edges[a][b]
			label := a + " and " + b
			out = append(out, Diagnostic{
				Checker:     c.Name,
				Severity:    c.Severity,
				File:        pkg.fileOf(fwd.node.Fn),
				Line:        fwd.node.Line,
				Message:     c.message(label),
				Label:       label,
				Entry:       entry,
				Trace:       m.path(pkg, fwd.g, fwd.node.ID),
				SecondTrace: m.path(pkg, inv.g, inv.node.ID),
			})
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
