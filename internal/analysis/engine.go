// Resident analysis engine. Engine is the long-lived form of the
// driver: it owns loaded programs (translated sources, lowered IR,
// solved skeletons), an in-memory result memo, the open on-disk cache
// and the observability registry across any number of requests, so a
// warm re-check after a small edit pays for exactly the edit — changed
// files re-translate through the per-file memo (gosrc.Memo), unchanged
// functions keep their fingerprints (ir.NewIncremental), and jobs whose
// content key is unchanged replay from the in-memory memo without
// touching disk. An unchanged file set short-circuits entirely: the
// resident Package — including its built skeletons — is reused as-is,
// so identical re-checks never rebuild anything.
//
// Concurrency model: a resident program's mutable state (file set,
// translation memo, current Package) is guarded by a per-program mutex
// that serializes delta application and re-lowering; the Package a
// request analyzes is an immutable snapshot, so any number of requests
// analyze concurrently — against the same program or different ones —
// exactly like concurrent one-shot runs over a shared Package. Findings
// stay deterministic because nothing downstream of the snapshot is
// request-ordered: job results are content-keyed, merges happen in job
// order, and stats are sums.
//
// Analyze (the one-shot entry point every existing caller uses) is a
// thin wrapper that routes a single request through a throwaway Engine.
package analysis

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rasc/internal/core"
	"rasc/internal/gosrc"
	"rasc/internal/ir"
	"rasc/internal/obs"
)

// EngineConfig configures a resident Engine. The zero value is a valid
// minimal engine: no disk cache, no metrics, unbounded memory.
type EngineConfig struct {
	// Cache, when non-nil, backs the engine with the on-disk incremental
	// cache (shared with one-shot runs; keys are identical).
	Cache *Cache
	// NoSkeletonSnapshots disables the frozen-skeleton snapshot path,
	// as in Config.
	NoSkeletonSnapshots bool
	// Opts are the solver options every request runs under. Requests do
	// not choose options: cached and memoized results are keyed by them,
	// and one resident configuration per engine keeps the key space hot.
	Opts core.Options
	// Parallel bounds each request's worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// MemoryBudget caps the estimated resident-program footprint in
	// bytes; past it, least-recently-used programs are evicted wholesale
	// (their next request reloads from the pushed file set). 0 means no
	// eviction.
	MemoryBudget int64
	// MemoEntries bounds the in-memory job-result memo (records, not
	// bytes); 0 means the default.
	MemoEntries int
	// Metrics, when non-nil, receives the per-run bundles (solver, pdm,
	// cache, driver) plus the engine's server.* bundle.
	Metrics *obs.Registry
	// Trace, when non-nil, records request roots and per-run phase spans
	// into one process-wide tracer. When Flight is set (or a request asks
	// for its trace inline) the engine instead runs each request under
	// its own tracer, so per-request span trees stay separable.
	Trace *obs.Tracer
	// Flight, when non-nil, records every request — trace ID, outcome,
	// duration, memo accounting and full span tree — into the flight
	// recorder.
	Flight *obs.Flight
}

// Engine is a resident, concurrency-safe analysis service over any
// number of named programs. Create with NewEngine; all methods are safe
// for concurrent use.
type Engine struct {
	cfg     EngineConfig
	serverM *obs.ServerMetrics // nil when Metrics is nil
	memo    *jobMemo

	mu    sync.Mutex
	progs map[string]*residentProgram
	clock int64 // LRU tick, bumped per request under mu

	// Engine-wide accounting, accumulated atomically so concurrent
	// requests never race (CacheStats itself is per-request; these are
	// the cross-request totals).
	requests, errors, evictions         atomic.Int64
	cacheHits, cacheMisses, resolvedFns atomic.Int64
	skeletonHits, skeletonMisses        atomic.Int64
}

// NewEngine creates a resident engine.
func NewEngine(cfg EngineConfig) *Engine {
	var sm *obs.ServerMetrics
	if cfg.Metrics != nil {
		sm = obs.NewServerMetrics(cfg.Metrics)
	}
	return &Engine{
		cfg:     cfg,
		serverM: sm,
		memo:    newJobMemo(cfg.MemoEntries, sm),
		progs:   map[string]*residentProgram{},
	}
}

// residentProgram is one named program's resident state. mu serializes
// file-delta application and re-lowering; pkg is replaced wholesale (an
// immutable snapshot), never mutated, so readers that grabbed it under
// mu may analyze it after releasing mu.
type residentProgram struct {
	name string

	mu    sync.Mutex
	files map[string]gosrc.File
	tmemo *gosrc.Memo
	pkg   *Package
	// recent keeps the last few displaced lowered snapshots so that a
	// file set the program has been at before — an undone edit, a
	// branch toggle, an editor flapping between two buffer states —
	// re-resolves without re-lowering anything. Entries share FuncDef
	// storage with the translation memo, so the marginal footprint is
	// the IR/CFG structures only; ringCost feeds it to the memory
	// budget regardless.
	recent   []loweredSet
	ringCost atomic.Int64

	// Engine-bookkeeping, guarded by the Engine's mu.
	lastUsed int64
	cost     int64
	served   int64
}

// loweredSet is one previously lowered file set: the exact files and
// the immutable Package they lowered to.
type loweredSet struct {
	files map[string]gosrc.File
	pkg   *Package
}

// maxRecentLowered bounds the per-program ring of displaced lowered
// snapshots: two covers the common flap between a state and its edit.
const maxRecentLowered = 2

// retire pushes the current lowered snapshot into the recent ring and
// refreshes the ring's cost estimate. Callers hold rp.mu.
func (rp *residentProgram) retire() {
	if rp.pkg != nil {
		rp.recent = append(rp.recent, loweredSet{files: rp.files, pkg: rp.pkg})
		if len(rp.recent) > maxRecentLowered {
			rp.recent = rp.recent[len(rp.recent)-maxRecentLowered:]
		}
	}
	var cost int64
	for _, ls := range rp.recent {
		cost += estimateCost(ls.pkg)
	}
	rp.ringCost.Store(cost)
}

// CheckRequest is one engine request: a file delta against a named
// resident program plus the analysis selection to run on the result.
type CheckRequest struct {
	// Program names the resident program; "" means "default". The first
	// request for a name must carry the full file set as Upserts.
	Program string
	// Upserts adds or replaces files by name; Removes drops files.
	// Removes apply first. A request with neither re-checks as-is.
	Upserts []gosrc.File
	Removes []string
	// Reset replaces the program's file set with exactly Upserts instead
	// of applying a delta.
	Reset bool

	// Checkers selects registered checkers by name; nil means all.
	Checkers []string
	// Entries selects entry functions; nil means the package roots.
	Entries []string
	// KeepSuppressed and Explain are per-request, as in Config.
	KeepSuppressed bool
	Explain        bool
	// Parallel overrides the engine's per-request worker bound when > 0.
	Parallel int

	// TraceID identifies the request in the flight recorder and access
	// logs; empty means the engine mints one when tracing is active.
	TraceID string
	// WantTrace asks for the request's Chrome trace inline on
	// Report.TraceJSON even without a flight recorder.
	WantTrace bool
}

// Check runs one request. It applies the file delta (re-lowering only
// changed files), analyzes the resulting snapshot, and returns the same
// Report a one-shot Analyze over the same sources would return —
// findings are byte-identical whether telemetry is on or off; tracing
// only adds the json:"-" telemetry fields.
func (e *Engine) Check(req CheckRequest) (*Report, error) {
	t0 := time.Now()
	e.requests.Add(1)
	if e.serverM != nil {
		e.serverM.Requests.Inc()
	}
	// With a flight recorder (or an inline-trace request) the request
	// runs under its own tracer and trace ID, so its span tree can be
	// recorded, returned and persisted independently of other requests.
	var tr *obs.Tracer
	traceID := req.TraceID
	if e.cfg.Flight != nil || req.WantTrace {
		tr = obs.NewTracer()
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
	}
	sp := e.span(tr, "request:"+programName(req.Program))
	if traceID != "" {
		sp.SetAttr("trace_id", traceID)
	}
	rep, err := e.check(req, tr)
	if err != nil {
		e.errors.Add(1)
		if e.serverM != nil {
			e.serverM.Errors.Inc()
		}
		sp.SetAttr("error", err.Error())
	}
	sp.Finish()
	if e.serverM != nil {
		e.serverM.RequestMs.Observe(time.Since(t0).Milliseconds())
	}
	if rep != nil {
		rep.TraceID = traceID
		if req.WantTrace && tr != nil {
			var buf bytes.Buffer
			if werr := tr.WriteJSON(&buf); werr == nil {
				rep.TraceJSON = buf.Bytes()
			}
		}
	}
	if e.cfg.Flight != nil {
		meta := obs.FlightMeta{
			TraceID: traceID,
			Program: programName(req.Program),
			DurUS:   time.Since(t0).Microseconds(),
		}
		if err != nil {
			meta.Err = err.Error()
		}
		if rep != nil {
			meta.MemoHits, meta.MemoMisses = rep.MemoHits, rep.MemoMisses
		}
		e.cfg.Flight.Record(meta, tr)
	}
	return rep, err
}

func programName(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

func (e *Engine) check(req CheckRequest, tr *obs.Tracer) (*Report, error) {
	checkers, err := checkersByName(req.Checkers)
	if err != nil {
		return nil, err
	}
	rp := e.program(programName(req.Program))

	rp.mu.Lock()
	pkg, err := e.refresh(rp, req)
	rp.mu.Unlock()
	if err != nil {
		return nil, err
	}

	parallel := req.Parallel
	if parallel <= 0 {
		parallel = e.cfg.Parallel
	}
	trace := e.cfg.Trace
	if tr != nil {
		trace = tr
	}
	cfg := Config{
		Checkers:            checkers,
		Entries:             req.Entries,
		Parallel:            parallel,
		Opts:                e.cfg.Opts,
		KeepSuppressed:      req.KeepSuppressed,
		Cache:               e.cfg.Cache,
		NoSkeletonSnapshots: e.cfg.NoSkeletonSnapshots,
		Trace:               trace,
		Metrics:             e.cfg.Metrics,
		Explain:             req.Explain,
	}
	rep, err := analyze(pkg, cfg, e.memo)
	if err != nil {
		return nil, err
	}
	e.account(rep.Cache)
	e.finishRequest(rp, pkg)
	return rep, nil
}

// refresh applies the request's file delta under rp.mu and returns the
// Package snapshot to analyze. State commits only on success: a failed
// delta (parse error, CFG error) leaves the previous file set and
// Package in place, so a bad push never poisons the resident program.
func (e *Engine) refresh(rp *residentProgram, req CheckRequest) (*Package, error) {
	next := map[string]gosrc.File{}
	if !req.Reset {
		for name, f := range rp.files {
			next[name] = f
		}
	}
	for _, name := range req.Removes {
		delete(next, name)
	}
	for _, f := range req.Upserts {
		next[f.Name] = f
	}
	if len(next) == 0 {
		return nil, fmt.Errorf("analysis: program %q has no files (push the full set first)", rp.name)
	}
	if rp.pkg != nil && sameFiles(next, rp.files) {
		return rp.pkg, nil
	}
	// A file set we've been at before swaps back in without re-lowering;
	// the displaced snapshot takes its slot in the ring.
	for i, ls := range rp.recent {
		if sameFiles(next, ls.files) {
			rp.recent = append(rp.recent[:i], rp.recent[i+1:]...)
			rp.retire()
			rp.files = ls.files
			rp.pkg = ls.pkg
			return ls.pkg, nil
		}
	}

	t0 := time.Now()
	files := make([]gosrc.File, 0, len(next))
	for _, f := range next {
		files = append(files, f)
	}
	// Sorted name order, matching LoadPaths' deterministic load order.
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })

	trn, err := gosrc.TranslateFilesMemo(files, rp.tmemo)
	if err != nil {
		return nil, err
	}
	var prev *ir.Program
	if rp.pkg != nil {
		prev = rp.pkg.Prog
	}
	prog, err := ir.NewIncremental(trn.Prog, ir.Meta{
		Notes:       trn.Notes,
		Ignores:     trn.Ignores,
		FileIgnores: trn.FileIgnores,
		Shared:      trn.Shared,
	}, prev)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Files: files, Prog: prog}
	rp.retire()
	rp.files = next
	rp.pkg = pkg
	if e.serverM != nil {
		e.serverM.RelowerMs.Observe(time.Since(t0).Milliseconds())
	}
	return pkg, nil
}

func sameFiles(a, b map[string]gosrc.File) bool {
	if len(a) != len(b) {
		return false
	}
	for name, f := range a {
		if g, ok := b[name]; !ok || g.Src != f.Src {
			return false
		}
	}
	return true
}

// program returns (creating if needed) the named resident program and
// bumps its recency.
func (e *Engine) program(name string) *residentProgram {
	e.mu.Lock()
	defer e.mu.Unlock()
	rp := e.progs[name]
	if rp == nil {
		rp = &residentProgram{name: name, tmemo: gosrc.NewMemo()}
		e.progs[name] = rp
		e.residentGauge()
	}
	e.clock++
	rp.lastUsed = e.clock
	return rp
}

// finishRequest updates the program's cost estimate and recency, then
// enforces the memory budget.
func (e *Engine) finishRequest(rp *residentProgram, pkg *Package) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock++
	rp.lastUsed = e.clock
	rp.served++
	rp.cost = estimateCost(pkg) + rp.ringCost.Load()
	e.evictLocked(rp)
}

// estimateCost approximates a resident program's memory footprint:
// source text plus translation, IR and CFG structures sized roughly
// proportionally to it, plus a per-function overhead for fingerprints,
// summaries and skeleton bookkeeping. Deliberately a coarse upper-ish
// bound — the budget trades resident warmth against memory, it is not
// an allocator.
func estimateCost(pkg *Package) int64 {
	var bytes int64
	for _, f := range pkg.Files {
		bytes += int64(len(f.Src))
	}
	return bytes*8 + int64(len(pkg.Prog.Funcs))*1024
}

// evictLocked drops least-recently-used programs until the estimated
// total fits the budget. The program serving the current request (keep)
// is never evicted. Callers hold e.mu.
func (e *Engine) evictLocked(keep *residentProgram) {
	if e.cfg.MemoryBudget <= 0 {
		return
	}
	for {
		var total int64
		var oldest *residentProgram
		for _, rp := range e.progs {
			total += rp.cost
			if rp == keep {
				continue
			}
			if oldest == nil || rp.lastUsed < oldest.lastUsed {
				oldest = rp
			}
		}
		if total <= e.cfg.MemoryBudget || oldest == nil {
			return
		}
		delete(e.progs, oldest.name)
		e.evictions.Add(1)
		if e.serverM != nil {
			e.serverM.Evictions.Inc()
		}
		e.residentGauge()
	}
}

func (e *Engine) residentGauge() {
	if e.serverM != nil {
		e.serverM.ResidentPrograms.Set(int64(len(e.progs)))
	}
}

// account merges one request's CacheStats into the engine totals.
// Per-request stats stay per-request (each session owns its counters);
// the engine-wide view accumulates atomically so concurrent request
// completions never race.
func (e *Engine) account(st *CacheStats) {
	if st == nil {
		return
	}
	e.cacheHits.Add(int64(st.Hits))
	e.cacheMisses.Add(int64(st.Misses))
	e.resolvedFns.Add(int64(st.ResolvedFunctions))
	e.skeletonHits.Add(int64(st.SkeletonHits))
	e.skeletonMisses.Add(int64(st.SkeletonMisses))
}

// span opens a request-root trace span on the per-request tracer when
// one is active, otherwise on the engine's static tracer; nil-safe.
func (e *Engine) span(tr *obs.Tracer, name string) *obs.Span {
	if tr != nil {
		return tr.Start(name)
	}
	if e.cfg.Trace == nil {
		return nil
	}
	return e.cfg.Trace.Start(name)
}

// checkersByName resolves checker names; nil selects every registered
// checker.
func checkersByName(names []string) ([]*Checker, error) {
	if len(names) == 0 {
		return nil, nil // Analyze defaults to All()
	}
	out := make([]*Checker, 0, len(names))
	for _, name := range names {
		c, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown checker %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}

// ProgramInfo describes one resident program for list/metrics
// endpoints.
type ProgramInfo struct {
	Name      string `json:"name"`
	Files     int    `json:"files"`
	Functions int    `json:"functions"`
	CostBytes int64  `json:"cost_bytes"`
	Requests  int64  `json:"requests"`
}

// Programs lists resident programs, sorted by name.
func (e *Engine) Programs() []ProgramInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ProgramInfo, 0, len(e.progs))
	for _, rp := range e.progs {
		info := ProgramInfo{Name: rp.name, CostBytes: rp.cost, Requests: rp.served}
		// rp.pkg is replaced atomically under rp.mu; a racing re-lower at
		// worst reports the prior snapshot's sizes.
		rp.mu.Lock()
		if rp.pkg != nil {
			info.Files = len(rp.pkg.Files)
			info.Functions = len(rp.pkg.Prog.Funcs)
		}
		rp.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EngineStats is a point-in-time snapshot of the engine's cross-request
// accounting.
type EngineStats struct {
	Requests         int64 `json:"requests"`
	Errors           int64 `json:"errors"`
	Evictions        int64 `json:"evictions"`
	ResidentPrograms int   `json:"resident_programs"`
	MemoHits         int64 `json:"memo_hits"`
	MemoMisses       int64 `json:"memo_misses"`
	MemoEntries      int   `json:"memo_entries"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	ResolvedFuncs    int64 `json:"resolved_functions"`
	SkeletonHits     int64 `json:"skeleton_hits"`
	SkeletonMisses   int64 `json:"skeleton_misses"`
}

// Stats snapshots the engine accounting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	resident := len(e.progs)
	e.mu.Unlock()
	return EngineStats{
		Requests:         e.requests.Load(),
		Errors:           e.errors.Load(),
		Evictions:        e.evictions.Load(),
		ResidentPrograms: resident,
		MemoHits:         e.memo.hits.Load(),
		MemoMisses:       e.memo.misses.Load(),
		MemoEntries:      e.memo.len(),
		CacheHits:        e.cacheHits.Load(),
		CacheMisses:      e.cacheMisses.Load(),
		ResolvedFuncs:    e.resolvedFns.Load(),
		SkeletonHits:     e.skeletonHits.Load(),
		SkeletonMisses:   e.skeletonMisses.Load(),
	}
}

// Drop removes a resident program, freeing its state. A later request
// for the name starts cold (and must push the full file set).
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.progs[programName(name)]; ok {
		delete(e.progs, programName(name))
		e.residentGauge()
	}
}

// AnalyzePackage runs one request over an externally loaded Package
// through the engine's request path — request accounting, the shared
// job memo and latency observation all apply — without making the
// package resident (no delta tracking, no eviction). The cfg is taken
// as given, exactly like the one-shot Analyze.
func (e *Engine) AnalyzePackage(pkg *Package, cfg Config) (*Report, error) {
	t0 := time.Now()
	e.requests.Add(1)
	if e.serverM != nil {
		e.serverM.Requests.Inc()
	}
	rep, err := analyze(pkg, cfg, e.memo)
	if err != nil {
		e.errors.Add(1)
		if e.serverM != nil {
			e.serverM.Errors.Inc()
		}
	} else {
		e.account(rep.Cache)
	}
	if e.serverM != nil {
		e.serverM.RequestMs.Observe(time.Since(t0).Milliseconds())
	}
	return rep, err
}
