package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rasc/internal/core"
	"rasc/internal/gosrc"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/obs"
	"rasc/internal/pdm"
)

// Package is a loaded and translated set of Go sources, ready to be
// analyzed any number of times.
type Package struct {
	// Files in load order.
	Files []gosrc.File
	// Prog is the lowered IR: the kernel program, its CFG, the call-graph
	// SCC DAG and per-function fingerprints/summary keys, plus the
	// translation metadata (notes, ignore directives, shared variables).
	Prog *ir.Program

	concOnce sync.Once
	conc     *concModel

	// skels caches the property-independent constraint skeleton per entry
	// function, shared read-only by every property checker's job. The
	// cache is keyed by the checker-registry generation and the solver
	// options the skeletons were built under; a mismatch (new checker
	// registered, different Options) drops it wholesale.
	skelMu  sync.Mutex
	skelKey skelCacheKey
	skels   map[string]*skelEntry
}

type skelCacheKey struct {
	gen  int
	opts core.Options
}

type skelEntry struct {
	once sync.Once
	sk   *pdm.Skeleton
	err  error
}

// skeleton returns the cached property-independent skeleton for entry,
// building it on first use. Concurrent callers for the same entry block
// on one build; distinct entries build independently. ob (nil OK)
// records the build as a trace span and feeds the skeleton-layer
// metrics; reuse of an already-built skeleton records nothing.
//
// With a snapshot-enabled cache session (cs non-nil), the build is
// first attempted as a snapshot decode — reconstructing the solved base
// layer straight from bytes, skipping translation and the solve — and a
// live build stores its snapshot for the next cold process. Snapshot
// failures of any kind demote silently to the live path.
func (p *Package) skeleton(entry string, opts core.Options, ob *obsState, cs *cacheSession) (*pdm.Skeleton, error) {
	key := skelCacheKey{gen: generation(), opts: opts}
	p.skelMu.Lock()
	if p.skels == nil || p.skelKey != key {
		p.skelKey = key
		p.skels = map[string]*skelEntry{}
	}
	e := p.skels[entry]
	if e == nil {
		e = &skelEntry{}
		p.skels[entry] = e
	}
	p.skelMu.Unlock()
	e.once.Do(func() {
		sp := ob.span("skeleton:" + entry)
		if cs != nil && cs.snapshots {
			dsp := sp.Child("snapshot.decode")
			sk, ok := cs.loadSkeleton(entry)
			dsp.Finish()
			if ok {
				e.sk = sk
				sp.SetAttr("snapshot", "hit")
				sp.SetAttr("deferred", sk.Deferred())
				sp.Finish()
				return
			}
			sp.SetAttr("snapshot", "miss")
		}
		callees := eventCallees()
		e.sk, e.err = pdm.BuildSkeleton(p.Prog, entry, opts,
			func(call *minic.CallExpr, _ string) bool { return callees[call.Name] })
		if e.err == nil {
			sp.SetAttr("deferred", e.sk.Deferred())
			if ob != nil && ob.pdmM != nil {
				ob.pdmM.SkeletonBuilds.Inc()
				ob.pdmM.DeferredStmts.Add(int64(e.sk.Deferred()))
			}
			if cs != nil && cs.snapshots {
				esp := sp.Child("snapshot.encode")
				cs.storeSkeleton(entry, e.sk)
				esp.Finish()
			}
		}
		sp.Finish()
	})
	return e.sk, e.err
}

// Config drives one Analyze run.
type Config struct {
	// Checkers to run; nil means every registered checker.
	Checkers []*Checker
	// Entries are the entry functions; nil means the package roots
	// (defined functions never called by another defined function).
	Entries []string
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// Opts configures the underlying constraint solver.
	Opts core.Options
	// KeepSuppressed reports suppressed diagnostics instead of dropping
	// them (still counted in Report.Suppressed).
	KeepSuppressed bool
	// Cache, when non-nil, enables incremental analysis: per-job results
	// are looked up by content summary before solving and stored after,
	// so repeat runs over unchanged code skip the solver entirely.
	// Suppression is applied to cached results afresh on every run, so
	// //rasc:ignore edits take effect without invalidating anything.
	Cache *Cache
	// NoSkeletonSnapshots disables the frozen-skeleton snapshot path of
	// the cache. By default (false), every live-built entry skeleton is
	// serialized beside the result records and the next cold process
	// reconstructs it straight from the bytes instead of re-translating
	// and re-solving; snapshots are keyed so that any code, option or
	// registry change demotes them to a live build. Only meaningful when
	// Cache is set.
	NoSkeletonSnapshots bool

	// Trace, when non-nil, records every driver phase — skeleton builds,
	// per-job cache lookups, solves and stores, the merge — as spans,
	// exportable as Chrome trace-event JSON (obs.Tracer.WriteJSON).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives solver, skeleton-layer, cache and
	// driver counters for the run (obs.Registry.WriteJSON to export).
	Metrics *obs.Registry
	// Explain attaches a solver-level derivation chain (Provenance) to
	// every diagnostic. Findings and their order are unchanged; only the
	// provenance field is added. Explain runs use distinct cache keys,
	// since cached records store diagnostics verbatim.
	Explain bool
	// Progress, when non-nil, receives rate-limited phase/job progress
	// lines (human consumption only; never part of the report).
	Progress *obs.Progress
}

// LoadPaths loads Go sources from a mix of files, directories and
// recursive "dir/..." patterns, and translates them as one package.
// Files ending in _test.go are skipped. The file order (and therefore
// duplicate-definition resolution) is the sorted path order.
func LoadPaths(paths []string) (*Package, error) {
	files, err := readPathFiles(paths)
	if err != nil {
		return nil, err
	}
	return LoadFiles(files)
}

// ReadPathFiles resolves LoadPaths' path patterns (files, directories,
// recursive "dir/..." trees) and reads the files without translating
// them, in the same sorted order LoadPaths analyzes them in. Server
// clients use it to assemble the file set they push to a resident
// engine.
func ReadPathFiles(paths []string) ([]gosrc.File, error) { return readPathFiles(paths) }

// readPathFiles resolves LoadPaths' path patterns and reads the files.
func readPathFiles(paths []string) ([]gosrc.File, error) {
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, p := range paths {
		switch {
		case strings.HasSuffix(p, "/...") || p == "...":
			root := strings.TrimSuffix(p, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
		default:
			info, err := os.Stat(p)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			if !info.IsDir() {
				// Explicit files are loaded even without a .go suffix.
				if !seen[p] {
					seen[p] = true
					names = append(names, p)
				}
				continue
			}
			entries, err := os.ReadDir(p)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			for _, e := range entries {
				if !e.IsDir() {
					add(filepath.Join(p, e.Name()))
				}
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %v", paths)
	}
	files := make([]gosrc.File, 0, len(names))
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, gosrc.File{Name: name, Src: string(src)})
	}
	return files, nil
}

// LoadFiles translates in-memory sources as one package. Lowering also
// surfaces CFG construction errors (unresolvable labels, stray
// break/continue) at load time, once, instead of per job.
func LoadFiles(files []gosrc.File) (*Package, error) {
	prog, err := gosrc.Lower(files)
	if err != nil {
		return nil, err
	}
	return &Package{Files: files, Prog: prog}, nil
}

// Roots returns the default entry functions: canonical names of defined
// functions that no other defined function calls, sorted; if the call
// graph has no such root (everything is called), every function is an
// entry.
func (p *Package) Roots() []string { return p.Prog.Roots() }

// fileOf maps a (canonical or alias) function name to its source file.
func (p *Package) fileOf(fn string) string { return p.Prog.FileOf(fn) }

// Analyze runs (checker x entry) jobs over a bounded worker pool. The
// property-independent constraint skeleton of each entry is built once
// (first job to need it) and shared read-only: each property job forks
// it and solves only its own event layer. The shared translated program,
// compiled properties and frozen skeletons are read-only, so jobs need
// no locking beyond the skeleton cache's.
//
// With cfg.Cache set, each job's raw result is first looked up by its
// content key — registry fingerprint, solver options, checker name, and
// the entry function's transitive summary digest — and solved only on a
// miss. A fully warm run therefore builds no skeleton and solves no
// constraint system at all, yet reproduces identical diagnostics and
// solver statistics; Report.Cache records hit/miss counts and which
// functions had to be re-solved.
func Analyze(pkg *Package, cfg Config) (*Report, error) {
	return NewEngine(EngineConfig{}).AnalyzePackage(pkg, cfg)
}

// analyze is the driver core shared by the one-shot wrapper and the
// resident Engine. mem (nil OK) is the engine's in-memory job memo,
// consulted before the on-disk cache and fed from every source (memo
// miss that hits disk, and fresh solves), so a warm engine replays jobs
// without touching disk at all. Memo keys pin the same content
// coordinates as disk keys, so results are byte-identical whichever
// layer serves them.
func analyze(pkg *Package, cfg Config, mem *jobMemo) (*Report, error) {
	checkers := cfg.Checkers
	if len(checkers) == 0 {
		checkers = All()
	}
	entries := cfg.Entries
	if len(entries) == 0 {
		entries = pkg.Roots()
	}
	for _, e := range entries {
		if _, ok := pkg.Prog.ByName[e]; !ok {
			return nil, fmt.Errorf("analysis: entry function %q not defined", e)
		}
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	ob := newObsState(&cfg)
	ob.recordSpecMetrics(checkers)
	// The disk session is created lazily, on the first memo miss that
	// needs it: session setup stamps every function against the cache
	// directory (one read per function), which a fully memoized
	// resident-engine request never needs. One-shot and cold runs miss
	// the memo on their first job and materialize it immediately, so
	// their behavior is unchanged.
	var disk *lazySession
	if cfg.Cache != nil {
		var cm *obs.CacheMetrics
		if ob != nil {
			cm = ob.cacheM
		}
		disk = &lazySession{mk: func() *cacheSession {
			cs := cfg.Cache.session(pkg, cfg.Opts, cfg.Explain, cm)
			cs.snapshots = !cfg.NoSkeletonSnapshots
			if ob != nil {
				cs.snapM = ob.snapM
			}
			return cs
		}}
	}
	// Memo key coordinates, mirroring cacheSession's key derivation.
	var memoRegFP, memoOpts, memoProg string
	if mem != nil {
		memoRegFP = registryFingerprint()
		memoOpts = fmt.Sprintf("%+v", cfg.Opts)
		if cfg.Explain {
			memoOpts += " explain"
		}
		memoProg = pkg.Prog.Digest.String()
	}
	summaryOf := func(entry string) string { return pkg.Prog.ByName[entry].Summary.String() }

	type job struct {
		checker *Checker
		entry   string
	}
	jobs := make([]job, 0, len(checkers)*len(entries))
	for _, c := range checkers {
		for _, e := range entries {
			jobs = append(jobs, job{c, e})
		}
	}
	if ob != nil {
		ob.progress.Phasef("analyzing: %d checker(s) x %d entry(ies), %d job(s)",
			len(checkers), len(entries), len(jobs))
		ob.progress.StartCount("jobs", len(jobs))
	}
	results := make([][]Diagnostic, len(jobs))
	stats := make([]core.Stats, len(jobs))
	errs := make([]error, len(jobs))
	// Per-request memo accounting (job-level lookups only), carried on
	// the Report for the server's access logs and flight recorder; the
	// memo's own counters stay engine-wide.
	var memoHits, memoMisses atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c, e := jobs[i].checker, jobs[i].entry
				// The memo is consulted before the job span opens: a memo
				// hit is a map lookup, and spanning each of them would put
				// the always-on flight recorder's cost on the fully-warm
				// hot path (hundreds of span allocations per request for
				// sub-microsecond work). Jobs that actually look at the
				// disk cache or solve — the ones that make a request slow
				// and worth inspecting — keep their full span tree; the
				// request span's memo hit/miss counts cover the rest.
				if mem != nil {
					if ds, st, ok := mem.loadJob(memoRegFP, memoOpts, memoProg, c.fingerprint(), e, summaryOf(e)); ok {
						memoHits.Add(1)
						results[i], stats[i] = ds, st
						ob.jobDone(false)
						continue
					}
					memoMisses.Add(1)
				}
				sp := ob.span("job:" + c.Name + "/" + e)
				cs := disk.get()
				if cs != nil {
					lsp := sp.Child("cache.lookup")
					ds, st, ok := cs.loadJob(c, e)
					lsp.Finish()
					if ok {
						results[i], stats[i] = ds, st
						if mem != nil {
							mem.storeJob(memoRegFP, memoOpts, memoProg, c.fingerprint(), e, summaryOf(e), ds, st)
						}
						sp.SetAttr("cache", "hit")
						sp.Finish()
						ob.jobDone(false)
						continue
					}
					sp.SetAttr("cache", "miss")
				}
				ssp := sp.Child("solve")
				results[i], stats[i], errs[i] = runJob(pkg, c, e, cfg.Opts, ob, cs)
				ssp.Finish()
				if errs[i] == nil {
					if cs != nil {
						wsp := sp.Child("cache.store")
						cs.storeJob(c, e, results[i], stats[i])
						wsp.Finish()
					}
					if mem != nil {
						mem.storeJob(memoRegFP, memoOpts, memoProg, c.fingerprint(), e, summaryOf(e), results[i], stats[i])
					}
				}
				sp.Finish()
				ob.jobDone(true)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Notes:      pkg.Prog.Notes,
		Files:      len(pkg.Files),
		Functions:  len(pkg.Prog.Funcs),
		Entries:    entries,
		Jobs:       len(jobs),
		MemoHits:   memoHits.Load(),
		MemoMisses: memoMisses.Load(),
	}
	// Aggregate solver statistics; a sum is independent of completion
	// order, so the report stays deterministic under any -parallel. Job
	// stats are per-property deltas; each entry's shared skeleton is
	// counted once, not once per property checker.
	for _, st := range stats {
		rep.Solver.Vars += st.Vars
		rep.Solver.ConsNodes += st.ConsNodes
		rep.Solver.Edges += st.Edges
	}
	hasProperty := false
	for _, c := range checkers {
		if c.Run == nil {
			hasProperty = true
			break
		}
	}
	if hasProperty {
		for _, e := range entries {
			// The skeleton's base stats are content-keyed too: a warm run
			// reconstructs them from the memo or cache instead of
			// rebuilding (and re-solving) the skeleton just to report its
			// size.
			if mem != nil {
				if base, ok := mem.loadEntry(memoRegFP, memoOpts, memoProg, e, summaryOf(e)); ok {
					rep.Solver.Vars += base.Vars
					rep.Solver.ConsNodes += base.ConsNodes
					rep.Solver.Edges += base.Edges
					continue
				}
			}
			cs := disk.get()
			if cs != nil {
				if base, ok := cs.loadEntry(e); ok {
					rep.Solver.Vars += base.Vars
					rep.Solver.ConsNodes += base.ConsNodes
					rep.Solver.Edges += base.Edges
					if mem != nil {
						mem.storeEntry(memoRegFP, memoOpts, memoProg, e, summaryOf(e), base)
					}
					continue
				}
			}
			sk, err := pkg.skeleton(e, cfg.Opts, ob, cs)
			if err != nil {
				return nil, err
			}
			base := sk.BaseStats()
			rep.Solver.Vars += base.Vars
			rep.Solver.ConsNodes += base.ConsNodes
			rep.Solver.Edges += base.Edges
			if cs != nil {
				cs.storeEntry(e, base)
			}
			if mem != nil {
				mem.storeEntry(memoRegFP, memoOpts, memoProg, e, summaryOf(e), base)
			}
		}
	}
	if cs := disk.made(); cs != nil {
		rep.Cache = cs.finish()
	} else if cfg.Cache != nil {
		// Fully memoized: the session was never needed. Zero stats keep
		// the report schema (and the engine's accounting) intact.
		rep.Cache = &CacheStats{}
	}
	for _, c := range checkers {
		rep.Checkers = append(rep.Checkers, c.Name)
	}
	sort.Strings(rep.Checkers)
	// Merge in job order (deterministic regardless of completion order),
	// dedup across entries, and apply suppression.
	msp := ob.span("merge")
	seen := map[string]bool{}
	for _, ds := range results {
		for _, d := range ds {
			k := d.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if pkg.suppressed(&d) {
				rep.Suppressed++
				if !cfg.KeepSuppressed {
					continue
				}
			}
			rep.Diagnostics = append(rep.Diagnostics, d)
		}
	}
	sortDiagnostics(rep.Diagnostics)
	msp.SetAttr("diagnostics", len(rep.Diagnostics))
	msp.Finish()
	if ob != nil && ob.driverM != nil {
		ob.driverM.Diagnostics.Add(int64(len(rep.Diagnostics)))
	}
	if ob != nil {
		ob.progress.Phasef("done: %d finding(s)", len(rep.Diagnostics))
	}
	return rep, nil
}

// suppressed reports whether a //rasc:ignore comment on the diagnostic's
// line, or a //rasc:ignore-file comment in its file, covers its checker.
func (p *Package) suppressed(d *Diagnostic) bool {
	if names, ok := p.Prog.FileIgnores[d.File]; ok && coversChecker(names, d.Checker) {
		return true
	}
	if lines, ok := p.Prog.Ignores[d.File]; ok {
		if names, ok := lines[d.Line]; ok && coversChecker(names, d.Checker) {
			return true
		}
	}
	return false
}

// coversChecker: an empty directive list suppresses every checker.
func coversChecker(names []string, checker string) bool {
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == checker {
			return true
		}
	}
	return false
}

// runJob executes one (checker, entry) job — a constraint solve for
// property checkers, a concurrency-model query for Run checkers — and
// maps the result to diagnostics plus solver statistics. ob (nil OK)
// supplies metric hooks and the explain flag; with explain on, every
// diagnostic leaves with a non-empty provenance chain, so cached
// records round-trip explain output unchanged.
func runJob(pkg *Package, c *Checker, entry string, opts core.Options, ob *obsState, cs *cacheSession) ([]Diagnostic, core.Stats, error) {
	if c.Run != nil {
		ds := c.Run(pkg, c, entry)
		if ob.explainOn() {
			ensureProvenance(ds)
		}
		return ds, core.Stats{}, nil
	}
	prop, events := c.compiled()
	sk, err := pkg.skeleton(entry, opts, ob, cs)
	if err != nil {
		return nil, core.Stats{}, fmt.Errorf("analysis: %s/%s: %w", c.Name, entry, err)
	}
	res, err := sk.CheckObs(prop, events, ob.pdmObs())
	if err != nil {
		return nil, core.Stats{}, fmt.Errorf("analysis: %s/%s: %w", c.Name, entry, err)
	}
	// The skeleton's structure is shared by every checker on this entry;
	// report only this property's layered work here. Analyze adds each
	// skeleton's base once.
	stats := res.Sys.Stats().Minus(res.Base)
	var ds []Diagnostic
	switch c.Mode {
	case ModeLeakAtExit:
		ds = leakDiagnostics(pkg, c, entry, res, events)
	default:
		ds = violationDiagnostics(pkg, c, entry, res)
	}
	if ob.explainOn() {
		ensureProvenance(ds)
	}
	return ds, stats, nil
}

func violationDiagnostics(pkg *Package, c *Checker, entry string, res *pdm.Result) []Diagnostic {
	var out []Diagnostic
	for _, v := range res.Violations {
		d := Diagnostic{
			Checker:  c.Name,
			Severity: c.Severity,
			File:     pkg.fileOf(v.Fn),
			Line:     v.Line,
			Message:  c.message(v.Label),
			Label:    v.Label,
			May:      v.May,
			Entry:    entry,
		}
		for _, tp := range v.Trace {
			d.Trace = append(d.Trace, TraceStep{
				File:  pkg.fileOf(tp.Fn),
				Fn:    tp.Fn,
				Line:  tp.Line,
				Enter: tp.Enter,
			})
		}
		d.Provenance = provDiag(pkg, v.Provenance)
		out = append(out, d)
	}
	return out
}

// provDiag positions a pdm provenance chain in the loaded sources.
func provDiag(pkg *Package, prov []pdm.ProvStep) []ProvStep {
	if len(prov) == 0 {
		return nil
	}
	out := make([]ProvStep, len(prov))
	for i, ps := range prov {
		out[i] = ProvStep{
			File:  pkg.fileOf(ps.Fn),
			Fn:    ps.Fn,
			Line:  ps.Line,
			Rule:  ps.Rule,
			Annot: ps.Annot,
		}
	}
	return out
}

// leakDiagnostics reports each label still accepting at the entry's
// exit, positioned at the earliest event that mentions the label (its
// acquisition site).
func leakDiagnostics(pkg *Package, c *Checker, entry string, res *pdm.Result, events *minic.EventMap) []Diagnostic {
	labels, mayOf := res.OpenInstancesAtExitDetail(entry)
	if len(labels) == 0 {
		return nil
	}
	type site struct {
		fn   string
		line int
	}
	// Restrict candidate sites to functions in the entry's call-graph
	// closure: for package-level resources (a shared semaphore, a pool)
	// the same label is touched by unrelated functions, and the finding
	// should point into the entry being reported.
	inClosure := map[string]bool{}
	for _, id := range pkg.Prog.Reachable(entry) {
		inClosure[pkg.Prog.Funcs[id].Name] = true
	}
	sites := map[string]site{}
	for _, n := range res.CFG().Nodes {
		if n.Kind != minic.NAction || !inClosure[n.Fn] {
			continue
		}
		ev, ok := events.Match(n.Call, n.AssignTo)
		if !ok || ev.Label == "" {
			continue
		}
		if s, ok := sites[ev.Label]; !ok || n.Line < s.line {
			sites[ev.Label] = site{n.Fn, n.Line}
		}
	}
	var out []Diagnostic
	for _, lbl := range labels {
		s, ok := sites[lbl]
		if !ok {
			// No event site (shouldn't happen): fall back to the entry
			// function's definition line.
			s = site{entry, pkg.Prog.MC.ByName[entry].Line}
		}
		out = append(out, Diagnostic{
			Checker:  c.Name,
			Severity: c.Severity,
			File:     pkg.fileOf(s.fn),
			Line:     s.line,
			Message:  c.message(lbl),
			Label:    lbl,
			May:      mayOf[lbl],
			Entry:    entry,
			// ExitProvenance returns nil unless the run was checked with
			// explain on.
			Provenance: provDiag(pkg, res.ExitProvenance(entry, lbl)),
		})
	}
	return out
}
