package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc/internal/gosrc"
)

// cacheSrc: Top -> mid -> leaf (double lock) and Other -> ok (clean),
// two disjoint call trees so an edit in one must not re-solve the other.
const cacheSrc = `package p

import "sync"

var mu sync.Mutex

func Top() { mid() }

func mid() { leaf() }

func leaf() {
	mu.Lock()
	mu.Lock() // BUG
}

func Other() { ok() }

func ok() {
	mu.Lock()
	mu.Unlock()
}
`

func analyzeCached(t *testing.T, dir, src string) *Report {
	t.Helper()
	pkg, err := LoadFiles([]gosrc.File{{Name: "c.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	dl, _ := Get("doublelock")
	rep, err := Analyze(pkg, Config{Checkers: []*Checker{dl}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil {
		t.Fatal("cached run reported no CacheStats")
	}
	return rep
}

func findingsJSON(t *testing.T, rep *Report) string {
	t.Helper()
	shadow := *rep
	shadow.Cache = nil
	b, err := json.Marshal(&shadow)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A warm fully-cached run must hit on every lookup, re-solve zero
// functions, and reproduce a byte-identical report.
func TestCacheWarmRunIsFreeAndIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := analyzeCached(t, dir, cacheSrc)
	if cold.Cache.Hits != 0 || cold.Cache.Misses == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", cold.Cache.Hits, cold.Cache.Misses)
	}
	if cold.Cache.ResolvedFunctions != 5 || cold.Cache.TotalFunctions != 5 {
		t.Fatalf("cold run resolved %d/%d functions, want 5/5 (%v)",
			cold.Cache.ResolvedFunctions, cold.Cache.TotalFunctions, cold.Cache.Resolved)
	}
	warm := analyzeCached(t, dir, cacheSrc)
	if warm.Cache.Misses != 0 || warm.Cache.Hits != cold.Cache.Misses {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0",
			warm.Cache.Hits, warm.Cache.Misses, cold.Cache.Misses)
	}
	if warm.Cache.ResolvedFunctions != 0 || len(warm.Cache.Resolved) != 0 {
		t.Fatalf("warm run re-solved %v", warm.Cache.Resolved)
	}
	if warm.Cache.HitRate() != 100 {
		t.Fatalf("warm hit rate = %v", warm.Cache.HitRate())
	}
	if findingsJSON(t, cold) != findingsJSON(t, warm) {
		t.Fatalf("warm report differs from cold:\ncold: %s\nwarm: %s",
			findingsJSON(t, cold), findingsJSON(t, warm))
	}
	if len(cold.Diagnostics) != 1 || cold.Diagnostics[0].Checker != "doublelock" {
		t.Fatalf("corpus should yield exactly the doublelock finding, got %+v", cold.Diagnostics)
	}
}

// Editing one function re-solves exactly its SCC and transitive callers;
// the disjoint Other/ok tree stays cached.
func TestCacheEditResolvesOnlyDependents(t *testing.T) {
	dir := t.TempDir()
	analyzeCached(t, dir, cacheSrc)
	// Same-line edit (the fingerprint includes line numbers, so inserting
	// lines would legitimately invalidate everything below the edit).
	edited := strings.Replace(cacheSrc, "mu.Lock() // BUG", "mu.Unlock()", 1)
	rep := analyzeCached(t, dir, edited)
	if got := strings.Join(rep.Cache.Resolved, ","); got != "Top,leaf,mid" {
		t.Fatalf("resolved = %q, want Top,leaf,mid", got)
	}
	if rep.Cache.Hits == 0 {
		t.Fatal("the untouched Other/ok tree should still hit")
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("fixed program still reports %+v", rep.Diagnostics)
	}
	// And the fix itself is cacheable: a warm re-run of the edited source
	// is free again.
	rerun := analyzeCached(t, dir, edited)
	if rerun.Cache.Misses != 0 || rerun.Cache.ResolvedFunctions != 0 {
		t.Fatalf("re-run after edit: misses=%d resolved=%d", rerun.Cache.Misses, rerun.Cache.ResolvedFunctions)
	}
}

// Suppression comments are not part of function fingerprints: adding or
// removing //rasc:ignore must take effect on a fully warm cache — the
// cache stores pre-suppression results and the merge phase re-applies
// the current directives, so a stale cache can neither hide a finding
// nor resurrect a suppressed one.
func TestCacheSuppressionStaleness(t *testing.T) {
	dir := t.TempDir()
	base := analyzeCached(t, dir, cacheSrc)
	if len(base.Diagnostics) != 1 || base.Suppressed != 0 {
		t.Fatalf("baseline: %d findings, %d suppressed", len(base.Diagnostics), base.Suppressed)
	}
	ignored := strings.Replace(cacheSrc, "mu.Lock() // BUG", "mu.Lock() //rasc:ignore", 1)
	rep := analyzeCached(t, dir, ignored)
	if rep.Cache.Misses != 0 {
		t.Fatalf("an ignore-comment edit should stay fully cached, got %d misses", rep.Cache.Misses)
	}
	if len(rep.Diagnostics) != 0 || rep.Suppressed != 1 {
		t.Fatalf("with ignore: %d findings, %d suppressed", len(rep.Diagnostics), rep.Suppressed)
	}
	// Removing the directive resurfaces the finding from the same cache.
	back := analyzeCached(t, dir, cacheSrc)
	if back.Cache.Misses != 0 {
		t.Fatalf("removing the ignore should stay fully cached, got %d misses", back.Cache.Misses)
	}
	if len(back.Diagnostics) != 1 || back.Suppressed != 0 {
		t.Fatalf("without ignore: %d findings, %d suppressed", len(back.Diagnostics), back.Suppressed)
	}
}

// Corrupt records — truncation, garbage — demote to misses with a note;
// the run never panics and reports the same findings as a cold run.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	cold := analyzeCached(t, dir, cacheSrc)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	for i, e := range ents {
		path := filepath.Join(dir, e.Name())
		switch i % 2 {
		case 0: // truncate mid-file
			raw, _ := os.ReadFile(path)
			os.WriteFile(path, raw[:len(raw)/2], 0o644)
		case 1: // replace with garbage
			os.WriteFile(path, []byte("\x00not json\xff"), 0o644)
		}
		mangled++
	}
	if mangled == 0 {
		t.Fatal("no cache records written")
	}
	rep := analyzeCached(t, dir, cacheSrc)
	if rep.Cache.Hits != 0 {
		t.Fatalf("mangled cache still hit %d times", rep.Cache.Hits)
	}
	if len(rep.Cache.Notes) == 0 {
		t.Fatal("corruption must be noted")
	}
	if findingsJSON(t, rep) != findingsJSON(t, cold) {
		t.Fatal("corrupted cache changed the report")
	}
	// The mangled records were discarded and rewritten: the next run is
	// warm again.
	again := analyzeCached(t, dir, cacheSrc)
	if again.Cache.Misses != 0 {
		t.Fatalf("recovery run: misses=%d", again.Cache.Misses)
	}
}

// Records written under another format version read as misses with a
// note — a version bump falls back to a cold run, never a wrong report.
func TestCacheVersionSkew(t *testing.T) {
	dir := t.TempDir()
	cold := analyzeCached(t, dir, cacheSrc)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".json") {
			// Skeleton snapshots are not JSON envelopes; their version
			// skew is covered by TestSkeletonSnapshotVersionSkew.
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env map[string]json.RawMessage
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		env["version"] = json.RawMessage("999")
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		os.WriteFile(path, out, 0o644)
	}
	rep := analyzeCached(t, dir, cacheSrc)
	if rep.Cache.Hits != 0 {
		t.Fatalf("version-skewed cache still hit %d times", rep.Cache.Hits)
	}
	found := false
	for _, n := range rep.Cache.Notes {
		if strings.Contains(n, "format version 999") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skew note missing: %v", rep.Cache.Notes)
	}
	if findingsJSON(t, rep) != findingsJSON(t, cold) {
		t.Fatal("version skew changed the report")
	}
}
