package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"rasc/internal/obs"
)

// analyzeJSON runs Analyze with cfg and returns the rendered JSON
// report, the canonical byte-identity surface.
func analyzeJSON(t *testing.T, pkg *Package, cfg Config) []byte {
	t.Helper()
	rep, err := Analyze(pkg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Findings and every rendered byte must be identical whether the full
// observability stack (tracer, metrics, progress) is on or off: the
// hooks observe the run, they never steer it.
func TestObservabilityDoesNotChangeReport(t *testing.T) {
	plain := analyzeJSON(t, loadCorpus(t), Config{})

	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	var progOut bytes.Buffer
	instrumented := analyzeJSON(t, loadCorpus(t), Config{
		Trace:    tr,
		Metrics:  reg,
		Progress: obs.NewProgress(&progOut),
	})
	if !bytes.Equal(plain, instrumented) {
		t.Errorf("instrumented report differs from plain report:\nplain:\n%s\ninstrumented:\n%s", plain, instrumented)
	}

	// The instruments themselves must have observed the run.
	var traceBuf bytes.Buffer
	if err := tr.WriteJSON(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(traceBuf.Bytes()); err != nil {
		t.Errorf("trace JSON invalid: %v", err)
	}
	var metricsBuf bytes.Buffer
	if err := reg.WriteJSON(&metricsBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetricsJSON(metricsBuf.Bytes()); err != nil {
		t.Errorf("metrics JSON invalid: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["driver.jobs"] == 0 {
		t.Error("driver.jobs counter did not observe any jobs")
	}
	if snap.Counters["solver.edges_added"] == 0 {
		t.Error("solver.edges_added counter did not observe any edges")
	}
	if progOut.Len() == 0 {
		t.Error("progress writer saw no output")
	}
}

// An explain run attaches a non-empty provenance chain to every
// diagnostic — solver-derived chains for property checkers, synthesized
// witness chains for the model-based concurrency checkers — without
// changing any pre-existing report field.
func TestExplainProvenanceOnAllFindings(t *testing.T) {
	for _, corpus := range []struct {
		name  string
		paths []string
	}{
		{"src", []string{"testdata/src/..."}},
		{"race", []string{"testdata/race"}},
	} {
		t.Run(corpus.name, func(t *testing.T) {
			pkg, err := LoadPaths(corpus.paths)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Analyze(pkg, Config{Explain: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Diagnostics) == 0 {
				t.Fatal("corpus produced no findings")
			}
			for _, d := range rep.Diagnostics {
				if len(d.Provenance) == 0 {
					t.Errorf("%s finding at %s:%d has no provenance", d.Checker, d.File, d.Line)
					continue
				}
				for i, ps := range d.Provenance {
					if ps.Rule == "" {
						t.Errorf("%s finding at %s:%d: provenance hop %d has no rule", d.Checker, d.File, d.Line, i)
					}
				}
			}
		})
	}
}

// Stripping the provenance from an explain run must reproduce the
// plain run byte-for-byte: explain adds the provenance field and
// nothing else.
func TestExplainOnlyAddsProvenance(t *testing.T) {
	plain := analyzeJSON(t, loadCorpus(t), Config{})

	rep, err := Analyze(loadCorpus(t), Config{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Diagnostics {
		rep.Diagnostics[i].Provenance = nil
	}
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, buf.Bytes()) {
		t.Errorf("explain run changed more than provenance:\nplain:\n%s\nexplain (provenance stripped):\n%s", plain, buf.Bytes())
	}
}

// Explain and non-explain runs must use distinct cache keys: a record
// stored without provenance must never satisfy an explain run (whose
// diagnostics need the chains), and vice versa. Warm same-mode runs
// must still hit.
func TestCacheSeparatesExplainRecords(t *testing.T) {
	dir := t.TempDir()
	run := func(explain bool) *Report {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(loadCorpus(t), Config{Cache: cache, Explain: explain})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cold := run(false)
	if cold.Cache.Hits != 0 {
		t.Fatalf("cold run hit %d times, want 0", cold.Cache.Hits)
	}
	coldExplain := run(true)
	if coldExplain.Cache.Hits != 0 {
		t.Errorf("explain run hit the non-explain cache %d times, want 0", coldExplain.Cache.Hits)
	}
	warmExplain := run(true)
	if warmExplain.Cache.Misses != 0 {
		t.Errorf("warm explain run missed %d times, want 0", warmExplain.Cache.Misses)
	}
	for _, d := range warmExplain.Diagnostics {
		if len(d.Provenance) == 0 {
			t.Errorf("cached explain finding at %s:%d lost its provenance", d.File, d.Line)
		}
	}
	warm := run(false)
	if warm.Cache.Misses != 0 {
		t.Errorf("warm non-explain run missed %d times, want 0", warm.Cache.Misses)
	}
	for _, d := range warm.Diagnostics {
		if len(d.Provenance) != 0 {
			t.Errorf("non-explain finding at %s:%d carries provenance from the cache", d.File, d.Line)
		}
	}
}

// LoadPathsTraced must load the same package as LoadPaths — same files,
// same functions, same findings — while recording load/translate/lower
// spans; with a nil tracer it is exactly LoadPaths.
func TestLoadPathsTracedEquivalence(t *testing.T) {
	plainPkg, err := LoadPaths([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	tracedPkg, err := LoadPathsTraced([]string{"testdata/src/..."}, tr)
	if err != nil {
		t.Fatal(err)
	}
	nilPkg, err := LoadPathsTraced([]string{"testdata/src/..."}, nil)
	if err != nil {
		t.Fatal(err)
	}

	plain := analyzeJSON(t, plainPkg, Config{})
	traced := analyzeJSON(t, tracedPkg, Config{})
	viaNil := analyzeJSON(t, nilPkg, Config{})
	if !bytes.Equal(plain, traced) {
		t.Error("LoadPathsTraced produced a different report than LoadPaths")
	}
	if !bytes.Equal(plain, viaNil) {
		t.Error("LoadPathsTraced(nil tracer) produced a different report than LoadPaths")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"load": false, "translate": false, "ir.lower": false}
	for _, ev := range tf.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace has no %q span", name)
		}
	}
}

// SARIF output of an explain run carries the provenance chain in each
// result's property bag; a non-explain run's SARIF must not mention it.
func TestSARIFProvenanceProperty(t *testing.T) {
	rep, err := Analyze(loadCorpus(t), Config{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []struct {
				Properties map[string]json.RawMessage `json:"properties"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatal("unexpected SARIF shape")
	}
	for i, res := range log.Runs[0].Results {
		if _, ok := res.Properties["provenance"]; !ok {
			t.Errorf("SARIF result %d has no provenance property", i)
		}
	}

	plainRep, err := Analyze(loadCorpus(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := plainRep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("provenance")) {
		t.Error("non-explain SARIF mentions provenance")
	}
}
