package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Text writes the human-readable report: one line per diagnostic with
// its witness trace(s) indented, then notes and a summary.
func (r *Report) Text(w io.Writer) error {
	for _, d := range r.Diagnostics {
		// May verdicts rest on a saturated counter/relation valuation; the
		// marker keeps definite findings byte-identical to before.
		may := ""
		if d.May {
			may = " (may)"
		}
		if _, err := fmt.Fprintf(w, "%s:%d: %s: %s: %s%s\n", d.File, d.Line, d.Severity, d.Checker, d.Message, may); err != nil {
			return err
		}
		if err := writeTrace(w, d.Trace); err != nil {
			return err
		}
		if len(d.SecondTrace) > 0 {
			if _, err := fmt.Fprintln(w, "  concurrent with:"); err != nil {
				return err
			}
			if err := writeTrace(w, d.SecondTrace); err != nil {
				return err
			}
		}
		if len(d.Provenance) > 0 {
			if _, err := fmt.Fprintln(w, "  derivation:"); err != nil {
				return err
			}
			for _, ps := range d.Provenance {
				annot := ""
				if ps.Annot != "" {
					annot = " [" + ps.Annot + "]"
				}
				loc := ps.File
				if ps.Fn != "" {
					loc = ps.Fn + " (" + ps.File + ")"
				}
				if _, err := fmt.Fprintf(w, "    %-6s %s:%d%s\n", ps.Rule, loc, ps.Line, annot); err != nil {
					return err
				}
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "%s:%d: note: translate: %s\n", n.File, n.Line, n.Msg); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d finding(s), %d suppressed; %d file(s), %d function(s), %d job(s)\n",
		len(r.Diagnostics), r.Suppressed, r.Files, r.Functions, r.Jobs)
	return err
}

func writeTrace(w io.Writer, trace []TraceStep) error {
	for _, tp := range trace {
		arrow := "via"
		if tp.Enter {
			arrow = "into"
		}
		if _, err := fmt.Fprintf(w, "    %s %s (%s:%d)\n", arrow, tp.Fn, tp.File, tp.Line); err != nil {
			return err
		}
	}
	return nil
}

// Github writes one GitHub Actions workflow command per diagnostic
// (::error file=...,line=...::message), so a CI step's findings surface
// as inline annotations on the pull request without extra tooling.
func (r *Report) Github(w io.Writer) error {
	for _, d := range r.Diagnostics {
		level := "error"
		switch d.Severity {
		case SeverityWarning:
			level = "warning"
		case SeverityNote:
			level = "notice"
		}
		msg := d.Message
		if d.Checker != "" {
			msg = d.Checker + ": " + msg
		}
		if _, err := fmt.Fprintf(w, "::%s file=%s,line=%d::%s\n", level, d.File, d.Line, escapeGithub(msg)); err != nil {
			return err
		}
	}
	return nil
}

// escapeGithub applies the workflow-command data escaping rules.
func escapeGithub(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			out = append(out, "%25"...)
		case '\r':
			out = append(out, "%0D"...)
		case '\n':
			out = append(out, "%0A"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// JSON writes the report as indented JSON.
func (r *Report) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SARIF 2.1.0 output, for CI annotation tooling.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
	// Properties is the SARIF property bag; explain runs carry the
	// finding's derivation chain under the "provenance" key.
	Properties map[string]any `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

// SARIF writes the report in SARIF 2.1.0, one run with one rule per
// checker that produced or could have produced findings; witness traces
// become codeFlows.
func (r *Report) SARIF(w io.Writer) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "gocheck",
			InformationURI: "https://example.invalid/rasc",
		}},
		Results: []sarifResult{},
	}
	for _, name := range r.Checkers {
		rule := sarifRule{ID: name}
		if c, ok := Get(name); ok {
			rule.ShortDescription = sarifMessage{Text: c.Doc}
		}
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, rule)
	}
	for _, d := range r.Diagnostics {
		res := sarifResult{
			RuleID:  d.Checker,
			Level:   d.Severity.String(),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line},
				},
			}},
		}
		// A two-sided finding (race, lockorder) renders as ONE codeFlow
		// with TWO threadFlows — SARIF's native shape for concurrent
		// witness paths.
		var flows []sarifThreadFlow
		for _, trace := range [][]TraceStep{d.Trace, d.SecondTrace} {
			if len(trace) == 0 {
				continue
			}
			tf := sarifThreadFlow{}
			for _, tp := range trace {
				tf.Locations = append(tf.Locations, sarifThreadFlowLocation{
					Location: sarifLocation{
						PhysicalLocation: sarifPhysicalLocation{
							ArtifactLocation: sarifArtifactLocation{URI: tp.File},
							Region:           sarifRegion{StartLine: tp.Line},
						},
						Message: &sarifMessage{Text: tp.Fn},
					},
				})
			}
			flows = append(flows, tf)
		}
		if len(flows) > 0 {
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: flows}}
		}
		if len(d.Provenance) > 0 {
			res.Properties = map[string]any{"provenance": d.Provenance}
		}
		if d.May {
			if res.Properties == nil {
				res.Properties = map[string]any{}
			}
			res.Properties["may"] = true
		}
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
