package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Text writes the human-readable report: one line per diagnostic with
// its witness trace indented, then notes and a summary.
func (r *Report) Text(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintf(w, "%s:%d: %s: %s: %s\n", d.File, d.Line, d.Severity, d.Checker, d.Message); err != nil {
			return err
		}
		for _, tp := range d.Trace {
			arrow := "via"
			if tp.Enter {
				arrow = "into"
			}
			if _, err := fmt.Fprintf(w, "    %s %s (%s:%d)\n", arrow, tp.Fn, tp.File, tp.Line); err != nil {
				return err
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "%s:%d: note: translate: %s\n", n.File, n.Line, n.Msg); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d finding(s), %d suppressed; %d file(s), %d function(s), %d job(s)\n",
		len(r.Diagnostics), r.Suppressed, r.Files, r.Functions, r.Jobs)
	return err
}

// JSON writes the report as indented JSON.
func (r *Report) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SARIF 2.1.0 output, for CI annotation tooling.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

// SARIF writes the report in SARIF 2.1.0, one run with one rule per
// checker that produced or could have produced findings; witness traces
// become codeFlows.
func (r *Report) SARIF(w io.Writer) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "gocheck",
			InformationURI: "https://example.invalid/rasc",
		}},
		Results: []sarifResult{},
	}
	for _, name := range r.Checkers {
		rule := sarifRule{ID: name}
		if c, ok := Get(name); ok {
			rule.ShortDescription = sarifMessage{Text: c.Doc}
		}
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, rule)
	}
	for _, d := range r.Diagnostics {
		res := sarifResult{
			RuleID:  d.Checker,
			Level:   d.Severity.String(),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line},
				},
			}},
		}
		if len(d.Trace) > 0 {
			tf := sarifThreadFlow{}
			for _, tp := range d.Trace {
				tf.Locations = append(tf.Locations, sarifThreadFlowLocation{
					Location: sarifLocation{
						PhysicalLocation: sarifPhysicalLocation{
							ArtifactLocation: sarifArtifactLocation{URI: tp.File},
							Region:           sarifRegion{StartLine: tp.Line},
						},
						Message: &sarifMessage{Text: tp.Fn},
					},
				})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{tf}}}
		}
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
