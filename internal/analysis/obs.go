package analysis

import (
	"rasc/internal/gosrc"
	"rasc/internal/ir"
	"rasc/internal/obs"
	"rasc/internal/pdm"
)

// obsState bundles one Analyze run's observability plumbing: the span
// tracer, progress ticker, explain flag and the per-subsystem metric
// bundles derived from Config.Metrics. A nil *obsState (observability
// fully off) short-circuits every helper, so the disabled path costs
// one nil test per hook site.
type obsState struct {
	tracer   *obs.Tracer
	progress *obs.Progress
	explain  bool

	solver  *obs.SolverMetrics
	pdmM    *obs.PDMMetrics
	cacheM  *obs.CacheMetrics
	snapM   *obs.SnapshotMetrics
	driverM *obs.DriverMetrics
	specM   *obs.SpecMetrics
}

func newObsState(cfg *Config) *obsState {
	if cfg.Trace == nil && cfg.Metrics == nil && !cfg.Explain && cfg.Progress == nil {
		return nil
	}
	ob := &obsState{tracer: cfg.Trace, progress: cfg.Progress, explain: cfg.Explain}
	if cfg.Metrics != nil {
		ob.solver = obs.NewSolverMetrics(cfg.Metrics)
		ob.pdmM = obs.NewPDMMetrics(cfg.Metrics)
		ob.cacheM = obs.NewCacheMetrics(cfg.Metrics)
		ob.snapM = obs.NewSnapshotMetrics(cfg.Metrics)
		ob.driverM = obs.NewDriverMetrics(cfg.Metrics)
		ob.specM = obs.NewSpecMetrics(cfg.Metrics)
	}
	return ob
}

// recordSpecMetrics feeds the counting-spec bundle from the selected
// checkers' compiled properties, once per Analyze run. These are static
// per-property facts (monoid size, expanded states, saturating tracker
// edges), so a warm cached run reports them identically to a cold one.
func (o *obsState) recordSpecMetrics(checkers []*Checker) {
	if o == nil || o.specM == nil {
		return
	}
	for _, c := range checkers {
		if c.Run != nil {
			continue
		}
		prop, _ := c.compiled()
		if len(prop.Counters) == 0 && len(prop.Relations) == 0 {
			continue
		}
		o.specM.CountingCheckers.Inc()
		o.specM.CounterMonoidSize.SetMax(int64(prop.Mon.Size()))
		o.specM.CounterStates.SetMax(int64(prop.Stats.ExpandedStates))
		o.specM.SaturatingEdges.Add(int64(prop.Stats.SaturatingEdges))
		o.specM.Relations.Add(int64(len(prop.Relations)))
		o.specM.RelationStates.SetMax(int64(prop.Stats.RelationStates))
		o.specM.RelationSaturations.Add(int64(prop.Stats.RelationSaturatingEdges))
	}
}

// span opens a top-level trace span; nil-safe at every layer.
func (o *obsState) span(name string) *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.Start(name)
}

// pdmObs builds the skeleton layer's hook bundle, nil when nothing in
// it would fire.
func (o *obsState) pdmObs() *pdm.Obs {
	if o == nil || (o.solver == nil && o.pdmM == nil && !o.explain) {
		return nil
	}
	return &pdm.Obs{Solver: o.solver, PDM: o.pdmM, Explain: o.explain}
}

// jobDone accounts one finished (checker × entry) job.
func (o *obsState) jobDone(solved bool) {
	if o == nil {
		return
	}
	if o.driverM != nil {
		o.driverM.Jobs.Inc()
		if solved {
			o.driverM.JobsSolved.Inc()
		}
	}
	o.progress.Tick()
}

// explainOn reports whether provenance extraction is requested.
func (o *obsState) explainOn() bool { return o != nil && o.explain }

// ensureProvenance guarantees that every diagnostic of an explain run
// carries a non-empty derivation chain. Property-checker findings
// already carry solver-level chains; findings without one (Run-based
// checkers like race and lockorder, whose evidence is a concurrency-
// model witness, and leak findings without a traceable fact) get a
// chain synthesized from their witness trace. Synthesized chains are
// marked by their rules (seed/enter/step/access/finding, never the
// solver rules edge/wrap/pop) — they describe the model's witness
// path, not a constraint derivation.
func ensureProvenance(ds []Diagnostic) {
	for i := range ds {
		d := &ds[i]
		if len(d.Provenance) > 0 {
			continue
		}
		if len(d.Trace) == 0 {
			d.Provenance = []ProvStep{{File: d.File, Line: d.Line, Rule: "finding"}}
			continue
		}
		for j, tp := range d.Trace {
			rule := "step"
			if tp.Enter {
				rule = "enter"
			}
			if j == 0 {
				rule = "seed"
			} else if j == len(d.Trace)-1 {
				rule = "access"
			}
			d.Provenance = append(d.Provenance, ProvStep{
				File: tp.File, Fn: tp.Fn, Line: tp.Line, Rule: rule,
			})
		}
	}
}

// LoadPathsTraced is LoadPaths with the load phase recorded as a trace
// span; a nil tracer makes it equivalent to LoadPaths.
func LoadPathsTraced(paths []string, tr *obs.Tracer) (*Package, error) {
	sp := tr.Start("load")
	files, err := readPathFiles(paths)
	sp.SetAttr("files", len(files))
	sp.Finish()
	if err != nil {
		return nil, err
	}
	return LoadFilesTraced(files, tr)
}

// LoadFilesTraced is LoadFiles with the translate and IR-lowering
// phases recorded as separate trace spans. It mirrors gosrc.Lower,
// split so each phase gets its own span.
func LoadFilesTraced(files []gosrc.File, tr *obs.Tracer) (*Package, error) {
	tsp := tr.Start("translate")
	trn, err := gosrc.TranslateFiles(files)
	tsp.Finish()
	if err != nil {
		return nil, err
	}
	lsp := tr.Start("ir.lower")
	prog, err := ir.New(trn.Prog, ir.Meta{
		Notes:       trn.Notes,
		Ignores:     trn.Ignores,
		FileIgnores: trn.FileIgnores,
		Shared:      trn.Shared,
	})
	if err == nil {
		lsp.SetAttr("functions", len(prog.Funcs))
	}
	lsp.Finish()
	if err != nil {
		return nil, err
	}
	return &Package{Files: files, Prog: prog}, nil
}
