// Package analysis is the package-level static-analysis driver: it loads
// a directory tree of Go files, translates them into the toolkit's
// intermediate form once, and runs a registry of typestate checkers —
// each a regularly-annotated-set-constraint property (§6) — concurrently
// over the program's entry functions. Diagnostics are first-class values
// with stable positions, //rasc:ignore suppression, and text, JSON and
// SARIF renderers so the output can feed CI annotation tooling.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"rasc/internal/minic"
	"rasc/internal/spec"
)

// Mode selects how a checker turns solver results into diagnostics.
type Mode int

const (
	// ModeViolations reports each property violation (transition into an
	// accepting error state) with its witness trace.
	ModeViolations Mode = iota
	// ModeLeakAtExit reports each parameter label whose automaton copy is
	// accepting when the entry function exits (resource-leak shape, like
	// the open-descriptor query of §6.4.1).
	ModeLeakAtExit
)

// Severity ranks diagnostics.
type Severity int

// Severities, ordered from most to least severe.
const (
	SeverityError Severity = iota
	SeverityWarning
	SeverityNote
)

// String returns the SARIF-compatible level name.
func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

// MarshalJSON renders the severity as its level name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a level name back into a Severity.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = SeverityError
	case `"warning"`:
		*s = SeverityWarning
	case `"note"`:
		*s = SeverityNote
	default:
		return fmt.Errorf("analysis: unknown severity %s", b)
	}
	return nil
}

// Checker is one registered API-usage property. The property and event
// map are built lazily, once, and shared across concurrent jobs: compiled
// properties (DFA + transition monoid) are read-only after construction.
//
// A checker is either property-based (NewProperty + NewEvents, solved
// with the RASC pushdown engine) or model-based (Run set, inspecting the
// package's concurrency model directly — the race and lockorder
// checkers). Exactly one of the two forms must be provided.
type Checker struct {
	// Name is the registry key ("doublelock").
	Name string
	// Doc is a one-line description, shown by -list and in SARIF rules.
	Doc string
	// Severity of the produced diagnostics.
	Severity Severity
	// Mode selects the result query.
	Mode Mode
	// NewProperty compiles the property specification.
	NewProperty func() *spec.Property
	// NewEvents builds the call-to-alphabet event map.
	NewEvents func() *minic.EventMap
	// Run, when set, replaces the property solve: the checker computes
	// its diagnostics from the package directly. Run must be safe for
	// concurrent calls with distinct entries.
	Run func(pkg *Package, c *Checker, entry string) []Diagnostic
	// Message is the diagnostic text; a "%s" verb, if present, receives
	// the parameter label (the offending mutex, file, rows value, ...).
	Message string
	// Spec is the property specification source the checker compiles
	// (property-based checkers). It feeds the checker's content
	// fingerprint, so editing a spec invalidates cached results.
	Spec string
	// Version is a manual content-version tag for checkers whose
	// semantics live in code the fingerprint cannot see — bump it when a
	// Run checker's algorithm or a property's event mapping changes
	// behavior without changing Spec.
	Version string

	once   sync.Once
	prop   *spec.Property
	events *minic.EventMap
}

func (c *Checker) compiled() (*spec.Property, *minic.EventMap) {
	c.once.Do(func() {
		c.prop = c.NewProperty()
		c.events = c.NewEvents()
	})
	return c.prop, c.events
}

// Domain describes the checker's annotation domain for display: "model"
// for model-based checkers (Run set), otherwise the compiled property's
// domain — "regular" for plain finite-state specs, "counting(c≤4)" style
// for bounded-counter ones.
func (c *Checker) Domain() string {
	if c.Run != nil {
		return "model"
	}
	prop, _ := c.compiled()
	return prop.Domain()
}

// message renders the diagnostic text for a parameter label.
func (c *Checker) message(label string) string {
	if label == "" {
		label = "?"
	}
	if containsVerb(c.Message) {
		return fmt.Sprintf(c.Message, label)
	}
	return c.Message
}

func containsVerb(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 's' {
			return true
		}
	}
	return false
}

var (
	regMu    sync.RWMutex
	regGen   int
	registry = map[string]*Checker{}
)

// Register adds a checker to the global registry. Registering a
// duplicate name panics: checker names are part of the suppression and
// CLI surface.
func Register(c *Checker) {
	regMu.Lock()
	defer regMu.Unlock()
	propertyBased := c.NewProperty != nil && c.NewEvents != nil
	if c.Name == "" || propertyBased == (c.Run != nil) {
		panic("analysis: Register: checker needs a name and exactly one of Run or NewProperty+NewEvents")
	}
	if _, dup := registry[c.Name]; dup {
		panic("analysis: Register: duplicate checker " + c.Name)
	}
	registry[c.Name] = c
	regGen++
}

// generation identifies the registry state; it changes whenever a
// checker registers, invalidating skeletons whose deferred-statement set
// was computed against the smaller registry.
func generation() int {
	regMu.RLock()
	defer regMu.RUnlock()
	return regGen
}

// fingerprint renders the checker's analysis-relevant content: identity,
// diagnostic shape, declared spec/version, and — for property checkers —
// the compiled event rules, whose plain-struct rendering is stable.
func (c *Checker) fingerprint() string {
	s := fmt.Sprintf("checker %s\ndoc %s\nsev %d mode %d\nmsg %s\nspec %s\nversion %s\n",
		c.Name, c.Doc, c.Severity, c.Mode, c.Message, c.Spec, c.Version)
	if c.NewProperty != nil && c.NewEvents != nil {
		_, events := c.compiled()
		for _, r := range events.Rules {
			s += fmt.Sprintf("rule %+v\n", r)
		}
	}
	return s
}

// registryFingerprint hashes the full registry's content. The whole
// registry matters to every cached result — the shared skeleton's
// deferred-statement set is computed from the union of all checkers'
// event callees — so persistent cache keys include this fingerprint the
// way in-process skeleton caching includes generation().
func registryFingerprint() string {
	h := sha256.New()
	for _, c := range All() {
		fmt.Fprintf(h, "%s\n", c.fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// eventCallees returns the union of callee names appearing in any
// registered property checker's event rules — a conservative
// over-approximation of "some checker might treat a call to this
// function as an event".
func eventCallees() map[string]bool {
	set := map[string]bool{}
	for _, c := range All() {
		if c.NewProperty == nil || c.NewEvents == nil {
			continue
		}
		_, events := c.compiled()
		for _, r := range events.Rules {
			set[r.Callee] = true
		}
	}
	return set
}

// Get looks a checker up by name.
func Get(name string) (*Checker, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// All returns every registered checker, sorted by name.
func All() []*Checker {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Checker, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve turns a comma-separated checker list into checkers; "" or
// "all" yields the full registry.
func Resolve(names string) ([]*Checker, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	var out []*Checker
	seen := map[string]bool{}
	start := 0
	for i := 0; i <= len(names); i++ {
		if i < len(names) && names[i] != ',' {
			continue
		}
		name := names[start:i]
		start = i + 1
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		c, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown checker %q (have %s)", name, knownNames())
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty checker list")
	}
	return out, nil
}

func knownNames() string {
	all := All()
	s := ""
	for i, c := range all {
		if i > 0 {
			s += ", "
		}
		s += c.Name
	}
	return s
}
