package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/mops"
)

// The Table 1 property: 11 states, 9 symbols (§8: MOPS Property 1 has 11
// states and 9 alphabet symbols; the paper measured 58 representative
// functions for its automaton — our reconstruction's |F^≡| is recorded in
// EXPERIMENTS.md).
func TestFullPrivilegePropertyShape(t *testing.T) {
	p := FullPrivilegeProperty()
	if got := p.Machine.NumStates; got != 11 {
		t.Errorf("states = %d, want 11", got)
	}
	if got := p.Machine.Alpha.Size(); got != 9 {
		t.Errorf("alphabet = %d, want 9", got)
	}
	if !p.IsMinimal() {
		t.Error("the full privilege machine should be minimal")
	}
	// Far from the |S|^|S| worst case of §4, like the paper's 58.
	if p.Mon.Size() > 2000 {
		t.Errorf("|F^≡| = %d, unexpectedly large", p.Mon.Size())
	}
	t.Logf("full privilege property: |S|=%d, |Σ|=%d, |F^≡|=%d",
		p.Machine.NumStates, p.Machine.Alpha.Size(), p.Mon.Size())
}

func TestFullPrivilegeSemantics(t *testing.T) {
	m := FullPrivilegeProperty().Machine
	cases := []struct {
		word []string
		want bool
	}{
		// exec before establishing uids: conservatively flagged.
		{[]string{"exec"}, true},
		// classic temporary drop, groups kept: still dangerous.
		{[]string{"seteuid_zero", "seteuid_nonzero", "exec"}, true},
		// permanent drop then exec: safe.
		{[]string{"setresuid_nonzero", "exec"}, false},
		{[]string{"setreuid_nonzero", "exec"}, false},
		// groups dropped and euid dropped, saved uid root: safe-ish (EUG/TDG).
		{[]string{"seteuid_zero", "setgroups", "seteuid_nonzero", "exec"}, false},
		// ...but regaining root afterwards and exec'ing is flagged.
		{[]string{"seteuid_zero", "setgroups", "seteuid_nonzero", "seteuid_zero", "exec"}, true},
		// setuid(0) from EU succeeds via ruid: flagged.
		{[]string{"setuid_zero", "setgroups", "seteuid_nonzero", "setuid_zero", "exec"}, true},
		// full drop is permanent: regaining fails.
		{[]string{"setresuid_nonzero", "seteuid_zero", "exec"}, false},
		// fork is a no-op.
		{[]string{"fork", "exec"}, true},
		{[]string{"setresuid_nonzero", "fork", "exec"}, false},
	}
	for _, c := range cases {
		if got := m.AcceptsNames(c.word...); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

// End-to-end with the full property: both engines on characteristic
// programs.
func TestFullPropertyEndToEnd(t *testing.T) {
	prop := FullPrivilegeProperty()
	events := FullPrivilegeEvents()
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"temp drop insufficient", `
void main() {
    seteuid(0);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}`, true},
		{"full drop safe", `
void main() {
    setgroups(0);
    setresuid(u, u, u);
    execl("/bin/sh", "sh");
}`, false},
		{"drop on one branch only", `
void main() {
    if (c) {
        setresuid(u, u, u);
    }
    execl("/bin/sh", "sh");
}`, true},
		{"drop in callee", `
void droppriv() {
    setresuid(u, u, u);
}
void main() {
    droppriv();
    execl("/bin/sh", "sh");
}`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := minic.MustParse(c.src)
			res, err := Check(prog, prop, events, "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Violations) > 0; got != c.want {
				t.Errorf("pdm verdict = %v, want %v", got, c.want)
			}
			mres, err := mops.Check(prog, prop, events, "")
			if err != nil {
				t.Fatal(err)
			}
			if mres.Violating != c.want {
				t.Errorf("mops verdict = %v, want %v", mres.Violating, c.want)
			}
		})
	}
}
