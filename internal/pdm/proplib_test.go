package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/mops"
	"rasc/internal/spec"
)

func TestChrootProperty(t *testing.T) {
	prop := ChrootProperty()
	events := ChrootEvents()
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"chroot then open", `
void main() {
    chroot("/jail");
    open("etc/passwd", O_RDONLY);
}`, true},
		{"chroot chdir open", `
void main() {
    chroot("/jail");
    chdir("/");
    open("etc/passwd", O_RDONLY);
}`, false},
		{"chdir wrong dir does not clear", `
void main() {
    chroot("/jail");
    chdir("tmp");
    open("x", O_RDONLY);
}`, true},
		{"interprocedural chdir", `
void enter() {
    chroot("/jail");
    chdir("/");
}
void main() {
    enter();
    open("x", O_RDONLY);
}`, false},
		{"no chroot at all", `
void main() {
    open("x", O_RDONLY);
}`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := minic.MustParse(c.src)
			res, err := Check(prog, prop, events, "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Violations) > 0; got != c.want {
				t.Errorf("pdm = %v, want %v (%v)", got, c.want, res.Violations)
			}
			mres, err := mops.Check(prog, prop, events, "")
			if err != nil {
				t.Fatal(err)
			}
			if mres.Violating != c.want {
				t.Errorf("mops = %v, want %v", mres.Violating, c.want)
			}
		})
	}
}

func TestTempFileProperty(t *testing.T) {
	prop := TempFileProperty()
	events := TempFileEvents()
	cases := []struct {
		name  string
		src   string
		want  int
		label string
	}{
		{"racy open", `
void main() {
    int name = mktemp(template);
    open(name, O_RDWR);
}`, 1, "name"},
		{"exclusive open is fine", `
void main() {
    int name = mktemp(template);
    open(name, O_EXCL);
}`, 0, ""},
		{"unrelated open untouched", `
void main() {
    int name = mktemp(template);
    open(other, O_RDWR);
    open(name, O_EXCL);
}`, 0, ""},
		{"two names tracked separately", `
void main() {
    int a = mktemp(t1);
    int b = mktemp(t2);
    open(a, O_EXCL);
    open(b, O_RDWR);
}`, 1, "b"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Check(minic.MustParse(c.src), prop, events, "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != c.want {
				t.Fatalf("got %d violations, want %d: %v", len(res.Violations), c.want, res.Violations)
			}
			if c.want > 0 && res.Violations[0].Label != c.label {
				t.Errorf("label = %q, want %q", res.Violations[0].Label, c.label)
			}
		})
	}
}

// The chroot and privilege properties check simultaneously through the
// §2.2 product. One program event maps to one alphabet symbol, so the
// union's event map keeps the two properties' relevant calls disjoint
// (open is the chroot side's fsop; execl belongs to the privilege side).
func TestChrootPlusPrivilegeUnion(t *testing.T) {
	combined, err := spec.Union(spec.Options{}, SimplePrivilegeProperty(), ChrootProperty())
	if err != nil {
		t.Fatal(err)
	}
	events := &minic.EventMap{Rules: []minic.Rule{
		{Callee: "seteuid", ArgIndex: 0, Equals: "0", Symbol: "seteuid_zero"},
		{Callee: "seteuid", ArgIndex: 0, NotEquals: "0", Symbol: "seteuid_nonzero"},
		{Callee: "execl", ArgIndex: -1, Symbol: "execl"},
		{Callee: "chroot", ArgIndex: -1, Symbol: "chroot"},
		{Callee: "chdir", ArgIndex: 0, Equals: "\"/\"", Symbol: "chdir_root"},
		{Callee: "open", ArgIndex: -1, Symbol: "fsop"},
	}}

	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"jointly safe", `
void main() {
    seteuid(0);
    chroot("/jail");
    chdir("/");
    open("x", O_RDONLY);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}`, false},
		{"chroot side violated", `
void main() {
    seteuid(0);
    seteuid(getuid());
    chroot("/jail");
    open("x", O_RDONLY);
    execl("/bin/sh", "sh");
}`, true},
		{"privilege side violated", `
void main() {
    chroot("/jail");
    chdir("/");
    seteuid(0);
    execl("/bin/sh", "sh");
}`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Check(minic.MustParse(c.src), combined, events, "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Violations) > 0; got != c.want {
				t.Errorf("got %v, want %v: %v", got, c.want, res.Violations)
			}
		})
	}
}
