package pdm

import (
	"fmt"
	"sort"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/spec"
	"rasc/internal/terms"
)

// DangerPoints computes the program points of one function that lie on
// some property-violating execution — the "chop" of forward and backward
// reachability, and a direct application of both unidirectional solving
// strategies of §5 on the same constraint system:
//
//   - the forward solver computes, per point, the automaton states
//     reachable from the function's entry (derived annotations in F^≡r:
//     one DFA state each);
//   - the backward solver computes, per point, the set of states from
//     which some suffix path reaches acceptance (left-congruence classes:
//     one bitset each);
//   - a point is dangerous iff the two intersect.
//
// The analysis is intraprocedural (calls to defined functions are treated
// as irrelevant steps), matching the atomic constraint fragment the
// backward solver implements. Returns the dangerous nodes' CFG ids,
// ascending.
func DangerPoints(prog *minic.Program, prop *spec.Property, events *minic.EventMap, fn string) ([]int, error) {
	if prop.IsParametric() {
		return nil, fmt.Errorf("pdm: DangerPoints supports non-parametric properties")
	}
	fd, ok := prog.ByName[fn]
	if !ok {
		return nil, fmt.Errorf("pdm: function %q not defined", fn)
	}
	fn = fd.Name // resolve aliases to the canonical name
	cfg := minic.MustBuild(prog)

	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	sys := core.NewSystem(core.FuncAlgebra{Mon: prop.Mon}, sig, core.Options{})

	nodeVar := map[int]core.VarID{}
	var fnNodes []int
	for _, n := range cfg.Nodes {
		if n.Fn != fn {
			continue
		}
		fnNodes = append(fnNodes, n.ID)
		nodeVar[n.ID] = sys.Var(fmt.Sprintf("S%d", n.ID))
	}
	pc := sys.Constant(pcCons)
	sys.AddLowerE(pc, nodeVar[cfg.Entry[fn]])
	// The suffix sink: every point flows into it, so its backward bitset
	// at v is the set of states from which some suffix of an execution
	// starting at v accepts.
	sink := sys.Var("$suffix-sink")

	ident := core.Annot(prop.Mon.Identity())
	for _, id := range fnNodes {
		n := cfg.Nodes[id]
		a := ident
		if n.Kind == minic.NAction {
			if ev, ok := events.Match(n.Call, n.AssignTo); ok {
				f, found := prop.Mon.SymbolFuncByName(ev.Symbol)
				if !found {
					return nil, fmt.Errorf("pdm: event symbol %q not in property alphabet", ev.Symbol)
				}
				a = core.Annot(f)
			}
			// Calls to defined functions are irrelevant (ε) steps in the
			// intraprocedural abstraction.
		}
		for _, m := range n.Succs {
			sys.AddVar(nodeVar[id], nodeVar[m], a)
		}
		sys.AddVarE(nodeVar[id], sink)
	}

	fw, err := sys.SolveForward(nil)
	if err != nil {
		return nil, err
	}
	bw, err := sys.SolveBackward([]core.VarID{sink})
	if err != nil {
		return nil, err
	}

	var out []int
	for _, id := range fnNodes {
		v := nodeVar[id]
		bits := bw.BitsAt(sink, v)
		for _, st := range fw.ConstStates(pc, v) {
			if bits&(1<<uint(st)) != 0 {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// DangerLines maps DangerPoints to source lines (deduplicated, ascending),
// skipping entry/exit markers.
func DangerLines(prog *minic.Program, prop *spec.Property, events *minic.EventMap, fn string) ([]int, error) {
	ids, err := DangerPoints(prog, prop, events, fn)
	if err != nil {
		return nil, err
	}
	cfg := minic.MustBuild(prog)
	seen := map[int]bool{}
	var out []int
	for _, id := range ids {
		n := cfg.Nodes[id]
		if n.Kind != minic.NAction || seen[n.Line] {
			continue
		}
		seen[n.Line] = true
		out = append(out, n.Line)
	}
	sort.Ints(out)
	return out, nil
}
