package pdm

import (
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// This file is a small library of ready-made temporal safety properties in
// the style of the MOPS property suite (Chen/Dean/Wagner), beyond the
// privilege model used for Table 1. Each comes with the event mapping
// from C calls to its alphabet.

// ChrootSpecSrc: a process that calls chroot() must immediately chdir("/")
// before any filesystem operation, or relative paths can escape the jail
// (MOPS property "chroot without chdir").
const ChrootSpecSrc = `
start state Clean :
    | chroot -> Jailed;

state Jailed :
    | chdir_root -> Clean
    | fsop -> Error;

accept state Error;
`

// ChrootProperty compiles ChrootSpecSrc.
func ChrootProperty() *spec.Property { return spec.MustCompile(ChrootSpecSrc) }

// ChrootEvents maps calls for the chroot property: chdir("/") clears the
// jailed state, any other filesystem call while jailed is an error.
func ChrootEvents() *minic.EventMap {
	rules := []minic.Rule{
		{Callee: "chroot", ArgIndex: -1, Symbol: "chroot"},
		{Callee: "chdir", ArgIndex: 0, Equals: `"/"`, Symbol: "chdir_root"},
	}
	for _, fs := range []string{"open", "fopen", "stat", "unlink", "rename", "execl", "execv"} {
		rules = append(rules, minic.Rule{Callee: fs, ArgIndex: -1, Symbol: "fsop"})
	}
	return &minic.EventMap{Rules: rules}
}

// TempFileSpecSrc: opening a path produced by mktemp() is a race (TOCTOU);
// the name must be tracked per variable, so the property is parametric
// (MOPS property "insecure temporary files", simplified).
const TempFileSpecSrc = `
start state Clean :
    | mktemp(x) -> Risky;

state Risky :
    | openexcl(x) -> Clean
    | openplain(x) -> Error;

accept state Error;
`

// TempFileProperty compiles TempFileSpecSrc.
func TempFileProperty() *spec.Property { return spec.MustCompile(TempFileSpecSrc) }

// TempFileEvents maps calls: p = mktemp(...) marks p risky; open(p) is
// flagged unless the mode argument mentions O_EXCL.
func TempFileEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "mktemp", ArgIndex: -1, Symbol: "mktemp", LabelArg: -1, LabelFromAssign: true},
		{Callee: "open", ArgIndex: 1, Equals: "O_EXCL", Symbol: "openexcl", LabelArg: 0},
		{Callee: "open", ArgIndex: -1, Symbol: "openplain", LabelArg: 0},
	}}
}
