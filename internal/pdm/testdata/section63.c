/* The §6.3 example: privileges dropped on one branch only. */
void main() {
    seteuid(0);
    if (cond) {
        seteuid(getuid());
    } else {
        log_attempt();
    }
    execl("/bin/sh", "sh");
}
