/* Figure 6: fd2 is still open at the end of the program. */
void main() {
    int fd1 = open("file1", O_RDONLY);
    int fd2 = open("file2", O_RDONLY);
    close(fd1);
}
