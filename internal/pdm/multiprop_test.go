package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// §2.2: "it is sufficient to deal only with a single machine representing
// the product of all the regular reachability properties" — check two
// safety properties simultaneously with one solved constraint system.
func TestSimultaneousProperties(t *testing.T) {
	priv := spec.MustCompile(`
start state Unpriv :
    | seteuid_zero -> Priv;
state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;
accept state Error;
`)
	chroot := spec.MustCompile(`
start state Clean :
    | chroot -> Rooted;
state Rooted :
    | chdir -> Clean
    | execl -> Error;
accept state Error;
`)
	combined, err := spec.Union(spec.Options{}, priv, chroot)
	if err != nil {
		t.Fatal(err)
	}
	events := &minic.EventMap{Rules: []minic.Rule{
		{Callee: "seteuid", ArgIndex: 0, Equals: "0", Symbol: "seteuid_zero"},
		{Callee: "seteuid", ArgIndex: 0, NotEquals: "0", Symbol: "seteuid_nonzero"},
		{Callee: "execl", ArgIndex: -1, Symbol: "execl"},
		{Callee: "chroot", ArgIndex: -1, Symbol: "chroot"},
		{Callee: "chdir", ArgIndex: -1, Symbol: "chdir"},
	}}

	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violates privilege only", `
void main() {
    chroot("/jail");
    chdir("/");
    seteuid(0);
    execl("/bin/sh", "sh");
}`, 1},
		{"violates chroot only", `
void main() {
    seteuid(0);
    seteuid(getuid());
    chroot("/jail");
    execl("/bin/sh", "sh");
}`, 1},
		{"violates both with one exec", `
void main() {
    seteuid(0);
    chroot("/jail");
    execl("/bin/sh", "sh");
}`, 1},
		{"violates neither", `
void main() {
    seteuid(0);
    seteuid(getuid());
    chroot("/jail");
    chdir("/");
    execl("/bin/sh", "sh");
}`, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Check(minic.MustParse(c.src), combined, events, "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != c.want {
				t.Errorf("got %d violations, want %d: %v", len(res.Violations), c.want, res.Violations)
			}
		})
	}
}
