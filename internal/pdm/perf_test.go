package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/synth"
)

// BenchmarkCheckLarge is the solver-profiling benchmark at roughly the
// Sendmail scale of Table 1.
func BenchmarkCheckLarge(b *testing.B) {
	cfg := synth.Table1()[2].Config // Sendmail row
	prog := minic.MustParse(synth.Generate(cfg))
	prop := FullPrivilegeProperty()
	events := FullPrivilegeEvents()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Check(prog, prop, events, "", core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
