package pdm

import (
	"os"
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

func TestSection63Fixture(t *testing.T) {
	src, err := os.ReadFile("testdata/section63.c")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, SimplePrivilegeProperty(), minic.PrivilegeEvents(), "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}
	v := res.Violations[0]
	if v.Fn != "main" || v.Line != 9 {
		t.Errorf("violation at %s:%d, want main:9 (the execl)", v.Fn, v.Line)
	}
}

func TestFileStateFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/filestate.c")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prop, err := spec.Compile(`
start state Closed :
    | open(x) -> Opened;
accept state Opened :
    | close(x) -> Closed;
`, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, prop, minic.FileEvents(), "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open := res.OpenInstancesAtExit("")
	if len(open) != 1 || open[0] != "fd2" {
		t.Fatalf("open at exit = %v, want [fd2]", open)
	}
}
