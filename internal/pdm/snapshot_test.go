package pdm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rasc/internal/core"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/snapshot"
	"rasc/internal/spec"
)

const snapTestSrc = `
void main() {
    int f = open("a");
    if (f) { use(f); helper(f); }
    while (f) { int g = open("b"); close(g); }
    close(f);
}
void helper(int f) {
    use(f);
    int g = open("c");
    close(g);
}`

func snapTestProp(t *testing.T) (*spec.Property, *minic.EventMap) {
	t.Helper()
	prop := spec.MustCompile(`
start state Closed :
    | open -> Open;
state Open :
    | close -> Closed
    | use_closed -> Error;
accept state Error;
`)
	events := &minic.EventMap{Rules: []minic.Rule{
		{Callee: "open", ArgIndex: -1, Symbol: "open", LabelFromAssign: true},
		{Callee: "close", ArgIndex: 0, Symbol: "close", LabelArg: 0},
	}}
	return prop, events
}

func buildSnapTestSkeleton(t *testing.T) (*ir.Program, *Skeleton) {
	t.Helper()
	prog, err := ir.FromMiniC(snapTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildSkeleton(prog, "main", core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog, sk
}

// A snapshot-loaded skeleton must be indistinguishable from the live
// one: same entry, same base stats, same deferred count, and identical
// Check results — violations, traces, provenance — for a real property.
func TestSkeletonSnapshotRoundTrip(t *testing.T) {
	prog, live := buildSnapTestSkeleton(t)
	data := live.Snapshot()
	loaded, err := LoadSkeleton(data, prog, "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entry() != live.Entry() {
		t.Fatalf("entry %q, want %q", loaded.Entry(), live.Entry())
	}
	if loaded.BaseStats() != live.BaseStats() {
		t.Fatalf("base stats %+v, want %+v", loaded.BaseStats(), live.BaseStats())
	}
	if loaded.Deferred() != live.Deferred() {
		t.Fatalf("deferred %d, want %d", loaded.Deferred(), live.Deferred())
	}

	prop, events := snapTestProp(t)
	for _, explain := range []bool{false, true} {
		o := &Obs{Explain: explain}
		want, err := live.CheckObs(prop, events, o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.CheckObs(prop, events, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Violations, want.Violations) {
			t.Fatalf("explain=%v: violations diverge:\n got %+v\nwant %+v", explain, got.Violations, want.Violations)
		}
		if got.Sys.Stats() != want.Sys.Stats() {
			t.Fatalf("explain=%v: stats %+v, want %+v", explain, got.Sys.Stats(), want.Sys.Stats())
		}
		if got.Sys.Stats().Minus(got.Base) != want.Sys.Stats().Minus(want.Base) {
			t.Fatalf("explain=%v: layered deltas diverge", explain)
		}
	}

	// The snapshot encoding is deterministic and stable across a load.
	if !bytes.Equal(live.Snapshot(), data) {
		t.Fatal("re-snapshotting the live skeleton is not byte-stable")
	}
	if !bytes.Equal(loaded.Snapshot(), data) {
		t.Fatal("snapshotting the loaded skeleton does not reproduce the bytes")
	}
}

// A snapshot must fail to load against the wrong program or entry, and
// under different solver options.
func TestSkeletonSnapshotKeyMismatches(t *testing.T) {
	prog, live := buildSnapTestSkeleton(t)
	data := live.Snapshot()

	if _, err := LoadSkeleton(data, prog, "helper", core.Options{}); err == nil {
		t.Fatal("load under a different entry succeeded")
	}
	if _, err := LoadSkeleton(data, prog, "main", core.Options{NoProjMerge: true}); err == nil {
		t.Fatal("load under different options succeeded")
	}
	other, err := ir.FromMiniC(`void main() { int f = open("a"); close(f); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSkeleton(data, other, "main", core.Options{}); err == nil {
		t.Fatal("load against a different program succeeded")
	}
}

// Version-skewed containers are classified as snapshot.ErrVersion so
// cache layers can count them separately from corruption.
func TestSkeletonSnapshotVersionSkew(t *testing.T) {
	prog, live := buildSnapTestSkeleton(t)
	data := live.Snapshot()
	binary.LittleEndian.PutUint32(data[4:], 0x7fffffff)
	data = snapshot.Reseal(data)
	_, err := LoadSkeleton(data, prog, "main", core.Options{})
	if !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// Truncations and bit flips must surface as errors, never panics or
// wrong skeletons. This is the deterministic companion of
// FuzzSnapshotDecode.
func TestSkeletonSnapshotCorruption(t *testing.T) {
	prog, live := buildSnapTestSkeleton(t)
	data := live.Snapshot()
	for n := 0; n < len(data); n += 7 {
		if _, err := LoadSkeleton(data[:n], prog, "main", core.Options{}); err == nil {
			t.Fatalf("truncation to %d bytes loaded", n)
		}
	}
	for off := 0; off < len(data); off += 11 {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[off] ^= 0x10
		if _, err := LoadSkeleton(mut, prog, "main", core.Options{}); err == nil {
			// A flip in a section the SHA covers must be caught; offsets
			// before the SHA (magic/version) are caught structurally. A
			// successful load can only happen if the flip was resealed —
			// which plain flips never are.
			t.Fatalf("bit flip at offset %d loaded", off)
		}
	}
}

// FuzzSnapshotDecode hardens the decoder: arbitrary mutations of a real
// snapshot — resealed so the integrity layer passes and the structural
// validation is actually exercised — must either fail to load or yield
// a skeleton that can run a full Check without panicking. Allocation is
// bounded by validation against the file size, so malformed lengths
// cannot OOM the process either.
func FuzzSnapshotDecode(f *testing.F) {
	prog, err := ir.FromMiniC(snapTestSrc)
	if err != nil {
		f.Fatal(err)
	}
	sk, err := BuildSkeleton(prog, "main", core.Options{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	seed := sk.Snapshot()
	f.Add(seed, uint32(0), byte(0))
	f.Add(seed, uint32(4), byte(0xff))
	f.Add(seed[:len(seed)/2], uint32(9), byte(1))
	f.Add(seed, uint32(48), byte(0x80))

	prop := spec.MustCompile(`
start state Closed :
    | open -> Open;
state Open :
    | close -> Closed
    | use_closed -> Error;
accept state Error;
`)
	events := &minic.EventMap{Rules: []minic.Rule{
		{Callee: "open", ArgIndex: -1, Symbol: "open", LabelFromAssign: true},
		{Callee: "close", ArgIndex: 0, Symbol: "close", LabelArg: 0},
	}}

	f.Fuzz(func(t *testing.T, data []byte, off uint32, flip byte) {
		if len(data) > 0 {
			mut := make([]byte, len(data))
			copy(mut, data)
			mut[int(off)%len(mut)] ^= flip
			data = snapshot.Reseal(mut)
		}
		loaded, err := LoadSkeleton(data, prog, "main", core.Options{})
		if err != nil {
			return
		}
		// A mutation that survives both integrity and structural
		// validation must still behave: checking a property may give any
		// verdict, but it must not crash.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Check panicked on decoded mutant: %v", r)
			}
		}()
		if _, err := loaded.Check(prop, events); err != nil {
			_ = fmt.Sprintf("%v", err)
		}
	})
}
