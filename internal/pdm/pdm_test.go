package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

const privilegeSpec = `
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
`

const fileSpec = `
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

func check(t *testing.T, src, propSrc string, events *minic.EventMap) *Result {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := spec.Compile(propSrc, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, prop, events, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// §6.3: privileges dropped on only one branch — a violation.
func TestSection63Violation(t *testing.T) {
	src := `
void main() {
    seteuid(0);
    if (cond) {
        seteuid(getuid());
    } else {
        other();
    }
    execl("/bin/sh", "sh");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(res.Violations), res.Violations)
	}
	v := res.Violations[0]
	if v.Fn != "main" {
		t.Errorf("violation in %q, want main", v.Fn)
	}
	if len(v.Trace) == 0 {
		t.Error("violation should carry a witness trace")
	}
}

// The §6 motivating example: no drop at all before execl.
func TestSimpleViolation(t *testing.T) {
	src := `
void main() {
    seteuid(0);
    execl("/bin/sh", "sh", 0);
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}
}

func TestSafeProgram(t *testing.T) {
	src := `
void main() {
    seteuid(0);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 0 {
		t.Fatalf("safe program flagged: %v", res.Violations)
	}
}

// Interprocedural: the privileged exec happens in a callee; matching
// call/return must carry the automaton state through.
func TestInterproceduralViolation(t *testing.T) {
	src := `
void runshell() {
    execl("/bin/sh", "sh");
}
void main() {
    seteuid(0);
    runshell();
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}
	if res.Violations[0].Fn != "runshell" {
		t.Errorf("violation located in %q, want runshell", res.Violations[0].Fn)
	}
}

// Interprocedural, safe: the callee drops privileges and the drop must be
// visible after the matched return.
func TestInterproceduralDropIsMatched(t *testing.T) {
	src := `
void droppriv() {
    seteuid(getuid());
}
void main() {
    seteuid(0);
    droppriv();
    execl("/bin/sh", "sh");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 0 {
		t.Fatalf("matched return lost the privilege drop: %v", res.Violations)
	}
}

// Context sensitivity: the same helper is called in privileged and
// unprivileged contexts; only the privileged call's continuation may
// violate. An imprecise (context-insensitive) analysis would merge the
// two calls and flag line 9 as reachable in state Priv even in the first
// call — here there is a genuine violation only after the second call.
func TestContextSensitivityOfReturns(t *testing.T) {
	src := `
void helper() {
    noop();
}
void main() {
    helper();
    execl("/bin/a", "a");
    seteuid(0);
    helper();
    execl("/bin/b", "b");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (second execl): %v", len(res.Violations), res.Violations)
	}
	if res.Violations[0].Line != 10 {
		t.Errorf("violation at line %d, want 10", res.Violations[0].Line)
	}
}

// A callee that never returns (infinite loop) still propagates the
// program counter into its body: PN reachability's unmatched-call paths.
func TestUnreturnedCallViolation(t *testing.T) {
	src := `
void spin() {
    execl("/bin/sh", "sh");
    while (1) {
        noop();
    }
}
void main() {
    seteuid(0);
    spin();
    never();
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}
	if res.Violations[0].Fn != "spin" {
		t.Errorf("violation in %q, want spin", res.Violations[0].Fn)
	}
}

// Recursion must terminate and find the violation.
func TestRecursion(t *testing.T) {
	src := `
void rec(int n) {
    if (n) {
        rec(n - 1);
    }
    execl("/bin/sh", "sh");
}
void main() {
    seteuid(0);
    rec(3);
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) == 0 {
		t.Fatal("recursion hid the violation")
	}
}

// Loops: drop inside a loop body that may execute zero times.
func TestLoopMayNotExecute(t *testing.T) {
	src := `
void main() {
    seteuid(0);
    while (cond) {
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1 (zero-iteration path)", len(res.Violations))
	}
}

// Re-acquiring privilege inside a loop after dropping: the gk-style
// cycling must saturate, and the violating g-then-exec path must be found.
func TestLoopReacquire(t *testing.T) {
	src := `
void main() {
    while (c) {
        seteuid(0);
        seteuid(getuid());
    }
    seteuid(0);
    execl("/bin/sh", "sh");
}
`
	res := check(t, src, privilegeSpec, minic.PrivilegeEvents())
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}
}

// §6.4.1 (Figure 6): parametric file tracking — fd2 remains open at the
// end of the program, fd1 does not.
func TestFileStateExample(t *testing.T) {
	src := `
void main() {
    int fd1 = open("file1", O_RDONLY);
    int fd2 = open("file2", O_RDONLY);
    close(fd1);
}
`
	res := check(t, src, fileSpec, minic.FileEvents())
	open := res.OpenInstancesAtExit("")
	if len(open) != 1 || open[0] != "fd2" {
		t.Fatalf("open at exit = %v, want [fd2]", open)
	}
}

func TestFileStateAllClosed(t *testing.T) {
	src := `
void main() {
    int fd1 = open("file1", O_RDONLY);
    close(fd1);
}
`
	res := check(t, src, fileSpec, minic.FileEvents())
	if open := res.OpenInstancesAtExit(""); len(open) != 0 {
		t.Fatalf("open at exit = %v, want none", open)
	}
}

// Parametric tracking across branches: fd may be closed on one branch
// only, so it is still (possibly) open at exit.
func TestFileStateBranch(t *testing.T) {
	src := `
void main() {
    int fd = open("f", O_RDONLY);
    if (c) {
        close(fd);
    }
    done();
}
`
	res := check(t, src, fileSpec, minic.FileEvents())
	if open := res.OpenInstancesAtExit(""); len(open) != 1 || open[0] != "fd" {
		t.Fatalf("open at exit = %v, want [fd]", open)
	}
}

func TestMissingEntry(t *testing.T) {
	prog := minic.MustParse("void notmain() { f(); }")
	prop := spec.MustCompile(privilegeSpec)
	if _, err := Check(prog, prop, minic.PrivilegeEvents(), "", core.Options{}); err == nil {
		t.Error("missing main should error")
	}
	if _, err := Check(prog, prop, minic.PrivilegeEvents(), "notmain", core.Options{}); err != nil {
		t.Errorf("explicit entry should work: %v", err)
	}
}

func TestUnknownEventSymbol(t *testing.T) {
	prog := minic.MustParse("void main() { boom(); }")
	prop := spec.MustCompile(privilegeSpec)
	events := &minic.EventMap{Rules: []minic.Rule{{Callee: "boom", ArgIndex: -1, Symbol: "not_in_alphabet"}}}
	if _, err := Check(prog, prop, events, "", core.Options{}); err == nil {
		t.Error("unknown symbol should error")
	}
}

// The solver options must not change the verdict.
func TestOptionsPreserveVerdict(t *testing.T) {
	src := `
void helper() { seteuid(getuid()); }
void main() {
    seteuid(0);
    if (x) { helper(); }
    execl("/bin/sh", "sh");
}
`
	prog := minic.MustParse(src)
	prop := spec.MustCompile(privilegeSpec)
	var counts []int
	for _, opts := range []core.Options{
		{},
		{NoCycleElim: true},
		{NoProjMerge: true},
		{NoHashCons: true},
		{NoCycleElim: true, NoProjMerge: true, NoHashCons: true},
	} {
		res, err := Check(prog, prop, minic.PrivilegeEvents(), "", opts)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Violations))
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("verdicts differ across options: %v", counts)
		}
	}
	if counts[0] != 1 {
		t.Fatalf("want 1 violation, got %d", counts[0])
	}
}

// The full C control flow (for/break/continue/switch) feeds the checker.
func TestControlFlowConstructs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"break skips the drop", `
void main() {
    seteuid(0);
    for (int i = 0; i < 10; i = i + 1) {
        if (c) {
            break;
        }
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}`, 1},
		{"do-while drops at least once", `
void main() {
    seteuid(0);
    do {
        seteuid(getuid());
    } while (c);
    execl("/bin/sh", "sh");
}`, 0},
		{"switch with default drops on all paths", `
void main() {
    seteuid(0);
    switch (x) {
    case 1:
        log1();
    case 2:
        seteuid(getuid());
        break;
    default:
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}`, 0},
		{"switch without default can skip the drop", `
void main() {
    seteuid(0);
    switch (x) {
    case 1:
        seteuid(getuid());
        break;
    }
    execl("/bin/sh", "sh");
}`, 1},
		{"continue skips the drop", `
void main() {
    seteuid(0);
    int done = 0;
    while (done == 0) {
        done = check();
        if (done) {
            continue;
        }
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}`, 1},
	}
	prop := SimplePrivilegeProperty()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Check(minic.MustParse(c.src), prop, minic.PrivilegeEvents(), "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != c.want {
				t.Errorf("got %d violations, want %d: %v", len(res.Violations), c.want, res.Violations)
			}
		})
	}
}

// DangerPoints: the §6.3 program's violating path runs through the else
// branch; the seteuid(getuid()) drop is NOT on any violating path.
func TestDangerPoints(t *testing.T) {
	src := `
void main() {
    seteuid(0);
    if (cond) {
        seteuid(getuid());
    } else {
        log_attempt();
    }
    execl("/bin/sh", "sh");
}
`
	prog := minic.MustParse(src)
	lines, err := DangerLines(prog, SimplePrivilegeProperty(), minic.PrivilegeEvents(), "main")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{3: true, 7: true, 9: true} // seteuid(0), log_attempt, execl
	for _, l := range lines {
		if !want[l] {
			t.Errorf("line %d flagged but not on a violating path", l)
		}
		delete(want, l)
	}
	for l := range want {
		t.Errorf("line %d should be on the violating path", l)
	}

	// A safe program has no danger points at all.
	safe := minic.MustParse(`
void main() {
    seteuid(0);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}
`)
	ids, err := DangerPoints(safe, SimplePrivilegeProperty(), minic.PrivilegeEvents(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("safe program has danger points: %v", ids)
	}
}

func TestDangerPointsErrors(t *testing.T) {
	prog := minic.MustParse("void main() { f(); }")
	if _, err := DangerPoints(prog, SimplePrivilegeProperty(), minic.PrivilegeEvents(), "nosuch"); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := DangerPoints(prog, TempFileProperty(), TempFileEvents(), "main"); err == nil {
		t.Error("parametric property should be rejected")
	}
}
