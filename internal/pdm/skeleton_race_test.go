package pdm

import (
	"sync"
	"testing"

	"rasc/internal/core"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// Regression test for the Fork/Stats concurrency contract under the
// access pattern incremental caching produces: with cache-driven job
// skipping, some workers call Skeleton.Check (forking the frozen base)
// while others — whose jobs hit the cache — only read statistics
// (Skeleton.BaseStats for entry records, Result.Sys.Stats for deltas).
// An audit of System.Fork and the layered dedup sets found no write to
// the frozen base after Freeze; this test pins that down under -race
// (the CI build-and-test job runs the suite with -race enabled).
func TestSkeletonCheckConcurrentWithStatsReads(t *testing.T) {
	prog, err := ir.FromMiniC(`
void main() {
    int f = open("a");
    if (f) { use(f); helper(f); }
    close(f);
}
void helper(int f) {
    use(f);
    int g = open("b");
    close(g);
}`)
	if err != nil {
		t.Fatal(err)
	}
	prop := spec.MustCompile(`
start state Closed :
    | open -> Open;
state Open :
    | close -> Closed
    | use_closed -> Error;
accept state Error;
`)
	events := &minic.EventMap{Rules: []minic.Rule{
		{Callee: "open", ArgIndex: -1, Symbol: "open", LabelFromAssign: true},
		{Callee: "close", ArgIndex: 0, Symbol: "close", LabelArg: 0},
	}}
	sk, err := BuildSkeleton(prog, "main", core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := sk.BaseStats()

	const workers = 8
	const rounds = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if w%2 == 0 {
					// A solving worker: fork the skeleton and read the
					// result's stats delta, as runJob does on a miss.
					res, err := sk.Check(prop, events)
					if err != nil {
						t.Error(err)
						return
					}
					if d := res.Sys.Stats().Minus(res.Base); d.Vars < 0 {
						t.Errorf("negative stats delta %+v", d)
						return
					}
				} else {
					// A cache-hitting worker: no solve, only stat reads.
					if got := sk.BaseStats(); got != base {
						t.Errorf("BaseStats changed under concurrent Check: %+v != %+v", got, base)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
