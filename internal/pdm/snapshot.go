package pdm

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/ir"
	"rasc/internal/snapshot"
	"rasc/internal/terms"
)

// Skeleton snapshot sections; core owns ids below 100. The skeleton
// layer stores only what BuildSkeleton computed beyond the solved
// System: the entry name, the pc node, the CFG-node variable map and
// the deferred-statement list. Program and CFG are not serialized — a
// snapshot is only valid against the *ir.Program it was built from, and
// the cache layer keys snapshots by the entry's summary digest to
// guarantee that.
const (
	secPDMMeta     = 100 // pc CNode, entry strRef
	secPDMStrBlob  = 101
	secPDMStrOffs  = 102
	secPDMNodeVar  = 103 // VarID per CFG node
	secPDMDeferred = 104 // (nodeID, calleeRef+1 or 0, consID) triples
)

// Snapshot serializes the skeleton — the frozen solved System plus the
// skeleton-layer tables — into a self-validating container. The result
// is deterministic: equal skeletons produce equal bytes.
func (sk *Skeleton) Snapshot() []byte {
	w := snapshot.NewWriter()
	sk.sys.EncodeSnapshot(w)
	sb := snapshot.NewStringBuilder()
	w.Uint32s(secPDMMeta, []uint32{uint32(sk.pc), sb.Ref(sk.entry)})
	nodeVar := make([]uint32, len(sk.nodeVar))
	for i, v := range sk.nodeVar {
		nodeVar[i] = uint32(v)
	}
	w.Uint32s(secPDMNodeVar, nodeVar)
	def := make([]uint32, 0, 3*len(sk.deferred))
	for _, d := range sk.deferred {
		callee := uint32(0)
		if d.callee != "" {
			callee = sb.Ref(d.callee) + 1
		}
		def = append(def, uint32(d.id), callee, uint32(d.cons))
	}
	w.Uint32s(secPDMDeferred, def)
	sb.Flush(w, secPDMStrBlob, secPDMStrOffs)
	return w.Finish()
}

// LoadSkeleton reconstructs a Skeleton for entry over p from a Snapshot,
// skipping BuildSkeleton's translation and solve entirely: the solved
// base layer is decoded straight out of the byte buffer. The decoded
// system is checked against the skeleton contract (identity-only
// annotations, matching Options) and every cross-reference into p's CFG
// and function table is validated, so a snapshot taken from a different
// program version fails loudly instead of yielding wrong results — but
// callers are expected to key snapshots by the entry's summary digest
// and options so that mismatches are cache misses, not load errors.
//
// Errors wrap snapshot.ErrVersion for format-version skew and (for
// structural damage) snapshot.ErrCorrupt; both must demote the caller
// to a live BuildSkeleton.
func LoadSkeleton(data []byte, p *ir.Program, entry string, opts core.Options) (*Skeleton, error) {
	prog, cfg := p.MC, p.Graph
	if entry == "" {
		entry = "main"
	}
	entryDef, ok := prog.ByName[entry]
	if !ok {
		return nil, fmt.Errorf("pdm: entry function %q not defined", entry)
	}
	entry = entryDef.Name

	r, err := snapshot.NewReader(data)
	if err != nil {
		return nil, err
	}
	sys, err := core.DecodeSystem(r, skelAlgebra{}, opts, true)
	if err != nil {
		return nil, err
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: pdm: "+format, append([]any{snapshot.ErrCorrupt}, args...)...)
	}

	strs, err := snapshot.ReadStrings(r, secPDMStrBlob, secPDMStrOffs)
	if err != nil {
		return nil, err
	}
	meta, err := r.Uint32s(secPDMMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 2 {
		return nil, bad("meta section has %d words, want 2", len(meta))
	}
	pc := meta[0]
	if int(pc) >= sys.NumConsNodes() {
		return nil, bad("pc node %d out of range", pc)
	}
	if sys.Sig.Name(sys.ConsOf(core.CNode(pc))) != "pc" {
		return nil, bad("pc node %d is not the pc constant", pc)
	}
	snapEntry, err := strs.At(meta[1])
	if err != nil {
		return nil, err
	}
	if snapEntry != entry {
		return nil, bad("snapshot is for entry %q, want %q", snapEntry, entry)
	}

	nodeVarWords, err := r.Uint32s(secPDMNodeVar)
	if err != nil {
		return nil, err
	}
	if len(nodeVarWords) != len(cfg.Nodes) {
		return nil, bad("node-var section has %d entries, CFG has %d nodes", len(nodeVarWords), len(cfg.Nodes))
	}
	nodeVar := make([]core.VarID, len(nodeVarWords))
	for i, v := range nodeVarWords {
		if int(v) >= sys.NumVars() {
			return nil, bad("node %d maps to variable %d out of range (%d vars)", i, v, sys.NumVars())
		}
		nodeVar[i] = core.VarID(v)
	}

	def, err := r.Uint32s(secPDMDeferred)
	if err != nil {
		return nil, err
	}
	if len(def)%3 != 0 {
		return nil, bad("deferred section has %d words, not triples", len(def))
	}
	deferred := make([]deferredNode, len(def)/3)
	for i := range deferred {
		id, calleeRef, cons := def[3*i], def[3*i+1], def[3*i+2]
		if int(id) >= len(cfg.Nodes) {
			return nil, bad("deferred node %d out of CFG range", id)
		}
		if cfg.Nodes[id].Call == nil {
			return nil, bad("deferred node %d is not a call statement", id)
		}
		d := deferredNode{id: int(id)}
		if calleeRef != 0 {
			callee, err := strs.At(calleeRef - 1)
			if err != nil {
				return nil, err
			}
			fd, ok := prog.ByName[callee]
			if !ok || fd.Name != callee {
				return nil, bad("deferred node %d names undefined callee %q", id, callee)
			}
			if _, ok := cfg.Entry[callee]; !ok {
				return nil, bad("callee %q has no CFG entry", callee)
			}
			if _, ok := cfg.Exit[callee]; !ok {
				return nil, bad("callee %q has no CFG exit", callee)
			}
			if int(cons) >= sys.Sig.Size() || sys.Sig.Arity(terms.ConsID(cons)) != 1 {
				return nil, bad("deferred node %d has invalid call constructor %d", id, cons)
			}
			d.callee = callee
			d.cons = terms.ConsID(cons)
		}
		deferred[i] = d
	}

	// Reinstall the on-demand renderer BuildSkeleton uses for CFG-node
	// variables; closures do not serialize, but this one is derived
	// entirely from the CFG.
	sys.SetNameFn(func(v core.VarID) string {
		if int(v) < len(cfg.Nodes) {
			n := cfg.Nodes[v]
			return fmt.Sprintf("S%d@%s:%d", n.ID, n.Fn, n.Line)
		}
		return ""
	})

	return &Skeleton{
		prog:     prog,
		cfg:      cfg,
		entry:    entry,
		sys:      sys,
		nodeVar:  nodeVar,
		pc:       core.CNode(pc),
		base:     sys.Stats(),
		deferred: deferred,
	}, nil
}
