// Two-phase constraint construction (§8's engineering advice applied at
// the driver level): the translation of an entry function's
// interprocedural CFG into constraints is split into a property-
// independent skeleton — node variables, intraprocedural edges,
// call/return constructors, spawn edges — built and solved once, and a
// thin per-property layer of event annotations forked on top. A driver
// checking k properties over one entry does the cubic translation work
// once instead of k times.
package pdm

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/dfa"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/obs"
	"rasc/internal/spec"
	"rasc/internal/subst"
	"rasc/internal/terms"
)

// Skeleton is the property-independent half of a model-checking run for
// one entry function. It is immutable after BuildSkeleton and safe to
// share: Check forks the solved base system per property, so any number
// of goroutines may call Check concurrently.
type Skeleton struct {
	prog  *minic.Program
	cfg   *minic.CFG
	entry string

	sys     *core.System // frozen: forked, never mutated, after build
	nodeVar []core.VarID
	pc      core.CNode
	base    core.Stats

	deferred []deferredNode
}

// deferredNode is a statement whose constraint form depends on the
// property's event map (event edge vs. call constructor vs. plain
// step), deferred to the per-property phase.
type deferredNode struct {
	id     int
	callee string       // canonical defined callee name, "" if none
	cons   terms.ConsID // pre-declared call-site constructor (valid iff callee != "")
}

// skelAlgebra is the annotation algebra of the skeleton build. Only
// identity annotations occur in a skeleton, and every Algebra is
// required to represent identity as annotation 0 (monoid and
// substitution tables intern ε first), so the identity-only solve is
// valid under any later algebra a fork installs.
type skelAlgebra struct{}

func (skelAlgebra) Identity() Annot        { return 0 }
func (skelAlgebra) Then(a, b Annot) Annot  { return a | b }
func (skelAlgebra) Accepting(a Annot) bool { return false }
func (skelAlgebra) Dead(a Annot) bool      { return false }
func (skelAlgebra) String(a Annot) string  { return "ε" }

// Annot aliases core.Annot for the local algebra methods.
type Annot = core.Annot

// BuildSkeleton translates the property-independent constraints of p
// reachable from entry ("" means main) and solves them. The IR program
// carries the kernel form and the prebuilt whole-program CFG, so a
// driver sharing one *ir.Program across entries shares the CFG too.
// maybeEvent reports whether some event map the skeleton will later be
// checked against might classify the call as a property event; such
// statements are left to the per-property phase. A nil maybeEvent defers
// every call statement (always sound, never shares call/return
// structure).
func BuildSkeleton(p *ir.Program, entry string, opts core.Options,
	maybeEvent func(call *minic.CallExpr, assignTo string) bool) (*Skeleton, error) {
	prog, cfg := p.MC, p.Graph
	if entry == "" {
		entry = "main"
	}
	entryDef, ok := prog.ByName[entry]
	if !ok {
		return nil, fmt.Errorf("pdm: entry function %q not defined", entry)
	}
	// ByName may hold aliases (gosrc registers bare method names for
	// uniquely named methods); Entry/Exit are keyed by canonical names.
	entry = entryDef.Name

	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)

	sys := core.NewSystem(skelAlgebra{}, sig, opts)
	sys.ReserveVars(len(cfg.Nodes) + len(cfg.Nodes)/8)
	nodeVar := make([]core.VarID, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		nodeVar[n.ID] = sys.Anon()
	}
	// CFG-node variables render their diagnostic names on demand instead
	// of interning ~one formatted string per program point per property.
	sys.SetNameFn(func(v core.VarID) string {
		if int(v) < len(cfg.Nodes) {
			n := cfg.Nodes[v]
			return fmt.Sprintf("S%d@%s:%d", n.ID, n.Fn, n.Line)
		}
		return ""
	})
	pc := sys.Constant(pcCons)
	sys.AddLowerE(pc, nodeVar[cfg.Entry[entry]])

	sk := &Skeleton{prog: prog, cfg: cfg, entry: entry, sys: sys, nodeVar: nodeVar, pc: pc}
	for _, n := range cfg.Nodes {
		sv := nodeVar[n.ID]
		if n.Kind == minic.NSpawn && n.Call != nil {
			// A goroutine spawn: the spawned function starts from the
			// spawn point's annotations (so events in its body are
			// reachable and carry a witness through the spawn), but its
			// exit never flows back into the spawner — the spawner
			// continues unchanged. This is a sound single-trace
			// abstraction, not a happens-before model; interleavings with
			// the spawner are not enumerated.
			if def, defined := prog.ByName[n.Call.Name]; defined {
				sys.AddVarE(sv, nodeVar[cfg.Entry[def.Name]])
			}
			for _, m := range n.Succs {
				sys.AddVarE(sv, nodeVar[m])
			}
			continue
		}
		if n.Kind == minic.NAction && n.Call != nil {
			def, defined := prog.ByName[n.Call.Name]
			if maybeEvent == nil || maybeEvent(n.Call, n.AssignTo) {
				// Event-or-not depends on the property: defer, but
				// pre-declare the call-site constructor so the
				// per-property phase never writes the shared signature.
				d := deferredNode{id: n.ID}
				if defined {
					d.callee = def.Name
					d.cons = sig.MustDeclare(fmt.Sprintf("o@%d", n.ID), 1)
				}
				sk.deferred = append(sk.deferred, d)
				continue
			}
			if defined {
				// Case 3 (§6.1): o_i(S) ⊆ F_entry and o_i^-1(F_exit) ⊆ S_i.
				oc := sig.MustDeclare(fmt.Sprintf("o@%d", n.ID), 1)
				sys.AddLowerE(sys.Cons(oc, sv), nodeVar[cfg.Entry[def.Name]])
				for _, m := range n.Succs {
					sys.AddProjE(oc, 0, nodeVar[cfg.Exit[def.Name]], nodeVar[m])
				}
				continue
			}
		}
		for _, m := range n.Succs {
			sys.AddVarE(sv, nodeVar[m])
		}
	}
	sys.Solve()
	sys.Freeze()
	sk.base = sys.Stats()
	return sk, nil
}

// Entry returns the canonical entry function name.
func (sk *Skeleton) Entry() string { return sk.entry }

// Deferred returns the number of statements whose classification was
// deferred to the per-property phase.
func (sk *Skeleton) Deferred() int { return len(sk.deferred) }

// BaseStats returns the solver statistics of the shared skeleton itself;
// a Result's Base field holds the same value, so a driver can report the
// skeleton's size once and each property's layered work separately.
func (sk *Skeleton) BaseStats() core.Stats { return sk.base }

// CFG returns the control-flow graph the skeleton was built over.
func (sk *Skeleton) CFG() *minic.CFG { return sk.cfg }

// Obs bundles the observability options of one Check: solver and
// skeleton-layer metric hooks, and whether to extract finding
// provenance. A nil *Obs (or nil fields) disables everything; the
// result's violations are identical either way — provenance is a pure
// read of the solver's witness records.
type Obs struct {
	Solver *obs.SolverMetrics
	PDM    *obs.PDMMetrics
	// Explain attaches a derivation chain to every violation.
	Explain bool
}

// Check layers one property onto the skeleton: it forks the solved base
// system, classifies the deferred statements under the property's event
// map, solves the residue online, and collects violations exactly as
// pdm.Check does. Safe for concurrent use.
func (sk *Skeleton) Check(prop *spec.Property, events *minic.EventMap) (*Result, error) {
	return sk.CheckObs(prop, events, nil)
}

// CheckObs is Check with observability hooks attached; see Obs.
func (sk *Skeleton) CheckObs(prop *spec.Property, events *minic.EventMap, o *Obs) (*Result, error) {
	var alg core.Algebra
	var envTab *subst.Table
	if prop.IsParametric() {
		envTab = subst.NewTable(prop.Mon)
		alg = core.EnvAlgebra{Tab: envTab}
	} else {
		alg = core.FuncAlgebra{Mon: prop.Mon}
	}
	if alg.Identity() != 0 {
		return nil, fmt.Errorf("pdm: algebra must represent identity as annotation 0 to layer on a shared skeleton")
	}
	sys := sk.sys.Fork(alg)
	if o != nil {
		sys.SetMetrics(o.Solver)
		if o.PDM != nil {
			o.PDM.SkeletonForks.Inc()
		}
	}

	// annotOf computes the edge annotation for an event.
	annotOf := func(ev minic.Event) (core.Annot, error) {
		f, ok := prop.Mon.SymbolFuncByName(ev.Symbol)
		if !ok {
			return 0, fmt.Errorf("pdm: event symbol %q not in property alphabet", ev.Symbol)
		}
		if envTab == nil {
			return core.Annot(f), nil
		}
		param := prop.ParamOf[ev.Symbol]
		if param == "" || ev.Label == "" {
			return core.Annot(envTab.FromFunc(f)), nil
		}
		return core.Annot(envTab.Instantiate(param, ev.Label, f)), nil
	}

	ident := alg.Identity()
	var pruned map[string]bool
	if envTab != nil {
		var matched []minic.Event
		for _, d := range sk.deferred {
			n := sk.cfg.Nodes[d.id]
			if ev, ok := events.Match(n.Call, n.AssignTo); ok {
				matched = append(matched, ev)
			}
		}
		pruned = prunedLabels(prop, matched)
	}
	nodeEvent := map[int]core.Annot{}
	for _, d := range sk.deferred {
		n := sk.cfg.Nodes[d.id]
		sv := sk.nodeVar[n.ID]
		if ev, ok := events.Match(n.Call, n.AssignTo); ok {
			if ev.Label != "" && prop.ParamOf[ev.Symbol] != "" && pruned[ev.Label] {
				for _, m := range n.Succs {
					sys.AddVar(sv, sk.nodeVar[m], ident)
				}
				if o != nil && o.PDM != nil {
					o.PDM.PrunedEvents.Inc()
				}
				continue
			}
			a, err := annotOf(ev)
			if err != nil {
				return nil, err
			}
			nodeEvent[n.ID] = a
			for _, m := range n.Succs {
				sys.AddVar(sv, sk.nodeVar[m], a)
				if o != nil && o.PDM != nil {
					o.PDM.LayeredEvents.Inc()
				}
			}
			continue
		}
		if d.callee != "" {
			sys.AddLowerE(sys.Cons(d.cons, sv), sk.nodeVar[sk.cfg.Entry[d.callee]])
			for _, m := range n.Succs {
				sys.AddProjE(d.cons, 0, sk.nodeVar[sk.cfg.Exit[d.callee]], sk.nodeVar[m])
			}
			continue
		}
		for _, m := range n.Succs {
			sys.AddVar(sv, sk.nodeVar[m], ident)
		}
	}
	sys.Solve()
	if o != nil && o.Solver != nil {
		sys.FlushSizeMetrics()
	}

	res := &Result{
		Sys:       sys,
		Base:      sk.base,
		NodeVar:   sk.nodeVar,
		prog:      sk.prog,
		cfg:       sk.cfg,
		prop:      prop,
		pcNode:    sk.pc,
		envTab:    envTab,
		nodeEvent: nodeEvent,
		alg:       alg,
		explain:   o != nil && o.Explain,
	}
	res.PN = sys.PNReach(sk.pc)
	res.collectViolations(alg)
	return res, nil
}

// prunedLabels is the per-label viability filter for parametric
// properties. A catch-all event rule can match receivers that have
// nothing to do with the property — a counting waitgroup checker's
// `Add` rule matching every metrics counter in the program, say — and
// each distinct label mints fresh environment entries that the solver
// must intern, compose, and propagate; on method-name-heavy trees that
// is the dominant cost of a parametric check.
//
// An entry bound to label l is built exclusively from l's own symbol
// functions plus those of unlabeled events (which reach every entry
// through the residual), and every consumer of entries — violation
// collection, exit-leak queries — tests them with Mon.Accepting, i.e.
// applied at the machine's start state. So when no word over that
// symbol set can drive the machine from start to an accept state, label
// l can never produce a finding, and its events may be layered as
// identity edges without changing any result.
//
// The reasoning needs entries to track exactly one label, so pruning is
// restricted to single-parameter properties: with one parameter, two
// entries for different labels conflict and never merge, whereas
// multi-parameter entries could mix symbol sets across labels. Returns
// nil (prune nothing) when the property is multi-parameter or an event
// symbol is not in the machine's alphabet (the layering loop surfaces
// that error).
func prunedLabels(prop *spec.Property, matched []minic.Event) map[string]bool {
	params := map[string]bool{}
	for _, p := range prop.ParamOf {
		if p != "" {
			params[p] = true
		}
	}
	if len(params) != 1 {
		return nil
	}
	mach := prop.Mon.M
	global := map[dfa.Symbol]bool{}
	labelSyms := map[string]map[dfa.Symbol]bool{}
	for _, ev := range matched {
		sym, ok := mach.Alpha.Lookup(ev.Symbol)
		if !ok {
			return nil
		}
		if prop.ParamOf[ev.Symbol] == "" || ev.Label == "" {
			global[sym] = true
			continue
		}
		set := labelSyms[ev.Label]
		if set == nil {
			set = map[dfa.Symbol]bool{}
			labelSyms[ev.Label] = set
		}
		set[sym] = true
	}
	pruned := map[string]bool{}
	for lbl, syms := range labelSyms {
		for s := range global {
			syms[s] = true
		}
		if !acceptReachable(mach, syms) {
			pruned[lbl] = true
		}
	}
	return pruned
}

// acceptReachable reports whether some word over syms drives m from its
// start state to an accept state.
func acceptReachable(m *dfa.DFA, syms map[dfa.Symbol]bool) bool {
	if m.Accept[m.Start] {
		return true
	}
	visited := make([]bool, m.NumStates)
	visited[m.Start] = true
	queue := []dfa.State{m.Start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for sym := range syms {
			t := m.Step(s, sym)
			if t == dfa.None || visited[t] {
				continue
			}
			if m.Accept[t] {
				return true
			}
			visited[t] = true
			queue = append(queue, t)
		}
	}
	return false
}
