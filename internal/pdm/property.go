package pdm

import (
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// SimplePrivilegeSpecSrc is the Figure 3 property: a process must not
// execl while holding an effective uid of root acquired by seteuid(0).
const SimplePrivilegeSpecSrc = `
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
`

// FullPrivilegeSpecSrc is our reconstruction of the complete process
// privilege model used for Table 1 (MOPS "Property 1": 11 states, 9
// alphabet symbols; the original automaton from Chen/Dean/Wagner is not
// published in the paper, so this is a faithful substitution with the
// same state and alphabet counts).
//
// The model tracks the (ruid, euid, suid) triple of a setuid-root program
// abstracted to root/user, whether supplementary groups were dropped, and
// an initial "unknown" state:
//
//	Start             initial: uids unknown, conservatively dangerous
//	ER / ERG          ruid=user, euid=root, suid=root (typical setuid-root
//	                  entry), groups kept / dropped
//	RA / RAG          all ids root
//	EU / EUG          ruid=root, euid=user, suid=root (dropped, can regain)
//	TD / TDG          temporary drop: ruid=user, euid=user, suid=root
//	Dropped           fully and permanently unprivileged (also the benign
//	                  post-exec state)
//	Error             executed an untrusted program while dangerous
//
// exec is dangerous when euid is (or may be) root, or when saved uid is
// root with supplementary groups retained. setuid(0) from EU succeeds
// because ruid is root; from TD it fails. setreuid(u,u) and
// setresuid(u,u,u) drop permanently (the saved uid follows the new euid).
// setgroups is not tracked in the unknown Start state.
const FullPrivilegeSpecSrc = `
start state Start :
    | seteuid_zero -> ER
    | seteuid_nonzero -> TD
    | setuid_zero -> RA
    | setuid_nonzero -> Dropped
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | fork -> Start
    | exec -> Error;

state ER :
    | seteuid_nonzero -> TD
    | setuid_zero -> RA
    | setuid_nonzero -> Dropped
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | setgroups -> ERG
    | exec -> Error;

state ERG :
    | seteuid_nonzero -> TDG
    | setuid_zero -> RAG
    | setuid_nonzero -> Dropped
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | exec -> Error;

state RA :
    | seteuid_nonzero -> EU
    | setuid_nonzero -> Dropped
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | setgroups -> RAG
    | exec -> Error;

state RAG :
    | seteuid_nonzero -> EUG
    | setuid_nonzero -> Dropped
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | exec -> Error;

state EU :
    | seteuid_zero -> RA
    | setuid_zero -> RA
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | setgroups -> EUG
    | exec -> Error;

state EUG :
    | seteuid_zero -> RAG
    | setuid_zero -> RAG
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | exec -> Dropped;

state TD :
    | seteuid_zero -> ER
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | setgroups -> TDG
    | exec -> Error;

state TDG :
    | seteuid_zero -> ERG
    | setreuid_nonzero -> Dropped
    | setresuid_nonzero -> Dropped
    | exec -> Dropped;

state Dropped;

accept state Error;
`

// SimplePrivilegeProperty compiles the Figure 3 property.
func SimplePrivilegeProperty() *spec.Property {
	return spec.MustCompile(SimplePrivilegeSpecSrc)
}

// FullPrivilegeProperty compiles the Table 1 property (11 states, 9
// symbols).
func FullPrivilegeProperty() *spec.Property {
	return spec.MustCompile(FullPrivilegeSpecSrc)
}

// FullPrivilegeEvents maps C calls to the full property's alphabet.
func FullPrivilegeEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "seteuid", ArgIndex: 0, Equals: "0", Symbol: "seteuid_zero"},
		{Callee: "seteuid", ArgIndex: 0, NotEquals: "0", Symbol: "seteuid_nonzero"},
		{Callee: "setuid", ArgIndex: 0, Equals: "0", Symbol: "setuid_zero"},
		{Callee: "setuid", ArgIndex: 0, NotEquals: "0", Symbol: "setuid_nonzero"},
		{Callee: "setreuid", ArgIndex: -1, Symbol: "setreuid_nonzero"},
		{Callee: "setresuid", ArgIndex: -1, Symbol: "setresuid_nonzero"},
		{Callee: "setgroups", ArgIndex: -1, Symbol: "setgroups"},
		{Callee: "fork", ArgIndex: -1, Symbol: "fork"},
		{Callee: "execl", ArgIndex: -1, Symbol: "exec"},
		{Callee: "execv", ArgIndex: -1, Symbol: "exec"},
		{Callee: "execvp", ArgIndex: -1, Symbol: "exec"},
		{Callee: "system", ArgIndex: -1, Symbol: "exec"},
	}}
}
