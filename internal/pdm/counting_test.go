package pdm

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/obs"
	"rasc/internal/spec"
)

// depthSpec is a bounded-counter property tracking call depth: enter
// increments, leave decrements, and exceeding the bound is a violation.
// The counter saturates at its bound, so unbounded recursion yields a
// may-exceed verdict while the exact range stays precise.
const depthSpec = `
counter depth bound 3;

start state S :
    | enter [depth += 1] -> S
    | leave [depth -= 1] -> S;

assert depth <= 2;
`

func depthEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "enter", ArgIndex: -1, Symbol: "enter", LabelArg: -1},
		{Callee: "leave", ArgIndex: -1, Symbol: "leave", LabelArg: -1},
	}}
}

func checkDepth(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := spec.Compile(depthSpec, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, prop, depthEvents(), "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// wgMiniSpec is a miniature parametric counting waitgroup: add-after-
// wait reaches the Error accept state, and driving the counter negative
// trips the inline non-negativity assert.
const wgMiniSpec = `
counter c bound 2;

start state Counting :
    | add(x) [c += 1] -> Counting
    | done(x) [c -= 1] -> Counting
    | wait(x) -> Waited;

state Waited :
    | wait(x) -> Waited
    | add(x) [c += 1] -> Error;

accept state Error;

assert c >= 0;
`

func wgMiniEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "add", ArgIndex: -1, Symbol: "add", LabelArg: 0},
		{Callee: "done", ArgIndex: -1, Symbol: "done", LabelArg: 0},
		{Callee: "wait", ArgIndex: -1, Symbol: "wait", LabelArg: 0},
	}}
}

// TestCountingLabelPruning exercises the per-label viability pruning in
// CheckObs. The program has three labels: wg (add after wait — a real
// violation), orphan (done-only — the counter goes negative, also a
// violation), and metric (add-only — can never reach an accept state,
// so its two events must be pruned to identity edges). Pruning a label
// it shouldn't would lose one of the two findings; not pruning metric
// would leave PrunedEvents at zero.
func TestCountingLabelPruning(t *testing.T) {
	src := `
void main() {
    add(wg);
    wait(wg);
    add(wg);
    done(orphan);
    add(metric);
    add(metric);
}
`
	prog, err := ir.FromMiniC(src)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := spec.Compile(wgMiniSpec, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildSkeleton(prog, "main", core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pm := obs.NewPDMMetrics(obs.NewRegistry())
	res, err := sk.CheckObs(prop, wgMiniEvents(), &Obs{PDM: pm})
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, v := range res.Violations {
		labels[v.Label] = true
	}
	if !labels["wg"] || !labels["orphan"] || len(labels) != 2 {
		t.Errorf("violating labels = %v, want exactly {wg, orphan}", labels)
	}
	if got := pm.PrunedEvents.Value(); got != 2 {
		t.Errorf("PrunedEvents = %d, want 2 (both metric adds)", got)
	}
	if got := pm.LayeredEvents.Value(); got == 0 {
		t.Error("no events layered at all — the wg/orphan events went missing")
	}
}

// Shallow nesting within the bound stays clean: the pushdown model
// tracks enter/leave pairs through calls and returns exactly.
func TestCountingDepthWithinBound(t *testing.T) {
	src := `
void inner() {
    enter();
    work();
    leave();
}
void outer() {
    enter();
    inner();
    leave();
}
void main() {
    outer();
}
`
	res := checkDepth(t, src)
	if len(res.Violations) != 0 {
		t.Fatalf("nesting depth 2 within bound 3 flagged: %+v", res.Violations)
	}
}

// Unbounded recursion pushes the counter past its bound on some
// unwinding: the saturating abstraction must report the may-exceed
// violation, and the pushdown summary computation must still terminate
// (the recursive call cycle would be an infinite state space without
// the monoid quotient).
func TestCountingDepthRecursionExceeds(t *testing.T) {
	src := `
void rec(int n) {
    enter();
    if (n) {
        rec(n - 1);
    }
    leave();
}
void main() {
    rec(9);
}
`
	res := checkDepth(t, src)
	if len(res.Violations) == 0 {
		t.Fatal("unbounded recursion must exceed the depth bound")
	}
}

// The same recursion balanced below the bound: one enter/leave pair in
// the recursive function but recursion guarded to a single level via a
// non-recursive helper chain — stays clean, showing the violation above
// really is about depth, not about recursion per se.
func TestCountingDepthTailWithinBound(t *testing.T) {
	src := `
void step() {
    enter();
    work();
    leave();
}
void main() {
    step();
    step();
    step();
}
`
	res := checkDepth(t, src)
	if len(res.Violations) != 0 {
		t.Fatalf("sequential re-entry to depth 1 flagged: %+v", res.Violations)
	}
}
