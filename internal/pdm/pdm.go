// Package pdm implements the pushdown model checking application of §6:
// verifying MOPS-class temporal safety properties of C-like programs with
// regularly annotated set constraints. The program's control flow graph
// becomes a constraint system (§6.1): one set variable per CFG node,
// annotated edges for property-relevant statements, and a unary
// constructor per call site whose projection models the matching return.
// The program counter is the constant pc seeded at main's entry; a
// property violation is the presence of pc with an accepting annotation,
// found with PN reachability so that partially matched (unreturned) call
// paths are included (§6.2). Parametric properties (§6.4) use
// substitution-environment annotations.
package pdm

import (
	"fmt"
	"sort"

	"rasc/internal/core"
	"rasc/internal/ir"
	"rasc/internal/minic"
	"rasc/internal/monoid"
	"rasc/internal/spec"
	"rasc/internal/subst"
)

// Result is the outcome of a model-checking run.
type Result struct {
	// Sys is the underlying constraint system, for advanced queries.
	Sys *core.System
	// Base holds the solver statistics of the shared skeleton the run was
	// layered on. Sys.Stats() includes it; Sys.Stats().Minus(Base) is the
	// work attributable to this property alone. Zero when the run built
	// its own system.
	Base core.Stats
	// PN is the program counter's PN-reachability result.
	PN *core.PNResult
	// Violations, deduplicated and ordered by line.
	Violations []Violation
	// NodeVar maps CFG node IDs to their set variables.
	NodeVar []core.VarID

	prog      *minic.Program
	cfg       *minic.CFG
	prop      *spec.Property
	pcNode    core.CNode
	envTab    *subst.Table
	nodeEvent map[int]core.Annot
	alg       core.Algebra
	explain   bool
}

// Violation is one property violation.
type Violation struct {
	// Fn and Line locate the earliest program point at which the
	// property automaton has reached an accepting (error) state.
	Fn   string
	Line int
	// NodeID is the CFG node.
	NodeID int
	// Label is the offending parameter instantiation for parametric
	// properties ("fd2"), or "" for plain ones.
	Label string
	// May marks a verdict that rests on a saturated counter or relation
	// valuation (the tracker lost the exact value, see spec.MayState):
	// every accepting witness for this label lands in a may-state.
	May bool
	// Trace is the witness path (function, line) hops, oldest first.
	Trace []TracePoint
	// Provenance is the solver-level derivation chain behind the
	// violation, oldest first; populated only when the run was checked
	// with Obs.Explain set.
	Provenance []ProvStep
}

// ProvStep is one hop of a violation's derivation chain: a core
// provenance step positioned in the program and with its annotation
// rendered through the property's algebra. Rule is one of the core
// rule names (seed, edge, wrap, pop) or "event" for the final
// error-state transition appended by collectViolations (and "exit" for
// leak-mode chains).
type ProvStep struct {
	Fn    string `json:"fn"`
	Line  int    `json:"line"`
	Rule  string `json:"rule"`
	Annot string `json:"annot,omitempty"`
}

// TracePoint is one hop of a violation witness.
type TracePoint struct {
	Fn   string
	Line int
	// Enter is set when the hop enters a callee through a call site.
	Enter bool
}

func (v Violation) String() string {
	lbl := ""
	if v.Label != "" {
		lbl = " [" + v.Label + "]"
	}
	return fmt.Sprintf("%s:%d: property violation%s", v.Fn, v.Line, lbl)
}

// Check model-checks prog against the compiled property, using events to
// map calls to alphabet symbols. entry is the entry function ("" means
// main). opts configures the underlying solver.
//
// Check is a convenience wrapper over the two-phase API: it lowers prog
// into the IR, builds a fresh Skeleton whose deferred set is exactly the
// statements events classifies as property events, then layers the
// property on it. Drivers checking several properties over the same
// entry should lower once, call BuildSkeleton once, and Skeleton.Check
// per property instead.
func Check(prog *minic.Program, prop *spec.Property, events *minic.EventMap, entry string, opts core.Options) (*Result, error) {
	p, err := ir.FromProgram(prog)
	if err != nil {
		return nil, err
	}
	sk, err := BuildSkeleton(p, entry, opts, func(call *minic.CallExpr, assignTo string) bool {
		_, ok := events.Match(call, assignTo)
		return ok
	})
	if err != nil {
		return nil, err
	}
	return sk.Check(prop, events)
}

// collectViolations implements §6.2 literally: record each statement that
// could cause a transition to the error state — an action node where the
// event's annotation composes some non-accepting pc occurrence into an
// accepting one — and attach a witness trace.
func (r *Result) collectViolations(alg core.Algebra) {
	varNodes := r.varNodes()
	seen := map[string]bool{}
	for _, n := range r.cfg.Nodes {
		if n.Kind != minic.NAction {
			continue
		}
		ev, ok := r.nodeEvent[n.ID]
		if !ok {
			continue
		}
		v := r.NodeVar[n.ID]
		for _, a := range r.PN.At(v) {
			comp := alg.Then(a, ev)
			fresh := r.newViolationLabels(a, comp)
			if len(fresh) == 0 {
				continue
			}
			steps := r.PN.Trace(r.Sys.Rep(v), a)
			for _, lbl := range fresh {
				key := fmt.Sprintf("%d|%s", n.ID, lbl)
				if seen[key] {
					continue
				}
				seen[key] = true
				tr := r.tracePoints(steps, varNodes)
				if len(tr) == 0 || tr[len(tr)-1] != (TracePoint{Fn: n.Fn, Line: n.Line}) {
					tr = append(tr, TracePoint{Fn: n.Fn, Line: n.Line})
				}
				var prov []ProvStep
				if r.explain {
					// The derivation chain behind the violating fact, then
					// the event transition that makes it accepting.
					prov = r.provSteps(steps, varNodes)
					prov = append(prov, ProvStep{
						Fn: n.Fn, Line: n.Line, Rule: "event", Annot: alg.String(comp),
					})
				}
				r.Violations = append(r.Violations, Violation{
					Fn:         n.Fn,
					Line:       n.Line,
					NodeID:     n.ID,
					Label:      lbl,
					May:        r.mayForLabel(comp, lbl),
					Trace:      tr,
					Provenance: prov,
				})
			}
		}
	}
	sort.Slice(r.Violations, func(i, j int) bool {
		if r.Violations[i].Line != r.Violations[j].Line {
			return r.Violations[i].Line < r.Violations[j].Line
		}
		return r.Violations[i].Label < r.Violations[j].Label
	})
}

// newViolationLabels returns the labels accepting in comp but not already
// accepting in prev (for plain properties, [""] when prev is non-accepting
// and comp accepting).
func (r *Result) newViolationLabels(prev, comp core.Annot) []string {
	if r.envTab == nil {
		if !r.prop.Mon.Accepting(monoid.FuncID(comp)) || r.prop.Mon.Accepting(monoid.FuncID(prev)) {
			return nil
		}
		return []string{""}
	}
	before := map[string]bool{}
	for _, lbl := range r.acceptingLabels(prev) {
		before[lbl] = true
	}
	var out []string
	for _, lbl := range r.acceptingLabels(comp) {
		if !before[lbl] {
			out = append(out, lbl)
		}
	}
	sort.Strings(out)
	return out
}

// acceptingLabels lists the accepting instantiations of an environment
// annotation.
func (r *Result) acceptingLabels(a core.Annot) []string {
	var out []string
	for _, v := range r.envTab.AcceptingEntries(subst.ID(a)) {
		out = append(out, joinBindingLabels(v.Bindings))
	}
	return out
}

func joinBindingLabels(bs []subst.Binding) string {
	lbl := ""
	for i, b := range bs {
		if i > 0 {
			lbl += ","
		}
		lbl += b.Label
	}
	return lbl
}

// mayForLabel reports whether every accepting witness of annotation a for
// the given label lands on a saturated (may) machine state. One definite
// witness makes the verdict definite.
func (r *Result) mayForLabel(a core.Annot, lbl string) bool {
	if r.prop == nil {
		return false
	}
	if r.envTab == nil {
		f := monoid.FuncID(a)
		if !r.prop.Mon.Accepting(f) {
			return false
		}
		return r.prop.MayState(r.prop.Mon.RightClass(f))
	}
	may, found := false, false
	for _, v := range r.envTab.AcceptingEntries(subst.ID(a)) {
		if joinBindingLabels(v.Bindings) != lbl {
			continue
		}
		if !r.prop.MayState(r.prop.Mon.RightClass(v.F)) {
			return false
		}
		may, found = true, found || true
	}
	return may && found
}

// labelsOf extracts the violating parameter labels of an accepting
// annotation ("" for plain properties or residual violations).
func (r *Result) labelsOf(a core.Annot) []string {
	if r.envTab == nil {
		return []string{""}
	}
	var out []string
	for _, v := range r.envTab.AcceptingEntries(subst.ID(a)) {
		out = append(out, joinBindingLabels(v.Bindings))
	}
	if len(out) == 0 {
		out = []string{""}
	}
	sort.Strings(out)
	return out
}

// provSteps renders a witness trace into positioned provenance hops.
// Hops at solver-internal variables (projection-merge intermediates and
// the like) carry no program point and are dropped; representatives
// merged by cycle elimination map to their lowest-numbered CFG node.
func (r *Result) provSteps(steps []core.TraceStep, varNodes map[core.VarID][]int) []ProvStep {
	var out []ProvStep
	for _, st := range core.ProvFromTrace(steps) {
		ns := varNodes[st.Var]
		if len(ns) == 0 {
			continue
		}
		n := r.cfg.Nodes[ns[0]]
		out = append(out, ProvStep{Fn: n.Fn, Line: n.Line, Rule: st.Rule, Annot: r.alg.String(st.Annot)})
	}
	return out
}

// ExitProvenance returns the derivation chain behind a leak-mode
// finding: how the annotation still accepting for label reached the
// entry function's exit. Returns nil when the run was not checked with
// Obs.Explain, or when no matching accepting fact exists.
func (r *Result) ExitProvenance(entry, label string) []ProvStep {
	if !r.explain {
		return nil
	}
	if entry == "" {
		entry = "main"
	}
	exitVar := r.NodeVar[r.cfg.Exit[entry]]
	varNodes := r.varNodes()
	for _, a := range r.PN.At(exitVar) {
		if !r.accepting(a) {
			continue
		}
		match := label == ""
		for _, lbl := range r.labelsOf(a) {
			if lbl == label {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		steps := r.PN.Trace(r.Sys.Rep(exitVar), a)
		prov := r.provSteps(steps, varNodes)
		exitNode := r.cfg.Nodes[r.cfg.Exit[entry]]
		return append(prov, ProvStep{
			Fn: exitNode.Fn, Line: exitNode.Line, Rule: "exit", Annot: r.alg.String(a),
		})
	}
	return nil
}

func (r *Result) tracePoints(steps []core.TraceStep, varNodes map[core.VarID][]int) []TracePoint {
	var out []TracePoint
	for _, st := range steps {
		ns := varNodes[st.Var]
		if len(ns) == 0 {
			continue
		}
		n := r.cfg.Nodes[ns[0]]
		out = append(out, TracePoint{Fn: n.Fn, Line: n.Line, Enter: st.Wrapped >= 0})
	}
	return out
}

// varNodes maps representative variables back to CFG nodes (several nodes
// can share one representative after cycle elimination); node lists are
// sorted ascending.
func (r *Result) varNodes() map[core.VarID][]int {
	m := map[core.VarID][]int{}
	for id, v := range r.NodeVar {
		rep := r.repOf(v)
		m[rep] = append(m[rep], id)
	}
	for _, ns := range m {
		sort.Ints(ns)
	}
	return m
}

// repOf resolves a variable to its representative by probing the PN
// result (which normalizes), falling back to identity mapping.
func (r *Result) repOf(v core.VarID) core.VarID {
	return r.Sys.Rep(v)
}

// OpenInstancesAtExit returns, for parametric resource properties such as
// the file-state automaton of Figure 5, the labels whose automaton copy
// is in an accepting state when the entry function exits (e.g. files
// still open at the end of the program, §6.4.1).
func (r *Result) OpenInstancesAtExit(entry string) []string {
	out, _ := r.OpenInstancesAtExitDetail(entry)
	return out
}

// OpenInstancesAtExitDetail is OpenInstancesAtExit plus, per label, whether
// the verdict is a MAY verdict: every accepting valuation reaching the exit
// for that label rests on a saturated counter or relation tracker state.
func (r *Result) OpenInstancesAtExitDetail(entry string) ([]string, map[string]bool) {
	if entry == "" {
		entry = "main"
	}
	exitVar := r.NodeVar[r.cfg.Exit[entry]]
	may := map[string]bool{}
	for _, a := range r.PN.At(exitVar) {
		if !r.accepting(a) {
			continue
		}
		for _, lbl := range r.labelsOf(a) {
			m := r.mayForLabel(a, lbl)
			if prev, seen := may[lbl]; seen {
				may[lbl] = prev && m
			} else {
				may[lbl] = m
			}
		}
	}
	var out []string
	for l := range may {
		out = append(out, l)
	}
	sort.Strings(out)
	return out, may
}

func (r *Result) accepting(a core.Annot) bool {
	if r.envTab != nil {
		return r.envTab.Accepting(subst.ID(a))
	}
	return r.prop.Mon.Accepting(monoid.FuncID(a))
}

// CFG exposes the control flow graph used for checking.
func (r *Result) CFG() *minic.CFG { return r.cfg }
