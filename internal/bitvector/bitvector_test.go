package bitvector

import (
	"math"
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/monoid"
)

// §3.3: the n-bit machine's monoid has 3^n representative functions —
// each bit independently ε, gen or kill; composition exploits order
// independence of distinct bits automatically.
func TestMonoidIsThreeToTheN(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		m, err := monoid.Build(Machine(n), 1<<20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int(math.Pow(3, float64(n)))
		if m.Size() != want {
			t.Errorf("n=%d: |F^≡| = %d, want %d", n, m.Size(), want)
		}
	}
}

// Order independence (§4): g1·g2 ≡ g2·g1 for distinct bits.
func TestOrderIndependence(t *testing.T) {
	m, err := monoid.Build(Machine(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := m.SymbolFuncByName(GenSym(0))
	g2, _ := m.SymbolFuncByName(GenSym(1))
	k1, _ := m.SymbolFuncByName(KillSym(0))
	if m.Then(g1, g2) != m.Then(g2, g1) {
		t.Error("distinct-bit gens must commute")
	}
	if m.Then(g1, k1) == m.Then(k1, g1) {
		t.Error("same-bit gen/kill must NOT commute")
	}
}

func TestOneBitMatchesFigure1(t *testing.T) {
	d := OneBit()
	if d.NumStates != 2 {
		t.Fatalf("states = %d, want 2", d.NumStates)
	}
	if !d.AcceptsNames("g0") || d.AcceptsNames("g0", "k0") || !d.AcceptsNames("k0", "g0") {
		t.Error("1-bit language wrong")
	}
}

func bothCheck(t *testing.T, src string) (*IterResult, []string) {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := CheckIterative(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cons []string
	for _, v := range res.Violations {
		cons = append(cons, v.Label)
	}
	return iter, cons
}

func TestTaintStraightLine(t *testing.T) {
	iter, cons := bothCheck(t, `
void main() {
    int p = source();
    sink(p);
}
`)
	if len(iter.Violations) != 1 || iter.Violations[0].Label != "p" {
		t.Errorf("iterative = %+v, want one violation on p", iter.Violations)
	}
	if len(cons) != 1 || cons[0] != "p" {
		t.Errorf("constraints = %v, want [p]", cons)
	}
}

func TestTaintSanitized(t *testing.T) {
	iter, cons := bothCheck(t, `
void main() {
    int p = source();
    sanitize(p);
    sink(p);
}
`)
	if len(iter.Violations) != 0 {
		t.Errorf("iterative flagged sanitized use: %+v", iter.Violations)
	}
	if len(cons) != 0 {
		t.Errorf("constraints flagged sanitized use: %v", cons)
	}
}

func TestTaintPerVariable(t *testing.T) {
	iter, cons := bothCheck(t, `
void main() {
    int p = source();
    int q = source();
    sanitize(p);
    sink(p);
    sink(q);
}
`)
	if len(iter.Violations) != 1 || iter.Violations[0].Label != "q" {
		t.Errorf("iterative = %+v, want [q]", iter.Violations)
	}
	if len(cons) != 1 || cons[0] != "q" {
		t.Errorf("constraints = %v, want [q]", cons)
	}
}

func TestTaintBranch(t *testing.T) {
	iter, cons := bothCheck(t, `
void main() {
    int p = source();
    if (c) {
        sanitize(p);
    }
    sink(p);
}
`)
	// May-analysis: the unsanitized path exists.
	if len(iter.Violations) != 1 {
		t.Errorf("iterative = %+v, want 1", iter.Violations)
	}
	if len(cons) != 1 {
		t.Errorf("constraints = %v, want 1", cons)
	}
}

func TestTaintInterprocedural(t *testing.T) {
	iter, cons := bothCheck(t, `
void clean(int v) {
    sanitize(v);
}
void main() {
    int v = source();
    clean(v);
    sink(v);
}
`)
	if len(iter.Violations) != 0 {
		t.Errorf("iterative missed the interprocedural sanitize: %+v", iter.Violations)
	}
	if len(cons) != 0 {
		t.Errorf("constraints missed the interprocedural sanitize: %v", cons)
	}
}

// Summaries must be context-sensitive: a callee that does nothing to the
// fact must not conflate its two callers.
func TestTaintContextSensitivity(t *testing.T) {
	iter, cons := bothCheck(t, `
void nop(int x) {
    noop(x);
}
void main() {
    int a = source();
    nop(a);
    sanitize(a);
    nop(a);
    sink(a);
}
`)
	if len(iter.Violations) != 0 {
		t.Errorf("iterative = %+v, want none", iter.Violations)
	}
	if len(cons) != 0 {
		t.Errorf("constraints = %v, want none", cons)
	}
}

func TestTaintUseInsideCallee(t *testing.T) {
	iter, cons := bothCheck(t, `
void consume(int v) {
    sink(v);
}
void main() {
    int v = source();
    consume(v);
}
`)
	if len(iter.Violations) != 1 {
		t.Errorf("iterative = %+v, want 1", iter.Violations)
	}
	if len(cons) != 1 {
		t.Errorf("constraints = %v, want 1", cons)
	}
}

func TestTaintRecursionTerminates(t *testing.T) {
	iter, cons := bothCheck(t, `
void loop(int n) {
    if (n) {
        loop(n - 1);
    }
}
void main() {
    int v = source();
    loop(3);
    sink(v);
}
`)
	if len(iter.Violations) != 1 {
		t.Errorf("iterative = %+v, want 1", iter.Violations)
	}
	if len(cons) != 1 {
		t.Errorf("constraints = %v, want 1", cons)
	}
}

func TestTaintLoopRegen(t *testing.T) {
	iter, cons := bothCheck(t, `
void main() {
    int v = source();
    while (c) {
        sanitize(v);
        v = source();
    }
    sink(v);
}
`)
	// Both the zero-iteration path and the regenerated path taint v.
	if len(iter.Violations) != 1 {
		t.Errorf("iterative = %+v, want 1", iter.Violations)
	}
	if len(cons) != 1 {
		t.Errorf("constraints = %v, want 1", cons)
	}
}

func TestNoFacts(t *testing.T) {
	prog := minic.MustParse("void main() { puts(1); }")
	iter, err := CheckIterative(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(iter.Violations) != 0 {
		t.Error("no facts, no violations")
	}
}

func TestMachineBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Machine(0) should panic")
		}
	}()
	Machine(0)
}
