// Package bitvector expresses interprocedural bit-vector dataflow
// problems (gen/kill frameworks, §3.3 of the paper) as regularly annotated
// set constraints, and provides the classic iterative/summary-based
// dataflow engine as a baseline for differential testing and benchmarks.
//
// Two encodings of the gen/kill annotation language are provided:
//
//   - Machine(n) builds the explicit n-bit product automaton of §3.3. Its
//     transition monoid has exactly 3^n representative functions (each bit
//     independently ε, gen or kill), demonstrating how the solver's
//     composition automatically exploits the order independence of
//     distinct bits (§4).
//
//   - The taint analysis (taint.go) uses the 1-bit machine parametrically
//     (§6.4): gen(x)/kill(x) events instantiated per program variable,
//     tracked by substitution environments. This scales with the number
//     of *mentioned* facts instead of 2^n states.
package bitvector

import (
	"fmt"

	"rasc/internal/dfa"
)

// GenSym and KillSym name the gen/kill alphabet symbols for bit i.
func GenSym(i int) string  { return fmt.Sprintf("g%d", i) }
func KillSym(i int) string { return fmt.Sprintf("k%d", i) }

// Machine builds the n-bit gen/kill automaton: states are bit vectors
// (2^n states), symbol g_i sets bit i, k_i clears it. The accept states
// are those with bit 0 set, matching Figure 1's 1-bit machine for n = 1
// (acceptance plays no role in the monoid-size experiments).
func Machine(n int) *dfa.DFA {
	if n < 1 || n > 20 {
		panic("bitvector: n out of range")
	}
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, GenSym(i), KillSym(i))
	}
	alpha := dfa.NewAlphabet(names...)
	size := 1 << uint(n)
	d := dfa.NewDFA(alpha, size, 0)
	for s := 0; s < size; s++ {
		if s&1 != 0 {
			d.SetAccept(dfa.State(s))
		}
		for i := 0; i < n; i++ {
			g, _ := alpha.Lookup(GenSym(i))
			k, _ := alpha.Lookup(KillSym(i))
			d.SetTransition(dfa.State(s), g, dfa.State(s|1<<uint(i)))
			d.SetTransition(dfa.State(s), k, dfa.State(s&^(1<<uint(i))))
		}
	}
	return d
}

// OneBit is Figure 1's machine.
func OneBit() *dfa.DFA { return Machine(1) }
