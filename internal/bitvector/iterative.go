package bitvector

import (
	"sort"

	"rasc/internal/minic"
)

// This file implements the classic baseline: interprocedural gen/kill
// dataflow in the functional style of Sharir and Pnueli — per-procedure
// (GEN, KILL) summary transfer functions computed to a fixed point, then a
// reachability phase propagating fact sets, with summaries applied at call
// sites so call/return matching is exact. For distributive gen/kill
// frameworks this computes the meet-over-valid-paths solution, which is
// the reference the constraint-based engine must reproduce.

// bitset is a little-endian bitset.
type bitset []uint64

func newBits(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b bitset) andInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// transfer is a gen/kill pair: out = (in \ kill) ∪ gen.
type transfer struct {
	gen, kill bitset
}

func identityTransfer(n int) transfer {
	return transfer{gen: newBits(n), kill: newBits(n)}
}

// unreachableTransfer is the bottom element for the join (gen = ∅,
// kill = U): joining it with anything yields the other operand.
func unreachableTransfer(n int) transfer {
	t := transfer{gen: newBits(n), kill: newBits(n)}
	t.kill.fill()
	return t
}

// then composes two transfers in execution order.
func (a transfer) then(b transfer) transfer {
	out := transfer{gen: a.gen.clone(), kill: a.kill.clone()}
	// gen' = (a.gen \ b.kill) ∪ b.gen
	for i := range out.gen {
		out.gen[i] = (a.gen[i] &^ b.kill[i]) | b.gen[i]
		out.kill[i] = (a.kill[i] | b.kill[i]) &^ b.gen[i]
	}
	return out
}

// join is the may-union join: gen ∪, kill ∩. Returns true on change.
func (a *transfer) join(b transfer) bool {
	c1 := a.gen.orInto(b.gen)
	c2 := a.kill.andInto(b.kill)
	return c1 || c2
}

func (a transfer) apply(in bitset) bitset {
	out := in.clone()
	for i := range out {
		out[i] = (in[i] &^ a.kill[i]) | a.gen[i]
	}
	return out
}

// IterViolation is a tainted use found by the baseline.
type IterViolation struct {
	Fn     string
	Line   int
	NodeID int
	Label  string
}

// IterResult is the baseline's output.
type IterResult struct {
	Violations []IterViolation
	// Facts is the analyzed fact universe (labels), sorted.
	Facts []string
}

// CheckIterative runs the summary-based iterative gen/kill taint analysis
// over prog, producing the same judgments as Check for differential
// testing.
func CheckIterative(prog *minic.Program) (*IterResult, error) {
	cfg, err := minic.Build(prog)
	if err != nil {
		return nil, err
	}
	events := TaintEvents()

	// Fact universe and per-node events.
	labelIdx := map[string]int{}
	var labels []string
	intern := func(l string) int {
		if i, ok := labelIdx[l]; ok {
			return i
		}
		labelIdx[l] = len(labels)
		labels = append(labels, l)
		return len(labels) - 1
	}
	type nodeEv struct {
		sym   string
		label int
	}
	nodeEvs := map[int]nodeEv{}
	callTo := map[int]string{} // action node -> defined callee
	for _, n := range cfg.Nodes {
		if n.Kind != minic.NAction {
			continue
		}
		if ev, ok := events.Match(n.Call, n.AssignTo); ok {
			nodeEvs[n.ID] = nodeEv{ev.Symbol, intern(ev.Label)}
		} else if def, defined := prog.ByName[n.Call.Name]; defined {
			callTo[n.ID] = def.Name // resolve aliases to the canonical name
		}
	}
	nf := len(labels)
	if nf == 0 {
		return &IterResult{}, nil
	}

	// Node transfers (taken when leaving the node).
	nodeTransfer := func(id int, summaries map[string]transfer) transfer {
		if ev, ok := nodeEvs[id]; ok {
			t := identityTransfer(nf)
			switch ev.sym {
			case "taint":
				t.gen.set(ev.label)
			case "sanitize":
				t.kill.set(ev.label)
			}
			return t
		}
		if callee, ok := callTo[id]; ok {
			if s, ok := summaries[callee]; ok {
				return s
			}
			return unreachableTransfer(nf) // summary not yet computed
		}
		return identityTransfer(nf)
	}

	// Phase 1: procedure summaries to a fixed point.
	summaries := map[string]transfer{}
	for _, fd := range prog.Funcs {
		summaries[fd.Name] = unreachableTransfer(nf)
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range prog.Funcs {
			s := summarize(cfg, fd.Name, nf, summaries, nodeTransfer)
			old := summaries[fd.Name]
			if !s.gen.equal(old.gen) || !s.kill.equal(old.kill) {
				summaries[fd.Name] = s
				changed = true
			}
		}
	}

	// Phase 2: fact sets. IN(node) via worklist over all functions; a
	// call's IN flows into the callee's entry, and past the call through
	// the summary.
	in := make([]bitset, len(cfg.Nodes))
	visited := make([]bool, len(cfg.Nodes))
	for i := range in {
		in[i] = newBits(nf)
	}
	work := []int{cfg.Entry["main"]}
	if _, ok := cfg.Entry["main"]; !ok {
		// No main: analyze every function from an empty context.
		work = nil
		for _, fd := range prog.Funcs {
			work = append(work, cfg.Entry[fd.Name])
		}
	}
	for _, w := range work {
		visited[w] = true
	}
	push := func(id int, facts bitset, wl *[]int) {
		changed := in[id].orInto(facts)
		if changed || !visited[id] {
			visited[id] = true
			*wl = append(*wl, id)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		out := nodeTransfer(id, summaries).apply(in[id])
		for _, succ := range cfg.Nodes[id].Succs {
			push(succ, out, &work)
		}
		if callee, ok := callTo[id]; ok {
			push(cfg.Entry[callee], in[id], &work)
		}
	}

	// Violations: use(l) nodes whose IN contains l.
	res := &IterResult{Facts: append([]string{}, labels...)}
	sort.Strings(res.Facts)
	for _, n := range cfg.Nodes {
		ev, ok := nodeEvs[n.ID]
		if !ok || ev.sym != "use" || !visited[n.ID] {
			continue
		}
		if in[n.ID].has(ev.label) {
			res.Violations = append(res.Violations, IterViolation{
				Fn: n.Fn, Line: n.Line, NodeID: n.ID, Label: labels[ev.label],
			})
		}
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		if res.Violations[i].Line != res.Violations[j].Line {
			return res.Violations[i].Line < res.Violations[j].Line
		}
		return res.Violations[i].Label < res.Violations[j].Label
	})
	return res, nil
}

// summarize computes fn's (GEN, KILL) summary given current summaries.
func summarize(cfg *minic.CFG, fn string, nf int, summaries map[string]transfer,
	nodeTransfer func(int, map[string]transfer) transfer) transfer {
	entry, exit := cfg.Entry[fn], cfg.Exit[fn]
	// pathT[n] = transfer from entry to (before) n.
	pathT := map[int]transfer{}
	pathT[entry] = identityTransfer(nf)
	work := []int{entry}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		cur := pathT[id]
		out := cur.then(nodeTransfer(id, summaries))
		for _, succ := range cfg.Nodes[id].Succs {
			t, ok := pathT[succ]
			if !ok {
				t = unreachableTransfer(nf)
			}
			if t.join(out) || !ok {
				pathT[succ] = t
				work = append(work, succ)
			}
		}
	}
	if t, ok := pathT[exit]; ok {
		return t
	}
	return unreachableTransfer(nf) // exit unreachable (non-returning fn)
}
