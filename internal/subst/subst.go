// Package subst implements the substitution environments of §6.4 of the
// paper, which give regularly annotated set constraints a limited ability
// to correlate data ("parametric annotations"). A substitution environment
//
//	[(x:fd1) ↦ f; (x:fd2) ↦ g | r]
//
// lazily tracks one copy of the property automaton per instantiation of
// the parameter x, plus a residual function r recording the non-parametric
// transitions that every future instantiation must incorporate.
// Composition is pointwise on compatible entries (§6.4.2); environments
// gracefully degrade to plain representative functions when no parameters
// are used (an empty environment [ | r] behaves exactly like r).
package subst

import (
	"fmt"
	"sort"
	"strings"

	"rasc/internal/monoid"
)

// Binding instantiates one parameter variable with a program label, e.g.
// (x : fd1).
type Binding struct {
	Param string
	Label string
}

func (b Binding) String() string { return b.Param + ":" + b.Label }

// Entry maps a set of bindings (its domain element) to a representative
// function. Bindings are kept sorted and duplicate-free.
type Entry struct {
	Bindings []Binding
	F        monoid.FuncID
}

// Env is a substitution environment: a set of entries plus a residual
// representative function. The zero value is not useful; construct
// environments through a Table.
type Env struct {
	Entries  []Entry
	Residual monoid.FuncID
}

// conflicts reports whether two binding sets assign different labels to a
// common parameter.
func conflicts(a, b []Binding) bool {
	for _, ba := range a {
		for _, bb := range b {
			if ba.Param == bb.Param && ba.Label != bb.Label {
				return true
			}
		}
	}
	return false
}

// contains reports whether set contains b.
func contains(set []Binding, b Binding) bool {
	for _, x := range set {
		if x == b {
			return true
		}
	}
	return false
}

// Compatible implements the paper's i ≼ j: all common parameter/label
// pairs agree and i has at least as many bindings as j. By convention
// every entry is compatible with the residual.
func Compatible(i, j []Binding) bool {
	return !conflicts(i, j) && len(i) >= len(j)
}

// mergeBindings returns the sorted union of two non-conflicting binding
// sets.
func mergeBindings(a, b []Binding) []Binding {
	out := append([]Binding{}, a...)
	for _, bb := range b {
		if !contains(out, bb) {
			out = append(out, bb)
		}
	}
	sortBindings(out)
	return out
}

func sortBindings(bs []Binding) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].Param != bs[j].Param {
			return bs[i].Param < bs[j].Param
		}
		return bs[i].Label < bs[j].Label
	})
}

func bindingsKey(bs []Binding) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.Param + "\x01" + b.Label
	}
	return strings.Join(parts, "\x02")
}

// Lookup returns φ(i): the function of the largest entry that i is
// compatible with, or the residual if there is none. Ties on entry size
// are broken by canonical binding order, which the paper's footnote
// argues cannot change the answer for well-formed environments.
func (e *Env) Lookup(i []Binding) monoid.FuncID {
	best := -1
	for idx, entry := range e.Entries {
		if !Compatible(i, entry.Bindings) {
			continue
		}
		if best == -1 || len(entry.Bindings) > len(e.Entries[best].Bindings) {
			best = idx
		}
	}
	if best == -1 {
		return e.Residual
	}
	return e.Entries[best].F
}

// key renders the canonical interning key of an environment.
func (e *Env) key() string {
	var b strings.Builder
	for _, en := range e.Entries {
		fmt.Fprintf(&b, "%s=%d;", bindingsKey(en.Bindings), en.F)
	}
	fmt.Fprintf(&b, "|%d", e.Residual)
	return b.String()
}

// String renders the environment in the paper's notation.
func (e *Env) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, en := range e.Entries {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString("(")
		for j, bd := range en.Bindings {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(bd.String())
		}
		fmt.Fprintf(&b, ") ↦ f%d", en.F)
	}
	fmt.Fprintf(&b, " | f%d]", e.Residual)
	return b.String()
}

// ID is an interned environment identifier within a Table.
type ID int32

// String renders an interned environment with the state each entry has
// reached, e.g. "[(x:sem1) ↦ f3@S·c=2 | f0@S·c=0]". Env.String shows only
// function IDs; the table can resolve them against its monoid, which for
// counter-expanded machines surfaces the counter valuation in provenance
// output.
func (t *Table) String(id ID) string {
	e := t.envs[id]
	var b strings.Builder
	b.WriteString("[")
	for i, en := range e.Entries {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString("(")
		for j, bd := range en.Bindings {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(bd.String())
		}
		fmt.Fprintf(&b, ") ↦ f%d@%s", en.F, t.Mon.StateName(en.F))
	}
	fmt.Fprintf(&b, " | f%d@%s]", e.Residual, t.Mon.StateName(e.Residual))
	return b.String()
}

// Table interns substitution environments over a fixed monoid and
// memoizes their composition, so that the constraint solver can use
// environment IDs as annotations exactly like plain FuncIDs.
type Table struct {
	Mon   *monoid.Monoid
	envs  []*Env
	index map[string]ID
	memo  map[[2]ID]ID
	ident ID
}

// NewTable returns an empty table over mon. ID 0 is the identity
// environment [ | f_ε].
func NewTable(mon *monoid.Monoid) *Table {
	t := &Table{
		Mon:   mon,
		index: make(map[string]ID),
		memo:  make(map[[2]ID]ID),
	}
	t.ident = t.intern(&Env{Residual: mon.Identity()})
	return t
}

func (t *Table) intern(e *Env) ID {
	// Canonicalize entry order.
	sort.Slice(e.Entries, func(i, j int) bool {
		return bindingsKey(e.Entries[i].Bindings) < bindingsKey(e.Entries[j].Bindings)
	})
	k := e.key()
	if id, ok := t.index[k]; ok {
		return id
	}
	id := ID(len(t.envs))
	t.envs = append(t.envs, e)
	t.index[k] = id
	return id
}

// Identity returns the identity environment's ID.
func (t *Table) Identity() ID { return t.ident }

// Env returns the environment for id (do not mutate).
func (t *Table) Env(id ID) *Env { return t.envs[id] }

// Size returns the number of interned environments.
func (t *Table) Size() int { return len(t.envs) }

// FromFunc interns the empty environment with residual f; non-parametric
// annotations degrade to this form.
func (t *Table) FromFunc(f monoid.FuncID) ID {
	return t.intern(&Env{Residual: f})
}

// Instantiate interns the environment for a parametric event: parameter
// param instantiated with label undergoes f while every other
// instantiation (and the residual) is unchanged, e.g.
// open(fd1) becomes [(x:fd1) ↦ f_open | f_ε].
func (t *Table) Instantiate(param, label string, f monoid.FuncID) ID {
	e := &Env{
		Entries:  []Entry{{Bindings: []Binding{{param, label}}, F: f}},
		Residual: t.Mon.Identity(),
	}
	return t.intern(e)
}

// InstantiateMulti interns an environment whose single entry binds several
// parameters at once (§6.4.2).
func (t *Table) InstantiateMulti(bindings []Binding, f monoid.FuncID) ID {
	bs := append([]Binding{}, bindings...)
	sortBindings(bs)
	e := &Env{
		Entries:  []Entry{{Bindings: bs, F: f}},
		Residual: t.Mon.Identity(),
	}
	return t.intern(e)
}

// Then composes two environments in time order: the result describes
// "first a, then b" (the paper's φ_b ∘ φ_a). Compatible entries are
// merged by expanding to the union of their parameter/label pairs; each
// merged domain element d gets Then(a(d), b(d)); the residuals compose.
func (t *Table) Then(a, b ID) ID {
	if a == t.ident {
		return b
	}
	if b == t.ident {
		return a
	}
	key := [2]ID{a, b}
	if r, ok := t.memo[key]; ok {
		return r
	}
	ea, eb := t.envs[a], t.envs[b]
	// Candidate domain: entries of both sides plus unions of
	// non-conflicting pairs.
	seen := map[string][]Binding{}
	add := func(bs []Binding) {
		k := bindingsKey(bs)
		if _, ok := seen[k]; !ok {
			seen[k] = bs
		}
	}
	for _, en := range ea.Entries {
		add(en.Bindings)
	}
	for _, en := range eb.Entries {
		add(en.Bindings)
	}
	for _, x := range ea.Entries {
		for _, y := range eb.Entries {
			if !conflicts(x.Bindings, y.Bindings) {
				add(mergeBindings(x.Bindings, y.Bindings))
			}
		}
	}
	out := &Env{Residual: t.Mon.Then(ea.Residual, eb.Residual)}
	for _, bs := range seen {
		f := t.Mon.Then(ea.Lookup(bs), eb.Lookup(bs))
		out.Entries = append(out.Entries, Entry{Bindings: bs, F: f})
	}
	id := t.intern(out)
	t.memo[key] = id
	return id
}

// Violation describes one accepting instantiation of an environment.
type Violation struct {
	Bindings []Binding // nil for the residual ("any fresh instance")
	F        monoid.FuncID
}

// AcceptingEntries returns the instantiations whose function is accepting
// (reaches an accept state from the start state): these are the property
// violations carried by the environment.
func (t *Table) AcceptingEntries(id ID) []Violation {
	e := t.envs[id]
	var out []Violation
	for _, en := range e.Entries {
		if t.Mon.Accepting(en.F) {
			out = append(out, Violation{Bindings: en.Bindings, F: en.F})
		}
	}
	if t.Mon.Accepting(e.Residual) {
		out = append(out, Violation{F: e.Residual})
	}
	return out
}

// Accepting reports whether any instantiation of id is accepting.
func (t *Table) Accepting(id ID) bool {
	return len(t.AcceptingEntries(id)) > 0
}
