package subst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/spec"
)

const fileSrc = `
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

func fileProperty(t testing.TB) *spec.Property {
	t.Helper()
	p, err := spec.Compile(fileSrc, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// §6.4.1 (Figures 6 and 7): after open(fd1); open(fd2); close(fd1), the
// composed environment maps fd1 to closed and fd2 to opened.
func TestFileStateExampleComposition(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	tab := NewTable(mon)

	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")

	phi1 := tab.Instantiate("x", "fd1", fOpen)
	phi2 := tab.Instantiate("x", "fd2", fOpen)
	phi3 := tab.Instantiate("x", "fd1", fClose)

	all := tab.Then(tab.Then(phi1, phi2), phi3)
	env := tab.Env(all)

	// f1 = "opened" transition, f2 = open-then-close (identity on Closed).
	f1 := fOpen
	f2 := mon.Then(fOpen, fClose)

	got1 := env.Lookup([]Binding{{"x", "fd1"}})
	got2 := env.Lookup([]Binding{{"x", "fd2"}})
	if got1 != f2 {
		t.Errorf("fd1 ↦ %s, want %s (opened then closed)", mon.String(got1), mon.String(f2))
	}
	if got2 != f1 {
		t.Errorf("fd2 ↦ %s, want %s (still open)", mon.String(got2), mon.String(f1))
	}
	if env.Residual != mon.Identity() {
		t.Errorf("residual = %s, want identity", mon.String(env.Residual))
	}

	// fd2 remains open at the end of the program but fd1 does not: exactly
	// the distinction the paper's analysis must draw.
	viol := tab.AcceptingEntries(all)
	if len(viol) != 1 {
		t.Fatalf("got %d accepting entries, want 1: %v", len(viol), viol)
	}
	if len(viol[0].Bindings) != 1 || viol[0].Bindings[0] != (Binding{"x", "fd2"}) {
		t.Errorf("accepting instance = %v, want (x:fd2)", viol[0].Bindings)
	}
}

func TestCompositionAssociative(t *testing.T) {
	p := fileProperty(t)
	tab := NewTable(p.Mon)
	fOpen, _ := p.Mon.SymbolFuncByName("open")
	fClose, _ := p.Mon.SymbolFuncByName("close")

	ids := []ID{
		tab.Instantiate("x", "a", fOpen),
		tab.Instantiate("x", "b", fOpen),
		tab.Instantiate("x", "a", fClose),
		tab.FromFunc(fClose),
		tab.Identity(),
	}
	for _, a := range ids {
		for _, b := range ids {
			for _, c := range ids {
				l := tab.Then(tab.Then(a, b), c)
				r := tab.Then(a, tab.Then(b, c))
				if l != r {
					t.Fatalf("associativity fails: (%s·%s)·%s", tab.Env(a), tab.Env(b), tab.Env(c))
				}
			}
		}
	}
}

func TestIdentityEnv(t *testing.T) {
	p := fileProperty(t)
	tab := NewTable(p.Mon)
	fOpen, _ := p.Mon.SymbolFuncByName("open")
	phi := tab.Instantiate("x", "fd1", fOpen)
	if tab.Then(tab.Identity(), phi) != phi || tab.Then(phi, tab.Identity()) != phi {
		t.Error("identity environment is not an identity for Then")
	}
}

// Non-parametric environments must degrade to plain function composition.
func TestDegradeToFunctions(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	tab := NewTable(mon)
	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")

	a := tab.FromFunc(fOpen)
	b := tab.FromFunc(fClose)
	ab := tab.Then(a, b)
	if tab.Env(ab).Residual != mon.Then(fOpen, fClose) {
		t.Error("residual composition does not match monoid composition")
	}
	if len(tab.Env(ab).Entries) != 0 {
		t.Error("composing empty environments should stay empty")
	}
}

// The residual must be incorporated into future instantiations: a
// non-parametric transition followed by a fresh instantiation sees the
// residual through Lookup's fall-through.
func TestResidualIncorporated(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	tab := NewTable(mon)
	fOpen, _ := mon.SymbolFuncByName("open")

	r := tab.FromFunc(fOpen) // a (hypothetical) non-parametric open
	phi := tab.Instantiate("x", "fd9", fOpen)
	comp := tab.Env(tab.Then(r, phi))
	// fd9's entry must include the earlier residual: open then open = open.
	got := comp.Lookup([]Binding{{"x", "fd9"}})
	if got != mon.Then(fOpen, fOpen) {
		t.Errorf("fd9 ↦ %s, want open·open", mon.String(got))
	}
	// And a *different* fresh instance falls through to the residual open.
	if comp.Lookup([]Binding{{"x", "other"}}) != fOpen {
		t.Error("fresh instance should see the residual")
	}
}

func TestCompatibility(t *testing.T) {
	x1 := []Binding{{"x", "i"}}
	x2 := []Binding{{"x", "k"}}
	xy := []Binding{{"x", "i"}, {"y", "j"}}
	if Compatible(x1, x2) {
		t.Error("conflicting labels must be incompatible")
	}
	if !Compatible(xy, x1) {
		t.Error("(x:i,y:j) ≼ (x:i) should hold")
	}
	if Compatible(x1, xy) {
		t.Error("i must have at least as many bindings as j")
	}
	if !Compatible(x1, nil) {
		t.Error("everything is compatible with the residual (empty entry)")
	}
}

// §6.4.2 multiple parameters: entries can bind several parameters; merging
// expands to the union.
func TestMultiParamMerge(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	tab := NewTable(mon)
	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")

	a := tab.InstantiateMulti([]Binding{{"x", "i"}, {"y", "j"}}, fOpen)
	b := tab.Instantiate("x", "i", fClose)
	env := tab.Env(tab.Then(a, b))

	// The merged entry (x:i, y:j) must see open then close.
	got := env.Lookup([]Binding{{"x", "i"}, {"y", "j"}})
	if got != mon.Then(fOpen, fClose) {
		t.Errorf("(x:i,y:j) ↦ %s, want open·close", mon.String(got))
	}
	// A query for (x:k) conflicts with both entries: residual.
	if env.Lookup([]Binding{{"x", "k"}}) != mon.Identity() {
		t.Error("(x:k) should fall through to the residual")
	}
}

func TestInterningDedup(t *testing.T) {
	p := fileProperty(t)
	tab := NewTable(p.Mon)
	fOpen, _ := p.Mon.SymbolFuncByName("open")
	a := tab.Instantiate("x", "fd1", fOpen)
	b := tab.Instantiate("x", "fd1", fOpen)
	if a != b {
		t.Error("identical environments must intern to the same ID")
	}
}

func TestEnvString(t *testing.T) {
	p := fileProperty(t)
	tab := NewTable(p.Mon)
	fOpen, _ := p.Mon.SymbolFuncByName("open")
	id := tab.Instantiate("x", "fd1", fOpen)
	s := tab.Env(id).String()
	if s == "" || s == "[]" {
		t.Errorf("bad rendering %q", s)
	}
}

// Property test: composing random sequences of parametric events tracks
// each label exactly as running that label's subsequence through the
// monoid (the "lazily constructed product automaton" semantics of §6.4).
func TestQuickPerLabelProjection(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")
	labels := []string{"fd1", "fd2", "fd3"}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable(mon)
		n := 1 + r.Intn(10)
		acc := tab.Identity()
		perLabel := map[string]monoid.FuncID{}
		for _, l := range labels {
			perLabel[l] = mon.Identity()
		}
		for i := 0; i < n; i++ {
			lab := labels[r.Intn(len(labels))]
			var f monoid.FuncID
			if r.Intn(2) == 0 {
				f = fOpen
			} else {
				f = fClose
			}
			acc = tab.Then(acc, tab.Instantiate("x", lab, f))
			perLabel[lab] = mon.Then(perLabel[lab], f)
		}
		env := tab.Env(acc)
		for _, l := range labels {
			want := perLabel[l]
			if want == mon.Identity() {
				continue // label never mentioned: falls to residual
			}
			if env.Lookup([]Binding{{"x", l}}) != want {
				return false
			}
		}
		return env.Residual == mon.Identity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: mixing non-parametric transitions applies them to every label
// and to the residual.
func TestQuickResidualAppliesToAll(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable(mon)
		acc := tab.Identity()
		want := map[string]monoid.FuncID{"a": mon.Identity(), "b": mon.Identity()}
		res := mon.Identity()
		for i := 0; i < 8; i++ {
			var f monoid.FuncID
			if r.Intn(2) == 0 {
				f = fOpen
			} else {
				f = fClose
			}
			switch r.Intn(3) {
			case 0: // parametric on a
				acc = tab.Then(acc, tab.Instantiate("x", "a", f))
				want["a"] = mon.Then(want["a"], f)
			case 1: // parametric on b
				acc = tab.Then(acc, tab.Instantiate("x", "b", f))
				want["b"] = mon.Then(want["b"], f)
			default: // non-parametric: hits everything
				acc = tab.Then(acc, tab.FromFunc(f))
				want["a"] = mon.Then(want["a"], f)
				want["b"] = mon.Then(want["b"], f)
				res = mon.Then(res, f)
			}
		}
		env := tab.Env(acc)
		for l, w := range want {
			got := env.Lookup([]Binding{{"x", l}})
			if got != w {
				return false
			}
		}
		return env.Residual == res
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Sanity on a different automaton: the 1-bit gen/kill machine used
// parametrically behaves per label.
func TestParametricGenKill(t *testing.T) {
	alpha := dfa.NewAlphabet("g", "k")
	d := dfa.NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	mon, err := monoid.Build(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(mon)
	fg, _ := mon.SymbolFuncByName("g")
	fk, _ := mon.SymbolFuncByName("k")

	// gen(v1); kill(v2): v1 is live, v2 dead, residual identity.
	acc := tab.Then(tab.Instantiate("v", "v1", fg), tab.Instantiate("v", "v2", fk))
	env := tab.Env(acc)
	if env.Lookup([]Binding{{"v", "v1"}}) != fg {
		t.Error("v1 should be generated")
	}
	if env.Lookup([]Binding{{"v", "v2"}}) != fk {
		t.Error("v2 should be killed")
	}
}

// Associativity with multiple parameters and entry merging (§6.4.2),
// randomized: any bracketing of a random event sequence composes to the
// same environment.
func TestQuickMultiParamAssociativity(t *testing.T) {
	p := fileProperty(t)
	mon := p.Mon
	fOpen, _ := mon.SymbolFuncByName("open")
	fClose, _ := mon.SymbolFuncByName("close")

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable(mon)
		mk := func() ID {
			f := fOpen
			if r.Intn(2) == 0 {
				f = fClose
			}
			switch r.Intn(4) {
			case 0:
				return tab.Instantiate("x", string(rune('a'+r.Intn(3))), f)
			case 1:
				return tab.InstantiateMulti([]Binding{
					{"x", string(rune('a' + r.Intn(3)))},
					{"y", string(rune('p' + r.Intn(2)))},
				}, f)
			case 2:
				return tab.FromFunc(f)
			default:
				return tab.Identity()
			}
		}
		n := 3 + r.Intn(4)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = mk()
		}
		// Left fold vs right fold.
		left := ids[0]
		for _, id := range ids[1:] {
			left = tab.Then(left, id)
		}
		right := ids[n-1]
		for i := n - 2; i >= 0; i-- {
			right = tab.Then(ids[i], right)
		}
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
