package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
)

// Client talks to a gocheckd daemon. The zero value is not usable; use
// NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for a daemon address. addr may be a bare
// host:port or a full http:// URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		http: &http.Client{Timeout: 5 * time.Minute},
	}
}

// decode reads one JSON response, mapping non-2xx statuses to the
// server's error body.
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("server: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s", er.Error)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("server: undecodable response: %w", err)
	}
	return nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return decode(resp, out)
}

func (c *Client) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server: encoding request: %w", err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return decode(resp, out)
}

// Health probes GET /v1/health.
func (c *Client) Health() (HealthResponse, error) {
	var h HealthResponse
	err := c.get("/v1/health", &h)
	return h, err
}

// Manifest fetches the server's file-hash manifest for a program.
func (c *Client) Manifest(program string) (ManifestResponse, error) {
	var m ManifestResponse
	err := c.get("/v1/manifest?program="+url.QueryEscape(program), &m)
	return m, err
}

// Check posts one check request and returns the server's report.
func (c *Client) Check(req CheckRequest) (*analysis.Report, error) {
	var resp CheckResponse
	if err := c.post("/v1/check", req, &resp); err != nil {
		return nil, err
	}
	if resp.Report == nil {
		return nil, fmt.Errorf("server: response carried no report")
	}
	return resp.Report, nil
}

// CheckFiles diffs the local file set against the server's manifest and
// posts the minimal delta: the resident-engine fast path for editor and
// CI clients.
func (c *Client) CheckFiles(program string, files []gosrc.File, req CheckRequest) (*analysis.Report, error) {
	m, err := c.Manifest(program)
	if err != nil {
		return nil, err
	}
	req.Program = program
	req.Upserts, req.Removes = Delta(files, m.Files)
	return c.Check(req)
}

// Metrics fetches GET /v1/metrics.
func (c *Client) Metrics() (MetricsResponse, error) {
	var m MetricsResponse
	err := c.get("/v1/metrics", &m)
	return m, err
}

// Shutdown requests a graceful daemon stop.
func (c *Client) Shutdown() error {
	return c.post("/v1/shutdown", struct{}{}, nil)
}
