package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
)

// ClientOptions tunes a Client. Zero fields take defaults.
type ClientOptions struct {
	// Timeout bounds each HTTP request end to end (default 5 minutes —
	// a cold first check of a large program is a real analysis run).
	Timeout time.Duration
	// Retries is how many extra attempts a connection-refused failure
	// gets (default 1), so a daemon mid-restart doesn't fail clients
	// hard. Only connection-refused retries: the request never reached
	// a server, so resending cannot double-apply anything.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default 200ms).
	Backoff time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	return o
}

// Client talks to a gocheckd daemon. The zero value is not usable; use
// NewClient or NewClientWith.
type Client struct {
	base    string
	http    *http.Client
	retries int
	backoff time.Duration
}

// NewClient builds a client with default options. addr may be a bare
// host:port or a full http:// URL.
func NewClient(addr string) *Client {
	return NewClientWith(addr, ClientOptions{})
}

// NewClientWith builds a client with explicit options.
func NewClientWith(addr string, opts ClientOptions) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	opts = opts.withDefaults()
	return &Client{
		base:    strings.TrimRight(addr, "/"),
		http:    &http.Client{Timeout: opts.Timeout},
		retries: opts.Retries,
		backoff: opts.Backoff,
	}
}

// connRefused detects a connection-refused transport failure through
// any wrapping (url.Error -> net.OpError -> os.SyscallError).
func connRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// decode reads one JSON response, mapping non-2xx statuses to the
// server's error body, tagged with the response's trace ID so a failed
// request can be found in the daemon's logs and flight recorder.
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("server: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		trace := ""
		if id := resp.Header.Get(TraceHeader); id != "" {
			trace = " (trace " + id + ")"
		}
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s%s", er.Error, trace)
		}
		return fmt.Errorf("server: HTTP %d: %s%s", resp.StatusCode, strings.TrimSpace(string(body)), trace)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("server: undecodable response: %w", err)
	}
	return nil
}

// do issues one request, retrying connection-refused failures with
// exponential backoff. The body is kept as bytes so every attempt sends
// a fresh reader.
func (c *Client) do(method, path string, body []byte, out any) error {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if attempt < c.retries && connRefused(err) {
				time.Sleep(backoff)
				backoff *= 2
				continue
			}
			return fmt.Errorf("server: %w", err)
		}
		return decode(resp, out)
	}
}

func (c *Client) get(path string, out any) error {
	return c.do(http.MethodGet, path, nil, out)
}

func (c *Client) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server: encoding request: %w", err)
	}
	return c.do(http.MethodPost, path, raw, out)
}

// Health probes GET /v1/health.
func (c *Client) Health() (HealthResponse, error) {
	var h HealthResponse
	err := c.get("/v1/health", &h)
	return h, err
}

// Manifest fetches the server's file-hash manifest for a program.
func (c *Client) Manifest(program string) (ManifestResponse, error) {
	var m ManifestResponse
	err := c.get("/v1/manifest?program="+url.QueryEscape(program), &m)
	return m, err
}

// Check posts one check request and returns the server's report, with
// the envelope's telemetry (trace ID, inline trace) attached to the
// report's unrendered telemetry fields.
func (c *Client) Check(req CheckRequest) (*analysis.Report, error) {
	return c.check("/v1/check", req)
}

// CheckTraced is Check with ?trace=1: the report comes back with its
// Chrome trace on Report.TraceJSON.
func (c *Client) CheckTraced(req CheckRequest) (*analysis.Report, error) {
	return c.check("/v1/check?trace=1", req)
}

func (c *Client) check(path string, req CheckRequest) (*analysis.Report, error) {
	var resp CheckResponse
	if err := c.post(path, req, &resp); err != nil {
		return nil, err
	}
	if resp.Report == nil {
		return nil, fmt.Errorf("server: response carried no report")
	}
	// json:"-" telemetry fields don't survive the wire inside the
	// report; rehydrate them from the envelope.
	resp.Report.TraceID = resp.TraceID
	resp.Report.TraceJSON = []byte(resp.Trace)
	return resp.Report, nil
}

// CheckFiles diffs the local file set against the server's manifest and
// posts the minimal delta: the resident-engine fast path for editor and
// CI clients.
func (c *Client) CheckFiles(program string, files []gosrc.File, req CheckRequest) (*analysis.Report, error) {
	m, err := c.Manifest(program)
	if err != nil {
		return nil, err
	}
	req.Program = program
	req.Upserts, req.Removes = Delta(files, m.Files)
	return c.Check(req)
}

// Metrics fetches GET /v1/metrics.
func (c *Client) Metrics() (MetricsResponse, error) {
	var m MetricsResponse
	err := c.get("/v1/metrics", &m)
	return m, err
}

// Shutdown requests a graceful daemon stop.
func (c *Client) Shutdown() error {
	return c.post("/v1/shutdown", struct{}{}, nil)
}
