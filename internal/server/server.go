// Package server is the HTTP/JSON serving layer over the resident
// analysis engine (analysis.Engine): the request/response protocol
// types, the daemon-side handler, and the client used by gocheck's
// -server mode. The protocol is deliberately plain — stdlib net/http,
// JSON bodies, no streaming — because the expensive state lives in the
// engine, not the transport: a warm re-check request carries one edited
// file and returns a full Report.
//
// Endpoints (all under /v1/):
//
//	POST /v1/check         body CheckRequest -> CheckResponse (?trace=1
//	                       returns the request's Chrome trace inline)
//	GET  /v1/manifest      ?program=NAME     -> ManifestResponse (name -> sha256)
//	GET  /v1/list          registered checkers, text/plain
//	GET  /v1/metrics       -> MetricsResponse (?format=prometheus for
//	                       text exposition v0.0.4)
//	GET  /v1/health        -> HealthResponse (SLO-aware: ok/degraded)
//	GET  /v1/debug/flight  flight-recorder traces, Chrome trace JSON
//	                       (?trace=ID for one request, ?list=1 for metadata)
//	GET  /v1/debug/vars    plain-text telemetry summary
//	POST /v1/shutdown      graceful stop (when the daemon enables it)
//
// Every response carries the request's trace ID in X-Rasc-Trace-Id.
//
// Determinism contract: the report returned for a CheckRequest is
// byte-identical (after JSON round-trip) to a one-shot analysis.Analyze
// over the same sources with the same options; the Cache block is
// stripped server-side exactly like the one-shot CLI strips it before
// rendering, so client-side renders match one-shot renders byte for
// byte. Telemetry (flight recorder, request tracing, access logs)
// rides entirely on json:"-" report fields and response envelope
// fields, so the contract holds with telemetry on or off.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
	"rasc/internal/obs"
)

// FilePayload is one source file on the wire.
type FilePayload struct {
	Name string `json:"name"`
	Src  string `json:"src"`
}

// CheckRequest is the body of POST /v1/check.
type CheckRequest struct {
	// Program names the resident program ("" = "default").
	Program string `json:"program,omitempty"`
	// Upserts adds or replaces files; Removes drops them (applied
	// first); Reset replaces the file set with exactly Upserts.
	Upserts []FilePayload `json:"upserts,omitempty"`
	Removes []string      `json:"removes,omitempty"`
	Reset   bool          `json:"reset,omitempty"`
	// Checkers and Entries select what to run (nil = all / roots).
	Checkers []string `json:"checkers,omitempty"`
	Entries  []string `json:"entries,omitempty"`
	// KeepSuppressed and Explain mirror the one-shot flags.
	KeepSuppressed bool `json:"keep_suppressed,omitempty"`
	Explain        bool `json:"explain,omitempty"`
}

// CheckResponse is the body of a successful POST /v1/check. TraceID
// and Trace are envelope-level telemetry: the report itself renders
// identically with or without them.
type CheckResponse struct {
	Report  *analysis.Report `json:"report"`
	TraceID string           `json:"trace_id,omitempty"`
	// Trace is the request's Chrome trace, present when the request
	// asked for it with ?trace=1.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ManifestResponse maps a resident program's file names to the SHA-256
// of their content, so clients push only changed files.
type ManifestResponse struct {
	Program string            `json:"program"`
	Files   map[string]string `json:"files"`
}

// MetricsResponse is the body of GET /v1/metrics.
type MetricsResponse struct {
	Engine   analysis.EngineStats   `json:"engine"`
	Programs []analysis.ProgramInfo `json:"programs"`
	// P50MS / P99MS are bucket-granular estimates over the engine's
	// request-latency histogram since process start.
	P50MS   int64               `json:"p50_ms"`
	P99MS   int64               `json:"p99_ms"`
	Metrics obs.MetricsSnapshot `json:"metrics"`
}

// HealthResponse is the body of GET /v1/health. The endpoint always
// answers HTTP 200; Status is "ok" or "degraded" (with Reasons) judged
// from the sliding windows against the configured SLO thresholds, and
// OK is simply Status == "ok".
type HealthResponse struct {
	OK        bool                       `json:"ok"`
	Status    string                     `json:"status"`
	Reasons   []string                   `json:"reasons,omitempty"`
	Version   string                     `json:"version"`
	GoVersion string                     `json:"go_version"`
	UptimeMS  int64                      `json:"uptime_ms"`
	Windows   map[string]obs.WindowStats `json:"windows"`
}

// errorResponse is every endpoint's failure body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves the /v1/ API over one resident engine.
type Handler struct {
	engine   *Engine
	registry *obs.Registry
	flight   *obs.Flight
	log      *obs.Logger
	serverM  *obs.ServerMetrics
	slo      SLOConfig
	windows  *obs.Window
	start    time.Time
	// onShutdown, when non-nil, enables POST /v1/shutdown and is called
	// (once, asynchronously) to stop the daemon.
	onShutdown   func()
	shutdownOnce sync.Once

	// manifest bookkeeping: the handler tracks each program's pushed
	// file hashes so GET /v1/manifest answers without touching engine
	// internals. Guarded by mu.
	mu        sync.Mutex
	manifests map[string]map[string]string
}

// Engine is the handler's view of the resident engine.
type Engine = analysis.Engine

// HandlerConfig wires one Handler. Engine is required; everything else
// is optional telemetry.
type HandlerConfig struct {
	// Engine is the resident engine requests run against.
	Engine *Engine
	// Registry must be the registry the engine was configured with (it
	// backs /v1/metrics); nil disables the registry-backed metrics.
	Registry *obs.Registry
	// Flight, when non-nil, backs /v1/debug/flight. It should be the
	// same recorder the engine was configured with, so engine-recorded
	// requests are what the endpoint serves.
	Flight *obs.Flight
	// Log, when non-nil, receives one structured access-log line per
	// request.
	Log *obs.Logger
	// OnShutdown, when non-nil, enables POST /v1/shutdown and is called
	// (once, asynchronously) to stop the daemon.
	OnShutdown func()
	// SLO sets the /v1/health degradation thresholds (zero = defaults).
	SLO SLOConfig
}

// NewHandler builds the API handler.
func NewHandler(cfg HandlerConfig) *Handler {
	return &Handler{
		engine:     cfg.Engine,
		registry:   cfg.Registry,
		flight:     cfg.Flight,
		log:        cfg.Log,
		serverM:    obs.NewServerMetrics(cfg.Registry),
		slo:        cfg.SLO.withDefaults(),
		windows:    obs.NewWindow(nil),
		start:      time.Now(),
		onShutdown: cfg.OnShutdown,
		manifests:  map[string]map[string]string{},
	}
}

// Mux returns the daemon's route multiplexer, without the telemetry
// middleware. Most callers want Root.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", h.handleCheck)
	mux.HandleFunc("/v1/manifest", h.handleManifest)
	mux.HandleFunc("/v1/list", h.handleList)
	mux.HandleFunc("/v1/metrics", h.handleMetrics)
	mux.HandleFunc("/v1/health", h.handleHealth)
	mux.HandleFunc("/v1/debug/flight", h.handleFlight)
	mux.HandleFunc("/v1/debug/vars", h.handleVars)
	mux.HandleFunc("/v1/shutdown", h.handleShutdown)
	return mux
}

// Root returns the daemon's full request handler: the route mux wrapped
// in the telemetry middleware (trace IDs, access logs, SLO windows).
func (h *Handler) Root() http.Handler {
	return h.telemetry(h.Mux())
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (h *Handler) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	upserts := make([]gosrc.File, len(req.Upserts))
	for i, f := range req.Upserts {
		upserts[i] = gosrc.File{Name: f.Name, Src: f.Src}
	}
	info := infoFrom(r)
	areq := analysis.CheckRequest{
		Program:        req.Program,
		Upserts:        upserts,
		Removes:        req.Removes,
		Reset:          req.Reset,
		Checkers:       req.Checkers,
		Entries:        req.Entries,
		KeepSuppressed: req.KeepSuppressed,
		Explain:        req.Explain,
		WantTrace:      r.URL.Query().Get("trace") == "1",
	}
	if info != nil {
		info.check = true
		// The handler-minted trace ID identifies the request in the
		// engine's flight recorder, the access log and the response
		// header alike.
		areq.TraceID = info.traceID
	}
	rep, err := h.engine.Check(areq)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if info != nil {
		info.program = programLabel(req.Program)
		info.memoHits, info.memoMisses = rep.MemoHits, rep.MemoMisses
	}
	h.updateManifest(req)
	// Strip cache telemetry exactly like the one-shot CLI does before
	// rendering: the client's render must be byte-identical to a
	// one-shot run's.
	rep.Cache = nil
	writeJSON(w, http.StatusOK, CheckResponse{
		Report:  rep,
		TraceID: rep.TraceID,
		Trace:   json.RawMessage(rep.TraceJSON),
	})
}

func programLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// updateManifest folds a successfully applied delta into the tracked
// file-hash manifest for the program.
func (h *Handler) updateManifest(req CheckRequest) {
	h.mu.Lock()
	defer h.mu.Unlock()
	name := req.Program
	if name == "" {
		name = "default"
	}
	m := h.manifests[name]
	if m == nil || req.Reset {
		m = map[string]string{}
		h.manifests[name] = m
	}
	if req.Reset {
		for k := range m {
			delete(m, k)
		}
	}
	for _, rm := range req.Removes {
		delete(m, rm)
	}
	for _, f := range req.Upserts {
		sum := sha256.Sum256([]byte(f.Src))
		m[f.Name] = hex.EncodeToString(sum[:])
	}
}

func (h *Handler) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	name := r.URL.Query().Get("program")
	if name == "" {
		name = "default"
	}
	h.mu.Lock()
	files := map[string]string{}
	for k, v := range h.manifests[name] {
		files[k] = v
	}
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, ManifestResponse{Program: name, Files: files})
}

func (h *Handler) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	analysis.ListText(w)
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		obs.WritePrometheus(w, h.registry.Snapshot())
		return
	}
	resp := MetricsResponse{
		Engine:   h.engine.Stats(),
		Programs: h.engine.Programs(),
		Metrics:  h.registry.Snapshot(),
	}
	if h.serverM != nil {
		resp.P50MS = h.serverM.RequestMs.Quantile(0.50)
		resp.P99MS = h.serverM.RequestMs.Quantile(0.99)
	}
	if resp.Programs == nil {
		resp.Programs = []analysis.ProgramInfo{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.health(time.Now()))
}

func (h *Handler) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if h.onShutdown == nil {
		writeError(w, http.StatusForbidden, "shutdown endpoint disabled")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stopping": true})
	h.shutdownOnce.Do(func() { go h.onShutdown() })
}

// HashFiles computes the manifest view (name -> hex SHA-256) of a local
// file set; clients diff it against GET /v1/manifest to build a minimal
// delta.
func HashFiles(files []gosrc.File) map[string]string {
	out := make(map[string]string, len(files))
	for _, f := range files {
		sum := sha256.Sum256([]byte(f.Src))
		out[f.Name] = hex.EncodeToString(sum[:])
	}
	return out
}

// Delta computes the minimal CheckRequest file fields that bring a
// server manifest to the local file set: changed/new files as upserts,
// names the server has but the client does not as removes.
func Delta(local []gosrc.File, remote map[string]string) (upserts []FilePayload, removes []string) {
	localHash := HashFiles(local)
	for _, f := range local {
		if remote[f.Name] != localHash[f.Name] {
			upserts = append(upserts, FilePayload{Name: f.Name, Src: f.Src})
		}
	}
	for name := range remote {
		if _, ok := localHash[name]; !ok {
			removes = append(removes, name)
		}
	}
	sort.Strings(removes)
	return upserts, removes
}
