package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"rasc/internal/obs"
)

// Version is the build/protocol version reported by /v1/health and the
// daemon's startup log.
const Version = "0.10.0"

// TraceHeader carries the request's trace ID on every response.
const TraceHeader = "X-Rasc-Trace-Id"

// SLOConfig sets the degradation thresholds /v1/health judges the
// sliding windows against. Zero fields take defaults.
type SLOConfig struct {
	// P99MS degrades health when a window's p99 latency exceeds it
	// (default 2000).
	P99MS int64
	// ErrorRate degrades health when a window's error fraction exceeds
	// it (default 0.05).
	ErrorRate float64
	// MinRequests is the minimum window traffic before either threshold
	// applies — a single failed request on an idle daemon is not an SLO
	// breach (default 5).
	MinRequests int64
}

func (s SLOConfig) withDefaults() SLOConfig {
	if s.P99MS <= 0 {
		s.P99MS = 2000
	}
	if s.ErrorRate <= 0 {
		s.ErrorRate = 0.05
	}
	if s.MinRequests <= 0 {
		s.MinRequests = 5
	}
	return s
}

// requestInfo is the per-request record the telemetry middleware and
// the route handlers share: the middleware mints the trace ID and
// writes the access log; handleCheck fills in what only it knows.
type requestInfo struct {
	traceID    string
	program    string
	check      bool // a /v1/check request: feeds the SLO windows
	memoHits   int64
	memoMisses int64
}

type ctxKey struct{}

func infoFrom(r *http.Request) *requestInfo {
	info, _ := r.Context().Value(ctxKey{}).(*requestInfo)
	return info
}

// statusWriter captures the response status for logging and window
// accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// telemetry wraps the route mux with the per-request plumbing: a trace
// ID minted up front and returned on every response, a JSON access log
// line per request, and SLO-window accounting for check traffic.
func (h *Handler) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		info := &requestInfo{traceID: obs.NewTraceID()}
		w.Header().Set(TraceHeader, info.traceID)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxKey{}, info)))
		dur := time.Since(t0)
		status := sw.status()
		if info.check {
			// Only check requests feed the SLO windows: health pings and
			// metric scrapes would dilute the latency quantiles the
			// thresholds are judged against.
			h.windows.Observe(time.Now(), dur.Milliseconds(), status >= 400)
		}
		if h.log.Enabled(obs.LevelInfo) {
			kv := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"dur_ms", float64(dur.Microseconds()) / 1000,
			}
			if info.program != "" {
				kv = append(kv,
					"program", info.program,
					"memo_hits", info.memoHits,
					"memo_misses", info.memoMisses,
				)
			}
			kv = append(kv, "trace_id", info.traceID)
			h.log.Info("request", kv...)
		}
	})
}

// health judges the sliding windows against the SLO thresholds. The
// response is always HTTP 200; degradation is in the body (status
// "degraded" plus reasons), so load balancers polling for liveness and
// dashboards polling for quality read the same endpoint.
func (h *Handler) health(now time.Time) HealthResponse {
	resp := HealthResponse{
		Status:    "ok",
		Version:   Version,
		GoVersion: runtime.Version(),
		UptimeMS:  time.Since(h.start).Milliseconds(),
		Windows:   map[string]obs.WindowStats{},
	}
	for _, win := range []struct {
		name string
		span time.Duration
	}{{"1m", time.Minute}, {"5m", 5 * time.Minute}} {
		st := h.windows.Stats(now, win.span)
		resp.Windows[win.name] = st
		if st.Requests < h.slo.MinRequests {
			continue
		}
		if st.ErrorRate > h.slo.ErrorRate {
			resp.Reasons = append(resp.Reasons, fmt.Sprintf(
				"%s error rate %.1f%% exceeds %.1f%%", win.name, st.ErrorRate*100, h.slo.ErrorRate*100))
		}
		if st.P99MS > h.slo.P99MS {
			resp.Reasons = append(resp.Reasons, fmt.Sprintf(
				"%s p99 %dms exceeds %dms", win.name, st.P99MS, h.slo.P99MS))
		}
	}
	if len(resp.Reasons) > 0 {
		resp.Status = "degraded"
	}
	resp.OK = resp.Status == "ok"
	return resp
}

// handleFlight serves GET /v1/debug/flight: the retained flight-recorder
// traces as Chrome trace-event JSON (?trace=ID narrows to one request;
// ?list=1 returns the retained entries' metadata instead).
func (h *Handler) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if h.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	if r.URL.Query().Get("list") == "1" {
		entries := h.flight.Entries()
		if entries == nil {
			entries = []obs.FlightEntry{}
		}
		writeJSON(w, http.StatusOK, entries)
		return
	}
	// Buffered so a missing trace can still answer with a clean 404.
	var buf bytes.Buffer
	if err := h.flight.WriteChrome(&buf, r.URL.Query().Get("trace")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// handleVars serves GET /v1/debug/vars: a plain-text one-glance summary
// for humans on a terminal (curl, watch) — the machine-readable forms
// are /v1/metrics and /v1/health.
func (h *Handler) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	fmt.Fprintf(w, "gocheckd %s (%s)\n", Version, runtime.Version())
	fmt.Fprintf(w, "uptime: %s\n", time.Since(h.start).Round(time.Second))
	st := h.engine.Stats()
	fmt.Fprintf(w, "engine: requests=%d errors=%d resident=%d evictions=%d memo=%d/%d cache=%d/%d\n",
		st.Requests, st.Errors, st.ResidentPrograms, st.Evictions,
		st.MemoHits, st.MemoHits+st.MemoMisses, st.CacheHits, st.CacheHits+st.CacheMisses)
	for _, win := range []struct {
		name string
		span time.Duration
	}{{"1m", time.Minute}, {"5m", 5 * time.Minute}} {
		ws := h.windows.Stats(now, win.span)
		fmt.Fprintf(w, "window %s: requests=%d rate=%.2f/s errors=%.1f%% p50=%dms p99=%dms\n",
			win.name, ws.Requests, ws.RatePerSec, ws.ErrorRate*100, ws.P50MS, ws.P99MS)
	}
	if h.flight != nil {
		fs := h.flight.Stats()
		fmt.Fprintf(w, "flight: recorded=%d retained=%d slowest=%d slowest_us=%d\n",
			fs.Recorded, fs.Retained, fs.Slowest, fs.SlowestUS)
	}
	if sum := h.registry.Summary(); sum != "" {
		fmt.Fprintf(w, "counters: %s\n", sum)
	}
}
