package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
	"rasc/internal/obs"
)

const srvASrc = `package p

import "sync"

var mu sync.Mutex

func Top() { mid() }

func mid() { leaf() }

func leaf() {
	mu.Lock()
	mu.Lock() // BUG
}
`

const srvBSrc = `package p

import "sync"

var mu2 sync.Mutex

func Other() { ok() }

func ok() {
	mu2.Lock()
	mu2.Unlock()
}
`

// newTestServer stands a full daemon stack up: engine, handler with
// telemetry middleware, httptest server, client.
func newTestServer(t *testing.T, onShutdown func()) (*Client, *analysis.Engine, *httptest.Server) {
	t.Helper()
	registry := obs.NewRegistry()
	engine := analysis.NewEngine(analysis.EngineConfig{Metrics: registry})
	h := NewHandler(HandlerConfig{Engine: engine, Registry: registry, OnShutdown: onShutdown})
	ts := httptest.NewServer(h.Root())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), engine, ts
}

// newTelemetryServer is newTestServer with the full telemetry stack on:
// flight recorder (persisting to a temp dir past slowUS) and a JSON
// access log captured in the returned buffer.
func newTelemetryServer(t *testing.T, slowUS int64, dir string, logBuf *bytes.Buffer, slo SLOConfig) (*Client, *httptest.Server) {
	t.Helper()
	registry := obs.NewRegistry()
	flight := obs.NewFlight(obs.FlightConfig{SlowUS: slowUS, Dir: dir, Metrics: registry})
	engine := analysis.NewEngine(analysis.EngineConfig{Metrics: registry, Flight: flight})
	var log *obs.Logger
	if logBuf != nil {
		log = obs.NewLogger(logBuf, obs.LevelInfo)
	}
	h := NewHandler(HandlerConfig{
		Engine:   engine,
		Registry: registry,
		Flight:   flight,
		Log:      log,
		SLO:      slo,
	})
	ts := httptest.NewServer(h.Root())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ts
}

// oneShot is the reference: a fresh in-process Analyze over the same
// sources, cache block stripped like the CLI strips it.
func oneShot(t *testing.T, files []gosrc.File, explain bool) *analysis.Report {
	t.Helper()
	pkg, err := analysis.LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Analyze(pkg, analysis.Config{Explain: explain})
	if err != nil {
		t.Fatal(err)
	}
	rep.Cache = nil
	return rep
}

func sarifOf(t *testing.T, rep *analysis.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func jsonOf(t *testing.T, rep *analysis.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServerRoundTripMatchesOneShot drives the full client flow —
// manifest diff, minimal delta, check — through HTTP and asserts the
// rendered report is byte-identical to a fresh one-shot run, across an
// edit.
func TestServerRoundTripMatchesOneShot(t *testing.T) {
	client, _, _ := newTestServer(t, nil)

	files := []gosrc.File{{Name: "a.go", Src: srvASrc}, {Name: "b.go", Src: srvBSrc}}
	rep, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot(t, files, false)
	if got, exp := sarifOf(t, rep), sarifOf(t, want); got != exp {
		t.Fatalf("server SARIF differs from one-shot:\nserver:\n%s\none-shot:\n%s", got, exp)
	}
	if got, exp := jsonOf(t, rep), jsonOf(t, want); got != exp {
		t.Fatalf("server JSON differs from one-shot")
	}

	// The manifest now covers both files; an identical re-check pushes
	// nothing.
	m, err := client.Manifest("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 2 {
		t.Fatalf("manifest = %v, want 2 files", m.Files)
	}
	if up, rm := Delta(files, m.Files); len(up) != 0 || len(rm) != 0 {
		t.Fatalf("unchanged set diffs to %d upserts / %d removes", len(up), len(rm))
	}

	// Edit one file: the delta is exactly that file, and the warm
	// re-check matches a fresh one-shot over the edited set.
	files[0].Src = strings.Replace(srvASrc, "mu.Lock() // BUG", "mu.Unlock()", 1)
	if up, _ := Delta(files, m.Files); len(up) != 1 || up[0].Name != "a.go" {
		t.Fatalf("edit delta = %+v, want just a.go", up)
	}
	rep, err = client.CheckFiles("default", files, CheckRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	want = oneShot(t, files, true)
	if got, exp := sarifOf(t, rep), sarifOf(t, want); got != exp {
		t.Fatalf("post-edit server SARIF differs from one-shot:\nserver:\n%s\none-shot:\n%s", got, exp)
	}

	// Dropping a file flows through as a remove.
	files = files[:1]
	m, err = client.Manifest("default")
	if err != nil {
		t.Fatal(err)
	}
	if _, rm := Delta(files, m.Files); len(rm) != 1 || rm[0] != "b.go" {
		t.Fatalf("remove delta = %v, want [b.go]", rm)
	}
	rep, err = client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := jsonOf(t, rep), jsonOf(t, oneShot(t, files, false)); got != exp {
		t.Fatalf("post-remove server JSON differs from one-shot")
	}
}

// TestServerConcurrentClients hits one daemon with goroutines mixing
// check, explain, metrics, health and list traffic. A -race exercise
// for the handler + engine stack; also asserts response stability and
// the request accounting.
func TestServerConcurrentClients(t *testing.T) {
	client, engine, ts := newTestServer(t, nil)

	files := []gosrc.File{{Name: "a.go", Src: srvASrc}, {Name: "b.go", Src: srvBSrc}}
	seed, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := jsonOf(t, seed)

	const workers = 12
	const iters = 3
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					rep, err := c.Check(CheckRequest{})
					if err != nil {
						errc <- err
						continue
					}
					if got := jsonOf(t, rep); got != wantJSON {
						t.Errorf("worker %d: report diverged", w)
					}
				case 1:
					if _, err := c.Check(CheckRequest{Explain: true}); err != nil {
						errc <- err
					}
				case 2:
					if _, err := c.CheckFiles("alt", files, CheckRequest{}); err != nil {
						errc <- err
					}
				case 3:
					if _, err := c.Metrics(); err != nil {
						errc <- err
					}
					if _, err := c.Health(); err != nil {
						errc <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := engine.Stats()
	if st.Errors != 0 {
		t.Fatalf("engine errors = %d", st.Errors)
	}
	// 1 seed + every check-issuing worker's iterations.
	checkWorkers := 0
	for w := 0; w < workers; w++ {
		if w%4 != 3 {
			checkWorkers++
		}
	}
	if want := int64(1 + checkWorkers*iters); st.Requests != want {
		t.Fatalf("requests = %d, want %d", st.Requests, want)
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine.Requests != st.Requests {
		t.Fatalf("metrics engine stats = %+v, engine says %+v", m.Engine, st)
	}
	if len(m.Programs) != 2 {
		t.Fatalf("programs = %+v, want default and alt", m.Programs)
	}
	if m.P99MS < m.P50MS {
		t.Fatalf("p99 %d < p50 %d", m.P99MS, m.P50MS)
	}
}

// TestServerErrorPaths: bad methods, bad bodies, engine errors and the
// disabled shutdown endpoint all surface as JSON errors with the right
// status.
func TestServerErrorPaths(t *testing.T) {
	client, _, ts := newTestServer(t, nil)

	// Engine error: a file set that fails to parse.
	_, err := client.Check(CheckRequest{
		Upserts: []FilePayload{{Name: "x.go", Src: "package p\nfunc broken( {"}},
	})
	if err == nil || !strings.Contains(err.Error(), "server:") {
		t.Fatalf("parse error not surfaced: %v", err)
	}

	// Empty program.
	if _, err := client.Check(CheckRequest{Program: "empty"}); err == nil {
		t.Fatal("check of a fileless program succeeded")
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/check = %d", resp.StatusCode)
	}

	// Undecodable body.
	resp, err = http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d", resp.StatusCode)
	}

	// Shutdown disabled (nil onShutdown).
	if err := client.Shutdown(); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("disabled shutdown: %v", err)
	}
}

// TestServerShutdownOnce: the shutdown endpoint fires its callback
// exactly once, however many clients ask.
func TestServerShutdownOnce(t *testing.T) {
	fired := make(chan struct{}, 2)
	client, _, _ := newTestServer(t, func() { fired <- struct{}{} })
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	<-fired
	select {
	case <-fired:
		t.Fatal("shutdown callback fired twice")
	default:
	}
}

// TestServerListEndpoint: /v1/list serves the same text as gocheck
// -list.
func TestServerListEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := analysis.ListText(&want); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want.String() {
		t.Fatalf("/v1/list differs from ListText:\n%s\nvs\n%s", buf.String(), want.String())
	}
	if !strings.Contains(buf.String(), "doublelock") {
		t.Fatal("list output lacks doublelock")
	}
}

// TestServerMetricsSchema pins the wire shape obslint and dashboards
// read: engine stats keys, the latency quantiles, and the server.*
// registry metrics.
func TestServerMetricsSchema(t *testing.T) {
	client, _, ts := newTestServer(t, nil)
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	if _, err := client.CheckFiles("default", files, CheckRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine", "programs", "p50_ms", "p99_ms", "metrics"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics response lacks %q", key)
		}
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(m["metrics"], &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["server.requests"]; !ok {
		t.Error("registry snapshot lacks server.requests counter")
	}
	if _, ok := snap.Histograms["server.request_ms"]; !ok {
		t.Error("registry snapshot lacks server.request_ms histogram")
	}
}

// TestServerTelemetryByteIdentity: with the flight recorder and
// request tracing on, rendered findings are byte-identical to a plain
// server and to a one-shot run, every response carries a trace ID, and
// ?trace=1 returns a valid inline Chrome trace.
func TestServerTelemetryByteIdentity(t *testing.T) {
	var logBuf bytes.Buffer
	client, ts := newTelemetryServer(t, 0, "", &logBuf, SLOConfig{})
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}, {Name: "b.go", Src: srvBSrc}}

	rep, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot(t, files, false)
	if got, exp := sarifOf(t, rep), sarifOf(t, want); got != exp {
		t.Fatalf("telemetry-on SARIF differs from one-shot:\n%s\nvs\n%s", got, exp)
	}
	if got, exp := jsonOf(t, rep), jsonOf(t, want); got != exp {
		t.Fatal("telemetry-on JSON differs from one-shot")
	}
	if len(rep.TraceID) != 16 {
		t.Fatalf("report trace id = %q", rep.TraceID)
	}

	// The response header carries the same trace ID the report does.
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(TraceHeader); len(id) != 16 {
		t.Fatalf("health response %s = %q", TraceHeader, id)
	}

	// ?trace=1 returns the request's span tree inline, and the report
	// still renders identically.
	traced, err := client.CheckTraced(CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.TraceJSON) == 0 {
		t.Fatal("traced check returned no inline trace")
	}
	if err := obs.ValidateTraceJSON(traced.TraceJSON); err != nil {
		t.Fatalf("inline trace invalid: %v", err)
	}
	if !strings.Contains(string(traced.TraceJSON), "request:default") {
		t.Fatal("inline trace lacks the request root span")
	}
	if got, exp := jsonOf(t, traced), jsonOf(t, want); got != exp {
		t.Fatal("traced JSON differs from one-shot")
	}

	// Access log: one JSON line per request, with program and memo
	// accounting on check lines and the trace ID on every line.
	var checkLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not JSON: %s", line)
		}
		if m["trace_id"] == nil {
			t.Fatalf("access log line lacks trace_id: %s", line)
		}
		if m["path"] == "/v1/check" && checkLine == nil {
			checkLine = m
		}
	}
	if checkLine == nil {
		t.Fatal("no /v1/check access log line")
	}
	for _, key := range []string{"method", "status", "dur_ms", "program", "memo_hits", "memo_misses"} {
		if _, ok := checkLine[key]; !ok {
			t.Fatalf("check log line lacks %q: %v", key, checkLine)
		}
	}
	if checkLine["program"] != "default" {
		t.Fatalf("check log program = %v", checkLine["program"])
	}
}

// TestServerFlightEndpoint: /v1/debug/flight dumps retained request
// traces as valid Chrome trace JSON, narrows by trace ID, lists
// metadata, and 404s on unknown traces; a breached latency threshold
// persists the offending trace to disk.
func TestServerFlightEndpoint(t *testing.T) {
	dir := t.TempDir()
	// SlowUS=1: every real request breaches the threshold and persists.
	client, ts := newTelemetryServer(t, 1, dir, nil, SLOConfig{})
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	rep, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	status, body := get("/v1/debug/flight")
	if status != http.StatusOK {
		t.Fatalf("flight dump = %d: %s", status, body)
	}
	if err := obs.ValidateTraceJSON(body); err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if !strings.Contains(string(body), "request:default") {
		t.Fatal("flight dump lacks request spans")
	}

	status, body = get("/v1/debug/flight?trace=" + rep.TraceID)
	if status != http.StatusOK || !strings.Contains(string(body), "request:default") {
		t.Fatalf("single-trace dump = %d: %s", status, body)
	}
	if status, _ := get("/v1/debug/flight?trace=nosuchtrace"); status != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", status)
	}

	status, body = get("/v1/debug/flight?list=1")
	if status != http.StatusOK {
		t.Fatalf("flight list = %d", status)
	}
	var entries []obs.FlightEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.TraceID == rep.TraceID {
			found = true
			if !e.Persisted {
				t.Fatalf("slow request not marked persisted: %+v", e)
			}
			if e.MemoMisses == 0 {
				t.Fatalf("cold request shows no memo misses: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("flight list %v lacks trace %s", entries, rep.TraceID)
	}

	// The breach persisted the trace to disk, valid and inspectable.
	data, err := os.ReadFile(filepath.Join(dir, "flight-"+rep.TraceID+".json"))
	if err != nil {
		t.Fatalf("slow trace not persisted: %v", err)
	}
	if err := obs.ValidateTraceJSON(data); err != nil {
		t.Fatalf("persisted trace invalid: %v", err)
	}
}

// TestServerHealthSLO: health reports ok with build info on an idle
// daemon and degrades with reasons once the error-rate threshold is
// breached.
func TestServerHealthSLO(t *testing.T) {
	client, _ := newTelemetryServer(t, 0, "", nil, SLOConfig{ErrorRate: 0.001, MinRequests: 1})

	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Status != "ok" || h.Version != Version || h.GoVersion == "" {
		t.Fatalf("idle health = %+v", h)
	}
	if _, ok := h.Windows["1m"]; !ok {
		t.Fatalf("health lacks 1m window: %+v", h)
	}

	// A failing check (fileless program) breaches the 0.1%% error SLO.
	if _, err := client.Check(CheckRequest{Program: "empty"}); err == nil {
		t.Fatal("fileless check succeeded")
	}
	h, err = client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.OK || h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("post-error health = %+v, want degraded with reasons", h)
	}
	if !strings.Contains(strings.Join(h.Reasons, " "), "error rate") {
		t.Fatalf("reasons = %v", h.Reasons)
	}
}

// TestServerPrometheusEndpoint: ?format=prometheus serves valid text
// exposition mapped from the live registry.
func TestServerPrometheusEndpoint(t *testing.T) {
	client, _, ts := newTestServer(t, nil)
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	if _, err := client.CheckFiles("default", files, CheckRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"# TYPE server_requests counter",
		"server_requests 1",
		"# TYPE server_request_ms histogram",
		`server_request_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServerDebugVars: the plain-text summary names the daemon, its
// windows and the engine counters.
func TestServerDebugVars(t *testing.T) {
	client, ts := newTelemetryServer(t, 0, "", nil, SLOConfig{})
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	if _, err := client.CheckFiles("default", files, CheckRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{"gocheckd " + Version, "uptime:", "engine: requests=1", "window 1m:", "window 5m:", "flight: recorded=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("vars missing %q:\n%s", want, buf.String())
		}
	}
}

// flakyTransport fails the first N round trips with connection-refused
// before delegating to the real transport.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	attempts int
	inner    http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.attempts++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	}
	return f.inner.RoundTrip(r)
}

// TestClientRetryOnConnRefused: one connection-refused failure is
// retried after backoff and succeeds; with retries exhausted (or
// disabled) the refusal surfaces.
func TestClientRetryOnConnRefused(t *testing.T) {
	_, _, ts := newTestServer(t, nil)

	c := NewClientWith(ts.URL, ClientOptions{Retries: 1, Backoff: time.Millisecond})
	ft := &flakyTransport{failures: 1, inner: http.DefaultTransport}
	c.http.Transport = ft
	if _, err := c.Health(); err != nil {
		t.Fatalf("health with one refusal and one retry: %v", err)
	}
	if ft.attempts != 2 {
		t.Fatalf("attempts = %d, want 2", ft.attempts)
	}

	// POST bodies must survive the retry (fresh reader per attempt).
	c.http.Transport = &flakyTransport{failures: 1, inner: http.DefaultTransport}
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	if _, err := c.CheckFiles("default", files, CheckRequest{}); err != nil {
		t.Fatalf("check with refusal mid-flow: %v", err)
	}

	// Too many refusals: the error surfaces as connection refused.
	c.http.Transport = &flakyTransport{failures: 5, inner: http.DefaultTransport}
	if _, err := c.Health(); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("exhausted retries: %v", err)
	}

	// Retries only cover connection-refused, not HTTP errors — and HTTP
	// errors carry the trace ID for log correlation.
	c.http.Transport = http.DefaultTransport
	_, err := c.Check(CheckRequest{Program: "empty"})
	if err == nil || !strings.Contains(err.Error(), "(trace ") {
		t.Fatalf("HTTP error lacks trace id: %v", err)
	}

	if got := NewClientWith(ts.URL, ClientOptions{Timeout: 7 * time.Second}); got.http.Timeout != 7*time.Second {
		t.Fatalf("timeout option not applied: %v", got.http.Timeout)
	}
}
