package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rasc/internal/analysis"
	"rasc/internal/gosrc"
	"rasc/internal/obs"
)

const srvASrc = `package p

import "sync"

var mu sync.Mutex

func Top() { mid() }

func mid() { leaf() }

func leaf() {
	mu.Lock()
	mu.Lock() // BUG
}
`

const srvBSrc = `package p

import "sync"

var mu2 sync.Mutex

func Other() { ok() }

func ok() {
	mu2.Lock()
	mu2.Unlock()
}
`

// newTestServer stands a full daemon stack up: engine, handler,
// httptest server, client.
func newTestServer(t *testing.T, onShutdown func()) (*Client, *analysis.Engine, *httptest.Server) {
	t.Helper()
	registry := obs.NewRegistry()
	engine := analysis.NewEngine(analysis.EngineConfig{Metrics: registry})
	h := NewHandler(engine, registry, onShutdown)
	ts := httptest.NewServer(h.Mux())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), engine, ts
}

// oneShot is the reference: a fresh in-process Analyze over the same
// sources, cache block stripped like the CLI strips it.
func oneShot(t *testing.T, files []gosrc.File, explain bool) *analysis.Report {
	t.Helper()
	pkg, err := analysis.LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Analyze(pkg, analysis.Config{Explain: explain})
	if err != nil {
		t.Fatal(err)
	}
	rep.Cache = nil
	return rep
}

func sarifOf(t *testing.T, rep *analysis.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.SARIF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func jsonOf(t *testing.T, rep *analysis.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServerRoundTripMatchesOneShot drives the full client flow —
// manifest diff, minimal delta, check — through HTTP and asserts the
// rendered report is byte-identical to a fresh one-shot run, across an
// edit.
func TestServerRoundTripMatchesOneShot(t *testing.T) {
	client, _, _ := newTestServer(t, nil)

	files := []gosrc.File{{Name: "a.go", Src: srvASrc}, {Name: "b.go", Src: srvBSrc}}
	rep, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot(t, files, false)
	if got, exp := sarifOf(t, rep), sarifOf(t, want); got != exp {
		t.Fatalf("server SARIF differs from one-shot:\nserver:\n%s\none-shot:\n%s", got, exp)
	}
	if got, exp := jsonOf(t, rep), jsonOf(t, want); got != exp {
		t.Fatalf("server JSON differs from one-shot")
	}

	// The manifest now covers both files; an identical re-check pushes
	// nothing.
	m, err := client.Manifest("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 2 {
		t.Fatalf("manifest = %v, want 2 files", m.Files)
	}
	if up, rm := Delta(files, m.Files); len(up) != 0 || len(rm) != 0 {
		t.Fatalf("unchanged set diffs to %d upserts / %d removes", len(up), len(rm))
	}

	// Edit one file: the delta is exactly that file, and the warm
	// re-check matches a fresh one-shot over the edited set.
	files[0].Src = strings.Replace(srvASrc, "mu.Lock() // BUG", "mu.Unlock()", 1)
	if up, _ := Delta(files, m.Files); len(up) != 1 || up[0].Name != "a.go" {
		t.Fatalf("edit delta = %+v, want just a.go", up)
	}
	rep, err = client.CheckFiles("default", files, CheckRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	want = oneShot(t, files, true)
	if got, exp := sarifOf(t, rep), sarifOf(t, want); got != exp {
		t.Fatalf("post-edit server SARIF differs from one-shot:\nserver:\n%s\none-shot:\n%s", got, exp)
	}

	// Dropping a file flows through as a remove.
	files = files[:1]
	m, err = client.Manifest("default")
	if err != nil {
		t.Fatal(err)
	}
	if _, rm := Delta(files, m.Files); len(rm) != 1 || rm[0] != "b.go" {
		t.Fatalf("remove delta = %v, want [b.go]", rm)
	}
	rep, err = client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := jsonOf(t, rep), jsonOf(t, oneShot(t, files, false)); got != exp {
		t.Fatalf("post-remove server JSON differs from one-shot")
	}
}

// TestServerConcurrentClients hits one daemon with goroutines mixing
// check, explain, metrics, health and list traffic. A -race exercise
// for the handler + engine stack; also asserts response stability and
// the request accounting.
func TestServerConcurrentClients(t *testing.T) {
	client, engine, ts := newTestServer(t, nil)

	files := []gosrc.File{{Name: "a.go", Src: srvASrc}, {Name: "b.go", Src: srvBSrc}}
	seed, err := client.CheckFiles("default", files, CheckRequest{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := jsonOf(t, seed)

	const workers = 12
	const iters = 3
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					rep, err := c.Check(CheckRequest{})
					if err != nil {
						errc <- err
						continue
					}
					if got := jsonOf(t, rep); got != wantJSON {
						t.Errorf("worker %d: report diverged", w)
					}
				case 1:
					if _, err := c.Check(CheckRequest{Explain: true}); err != nil {
						errc <- err
					}
				case 2:
					if _, err := c.CheckFiles("alt", files, CheckRequest{}); err != nil {
						errc <- err
					}
				case 3:
					if _, err := c.Metrics(); err != nil {
						errc <- err
					}
					if _, err := c.Health(); err != nil {
						errc <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := engine.Stats()
	if st.Errors != 0 {
		t.Fatalf("engine errors = %d", st.Errors)
	}
	// 1 seed + every check-issuing worker's iterations.
	checkWorkers := 0
	for w := 0; w < workers; w++ {
		if w%4 != 3 {
			checkWorkers++
		}
	}
	if want := int64(1 + checkWorkers*iters); st.Requests != want {
		t.Fatalf("requests = %d, want %d", st.Requests, want)
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine.Requests != st.Requests {
		t.Fatalf("metrics engine stats = %+v, engine says %+v", m.Engine, st)
	}
	if len(m.Programs) != 2 {
		t.Fatalf("programs = %+v, want default and alt", m.Programs)
	}
	if m.P99MS < m.P50MS {
		t.Fatalf("p99 %d < p50 %d", m.P99MS, m.P50MS)
	}
}

// TestServerErrorPaths: bad methods, bad bodies, engine errors and the
// disabled shutdown endpoint all surface as JSON errors with the right
// status.
func TestServerErrorPaths(t *testing.T) {
	client, _, ts := newTestServer(t, nil)

	// Engine error: a file set that fails to parse.
	_, err := client.Check(CheckRequest{
		Upserts: []FilePayload{{Name: "x.go", Src: "package p\nfunc broken( {"}},
	})
	if err == nil || !strings.Contains(err.Error(), "server:") {
		t.Fatalf("parse error not surfaced: %v", err)
	}

	// Empty program.
	if _, err := client.Check(CheckRequest{Program: "empty"}); err == nil {
		t.Fatal("check of a fileless program succeeded")
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/check = %d", resp.StatusCode)
	}

	// Undecodable body.
	resp, err = http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d", resp.StatusCode)
	}

	// Shutdown disabled (nil onShutdown).
	if err := client.Shutdown(); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("disabled shutdown: %v", err)
	}
}

// TestServerShutdownOnce: the shutdown endpoint fires its callback
// exactly once, however many clients ask.
func TestServerShutdownOnce(t *testing.T) {
	fired := make(chan struct{}, 2)
	client, _, _ := newTestServer(t, func() { fired <- struct{}{} })
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	<-fired
	select {
	case <-fired:
		t.Fatal("shutdown callback fired twice")
	default:
	}
}

// TestServerListEndpoint: /v1/list serves the same text as gocheck
// -list.
func TestServerListEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := analysis.ListText(&want); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want.String() {
		t.Fatalf("/v1/list differs from ListText:\n%s\nvs\n%s", buf.String(), want.String())
	}
	if !strings.Contains(buf.String(), "doublelock") {
		t.Fatal("list output lacks doublelock")
	}
}

// TestServerMetricsSchema pins the wire shape obslint and dashboards
// read: engine stats keys, the latency quantiles, and the server.*
// registry metrics.
func TestServerMetricsSchema(t *testing.T) {
	client, _, ts := newTestServer(t, nil)
	files := []gosrc.File{{Name: "a.go", Src: srvASrc}}
	if _, err := client.CheckFiles("default", files, CheckRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine", "programs", "p50_ms", "p99_ms", "metrics"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics response lacks %q", key)
		}
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(m["metrics"], &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["server.requests"]; !ok {
		t.Error("registry snapshot lacks server.requests counter")
	}
	if _, ok := snap.Histograms["server.request_ms"]; !ok {
		t.Error("registry snapshot lacks server.request_ms histogram")
	}
}
