package snapshot

import (
	"encoding/binary"
	"errors"
	"testing"
)

func build(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.Uint32s(1, []uint32{1, 2, 3, 0xdeadbeef})
	w.Bytes(2, []byte("hello"))
	w.Uint32s(3, nil)
	sb := NewStringBuilder()
	if sb.Ref("alpha") != 0 || sb.Ref("beta") != 1 || sb.Ref("alpha") != 0 {
		t.Fatal("string interning broken")
	}
	sb.Flush(w, 4, 5)
	return w.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := build(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	u, err := r.Uint32s(1)
	if err != nil || len(u) != 4 || u[0] != 1 || u[3] != 0xdeadbeef {
		t.Fatalf("Uint32s(1) = %v, %v", u, err)
	}
	b, err := r.Bytes(2)
	if err != nil || string(b) != "hello" {
		t.Fatalf("Bytes(2) = %q, %v", b, err)
	}
	if u, err := r.Uint32s(3); err != nil || len(u) != 0 {
		t.Fatalf("empty section = %v, %v", u, err)
	}
	if r.Has(99) {
		t.Fatal("Has(99) = true")
	}
	if _, err := r.Bytes(99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section error = %v", err)
	}
	st, err := ReadStrings(r, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Fatalf("Count = %d", st.Count())
	}
	if s, _ := st.At(0); s != "alpha" {
		t.Fatalf("At(0) = %q", s)
	}
	if s, _ := st.At(1); s != "beta" {
		t.Fatalf("At(1) = %q", s)
	}
	if _, err := st.At(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("At(2) error = %v", err)
	}
}

func TestNotAContainer(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("JUNKJUNKJUNK"), make([]byte, headerSize)} {
		if _, err := NewReader(data); !errors.Is(err, ErrFormat) {
			t.Errorf("NewReader(%d bytes) = %v, want ErrFormat", len(data), err)
		}
	}
}

func TestVersionSkew(t *testing.T) {
	data := build(t)
	binary.LittleEndian.PutUint32(data[4:], FormatVersion+1)
	data = Reseal(data)
	if _, err := NewReader(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("skewed version error = %v, want ErrVersion", err)
	}
}

func TestBitFlipCaught(t *testing.T) {
	base := build(t)
	// Every single-bit flip anywhere in the file must be rejected
	// (header fields, table, payloads — all covered by magic, version,
	// SHA-256 or bounds checks).
	for off := 0; off < len(base); off++ {
		data := make([]byte, len(base))
		copy(data, base)
		data[off] ^= 0x40
		if _, err := NewReader(data); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
}

func TestTruncationCaught(t *testing.T) {
	base := build(t)
	for n := 0; n < len(base); n++ {
		if _, err := NewReader(base[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestResealEnablesDeepValidation(t *testing.T) {
	// A mutated-then-resealed container passes the SHA/CRC layer and must
	// be caught by structural validation instead.
	data := build(t)
	// Corrupt the section table: point section 1 beyond the file.
	binary.LittleEndian.PutUint32(data[headerSize+4:], uint32(len(data)))
	binary.LittleEndian.PutUint32(data[headerSize+8:], 64)
	data = Reseal(data)
	if _, err := NewReader(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-bounds section error = %v, want ErrCorrupt", err)
	}

	// A huge section count must be rejected before allocating.
	data = build(t)
	binary.LittleEndian.PutUint32(data[8:], 1<<30)
	data = Reseal(data)
	if _, err := NewReader(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge section count error = %v, want ErrCorrupt", err)
	}

	// Odd-length uint32 section.
	w := NewWriter()
	w.Bytes(1, []byte{1, 2, 3})
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Uint32s(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("odd-length uint32 section error = %v, want ErrCorrupt", err)
	}
}

func TestResealNeverPanics(t *testing.T) {
	inputs := [][]byte{nil, []byte("R"), []byte("RSNP"), make([]byte, headerSize-1), build(t)[:headerSize]}
	for _, in := range inputs {
		_ = Reseal(in)
	}
	if got := Reseal(nil); got != nil {
		t.Fatal("Reseal(nil) != nil")
	}
}

func TestStringTableValidation(t *testing.T) {
	w := NewWriter()
	w.Bytes(4, []byte("abc"))
	w.Uint32s(5, []uint32{0, 2}) // does not cover blob
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStrings(r, 4, 5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short offsets error = %v", err)
	}

	w = NewWriter()
	w.Bytes(4, []byte("abc"))
	w.Uint32s(5, []uint32{0, 3, 1, 3}) // not monotone
	r, err = NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStrings(r, 4, 5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-monotone offsets error = %v", err)
	}
}

func TestDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate section id did not panic")
		}
	}()
	w := NewWriter()
	w.Bytes(1, nil)
	w.Bytes(1, nil)
}
