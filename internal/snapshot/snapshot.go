// Package snapshot implements the on-disk container for frozen solver
// state: a versioned flat binary format of checksummed sections whose
// payloads are flat little-endian uint32 arrays (plus raw byte blobs for
// string tables). The encoding is designed so that a decoder can alias
// index slices directly into the single read buffer — on little-endian
// hosts a section's []uint32 view is the file's bytes, no per-element
// copy or allocation — while remaining loadable (with one copy) on
// big-endian hosts.
//
// Layout:
//
//	offset 0   magic "RSNP" (4 bytes)
//	offset 4   format version (uint32 LE)
//	offset 8   section count n (uint32 LE)
//	offset 12  reserved (0)
//	offset 16  SHA-256 over data[48:] (32 bytes)
//	offset 48  section table: n entries of {id, off, len, crc32} (16 bytes)
//	...        section payloads, each 8-byte aligned
//
// Integrity is layered: the SHA-256 covers everything after the header
// proper (section table and payloads), and each section additionally
// carries a CRC32 so that targeted corruption is attributed to a
// section. Every length and offset is validated against the file size
// before any allocation, so a hostile or truncated file can never make
// the reader allocate more than O(len(data)).
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// FormatVersion is the container format version. Any incompatible change
// to the section layout of any producer (core, pdm) must bump it; a
// reader seeing a different version fails with ErrVersion, which cache
// layers treat as a miss (demote to cold build), never an error.
const FormatVersion = 1

const (
	magic       = "RSNP"
	headerSize  = 48
	sectionSize = 16
	maxSections = 4096
)

// Sentinel errors. Detail errors wrap one of these; callers classify
// with errors.Is.
var (
	// ErrFormat marks data that is not a snapshot container at all.
	ErrFormat = errors.New("snapshot: not a snapshot container")
	// ErrVersion marks a well-formed container of another format version.
	ErrVersion = errors.New("snapshot: format version mismatch")
	// ErrCorrupt marks a container that fails integrity or structural
	// validation.
	ErrCorrupt = errors.New("snapshot: corrupt container")
)

// hostLittle reports whether this host is little-endian; on such hosts
// uint32 sections alias the read buffer instead of being copied.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Writer accumulates sections and serializes them with Finish. Section
// ids must be unique; writing a duplicate id panics (a producer bug, not
// an input condition).
type Writer struct {
	ids  map[uint32]bool
	secs []wsection
}

type wsection struct {
	id      uint32
	payload []byte
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer {
	return &Writer{ids: make(map[uint32]bool)}
}

// Bytes adds a raw byte section.
func (w *Writer) Bytes(id uint32, b []byte) {
	if w.ids[id] {
		panic(fmt.Sprintf("snapshot: duplicate section id %d", id))
	}
	w.ids[id] = true
	w.secs = append(w.secs, wsection{id, b})
}

// Uint32s adds a section holding a flat little-endian uint32 array.
func (w *Writer) Uint32s(id uint32, v []uint32) {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	w.Bytes(id, b)
}

// Finish lays out the container and returns its bytes.
func (w *Writer) Finish() []byte {
	n := len(w.secs)
	off := headerSize + sectionSize*n
	offs := make([]int, n)
	for i, s := range w.secs {
		off = (off + 7) &^ 7 // 8-byte align every payload
		offs[i] = off
		off += len(s.payload)
	}
	data := make([]byte, off)
	copy(data, magic)
	binary.LittleEndian.PutUint32(data[4:], FormatVersion)
	binary.LittleEndian.PutUint32(data[8:], uint32(n))
	for i, s := range w.secs {
		e := data[headerSize+sectionSize*i:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], uint32(offs[i]))
		binary.LittleEndian.PutUint32(e[8:], uint32(len(s.payload)))
		binary.LittleEndian.PutUint32(e[12:], crc32.ChecksumIEEE(s.payload))
		copy(data[offs[i]:], s.payload)
	}
	sum := sha256.Sum256(data[headerSize:])
	copy(data[16:48], sum[:])
	return data
}

type span struct {
	off, n int
}

// Reader is a validated view over a container's bytes. The sections
// returned by Bytes and (on little-endian hosts) Uint32s alias the
// buffer passed to NewReader; the caller must not mutate it while the
// decoded state is live.
type Reader struct {
	data []byte
	secs map[uint32]span
}

// NewReader validates the container header, checksums and section table
// of data and returns a reader over it. All validation errors wrap
// ErrFormat, ErrVersion or ErrCorrupt.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerSize || string(data[:4]) != magic {
		return nil, ErrFormat
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, reader expects %d", ErrVersion, v, FormatVersion)
	}
	if binary.LittleEndian.Uint32(data[12:]) != 0 {
		return nil, fmt.Errorf("%w: reserved header field is non-zero", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if n > maxSections || headerSize+sectionSize*n > len(data) {
		return nil, fmt.Errorf("%w: section table (%d entries) exceeds file size %d", ErrCorrupt, n, len(data))
	}
	sum := sha256.Sum256(data[headerSize:])
	if string(sum[:]) != string(data[16:48]) {
		return nil, fmt.Errorf("%w: SHA-256 mismatch", ErrCorrupt)
	}
	r := &Reader{data: data, secs: make(map[uint32]span, n)}
	for i := 0; i < n; i++ {
		e := data[headerSize+sectionSize*i:]
		id := binary.LittleEndian.Uint32(e[0:])
		off := uint64(binary.LittleEndian.Uint32(e[4:]))
		length := uint64(binary.LittleEndian.Uint32(e[8:]))
		crc := binary.LittleEndian.Uint32(e[12:])
		if off < uint64(headerSize+sectionSize*n) || off+length > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d spans [%d,%d) outside file of %d bytes", ErrCorrupt, id, off, off+length, len(data))
		}
		if _, dup := r.secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		if crc32.ChecksumIEEE(data[off:off+length]) != crc {
			return nil, fmt.Errorf("%w: CRC mismatch in section %d", ErrCorrupt, id)
		}
		r.secs[id] = span{int(off), int(length)}
	}
	return r, nil
}

// Has reports whether section id is present.
func (r *Reader) Has(id uint32) bool {
	_, ok := r.secs[id]
	return ok
}

// Bytes returns the raw payload of section id, aliased into the read
// buffer.
func (r *Reader) Bytes(id uint32) ([]byte, error) {
	s, ok := r.secs[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	return r.data[s.off : s.off+s.n : s.off+s.n], nil
}

// Uint32s returns section id as a []uint32. On little-endian hosts the
// slice aliases the read buffer (zero copy, zero allocation); otherwise
// it is decoded into a fresh slice. The payload length must be a
// multiple of 4.
func (r *Reader) Uint32s(id uint32) ([]uint32, error) {
	b, err := r.Bytes(id)
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: section %d has length %d, not a uint32 array", ErrCorrupt, id, len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// Reseal returns a copy of data with every validly-bounded section CRC
// and the SHA-256 recomputed. It exists for decoder-hardening tests: a
// fuzzer that flips bits in a sealed container dies at the SHA-256
// check before structural validation is ever exercised, so the harness
// mutates first and reseals after. Reseal itself never panics; data too
// short or foreign to parse as a container is returned unchanged.
func Reseal(data []byte) []byte {
	if len(data) < headerSize || string(data[:4]) != magic {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	n := int(binary.LittleEndian.Uint32(out[8:]))
	if n <= maxSections && headerSize+sectionSize*n <= len(out) {
		for i := 0; i < n; i++ {
			e := out[headerSize+sectionSize*i:]
			off := uint64(binary.LittleEndian.Uint32(e[4:]))
			length := uint64(binary.LittleEndian.Uint32(e[8:]))
			if off >= headerSize && off+length <= uint64(len(out)) {
				binary.LittleEndian.PutUint32(e[12:], crc32.ChecksumIEEE(out[off:off+length]))
			}
		}
	}
	sum := sha256.Sum256(out[headerSize:])
	copy(out[16:48], sum[:])
	return out
}

// StringBuilder interns strings into a blob + offsets pair of sections.
// Ref returns a stable index usable in other sections; the zero builder
// is not valid, use NewStringBuilder.
type StringBuilder struct {
	index map[string]uint32
	blob  []byte
	offs  []uint32 // cumulative ends; offs[0] == 0, len == count+1
}

// NewStringBuilder returns an empty string-table builder.
func NewStringBuilder() *StringBuilder {
	return &StringBuilder{index: make(map[string]uint32), offs: []uint32{0}}
}

// Ref interns s and returns its table index.
func (b *StringBuilder) Ref(s string) uint32 {
	if i, ok := b.index[s]; ok {
		return i
	}
	i := uint32(len(b.offs) - 1)
	b.index[s] = i
	b.blob = append(b.blob, s...)
	b.offs = append(b.offs, uint32(len(b.blob)))
	return i
}

// Flush writes the table as two sections.
func (b *StringBuilder) Flush(w *Writer, idBlob, idOffs uint32) {
	w.Bytes(idBlob, b.blob)
	w.Uint32s(idOffs, b.offs)
}

// Strings is a decoded string table; At materializes one string per
// call, so decoders that store refs pay for a string only when it is
// actually rendered.
type Strings struct {
	blob []byte
	offs []uint32
}

// ReadStrings loads and validates the table written by Flush.
func ReadStrings(r *Reader, idBlob, idOffs uint32) (Strings, error) {
	blob, err := r.Bytes(idBlob)
	if err != nil {
		return Strings{}, err
	}
	offs, err := r.Uint32s(idOffs)
	if err != nil {
		return Strings{}, err
	}
	if len(offs) == 0 || offs[0] != 0 || offs[len(offs)-1] != uint32(len(blob)) {
		return Strings{}, fmt.Errorf("%w: string table offsets do not cover blob", ErrCorrupt)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return Strings{}, fmt.Errorf("%w: string table offsets not monotone", ErrCorrupt)
		}
	}
	return Strings{blob: blob, offs: offs}, nil
}

// Count returns the number of interned strings.
func (t Strings) Count() int { return len(t.offs) - 1 }

// At returns string i.
func (t Strings) At(i uint32) (string, error) {
	if int(i) >= t.Count() {
		return "", fmt.Errorf("%w: string ref %d out of range (%d strings)", ErrCorrupt, i, t.Count())
	}
	return string(t.blob[t.offs[i]:t.offs[i+1]]), nil
}
