package minic

import "fmt"

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	NEntry  NodeKind = iota // function entry
	NExit                   // function exit
	NAction                 // a call (possibly property-relevant)
	NJoin                   // control-flow join / loop head
	NSpawn                  // goroutine spawn; Call is the spawned call
	NAccess                 // shared-variable read/write (concurrency checkers)
)

func (k NodeKind) String() string {
	switch k {
	case NEntry:
		return "entry"
	case NExit:
		return "exit"
	case NAction:
		return "action"
	case NJoin:
		return "join"
	case NSpawn:
		return "spawn"
	case NAccess:
		return "access"
	}
	return "?"
}

// ConcOp classifies a node's concurrency event, if any. Lock events
// carry the lock object's identity (the receiver's rendering) in
// ConcArg, so checkers distinguish mu1 from mu2; channel events carry
// the channel's rendering, accesses the variable name.
type ConcOp int

// Concurrency events.
const (
	ConcNone    ConcOp = iota
	ConcSpawn          // go f(...)
	ConcSend           // ch <- v
	ConcRecv           // <-ch
	ConcClose          // close(ch)
	ConcLock           // mu.Lock()
	ConcUnlock         // mu.Unlock()
	ConcRLock          // mu.RLock()
	ConcRUnlock        // mu.RUnlock()
	ConcLoad           // shared-variable read
	ConcStore          // shared-variable write
)

func (c ConcOp) String() string {
	switch c {
	case ConcSpawn:
		return "spawn"
	case ConcSend:
		return "send"
	case ConcRecv:
		return "recv"
	case ConcClose:
		return "close"
	case ConcLock:
		return "lock"
	case ConcUnlock:
		return "unlock"
	case ConcRLock:
		return "rlock"
	case ConcRUnlock:
		return "runlock"
	case ConcLoad:
		return "load"
	case ConcStore:
		return "store"
	}
	return "none"
}

// Node is one control-flow-graph node. Action nodes carry the call they
// perform; the action is considered to happen on the node's outgoing
// edges, matching the constraint generation scheme of §6.1 (the statement
// s yields S ⊆^s S_i for each successor).
type Node struct {
	ID   int
	Kind NodeKind
	Fn   string
	// Call is the performed call for NAction nodes.
	Call *CallExpr
	// AssignTo is the variable receiving the call's result, used by
	// parametric event labels ("int fd1 = open(...)").
	AssignTo string
	// Conc classifies the node's concurrency event (spawn, channel
	// operation, lock acquisition/release with its lock identity, or a
	// shared-variable access); ConcNone for sequential nodes.
	Conc ConcOp
	// ConcArg is the event's object: the spawned callee, the channel or
	// lock rendering, or the accessed variable name.
	ConcArg string
	Line    int
	Succs   []int
}

// CFG is the whole-program control flow graph: one subgraph per function
// plus entry/exit markers. Interprocedural edges are not materialized
// here; the model checker adds call/return constraints per §6.1.
type CFG struct {
	Prog  *Program
	Nodes []*Node
	Entry map[string]int
	Exit  map[string]int
}

// Build constructs the CFG of a parsed program.
func Build(prog *Program) (*CFG, error) {
	g := &CFG{Prog: prog, Entry: map[string]int{}, Exit: map[string]int{}}
	for _, fd := range prog.Funcs {
		b := &cfgBuilder{g: g, fn: fd.Name}
		entry := b.node(NEntry, nil, "", fd.Line)
		g.Entry[fd.Name] = entry.ID
		exit := b.node(NExit, nil, "", fd.Line)
		g.Exit[fd.Name] = exit.ID
		b.exit = exit.ID
		tails := []int{entry.ID}
		tails = b.stmts(fd.Body, tails)
		b.linkAll(tails, exit.ID)
		if b.err != nil {
			return nil, b.err
		}
	}
	return g, nil
}

// MustBuild panics on error.
func MustBuild(prog *Program) *CFG {
	g, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return g
}

type cfgBuilder struct {
	g    *CFG
	fn   string
	exit int
	// breakFrames collects the dangling tails of break statements per
	// enclosing loop/switch/labeled block; continueTargets holds the node
	// continue jumps to per enclosing loop. Frames carry the statement's
	// label so labeled break/continue can address outer frames.
	breakFrames     []breakFrame
	continueTargets []continueTarget
	err             error
}

type breakFrame struct {
	label string
	tails []int
}

type continueTarget struct {
	label string
	node  int
}

func (b *cfgBuilder) node(kind NodeKind, call *CallExpr, assignTo string, line int) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind, Fn: b.fn, Call: call, AssignTo: assignTo, Line: line}
	if kind == NAction && call != nil {
		b.classifyLock(n, call)
	}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// lockCallOps maps sync.Mutex/RWMutex method names (receiver as arg 0
// after the Go translation) to their concurrency events.
var lockCallOps = map[string]ConcOp{
	"Lock": ConcLock, "Unlock": ConcUnlock,
	"RLock": ConcRLock, "RUnlock": ConcRUnlock,
}

// classifyLock tags lock-identity-carrying call events. A call to a
// function the program defines under the same name is an ordinary
// interprocedural call, not a lock event.
func (b *cfgBuilder) classifyLock(n *Node, call *CallExpr) {
	op, ok := lockCallOps[call.Name]
	if !ok || len(call.Args) == 0 {
		return
	}
	if _, defined := b.g.Prog.ByName[call.Name]; defined {
		return
	}
	n.Conc, n.ConcArg = op, call.Args[0].Render()
}

func (b *cfgBuilder) link(from, to int) {
	n := b.g.Nodes[from]
	for _, s := range n.Succs {
		if s == to {
			return
		}
	}
	n.Succs = append(n.Succs, to)
}

func (b *cfgBuilder) linkAll(from []int, to int) {
	for _, f := range from {
		b.link(f, to)
	}
}

// chainCalls appends one action node per call in e (evaluation order) and
// returns the new tails. assignTo applies to the last (outermost) call.
func (b *cfgBuilder) chainCalls(e Expr, assignTo string, line int, tails []int) []int {
	if e == nil {
		return tails
	}
	calls := Calls(e, nil)
	for i, c := range calls {
		at := ""
		if i == len(calls)-1 {
			at = assignTo
		}
		n := b.node(NAction, c, at, c.Line)
		_ = line
		b.linkAll(tails, n.ID)
		tails = []int{n.ID}
	}
	return tails
}

func (b *cfgBuilder) stmts(body []Stmt, tails []int) []int {
	for _, st := range body {
		tails = b.stmt(st, tails)
	}
	return tails
}

func (b *cfgBuilder) stmt(st Stmt, tails []int) []int {
	switch s := st.(type) {
	case *ExprStmt:
		return b.chainCalls(s.X, "", s.Line, tails)
	case *DeclStmt:
		return b.chainCalls(s.Init, s.Name, s.Line, tails)
	case *AssignStmt:
		return b.chainCalls(s.X, s.Name, s.Line, tails)
	case *StoreStmt:
		return b.chainCalls(s.X, "", s.Line, tails)
	case *SpawnStmt:
		// Argument calls are evaluated by the spawner; the spawned call
		// itself becomes the NSpawn node (it runs concurrently and never
		// returns into this function's flow).
		for _, a := range s.Call.Args {
			tails = b.chainCalls(a, "", s.Line, tails)
		}
		n := b.node(NSpawn, s.Call, "", s.Line)
		n.Conc, n.ConcArg = ConcSpawn, s.Call.Name
		b.linkAll(tails, n.ID)
		return []int{n.ID}
	case *SendStmt:
		tails = b.chainCalls(s.Value, "", s.Line, tails)
		return []int{b.chanOp(ConcSend, "$chan.send", s.Chan, "", s.Line, tails)}
	case *RecvStmt:
		return []int{b.chanOp(ConcRecv, "$chan.recv", s.Chan, s.AssignTo, s.Line, tails)}
	case *CloseStmt:
		return []int{b.chanOp(ConcClose, "$chan.close", s.Chan, "", s.Line, tails)}
	case *AccessStmt:
		n := b.node(NAccess, nil, "", s.Line)
		n.Conc, n.ConcArg = ConcLoad, s.Name
		if s.Write {
			n.Conc = ConcStore
		}
		b.linkAll(tails, n.ID)
		return []int{n.ID}
	case *BlockStmt:
		if s.Label == "" {
			return b.stmts(s.Body, tails)
		}
		// Labeled block: a break target ("L: { ... break L }").
		b.breakFrames = append(b.breakFrames, breakFrame{label: s.Label})
		out := b.stmts(s.Body, tails)
		breaks := b.popBreakFrame()
		return append(out, breaks...)
	case *ReturnStmt:
		tails = b.chainCalls(s.X, "", s.Line, tails)
		b.linkAll(tails, b.exit)
		return nil // code after return is unreachable
	case *IfStmt:
		tails = b.chainCalls(s.Cond, "", s.Line, tails)
		thenTails := b.stmts(s.Then, tails)
		elseTails := tails
		if s.Else != nil {
			elseTails = b.stmts(s.Else, tails)
		}
		return append(append([]int{}, thenTails...), elseTails...)
	case *WhileStmt:
		head := b.node(NJoin, nil, "", s.Line)
		b.linkAll(tails, head.ID)
		condTails := b.chainCalls(s.Cond, "", s.Line, []int{head.ID})
		breaks := b.loop(s.Label, head.ID, func() []int {
			bodyTails := b.stmts(s.Body, condTails)
			b.linkAll(bodyTails, head.ID)
			return nil
		})
		return append(append([]int{}, condTails...), breaks...)
	case *DoWhileStmt:
		bodyHead := b.node(NJoin, nil, "", s.Line)
		b.linkAll(tails, bodyHead.ID)
		condJoin := b.node(NJoin, nil, "", s.Line)
		var condTails []int
		breaks := b.loop(s.Label, condJoin.ID, func() []int {
			bodyTails := b.stmts(s.Body, []int{bodyHead.ID})
			b.linkAll(bodyTails, condJoin.ID)
			condTails = b.chainCalls(s.Cond, "", s.Line, []int{condJoin.ID})
			b.linkAll(condTails, bodyHead.ID) // loop back
			return nil
		})
		return append(append([]int{}, condTails...), breaks...)
	case *ForStmt:
		if s.Init != nil {
			tails = b.stmt(s.Init, tails)
		}
		head := b.node(NJoin, nil, "", s.Line)
		b.linkAll(tails, head.ID)
		condTails := b.chainCalls(s.Cond, "", s.Line, []int{head.ID})
		postJoin := b.node(NJoin, nil, "", s.Line)
		breaks := b.loop(s.Label, postJoin.ID, func() []int {
			bodyTails := b.stmts(s.Body, condTails)
			b.linkAll(bodyTails, postJoin.ID)
			postTails := []int{postJoin.ID}
			if s.Post != nil {
				postTails = b.stmt(s.Post, postTails)
			}
			b.linkAll(postTails, head.ID)
			return nil
		})
		if s.Cond == nil {
			// No condition: the only exits are breaks.
			return breaks
		}
		return append(append([]int{}, condTails...), breaks...)
	case *BreakStmt:
		idx := b.findBreakFrame(s.Label)
		if idx < 0 {
			if s.Label != "" {
				b.err = &SyntaxError{s.Line, 1, "break label " + s.Label + " not found"}
			} else {
				b.err = &SyntaxError{s.Line, 1, "break outside loop or switch"}
			}
			return nil
		}
		b.breakFrames[idx].tails = append(b.breakFrames[idx].tails, tails...)
		return nil
	case *ContinueStmt:
		target, ok := b.findContinueTarget(s.Label)
		if !ok {
			if s.Label != "" {
				b.err = &SyntaxError{s.Line, 1, "continue label " + s.Label + " not found"}
			} else {
				b.err = &SyntaxError{s.Line, 1, "continue outside loop"}
			}
			return nil
		}
		b.linkAll(tails, target)
		return nil
	case *SwitchStmt:
		tails = b.chainCalls(s.Cond, "", s.Line, tails)
		b.breakFrames = append(b.breakFrames, breakFrame{label: s.Label})
		var fall []int
		hasDefault := false
		for _, c := range s.Cases {
			if c.IsDefault {
				hasDefault = true
			}
			entry := append(append([]int{}, tails...), fall...)
			fall = b.stmts(c.Body, entry)
		}
		breaks := b.popBreakFrame()
		out := append(append([]int{}, fall...), breaks...)
		if !hasDefault {
			out = append(out, tails...) // no case taken
		}
		return out
	default:
		panic(fmt.Sprintf("minic: unknown statement %T", st))
	}
}

// chanOp appends a channel-operation action node. The operation is
// exposed as a synthesized $chan.* call so event maps (and therefore
// RASC properties) can match it like any other call, parametric in the
// channel.
func (b *cfgBuilder) chanOp(op ConcOp, name, ch, assignTo string, line int, tails []int) int {
	call := &CallExpr{Name: name, Args: []Expr{&IdentExpr{Name: ch}}, Line: line}
	n := b.node(NAction, call, assignTo, line)
	n.Conc, n.ConcArg = op, ch
	b.linkAll(tails, n.ID)
	return n.ID
}

// loop runs body with a continue target and a fresh break frame (both
// tagged with the loop's label, if any), and returns the collected break
// tails.
func (b *cfgBuilder) loop(label string, target int, body func() []int) []int {
	b.continueTargets = append(b.continueTargets, continueTarget{label: label, node: target})
	b.breakFrames = append(b.breakFrames, breakFrame{label: label})
	body()
	breaks := b.popBreakFrame()
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	return breaks
}

// popBreakFrame removes the innermost break frame and returns its tails.
func (b *cfgBuilder) popBreakFrame() []int {
	top := len(b.breakFrames) - 1
	breaks := b.breakFrames[top].tails
	b.breakFrames = b.breakFrames[:top]
	return breaks
}

// findBreakFrame resolves a break statement to a frame index: the
// innermost frame when label is empty, the innermost frame with that
// label otherwise. Returns -1 when there is no match.
func (b *cfgBuilder) findBreakFrame(label string) int {
	for i := len(b.breakFrames) - 1; i >= 0; i-- {
		if label == "" || b.breakFrames[i].label == label {
			return i
		}
	}
	return -1
}

// findContinueTarget resolves a continue statement to its loop head.
func (b *cfgBuilder) findContinueTarget(label string) (int, bool) {
	for i := len(b.continueTargets) - 1; i >= 0; i-- {
		if label == "" || b.continueTargets[i].label == label {
			return b.continueTargets[i].node, true
		}
	}
	return 0, false
}

// NumActions returns the number of action (call) nodes, a proxy for
// program size in the benchmarks.
func (g *CFG) NumActions() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == NAction {
			n++
		}
	}
	return n
}
