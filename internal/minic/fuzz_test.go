package minic

import "testing"

// FuzzParse checks the parser never panics and, when it succeeds, the CFG
// builder produces a well-formed graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"void main() { f(); }",
		"void main() { if (x) { a(); } else b(); while (c) d(); }",
		"void main() { for (int i = 0; i < n; i = i + 1) { if (x) break; else continue; } }",
		"void main() { do { a(); } while (x); switch (y) { case 1: b(); default: c(); } }",
		"int f(int x) { return x + 1; } void main() { int v = f(2); }",
		"void main() { int *p = &a; *p = b; int q = *p; }",
		"void main() { seteuid(0); execl(\"/bin/sh\"); }",
		"void main() { /* comment */ f(); // line\n }",
		"void main() { \"unterminated",
		"}{",
		// Concurrency statements: spawn, channel send/recv/close.
		"void w() { g(); } void main() { spawn w(); }",
		"void main() { ch <- v; <-ch; x = <-ch; close ch; }",
		"void w(int a) { use(a); } void main() { while (c) { spawn w(f()); } }",
		"void main() { ch <- f(); close(ch); }",
		"void main() { spawn 1; }",
		"void main() { <- ; }",
		"void main() { close }",
		"void spawn() { } void main() { spawn(); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		g, err := Build(prog)
		if err != nil {
			return
		}
		for _, n := range g.Nodes {
			for _, s := range n.Succs {
				if s < 0 || s >= len(g.Nodes) {
					t.Fatalf("dangling successor %d", s)
				}
			}
		}
	})
}
