package minic

import "testing"

// findConc collects (op, arg) pairs of concurrency-marked nodes in
// node-ID order.
func findConc(t *testing.T, src string) []ConcOp {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	var ops []ConcOp
	for _, n := range g.Nodes {
		if n.Conc != ConcNone {
			ops = append(ops, n.Conc)
		}
	}
	return ops
}

func TestParseSpawn(t *testing.T) {
	prog, err := Parse(`void worker(int a) { use(a); } void main() { spawn worker(f()); }`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	var spawn *Node
	sawArgCall := false
	for _, n := range g.Nodes {
		switch {
		case n.Kind == NSpawn:
			spawn = n
		case n.Kind == NAction && n.Call.Name == "f":
			sawArgCall = true
		}
	}
	if spawn == nil || spawn.Conc != ConcSpawn || spawn.ConcArg != "worker" {
		t.Fatalf("spawn node = %+v", spawn)
	}
	if !sawArgCall {
		t.Error("spawn argument calls must be evaluated by the spawner")
	}
}

func TestSpawnIsNotAKeyword(t *testing.T) {
	// A function named spawn is still callable: the keyword form needs
	// `spawn ident(...)`.
	prog, err := Parse(`void spawn() { g(); } void main() { spawn(); }`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	for _, n := range g.Nodes {
		if n.Kind == NSpawn {
			t.Fatal("spawn() call must stay a plain call")
		}
	}
	_ = g
}

func TestParseChannelOps(t *testing.T) {
	src := `void main() { ch <- v; <-ch; x = <-ch; close ch; }`
	ops := findConc(t, src)
	want := []ConcOp{ConcSend, ConcRecv, ConcRecv, ConcClose}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestChannelOpsAreActions(t *testing.T) {
	// Channel operations surface as $chan.* calls so event maps (and
	// RASC properties) can match them, parametric in the channel.
	prog, err := Parse(`void main() { ch <- v; <-ch; close ch; }`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	var names []string
	for _, n := range g.Nodes {
		if n.Kind == NAction {
			names = append(names, n.Call.Name)
			if len(n.Call.Args) != 1 || n.Call.Args[0].Render() != "ch" {
				t.Errorf("%s must carry the channel as arg 0", n.Call.Name)
			}
		}
	}
	want := []string{"$chan.send", "$chan.recv", "$chan.close"}
	if len(names) != len(want) {
		t.Fatalf("actions = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("action %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestCloseCallStaysACall(t *testing.T) {
	// close(fd) with parens is an ordinary call (e.g. the POSIX file
	// close); only `close ch;` is the channel statement.
	prog, err := Parse(`void main() { int fd = open("x"); close(fd); }`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	for _, n := range g.Nodes {
		if n.Conc == ConcClose {
			t.Fatal("close(fd) must not be a channel close")
		}
	}
}

func TestRecvAssignKeepsName(t *testing.T) {
	prog, err := Parse(`void main() { x = <-ch; }`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	for _, n := range g.Nodes {
		if n.Conc == ConcRecv {
			if n.AssignTo != "x" {
				t.Errorf("recv AssignTo = %q, want x", n.AssignTo)
			}
			return
		}
	}
	t.Fatal("no recv node")
}

func TestLockClassification(t *testing.T) {
	src := `void main() { Lock(mu); RLock(rw); RUnlock(rw); Unlock(mu); Lock(); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	type lk struct {
		op  ConcOp
		arg string
	}
	var got []lk
	for _, n := range g.Nodes {
		if n.Conc != ConcNone {
			got = append(got, lk{n.Conc, n.ConcArg})
		}
	}
	want := []lk{{ConcLock, "mu"}, {ConcRLock, "rw"}, {ConcRUnlock, "rw"}, {ConcUnlock, "mu"}}
	if len(got) != len(want) {
		t.Fatalf("lock events = %v, want %v (zero-arg Lock() must not classify)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestProgramDefinedLockNotClassified(t *testing.T) {
	// A program-defined function named Lock is not a sync primitive.
	src := `void Lock(int m) { g(m); } void main() { Lock(mu); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := MustBuild(prog)
	for _, n := range g.Nodes {
		if n.Conc == ConcLock {
			t.Fatal("program-defined Lock must not classify as a lock event")
		}
	}
}

func TestSpawnRoundTrip(t *testing.T) {
	// Spawn statements survive a render/re-parse round trip.
	src := `void w() { g(); }
void main() { spawn w(); ch <- 1; <-ch; close ch; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g1 := MustBuild(prog)
	count := func(g *CFG) map[ConcOp]int {
		m := map[ConcOp]int{}
		for _, n := range g.Nodes {
			m[n.Conc]++
		}
		return m
	}
	c1 := count(g1)
	if c1[ConcSpawn] != 1 || c1[ConcSend] != 1 || c1[ConcRecv] != 1 || c1[ConcClose] != 1 {
		t.Fatalf("conc ops = %v", c1)
	}
}
