// Package minic implements a small C-like language frontend — lexer,
// parser, AST and control-flow-graph construction — used by the pushdown
// model checking application of §6. The language has first-class function
// definitions, calls, if/else, while loops, returns, assignments and
// declarations; conditions are treated nondeterministically by the CFG
// (both branches are possible), which is the standard sound abstraction
// for safety checking.
//
// An event mapping (see events.go) designates which calls are relevant to
// a security property, turning e.g. seteuid(0) into the alphabet symbol
// seteuid_zero of Figure 3, and open(...) into a parametric open(x) event
// labelled with the assigned file descriptor (§6.4).
package minic

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // single or multi char punctuation, text in tok.text
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minic:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errf(format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{l.line, l.col, fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
}

// isLetter treats ASCII letters, underscore and all non-ASCII bytes as
// identifier letters (the generated and test programs are ASCII; UTF-8
// identifiers lex as opaque byte runs).
func isLetter(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || b >= 0x80
}

func isDigit(b byte) bool { return '0' <= b && b <= '9' }

func (l *lexer) skip() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case isSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case r == '#':
			// Preprocessor-ish lines are ignored wholesale.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

var twoCharPunct = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true,
	"&&": true, "||": true, "->": true, "++": true, "--": true,
	"+=": true, "-=": true, "<-": true,
}

func (l *lexer) next() (tok, error) {
	if err := l.skip(); err != nil {
		return tok{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return tok{kind: tEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case isLetter(r):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		return tok{tIdent, l.src[start:l.pos], line, col}, nil
	case isDigit(r):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == 'x' || l.peek() == 'X' ||
			('a' <= l.peek() && l.peek() <= 'f') || ('A' <= l.peek() && l.peek() <= 'F')) {
			l.advance()
		}
		return tok{tNumber, l.src[start:l.pos], line, col}, nil
	case r == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '"' {
			if l.peek() == '\\' {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
			}
		}
		if l.pos >= len(l.src) {
			return tok{}, l.errf("unterminated string literal")
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		return tok{tString, text, line, col}, nil
	case r == '\'':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '\'' {
			if l.peek() == '\\' {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
			}
		}
		if l.pos >= len(l.src) {
			return tok{}, l.errf("unterminated character literal")
		}
		text := l.src[start:l.pos]
		l.advance()
		return tok{tNumber, text, line, col}, nil
	}
	// Punctuation: try two-char first.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharPunct[two] {
			l.advance()
			l.advance()
			return tok{tPunct, two, line, col}, nil
		}
	}
	switch r {
	case '(', ')', '{', '}', ';', ',', '=', '<', '>', '+', '-', '*', '/', '!', '&', '|', '%', '[', ']', '.', ':', '?':
		l.advance()
		return tok{tPunct, string(r), line, col}, nil
	}
	return tok{}, l.errf("unexpected character %q", string(r))
}

func lexAll(src string) ([]tok, error) {
	l := &lexer{src: src, line: 1, col: 1}
	out := make([]tok, 0, len(src)/4+16)
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
