package minic

import (
	"strings"
	"testing"
)

// succMap builds predecessor counts and finds the unique action node
// calling name.
func succMap(t *testing.T, g *CFG, name string) (*Node, map[int]int) {
	t.Helper()
	preds := map[int]int{}
	var found *Node
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
		if n.Kind == NAction && n.Call.Name == name {
			found = n
		}
	}
	if found == nil {
		t.Fatalf("node calling %s not found", name)
	}
	return found, preds
}

func TestForLoopCFG(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    for (int i = init(); i < n(); i = step(i)) {
        body();
    }
    after();
}
`))
	// body loops: body -> post(step) -> head -> cond(n) -> body/after.
	bodyN, _ := succMap(t, g, "body")
	stepN, _ := succMap(t, g, "step")
	afterN, preds := succMap(t, g, "after")
	if preds[afterN.ID] == 0 {
		t.Error("after must be reachable")
	}
	// body's successor chain eventually reaches step.
	if len(bodyN.Succs) != 1 {
		t.Fatalf("body succs = %v", bodyN.Succs)
	}
	reach := reachableFrom(g, bodyN.ID)
	if !reach[stepN.ID] {
		t.Error("body should reach the post clause")
	}
	if !reach[bodyN.ID] {
		t.Error("for-loop body should be in a cycle")
	}
}

func reachableFrom(g *CFG, id int) map[int]bool {
	seen := map[int]bool{}
	stack := []int{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[n].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestForWithoutCond(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    for (;;) {
        body();
        if (c) {
            break;
        }
    }
    after();
}
`))
	afterN, preds := succMap(t, g, "after")
	if preds[afterN.ID] == 0 {
		t.Error("after is only reachable through break")
	}
	// Without the break, after would be unreachable.
	g2 := MustBuild(MustParse(`
void main() {
    for (;;) {
        body();
    }
    after();
}
`))
	afterN2, preds2 := succMap(t, g2, "after")
	if preds2[afterN2.ID] != 0 {
		t.Error("after an infinite loop nothing should flow")
	}
}

func TestDoWhileRunsOnce(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    do {
        body();
    } while (check());
    after();
}
`))
	bodyN, preds := succMap(t, g, "body")
	if preds[bodyN.ID] == 0 {
		t.Error("body must be entered")
	}
	checkN, _ := succMap(t, g, "check")
	reach := reachableFrom(g, bodyN.ID)
	if !reach[checkN.ID] {
		t.Error("body flows to the condition")
	}
	if !reach[bodyN.ID] {
		t.Error("do-while loops back")
	}
	afterN, _ := succMap(t, g, "after")
	if !reach[afterN.ID] {
		t.Error("loop exits to after")
	}
}

func TestContinueJumpsToLoopHead(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    while (c) {
        first();
        if (x) {
            continue;
        }
        second();
    }
}
`))
	firstN, _ := succMap(t, g, "first")
	secondN, preds := succMap(t, g, "second")
	// second is reachable (the non-continue path).
	if preds[secondN.ID] == 0 {
		t.Error("second must be reachable")
	}
	// first reaches itself through the continue edge (back to head).
	if !reachableFrom(g, firstN.ID)[firstN.ID] {
		t.Error("continue must loop back")
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    switch (x) {
    case 1:
        one();
    case 2:
        two();
        break;
    default:
        dflt();
    }
    after();
}
`))
	oneN, _ := succMap(t, g, "one")
	twoN, _ := succMap(t, g, "two")
	dfltN, _ := succMap(t, g, "dflt")
	afterN, _ := succMap(t, g, "after")

	// Fallthrough: one -> two.
	if !reachableFrom(g, oneN.ID)[twoN.ID] {
		t.Error("case 1 falls through to case 2")
	}
	// Break: two -> after without dflt.
	r2 := reachableFrom(g, twoN.ID)
	if !r2[afterN.ID] {
		t.Error("break exits to after")
	}
	if r2[dfltN.ID] {
		t.Error("break must not fall into default")
	}
	// Default reachable from the switch head.
	if preds := reachableFrom(g, g.Entry["main"]); !preds[dfltN.ID] {
		t.Error("default reachable")
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    switch (x) {
    case 1:
        one();
        break;
    }
    after();
}
`))
	afterN, preds := succMap(t, g, "after")
	// after is reachable both via the case and by skipping it: ≥ 2 preds.
	if preds[afterN.ID] < 2 {
		t.Errorf("after should be reachable by case and skip, preds = %d", preds[afterN.ID])
	}
}

func TestBreakOutsideLoop(t *testing.T) {
	prog := MustParse(`void main() { break; }`)
	if _, err := Build(prog); err == nil || !strings.Contains(err.Error(), "break outside") {
		t.Errorf("err = %v", err)
	}
	prog2 := MustParse(`void main() { continue; }`)
	if _, err := Build(prog2); err == nil || !strings.Contains(err.Error(), "continue outside") {
		t.Errorf("err = %v", err)
	}
}

func TestParseErrorsNewConstructs(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"void main() { do { f(); } until (x); }", "expected 'while'"},
		{"void main() { switch (x) { f(); } }", "expected 'case' or 'default'"},
		{"void main() { switch (x) { default: a(); default: b(); } }", "duplicate default"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
}

// The model checker sees correct flow through the new constructs.
func TestNewControlFlowEvents(t *testing.T) {
	// A for loop that drops privilege only in some iterations.
	src := `
void main() {
    seteuid(0);
    for (int i = 0; i < 10; i = i + 1) {
        if (c) {
            break;
        }
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}
`
	g := MustBuild(MustParse(src))
	if g.NumActions() < 4 {
		t.Errorf("NumActions = %d", g.NumActions())
	}
}
