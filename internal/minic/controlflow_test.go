package minic

import (
	"strings"
	"testing"
)

// succMap builds predecessor counts and finds the unique action node
// calling name.
func succMap(t *testing.T, g *CFG, name string) (*Node, map[int]int) {
	t.Helper()
	preds := map[int]int{}
	var found *Node
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
		if n.Kind == NAction && n.Call.Name == name {
			found = n
		}
	}
	if found == nil {
		t.Fatalf("node calling %s not found", name)
	}
	return found, preds
}

func TestForLoopCFG(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    for (int i = init(); i < n(); i = step(i)) {
        body();
    }
    after();
}
`))
	// body loops: body -> post(step) -> head -> cond(n) -> body/after.
	bodyN, _ := succMap(t, g, "body")
	stepN, _ := succMap(t, g, "step")
	afterN, preds := succMap(t, g, "after")
	if preds[afterN.ID] == 0 {
		t.Error("after must be reachable")
	}
	// body's successor chain eventually reaches step.
	if len(bodyN.Succs) != 1 {
		t.Fatalf("body succs = %v", bodyN.Succs)
	}
	reach := reachableFrom(g, bodyN.ID)
	if !reach[stepN.ID] {
		t.Error("body should reach the post clause")
	}
	if !reach[bodyN.ID] {
		t.Error("for-loop body should be in a cycle")
	}
}

func reachableFrom(g *CFG, id int) map[int]bool {
	seen := map[int]bool{}
	stack := []int{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[n].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestForWithoutCond(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    for (;;) {
        body();
        if (c) {
            break;
        }
    }
    after();
}
`))
	afterN, preds := succMap(t, g, "after")
	if preds[afterN.ID] == 0 {
		t.Error("after is only reachable through break")
	}
	// Without the break, after would be unreachable.
	g2 := MustBuild(MustParse(`
void main() {
    for (;;) {
        body();
    }
    after();
}
`))
	afterN2, preds2 := succMap(t, g2, "after")
	if preds2[afterN2.ID] != 0 {
		t.Error("after an infinite loop nothing should flow")
	}
}

func TestDoWhileRunsOnce(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    do {
        body();
    } while (check());
    after();
}
`))
	bodyN, preds := succMap(t, g, "body")
	if preds[bodyN.ID] == 0 {
		t.Error("body must be entered")
	}
	checkN, _ := succMap(t, g, "check")
	reach := reachableFrom(g, bodyN.ID)
	if !reach[checkN.ID] {
		t.Error("body flows to the condition")
	}
	if !reach[bodyN.ID] {
		t.Error("do-while loops back")
	}
	afterN, _ := succMap(t, g, "after")
	if !reach[afterN.ID] {
		t.Error("loop exits to after")
	}
}

func TestContinueJumpsToLoopHead(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    while (c) {
        first();
        if (x) {
            continue;
        }
        second();
    }
}
`))
	firstN, _ := succMap(t, g, "first")
	secondN, preds := succMap(t, g, "second")
	// second is reachable (the non-continue path).
	if preds[secondN.ID] == 0 {
		t.Error("second must be reachable")
	}
	// first reaches itself through the continue edge (back to head).
	if !reachableFrom(g, firstN.ID)[firstN.ID] {
		t.Error("continue must loop back")
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    switch (x) {
    case 1:
        one();
    case 2:
        two();
        break;
    default:
        dflt();
    }
    after();
}
`))
	oneN, _ := succMap(t, g, "one")
	twoN, _ := succMap(t, g, "two")
	dfltN, _ := succMap(t, g, "dflt")
	afterN, _ := succMap(t, g, "after")

	// Fallthrough: one -> two.
	if !reachableFrom(g, oneN.ID)[twoN.ID] {
		t.Error("case 1 falls through to case 2")
	}
	// Break: two -> after without dflt.
	r2 := reachableFrom(g, twoN.ID)
	if !r2[afterN.ID] {
		t.Error("break exits to after")
	}
	if r2[dfltN.ID] {
		t.Error("break must not fall into default")
	}
	// Default reachable from the switch head.
	if preds := reachableFrom(g, g.Entry["main"]); !preds[dfltN.ID] {
		t.Error("default reachable")
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	g := MustBuild(MustParse(`
void main() {
    switch (x) {
    case 1:
        one();
        break;
    }
    after();
}
`))
	afterN, preds := succMap(t, g, "after")
	// after is reachable both via the case and by skipping it: ≥ 2 preds.
	if preds[afterN.ID] < 2 {
		t.Errorf("after should be reachable by case and skip, preds = %d", preds[afterN.ID])
	}
}

func TestBreakOutsideLoop(t *testing.T) {
	prog := MustParse(`void main() { break; }`)
	if _, err := Build(prog); err == nil || !strings.Contains(err.Error(), "break outside") {
		t.Errorf("err = %v", err)
	}
	prog2 := MustParse(`void main() { continue; }`)
	if _, err := Build(prog2); err == nil || !strings.Contains(err.Error(), "continue outside") {
		t.Errorf("err = %v", err)
	}
}

func TestParseErrorsNewConstructs(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"void main() { do { f(); } until (x); }", "expected 'while'"},
		{"void main() { switch (x) { f(); } }", "expected 'case' or 'default'"},
		{"void main() { switch (x) { default: a(); default: b(); } }", "duplicate default"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
}

// The model checker sees correct flow through the new constructs.
func TestNewControlFlowEvents(t *testing.T) {
	// A for loop that drops privilege only in some iterations.
	src := `
void main() {
    seteuid(0);
    for (int i = 0; i < 10; i = i + 1) {
        if (c) {
            break;
        }
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}
`
	g := MustBuild(MustParse(src))
	if g.NumActions() < 4 {
		t.Errorf("NumActions = %d", g.NumActions())
	}
}

// reaches reports whether to is reachable from from along Succs.
func reaches(g *CFG, from, to int) bool {
	seen := map[int]bool{}
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Nodes[n].Succs...)
	}
	return false
}

func TestLabeledBreakCFG(t *testing.T) {
	// break "outer" must exit both loops: inner() never reaches post().
	inner := []Stmt{
		&ExprStmt{X: &CallExpr{Name: "inner", Line: 3}, Line: 3},
		&BreakStmt{Line: 4, Label: "outer"},
		&ExprStmt{X: &CallExpr{Name: "post", Line: 5}, Line: 5},
	}
	prog := &Program{ByName: map[string]*FuncDef{}}
	fd := &FuncDef{Name: "main", Body: []Stmt{
		&WhileStmt{
			Label: "outer",
			Cond:  &IdentExpr{Name: "c"},
			Body: []Stmt{
				&WhileStmt{Cond: &IdentExpr{Name: "d"}, Body: inner, Line: 2},
				&ExprStmt{X: &CallExpr{Name: "afterInner", Line: 6}, Line: 6},
			},
			Line: 1,
		},
		&ExprStmt{X: &CallExpr{Name: "done", Line: 7}, Line: 7},
	}}
	prog.Funcs = append(prog.Funcs, fd)
	prog.ByName["main"] = fd
	g := MustBuild(prog)
	innerN, _ := succMap(t, g, "inner")
	postN, _ := succMap(t, g, "post")
	afterN, _ := succMap(t, g, "afterInner")
	doneN, _ := succMap(t, g, "done")
	if reaches(g, innerN.ID, postN.ID) && len(innerN.Succs) == 1 && innerN.Succs[0] == postN.ID {
		t.Error("labeled break must not fall through to post")
	}
	// inner -> break outer -> done, without passing afterInner.
	if !reaches(g, innerN.ID, doneN.ID) {
		t.Error("labeled break must reach the statement after the outer loop")
	}
	for _, s := range innerN.Succs {
		if s == afterN.ID {
			t.Error("labeled break must not target the outer loop body")
		}
	}
}

func TestLabeledContinueCFG(t *testing.T) {
	// continue "outer" from the inner loop must jump to the outer head.
	prog := &Program{ByName: map[string]*FuncDef{}}
	fd := &FuncDef{Name: "main", Body: []Stmt{
		&WhileStmt{
			Label: "outer",
			Cond:  &IdentExpr{Name: "c"},
			Body: []Stmt{
				&WhileStmt{Cond: &IdentExpr{Name: "d"}, Body: []Stmt{
					&ExprStmt{X: &CallExpr{Name: "inner", Line: 3}, Line: 3},
					&ContinueStmt{Line: 4, Label: "outer"},
				}, Line: 2},
				&ExprStmt{X: &CallExpr{Name: "afterInner", Line: 6}, Line: 6},
			},
			Line: 1,
		},
	}}
	prog.Funcs = append(prog.Funcs, fd)
	prog.ByName["main"] = fd
	g := MustBuild(prog)
	innerN, _ := succMap(t, g, "inner")
	afterN, _ := succMap(t, g, "afterInner")
	for _, s := range innerN.Succs {
		if s == afterN.ID {
			t.Error("labeled continue must not fall through to the outer body tail")
		}
	}
}

func TestUnknownLabelErrors(t *testing.T) {
	prog := &Program{ByName: map[string]*FuncDef{}}
	fd := &FuncDef{Name: "main", Body: []Stmt{
		&WhileStmt{Cond: &IdentExpr{Name: "c"}, Body: []Stmt{
			&BreakStmt{Line: 2, Label: "nosuch"},
		}, Line: 1},
	}}
	prog.Funcs = append(prog.Funcs, fd)
	prog.ByName["main"] = fd
	if _, err := Build(prog); err == nil {
		t.Error("unknown break label must be a build error")
	}
}

func TestLabeledBlockBreak(t *testing.T) {
	// L: { a(); break L; b(); } c() — a reaches c, b is dead.
	prog := &Program{ByName: map[string]*FuncDef{}}
	fd := &FuncDef{Name: "main", Body: []Stmt{
		&BlockStmt{Label: "L", Body: []Stmt{
			&ExprStmt{X: &CallExpr{Name: "a", Line: 2}, Line: 2},
			&BreakStmt{Line: 3, Label: "L"},
			&ExprStmt{X: &CallExpr{Name: "b", Line: 4}, Line: 4},
		}, Line: 1},
		&ExprStmt{X: &CallExpr{Name: "c", Line: 5}, Line: 5},
	}}
	prog.Funcs = append(prog.Funcs, fd)
	prog.ByName["main"] = fd
	g := MustBuild(prog)
	aN, _ := succMap(t, g, "a")
	cN, _ := succMap(t, g, "c")
	if !reaches(g, aN.ID, cN.ID) {
		t.Error("break out of labeled block must reach the following statement")
	}
	bN, preds := succMap(t, g, "b")
	if preds[bN.ID] != 0 {
		t.Error("statement after break L must be unreachable")
	}
}
