package minic

import "fmt"

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) bump() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t tok, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{t.line, t.col, fmt.Sprintf(format, args...)}
}

func (p *parser) punct(text string) (tok, error) {
	t := p.cur()
	if t.kind != tPunct || t.text != text {
		return t, p.errf(t, "expected %q, found %q", text, t.text)
	}
	return p.bump(), nil
}

func (p *parser) isPunct(text string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == text
}

func (p *parser) ident(what string) (tok, error) {
	t := p.cur()
	if t.kind != tIdent {
		return t, p.errf(t, "expected %s, found %q", what, t.text)
	}
	return p.bump(), nil
}

// typeNames are identifiers accepted (and ignored) in type positions.
var typeNames = map[string]bool{
	"void": true, "int": true, "char": true, "long": true, "unsigned": true,
	"uid_t": true, "gid_t": true, "FILE": true, "size_t": true,
}

// Parse parses a translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{ByName: map[string]*FuncDef{}}
	for p.cur().kind != tEOF {
		fd, err := p.funcDef()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.ByName[fd.Name]; dup {
			return nil, p.errf(p.cur(), "duplicate function %q", fd.Name)
		}
		prog.Funcs = append(prog.Funcs, fd)
		prog.ByName[fd.Name] = fd
	}
	if len(prog.Funcs) == 0 {
		return nil, &SyntaxError{1, 1, "empty program"}
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) skipTypeTokens() error {
	// Accept a sequence of type-ish identifiers and '*'.
	saw := false
	for {
		t := p.cur()
		if t.kind == tIdent && typeNames[t.text] {
			p.bump()
			saw = true
			continue
		}
		if t.kind == tPunct && t.text == "*" && saw {
			p.bump()
			continue
		}
		break
	}
	if !saw {
		return p.errf(p.cur(), "expected type name")
	}
	return nil
}

func (p *parser) funcDef() (*FuncDef, error) {
	line := p.cur().line
	if err := p.skipTypeTokens(); err != nil {
		return nil, err
	}
	name, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	var params []string
	if !p.isPunct(")") {
		for {
			if p.cur().kind == tIdent && p.cur().text == "void" && p.peekIs(")") {
				p.bump()
				break
			}
			if err := p.skipTypeTokens(); err != nil {
				return nil, err
			}
			pn, err := p.ident("parameter name")
			if err != nil {
				return nil, err
			}
			params = append(params, pn.text)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDef{Name: name.text, Params: params, Body: body, Line: line}, nil
}

func (p *parser) peekIs(text string) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.kind == tPunct && t.text == text
}

func (p *parser) peekKind() tokKind {
	if p.pos+1 >= len(p.toks) {
		return tEOF
	}
	return p.toks[p.pos+1].kind
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.punct("{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if st != nil {
			body = append(body, st)
		}
	}
	p.bump() // }
	return body, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tPunct && t.text == "{":
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Body: body, Line: t.line}, nil
	case t.kind == tPunct && t.text == ";":
		p.bump()
		return nil, nil
	case t.kind == tIdent && t.text == "if":
		return p.ifStmt()
	case t.kind == tIdent && t.text == "while":
		return p.whileStmt()
	case t.kind == tIdent && t.text == "do":
		return p.doWhileStmt()
	case t.kind == tIdent && t.text == "for":
		return p.forStmt()
	case t.kind == tIdent && t.text == "switch":
		return p.switchStmt()
	case t.kind == tIdent && t.text == "break":
		p.bump()
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case t.kind == tIdent && t.text == "continue":
		p.bump()
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case t.kind == tIdent && t.text == "spawn" && p.peekKind() == tIdent:
		// spawn f(args); — start a goroutine running the call.
		p.bump()
		x, err := p.primary()
		if err != nil {
			return nil, err
		}
		call, ok := x.(*CallExpr)
		if !ok {
			return nil, p.errf(t, "spawn requires a call")
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &SpawnStmt{Call: call, Line: t.line}, nil
	case t.kind == tIdent && t.text == "close" && p.peekKind() == tIdent:
		// close ch; — the parenthesized form close(ch) stays a plain call.
		p.bump()
		ch, err := p.ident("channel name")
		if err != nil {
			return nil, err
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &CloseStmt{Chan: ch.text, Line: t.line}, nil
	case t.kind == tPunct && t.text == "<-":
		// <-ch; — a receive whose value is discarded.
		p.bump()
		ch, err := p.ident("channel name")
		if err != nil {
			return nil, err
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &RecvStmt{Chan: ch.text, Line: t.line}, nil
	case t.kind == tIdent && p.peekIs("<-"):
		// ch <- expr; — a channel send.
		ch := p.bump()
		p.bump() // <-
		var val Expr
		if !p.isPunct(";") {
			var err error
			val, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &SendStmt{Chan: ch.text, Value: val, Line: t.line}, nil
	case t.kind == tIdent && t.text == "return":
		p.bump()
		var x Expr
		if !p.isPunct(";") {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{x, t.line}, nil
	case t.kind == tIdent && typeNames[t.text]:
		// Declaration: type name [= expr] ;
		if err := p.skipTypeTokens(); err != nil {
			return nil, err
		}
		name, err := p.ident("variable name")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.isPunct("=") {
			p.bump()
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &DeclStmt{name.text, init, t.line}, nil
	case t.kind == tIdent && p.peekIs("="):
		name := p.bump()
		p.bump() // =
		if p.isPunct("<-") {
			// x = <-ch; — a receive into x.
			p.bump()
			ch, err := p.ident("channel name")
			if err != nil {
				return nil, err
			}
			if _, err := p.punct(";"); err != nil {
				return nil, err
			}
			return &RecvStmt{Chan: ch.text, AssignTo: name.text, Line: t.line}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{name.text, x, t.line}, nil
	case t.kind == tPunct && t.text == "*":
		// Store through a pointer: *name = expr;
		p.bump()
		name, err := p.ident("pointer name")
		if err != nil {
			return nil, err
		}
		if _, err := p.punct("="); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &StoreStmt{name.text, x, t.line}, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{x, t.line}, nil
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	line := p.bump().line // if
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	thenS, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	var elseS []Stmt
	if p.cur().kind == tIdent && p.cur().text == "else" {
		p.bump()
		elseS, err = p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{cond, thenS, elseS, line}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	line := p.bump().line // while
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
}

func (p *parser) doWhileStmt() (Stmt, error) {
	line := p.bump().line // do
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tIdent || t.text != "while" {
		return nil, p.errf(t, "expected 'while' after do-body")
	}
	p.bump()
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	if _, err := p.punct(";"); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Cond: cond, Body: body, Line: line}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	line := p.bump().line // for
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	f := &ForStmt{Line: line}
	// Init clause: a declaration or expression statement ending in ';'
	// (stmt() consumes the semicolon), or just ';'.
	if p.isPunct(";") {
		p.bump()
	} else {
		init, err := p.simpleClause()
		if err != nil {
			return nil, err
		}
		f.Init = init
		if _, err := p.punct(";"); err != nil {
			return nil, err
		}
	}
	if !p.isPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.punct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.simpleClause()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// simpleClause parses a declaration, assignment, store or expression
// WITHOUT consuming a trailing semicolon (for for-clauses).
func (p *parser) simpleClause() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tIdent && typeNames[t.text]:
		if err := p.skipTypeTokens(); err != nil {
			return nil, err
		}
		name, err := p.ident("variable name")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.isPunct("=") {
			p.bump()
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return &DeclStmt{name.text, init, t.line}, nil
	case t.kind == tIdent && p.peekIs("="):
		name := p.bump()
		p.bump()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{name.text, x, t.line}, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{x, t.line}, nil
	}
}

func (p *parser) switchStmt() (Stmt, error) {
	line := p.bump().line // switch
	if _, err := p.punct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.punct(")"); err != nil {
		return nil, err
	}
	if _, err := p.punct("{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Cond: cond, Line: line}
	sawDefault := false
	for !p.isPunct("}") {
		t := p.cur()
		var c SwitchCase
		c.Line = t.line
		switch {
		case t.kind == tIdent && t.text == "case":
			p.bump()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Value = v
		case t.kind == tIdent && t.text == "default":
			if sawDefault {
				return nil, p.errf(t, "duplicate default case")
			}
			sawDefault = true
			p.bump()
			c.IsDefault = true
		default:
			return nil, p.errf(t, "expected 'case' or 'default' in switch")
		}
		if _, err := p.punct(":"); err != nil {
			return nil, err
		}
		for {
			t := p.cur()
			if p.isPunct("}") || (t.kind == tIdent && (t.text == "case" || t.text == "default")) {
				break
			}
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if st != nil {
				c.Body = append(c.Body, st)
			}
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.bump() // }
	return sw, nil
}

func (p *parser) stmtAsBlock() ([]Stmt, error) {
	st, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, nil
	}
	if b, ok := st.(*BlockStmt); ok {
		return b.Body, nil
	}
	return []Stmt{st}, nil
}

// Expression parsing: precedence climbing over a small operator set.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			break
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			break
		}
		op := p.bump().text
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{op, lhs, rhs}
	}
	return lhs, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "!" || t.text == "-" || t.text == "&" || t.text == "*") {
		p.bump()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{t.text, x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.bump()
		return &NumExpr{t.text}, nil
	case tString:
		p.bump()
		return &StrExpr{t.text}, nil
	case tIdent:
		p.bump()
		if p.isPunct("(") {
			p.bump()
			var args []Expr
			if !p.isPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.isPunct(",") {
						p.bump()
						continue
					}
					break
				}
			}
			if _, err := p.punct(")"); err != nil {
				return nil, err
			}
			return &CallExpr{t.text, args, t.line}, nil
		}
		return &IdentExpr{t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.bump()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.punct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf(t, "expected expression, found %q", t.text)
}
