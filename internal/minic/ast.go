package minic

import (
	"fmt"
	"strings"
)

// Program is a parsed translation unit.
type Program struct {
	Funcs  []*FuncDef
	ByName map[string]*FuncDef
}

// FuncDef is a function definition.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
	// File is the source file the definition came from, when the front
	// end tracks one (multi-file Go translation); "" otherwise.
	File string
}

// Stmt is a statement.
type Stmt interface{ stmt() }

// ExprStmt is an expression used as a statement (typically a call).
type ExprStmt struct {
	X    Expr
	Line int
}

// DeclStmt declares a local, optionally initialized.
type DeclStmt struct {
	Name string
	Init Expr // may be nil
	Line int
}

// AssignStmt assigns to a local.
type AssignStmt struct {
	Name string
	X    Expr
	Line int
}

// StoreStmt assigns through a pointer: *name = x.
type StoreStmt struct {
	Name string
	X    Expr
	Line int
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Line int
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond  Expr
	Body  []Stmt
	Line  int
	Label string
}

// DoWhileStmt is a do { } while (cond); loop: the body executes at least
// once.
type DoWhileStmt struct {
	Cond  Expr
	Body  []Stmt
	Line  int
	Label string
}

// ForStmt is for (init; cond; post) body. Init and Post may be nil.
type ForStmt struct {
	Init  Stmt
	Cond  Expr // may be nil (infinite)
	Post  Stmt
	Body  []Stmt
	Line  int
	Label string
}

// BreakStmt exits the innermost loop or switch, or the enclosing
// statement named Label when one is set.
type BreakStmt struct {
	Line  int
	Label string
}

// ContinueStmt jumps to the innermost loop's head, or the head of the
// enclosing loop named Label when one is set.
type ContinueStmt struct {
	Line  int
	Label string
}

// SwitchStmt is a C switch with fallthrough semantics.
type SwitchStmt struct {
	Cond Expr
	// Cases in source order; a case with IsDefault set has no Value.
	Cases []SwitchCase
	Line  int
	Label string
}

// SwitchCase is one case (or default) arm.
type SwitchCase struct {
	Value     Expr // nil for default
	IsDefault bool
	Body      []Stmt
	Line      int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BlockStmt is a nested block. A labeled block is a break target
// (Go's "L: { ... break L }" and labeled non-loop statements).
type BlockStmt struct {
	Body  []Stmt
	Line  int
	Label string
}

// SpawnStmt starts a new thread of control (a goroutine) executing Call;
// the spawning function continues immediately and never joins the
// spawned call's return. Arguments are evaluated by the spawner.
type SpawnStmt struct {
	Call *CallExpr
	Line int
}

// SendStmt sends on a channel: ch <- value. Value may be nil.
type SendStmt struct {
	Chan  string
	Value Expr
	Line  int
}

// RecvStmt receives from a channel, optionally assigning the received
// value: x = <-ch, or bare <-ch when AssignTo is "".
type RecvStmt struct {
	Chan     string
	AssignTo string
	Line     int
}

// CloseStmt closes a channel.
type CloseStmt struct {
	Chan string
	Line int
}

// AccessStmt records a read or write of a shared (package-level)
// variable. The Go front end emits these for the concurrency checkers;
// they have no effect on the sequential analyses.
type AccessStmt struct {
	Name  string
	Write bool
	Line  int
}

func (*ExprStmt) stmt()     {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*StoreStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*SwitchStmt) stmt()   {}
func (*ReturnStmt) stmt()   {}
func (*BlockStmt) stmt()    {}
func (*SpawnStmt) stmt()    {}
func (*SendStmt) stmt()     {}
func (*RecvStmt) stmt()     {}
func (*CloseStmt) stmt()    {}
func (*AccessStmt) stmt()   {}

// Expr is an expression.
type Expr interface {
	expr()
	// Render gives a compact source-like form, used to match event-rule
	// argument patterns.
	Render() string
}

// CallExpr is a function call.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// IdentExpr is an identifier use.
type IdentExpr struct{ Name string }

// NumExpr is a numeric literal (kept as text).
type NumExpr struct{ Text string }

// StrExpr is a string literal.
type StrExpr struct{ Text string }

// UnaryExpr is a prefix operator application.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr is a binary operator application.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*CallExpr) expr()  {}
func (*IdentExpr) expr() {}
func (*NumExpr) expr()   {}
func (*StrExpr) expr()   {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}

// Render implements Expr.
func (e *CallExpr) Render() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Render()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ","))
}

// Render implements Expr.
func (e *IdentExpr) Render() string { return e.Name }

// Render implements Expr.
func (e *NumExpr) Render() string { return e.Text }

// Render implements Expr.
func (e *StrExpr) Render() string { return "\"" + e.Text + "\"" }

// Render implements Expr.
func (e *UnaryExpr) Render() string { return e.Op + e.X.Render() }

// Render implements Expr.
func (e *BinExpr) Render() string {
	return e.L.Render() + e.Op + e.R.Render()
}

// Calls appends every call expression within e in evaluation order
// (arguments before the call itself) to dst and returns it.
func Calls(e Expr, dst []*CallExpr) []*CallExpr {
	switch x := e.(type) {
	case *CallExpr:
		for _, a := range x.Args {
			dst = Calls(a, dst)
		}
		dst = append(dst, x)
	case *UnaryExpr:
		dst = Calls(x.X, dst)
	case *BinExpr:
		dst = Calls(x.L, dst)
		dst = Calls(x.R, dst)
	}
	return dst
}
