package minic

import (
	"strings"
	"testing"
)

const section63 = `
void main() {
    seteuid(0);           // acquire privilege
    if (cond) {
        seteuid(getuid()); // drop privilege
    } else {
        other();
    }
    execl("/bin/sh", "sh");
}
`

func TestParseSection63(t *testing.T) {
	prog, err := Parse(section63)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatal("expected a single main function")
	}
	body := prog.Funcs[0].Body
	if len(body) != 3 {
		t.Fatalf("main has %d statements, want 3", len(body))
	}
	if _, ok := body[1].(*IfStmt); !ok {
		t.Error("second statement should be an if")
	}
}

func TestParseFunctionsAndCalls(t *testing.T) {
	src := `
int helper(int x, int y) {
    return x + y;
}
void main() {
    int a = helper(1, 2);
    a = helper(a, 3);
    helper(a, a);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatal("expected two functions")
	}
	if got := prog.ByName["helper"].Params; len(got) != 2 || got[0] != "x" {
		t.Errorf("params = %v", got)
	}
}

func TestParseWhileAndNesting(t *testing.T) {
	src := `
void main() {
    while (i < 10) {
        if (x) { f(); } else g();
        i = i + 1;
    }
    h();
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := prog.ByName["main"].Body[0].(*WhileStmt)
	if !ok {
		t.Fatal("expected while")
	}
	if len(w.Body) != 2 {
		t.Errorf("while body has %d stmts, want 2", len(w.Body))
	}
}

func TestParseComments(t *testing.T) {
	src := "/* block */ void main() { // line\n f(); /* mid */ g(); }\n#include <ignored>\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.ByName["main"].Body) != 2 {
		t.Error("comments broke statement parsing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "empty program"},
		{"void main() { f( }", "expected expression"},
		{"void main() { f() }", "expected \";\""},
		{"main() {}", "expected type name"},
		{"void main() { \"unterminated }", "unterminated string"},
		{"void main() {} void main() {}", "duplicate function"},
		{"void main() { @; }", "unexpected character"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestExprRender(t *testing.T) {
	src := `void main() { seteuid(getuid()); x = a + b * 2; y = !z; }`
	prog := MustParse(src)
	es := prog.ByName["main"].Body[0].(*ExprStmt)
	if got := es.X.Render(); got != "seteuid(getuid())" {
		t.Errorf("Render = %q", got)
	}
}

func TestCallsOrder(t *testing.T) {
	src := `void main() { outer(inner1(), inner2(x)); }`
	prog := MustParse(src)
	es := prog.ByName["main"].Body[0].(*ExprStmt)
	calls := Calls(es.X, nil)
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}
	if calls[0].Name != "inner1" || calls[1].Name != "inner2" || calls[2].Name != "outer" {
		t.Errorf("order = %s,%s,%s", calls[0].Name, calls[1].Name, calls[2].Name)
	}
}

func TestCFGSection63(t *testing.T) {
	g := MustBuild(MustParse(section63))
	// Actions: seteuid(0); getuid; seteuid(getuid()); other(); execl = 5.
	if got := g.NumActions(); got != 5 {
		t.Errorf("NumActions = %d, want 5", got)
	}
	entry := g.Nodes[g.Entry["main"]]
	if entry.Kind != NEntry || len(entry.Succs) != 1 {
		t.Fatal("entry should have one successor")
	}
	// The seteuid(0) node branches to the two arms eventually; the execl
	// node should flow to exit.
	var execl *Node
	for _, n := range g.Nodes {
		if n.Kind == NAction && n.Call.Name == "execl" {
			execl = n
		}
	}
	if execl == nil {
		t.Fatal("execl node missing")
	}
	if len(execl.Succs) != 1 || execl.Succs[0] != g.Exit["main"] {
		t.Error("execl should flow to exit")
	}
}

func TestCFGIfJoin(t *testing.T) {
	src := `void main() { if (c) { a(); } else { b(); } d(); }`
	g := MustBuild(MustParse(src))
	var dNode *Node
	preds := map[int]int{}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
		if n.Kind == NAction && n.Call.Name == "d" {
			dNode = n
		}
	}
	if dNode == nil {
		t.Fatal("d node missing")
	}
	if preds[dNode.ID] != 2 {
		t.Errorf("d has %d predecessors, want 2 (both arms)", preds[dNode.ID])
	}
}

func TestCFGWhileLoop(t *testing.T) {
	src := `void main() { while (c) { a(); } b(); }`
	g := MustBuild(MustParse(src))
	var head *Node
	var aNode, bNode *Node
	for _, n := range g.Nodes {
		switch {
		case n.Kind == NJoin:
			head = n
		case n.Kind == NAction && n.Call.Name == "a":
			aNode = n
		case n.Kind == NAction && n.Call.Name == "b":
			bNode = n
		}
	}
	if head == nil || aNode == nil || bNode == nil {
		t.Fatal("missing nodes")
	}
	// Back edge: a -> head.
	found := false
	for _, s := range aNode.Succs {
		if s == head.ID {
			found = true
		}
	}
	if !found {
		t.Error("missing loop back edge")
	}
	// Loop exit: head -> b (cond has no calls, so head is the cond tail).
	found = false
	for _, s := range head.Succs {
		if s == bNode.ID {
			found = true
		}
	}
	if !found {
		t.Error("missing loop exit edge")
	}
}

func TestCFGReturnStopsFlow(t *testing.T) {
	src := `void main() { a(); return; b(); }`
	g := MustBuild(MustParse(src))
	var bNode *Node
	preds := map[int]int{}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
		if n.Kind == NAction && n.Call.Name == "b" {
			bNode = n
		}
	}
	if bNode == nil {
		t.Fatal("b node missing (unreachable nodes are still built)")
	}
	if preds[bNode.ID] != 0 {
		t.Error("b should be unreachable")
	}
	// a flows to exit.
	var aNode *Node
	for _, n := range g.Nodes {
		if n.Kind == NAction && n.Call.Name == "a" {
			aNode = n
		}
	}
	if len(aNode.Succs) != 1 || aNode.Succs[0] != g.Exit["main"] {
		t.Error("a should flow to exit via return")
	}
}

func TestPrivilegeEventMap(t *testing.T) {
	m := PrivilegeEvents()
	prog := MustParse(section63)
	g := MustBuild(prog)
	var syms []string
	for _, n := range g.Nodes {
		if n.Kind != NAction {
			continue
		}
		if ev, ok := m.Match(n.Call, n.AssignTo); ok {
			syms = append(syms, ev.Symbol)
		}
	}
	want := []string{"seteuid_zero", "seteuid_nonzero", "execl"}
	if len(syms) != len(want) {
		t.Fatalf("events = %v, want %v", syms, want)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, syms[i], want[i])
		}
	}
}

func TestFileEventMap(t *testing.T) {
	src := `
void main() {
    int fd1 = open("file1", O_RDONLY);
    int fd2 = open("file2", O_RDONLY);
    close(fd1);
}
`
	m := FileEvents()
	g := MustBuild(MustParse(src))
	type ev struct{ sym, label string }
	var got []ev
	for _, n := range g.Nodes {
		if n.Kind != NAction {
			continue
		}
		if e, ok := m.Match(n.Call, n.AssignTo); ok {
			got = append(got, ev{e.Symbol, e.Label})
		}
	}
	want := []ev{{"open", "fd1"}, {"open", "fd2"}, {"close", "fd1"}}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEventMapUnmatched(t *testing.T) {
	m := PrivilegeEvents()
	call := &CallExpr{Name: "printf", Args: nil, Line: 1}
	if _, ok := m.Match(call, ""); ok {
		t.Error("printf should not match")
	}
	// seteuid with no args matches nothing (ArgIndex out of range).
	if _, ok := m.Match(&CallExpr{Name: "seteuid", Line: 1}, ""); ok {
		t.Error("seteuid with no args should not match")
	}
}

func TestAnonymousLabel(t *testing.T) {
	m := FileEvents()
	// open(...) not assigned anywhere still gets a distinct label.
	e, ok := m.Match(&CallExpr{Name: "open", Args: nil, Line: 42}, "")
	if !ok || e.Label != "open@42" {
		t.Errorf("event = %+v", e)
	}
}
