package minic

// Rule maps calls to property-automaton alphabet symbols. The first
// matching rule wins. A rule can inspect one argument's rendered source
// text and can derive a parametric label (§6.4) from an argument or from
// the variable the call's result is assigned to.
type Rule struct {
	// Callee is the called function's name.
	Callee string
	// ArgIndex selects the inspected argument; -1 inspects nothing.
	ArgIndex int
	// Equals, if non-empty, requires the inspected argument's rendering
	// to equal it.
	Equals string
	// NotEquals, if non-empty, requires the rendering to differ from it.
	NotEquals string
	// Symbol is the produced alphabet symbol.
	Symbol string
	// LabelArg, if >= 0, makes the event parametric with the label taken
	// from that argument's rendering.
	LabelArg int
	// LabelFromAssign makes the event parametric with the label taken
	// from the assigned variable ("int fd = open(...)" labels fd).
	LabelFromAssign bool
}

// EventMap is an ordered rule list.
type EventMap struct {
	Rules []Rule
}

// Event is a matched program event.
type Event struct {
	Symbol string
	// Label is the parameter instantiation, "" for non-parametric events.
	Label string
}

// Match returns the event for a call (with the assignment target, if
// any), or ok=false when the call is not property-relevant.
func (m *EventMap) Match(call *CallExpr, assignTo string) (Event, bool) {
	for _, r := range m.Rules {
		if r.Callee != call.Name {
			continue
		}
		if r.ArgIndex >= 0 {
			if r.ArgIndex >= len(call.Args) {
				continue
			}
			got := call.Args[r.ArgIndex].Render()
			if r.Equals != "" && got != r.Equals {
				continue
			}
			if r.NotEquals != "" && got == r.NotEquals {
				continue
			}
		}
		ev := Event{Symbol: r.Symbol}
		switch {
		case r.LabelFromAssign:
			if assignTo == "" {
				// An unassigned resource: label by call site line so
				// distinct sites stay distinct.
				ev.Label = anonLabel(call)
			} else {
				ev.Label = assignTo
			}
		case r.LabelArg >= 0:
			if r.LabelArg < len(call.Args) {
				ev.Label = call.Args[r.LabelArg].Render()
			} else {
				ev.Label = anonLabel(call)
			}
		}
		return ev, true
	}
	return Event{}, false
}

func anonLabel(call *CallExpr) string {
	return call.Name + "@" + itoa(call.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// PrivilegeEvents is the event map for the process-privilege property of
// Figure 3 (seteuid(0) grants, seteuid(non-zero) drops, execl is the
// guarded operation).
func PrivilegeEvents() *EventMap {
	return &EventMap{Rules: []Rule{
		{Callee: "seteuid", ArgIndex: 0, Equals: "0", Symbol: "seteuid_zero"},
		{Callee: "seteuid", ArgIndex: 0, NotEquals: "0", Symbol: "seteuid_nonzero"},
		{Callee: "execl", ArgIndex: -1, Symbol: "execl"},
	}}
}

// FileEvents is the event map for the file-state property of Figure 5:
// open(...) is labelled with the assigned descriptor, close(fd) with its
// argument.
func FileEvents() *EventMap {
	return &EventMap{Rules: []Rule{
		{Callee: "open", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "close", ArgIndex: -1, Symbol: "close", LabelArg: 0},
	}}
}
