package minic

import (
	"testing"

	"rasc/internal/synth"
)

func BenchmarkParseLarge(b *testing.B) {
	src := synth.Generate(synth.Config{Seed: 1, Functions: 500, StmtsPerFn: 40,
		CallProb: 0.08, BranchProb: 0.12, LoopProb: 0.05, SafePatterns: 10, UnsafePatterns: 2, FullProperty: true})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
