package monoid

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rasc/internal/dfa"
)

func oneBit() *dfa.DFA {
	alpha := dfa.NewAlphabet("g", "k")
	d := dfa.NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	return d
}

func privilege() *dfa.DFA {
	alpha := dfa.NewAlphabet("seteuid0", "seteuidN", "execl")
	d := dfa.NewDFA(alpha, 3, 0)
	s0, _ := alpha.Lookup("seteuid0")
	sN, _ := alpha.Lookup("seteuidN")
	ex, _ := alpha.Lookup("execl")
	d.SetTransition(0, s0, 1)
	d.SetTransition(1, sN, 0)
	d.SetTransition(1, ex, 2)
	d.SetAccept(2)
	return d.CompleteSelfLoop()
}

// §3.3: for the 1-bit gen/kill language, F^≡ = {f_ε, f_g, f_k}.
func TestOneBitMonoid(t *testing.T) {
	m, err := Build(oneBit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("|F^≡| = %d, want 3 (f_ε, f_g, f_k)", m.Size())
	}
	fg, ok := m.SymbolFuncByName("g")
	if !ok {
		t.Fatal("g not found")
	}
	fk, _ := m.SymbolFuncByName("k")
	// Idempotence of gens and kills (§3.3).
	if m.Then(fg, fg) != fg {
		t.Error("f_g then f_g should be f_g")
	}
	if m.Then(fk, fk) != fk {
		t.Error("f_k then f_k should be f_k")
	}
	// A gen cancels an adjacent kill: word gk behaves like k, kg like g.
	if m.Then(fg, fk) != fk {
		t.Error("word gk should act as f_k")
	}
	if m.Then(fk, fg) != fg {
		t.Error("word kg should act as f_g")
	}
	// Accepting functions: only f_g reaches the accept state from start.
	if !m.Accepting(fg) || m.Accepting(fk) || m.Accepting(m.Identity()) {
		t.Error("wrong F_accept for 1-bit machine")
	}
}

func TestIdentityLaws(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Identity()
	for f := FuncID(0); int(f) < m.Size(); f++ {
		if m.Then(e, f) != f || m.Then(f, e) != f {
			t.Fatalf("identity law fails for %s", m.String(f))
		}
	}
}

func TestAssociativity(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Size()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				fa, fb, fc := FuncID(a), FuncID(b), FuncID(c)
				if m.Then(m.Then(fa, fb), fc) != m.Then(fa, m.Then(fb, fc)) {
					t.Fatalf("associativity fails at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

// The Figure 4 functions: f_0 = seteuid(0), f_1 = seteuid(!0), f_2 = execl.
func TestPrivilegeRepresentativeFunctions(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		unpriv = dfa.State(0)
		priv   = dfa.State(1)
		errSt  = dfa.State(2)
	)
	f0, _ := m.SymbolFuncByName("seteuid0")
	f1, _ := m.SymbolFuncByName("seteuidN")
	f2, _ := m.SymbolFuncByName("execl")
	check := func(f FuncID, want [3]dfa.State, name string) {
		for s := 0; s < 3; s++ {
			if got := m.Apply(f, dfa.State(s)); got != want[s] {
				t.Errorf("%s(%d) = %d, want %d", name, s, got, want[s])
			}
		}
	}
	check(f0, [3]dfa.State{priv, priv, errSt}, "f_0")
	check(f1, [3]dfa.State{unpriv, unpriv, errSt}, "f_1")
	check(f2, [3]dfa.State{unpriv, errSt, errSt}, "f_2")

	// §6.3 path: f_2 ∘ f_0 (word seteuid0·execl) maps Unpriv to Error.
	path := m.Then(f0, f2)
	if m.Apply(path, unpriv) != errSt {
		t.Error("seteuid(0); execl() should reach Error from Unpriv")
	}
	if !m.Accepting(path) {
		t.Error("the violating path's function must be accepting")
	}
	// Dropping privilege first is safe: f_0 then f_1 then f_2.
	safe := m.Then(m.Then(f0, f1), f2)
	if m.Accepting(safe) {
		t.Error("seteuid(0); seteuid(!0); execl() must not accept")
	}
}

// §4, Figure 2: the adversarial machine's monoid is the full transformation
// monoid with |S|^|S| elements.
func TestAdversarialMachineFullMonoid(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		m, err := Build(Adversarial(n), 1<<20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int(math.Pow(float64(n), float64(n)))
		if m.Size() != want {
			t.Errorf("n=%d: |F^≡| = %d, want %d", n, m.Size(), want)
		}
	}
}

func TestBuildLimit(t *testing.T) {
	_, err := Build(Adversarial(5), 100) // 5^5 = 3125 > 100
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	// Counter-expanded machines hit this path routinely (their products can
	// be large), so the failure must be a wrapped sentinel naming the limit,
	// never a panic or an anonymous error.
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("error %q is not ErrTooLarge", err)
	}
	if !strings.Contains(err.Error(), "more than 100") {
		t.Errorf("error %q does not name the limit", err)
	}
}

// Property: Then(f,g) agrees with word concatenation on random words.
func TestQuickThenMatchesConcatenation(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	nsym := m.M.Alpha.Size()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w1 := make([]dfa.Symbol, r.Intn(6))
		for i := range w1 {
			w1[i] = dfa.Symbol(r.Intn(nsym))
		}
		w2 := make([]dfa.Symbol, r.Intn(6))
		for i := range w2 {
			w2[i] = dfa.Symbol(r.Intn(nsym))
		}
		lhs := m.Then(m.FuncOfWord(w1), m.FuncOfWord(w2))
		rhs := m.FuncOfWord(append(append([]dfa.Symbol{}, w1...), w2...))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the witness word of every function realizes that function.
func TestWitnessesRealizeFunctions(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for f := FuncID(0); int(f) < m.Size(); f++ {
		if m.FuncOfWord(m.Witness(f)) != f {
			t.Errorf("witness of %s does not realize it", m.String(f))
		}
	}
}

// Property: Accepting(f) iff the machine accepts f's witness word.
func TestAcceptingMatchesMachine(t *testing.T) {
	for _, machine := range []*dfa.DFA{oneBit(), privilege(), Adversarial(3)} {
		m, err := Build(machine, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		for f := FuncID(0); int(f) < m.Size(); f++ {
			w := m.Witness(f)
			if m.Accepting(f) != machine.Complete().Accepts(w) {
				t.Errorf("Accepting disagrees with machine on %v", w)
			}
		}
	}
}

func TestRightClass(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := m.SymbolFuncByName("seteuid0")
	if m.RightClass(f0) != 1 {
		t.Errorf("RightClass(f_0) = %d, want Priv(1)", m.RightClass(f0))
	}
	if m.RightClass(m.Identity()) != m.M.Start {
		t.Error("RightClass(identity) should be the start state")
	}
	// Right classes are a quotient: Then preserves them on the left arg.
	// (g∘f)(s0) depends on f only through f(s0).
	for a := 0; a < m.Size(); a++ {
		for b := 0; b < m.Size(); b++ {
			fa, fb := FuncID(a), FuncID(b)
			if m.RightClass(m.Then(fa, fb)) != m.Apply(fb, m.RightClass(fa)) {
				t.Fatal("right congruence not respected by Then")
			}
		}
	}
}

func TestLeftClass(t *testing.T) {
	m, err := Build(oneBit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fg, _ := m.SymbolFuncByName("g")
	fk, _ := m.SymbolFuncByName("k")
	if m.LeftClass(fg) != 0b11 {
		t.Errorf("LeftClass(f_g) = %b, want 11 (accepts from both states)", m.LeftClass(fg))
	}
	if m.LeftClass(fk) != 0 {
		t.Errorf("LeftClass(f_k) = %b, want 0", m.LeftClass(fk))
	}
	if m.LeftClass(m.Identity()) != 0b10 {
		t.Errorf("LeftClass(f_ε) = %b, want 10 (accept only from state 1)", m.LeftClass(m.Identity()))
	}
}

func TestFuncOfNames(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := m.FuncOfNames("seteuid0", "execl")
	if !ok || !m.Accepting(f) {
		t.Error("seteuid0·execl should be an accepting class")
	}
	if _, ok := m.FuncOfNames("bogus"); ok {
		t.Error("unknown symbol should fail")
	}
}

func TestStringRendering(t *testing.T) {
	m, err := Build(oneBit(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.String(m.Identity()); s == "" {
		t.Error("empty rendering")
	}
	fg, _ := m.SymbolFuncByName("g")
	if s := m.String(fg); s == "" {
		t.Error("empty rendering")
	}
}

// Dead classes: words that are not substrings of L(M). For the privilege
// machine every state reaches the accepting Error sink, so nothing is
// dead; for a machine with a dead completion state, compositions that
// fall into it are dead and absorbing.
func TestDeadClasses(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for f := FuncID(0); int(f) < m.Size(); f++ {
		if m.Dead(f) {
			t.Errorf("privilege machine has no dead classes, but %s is dead", m.String(f))
		}
	}

	// L = {ab} exactly: "ba" is not a substring, so f_b∘f_a ... word "ba"
	// must be dead; "a", "b", "ab" are substrings (live).
	alpha := dfa.NewAlphabet("a", "b")
	d := dfa.NewDFA(alpha, 3, 0)
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	d.SetTransition(0, a, 1)
	d.SetTransition(1, b, 2)
	d.SetAccept(2)
	m2, err := Build(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := m2.FuncOfNames("a")
	fb, _ := m2.FuncOfNames("b")
	fab, _ := m2.FuncOfNames("a", "b")
	fba, _ := m2.FuncOfNames("b", "a")
	faa, _ := m2.FuncOfNames("a", "a")
	if m2.Dead(fa) || m2.Dead(fb) || m2.Dead(fab) {
		t.Error("substrings of ab must be live")
	}
	if !m2.Dead(fba) {
		t.Error("ba is not a substring of ab: must be dead")
	}
	if !m2.Dead(faa) {
		t.Error("aa is not a substring of ab: must be dead")
	}
	// Dead is absorbing.
	for g := FuncID(0); int(g) < m2.Size(); g++ {
		if !m2.Dead(m2.Then(fba, g)) || !m2.Dead(m2.Then(g, fba)) {
			t.Fatal("dead classes must be absorbing under composition")
		}
	}
	// Dead agrees with the substring machine's language on witnesses.
	sub := dfa.SubstringMachine(d)
	for f := FuncID(0); int(f) < m2.Size(); f++ {
		if m2.Dead(f) == sub.Accepts(m2.Witness(f)) {
			t.Errorf("Dead(%s) inconsistent with M^sub", m2.String(f))
		}
	}
}

// Theorem 2.1 / Myhill-Nerode: two words with the same representative
// function are ≡_M — acceptance of x·w·y depends on w only through its
// function. Randomized check over the privilege machine.
func TestQuickTheorem21(t *testing.T) {
	m, err := Build(privilege(), 0)
	if err != nil {
		t.Fatal(err)
	}
	machine := m.M
	nsym := machine.Alpha.Size()
	randWord := func(r *rand.Rand, n int) []dfa.Symbol {
		w := make([]dfa.Symbol, r.Intn(n))
		for i := range w {
			w[i] = dfa.Symbol(r.Intn(nsym))
		}
		return w
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w1, w2 := randWord(r, 6), randWord(r, 6)
		if m.FuncOfWord(w1) != m.FuncOfWord(w2) {
			return true // different classes: nothing to check
		}
		for i := 0; i < 20; i++ {
			x, y := randWord(r, 4), randWord(r, 4)
			xw1y := append(append(append([]dfa.Symbol{}, x...), w1...), y...)
			xw2y := append(append(append([]dfa.Symbol{}, x...), w2...), y...)
			if machine.Accepts(xw1y) != machine.Accepts(xw2y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
