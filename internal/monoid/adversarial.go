package monoid

import "rasc/internal/dfa"

// Adversarial builds the machine of Figure 2 (§4): an n-state automaton
// over the alphabet {rotate, swap, merge} whose transition monoid contains
// every one of the n^n functions from states to states, demonstrating that
// |F_M^≡| can be superexponential in |S|.
//
//   - rotate maps state i to state i+1 mod n,
//   - swap exchanges states 0 and 1 and fixes the rest,
//   - merge maps state 1 to state 0 and fixes the rest.
//
// Rotations and swaps generate all permutations; merge makes the monoid
// the full transformation monoid. State 0 is both start and accept (the
// accept choice is irrelevant to the monoid's size).
func Adversarial(n int) *dfa.DFA {
	alpha := dfa.NewAlphabet("rotate", "swap", "merge")
	d := dfa.NewDFA(alpha, n, 0)
	rot, _ := alpha.Lookup("rotate")
	swp, _ := alpha.Lookup("swap")
	mrg, _ := alpha.Lookup("merge")
	for s := 0; s < n; s++ {
		d.SetTransition(dfa.State(s), rot, dfa.State((s+1)%n))
		switch s {
		case 0:
			d.SetTransition(dfa.State(s), swp, 1)
			d.SetTransition(dfa.State(s), mrg, 0)
		case 1:
			d.SetTransition(dfa.State(s), swp, 0)
			d.SetTransition(dfa.State(s), mrg, 0)
		default:
			d.SetTransition(dfa.State(s), swp, dfa.State(s))
			d.SetTransition(dfa.State(s), mrg, dfa.State(s))
		}
	}
	d.SetAccept(0)
	return d
}
