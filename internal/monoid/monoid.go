// Package monoid computes the transition monoid of a DFA: the finite set
// F_M^≡ of "representative functions" of Kodumal and Aiken (PLDI 2007,
// §2.4). Every ≡_M-equivalence class of words corresponds to a unique
// function from states to states (Theorem 2.1); the monoid is the closure
// of the per-symbol transition functions under composition, together with
// the identity (the class of ε).
//
// The package also precomputes the composition table so that the solver's
// transitive-closure rule composes annotations in constant time (§4, §8),
// and exposes the coarser right congruence F_M^≡r used by forward solving
// (§5).
package monoid

import (
	"fmt"
	"strings"

	"rasc/internal/dfa"
)

// FuncID identifies a representative function within a Monoid.
type FuncID int32

// Func is a total function from machine states to machine states,
// represented as a slice indexed by source state.
type Func []dfa.State

// Monoid holds the representative functions of a machine and their
// composition structure.
type Monoid struct {
	M     *dfa.DFA // the underlying total machine
	funcs []Func
	index map[string]FuncID
	// table[f][g] = the function for word(f)·word(g), i.e. g ∘ f.
	table    [][]FuncID
	symGen   []FuncID // per alphabet symbol
	identity FuncID
	// witness[f] is a shortest word realizing f, for diagnostics.
	witness [][]dfa.Symbol
	// dead[f] marks classes of words that are not substrings of L(M):
	// no x, y make x·word(f)·y accepted. Dead classes are absorbing
	// under composition, so a solver may discard them (§3.1: "no work
	// need be done propagating annotations that are necessarily
	// non-accepting").
	dead []bool
	// co[s] marks states from which an accept state is reachable.
	co []bool
	// bytesPerState for the interning key.
	wide bool
}

// ErrTooLarge is returned (wrapped) by Build when the monoid exceeds the
// given limit; see the adversarial machine of §4 (Figure 2), whose monoid
// has |S|^|S| elements.
var ErrTooLarge = fmt.Errorf("monoid: size limit exceeded")

// DefaultLimit is the default cap on monoid size used by Build when the
// caller passes limit <= 0.
const DefaultLimit = 1 << 16

func (m *Monoid) key(f Func) string {
	if !m.wide {
		b := make([]byte, len(f))
		for i, s := range f {
			b[i] = byte(s)
		}
		return string(b)
	}
	b := make([]byte, 2*len(f))
	for i, s := range f {
		b[2*i] = byte(s)
		b[2*i+1] = byte(s >> 8)
	}
	return string(b)
}

// Build computes the transition monoid of machine m (which is completed
// first; Build does not minimize — pass dfa.Minimize(m) to obtain the
// representative functions of the canonical machine). limit caps the
// number of functions; <= 0 means DefaultLimit. The identity (the ε class)
// is always element 0.
func Build(machine *dfa.DFA, limit int) (*Monoid, error) {
	if limit <= 0 {
		limit = DefaultLimit
	}
	machine = machine.Complete()
	n := machine.NumStates
	mo := &Monoid{
		M:     machine,
		index: make(map[string]FuncID),
		wide:  n > 255,
	}

	intern := func(f Func, w []dfa.Symbol) (FuncID, bool, error) {
		k := mo.key(f)
		if id, ok := mo.index[k]; ok {
			return id, false, nil
		}
		if len(mo.funcs) >= limit {
			return 0, false, fmt.Errorf("%w: more than %d representative functions (|S|=%d)", ErrTooLarge, limit, n)
		}
		id := FuncID(len(mo.funcs))
		mo.index[k] = id
		mo.funcs = append(mo.funcs, f)
		mo.witness = append(mo.witness, w)
		return id, true, nil
	}

	// Identity = representative of ε.
	ident := make(Func, n)
	for i := range ident {
		ident[i] = dfa.State(i)
	}
	id0, _, err := intern(ident, nil)
	if err != nil {
		return nil, err
	}
	mo.identity = id0

	// Per-symbol generators.
	nsym := machine.Alpha.Size()
	mo.symGen = make([]FuncID, nsym)
	for sym := 0; sym < nsym; sym++ {
		f := make(Func, n)
		for s := 0; s < n; s++ {
			f[s] = machine.Delta[s][sym]
		}
		gid, _, err := intern(f, []dfa.Symbol{dfa.Symbol(sym)})
		if err != nil {
			return nil, err
		}
		mo.symGen[sym] = gid
	}

	// BFS closure under right-extension by generators: every word is a
	// sequence of symbols, so f_{w·σ} = f_σ ∘ f_w reaches everything.
	for head := 0; head < len(mo.funcs); head++ {
		fw := mo.funcs[head]
		w := mo.witness[head]
		for sym := 0; sym < nsym; sym++ {
			g := mo.funcs[mo.symGen[sym]]
			comp := make(Func, n)
			for s := 0; s < n; s++ {
				comp[s] = g[fw[s]]
			}
			nw := make([]dfa.Symbol, 0, len(w)+1)
			nw = append(append(nw, w...), dfa.Symbol(sym))
			if _, _, err := intern(comp, nw); err != nil {
				return nil, err
			}
		}
	}

	// Composition table: table[f][g] = g ∘ f (word f then word g).
	sz := len(mo.funcs)
	mo.table = make([][]FuncID, sz)
	buf := make(Func, n)
	for i := 0; i < sz; i++ {
		row := make([]FuncID, sz)
		fi := mo.funcs[i]
		for j := 0; j < sz; j++ {
			fj := mo.funcs[j]
			for s := 0; s < n; s++ {
				buf[s] = fj[fi[s]]
			}
			id, ok := mo.index[mo.key(buf)]
			if !ok {
				// Cannot happen: the closure contains all products.
				return nil, fmt.Errorf("monoid: internal error, composition escaped closure")
			}
			row[j] = id
		}
		mo.table[i] = row
	}

	// Dead classes: f is dead iff from every reachable start s, f(s)
	// cannot reach an accept state (word(f) is not a substring of L(M)).
	reach := machine.Reachable()
	co := machine.CoReachable()
	mo.co = co
	mo.dead = make([]bool, sz)
	for i, f := range mo.funcs {
		dead := true
		for s := 0; s < n; s++ {
			if reach[s] && co[f[s]] {
				dead = false
				break
			}
		}
		mo.dead[i] = dead
	}
	return mo, nil
}

// Dead reports whether f's words are not substrings of L(M): no
// extension on either side can ever be accepted. Dead classes are
// absorbing (dead ∘ g and g ∘ dead are dead), so solvers may prune them —
// this is exactly restriction to the substring domain T^{M^sub} of §2.3.
func (m *Monoid) Dead(f FuncID) bool { return m.dead[f] }

// CoReachableState reports whether some accept state is reachable from s
// (used by the forward solver to prune facts outside the prefix domain
// T^{M^pre}).
func (m *Monoid) CoReachableState(s dfa.State) bool {
	return m.co[s]
}

// Size returns |F_M^≡| including the identity.
func (m *Monoid) Size() int { return len(m.funcs) }

// Identity returns the FuncID of the ε class.
func (m *Monoid) Identity() FuncID { return m.identity }

// SymbolFunc returns the representative function of the one-symbol word σ.
func (m *Monoid) SymbolFunc(sym dfa.Symbol) FuncID { return m.symGen[sym] }

// SymbolFuncByName looks up a symbol by name and returns its function.
func (m *Monoid) SymbolFuncByName(name string) (FuncID, bool) {
	sym, ok := m.M.Alpha.Lookup(name)
	if !ok {
		return 0, false
	}
	return m.symGen[sym], true
}

// Then returns the representative function for word(f) followed by
// word(g); in function terms, g ∘ f. This is the constant-time table
// lookup used by the transitive-closure resolution rule.
func (m *Monoid) Then(f, g FuncID) FuncID { return m.table[f][g] }

// Apply evaluates function f at state s.
func (m *Monoid) Apply(f FuncID, s dfa.State) dfa.State { return m.funcs[f][s] }

// Func returns the underlying state function (do not mutate).
func (m *Monoid) Func(f FuncID) Func { return m.funcs[f] }

// Accepting reports whether f represents full words of L(M): f(s0) is an
// accept state. These are the F_accept functions of §3.2.
func (m *Monoid) Accepting(f FuncID) bool {
	return m.M.Accept[m.funcs[f][m.M.Start]]
}

// AcceptingFrom reports whether f leads to an accept state when started at
// state s.
func (m *Monoid) AcceptingFrom(f FuncID, s dfa.State) bool {
	return m.M.Accept[m.funcs[f][s]]
}

// AcceptSet returns the FuncIDs of all accepting functions (F_accept).
func (m *Monoid) AcceptSet() []FuncID {
	var out []FuncID
	for i := range m.funcs {
		if m.Accepting(FuncID(i)) {
			out = append(out, FuncID(i))
		}
	}
	return out
}

// RightClass returns the F_M^≡r class of f: under the right congruence of
// §5, words are distinguished only by the state they reach from s0, so the
// class is represented by f(s0).
func (m *Monoid) RightClass(f FuncID) dfa.State { return m.funcs[f][m.M.Start] }

// StateName renders the state reached from the start state under f — the
// compact form used by provenance output. For counter-expanded machines
// the product state names carry the counter valuation (e.g. "S·c=2").
func (m *Monoid) StateName(f FuncID) string {
	return m.M.NameOf(m.RightClass(f))
}

// LeftClass returns the left-congruence class of f as a bitset over
// states: bit s is set iff f(s) is accepting, i.e. iff s·word(f) would
// accept. Panics if the machine has more than 64 states (our backward
// solver's representation limit).
func (m *Monoid) LeftClass(f FuncID) uint64 {
	if m.M.NumStates > 64 {
		panic("monoid: LeftClass requires at most 64 states")
	}
	var bits uint64
	for s, t := range m.funcs[f] {
		if m.M.Accept[t] {
			bits |= 1 << uint(s)
		}
	}
	return bits
}

// Witness returns a shortest word realizing f (nil for the identity).
func (m *Monoid) Witness(f FuncID) []dfa.Symbol {
	return m.witness[f]
}

// WitnessNames returns Witness as symbol names.
func (m *Monoid) WitnessNames(f FuncID) []string {
	w := m.witness[f]
	out := make([]string, len(w))
	for i, s := range w {
		out[i] = m.M.Alpha.Name(s)
	}
	return out
}

// String renders f for diagnostics, e.g. "f[g]:{0→1,1→1}".
func (m *Monoid) String(f FuncID) string {
	var b strings.Builder
	if f == m.identity {
		b.WriteString("f[ε]")
	} else {
		fmt.Fprintf(&b, "f[%s]", strings.Join(m.WitnessNames(f), " "))
	}
	b.WriteString(":{")
	for s, t := range m.funcs[f] {
		if s > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s→%s", m.M.NameOf(dfa.State(s)), m.M.NameOf(t))
	}
	b.WriteString("}")
	return b.String()
}

// FuncOfWord returns the representative function of an arbitrary word.
func (m *Monoid) FuncOfWord(word []dfa.Symbol) FuncID {
	f := m.identity
	for _, sym := range word {
		f = m.Then(f, m.symGen[sym])
	}
	return f
}

// FuncOfNames is FuncOfWord on symbol names; the second result is false if
// a name is unknown.
func (m *Monoid) FuncOfNames(names ...string) (FuncID, bool) {
	f := m.identity
	for _, n := range names {
		sym, ok := m.M.Alpha.Lookup(n)
		if !ok {
			return 0, false
		}
		f = m.Then(f, m.symGen[sym])
	}
	return f, true
}
