package gosrc

import (
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
	"rasc/internal/spec"
)

// Ready-made properties for Go API-usage checking.

// DoubleLockSpecSrc: locking a sync.Mutex that is already locked
// self-deadlocks; the property is parametric in the mutex (receiver)
// name. Unlocking an unlocked mutex is also an error in Go, so both
// misuses share the Error state.
const DoubleLockSpecSrc = `
start state Unlocked :
    | lock(x) -> Locked
    | unlock(x) -> Error;

state Locked :
    | unlock(x) -> Unlocked
    | lock(x) -> Error;

accept state Error;
`

// DoubleLockProperty compiles DoubleLockSpecSrc.
func DoubleLockProperty() *spec.Property { return spec.MustCompile(DoubleLockSpecSrc) }

// DoubleLockEvents maps mu.Lock()/mu.Unlock() to the property alphabet,
// labelled by the receiver.
func DoubleLockEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Lock", ArgIndex: -1, Symbol: "lock", LabelArg: 0},
		{Callee: "Unlock", ArgIndex: -1, Symbol: "unlock", LabelArg: 0},
	}}
}

// FileLeakSpecSrc: a file opened with os.Open should be closed; the
// accepting Open state at function exit marks a leak (queried with
// OpenInstancesAtExit, like §6.4's descriptor example).
const FileLeakSpecSrc = `
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

// FileLeakProperty compiles FileLeakSpecSrc.
func FileLeakProperty() *spec.Property { return spec.MustCompile(FileLeakSpecSrc) }

// FileLeakEvents: f, err := os.Open(...) opens f; f.Close() closes it.
func FileLeakEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Open", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "OpenFile", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "Create", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "Close", ArgIndex: -1, Symbol: "close", LabelArg: 0},
	}}
}

// SQLRowsSpecSrc: a *sql.Rows returned by Query must be closed before
// the function exits, or the connection is held. Same shape as the file
// leak property: the accepting Open state at exit marks the leak.
const SQLRowsSpecSrc = `
start state Done :
    | query(x) -> Pending;

accept state Pending :
    | close(x) -> Done;
`

// SQLRowsProperty compiles SQLRowsSpecSrc.
func SQLRowsProperty() *spec.Property { return spec.MustCompile(SQLRowsSpecSrc) }

// SQLRowsEvents: rows, err := db.Query(...) opens rows; rows.Close()
// closes them.
func SQLRowsEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Query", ArgIndex: -1, Symbol: "query", LabelArg: -1, LabelFromAssign: true},
		{Callee: "QueryContext", ArgIndex: -1, Symbol: "query", LabelArg: -1, LabelFromAssign: true},
		{Callee: "Close", ArgIndex: -1, Symbol: "close", LabelArg: 0},
	}}
}

// WaitGroupSpecSrc: calling wg.Add after wg.Wait has started is a
// documented sync.WaitGroup misuse (reuse without a new round of Adds
// races with the Wait). Parametric in the wait-group receiver.
const WaitGroupSpecSrc = `
start state Counting :
    | add(x) -> Counting
    | wait(x) -> Waited;

state Waited :
    | wait(x) -> Waited
    | add(x) -> Error;

accept state Error;
`

// WaitGroupProperty compiles WaitGroupSpecSrc.
func WaitGroupProperty() *spec.Property { return spec.MustCompile(WaitGroupSpecSrc) }

// WaitGroupEvents: wg.Add(n) and wg.Wait(), labelled by the receiver.
func WaitGroupEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Add", ArgIndex: -1, Symbol: "add", LabelArg: 0},
		{Callee: "Wait", ArgIndex: -1, Symbol: "wait", LabelArg: 0},
	}}
}

// ChanCloseSpecSrc: closing an already-closed channel and sending on a
// closed channel both panic at run time. The translation exposes channel
// operations as $chan.send/$chan.close calls parametric in the channel,
// so the property is per channel object.
const ChanCloseSpecSrc = `
start state Open :
    | send(x) -> Open
    | close(x) -> Closed;

state Closed :
    | close(x) -> Error
    | send(x) -> Error;

accept state Error;
`

// ChanCloseProperty compiles ChanCloseSpecSrc.
func ChanCloseProperty() *spec.Property { return spec.MustCompile(ChanCloseSpecSrc) }

// ChanCloseEvents: the synthesized $chan.send/$chan.close actions,
// labelled by the channel rendering (argument 0).
func ChanCloseEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "$chan.send", ArgIndex: -1, Symbol: "send", LabelArg: 0},
		{Callee: "$chan.close", ArgIndex: -1, Symbol: "close", LabelArg: 0},
	}}
}

// RWLockSpecSrc: calling RUnlock on a sync.RWMutex with no read lock
// held is a run-time fatal error. A finite property cannot count reader
// depth, so depth two and beyond is an absorbing state (Deep) that never
// errors: nesting is under-approximated rather than false-flagged, and
// only a clearly unmatched RUnlock reaches Error.
const RWLockSpecSrc = `
start state Free :
    | rlock(x) -> R1
    | runlock(x) -> Error;

state R1 :
    | rlock(x) -> Deep
    | runlock(x) -> Free;

state Deep :
    | rlock(x) -> Deep
    | runlock(x) -> Deep;

accept state Error;
`

// RWLockProperty compiles RWLockSpecSrc.
func RWLockProperty() *spec.Property { return spec.MustCompile(RWLockSpecSrc) }

// RWLockEvents: mu.RLock()/mu.RUnlock(), labelled by the receiver.
func RWLockEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "RLock", ArgIndex: -1, Symbol: "rlock", LabelArg: 0},
		{Callee: "RUnlock", ArgIndex: -1, Symbol: "runlock", LabelArg: 0},
	}}
}

// Check translates Go source and model-checks it against the property.
func Check(src string, prop *spec.Property, events *minic.EventMap, entry string, opts core.Options) (*pdm.Result, error) {
	prog, err := Translate(src)
	if err != nil {
		return nil, err
	}
	return pdm.Check(prog, prop, events, entry, opts)
}
