package gosrc

import (
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
	"rasc/internal/spec"
)

// Ready-made properties for Go API-usage checking.

// DoubleLockSpecSrc: locking a sync.Mutex that is already locked
// self-deadlocks; the property is parametric in the mutex (receiver)
// name. Unlocking an unlocked mutex is also an error in Go, so both
// misuses share the Error state.
const DoubleLockSpecSrc = `
start state Unlocked :
    | lock(x) -> Locked
    | unlock(x) -> Error;

state Locked :
    | unlock(x) -> Unlocked
    | lock(x) -> Error;

accept state Error;
`

// DoubleLockProperty compiles DoubleLockSpecSrc.
func DoubleLockProperty() *spec.Property { return spec.MustCompile(DoubleLockSpecSrc) }

// DoubleLockEvents maps mu.Lock()/mu.Unlock() to the property alphabet,
// labelled by the receiver.
func DoubleLockEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Lock", ArgIndex: -1, Symbol: "lock", LabelArg: 0},
		{Callee: "Unlock", ArgIndex: -1, Symbol: "unlock", LabelArg: 0},
	}}
}

// FileLeakSpecSrc: a file opened with os.Open should be closed; the
// accepting Open state at function exit marks a leak (queried with
// OpenInstancesAtExit, like §6.4's descriptor example).
const FileLeakSpecSrc = `
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

// FileLeakProperty compiles FileLeakSpecSrc.
func FileLeakProperty() *spec.Property { return spec.MustCompile(FileLeakSpecSrc) }

// FileLeakEvents: f, err := os.Open(...) opens f; f.Close() closes it.
func FileLeakEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Open", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "OpenFile", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "Create", ArgIndex: -1, Symbol: "open", LabelArg: -1, LabelFromAssign: true},
		{Callee: "Close", ArgIndex: -1, Symbol: "close", LabelArg: 0},
	}}
}

// Check translates Go source and model-checks it against the property.
func Check(src string, prop *spec.Property, events *minic.EventMap, entry string, opts core.Options) (*pdm.Result, error) {
	prog, err := Translate(src)
	if err != nil {
		return nil, err
	}
	return pdm.Check(prog, prop, events, entry, opts)
}
