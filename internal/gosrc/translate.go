// Package gosrc is a Go source front end for the analyses in this
// repository: it parses Go files with go/parser and translates each
// function into the mini-C intermediate form (package minic), so that the
// pushdown model checker (pdm), the post* baseline (mops), the taint
// analysis (bitvector) and the danger-point chop all run unchanged on
// real Go code.
//
// The translation is a sound control-flow abstraction, not a Go semantics:
//
//   - conditions are nondeterministic (both branches possible), as in the
//     rest of the toolkit;
//   - method calls x.M(...) become calls to M with the rendered receiver
//     prepended as argument 0, so parametric properties can label the
//     receiver (mu.Lock() → Lock(mu), matched per mutex name);
//   - defer is expanded: the deferred calls run, in LIFO order, before
//     every return and at the end of the function body;
//   - go f() becomes a spawn statement (minic.SpawnStmt): the spawned
//     call starts a new goroutine in the CFG; go func(){...}() closures
//     are translated into synthesized functions ("f$go1") and spawned;
//   - channel operations become channel statements: ch <- v, <-ch and
//     close(ch) map to minic.SendStmt/RecvStmt/CloseStmt, parametric in
//     the channel's rendering;
//   - sync.Mutex/RWMutex usage keeps per-object lock identities (the
//     receiver rendering), and once.Do(f) becomes a conditional call
//     to f (it runs at most once);
//   - reads and writes of package-level var declarations (except sync,
//     channel and func values) are recorded as shared-variable access
//     statements for the race checker — scope-blind: a local that
//     shadows a package var in a nested scope may be misattributed;
//   - range loops become condition-less loops over the body;
//   - switch (expression and type switches) becomes the branch structure
//     with Go's implicit break, honoring explicit fallthrough;
//   - select branches are all considered possible;
//   - labeled break/continue target the labeled loop or switch; labeled
//     non-loop statements become break targets; goto is NOT modeled (it
//     over-approximates as fall-through) and is reported as a Note.
//
// Plain functions are identified by name; methods are qualified by their
// receiver type ("T.M") so same-named methods on different receivers are
// all analyzed. When a method name is unambiguous across the program, a
// bare-name alias ("M" -> "T.M") is registered so call sites x.M(...)
// resolve interprocedurally; ambiguous method calls stay external calls.
package gosrc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strings"

	"rasc/internal/ir"
	"rasc/internal/minic"
)

// File is one Go source file handed to the translator.
type File = ir.SourceFile

// Note is a translation remark: a construct the abstraction handles
// imprecisely (goto, duplicate definitions, ambiguous method names).
type Note = ir.Note

// Translation is the result of translating a set of Go files.
type Translation struct {
	// Prog is the merged mini-C program; every FuncDef carries the source
	// File it came from.
	Prog *minic.Program
	// Notes lists translation imprecisions, ordered by file then line.
	Notes []Note
	// Ignores maps file name -> line -> checker names named in
	// //rasc:ignore comments on that line. An empty name list means the
	// line suppresses every checker.
	Ignores map[string]map[int][]string
	// FileIgnores maps file name -> checker names named in
	// //rasc:ignore-file comments anywhere in that file. A present file
	// with an empty name list suppresses every checker in the file.
	FileIgnores map[string][]string
	// Shared lists the package-level variables treated as shared state
	// by the concurrency checkers, sorted.
	Shared []string

	gocount int // synthesized goroutine-closure counter
}

// Translate parses a single Go source buffer and translates every
// function (including methods) into a mini-C program. Functions keep
// their Go source line numbers so diagnostics point into the original
// file. Translation notes are discarded; use TranslateFiles to get them.
func Translate(src string) (*minic.Program, error) {
	tr, err := TranslateFiles([]File{{Name: "src.go", Src: src}})
	if err != nil {
		return nil, err
	}
	return tr.Prog, nil
}

// Lower parses and translates a set of Go files and lowers the result
// into the frontend-neutral IR: the kernel program plus its CFG, call
// graph, fingerprints and summary keys, with the translation's notes and
// suppression directives attached as ir.Meta. This is the entry point
// package drivers consume; Translate/TranslateFiles remain for callers
// that want the raw kernel form.
func Lower(files []File) (*ir.Program, error) {
	tr, err := TranslateFiles(files)
	if err != nil {
		return nil, err
	}
	return ir.New(tr.Prog, ir.Meta{
		Notes:       tr.Notes,
		Ignores:     tr.Ignores,
		FileIgnores: tr.FileIgnores,
		Shared:      tr.Shared,
	})
}

// TranslateFiles parses a set of Go files and merges every function
// across them into one mini-C program, so whole-package properties check
// interprocedurally before CFG construction. Files are processed in the
// given order; duplicate definitions keep the first body and add a Note.
func TranslateFiles(files []File) (*Translation, error) {
	fset := token.NewFileSet()
	out := &Translation{
		Prog:        &minic.Program{ByName: map[string]*minic.FuncDef{}},
		Ignores:     map[string]map[int][]string{},
		FileIgnores: map[string][]string{},
	}
	prog := out.Prog
	// Pass 1: parse every file, so package-level shared variables are
	// known before any function body is translated.
	parsed := make([]*ast.File, len(files))
	for i, f := range files {
		file, err := parser.ParseFile(fset, f.Name, f.Src, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("gosrc: %w", err)
		}
		parsed[i] = file
	}
	globals := collectGlobals(fset, parsed)
	for name := range globals {
		out.Shared = append(out.Shared, name)
	}
	sort.Strings(out.Shared)
	// methodsByBare collects method defs per bare name for alias
	// registration once all files are seen.
	methodsByBare := map[string][]*minic.FuncDef{}
	for i, f := range files {
		file := parsed[i]
		tr := &translator{fset: fset, file: f.Name, out: out, globals: globals}
		collectIgnores(fset, f.Name, file, out)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			def, isMethod := tr.funcDecl(fd)
			if def == nil {
				continue
			}
			if isMethod {
				methodsByBare[fd.Name.Name] = append(methodsByBare[fd.Name.Name], def)
			}
		}
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("gosrc: no function bodies found")
	}
	registerAliases(out, methodsByBare)
	sortNotes(out.Notes)
	return out, nil
}

// funcDecl translates one function declaration into t.out's program:
// dup-checks the qualified name (first definition wins, later ones get a
// Note and return nil), translates the body with defers expanded, and
// registers the definition. The second result reports whether the
// declaration is a method (its bare name is an alias candidate).
func (t *translator) funcDecl(fd *ast.FuncDecl) (*minic.FuncDef, bool) {
	name := fd.Name.Name
	isMethod := false
	if fd.Recv != nil {
		if rt := recvTypeName(fd.Recv); rt != "" {
			name = rt + "." + name
			isMethod = true
		}
	}
	prog := t.out.Prog
	if _, dup := prog.ByName[name]; dup {
		// Same qualified name twice (e.g. two files defining
		// main): keep the first body, note the rest.
		t.note(fd.Pos(), fmt.Sprintf("duplicate definition of %s ignored (first wins)", name))
		return nil, false
	}
	t.deferred = nil
	t.fnName = name
	t.locals = localNames(fd)
	def := &minic.FuncDef{
		Name: name,
		Line: t.line(fd.Pos()),
		File: t.file,
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		def.Params = append(def.Params, fd.Recv.List[0].Names[0].Name)
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			for _, n := range p.Names {
				def.Params = append(def.Params, n.Name)
			}
		}
	}
	body := t.block(fd.Body)
	// Deferred calls run at the end of the body (return statements
	// were already expanded inside).
	body = append(body, t.deferredCalls()...)
	def.Body = body
	prog.Funcs = append(prog.Funcs, def)
	prog.ByName[name] = def
	return def, isMethod
}

// registerAliases applies the bare-name alias pass: x.M(...) translates
// to M(x, ...), so a uniquely named method resolves interprocedurally
// through the alias. An ambiguous name (several receivers) stays
// external, noted once. Shared by the one-shot and memoized translation
// paths so both resolve calls identically.
func registerAliases(out *Translation, methodsByBare map[string][]*minic.FuncDef) {
	prog := out.Prog
	for bare, defs := range methodsByBare {
		if _, taken := prog.ByName[bare]; taken {
			continue // a plain function M shadows method aliases
		}
		if len(defs) == 1 {
			prog.ByName[bare] = defs[0]
			continue
		}
		out.Notes = append(out.Notes, Note{
			File: defs[0].File,
			Line: defs[0].Line,
			Msg: fmt.Sprintf("method name %s is defined on %d receivers; calls through it are treated as external",
				bare, len(defs)),
		})
	}
}

// recvTypeName extracts the receiver's base type name: *T -> T,
// T[P] -> T.
func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	typ := recv.List[0].Type
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.IndexExpr:
			typ = t.X
		case *ast.IndexListExpr:
			typ = t.X
		case *ast.ParenExpr:
			typ = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// collectGlobals gathers package-level var names across all files; these
// are the shared variables the concurrency checkers track. Variables of
// synchronization or function shape (sync.*, channels, funcs) are
// excluded: they are modeled as events, not data.
func collectGlobals(fset *token.FileSet, files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || syncShaped(fset, vs) {
					continue
				}
				for _, n := range vs.Names {
					if n.Name != "_" {
						out[n.Name] = true
					}
				}
			}
		}
	}
	return out
}

// syncShaped reports whether a var spec's type or initializer names a
// synchronization or function type (type-blind, by rendering).
func syncShaped(fset *token.FileSet, vs *ast.ValueSpec) bool {
	check := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, e); err != nil {
			return false
		}
		s := buf.String()
		return strings.Contains(s, "sync.") || containsWord(s, "chan") || containsWord(s, "func")
	}
	if check(vs.Type) {
		return true
	}
	for _, v := range vs.Values {
		if check(v) {
			return true
		}
	}
	return false
}

// containsWord reports whether s contains word as a whole identifier.
func containsWord(s, word string) bool {
	for i := 0; i+len(word) <= len(s); i++ {
		if s[i:i+len(word)] != word {
			continue
		}
		before := i == 0 || !isIdentByte(s[i-1])
		after := i+len(word) == len(s) || !isIdentByte(s[i+len(word)])
		if before && after {
			return true
		}
	}
	return false
}

func isIdentByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// localNames gathers every name bound inside a function declaration —
// receiver, parameters, results, :=-definitions, var/const declarations,
// range and closure bindings — scope-blind, to decide when an identifier
// refers to a package-level shared variable.
func localNames(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				out[n.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				out[id.Name] = true
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if id, ok := x.Key.(*ast.Ident); ok {
					out[id.Name] = true
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.FuncLit:
			addFields(x.Type.Params)
			addFields(x.Type.Results)
		}
		return true
	})
	return out
}

// collectIgnores records //rasc:ignore[=checker,...] line directives and
// //rasc:ignore-file[=checker,...] file directives.
func collectIgnores(fset *token.FileSet, name string, file *ast.File, out *Translation) {
	into := out.Ignores
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "rasc:ignore") {
				continue
			}
			if strings.HasPrefix(text, "rasc:ignore-file") {
				rest := strings.TrimPrefix(text, "rasc:ignore-file")
				checkers, ok := ignoreCheckers(rest)
				if !ok {
					continue
				}
				// A bare //rasc:ignore-file suppresses every checker in
				// the file and absorbs any named ones.
				cur, seen := out.FileIgnores[name]
				if len(checkers) == 0 || (seen && len(cur) == 0) {
					out.FileIgnores[name] = []string{}
				} else {
					out.FileIgnores[name] = append(cur, checkers...)
				}
				continue
			}
			rest := strings.TrimPrefix(text, "rasc:ignore")
			checkers, ok := ignoreCheckers(rest)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m := into[name]
			if m == nil {
				m = map[int][]string{}
				into[name] = m
			}
			// An empty checker list (bare //rasc:ignore) suppresses all
			// checkers on the line and absorbs any named ones.
			cur, seen := m[line]
			switch {
			case len(checkers) == 0 || (seen && len(cur) == 0):
				m[line] = []string{}
			default:
				m[line] = append(cur, checkers...)
			}
		}
	}
}

// ignoreCheckers parses the tail of an ignore directive: "" (bare),
// "=a,b" (named). Any other tail means the comment is not a directive.
func ignoreCheckers(rest string) ([]string, bool) {
	var checkers []string
	if strings.HasPrefix(rest, "=") {
		for _, n := range strings.Split(rest[1:], ",") {
			if n = strings.TrimSpace(n); n != "" {
				checkers = append(checkers, n)
			}
		}
	} else if rest != "" && !strings.HasPrefix(rest, " ") {
		return nil, false // e.g. "rasc:ignorethis" is not a directive
	}
	return checkers, true
}

func sortNotes(notes []Note) {
	for i := 1; i < len(notes); i++ {
		for j := i; j > 0; j-- {
			a, b := notes[j-1], notes[j]
			if a.File < b.File || (a.File == b.File && a.Line <= b.Line) {
				break
			}
			notes[j-1], notes[j] = b, a
		}
	}
}

// MustTranslate panics on error.
func MustTranslate(src string) *minic.Program {
	p, err := Translate(src)
	if err != nil {
		panic(err)
	}
	return p
}

type translator struct {
	fset *token.FileSet
	file string
	out  *Translation
	// globals holds the package-level shared variables; locals the names
	// bound in the current function (scope-blind, see localNames).
	globals map[string]bool
	locals  map[string]bool
	// fnName is the (qualified) name of the function being translated,
	// used to name synthesized goroutine closures.
	fnName string
	// deferred calls of the current function, in defer order.
	deferred []*minic.CallExpr
}

func (t *translator) line(p token.Pos) int { return t.fset.Position(p).Line }

func (t *translator) note(p token.Pos, msg string) {
	if t.out == nil {
		return
	}
	t.out.Notes = append(t.out.Notes, Note{File: t.file, Line: t.line(p), Msg: msg})
}

func (t *translator) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, t.fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// deferredCalls expands the recorded defers in LIFO order.
func (t *translator) deferredCalls() []minic.Stmt {
	var out []minic.Stmt
	for i := len(t.deferred) - 1; i >= 0; i-- {
		out = append(out, &minic.ExprStmt{X: t.deferred[i], Line: t.deferred[i].Line})
	}
	return out
}

// closureFn synthesizes a function definition from a closure body (a
// go func(){...}() spawn or a once.Do(func(){...}) argument) and returns
// its name. The "$" in the name cannot collide with a Go identifier.
func (t *translator) closureFn(fl *ast.FuncLit, suffix string) string {
	t.out.gocount++
	name := fmt.Sprintf("%s$%s%d", t.fnName, suffix, t.out.gocount)
	def := &minic.FuncDef{Name: name, Line: t.line(fl.Pos()), File: t.file}
	if fl.Type.Params != nil {
		for _, p := range fl.Type.Params.List {
			for _, n := range p.Names {
				def.Params = append(def.Params, n.Name)
			}
		}
	}
	// The closure gets its own defer scope; captured locals stay in
	// t.locals, which localNames already collected closure-deep.
	saved := t.deferred
	t.deferred = nil
	body := t.block(fl.Body)
	body = append(body, t.deferredCalls()...)
	t.deferred = saved
	def.Body = body
	t.out.Prog.Funcs = append(t.out.Prog.Funcs, def)
	t.out.Prog.ByName[name] = def
	return name
}

// collectShared walks an expression collecting reads of package-level
// shared variables (globals not shadowed by a function-local name).
// Callee names and selector fields are skipped; receivers and arguments
// are visited. Closure bodies are not entered (their accesses surface
// where the closure is translated as a function, or not at all for
// hoisted-call closures).
func (t *translator) collectShared(e ast.Expr, seen map[string]bool, names *[]string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				// skip the callee name
			case *ast.SelectorExpr:
				t.collectShared(fun.X, seen, names)
			default:
				t.collectShared(fun, seen, names)
			}
			for _, a := range x.Args {
				t.collectShared(a, seen, names)
			}
			return false
		case *ast.SelectorExpr:
			t.collectShared(x.X, seen, names)
			return false
		case *ast.KeyValueExpr:
			t.collectShared(x.Value, seen, names)
			return false
		case *ast.Ident:
			if t.globals[x.Name] && !t.locals[x.Name] && !seen[x.Name] {
				seen[x.Name] = true
				*names = append(*names, x.Name)
			}
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// sharedReads returns read-access statements for every shared variable
// read in exprs, deduplicated, in source encounter order.
func (t *translator) sharedReads(line int, exprs ...ast.Expr) []minic.Stmt {
	seen := map[string]bool{}
	var names []string
	for _, e := range exprs {
		t.collectShared(e, seen, &names)
	}
	var out []minic.Stmt
	for _, n := range names {
		out = append(out, &minic.AccessStmt{Name: n, Line: line})
	}
	return out
}

// sharedWriteTarget unwraps an assignment target (x, x.f, x[i], *x, (x))
// to its base identifier and returns it if it is a shared variable.
func (t *translator) sharedWriteTarget(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			if t.globals[x.Name] && !t.locals[x.Name] {
				return x.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// sharedWrites returns write-access statements for the shared variables
// among the assignment targets in lhs.
func (t *translator) sharedWrites(line int, lhs []ast.Expr) []minic.Stmt {
	var out []minic.Stmt
	seen := map[string]bool{}
	for _, l := range lhs {
		if name := t.sharedWriteTarget(l); name != "" && !seen[name] {
			seen[name] = true
			out = append(out, &minic.AccessStmt{Name: name, Write: true, Line: line})
		}
	}
	return out
}

func (t *translator) block(b *ast.BlockStmt) []minic.Stmt {
	var out []minic.Stmt
	for _, st := range b.List {
		out = append(out, t.stmt(st)...)
	}
	return out
}

func (t *translator) stmts(list []ast.Stmt) []minic.Stmt {
	var out []minic.Stmt
	for _, st := range list {
		out = append(out, t.stmt(st)...)
	}
	return out
}

func (t *translator) stmt(st ast.Stmt) []minic.Stmt {
	switch s := st.(type) {
	case *ast.ExprStmt:
		line := t.line(s.Pos())
		// <-ch as a statement is a channel receive.
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return []minic.Stmt{&minic.RecvStmt{Chan: t.render(u.X), Line: line}}
		}
		if c, ok := s.X.(*ast.CallExpr); ok {
			if special := t.specialCall(c, line); special != nil {
				return special
			}
		}
		out := t.sharedReads(line, s.X)
		if x := t.expr(s.X); x != nil {
			out = append(out, &minic.ExprStmt{X: x, Line: line})
		}
		return out
	case *ast.AssignStmt:
		line := t.line(s.Pos())
		var out []minic.Stmt
		out = append(out, t.sharedReads(line, s.Rhs...)...)
		// x = <-ch / x := <-ch is a channel receive labelled with x.
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				assignTo := ""
				if len(s.Lhs) == 1 {
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						assignTo = id.Name
					}
				}
				out = append(out, &minic.RecvStmt{Chan: t.render(u.X), AssignTo: assignTo, Line: line})
				if s.Tok != token.DEFINE {
					out = append(out, t.sharedWrites(line, s.Lhs)...)
				}
				return out
			}
		}
		// Single-target assignment keeps the name (for parametric label
		// extraction: f, err := os.Open(...) labels f); multi-target
		// keeps only the calls.
		name := ""
		if len(s.Lhs) >= 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				name = id.Name
			}
		}
		for i, rhs := range s.Rhs {
			x := t.expr(rhs)
			if x == nil {
				continue
			}
			if i == 0 && name != "" {
				out = append(out, &minic.AssignStmt{Name: name, X: x, Line: line})
			} else {
				out = append(out, &minic.ExprStmt{X: x, Line: line})
			}
		}
		if s.Tok != token.DEFINE {
			// Compound assignment (x += ...) reads its target first.
			if s.Tok != token.ASSIGN {
				for _, l := range s.Lhs {
					if n := t.sharedWriteTarget(l); n != "" {
						out = append(out, &minic.AccessStmt{Name: n, Line: line})
					}
				}
			}
			out = append(out, t.sharedWrites(line, s.Lhs)...)
		}
		return out
	case *ast.DeclStmt:
		// var x = f(): keep initializer calls, labelled by the name.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var out []minic.Stmt
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			out = append(out, t.sharedReads(t.line(s.Pos()), vs.Values...)...)
			for i, v := range vs.Values {
				x := t.expr(v)
				if x == nil {
					continue
				}
				name := ""
				if i < len(vs.Names) && vs.Names[i].Name != "_" {
					name = vs.Names[i].Name
				}
				if name != "" {
					out = append(out, &minic.DeclStmt{Name: name, Init: x, Line: t.line(s.Pos())})
				} else {
					out = append(out, &minic.ExprStmt{X: x, Line: t.line(s.Pos())})
				}
			}
		}
		return out
	case *ast.IfStmt:
		var out []minic.Stmt
		if s.Init != nil {
			out = append(out, t.stmt(s.Init)...)
		}
		out = append(out, t.sharedReads(t.line(s.Pos()), s.Cond)...)
		ifs := &minic.IfStmt{
			Cond: t.condExpr(s.Cond),
			Then: t.block(s.Body),
			Line: t.line(s.Pos()),
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				ifs.Else = t.block(e)
			default:
				ifs.Else = t.stmt(e)
			}
		}
		return append(out, ifs)
	case *ast.ForStmt:
		var out []minic.Stmt
		f := &minic.ForStmt{Line: t.line(s.Pos())}
		if s.Init != nil {
			init := t.stmt(s.Init)
			// The for-clause holds one statement; extra ones hoist.
			if len(init) > 0 {
				f.Init = init[len(init)-1]
				out = append(out, init[:len(init)-1]...)
			}
		}
		if s.Cond != nil {
			// The condition's shared reads surface once, before the loop.
			out = append(out, t.sharedReads(t.line(s.Cond.Pos()), s.Cond)...)
			f.Cond = t.condExpr(s.Cond)
		}
		if s.Post != nil {
			post := t.stmt(s.Post)
			if len(post) > 0 {
				f.Post = post[0]
			}
		}
		f.Body = t.block(s.Body)
		return append(out, f)
	case *ast.RangeStmt:
		// range loops: a loop whose body may run zero or more times.
		body := t.block(s.Body)
		out := t.sharedReads(t.line(s.Pos()), s.X)
		if x := t.expr(s.X); x != nil {
			out = append(out, &minic.ExprStmt{X: x, Line: t.line(s.Pos())})
		}
		return append(out, &minic.WhileStmt{
			Cond: &minic.IdentExpr{Name: "$range"},
			Body: body,
			Line: t.line(s.Pos()),
		})
	case *ast.ReturnStmt:
		out := t.sharedReads(t.line(s.Pos()), s.Results...)
		for _, r := range s.Results {
			if x := t.expr(r); x != nil {
				out = append(out, &minic.ExprStmt{X: x, Line: t.line(s.Pos())})
			}
		}
		// Deferred calls run before the return.
		out = append(out, t.deferredCalls()...)
		return append(out, &minic.ReturnStmt{Line: t.line(s.Pos())})
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			return []minic.Stmt{&minic.BreakStmt{Line: t.line(s.Pos()), Label: label}}
		case token.CONTINUE:
			return []minic.Stmt{&minic.ContinueStmt{Line: t.line(s.Pos()), Label: label}}
		case token.FALLTHROUGH:
			// Handled by the switch translation.
			return []minic.Stmt{&minic.ExprStmt{
				X:    &minic.CallExpr{Name: "$fallthrough", Line: t.line(s.Pos())},
				Line: t.line(s.Pos()),
			}}
		case token.GOTO:
			// goto is not modeled: the translation over-approximates it
			// as fall-through, which can miss or invent event orderings.
			t.note(s.Pos(), fmt.Sprintf("goto %s is not modeled (over-approximated as fall-through)", label))
			return nil
		}
		return nil
	case *ast.BlockStmt:
		return []minic.Stmt{&minic.BlockStmt{Body: t.block(s), Line: t.line(s.Pos())}}
	case *ast.DeferStmt:
		if call := t.call(s.Call); call != nil {
			t.deferred = append(t.deferred, call)
		}
		return nil
	case *ast.GoStmt:
		line := t.line(s.Pos())
		var call *minic.CallExpr
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// go func(...){...}(args): synthesize the closure as a named
			// function and spawn it; args are evaluated at the spawn.
			call = &minic.CallExpr{Name: t.closureFn(fl, "go"), Line: line}
			for _, a := range s.Call.Args {
				call.Args = append(call.Args, t.argExpr(a))
			}
		} else {
			call = t.call(s.Call)
		}
		if call == nil {
			return nil
		}
		out := t.sharedReads(line, s.Call.Args...)
		return append(out, &minic.SpawnStmt{Call: call, Line: line})
	case *ast.SendStmt:
		line := t.line(s.Pos())
		out := t.sharedReads(line, s.Value)
		return append(out, &minic.SendStmt{Chan: t.render(s.Chan), Value: t.expr(s.Value), Line: line})
	case *ast.IncDecStmt:
		line := t.line(s.Pos())
		if name := t.sharedWriteTarget(s.X); name != "" {
			// x++ reads and writes x.
			return []minic.Stmt{
				&minic.AccessStmt{Name: name, Line: line},
				&minic.AccessStmt{Name: name, Write: true, Line: line},
			}
		}
		return nil
	case *ast.SwitchStmt:
		return t.switchLike(s.Init, s.Tag, s.Body, s.Pos())
	case *ast.TypeSwitchStmt:
		return t.switchLike(s.Init, nil, s.Body, s.Pos())
	case *ast.SelectStmt:
		// Every branch possible.
		sw := &minic.SwitchStmt{Cond: &minic.IdentExpr{Name: "$select"}, Line: t.line(s.Pos())}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			body := t.stmts(cc.Body)
			body = append(body, &minic.BreakStmt{Line: t.line(cc.Pos())})
			sw.Cases = append(sw.Cases, minic.SwitchCase{
				IsDefault: cc.Comm == nil,
				Value:     &minic.IdentExpr{Name: "$comm"},
				Body:      body,
				Line:      t.line(cc.Pos()),
			})
		}
		fixSwitchDefaults(sw)
		return []minic.Stmt{sw}
	case *ast.LabeledStmt:
		label := s.Label.Name
		out := t.stmt(s.Stmt)
		if attachLabel(out, label) {
			return out
		}
		if len(out) == 0 {
			// Only a goto target; nothing to translate.
			return nil
		}
		// Labeled non-loop statement: wrap in a labeled block so
		// "break label" still resolves.
		return []minic.Stmt{&minic.BlockStmt{Label: label, Body: out, Line: t.line(s.Pos())}}
	case *ast.EmptyStmt:
		return nil
	}
	return nil
}

// specialCall translates the concurrency-special call statements:
// close(ch) (the builtin) and once.Do(f). Returns nil when c is an
// ordinary call.
func (t *translator) specialCall(c *ast.CallExpr, line int) []minic.Stmt {
	if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "close" && len(c.Args) == 1 {
		return []minic.Stmt{&minic.CloseStmt{Chan: t.render(c.Args[0]), Line: line}}
	}
	// once.Do(f): f runs at most once — a conditional call. Type-blind
	// heuristic: the receiver's rendering must mention "once" so that
	// e.g. httpClient.Do(req) stays an ordinary call.
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || len(c.Args) != 1 ||
		!strings.Contains(strings.ToLower(t.render(sel.X)), "once") {
		return nil
	}
	var inner *minic.CallExpr
	switch arg := c.Args[0].(type) {
	case *ast.FuncLit:
		inner = &minic.CallExpr{Name: t.closureFn(arg, "once"), Line: line}
	case *ast.Ident:
		inner = &minic.CallExpr{Name: arg.Name, Line: line}
	case *ast.SelectorExpr:
		inner = &minic.CallExpr{Name: arg.Sel.Name, Args: []minic.Expr{t.argExpr(arg.X)}, Line: line}
	default:
		return nil
	}
	return []minic.Stmt{&minic.IfStmt{
		Cond: &minic.IdentExpr{Name: "$once"},
		Then: []minic.Stmt{&minic.ExprStmt{X: inner, Line: line}},
		Line: line,
	}}
}

// attachLabel sets the label on the first loop or switch in out (a
// labeled statement translates to at most one, possibly after hoisted
// init statements) and reports whether it found one.
func attachLabel(out []minic.Stmt, label string) bool {
	for _, st := range out {
		switch x := st.(type) {
		case *minic.ForStmt:
			x.Label = label
			return true
		case *minic.WhileStmt:
			x.Label = label
			return true
		case *minic.DoWhileStmt:
			x.Label = label
			return true
		case *minic.SwitchStmt:
			x.Label = label
			return true
		}
	}
	return false
}

// switchLike translates expression and type switches with Go's implicit
// break and explicit fallthrough.
func (t *translator) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, pos token.Pos) []minic.Stmt {
	var out []minic.Stmt
	if init != nil {
		out = append(out, t.stmt(init)...)
	}
	cond := minic.Expr(&minic.IdentExpr{Name: "$switch"})
	if tag != nil {
		out = append(out, t.sharedReads(t.line(pos), tag)...)
		if x := t.expr(tag); x != nil {
			if c, ok := x.(*minic.CallExpr); ok {
				out = append(out, &minic.ExprStmt{X: c, Line: t.line(pos)})
			}
		}
	}
	sw := &minic.SwitchStmt{Cond: cond, Line: t.line(pos)}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseBody := t.stmts(cc.Body)
		// Go switch: implicit break unless the body ends in fallthrough.
		if n := len(caseBody); n > 0 && isFallthroughMarker(caseBody[n-1]) {
			caseBody = caseBody[:n-1]
		} else {
			caseBody = append(caseBody, &minic.BreakStmt{Line: t.line(cc.Pos())})
		}
		sw.Cases = append(sw.Cases, minic.SwitchCase{
			IsDefault: cc.List == nil,
			Value:     &minic.IdentExpr{Name: "$case"},
			Body:      caseBody,
			Line:      t.line(cc.Pos()),
		})
	}
	fixSwitchDefaults(sw)
	return append(out, sw)
}

// fixSwitchDefaults enforces minic's invariant that default cases carry no
// value and non-defaults do.
func fixSwitchDefaults(sw *minic.SwitchStmt) {
	for i := range sw.Cases {
		if sw.Cases[i].IsDefault {
			sw.Cases[i].Value = nil
		}
	}
}

func isFallthroughMarker(st minic.Stmt) bool {
	es, ok := st.(*minic.ExprStmt)
	if !ok {
		return false
	}
	c, ok := es.X.(*minic.CallExpr)
	return ok && c.Name == "$fallthrough"
}

// expr translates an expression, keeping only call structure; returns nil
// when nothing analysis-relevant remains.
func (t *translator) expr(e ast.Expr) minic.Expr {
	switch x := e.(type) {
	case *ast.CallExpr:
		return t.call(x)
	case *ast.ParenExpr:
		return t.expr(x.X)
	case *ast.UnaryExpr:
		return t.expr(x.X)
	case *ast.StarExpr:
		return t.expr(x.X)
	case *ast.BinaryExpr:
		l, r := t.expr(x.X), t.expr(x.Y)
		switch {
		case l != nil && r != nil:
			return &minic.BinExpr{Op: x.Op.String(), L: l, R: r}
		case l != nil:
			return l
		default:
			return r
		}
	case *ast.Ident:
		return &minic.IdentExpr{Name: x.Name}
	case *ast.BasicLit:
		return &minic.NumExpr{Text: x.Value}
	case *ast.SelectorExpr:
		return &minic.IdentExpr{Name: t.render(x)}
	case *ast.FuncLit:
		// Closures are not inlined; their body's calls are conservatively
		// hoisted to the creation point.
		var calls []minic.Expr
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if mc := t.call(c); mc != nil {
					calls = append(calls, mc)
				}
				return false
			}
			return true
		})
		if len(calls) == 0 {
			return nil
		}
		out := calls[0]
		for _, c := range calls[1:] {
			out = &minic.BinExpr{Op: ";", L: out, R: c}
		}
		return out
	}
	return nil
}

// call translates a Go call: plain calls keep their name; method calls
// x.M(a) become M(x, a) so the receiver is argument 0.
func (t *translator) call(c *ast.CallExpr) *minic.CallExpr {
	out := &minic.CallExpr{Line: t.line(c.Pos())}
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		out.Name = fun.Name
	case *ast.SelectorExpr:
		out.Name = fun.Sel.Name
		if recv := t.argExpr(fun.X); recv != nil {
			out.Args = append(out.Args, recv)
		}
	default:
		// Indirect call: keep argument effects under an opaque name.
		out.Name = "$indirect"
	}
	for _, a := range c.Args {
		out.Args = append(out.Args, t.argExpr(a))
	}
	return out
}

// argExpr renders an argument: calls are translated (so nested calls make
// CFG actions), everything else keeps its source text for event-rule
// matching.
func (t *translator) argExpr(e ast.Expr) minic.Expr {
	if c, ok := e.(*ast.CallExpr); ok {
		return t.call(c)
	}
	if id, ok := e.(*ast.Ident); ok {
		return &minic.IdentExpr{Name: id.Name}
	}
	if bl, ok := e.(*ast.BasicLit); ok {
		return &minic.NumExpr{Text: bl.Value}
	}
	return &minic.IdentExpr{Name: t.render(e)}
}

// condExpr keeps call effects in conditions.
func (t *translator) condExpr(e ast.Expr) minic.Expr {
	if x := t.expr(e); x != nil {
		return x
	}
	return &minic.IdentExpr{Name: "$cond"}
}
