package gosrc

import (
	"fmt"
	"reflect"
	"testing"
)

// diffTranslations fails the test if the memoized and one-shot
// translations differ anywhere a consumer can observe.
func diffTranslations(t *testing.T, step string, got, want *Translation) {
	t.Helper()
	if !reflect.DeepEqual(got.Prog.Funcs, want.Prog.Funcs) {
		t.Errorf("%s: Prog.Funcs differ (got %d, want %d funcs)", step, len(got.Prog.Funcs), len(want.Prog.Funcs))
		for i := range got.Prog.Funcs {
			if i >= len(want.Prog.Funcs) || !reflect.DeepEqual(got.Prog.Funcs[i], want.Prog.Funcs[i]) {
				t.Errorf("%s: first divergence at func %d: got %q", step, i, got.Prog.Funcs[i].Name)
				break
			}
		}
	}
	if !reflect.DeepEqual(got.Prog.ByName, want.Prog.ByName) {
		t.Errorf("%s: Prog.ByName differs: got %d, want %d entries", step, len(got.Prog.ByName), len(want.Prog.ByName))
	}
	if !reflect.DeepEqual(got.Notes, want.Notes) {
		t.Errorf("%s: Notes differ:\n got %+v\nwant %+v", step, got.Notes, want.Notes)
	}
	if !reflect.DeepEqual(got.Ignores, want.Ignores) {
		t.Errorf("%s: Ignores differ:\n got %+v\nwant %+v", step, got.Ignores, want.Ignores)
	}
	if !reflect.DeepEqual(got.FileIgnores, want.FileIgnores) {
		t.Errorf("%s: FileIgnores differ:\n got %+v\nwant %+v", step, got.FileIgnores, want.FileIgnores)
	}
	if !reflect.DeepEqual(got.Shared, want.Shared) {
		t.Errorf("%s: Shared differs: got %v, want %v", step, got.Shared, want.Shared)
	}
}

// TestTranslateFilesMemoDifferential drives one Memo through an edit
// sequence exercising every cross-file coupling (method aliases,
// closure numbering, shared globals, suppression directives, file
// add/remove) and checks each state against the one-shot translator.
func TestTranslateFilesMemoDifferential(t *testing.T) {
	a := `package p

var shared int

func main() {
	helper()
	go func() { shared = 1 }()
	w.Close()
}
`
	b := `package p

type W struct{}

func (w *W) Close() {
	shared = 2
}

func helper() {
	go func() { drain() }()
	go func() { drain() }()
}
`
	c := `package p

//rasc:ignore-file chanclose

func drain() {
	shared = 3 //rasc:ignore
}
`
	files := []File{
		{Name: "a.go", Src: a},
		{Name: "b.go", Src: b},
		{Name: "c.go", Src: c},
	}
	m := NewMemo()
	check := func(step string, fs []File) {
		t.Helper()
		got, gerr := TranslateFilesMemo(fs, m)
		want, werr := TranslateFiles(fs)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: memo err %v, one-shot err %v", step, gerr, werr)
		}
		if gerr != nil {
			if gerr.Error() != werr.Error() {
				t.Fatalf("%s: error text: memo %q, one-shot %q", step, gerr, werr)
			}
			return
		}
		diffTranslations(t, step, got, want)
	}

	check("cold", files)
	check("fully warm", files)

	// Single-body edit: only a.go should re-translate; closures in b.go
	// keep their numbering because a.go still synthesizes one closure.
	files[0].Src = `package p

var shared int

func main() {
	helper()
	go func() { shared = 4 }()
	w.Close()
	w.Close()
}
`
	check("edit a.go body", files)

	// Closure-count edit: a.go now synthesizes two closures, shifting
	// the counter offset for b.go — b.go must re-translate even though
	// its content is unchanged.
	files[0].Src = `package p

var shared int

func main() {
	helper()
	go func() { shared = 5 }()
	go func() { shared = 6 }()
	w.Close()
}
`
	check("closure count shift", files)

	// Globals edit: removing the only declaration of `shared` changes
	// the package-wide shared set, so every unit must re-translate
	// (accesses to `shared` stop being emitted).
	files[0].Src = `package p

func main() {
	helper()
	w.Close()
}
`
	check("global removed", files)
	files[0].Src = `package p

var shared int

func main() {
	helper()
	w.Close()
}
`
	check("global restored", files)

	// File add: a second receiver for Close makes the bare-name alias
	// ambiguous, which changes the alias pass and adds a Note.
	files = append(files, File{Name: "d.go", Src: `package p

type V struct{}

func (v *V) Close() {
	drain()
}
`})
	check("file added (ambiguous method)", files)

	// File remove: back to a unique Close; the memo drops d.go.
	files = files[:3]
	check("file removed", files)

	// Within-file duplicate: handled inside the unit, Note preserved.
	files[2].Src = `package p

//rasc:ignore-file chanclose

func drain() {
	shared = 3 //rasc:ignore
}

func drain() {
	shared = 7
}
`
	check("within-file duplicate", files)

	// Cross-file duplicate: the memo path must detect it during merge
	// and fall back to the one-shot translator.
	files[2].Src = `package p

func helper() {
	drain()
}

func drain() {
}
`
	check("cross-file duplicate fallback", files)

	// Recover from the duplicate and make sure the memo is still
	// coherent afterwards.
	files[2].Src = c
	check("recovered from duplicate", files)

	// Error propagation: a parse error surfaces identically.
	files[1].Src = "package p\nfunc broken( {"
	check("parse error", files)
	files[1].Src = b
	check("recovered from parse error", files)

	// Empty program error.
	empty := []File{{Name: "e.go", Src: "package p\n\ntype T struct{}\n"}}
	check("no bodies error", empty)
}

// TestTranslateFilesMemoManyOrders shuffles file order to confirm the
// memo respects the order of the request, not insertion history.
func TestTranslateFilesMemoManyOrders(t *testing.T) {
	mk := func(i int) File {
		return File{
			Name: fmt.Sprintf("f%d.go", i),
			Src: fmt.Sprintf(`package p

func fn%d() {
	go func() { work%d() }()
}
`, i, i),
		}
	}
	files := []File{mk(0), mk(1), mk(2), mk(3)}
	m := NewMemo()
	for step := 0; step < 4; step++ {
		// Rotate the order each step; closure numbering follows file
		// order, so rotated requests re-key every unit's offset.
		rot := append(append([]File{}, files[step:]...), files[:step]...)
		got, err := TranslateFilesMemo(rot, m)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := TranslateFiles(rot)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		diffTranslations(t, fmt.Sprintf("rotation %d", step), got, want)
	}
}

// TestTranslateFilesMemoNil degrades to the one-shot path.
func TestTranslateFilesMemoNil(t *testing.T) {
	files := []File{{Name: "a.go", Src: "package p\n\nfunc main() { f() }\n"}}
	got, err := TranslateFilesMemo(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := TranslateFiles(files)
	diffTranslations(t, "nil memo", got, want)
}
