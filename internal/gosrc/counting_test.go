package gosrc

import (
	"testing"

	"rasc/internal/minic"
	"rasc/internal/spec"
)

// countingProps enumerates the bounded-counter checker properties with
// their committed cost ceilings. CI runs TestCountingMonoidCeilings as a
// regression guard: growing a spec (more states, a higher bound, extra
// symbols) is fine as long as the induced monoid stays under the ceiling;
// blowing past it means the counter abstraction got accidentally
// expensive and the ceiling — or the spec — needs a deliberate revisit.
var countingProps = []struct {
	name        string
	build       func() *spec.Property
	events      func() *minic.EventMap
	maxMonoid   int
	maxStates   int
	wantDomain  string
	wantSatEdge bool // the tracker has at least one saturating edge
}{
	{"semabalance", SemaBalanceProperty, SemaBalanceEvents, 48, 8, "counting(c≤4)", true},
	{"poolexhaust", PoolExhaustProperty, PoolExhaustEvents, 80, 10, "counting(held≤5)", false},
	{"depthbound", DepthBoundProperty, DepthBoundEvents, 80, 10, "counting(depth≤5)", false},
	{"waitgroup", WaitGroupCountProperty, WaitGroupCountEvents, 72, 18, "counting(c≤3)", true},
}

// TestCountingSpecsCompile compiles every counting spec and checks its
// advertised domain; MustCompile panicking would fail the test outright.
func TestCountingSpecsCompile(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			if got := p.Domain(); got != c.wantDomain {
				t.Errorf("Domain() = %q, want %q", got, c.wantDomain)
			}
			if len(p.Counters) == 0 {
				t.Error("property has no counters")
			}
			if err := p.Machine.Validate(); err != nil {
				t.Errorf("expanded machine invalid: %v", err)
			}
		})
	}
}

// TestCountingMonoidCeilings is the monoid-size regression guard (also
// run by CI). Measured sizes at the time the ceilings were committed:
// semabalance 35 funcs / 6 states, poolexhaust 61/7, depthbound 61/7,
// waitgroup 59/15. The waitgroup ceiling is the tight one: its events
// occur in real code, so its monoid size feeds directly into solver
// cost (see WaitGroupCountSpecSrc). poolexhaust and depthbound have no
// saturating edges
// because their inline `<=` assert condemns a transition before it could
// saturate (fail takes precedence over clamping).
func TestCountingMonoidCeilings(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			if got := p.Mon.Size(); got > c.maxMonoid {
				t.Errorf("monoid size %d exceeds committed ceiling %d", got, c.maxMonoid)
			}
			if got := p.Stats.ExpandedStates; got > c.maxStates {
				t.Errorf("expanded machine has %d states, ceiling %d", got, c.maxStates)
			}
			if got := p.Stats.SaturatingEdges > 0; got != c.wantSatEdge {
				t.Errorf("saturating edges present = %v, want %v", got, c.wantSatEdge)
			}
		})
	}
}

// TestCountingEventMaps checks that every counting checker's event map
// only emits symbols its property machine knows.
func TestCountingEventMaps(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			for _, r := range c.events().Rules {
				if _, ok := p.Machine.Alpha.Lookup(r.Symbol); !ok {
					t.Errorf("event rule emits unknown symbol %q", r.Symbol)
				}
			}
		})
	}
}
