package gosrc

import (
	"testing"

	"rasc/internal/minic"
	"rasc/internal/spec"
)

// countingProps enumerates the bounded-counter checker properties with
// their committed cost ceilings. CI runs TestCountingMonoidCeilings as a
// regression guard: growing a spec (more states, a higher bound, extra
// symbols) is fine as long as the induced monoid stays under the ceiling;
// blowing past it means the counter abstraction got accidentally
// expensive and the ceiling — or the spec — needs a deliberate revisit.
var countingProps = []struct {
	name        string
	build       func() *spec.Property
	events      func() *minic.EventMap
	maxMonoid   int
	maxStates   int // expanded machine states plus relation-tracker states
	relations   int
	wantDomain  string
	wantSatEdge bool // some tracker (counter or relation) saturates
}{
	{"semabalance", SemaBalanceProperty, SemaBalanceEvents, 192, 24, 1, "counting(acq−rel∈[0,6])", true},
	{"lockbalance", LockBalanceProperty, LockBalanceEvents, 80, 18, 1, "counting(lk−un∈[0,4])", true},
	{"poolexchange", PoolExchangeProperty, PoolExchangeEvents, 80, 18, 1, "counting(tk−gv∈[0,4])", true},
	{"poolexhaust", PoolExhaustProperty, PoolExhaustEvents, 80, 10, 0, "counting(held≤5)", false},
	{"depthbound", DepthBoundProperty, DepthBoundEvents, 80, 10, 0, "counting(depth≤5)", false},
	{"waitgroup", WaitGroupCountProperty, WaitGroupCountEvents, 72, 18, 0, "counting(c≤3)", true},
}

// TestCountingSpecsCompile compiles every counting spec and checks its
// advertised domain; MustCompile panicking would fail the test outright.
func TestCountingSpecsCompile(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			if got := p.Domain(); got != c.wantDomain {
				t.Errorf("Domain() = %q, want %q", got, c.wantDomain)
			}
			if len(p.Counters) == 0 && len(p.Relations) == 0 {
				t.Error("property has neither counters nor relations")
			}
			if got := len(p.Relations); got != c.relations {
				t.Errorf("property has %d relation(s), want %d", got, c.relations)
			}
			if err := p.Machine.Validate(); err != nil {
				t.Errorf("expanded machine invalid: %v", err)
			}
		})
	}
}

// TestCountingMonoidCeilings is the monoid-size regression guard (also
// run by CI). Measured sizes at the time the ceilings were committed:
// semabalance 148 funcs / 9 states (relational v2; the v1 independent
// counter measured 35/6 — see SemaBalanceIndepSpecSrc), lockbalance and
// poolexchange 61/7, poolexhaust and depthbound 61/7, waitgroup 59/15.
// The waitgroup ceiling is the tight one: its events occur in real code,
// so its monoid size feeds directly into solver cost (see
// WaitGroupCountSpecSrc). poolexhaust and depthbound have no saturating
// edges because their inline `<=` assert condemns a transition before it
// could saturate (fail takes precedence over clamping); the relational
// trackers each count their out-of-band sticky jump here.
func TestCountingMonoidCeilings(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			if got := p.Mon.Size(); got > c.maxMonoid {
				t.Errorf("monoid size %d exceeds committed ceiling %d", got, c.maxMonoid)
			}
			if got := p.Stats.ExpandedStates + p.Stats.RelationStates; got > c.maxStates {
				t.Errorf("expanded machine plus trackers total %d states, ceiling %d", got, c.maxStates)
			}
			sat := p.Stats.SaturatingEdges + p.Stats.RelationSaturatingEdges
			if got := sat > 0; got != c.wantSatEdge {
				t.Errorf("saturating edges present = %v, want %v", got, c.wantSatEdge)
			}
		})
	}
}

// TestCountingEventMaps checks that every counting checker's event map
// only emits symbols its property machine knows.
func TestCountingEventMaps(t *testing.T) {
	for _, c := range countingProps {
		t.Run(c.name, func(t *testing.T) {
			p := c.build()
			for _, r := range c.events().Rules {
				if _, ok := p.Machine.Alpha.Lookup(r.Symbol); !ok {
					t.Errorf("event rule emits unknown symbol %q", r.Symbol)
				}
			}
		})
	}
}
