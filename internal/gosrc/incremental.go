// Incremental per-file translation. A Memo caches, per source file, the
// translated function definitions together with everything else the file
// contributes to a Translation (notes, suppression directives, shared
// globals), keyed by the file's content hash and the two pieces of
// cross-file context a file's translation depends on:
//
//   - the package-level shared-variable set (access statements are only
//     emitted for names in it), folded in as a digest of the union over
//     all files; and
//   - the synthesized-closure counter offset at the file's position
//     (closure names are numbered sequentially across the whole package,
//     so a file's translation is only reusable if every earlier file
//     synthesizes the same number of closures).
//
// A resident analysis engine holds one Memo per program: a request that
// changes k of n files re-parses and re-translates exactly those k files
// and merges the cached units for the rest. The merged Translation is
// semantically identical to TranslateFiles over the same file set; the
// one case the unit-wise merge cannot reproduce — a duplicate qualified
// name across files, where the sequential path skips the later body
// without translating it — is detected and falls back to the one-shot
// path.
package gosrc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"sync"

	"rasc/internal/minic"
)

// Memo caches per-file translation units for one evolving file set. The
// zero value is not usable; call NewMemo. A Memo is safe for concurrent
// use, but callers translating the same program concurrently serialize
// on its lock (translation of a file set is not parallel anyway).
type Memo struct {
	mu    sync.Mutex
	files map[string]*memoFile
}

// NewMemo returns an empty translation memo.
func NewMemo() *Memo { return &Memo{files: map[string]*memoFile{}} }

// memoFile is the cached state for one file name.
type memoFile struct {
	// hash is the SHA-256 of the source content the parse belongs to.
	hash string
	// globals lists the package-level shared-variable names this file
	// declares (its contribution to the union).
	globals []string
	// key is the full context the unit was translated under; unit is nil
	// until the file has been translated at least once.
	key  unitKey
	unit *fileUnit
}

type unitKey struct {
	hash          string
	globalsDigest string
	gocountStart  int
}

// fileUnit is one file's translation output, mergeable into a package
// Translation.
type fileUnit struct {
	// funcs lists the translated definitions in append order — declared
	// functions interleaved with the closures they synthesize, exactly
	// the order TranslateFiles would append them in.
	funcs []unitFunc
	// notes are the file's translation remarks (goto, within-file dups).
	notes []Note
	// ignores and fileIgnores are the file's suppression directives;
	// hasFileIgnores distinguishes "directive with empty checker list"
	// (suppress everything) from "no directive".
	ignores        map[int][]string
	fileIgnores    []string
	hasIgnores     bool
	hasFileIgnores bool
	// closures counts the synthesized closure functions, advancing the
	// package-wide counter for the files after this one.
	closures int
}

type unitFunc struct {
	def *minic.FuncDef
	// bare is the method's bare name for the alias pass, "" for plain
	// functions and synthesized closures.
	bare string
}

// contentHash fingerprints one file's source.
func contentHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// TranslateFilesMemo is TranslateFiles with per-file caching: files
// whose content and cross-file context are unchanged since the memo
// last saw them reuse their translated unit; everything else is
// re-parsed and re-translated. A nil memo degrades to TranslateFiles.
func TranslateFilesMemo(files []File, m *Memo) (*Translation, error) {
	if m == nil {
		return TranslateFiles(files)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	// Drop memo entries for files no longer in the set, so a resident
	// program's memo tracks its file set instead of growing forever.
	inSet := make(map[string]bool, len(files))
	for _, f := range files {
		inSet[f.Name] = true
	}
	for name := range m.files {
		if !inSet[name] {
			delete(m.files, name)
		}
	}

	// Phase 1: bring per-file globals up to date. Only changed files are
	// parsed here, and the parse is thrown away — the translation phase
	// re-parses the (few) files it actually translates, so units carry no
	// token.FileSet state between requests.
	for _, f := range files {
		h := contentHash(f.Src)
		mf := m.files[f.Name]
		if mf != nil && mf.hash == h {
			continue
		}
		file, err := parseOne(f)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, 4)
		for name := range collectGlobals(token.NewFileSet(), []*ast.File{file}) {
			names = append(names, name)
		}
		sort.Strings(names)
		m.files[f.Name] = &memoFile{hash: h, globals: names}
	}
	union := map[string]bool{}
	for _, f := range files {
		for _, name := range m.files[f.Name].globals {
			union[name] = true
		}
	}
	var shared []string // nil when no globals, matching TranslateFiles
	for name := range union {
		shared = append(shared, name)
	}
	sort.Strings(shared)
	gh := sha256.New()
	for _, name := range shared {
		fmt.Fprintf(gh, "%s\n", name)
	}
	globalsDigest := hex.EncodeToString(gh.Sum(nil))

	// Phase 2: translate stale units in file order, threading the
	// package-wide closure counter through.
	gocount := 0
	units := make([]*fileUnit, len(files))
	for i, f := range files {
		mf := m.files[f.Name]
		key := unitKey{hash: mf.hash, globalsDigest: globalsDigest, gocountStart: gocount}
		if mf.unit == nil || mf.key != key {
			u, err := translateUnit(f, union, gocount)
			if err != nil {
				return nil, err
			}
			mf.unit, mf.key = u, key
		}
		units[i] = mf.unit
		gocount += mf.unit.closures
	}

	// Phase 3: merge units in file order.
	out := &Translation{
		Prog:        &minic.Program{ByName: map[string]*minic.FuncDef{}},
		Ignores:     map[string]map[int][]string{},
		FileIgnores: map[string][]string{},
		Shared:      shared,
	}
	methodsByBare := map[string][]*minic.FuncDef{}
	for i, f := range files {
		u := units[i]
		for _, uf := range u.funcs {
			if _, dup := out.Prog.ByName[uf.def.Name]; dup {
				// A cross-file duplicate: the sequential path would have
				// skipped this body (and its closures) entirely, which a
				// unit translated in isolation cannot know. Rare enough
				// that correctness beats reuse: take the one-shot path.
				return TranslateFiles(files)
			}
			out.Prog.Funcs = append(out.Prog.Funcs, uf.def)
			out.Prog.ByName[uf.def.Name] = uf.def
			if uf.bare != "" {
				methodsByBare[uf.bare] = append(methodsByBare[uf.bare], uf.def)
			}
		}
		out.Notes = append(out.Notes, u.notes...)
		if u.hasIgnores {
			out.Ignores[f.Name] = u.ignores
		}
		if u.hasFileIgnores {
			out.FileIgnores[f.Name] = u.fileIgnores
		}
	}
	if len(out.Prog.Funcs) == 0 {
		return nil, fmt.Errorf("gosrc: no function bodies found")
	}
	registerAliases(out, methodsByBare)
	sortNotes(out.Notes)
	return out, nil
}

// parseOne parses a single file with the options TranslateFiles uses.
func parseOne(f File) (*ast.File, error) {
	file, err := parser.ParseFile(token.NewFileSet(), f.Name, f.Src,
		parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("gosrc: %w", err)
	}
	return file, nil
}

// translateUnit translates one file in isolation: a fresh single-file
// Translation whose closure counter starts at gocountStart, against the
// package-wide shared-variable set. Positions are file-local, so a
// per-file FileSet produces the same line numbers as the package-wide
// one.
func translateUnit(f File, globals map[string]bool, gocountStart int) (*fileUnit, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, f.Name, f.Src, parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("gosrc: %w", err)
	}
	scratch := &Translation{
		Prog:        &minic.Program{ByName: map[string]*minic.FuncDef{}},
		Ignores:     map[string]map[int][]string{},
		FileIgnores: map[string][]string{},
	}
	scratch.gocount = gocountStart
	tr := &translator{fset: fset, file: f.Name, out: scratch, globals: globals}
	collectIgnores(fset, f.Name, file, scratch)
	// bareOf records which definitions are methods; synthesized closures
	// appended by funcDecl's body translation carry no bare name.
	bareOf := map[*minic.FuncDef]string{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		def, isMethod := tr.funcDecl(fd)
		if def == nil {
			continue
		}
		if isMethod {
			bareOf[def] = fd.Name.Name
		}
	}
	u := &fileUnit{
		notes:    scratch.Notes,
		closures: scratch.gocount - gocountStart,
	}
	for _, def := range scratch.Prog.Funcs {
		u.funcs = append(u.funcs, unitFunc{def: def, bare: bareOf[def]})
	}
	if ign, ok := scratch.Ignores[f.Name]; ok {
		u.ignores, u.hasIgnores = ign, true
	}
	if fi, ok := scratch.FileIgnores[f.Name]; ok {
		u.fileIgnores, u.hasFileIgnores = fi, true
	}
	return u, nil
}
