package gosrc

import (
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// Counting (bounded-counter) properties for Go API-usage checking. Each
// declares a counter that saturates at its bound, so the property's
// transition monoid stays finite (see internal/spec/counter.go); a
// verdict that rests on a saturated counter is a may-report.

// SemaBalanceSpecSrc: semaphore acquires must balance releases on every
// path — releasing more than was acquired fails immediately (the
// difference would go negative), and a nonzero difference at function
// exit means permits are still held. Parametric in the semaphore value.
//
// v2 tracks the acquire/release *difference* relationally instead of one
// saturating counter: acq and rel are individually unbounded (neither is
// asserted on its own, so neither gets a tracker), and the single zone
// tracker follows acq − rel through [0, 6]. A run of 5 acquires balanced
// by 5 releases stays exact — the v1 counter saturated at 4 and had to
// may-report it — so balanced heavy traffic now verifies definitely, and
// only differences beyond 6 degrade to may-reports.
const SemaBalanceSpecSrc = `
counter acq bound 8;
counter rel bound 8;

relate acq - rel in [0, 6];

start state S :
    | acquire(x) [acq += 1] -> S
    | release(x) [rel += 1] -> S;

assert acq - rel >= 0;
assert acq - rel == 0 at exit;
`

// SemaBalanceIndepSpecSrc is the v1 independent-counter form of the
// semaphore-balance property, kept as the differential baseline for the
// relational tracker (see counting tests): same events, same verdict
// shape, but the single counter saturates at 4 outstanding permits.
const SemaBalanceIndepSpecSrc = `
counter c bound 4;

start state S :
    | acquire(x) [c += 1] -> S
    | release(x) [c -= 1] -> S;

assert c >= 0;
assert c == 0 at exit;
`

// SemaBalanceProperty compiles SemaBalanceSpecSrc.
func SemaBalanceProperty() *spec.Property { return spec.MustCompile(SemaBalanceSpecSrc) }

// SemaBalanceEvents: sem.Acquire(...)/sem.Release(...) in the
// golang.org/x/sync/semaphore style, labelled by the receiver.
func SemaBalanceEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Acquire", ArgIndex: -1, Symbol: "acquire", LabelArg: 0},
		{Callee: "Release", ArgIndex: -1, Symbol: "release", LabelArg: 0},
	}}
}

// PoolExhaustSpecSrc: connection-pool checkouts in flight must stay
// under the pool capacity; the inline assert fails the automaton on the
// transition that exceeds it. Parametric in the pool value.
const PoolExhaustSpecSrc = `
counter held bound 5;

start state S :
    | checkout(x) [held += 1] -> S
    | checkin(x) [held -= 1] -> S;

assert held <= 4;
`

// PoolExhaustProperty compiles PoolExhaustSpecSrc.
func PoolExhaustProperty() *spec.Property { return spec.MustCompile(PoolExhaustSpecSrc) }

// PoolExhaustEvents: pool.Checkout()/pool.Checkin() and the
// Borrow/Return naming convention, labelled by the receiver.
func PoolExhaustEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Checkout", ArgIndex: -1, Symbol: "checkout", LabelArg: 0},
		{Callee: "Checkin", ArgIndex: -1, Symbol: "checkin", LabelArg: 0},
		{Callee: "Borrow", ArgIndex: -1, Symbol: "checkout", LabelArg: 0},
		{Callee: "Return", ArgIndex: -1, Symbol: "checkin", LabelArg: 0},
	}}
}

// LockBalanceSpecSrc: every Lock must be balanced by an Unlock before
// the entry function returns, tracked relationally — unlocking more than
// was locked fails on the violating transition, and a positive lock −
// unlock difference at exit means the mutex is still held. Parametric in
// the mutex value. Complements doublelock (a typestate property over
// held/not-held) with a balance property that survives loops: repeated
// balanced lock/unlock rounds keep the difference at 0 exactly, no
// matter how many iterations, where a saturating counter would lose the
// value and may-report.
const LockBalanceSpecSrc = `
counter lk bound 8;
counter un bound 8;

relate lk - un in [0, 4];

start state S :
    | lock(x) [lk += 1] -> S
    | unlock(x) [un += 1] -> S;

assert lk - un >= 0;
assert lk - un == 0 at exit;
`

// LockBalanceProperty compiles LockBalanceSpecSrc.
func LockBalanceProperty() *spec.Property { return spec.MustCompile(LockBalanceSpecSrc) }

// LockBalanceEvents: mu.Lock()/mu.Unlock(), labelled by the receiver.
func LockBalanceEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Lock", ArgIndex: -1, Symbol: "lock", LabelArg: 0},
		{Callee: "Unlock", ArgIndex: -1, Symbol: "unlock", LabelArg: 0},
	}}
}

// PoolExchangeSpecSrc: sync.Pool-style Get/Put exchange — the number of
// Get results outstanding (taken − given back) must stay within the
// declared band. Inline-only: the automaton fails on the Get that takes
// the difference past 4, and Put-only traffic can never reach an accept
// state, so the skeleton layer prunes those labels before solving.
// Relational on purpose: total Get/Put counts are unbounded in any warm
// code path; only their difference is the property.
const PoolExchangeSpecSrc = `
counter tk bound 8;
counter gv bound 8;

relate tk - gv in [0, 4];

start state S :
    | get(x) [tk += 1] -> S
    | put(x) [gv += 1] -> S;

assert tk - gv <= 4;
`

// PoolExchangeProperty compiles PoolExchangeSpecSrc.
func PoolExchangeProperty() *spec.Property { return spec.MustCompile(PoolExchangeSpecSrc) }

// PoolExchangeEvents: pool.Get()/pool.Put(v) in the sync.Pool style,
// labelled by the receiver.
func PoolExchangeEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Get", ArgIndex: -1, Symbol: "get", LabelArg: 0},
		{Callee: "Put", ArgIndex: -1, Symbol: "put", LabelArg: 0},
	}}
}

// DepthBoundSpecSrc: explicit Enter/Leave nesting (tracers, indenters,
// reentrant sections) must not exceed the declared depth. Non-parametric
// on purpose: every enter/leave event in the entry's interprocedural
// CFG feeds one shared counter, so recursive call chains through
// Enter/Leave pairs are counted across functions.
const DepthBoundSpecSrc = `
counter depth bound 5;

start state S :
    | enter [depth += 1] -> S
    | leave [depth -= 1] -> S;

assert depth <= 4;
`

// DepthBoundProperty compiles DepthBoundSpecSrc.
func DepthBoundProperty() *spec.Property { return spec.MustCompile(DepthBoundSpecSrc) }

// DepthBoundEvents: Enter()/Leave() calls (free functions or methods).
func DepthBoundEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Enter", ArgIndex: -1, Symbol: "enter", LabelArg: -1},
		{Callee: "Leave", ArgIndex: -1, Symbol: "leave", LabelArg: -1},
	}}
}

// WaitGroupCountSpecSrc: the counting upgrade of the waitgroup checker.
// Besides the regular Add-after-Wait misuse it tracks the counter value:
// wg.Add(1) adds one, wg.Add(n) for any other argument is a wildcard
// update `[c += *]` — an increase of unknown magnitude that saturates
// the tracker honestly instead of pretending the delta was 2 — wg.Done()
// subtracts one, and driving the counter negative is the documented
// "sync: negative WaitGroup counter" panic, reported via the inline
// non-negativity assert.
//
// The bound is 3, not higher, deliberately: this checker's `Add` rule
// is a catch-all over method names, so it matches every `.Add(` in the
// program (metrics counters, containers, big.Int arithmetic). The
// skeleton layer prunes labels whose events can never reach an accept
// state (see pdm.CheckObs), which keeps those spurious matches off the
// solver's hot path, but the monoid size still scales with the bound
// (bound 3 → 59 functions, bound 4 → 112) and feeds the committed CI
// ceilings. Outstanding totals ≥ 3 are rare enough that the saturation
// may-verdict is an acceptable trade.
const WaitGroupCountSpecSrc = `
counter c bound 3;

start state Counting :
    | add_1(x) [c += 1] -> Counting
    | add_many(x) [c += *] -> Counting
    | done(x) [c -= 1] -> Counting
    | wait(x) -> Waited;

state Waited :
    | wait(x) -> Waited
    | done(x) [c -= 1] -> Waited
    | add_1(x) [c += 1] -> Error
    | add_many(x) [c += *] -> Error;

accept state Error;

assert c >= 0;
`

// WaitGroupCountProperty compiles WaitGroupCountSpecSrc.
func WaitGroupCountProperty() *spec.Property { return spec.MustCompile(WaitGroupCountSpecSrc) }

// WaitGroupCountEvents: wg.Add(n) dispatches on the literal delta
// (receiver is argument 0, n is argument 1); non-literal or large deltas
// fall through to add_many, a wildcard increase that saturates the
// counter. wg.Done() and wg.Wait() are unit events.
func WaitGroupCountEvents() *minic.EventMap {
	return &minic.EventMap{Rules: []minic.Rule{
		{Callee: "Add", ArgIndex: 1, Equals: "1", Symbol: "add_1", LabelArg: 0},
		{Callee: "Add", ArgIndex: -1, Symbol: "add_many", LabelArg: 0},
		{Callee: "Done", ArgIndex: -1, Symbol: "done", LabelArg: 0},
		{Callee: "Wait", ArgIndex: -1, Symbol: "wait", LabelArg: 0},
	}}
}
