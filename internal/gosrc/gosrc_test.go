package gosrc

import (
	"os"
	"testing"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
)

func TestTranslateBasics(t *testing.T) {
	prog, err := Translate(`
package p

func helper(x int) int { return work(x) }

func main() {
	helper(1)
	if cond() {
		a()
	} else {
		b()
	}
	for i := 0; i < 10; i++ {
		c()
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(prog.Funcs))
	}
	if prog.ByName["helper"] == nil || prog.ByName["main"] == nil {
		t.Fatal("function names lost")
	}
	g := minic.MustBuild(prog)
	if g.NumActions() < 5 {
		t.Errorf("NumActions = %d", g.NumActions())
	}
}

func TestTranslateErrors(t *testing.T) {
	if _, err := Translate("not go at all {"); err == nil {
		t.Error("parse error expected")
	}
	if _, err := Translate("package p\nvar x = 1\n"); err == nil {
		t.Error("no function bodies should error")
	}
}

func TestDoubleLock(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"double lock", `
package p

func f() {
	mu.Lock()
	mu.Lock()
}`, 1},
		{"lock unlock lock", `
package p

func f() {
	mu.Lock()
	mu.Unlock()
	mu.Lock()
	mu.Unlock()
}`, 0},
		{"two mutexes are distinct", `
package p

func f() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}`, 0},
		{"unlock of unlocked", `
package p

func f() {
	mu.Unlock()
}`, 1},
		{"conditional missing unlock then lock", `
package p

func f() {
	mu.Lock()
	if cond() {
		mu.Unlock()
	}
	mu.Lock()
}`, 1},
		{"defer unlock protects every return", `
package p

func f() int {
	mu.Lock()
	defer mu.Unlock()
	if cond() {
		return 1
	}
	return 2
}

func g() {
	f()
	f()
}`, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Check(c.src, DoubleLockProperty(), DoubleLockEvents(), "f", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != c.want {
				t.Errorf("got %d violations, want %d: %v", len(res.Violations), c.want, res.Violations)
			}
		})
	}
}

func TestDoubleLockInterprocedural(t *testing.T) {
	src := `
package p

func locked() {
	mu.Lock()
}

func main() {
	mu.Lock()
	locked()
}
`
	res, err := Check(src, DoubleLockProperty(), DoubleLockEvents(), "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Errorf("interprocedural double lock missed: %v", res.Violations)
	}
}

func TestFileLeak(t *testing.T) {
	src := `
package p

func main() {
	f, err := os.Open("a.txt")
	if err != nil {
		return
	}
	g, _ := os.Open("b.txt")
	g.Close()
	use(f)
}
`
	res, err := Check(src, FileLeakProperty(), FileLeakEvents(), "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open := res.OpenInstancesAtExit("main")
	if len(open) != 1 || open[0] != "f" {
		t.Errorf("open at exit = %v, want [f]", open)
	}
	// With a deferred close, nothing leaks.
	src2 := `
package p

func main() {
	f, err := os.Open("a.txt")
	if err != nil {
		return
	}
	defer f.Close()
	use(f)
}
`
	res2, err := Check(src2, FileLeakProperty(), FileLeakEvents(), "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The error-return path happens before the defer is registered, and f
	// was opened there... os.Open failing means no file; our name-based
	// abstraction still sees open(f) before the return. Accept either 0
	// or the false positive on the err path, but the happy path must not
	// leak: check by counting ≤ 1.
	if got := res2.OpenInstancesAtExit("main"); len(got) > 1 {
		t.Errorf("open at exit = %v", got)
	}
}

func TestGoSwitchImplicitBreak(t *testing.T) {
	// Go switch does NOT fall through: the drop in case 1 does not leak
	// into case 2's path, so a violation exists (case 2 execs while
	// privileged)... modeled with the privilege property.
	src := `
package p

func main() {
	seteuid(0)
	switch kind() {
	case 1:
		seteuid(getuid())
	case 2:
		noop()
	}
	execl("/bin/sh")
}
`
	prog := MustTranslate(src)
	res, err := pdmCheck(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Errorf("got %d violations, want 1 (case-2 and no-case paths stay privileged)", len(res.Violations))
	}
	// With explicit fallthrough from case 1 to 2, case 1's path is safe
	// (drops then falls into case 2); still violating via case 2 directly.
	src2 := `
package p

func main() {
	seteuid(0)
	switch kind() {
	case 1:
		seteuid(getuid())
		fallthrough
	case 2:
		noop()
	default:
		seteuid(getuid())
	}
	execl("/bin/sh")
}
`
	res2, err := pdmCheck(MustTranslate(src2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Violations) != 1 {
		t.Errorf("fallthrough case: got %d violations, want 1", len(res2.Violations))
	}
}

func pdmCheck(prog *minic.Program) (*pdm.Result, error) {
	return pdm.Check(prog, pdm.SimplePrivilegeProperty(), minic.PrivilegeEvents(), "main", core.Options{})
}

func TestLocksFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/locks.go.src")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(string(src), DoubleLockProperty(), DoubleLockEvents(), "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(res.Violations), res.Violations)
	}
	v := res.Violations[0]
	if v.Label != "mu" || v.Line != 18 {
		t.Errorf("violation = %+v, want mu at line 18", v)
	}
}

// Taint analysis over Go source, via the same translation.
func TestGoTaint(t *testing.T) {
	src := `
package p

func sanitizeAll(v int) {
	sanitize(v)
}

func main() {
	v := source()
	w := source()
	sanitizeAll(v)
	sink(v)
	sink(w)
}
`
	res, err := Check(src, bitvector.TaintProperty(), bitvector.TaintEvents(), "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Label != "w" {
		t.Errorf("violations = %v, want exactly w", res.Violations)
	}
}
