package gosrc

import (
	"testing"

	"rasc/internal/minic"
)

// Focused translation tests for the trickier Go constructs.

func actions(t *testing.T, src string) []string {
	t.Helper()
	prog, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(prog)
	var names []string
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction {
			names = append(names, n.Call.Name)
		}
	}
	return names
}

func TestMethodReceiverBecomesArg0(t *testing.T) {
	prog := MustTranslate(`
package p

func main() {
	mu.Lock()
	s.buf.Flush()
}
`)
	var calls []*minic.CallExpr
	for _, st := range prog.ByName["main"].Body {
		es, ok := st.(*minic.ExprStmt)
		if !ok {
			continue
		}
		calls = append(calls, minic.Calls(es.X, nil)...)
	}
	if len(calls) != 2 {
		t.Fatalf("got %d calls", len(calls))
	}
	if calls[0].Name != "Lock" || calls[0].Args[0].Render() != "mu" {
		t.Errorf("call 0 = %s(%s)", calls[0].Name, calls[0].Args[0].Render())
	}
	if calls[1].Name != "Flush" || calls[1].Args[0].Render() != "s.buf" {
		t.Errorf("call 1 = %s(%s)", calls[1].Name, calls[1].Args[0].Render())
	}
}

func TestDeferLIFOOrder(t *testing.T) {
	names := actions(t, `
package p

func main() {
	defer first()
	defer second()
	work()
}
`)
	// work, then deferred in LIFO: second, first.
	want := []string{"work", "second", "first"}
	if len(names) != len(want) {
		t.Fatalf("actions = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("actions = %v, want %v", names, want)
		}
	}
}

func TestDeferBeforeEachReturn(t *testing.T) {
	prog := MustTranslate(`
package p

func f() int {
	defer cleanup()
	if c() {
		return one()
	}
	return two()
}
`)
	g := minic.MustBuild(prog)
	// cleanup must be REACHABLE twice (once per return); the end-of-body
	// expansion is dead here because every path returns explicitly.
	preds := map[int]int{}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
	}
	reachable, total := 0, 0
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction && n.Call.Name == "cleanup" {
			total++
			if preds[n.ID] > 0 {
				reachable++
			}
		}
	}
	if reachable != 2 {
		t.Errorf("cleanup reachable %d times (of %d emitted), want 2", reachable, total)
	}
}

func TestRangeLoopMayRepeat(t *testing.T) {
	prog := MustTranslate(`
package p

func main() {
	for range items() {
		body()
	}
	after()
}
`)
	g := minic.MustBuild(prog)
	var bodyN *minic.Node
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction && n.Call.Name == "body" {
			bodyN = n
		}
	}
	if bodyN == nil {
		t.Fatal("body missing")
	}
	// body must be in a cycle (range loops repeat).
	seen := map[int]bool{}
	stack := []int{bodyN.ID}
	cyclic := false
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[id].Succs {
			if s == bodyN.ID {
				cyclic = true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !cyclic {
		t.Error("range body should loop")
	}
}

func TestSelectAllBranches(t *testing.T) {
	names := actions(t, `
package p

func main() {
	select {
	case <-ch:
		a()
	case x := <-other:
		b(x)
	default:
		c()
	}
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !has[want] {
			t.Errorf("select branch %s missing from actions %v", want, names)
		}
	}
}

func TestTypeSwitch(t *testing.T) {
	names := actions(t, `
package p

func main() {
	switch v := x.(type) {
	case int:
		a(v)
	default:
		b(v)
	}
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["a"] || !has["b"] {
		t.Errorf("type switch branches missing: %v", names)
	}
}

func TestGoStmtAndClosures(t *testing.T) {
	names := actions(t, `
package p

func main() {
	go worker()
	f := func() {
		inner()
	}
	f()
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["worker"] {
		t.Error("go statement call missing")
	}
	if !has["inner"] {
		t.Error("closure body calls should be hoisted to the creation point")
	}
}

func TestIfInitAndIncDec(t *testing.T) {
	names := actions(t, `
package p

func main() {
	if v := get(); v > 0 {
		use(v)
	}
	i++
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["get"] || !has["use"] {
		t.Errorf("actions = %v", names)
	}
}

func TestDuplicateMethodNamesSkipped(t *testing.T) {
	prog := MustTranslate(`
package p

type A struct{}
type B struct{}

func (a A) M() { x() }
func (b B) M() { y() }

func main() { z() }
`)
	// Only the first M is kept (documented approximation).
	if len(prog.Funcs) != 2 {
		t.Errorf("got %d funcs, want 2 (first M + main)", len(prog.Funcs))
	}
}

func TestIndirectCalls(t *testing.T) {
	names := actions(t, `
package p

func main() {
	fns[0](arg())
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["arg"] {
		t.Error("argument effects of indirect calls must be kept")
	}
}
