package gosrc

import (
	"strings"
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
)

// Focused translation tests for the trickier Go constructs.

func actions(t *testing.T, src string) []string {
	t.Helper()
	prog, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(prog)
	var names []string
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction {
			names = append(names, n.Call.Name)
		}
	}
	return names
}

func TestMethodReceiverBecomesArg0(t *testing.T) {
	prog := MustTranslate(`
package p

func main() {
	mu.Lock()
	s.buf.Flush()
}
`)
	var calls []*minic.CallExpr
	for _, st := range prog.ByName["main"].Body {
		es, ok := st.(*minic.ExprStmt)
		if !ok {
			continue
		}
		calls = append(calls, minic.Calls(es.X, nil)...)
	}
	if len(calls) != 2 {
		t.Fatalf("got %d calls", len(calls))
	}
	if calls[0].Name != "Lock" || calls[0].Args[0].Render() != "mu" {
		t.Errorf("call 0 = %s(%s)", calls[0].Name, calls[0].Args[0].Render())
	}
	if calls[1].Name != "Flush" || calls[1].Args[0].Render() != "s.buf" {
		t.Errorf("call 1 = %s(%s)", calls[1].Name, calls[1].Args[0].Render())
	}
}

func TestDeferLIFOOrder(t *testing.T) {
	names := actions(t, `
package p

func main() {
	defer first()
	defer second()
	work()
}
`)
	// work, then deferred in LIFO: second, first.
	want := []string{"work", "second", "first"}
	if len(names) != len(want) {
		t.Fatalf("actions = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("actions = %v, want %v", names, want)
		}
	}
}

func TestDeferBeforeEachReturn(t *testing.T) {
	prog := MustTranslate(`
package p

func f() int {
	defer cleanup()
	if c() {
		return one()
	}
	return two()
}
`)
	g := minic.MustBuild(prog)
	// cleanup must be REACHABLE twice (once per return); the end-of-body
	// expansion is dead here because every path returns explicitly.
	preds := map[int]int{}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s]++
		}
	}
	reachable, total := 0, 0
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction && n.Call.Name == "cleanup" {
			total++
			if preds[n.ID] > 0 {
				reachable++
			}
		}
	}
	if reachable != 2 {
		t.Errorf("cleanup reachable %d times (of %d emitted), want 2", reachable, total)
	}
}

func TestRangeLoopMayRepeat(t *testing.T) {
	prog := MustTranslate(`
package p

func main() {
	for range items() {
		body()
	}
	after()
}
`)
	g := minic.MustBuild(prog)
	var bodyN *minic.Node
	for _, n := range g.Nodes {
		if n.Kind == minic.NAction && n.Call.Name == "body" {
			bodyN = n
		}
	}
	if bodyN == nil {
		t.Fatal("body missing")
	}
	// body must be in a cycle (range loops repeat).
	seen := map[int]bool{}
	stack := []int{bodyN.ID}
	cyclic := false
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[id].Succs {
			if s == bodyN.ID {
				cyclic = true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !cyclic {
		t.Error("range body should loop")
	}
}

func TestSelectAllBranches(t *testing.T) {
	names := actions(t, `
package p

func main() {
	select {
	case <-ch:
		a()
	case x := <-other:
		b(x)
	default:
		c()
	}
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !has[want] {
			t.Errorf("select branch %s missing from actions %v", want, names)
		}
	}
}

func TestTypeSwitch(t *testing.T) {
	names := actions(t, `
package p

func main() {
	switch v := x.(type) {
	case int:
		a(v)
	default:
		b(v)
	}
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["a"] || !has["b"] {
		t.Errorf("type switch branches missing: %v", names)
	}
}

func TestGoStmtAndClosures(t *testing.T) {
	prog, err := Translate(`
package p

func main() {
	go worker()
	f := func() {
		inner()
	}
	f()
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(prog)
	spawned := map[string]bool{}
	has := map[string]bool{}
	for _, n := range g.Nodes {
		switch n.Kind {
		case minic.NSpawn:
			spawned[n.Call.Name] = true
		case minic.NAction:
			has[n.Call.Name] = true
		}
	}
	if !spawned["worker"] {
		t.Error("go statement should become a spawn node")
	}
	if !has["inner"] {
		t.Error("closure body calls should be hoisted to the creation point")
	}
}

func TestIfInitAndIncDec(t *testing.T) {
	names := actions(t, `
package p

func main() {
	if v := get(); v > 0 {
		use(v)
	}
	i++
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["get"] || !has["use"] {
		t.Errorf("actions = %v", names)
	}
}

func TestDuplicateMethodNamesBothKept(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "m.go", Src: `
package p

type A struct{}
type B struct{}

func (a A) M() { x() }
func (b B) M() { y() }

func main() { z() }
`}})
	if err != nil {
		t.Fatal(err)
	}
	prog := tr.Prog
	// Both method bodies are analyzed, qualified by receiver type.
	if len(prog.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3 (A.M, B.M, main)", len(prog.Funcs))
	}
	if prog.ByName["A.M"] == nil || prog.ByName["B.M"] == nil {
		t.Errorf("qualified method names missing: %v", prog.ByName)
	}
	// The bare name is ambiguous: no alias, and a note explains it.
	if prog.ByName["M"] != nil {
		t.Error("ambiguous bare name M must not alias a single method")
	}
	found := false
	for _, n := range tr.Notes {
		if strings.Contains(n.Msg, "method name M") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected ambiguity note, got %v", tr.Notes)
	}
}

func TestUniqueMethodNameAliased(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "m.go", Src: `
package p

type T struct{}

func (t *T) Work() { locked() }

func locked() { mu.Lock() }

func main() {
	var t T
	t.Work()
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	prog := tr.Prog
	if prog.ByName["T.Work"] == nil {
		t.Fatal("qualified name T.Work missing")
	}
	if prog.ByName["Work"] != prog.ByName["T.Work"] {
		t.Error("unique method name must alias its only definition")
	}
}

func TestIndirectCalls(t *testing.T) {
	names := actions(t, `
package p

func main() {
	fns[0](arg())
}
`)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["arg"] {
		t.Error("argument effects of indirect calls must be kept")
	}
}

func TestLabeledContinueSkipsUnlock(t *testing.T) {
	// continue outer skips mu.Unlock(): the next iteration's Lock is a
	// double lock. The unlabeled-continue translation would miss it.
	src := `
package p

func f() {
outer:
	for {
		mu.Lock()
		for {
			if cond() {
				continue outer
			}
			break
		}
		mu.Unlock()
	}
}
`
	res, err := Check(src, DoubleLockProperty(), DoubleLockEvents(), "f", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Errorf("got %d violations, want 1: %v", len(res.Violations), res.Violations)
	}
}

func TestLabeledBreakLeavesLockHeld(t *testing.T) {
	src := `
package p

func f() {
outer:
	for {
		mu.Lock()
		for {
			if cond() {
				break outer
			}
			break
		}
		mu.Unlock()
	}
	mu.Lock()
	mu.Unlock()
}
`
	res, err := Check(src, DoubleLockProperty(), DoubleLockEvents(), "f", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Errorf("got %d violations, want 1: %v", len(res.Violations), res.Violations)
	}
}

func TestLabeledBreakCleanCode(t *testing.T) {
	// Exiting both loops before locking again is clean: no false positive.
	src := `
package p

func f() {
outer:
	for {
		for {
			if cond() {
				mu.Lock()
				work()
				mu.Unlock()
				break outer
			}
			break
		}
	}
	mu.Lock()
	mu.Unlock()
}
`
	res, err := Check(src, DoubleLockProperty(), DoubleLockEvents(), "f", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("clean labeled break produced %v", res.Violations)
	}
}

func TestLabeledRangeAndSwitch(t *testing.T) {
	// Labels on range loops and switches must build without errors.
	prog := MustTranslate(`
package p

func f(items []int) {
loop:
	for range items {
	sw:
		switch pick() {
		case 1:
			break sw
		case 2:
			break loop
		default:
			continue loop
		}
		after()
	}
}
`)
	if _, err := minic.Build(prog); err != nil {
		t.Fatalf("labeled range/switch: %v", err)
	}
}

func TestGotoProducesNote(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "g.go", Src: `
package p

func f() {
	work()
	goto done
done:
	more()
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tr.Notes {
		if strings.Contains(n.Msg, "goto") && n.File == "g.go" && n.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected goto note at g.go:6, got %v", tr.Notes)
	}
}

func TestTranslateFilesMergesAcrossFiles(t *testing.T) {
	tr, err := TranslateFiles([]File{
		{Name: "a.go", Src: `
package p

func caller() {
	mu.Lock()
	helper()
}
`},
		{Name: "b.go", Src: `
package p

func helper() {
	mu.Lock()
}
`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Prog.ByName["caller"].File; got != "a.go" {
		t.Errorf("caller.File = %q", got)
	}
	if got := tr.Prog.ByName["helper"].File; got != "b.go" {
		t.Errorf("helper.File = %q", got)
	}
	res, err := pdm.Check(tr.Prog, DoubleLockProperty(), DoubleLockEvents(), "caller", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("cross-file double lock: got %v", res.Violations)
	}
	// The violation is in helper, whose def maps to b.go.
	if res.Violations[0].Fn != "helper" {
		t.Errorf("violation fn = %s, want helper", res.Violations[0].Fn)
	}
}

func TestTranslateFilesDuplicateFunction(t *testing.T) {
	tr, err := TranslateFiles([]File{
		{Name: "a.go", Src: "package p\n\nfunc main() { x() }\n"},
		{Name: "b.go", Src: "package p\n\nfunc main() { y() }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Prog.Funcs) != 1 || tr.Prog.ByName["main"].File != "a.go" {
		t.Errorf("first definition must win: %+v", tr.Prog.Funcs)
	}
	found := false
	for _, n := range tr.Notes {
		if strings.Contains(n.Msg, "duplicate definition of main") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected duplicate note, got %v", tr.Notes)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "i.go", Src: `
package p

func f() {
	a() //rasc:ignore
	b() //rasc:ignore=doublelock
	c() //rasc:ignore=doublelock,fileleak
	d() //rasc:ignored-not-a-directive is ignored
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	ig := tr.Ignores["i.go"]
	if got, ok := ig[5]; !ok || len(got) != 0 {
		t.Errorf("line 5 = %v, want suppress-all", got)
	}
	if got := ig[6]; len(got) != 1 || got[0] != "doublelock" {
		t.Errorf("line 6 = %v", got)
	}
	if got := ig[7]; len(got) != 2 || got[0] != "doublelock" || got[1] != "fileleak" {
		t.Errorf("line 7 = %v", got)
	}
	if _, ok := ig[8]; ok {
		t.Errorf("line 8 must not be a directive: %v", ig[8])
	}
}

func TestGoClosureSynthesized(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "c.go", Src: `
package p

func main() {
	go func(n int) {
		work(n)
	}(compute())
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(tr.Prog)
	var spawned string
	sawCompute, sawWork := false, false
	for _, n := range g.Nodes {
		switch n.Kind {
		case minic.NSpawn:
			spawned = n.Call.Name
		case minic.NAction:
			switch n.Call.Name {
			case "compute":
				sawCompute = true
			case "work":
				sawWork = true
			}
		}
	}
	if spawned != "main$go1" {
		t.Errorf("spawned = %q, want synthesized closure main$go1", spawned)
	}
	def, ok := tr.Prog.ByName["main$go1"]
	if !ok || len(def.Params) != 1 || def.Params[0] != "n" {
		t.Fatalf("closure def = %+v", def)
	}
	if !sawCompute {
		t.Error("spawn argument compute() must be evaluated by the spawner")
	}
	if !sawWork {
		t.Error("closure body call work() must be inside the synthesized function")
	}
}

func TestChannelOpsTranslated(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "ch.go", Src: `
package p

func main() {
	ch := make(chan int)
	ch <- produce()
	v := <-ch
	<-ch
	close(ch)
	use(v)
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(tr.Prog)
	counts := map[minic.ConcOp]int{}
	assignTo := ""
	for _, n := range g.Nodes {
		counts[n.Conc]++
		if n.Conc == minic.ConcRecv && n.AssignTo != "" {
			assignTo = n.AssignTo
		}
	}
	if counts[minic.ConcSend] != 1 || counts[minic.ConcRecv] != 2 || counts[minic.ConcClose] != 1 {
		t.Errorf("channel ops = %v", counts)
	}
	if assignTo != "v" {
		t.Errorf("recv assign label = %q, want v", assignTo)
	}
}

func TestSharedAccessEvents(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "s.go", Src: `
package p

import "sync"

var mu sync.Mutex
var counter int
var handler func()

func main() {
	counter = 1
	counter++
	local := counter
	if counter > 0 {
		use(local)
	}
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	// mu (sync-shaped) and handler (func-shaped) are not shared data.
	if len(tr.Shared) != 1 || tr.Shared[0] != "counter" {
		t.Fatalf("Shared = %v, want [counter]", tr.Shared)
	}
	g := minic.MustBuild(tr.Prog)
	reads, writes := 0, 0
	for _, n := range g.Nodes {
		switch n.Conc {
		case minic.ConcLoad:
			reads++
		case minic.ConcStore:
			writes++
		}
	}
	// writes: counter = 1, counter++; reads: counter++, local := counter,
	// if counter > 0.
	if writes != 2 || reads != 3 {
		t.Errorf("accesses = %d writes, %d reads; want 2 and 3", writes, reads)
	}
}

func TestLocalShadowNotShared(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "sh.go", Src: `
package p

var counter int

func main() {
	counter := 0
	counter++
	use(counter)
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(tr.Prog)
	for _, n := range g.Nodes {
		if n.Kind == minic.NAccess {
			t.Fatal("a shadowing local must not produce access events")
		}
	}
}

func TestOnceDoConditionalCall(t *testing.T) {
	tr, err := TranslateFiles([]File{{Name: "o.go", Src: `
package p

import "sync"

var once sync.Once

func main() {
	once.Do(setup)
	client.Do(req)
}
`}})
	if err != nil {
		t.Fatal(err)
	}
	g := minic.MustBuild(tr.Prog)
	sawSetup, sawClientDo := false, false
	for _, n := range g.Nodes {
		if n.Kind != minic.NAction {
			continue
		}
		switch n.Call.Name {
		case "setup":
			sawSetup = true
		case "Do":
			sawClientDo = true
		}
	}
	if !sawSetup {
		t.Error("once.Do(setup) must conditionally call setup")
	}
	if !sawClientDo {
		t.Error("client.Do(req) must stay an ordinary method call")
	}
}

func TestFileIgnoreCollected(t *testing.T) {
	tr, err := TranslateFiles([]File{
		{Name: "a.go", Src: "//rasc:ignore-file\npackage p\n\nfunc A() { f() }\n"},
		{Name: "b.go", Src: "//rasc:ignore-file=race,fileleak\npackage p\n\nfunc B() { g() }\n"},
		{Name: "c.go", Src: "package p\n\nfunc C() { h() }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tr.FileIgnores["a.go"]; !ok || len(got) != 0 {
		t.Errorf("a.go = %v, want suppress-all", got)
	}
	if got := tr.FileIgnores["b.go"]; len(got) != 2 || got[0] != "race" || got[1] != "fileleak" {
		t.Errorf("b.go = %v", got)
	}
	if _, ok := tr.FileIgnores["c.go"]; ok {
		t.Error("c.go has no directive")
	}
}
