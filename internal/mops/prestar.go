package mops

import "sort"

// This file adds the backward counterpart of post*: pre* saturation
// (Bouajjani/Esparza/Maler), computing a P-automaton for the
// configurations that can REACH a given regular configuration set. With
// post* (forward) and pre* (backward) on the same pushdown system, the
// checker can chop executions exactly: a configuration lies on a violating
// run iff it is post*-reachable and in pre* of the error configurations.

// PreStar computes the pre* P-automaton for the target set "control state
// pTarget with any stack" (the natural target for safety monitors whose
// error state is a sink).
type PreStar struct {
	pds       *PDS
	target    int
	final     int
	numStates int
	rel       map[trans]bool
	out       [][]struct{ sym, to int }
}

// NewPreStar saturates pre* from the target control state.
func NewPreStar(pds *PDS, pTarget int) *PreStar {
	ps := &PreStar{pds: pds, target: pTarget}
	// Automaton states: one per control state, plus a final state. The
	// initial automaton accepts <pTarget, w> for every stack w: final is
	// reached from pTarget on any symbol, with a self loop.
	ps.numStates = pds.NumControls
	ps.final = ps.numStates
	ps.numStates++
	ps.out = make([][]struct{ sym, to int }, ps.numStates)
	ps.rel = map[trans]bool{}

	add := func(t trans) {
		ps.rel[t] = true
	}
	// ε-stack acceptance for the target (a config with the empty stack
	// counts), plus "any symbol" transitions target→final and final→final.
	for g := 0; g < pds.NumSymbols; g++ {
		add(trans{pTarget, g, ps.final})
		add(trans{ps.final, g, ps.final})
	}

	// Saturation: for each rule <p,γ> → <p',w> with p' --w--> q in the
	// current automaton, add p --γ--> q. Pop rules have w = ε (so q is
	// p' itself); step rules need one transition; push rules two. A
	// simple round-robin closure is adequate for our sizes.
	for changed := true; changed; {
		changed = false
		before := len(ps.rel)
		for key, rs := range pds.Rules {
			for _, r := range rs {
				switch r.kind {
				case rulePop:
					// <p,γ> → <p2,ε>: reading ε from p2 ends at p2.
					t := trans{key.p, key.g, r.p2}
					if !ps.rel[t] {
						ps.rel[t] = true
					}
				case ruleStep:
					// <p,γ> → <p2,γ2>: for each p2 --γ2--> q: p --γ--> q.
					for q := 0; q < ps.numStates; q++ {
						if ps.rel[trans{r.p2, r.g2, q}] {
							t := trans{key.p, key.g, q}
							if !ps.rel[t] {
								ps.rel[t] = true
							}
						}
					}
				case rulePush:
					// <p,γ> → <p2,γ2 γ3>: for p2 --γ2--> q --γ3--> q2:
					// p --γ--> q2.
					for q := 0; q < ps.numStates; q++ {
						if !ps.rel[trans{r.p2, r.g2, q}] {
							continue
						}
						for q2 := 0; q2 < ps.numStates; q2++ {
							if ps.rel[trans{q, r.g3, q2}] {
								t := trans{key.p, key.g, q2}
								if !ps.rel[t] {
									ps.rel[t] = true
								}
							}
						}
					}
				}
			}
		}
		if len(ps.rel) != before {
			changed = true
		}
	}
	for t := range ps.rel {
		ps.out[t.from] = append(ps.out[t.from], struct{ sym, to int }{t.sym, t.to})
	}
	return ps
}

// InPre reports whether the configuration <p, w> can reach the target
// control state: the automaton accepts w from p (final state, or the
// state of a control for the empty-stack case).
func (ps *PreStar) InPre(p int, stack []int) bool {
	cur := map[int]bool{p: true}
	for _, g := range stack {
		cur = ps.step(cur, g)
	}
	if cur[ps.final] {
		return true
	}
	// Empty remaining stack at the target control state itself.
	return cur[ps.target]
}

// step advances the automaton state set over one stack symbol.
func (ps *PreStar) step(from map[int]bool, sym int) map[int]bool {
	next := map[int]bool{}
	for s := range from {
		for _, e := range ps.out[s] {
			if e.sym == sym {
				next[e.to] = true
			}
		}
	}
	return next
}

// DangerNodes computes the interprocedural chop exactly: the stack-top
// symbols (CFG nodes) of configurations that are both post*-reachable
// from the initial configuration and in pre* of the error control states.
// The check intersects, per control state, the post* automaton's
// accepted stacks with the pre* automaton's, via a product reachability.
func DangerNodes(pds *PDS, post *PostStar, pre *PreStar) []int {
	// Product states: (post state, pre state). A config <p, γw> is in
	// both sets iff reading γw from (p, p) reaches (postFinal, preGood)
	// where preGood ∈ {pre.final} ∪ {pre.target with empty rest}. We
	// explore the product lazily and record the top symbol γ of every
	// accepting run.
	// Adjacency for post (including ε edges recorded in rel).
	postAdj := map[int][]struct{ sym, to int }{}
	for t := range post.rel {
		postAdj[t.from] = append(postAdj[t.from], struct{ sym, to int }{t.sym, t.to})
	}

	// canFinishPost[s]: s reaches post.final; canFinishPre computed on the
	// fly (pre.final self-loops on everything, so any state reaching
	// final works; pre.target accepts the empty rest).
	coPost := post.coReach()

	danger := map[int]bool{}
	// A (p, γ, q) post transition starts an accepted stack with top γ iff
	// q can finish in post; the pre side must accept γ·(same rest). We
	// run a joint emptiness check per start pair.
	type key struct {
		a, b int
	}
	// reachable joint pairs -> can they jointly accept some rest?
	var jointAccept func(a, b int, seen map[key]bool) bool
	jointAccept = func(a, b int, seen map[key]bool) bool {
		// Accept when post side is final-capable with zero more symbols
		// AND pre side accepts zero more symbols.
		if a == post.final && (b == pre.final || b == pre.target) {
			return true
		}
		k := key{a, b}
		if seen[k] {
			return false
		}
		seen[k] = true
		for _, ea := range postAdj[a] {
			if ea.sym == epsSym {
				if jointAccept(ea.to, b, seen) {
					return true
				}
				continue
			}
			if !coPost[ea.to] {
				continue
			}
			for _, eb := range pre.out[b] {
				if eb.sym != ea.sym {
					continue
				}
				if jointAccept(ea.to, eb.to, seen) {
					return true
				}
			}
		}
		return false
	}

	for t := range post.rel {
		if t.sym == epsSym || t.from >= pds.NumControls {
			continue // only control-state tops name program points
		}
		if danger[t.sym] {
			continue
		}
		p := t.from
		// Top symbol t.sym from control p: joint rest from (t.to, pre
		// states after reading t.sym from p).
		preAfter := pre.step(map[int]bool{p: true}, t.sym)
		for b := range preAfter {
			if jointAccept(t.to, b, map[key]bool{}) {
				danger[t.sym] = true
				break
			}
		}
	}
	var out []int
	for n := range danger {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
