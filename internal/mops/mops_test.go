package mops

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
	"rasc/internal/spec"
)

const privilegeSpec = `
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
`

func mopsCheck(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := spec.Compile(privilegeSpec, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, prop, minic.PrivilegeEvents(), "")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPostStarBasics(t *testing.T) {
	// One control state, symbols 0,1,2. Rules: <0,0> → <0,1 2> (push),
	// <0,1> → <0,ε> (pop). From <0, 0>: reachable configs include
	// <0, 0>, <0, 1·2>, <0, 2>.
	pds := &PDS{NumControls: 1, NumSymbols: 3}
	pds.AddPush(0, 0, 0, 1, 2)
	pds.AddPop(0, 1, 0)
	ps := NewPostStar(pds, 0, 0)
	if !ps.Reachable(0) {
		t.Fatal("control state 0 must be reachable")
	}
	tops := ps.TopSymbols(0)
	want := []int{0, 1, 2}
	if len(tops) != len(want) {
		t.Fatalf("tops = %v, want %v", tops, want)
	}
	for i := range want {
		if tops[i] != want[i] {
			t.Fatalf("tops = %v, want %v", tops, want)
		}
	}
}

func TestPostStarPopToEmpty(t *testing.T) {
	// <0,5> → <1,ε>: control 1 is reachable with the empty stack.
	pds := &PDS{NumControls: 2, NumSymbols: 6}
	pds.AddPop(0, 5, 1)
	ps := NewPostStar(pds, 0, 5)
	if !ps.Reachable(1) {
		t.Error("pop to empty stack should leave control 1 reachable")
	}
}

func TestPostStarUnreachable(t *testing.T) {
	pds := &PDS{NumControls: 2, NumSymbols: 2}
	pds.AddStep(0, 0, 0, 1)
	ps := NewPostStar(pds, 0, 0)
	if ps.Reachable(1) {
		t.Error("control 1 has no rules reaching it")
	}
}

func TestViolationDetection(t *testing.T) {
	res := mopsCheck(t, `
void main() {
    seteuid(0);
    execl("/bin/sh", "sh");
}
`)
	if !res.Violating {
		t.Fatal("violation missed")
	}
	if len(res.ErrorNodes) == 0 {
		t.Error("error nodes missing")
	}
}

func TestSafeProgram(t *testing.T) {
	res := mopsCheck(t, `
void main() {
    seteuid(0);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}
`)
	if res.Violating {
		t.Fatal("safe program flagged")
	}
}

func TestParametricRejected(t *testing.T) {
	prog := minic.MustParse("void main() { f(); }")
	prop := spec.MustCompile(`
start state Closed :
    | open(x) -> Opened;
accept state Opened :
    | close(x) -> Closed;
`)
	if _, err := Check(prog, prop, minic.FileEvents(), ""); err == nil {
		t.Error("parametric property should be rejected")
	}
}

// Differential test: the constraint engine (pdm) and the post* engine
// agree on the verdict across a corpus of programs, including
// interprocedural, recursive and non-returning cases.
func TestAgreesWithConstraintEngine(t *testing.T) {
	corpus := []struct {
		name string
		src  string
		want bool
	}{
		{"straight violation", `
void main() { seteuid(0); execl("/bin/sh", "sh"); }`, true},
		{"straight safe", `
void main() { seteuid(0); seteuid(getuid()); execl("/bin/sh", "sh"); }`, false},
		{"branch violation", `
void main() {
    seteuid(0);
    if (c) { seteuid(getuid()); } else { other(); }
    execl("/bin/sh", "sh");
}`, true},
		{"branch safe", `
void main() {
    seteuid(0);
    if (c) { seteuid(getuid()); } else { seteuid(1); }
    execl("/bin/sh", "sh");
}`, false},
		{"interprocedural violation", `
void shell() { execl("/bin/sh", "sh"); }
void main() { seteuid(0); shell(); }`, true},
		{"interprocedural safe", `
void drop() { seteuid(getuid()); }
void main() { seteuid(0); drop(); execl("/bin/sh", "sh"); }`, false},
		{"context sensitive", `
void helper() { noop(); }
void main() {
    helper();
    execl("/bin/a", "a");
    seteuid(0);
    helper();
}`, false},
		{"recursive violation", `
void rec(int n) { if (n) { rec(n-1); } execl("/bin/sh", "sh"); }
void main() { seteuid(0); rec(3); }`, true},
		{"loop zero iterations", `
void main() {
    seteuid(0);
    while (c) { seteuid(getuid()); }
    execl("/bin/sh", "sh");
}`, true},
		{"unreturned callee", `
void spin() { execl("/bin/sh", "sh"); while (1) { noop(); } }
void main() { seteuid(0); spin(); }`, true},
		{"no events at all", `
void main() { puts("hello"); }`, false},
	}
	prop := spec.MustCompile(privilegeSpec)
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			prog, err := minic.Parse(c.src)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := Check(prog, prop, minic.PrivilegeEvents(), "")
			if err != nil {
				t.Fatal(err)
			}
			pres, err := pdm.Check(prog, prop, minic.PrivilegeEvents(), "", core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if mres.Violating != c.want {
				t.Errorf("mops verdict = %v, want %v", mres.Violating, c.want)
			}
			if got := len(pres.Violations) > 0; got != c.want {
				t.Errorf("pdm verdict = %v, want %v", got, c.want)
			}
		})
	}
}

// The interprocedural chop: post* ∩ pre* marks exactly the statements on
// violating runs. On a single-function program it must agree with
// pdm.DangerPoints; across calls it is strictly more informative.
func TestChopLines(t *testing.T) {
	prop := spec.MustCompile(privilegeSpec)
	src := `
void main() {
    seteuid(0);
    if (cond) {
        seteuid(getuid());
    } else {
        log_attempt();
    }
    execl("/bin/sh", "sh");
}
`
	prog := minic.MustParse(src)
	lines, err := ChopLines(prog, prop, minic.PrivilegeEvents(), "")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 7, 9} // seteuid(0), log_attempt, execl — not the drop
	if len(lines) != len(want) {
		t.Fatalf("chop = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("chop = %v, want %v", lines, want)
		}
	}
	// Agrees with the constraint engine's intraprocedural chop.
	plines, err := pdm.DangerLines(prog, prop, minic.PrivilegeEvents(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(plines) != len(lines) {
		t.Fatalf("pdm chop %v vs mops chop %v", plines, lines)
	}
	for i := range lines {
		if plines[i] != lines[i] {
			t.Fatalf("pdm chop %v vs mops chop %v", plines, lines)
		}
	}
}

// Interprocedural chop: every statement of the violating run is marked,
// including those inside helpers the run passes through; statements only
// on safe branches are not.
func TestChopLinesInterprocedural(t *testing.T) {
	prop := spec.MustCompile(privilegeSpec)
	src := `
void cleanup() {
    puts("cleaned");
}
void main() {
    seteuid(0);
    if (c) {
        seteuid(getuid());
        cleanup();
        execl("/bin/a", "a");
    } else {
        execl("/bin/sh", "sh");
    }
}
`
	prog := minic.MustParse(src)
	lines, err := ChopLines(prog, prop, minic.PrivilegeEvents(), "")
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, l := range lines {
		has[l] = true
	}
	// The violating run: seteuid(0) at 6, execl at 12.
	if !has[6] || !has[12] {
		t.Errorf("chop %v should include lines 6 and 12", lines)
	}
	// The dropped branch (8,9,10) and cleanup's body (3) are safe.
	for _, l := range []int{3, 8, 9, 10} {
		if has[l] {
			t.Errorf("chop %v must not include safe line %d", lines, l)
		}
	}
	// A helper ON the violating run IS included.
	src2 := `
void danger() {
    execl("/bin/sh", "sh");
}
void main() {
    seteuid(0);
    danger();
}
`
	lines2, err := ChopLines(minic.MustParse(src2), prop, minic.PrivilegeEvents(), "")
	if err != nil {
		t.Fatal(err)
	}
	has2 := map[int]bool{}
	for _, l := range lines2 {
		has2[l] = true
	}
	if !has2[3] || !has2[6] || !has2[7] {
		t.Errorf("chop %v should include 3, 6 and 7", lines2)
	}
	// Safe program: empty chop.
	safe := minic.MustParse(`
void main() {
    seteuid(0);
    seteuid(getuid());
    execl("/bin/sh", "sh");
}
`)
	lines3, err := ChopLines(safe, prop, minic.PrivilegeEvents(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines3) != 0 {
		t.Errorf("safe chop = %v, want empty", lines3)
	}
}

func TestPreStarBasics(t *testing.T) {
	// <0,a> → <1,ε>: config <0, a w> is in pre*(control 1) for any w;
	// config <0, b> is not.
	pds := &PDS{NumControls: 2, NumSymbols: 2}
	pds.AddPop(0, 0, 1)
	pre := NewPreStar(pds, 1)
	if !pre.InPre(0, []int{0}) {
		t.Error("<0,a> pops straight to control 1")
	}
	if !pre.InPre(0, []int{0, 1}) {
		t.Error("<0,a b> reaches control 1 with b left")
	}
	if pre.InPre(0, []int{1}) {
		t.Error("<0,b> has no rule")
	}
	if !pre.InPre(1, []int{1, 1}) {
		t.Error("the target with any stack is trivially in pre*")
	}
}
