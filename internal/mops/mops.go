// Package mops reimplements the baseline pushdown model checker that the
// paper compares against in §8 (Table 1): MOPS by Chen, Dean and Wagner.
// The program is modeled as a pushdown system whose control states are the
// states of the property automaton and whose stack records the return
// addresses of unreturned calls; reachability of an accepting control
// state is computed with the canonical post* P-automaton saturation
// procedure (Bouajjani/Esparza/Maler 1997; Schwoon 2002).
//
// This engine and the regularly-annotated-set-constraint engine (package
// pdm) answer the same question on the same programs, which is exactly the
// comparison Table 1 reports.
package mops

import (
	"fmt"
	"sort"

	"rasc/internal/dfa"
	"rasc/internal/minic"
	"rasc/internal/spec"
)

// ruleKind classifies PDS rules.
type ruleKind int

const (
	rulePop  ruleKind = iota // <p,γ> → <p',ε>   (function return)
	ruleStep                 // <p,γ> → <p',γ'>  (intraprocedural step)
	rulePush                 // <p,γ> → <p',γ'γ''> (call: push return addr)
)

type rule struct {
	kind   ruleKind
	p2     int
	g2, g3 int
}

type ruleKey struct {
	p int
	g int
}

// PDS is a pushdown system over int control states and int stack symbols.
type PDS struct {
	NumControls int
	NumSymbols  int
	Rules       map[ruleKey][]rule
}

// AddPop adds <p,γ> → <p2,ε>.
func (s *PDS) AddPop(p, g, p2 int) { s.add(p, g, rule{rulePop, p2, -1, -1}) }

// AddStep adds <p,γ> → <p2,γ2>.
func (s *PDS) AddStep(p, g, p2, g2 int) { s.add(p, g, rule{ruleStep, p2, g2, -1}) }

// AddPush adds <p,γ> → <p2,γ2 γ3>.
func (s *PDS) AddPush(p, g, p2, g2, g3 int) { s.add(p, g, rule{rulePush, p2, g2, g3}) }

func (s *PDS) add(p, g int, r rule) {
	if s.Rules == nil {
		s.Rules = map[ruleKey][]rule{}
	}
	k := ruleKey{p, g}
	s.Rules[k] = append(s.Rules[k], r)
}

const epsSym = -1

type trans struct {
	from, sym, to int
}

// PostStar computes the post* P-automaton for the single initial
// configuration <p0, g0>. The returned automaton accepts exactly the
// stacks w such that <p, w> is reachable, reading w from state p to the
// final state.
type PostStar struct {
	pds   *PDS
	final int
	// mid[p2<<32|g2] = intermediate state for push rules.
	mid map[int64]int
	// numStates counts control + mid + final states.
	numStates int
	rel       map[trans]bool
	out       [][]struct{ sym, to int }
	epsInto   [][]int
}

// NewPostStar saturates post* from <p0, g0>.
func NewPostStar(pds *PDS, p0, g0 int) *PostStar {
	ps := &PostStar{pds: pds, mid: map[int64]int{}, rel: map[trans]bool{}}
	ps.numStates = pds.NumControls
	// Pre-create mid states for every push rule head.
	for _, rs := range pds.Rules {
		for _, r := range rs {
			if r.kind == rulePush {
				key := int64(r.p2)<<32 | int64(r.g2)
				if _, ok := ps.mid[key]; !ok {
					ps.mid[key] = ps.numStates
					ps.numStates++
				}
			}
		}
	}
	ps.final = ps.numStates
	ps.numStates++
	ps.out = make([][]struct{ sym, to int }, ps.numStates)
	ps.epsInto = make([][]int, ps.numStates)

	var work []trans
	add := func(t trans) {
		if ps.rel[t] {
			return
		}
		ps.rel[t] = true
		work = append(work, t)
	}
	add(trans{p0, g0, ps.final})

	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if t.sym != epsSym {
			for _, r := range pds.Rules[ruleKey{t.from, t.sym}] {
				switch r.kind {
				case rulePop:
					add(trans{r.p2, epsSym, t.to})
				case ruleStep:
					add(trans{r.p2, r.g2, t.to})
				case rulePush:
					m := ps.mid[int64(r.p2)<<32|int64(r.g2)]
					add(trans{r.p2, r.g2, m})
					add(trans{m, r.g3, t.to})
				}
			}
			// Earlier ε-transitions into t.from simulate this edge.
			for _, p2 := range ps.epsInto[t.from] {
				add(trans{p2, t.sym, t.to})
			}
			ps.out[t.from] = append(ps.out[t.from], struct{ sym, to int }{t.sym, t.to})
		} else {
			ps.epsInto[t.to] = append(ps.epsInto[t.to], t.from)
			for _, e := range ps.out[t.to] {
				add(trans{t.from, e.sym, e.to})
			}
		}
	}
	return ps
}

// adj returns the full adjacency of the saturated automaton, including
// ε-transitions.
func (ps *PostStar) adj() [][]int {
	out := make([][]int, ps.numStates)
	for t := range ps.rel {
		out[t.from] = append(out[t.from], t.to)
	}
	return out
}

// Reachable reports whether some configuration with control state p is
// reachable (p can read some stack, possibly empty, to the final state).
func (ps *PostStar) Reachable(p int) bool {
	adj := ps.adj()
	seen := make([]bool, ps.numStates)
	stack := []int{p}
	seen[p] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == ps.final {
			return true
		}
		for _, to := range adj[s] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// TopSymbols returns the stack-top symbols γ of reachable configurations
// with control state p: transitions (p, γ, q) where q reaches the final
// state.
func (ps *PostStar) TopSymbols(p int) []int {
	canFinish := ps.coReach()
	set := map[int]bool{}
	for _, e := range ps.out[p] {
		if e.sym != epsSym && canFinish[e.to] {
			set[e.sym] = true
		}
	}
	out := make([]int, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// coReach marks states that can reach the final state (the final state
// itself counts, and a state with an accepting run of length ≥ 0).
func (ps *PostStar) coReach() []bool {
	rev := make([][]int, ps.numStates)
	for t := range ps.rel {
		rev[t.to] = append(rev[t.to], t.from)
	}
	seen := make([]bool, ps.numStates)
	stack := []int{ps.final}
	seen[ps.final] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// NumTrans returns the number of saturated transitions, a work measure.
func (ps *PostStar) NumTrans() int { return len(ps.rel) }

// Result is the outcome of a MOPS-style check.
type Result struct {
	// Violating reports whether an accepting (error) control state is
	// reachable.
	Violating bool
	// ErrorNodes are CFG node ids at the top of the stack in error
	// configurations (the program points in the error state), ascending.
	ErrorNodes []int
	// Trans is the size of the saturated P-automaton.
	Trans int
}

// Check model-checks prog against the property with the post*-saturation
// engine. Parametric properties are not supported (MOPS instantiates
// properties per resource by hand; see §6.4).
func Check(prog *minic.Program, prop *spec.Property, events *minic.EventMap, entry string) (*Result, error) {
	if entry == "" {
		entry = "main"
	}
	entryDef, ok := prog.ByName[entry]
	if !ok {
		return nil, fmt.Errorf("mops: entry function %q not defined", entry)
	}
	entry = entryDef.Name // resolve aliases to the canonical name
	if prop.IsParametric() {
		return nil, fmt.Errorf("mops: parametric properties unsupported by the baseline checker")
	}
	pds, cfg, err := buildPDS(prog, prop, events)
	if err != nil {
		return nil, err
	}
	m := prop.Machine
	_ = cfg

	ps := NewPostStar(pds, int(m.Start), cfg.Entry[entry])
	res := &Result{Trans: ps.NumTrans()}
	errSet := map[int]bool{}
	for q := 0; q < m.NumStates; q++ {
		if !m.Accept[q] {
			continue
		}
		if ps.Reachable(q) {
			res.Violating = true
			for _, g := range ps.TopSymbols(q) {
				errSet[g] = true
			}
		}
	}
	for g := range errSet {
		res.ErrorNodes = append(res.ErrorNodes, g)
	}
	sort.Ints(res.ErrorNodes)
	return res, nil
}

// buildPDS constructs the pushdown system of a program for a property,
// classifying each CFG node exactly like the constraint engine (§6.1).
func buildPDS(prog *minic.Program, prop *spec.Property, events *minic.EventMap) (*PDS, *minic.CFG, error) {
	cfg := minic.MustBuild(prog)
	m := prop.Machine
	pds := &PDS{NumControls: m.NumStates, NumSymbols: len(cfg.Nodes)}
	for _, n := range cfg.Nodes {
		var sym dfa.Symbol = -1
		isCall := false
		var callee string
		if n.Kind == minic.NAction {
			if ev, ok := events.Match(n.Call, n.AssignTo); ok {
				s, ok := prop.Symbol(ev.Symbol)
				if !ok {
					return nil, nil, fmt.Errorf("mops: event symbol %q not in property alphabet", ev.Symbol)
				}
				sym = s
			} else if def, defined := prog.ByName[n.Call.Name]; defined {
				isCall = true
				callee = def.Name // resolve aliases to the canonical name
			}
		}
		switch {
		case isCall:
			for _, succ := range n.Succs {
				for q := 0; q < m.NumStates; q++ {
					pds.AddPush(q, n.ID, q, cfg.Entry[callee], succ)
				}
			}
		case n.Kind == minic.NExit:
			for q := 0; q < m.NumStates; q++ {
				pds.AddPop(q, n.ID, q)
			}
		default:
			for _, succ := range n.Succs {
				for q := 0; q < m.NumStates; q++ {
					q2 := q
					if sym >= 0 {
						q2 = int(m.Delta[q][sym])
					}
					pds.AddStep(q, n.ID, q2, succ)
				}
			}
		}
	}
	return pds, cfg, nil
}

// ChopLines computes the interprocedural danger chop of a program: the
// source lines of action statements that lie on some violating run
// (post*-reachable configurations that are in pre* of an accepting
// control state). The counterpart of pdm.DangerPoints, exact across
// calls and returns.
func ChopLines(prog *minic.Program, prop *spec.Property, events *minic.EventMap, entry string) ([]int, error) {
	if entry == "" {
		entry = "main"
	}
	entryDef, ok := prog.ByName[entry]
	if !ok {
		return nil, fmt.Errorf("mops: entry function %q not defined", entry)
	}
	entry = entryDef.Name // resolve aliases to the canonical name
	if prop.IsParametric() {
		return nil, fmt.Errorf("mops: parametric properties unsupported")
	}
	pds, cfg, err := buildPDS(prog, prop, events)
	if err != nil {
		return nil, err
	}
	post := NewPostStar(pds, int(prop.Machine.Start), cfg.Entry[entry])
	nodeSet := map[int]bool{}
	for q := 0; q < prop.Machine.NumStates; q++ {
		if !prop.Machine.Accept[q] {
			continue
		}
		pre := NewPreStar(pds, q)
		for _, n := range DangerNodes(pds, post, pre) {
			nodeSet[n] = true
		}
	}
	seen := map[int]bool{}
	var lines []int
	for id := range nodeSet {
		n := cfg.Nodes[id]
		if n.Kind != minic.NAction || seen[n.Line] {
			continue
		}
		seen[n.Line] = true
		lines = append(lines, n.Line)
	}
	sort.Ints(lines)
	return lines, nil
}
