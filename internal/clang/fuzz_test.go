package clang

import (
	"testing"

	"rasc/internal/core"
)

// FuzzLoad checks the textual constraint language front end is total.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		example24,
		"automaton { accept start state A : | g -> A; }\ncons c 0;\nc <= X @ g;\nquery c in X;",
		"automaton { }",
		"automaton { accept start state A : | g -> A; }\nproj(o, 1, X) <= Y;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fl, err := Load(src, core.Options{})
		if err != nil {
			return
		}
		if _, err := fl.Run(); err != nil {
			return
		}
	})
}
