package clang

import (
	"os"
	"testing"

	"rasc/internal/core"
)

// The shipped sample file (also used to demo cmd/rasc) loads and answers
// as documented.
func TestExample24Fixture(t *testing.T) {
	src, err := os.ReadFile("testdata/example24.rasc")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Load(string(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d query results", len(res))
	}
	for i, r := range res {
		if !r.Answer {
			t.Errorf("query %d (%s in %s) = false, want true", i, r.Query.Const, r.Query.Var)
		}
	}
	if !f.Sys.Consistent() {
		t.Error("fixture should be consistent")
	}
}
