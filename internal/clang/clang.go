// Package clang implements a small textual language for regularly
// annotated set constraint systems, used by cmd/rasc. A file declares the
// property automaton (in the spec DSL of §8), constructors, constraints
// and queries:
//
//	automaton {
//	    start state Off : | g -> On;
//	    accept state On : | k -> Off;
//	}
//
//	cons c 0;
//	cons o 1;
//
//	c <= W @ g;          # c ⊆^g W
//	o(W) <= X @ g;       # o(W) ⊆^g X
//	X <= o(Y);           # X ⊆ o(Y)
//	o(Y) <= Z;
//	proj(o, 1, X) <= P;  # o^-1(X) ⊆ P (1-based component)
//
//	query c in Z;        # entailment with an accepting annotation
//	query reaches c in Z;# any annotation
//
// Annotations after @ are words over the automaton's alphabet; they are
// converted to representative functions at load time.
package clang

import (
	"fmt"
	"strings"

	"rasc/internal/core"
	"rasc/internal/spec"
	"rasc/internal/terms"
)

// File is a parsed constraint file.
type File struct {
	Prop    *spec.Property
	Sys     *core.System
	Sig     *terms.Signature
	Queries []Query

	consts map[string]core.CNode
}

// Query is one query line.
type Query struct {
	// Kind is "entail" (accepting annotation required) or "reaches".
	Kind  string
	Const string
	Var   string
	Line  int
}

// QueryResult pairs a query with its answer.
type QueryResult struct {
	Query  Query
	Answer bool
}

// ParseError reports a syntax or semantic error with a line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("clang:%d: %s", e.Line, e.Msg) }

// Load parses and solves a constraint file.
func Load(src string, opts core.Options) (*File, error) {
	// Extract the automaton block.
	autoSrc, rest, err := splitAutomaton(src)
	if err != nil {
		return nil, err
	}
	prop, err := spec.Compile(autoSrc, spec.Options{})
	if err != nil {
		return nil, fmt.Errorf("clang: automaton: %w", err)
	}
	f := &File{
		Prop:   prop,
		Sig:    terms.NewSignature(),
		consts: map[string]core.CNode{},
	}
	f.Sys = core.NewSystem(core.FuncAlgebra{Mon: prop.Mon}, f.Sig, opts)

	for lineNo, raw := range strings.Split(rest, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			return nil, &ParseError{lineNo + 1, "missing ';'"}
		}
		line = strings.TrimSpace(strings.TrimSuffix(line, ";"))
		if err := f.statement(line, lineNo+1); err != nil {
			return nil, err
		}
	}
	f.Sys.Solve()
	return f, nil
}

// splitAutomaton extracts the "automaton { ... }" block.
func splitAutomaton(src string) (auto, rest string, err error) {
	i := strings.Index(src, "automaton")
	if i < 0 {
		return "", "", &ParseError{1, "missing 'automaton { ... }' block"}
	}
	open := strings.IndexByte(src[i:], '{')
	if open < 0 {
		return "", "", &ParseError{1, "automaton block missing '{'"}
	}
	open += i
	close := strings.IndexByte(src[open:], '}')
	if close < 0 {
		return "", "", &ParseError{1, "automaton block missing '}'"}
	}
	close += open
	return src[open+1 : close], src[:i] + src[close+1:], nil
}

func (f *File) statement(line string, n int) error {
	switch {
	case strings.HasPrefix(line, "cons "):
		fields := strings.Fields(line[5:])
		if len(fields) != 2 {
			return &ParseError{n, "usage: cons <name> <arity>;"}
		}
		arity := 0
		if _, err := fmt.Sscanf(fields[1], "%d", &arity); err != nil {
			return &ParseError{n, "bad arity " + fields[1]}
		}
		if _, err := f.Sig.Declare(fields[0], arity); err != nil {
			return &ParseError{n, err.Error()}
		}
		return nil
	case strings.HasPrefix(line, "query "):
		q := strings.TrimSpace(line[6:])
		kind := "entail"
		if strings.HasPrefix(q, "reaches ") {
			kind = "reaches"
			q = strings.TrimSpace(q[8:])
		}
		parts := strings.Split(q, " in ")
		if len(parts) != 2 {
			return &ParseError{n, "usage: query [reaches] <const> in <var>;"}
		}
		f.Queries = append(f.Queries, Query{
			Kind:  kind,
			Const: strings.TrimSpace(parts[0]),
			Var:   strings.TrimSpace(parts[1]),
			Line:  n,
		})
		return nil
	default:
		return f.constraint(line, n)
	}
}

// constraint parses "<lhs> <= <rhs> [@ word]".
func (f *File) constraint(line string, n int) error {
	annot := core.Annot(f.Prop.Mon.Identity())
	if i := strings.Index(line, "@"); i >= 0 {
		word := strings.Fields(line[i+1:])
		fid, ok := f.Prop.Mon.FuncOfNames(word...)
		if !ok {
			return &ParseError{n, fmt.Sprintf("unknown symbol in annotation %v", word)}
		}
		annot = core.Annot(fid)
		line = strings.TrimSpace(line[:i])
	}
	parts := strings.Split(line, "<=")
	if len(parts) != 2 {
		return &ParseError{n, "expected '<='"}
	}
	lhs, rhs := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])

	switch {
	case strings.HasPrefix(lhs, "proj(") && strings.HasSuffix(lhs, ")"):
		args := splitArgs(lhs[5 : len(lhs)-1])
		if len(args) != 3 {
			return &ParseError{n, "usage: proj(<cons>, <index>, <var>) <= <var>"}
		}
		cid, ok := f.Sig.Lookup(args[0])
		if !ok {
			return &ParseError{n, "unknown constructor " + args[0]}
		}
		idx := 0
		if _, err := fmt.Sscanf(args[1], "%d", &idx); err != nil || idx < 1 || idx > f.Sig.Arity(cid) {
			return &ParseError{n, "bad projection index " + args[1]}
		}
		f.Sys.AddProj(cid, idx-1, f.Sys.Var(args[2]), f.Sys.Var(rhs), annot)
		return nil
	default:
		lcn, lvar, lerr := f.side(lhs, n)
		if lerr != nil {
			return lerr
		}
		rcn, rvar, rerr := f.side(rhs, n)
		if rerr != nil {
			return rerr
		}
		switch {
		case lcn >= 0 && rcn >= 0:
			f.Sys.AddConsCons(lcn, rcn, annot)
		case lcn >= 0:
			f.Sys.AddLower(lcn, rvar, annot)
		case rcn >= 0:
			f.Sys.AddUpper(lvar, rcn, annot)
		default:
			f.Sys.AddVar(lvar, rvar, annot)
		}
		return nil
	}
}

// side parses a constraint side: a constructor application, a declared
// constant, or a variable. Returns (cnode, -1) or (-1, var).
func (f *File) side(s string, n int) (core.CNode, core.VarID, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return -1, 0, &ParseError{n, "missing ')'"}
		}
		name := strings.TrimSpace(s[:i])
		cid, ok := f.Sig.Lookup(name)
		if !ok {
			return -1, 0, &ParseError{n, "unknown constructor " + name}
		}
		args := splitArgs(s[i+1 : len(s)-1])
		if len(args) != f.Sig.Arity(cid) {
			return -1, 0, &ParseError{n, fmt.Sprintf("%s takes %d args", name, f.Sig.Arity(cid))}
		}
		vars := make([]core.VarID, len(args))
		for j, a := range args {
			vars[j] = f.Sys.Var(a)
		}
		return f.Sys.Cons(cid, vars...), 0, nil
	}
	// Declared zero-ary constructor: a constant.
	if cid, ok := f.Sig.Lookup(s); ok && f.Sig.Arity(cid) == 0 {
		cn := f.Sys.Constant(cid)
		f.consts[s] = cn
		return cn, 0, nil
	}
	return -1, f.Sys.Var(s), nil
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

// Run answers the file's queries in order. "query c in X" is the
// accepting entailment of §3.2; "query reaches c in X" asks whether c
// occurs in X at all — at any constructor depth and along partially
// matched paths (PN reachability).
func (f *File) Run() ([]QueryResult, error) {
	var out []QueryResult
	pnCache := map[core.CNode]*core.PNResult{}
	for _, q := range f.Queries {
		cid, ok := f.Sig.Lookup(q.Const)
		if !ok || f.Sig.Arity(cid) != 0 {
			return nil, &ParseError{q.Line, "query needs a declared constant: " + q.Const}
		}
		cn := f.Sys.Constant(cid)
		v := f.Sys.Var(q.Var)
		var ans bool
		if q.Kind == "reaches" {
			pn, ok := pnCache[cn]
			if !ok {
				pn = f.Sys.PNReach(cn)
				pnCache[cn] = pn
			}
			ans = len(pn.At(v)) > 0
		} else {
			ans = f.Sys.ConstEntailed(cn, v)
		}
		out = append(out, QueryResult{q, ans})
	}
	return out, nil
}

// Report renders query results and solver diagnostics as text.
func (f *File) Report(results []QueryResult) string {
	var b strings.Builder
	for _, r := range results {
		verb := "in"
		if r.Query.Kind == "reaches" {
			verb = "reaches"
		}
		fmt.Fprintf(&b, "query %s %s %s: %v\n", r.Query.Const, verb, r.Query.Var, r.Answer)
	}
	st := f.Sys.Stats()
	fmt.Fprintf(&b, "-- %d vars, %d constructor nodes, %d facts, %d edges, |F|=%d",
		st.Vars, st.ConsNodes, st.Reach, st.Edges, f.Prop.Mon.Size())
	if !f.Sys.Consistent() {
		fmt.Fprintf(&b, ", %d CLASHES", st.Clashes)
	}
	b.WriteString("\n")
	return b.String()
}
