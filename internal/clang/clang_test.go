package clang

import (
	"strings"
	"testing"

	"rasc/internal/core"
)

// Example 2.4 in the textual language.
const example24 = `
automaton {
    start state Off :
        | g -> On;
    accept state On :
        | k -> Off;
}

cons c 0;
cons o 1;

c <= W @ g;
o(W) <= X @ g;
X <= o(Y);
o(Y) <= Z;

query c in W;        # c is in W with word g: accepting
query c in Y;        # derived W ⊆^g Y
query reaches c in Y;
`

func load(t *testing.T, src string) *File {
	t.Helper()
	f, err := Load(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExample24File(t *testing.T) {
	f := load(t, example24)
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i, want := range []bool{true, true, true} {
		if res[i].Answer != want {
			t.Errorf("query %d = %v, want %v", i, res[i].Answer, want)
		}
	}
	rep := f.Report(res)
	if !strings.Contains(rep, "query c in W: true") {
		t.Errorf("report = %q", rep)
	}
}

func TestProjection(t *testing.T) {
	f := load(t, `
automaton {
    start state Off : | g -> On;
    accept state On;
}
cons a 0;
cons pair 2;
a <= X @ g;
pair(X, X2) <= P;
proj(pair, 1, P) <= Out;
query a in Out;
`)
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Answer {
		t.Error("projection flow lost")
	}
}

func TestNonAcceptingQuery(t *testing.T) {
	f := load(t, `
automaton {
    start state Off : | g -> On;
    accept state On : | k -> Off;
}
cons c 0;
c <= X @ g;
X <= Y @ k;
query c in Y;
query reaches c in Y;
`)
	res, _ := f.Run()
	if res[0].Answer {
		t.Error("g·k is not accepting")
	}
	if !res[1].Answer {
		t.Error("c still reaches Y")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"c <= X;", "missing 'automaton"},
		{"automaton { accept start state A : | g -> A; }\nc <= X", "missing ';'"},
		{"automaton { accept start state A : | g -> A; }\ncons c;", "usage: cons"},
		{"automaton { accept start state A : | g -> A; }\ncons c 0;\nc <= X @ zz;", "unknown symbol"},
		{"automaton { accept start state A : | g -> A; }\nX Y;", "expected '<='"},
		{"automaton { accept start state A : | g -> A; }\nf(X) <= Y;", "unknown constructor"},
		{"automaton { accept start state A : | g -> A; }\ncons f 2;\nf(X) <= Y;", "takes 2 args"},
		{"automaton { accept start state A : | g -> A; }\nproj(f, 1, X) <= Y;", "unknown constructor"},
		{"automaton { bogus }", "automaton:"},
	}
	for _, c := range cases {
		if _, err := Load(c.src, core.Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Load(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestQueryNeedsConstant(t *testing.T) {
	f := load(t, `
automaton { accept start state A : | g -> A; }
cons c 0;
X <= Y;
query nosuch in Y;
`)
	if _, err := f.Run(); err == nil {
		t.Error("query on undeclared constant should error")
	}
}

func TestClashReport(t *testing.T) {
	f := load(t, `
automaton { accept start state A : | g -> A; }
cons c 1;
cons d 1;
c(X) <= V;
V <= d(Y);
`)
	rep := f.Report(nil)
	if !strings.Contains(rep, "CLASHES") {
		t.Errorf("report should mention clashes: %q", rep)
	}
}

func TestConsConsDirect(t *testing.T) {
	f := load(t, `
automaton { accept start state A : | g -> A; }
cons a 0;
cons o 1;
a <= X @ g;
o(X) <= o(Y);
query a in Y;
`)
	res, _ := f.Run()
	if !res[0].Answer {
		t.Error("direct constructor-constructor constraint lost the component flow")
	}
}
