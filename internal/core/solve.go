package core

import "rasc/internal/terms"

// AddVar adds the constraint x ⊆^a y.
func (s *System) AddVar(x, y VarID, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawVarVar, x: x, y: y, a: a})
	s.addEdge(s.find(x), s.find(y), a)
}

// AddVarE adds the unannotated constraint x ⊆ y.
func (s *System) AddVarE(x, y VarID) { s.AddVar(x, y, s.Alg.Identity()) }

// AddLower adds the constraint cn ⊆^a y (a constructed lower bound).
func (s *System) AddLower(cn CNode, y VarID, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawLower, cn: cn, y: y, a: a})
	s.addReach(s.find(y), cn, a, parent{fromVar: -1, step: stepSeed})
}

// AddLowerE adds cn ⊆ y.
func (s *System) AddLowerE(cn CNode, y VarID) { s.AddLower(cn, y, s.Alg.Identity()) }

// AddUpper adds the constraint x ⊆^a cn (a constructed upper bound).
func (s *System) AddUpper(x VarID, cn CNode, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawUpper, x: x, cn: cn, a: a})
	x = s.find(x)
	k := edgeKey{int32(x), int32(cn), a}
	if _, dup := s.sinkSeen[k]; dup {
		return
	}
	s.sinkSeen[k] = struct{}{}
	s.vars[x].sinks = append(s.vars[x].sinks, sinkRef{cn, a})
	// Meet with sources already known to reach x.
	for rk := range s.vars[x].reach {
		s.meet(rk.cn, s.Alg.Then(rk.a, a), cn)
	}
}

// AddUpperE adds x ⊆ cn.
func (s *System) AddUpperE(x VarID, cn CNode) { s.AddUpper(x, cn, s.Alg.Identity()) }

// AddConsCons adds the constraint l ⊆^a r between two constructor
// expressions. It is decomposed through a fresh variable
// (l ⊆^a W, W ⊆ r), which has the same solutions, resolves immediately
// through the structural rule, and keeps the recorded constraint system
// in the form the unidirectional solvers consume.
func (s *System) AddConsCons(l, r CNode, a Annot) {
	w := s.Fresh("conscons")
	s.AddLower(l, w, a)
	s.AddUpperE(w, r)
}

// AddProj adds the projection constraint c^-idx(x) ⊆^a z.
func (s *System) AddProj(c terms.ConsID, idx int, x, z VarID, a Annot) {
	if idx < 0 || idx >= s.Sig.Arity(c) {
		panic("core: projection index out of range")
	}
	if s.Sig.VarianceOf(c, idx) == terms.Contravariant {
		panic("core: projection on a contravariant argument")
	}
	s.raw = append(s.raw, rawConstraint{kind: rawProj, cons: c, idx: idx, x: x, y: z, a: a})
	x, z = s.find(x), s.find(z)

	if !s.opts.NoProjMerge {
		// Projection merging: all projections of (x, c, idx) share one
		// intermediate variable, so each source reaching x fires the
		// projection rule once instead of once per sink.
		if s.vars[x].projMerge == nil {
			s.vars[x].projMerge = make(map[projMergeKey]VarID)
		}
		key := projMergeKey{c, idx}
		w, ok := s.vars[x].projMerge[key]
		if !ok {
			w = s.Fresh("projmerge")
			s.vars[x].projMerge[key] = w
			s.addProjDirect(x, projRef{c, idx, w, s.Alg.Identity()})
		}
		s.addEdge(s.find(w), z, a)
		return
	}
	s.addProjDirect(x, projRef{c, idx, z, a})
}

// AddProjE adds c^-idx(x) ⊆ z.
func (s *System) AddProjE(c terms.ConsID, idx int, x, z VarID) {
	s.AddProj(c, idx, x, z, s.Alg.Identity())
}

func (s *System) addProjDirect(x VarID, pr projRef) {
	k := projKey{x, pr.cons, pr.idx, pr.to, pr.a}
	if _, dup := s.projSeen[k]; dup {
		return
	}
	s.projSeen[k] = struct{}{}
	s.vars[x].projs = append(s.vars[x].projs, pr)
	for rk := range s.vars[x].reach {
		if s.cons[rk.cn].cons == pr.cons {
			s.addEdge(s.find(s.cons[rk.cn].args[pr.idx]), s.find(pr.to), s.Alg.Then(rk.a, pr.a))
		}
	}
}

// addEdge inserts the (representative-level) edge x ⊆^a y, propagating
// sources already reaching x and running cycle elimination on ε edges.
func (s *System) addEdge(x, y VarID, a Annot) {
	if s.opts.PruneDead && s.Alg.Dead(a) {
		return
	}
	x, y = s.find(x), s.find(y)
	ident := a == s.Alg.Identity()
	if x == y && ident {
		return
	}
	k := edgeKey{int32(x), int32(y), a}
	if _, dup := s.edgeSeen[k]; dup {
		return
	}
	s.edgeSeen[k] = struct{}{}
	s.vars[x].out = append(s.vars[x].out, edge{y, a})
	s.nEdges++

	for rk, p := range s.vars[x].reach {
		_ = p
		s.addReach(y, rk.cn, s.Alg.Then(rk.a, a), parent{fromVar: x, annot: rk.a, step: stepEdge})
	}

	if ident && !s.opts.NoCycleElim {
		s.tryCollapse(x, y)
	}
}

// tryCollapse looks for an ε-path from y back to x (bounded DFS); if one
// exists, the whole cycle is collapsed into one representative.
func (s *System) tryCollapse(x, y VarID) {
	x, y = s.find(x), s.find(y)
	if x == y {
		return
	}
	ident := s.Alg.Identity()
	budget := s.opts.CycleBudget
	prev := map[VarID]VarID{y: y}
	stack := []VarID{y}
	found := false
	for len(stack) > 0 && budget > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		for _, e := range s.vars[v].out {
			if e.a != ident {
				continue
			}
			t := s.find(e.to)
			if t == x {
				prev[x] = v
				found = true
				stack = nil
				break
			}
			if _, seen := prev[t]; !seen {
				prev[t] = v
				stack = append(stack, t)
			}
		}
	}
	if !found {
		return
	}
	// Collapse the path y → … → x (plus the new edge x → y) into x.
	var cycle []VarID
	for v := prev[x]; ; v = prev[v] {
		cycle = append(cycle, v)
		if v == y {
			break
		}
	}
	for _, v := range cycle {
		s.union(x, v)
	}
}

// union merges loser into winner, replaying the loser's constraints and
// facts on the representative.
func (s *System) union(winner, loser VarID) {
	winner, loser = s.find(winner), s.find(loser)
	if winner == loser {
		return
	}
	s.nCollapsed++
	// Detach the loser's state first so replay sees the merged var.
	ld := s.vars[loser]
	s.vars[loser].out = nil
	s.vars[loser].sinks = nil
	s.vars[loser].projs = nil
	s.vars[loser].reach = nil
	s.vars[loser].projMerge = nil
	s.vars[loser].uf = winner

	for _, e := range ld.out {
		s.addEdge(winner, s.find(e.to), e.a)
	}
	for _, sk := range ld.sinks {
		k := edgeKey{int32(winner), int32(sk.cn), sk.a}
		if _, dup := s.sinkSeen[k]; !dup {
			s.sinkSeen[k] = struct{}{}
			s.vars[winner].sinks = append(s.vars[winner].sinks, sk)
			for rk := range s.vars[winner].reach {
				s.meet(rk.cn, s.Alg.Then(rk.a, sk.a), sk.cn)
			}
		}
	}
	for _, pr := range ld.projs {
		s.addProjDirect(winner, pr)
	}
	for rk, p := range ld.reach {
		if p.step != stepSeed && p.fromVar >= 0 {
			p = parent{fromVar: p.fromVar, annot: p.annot, step: stepMerged}
		}
		s.addReach(winner, rk.cn, rk.a, p)
	}
	for key, w := range ld.projMerge {
		if s.vars[winner].projMerge == nil {
			s.vars[winner].projMerge = make(map[projMergeKey]VarID)
		}
		if _, exists := s.vars[winner].projMerge[key]; !exists {
			s.vars[winner].projMerge[key] = w
		}
	}
	// Constructor-argument occurrences must follow the representative so
	// that PN-reachability wrap steps see them.
	s.vars[winner].argOf = append(s.vars[winner].argOf, ld.argOf...)
	s.vars[loser].argOf = nil
}

// addReach records that constructor expression cn reaches v with composed
// annotation a, and schedules rule application.
func (s *System) addReach(v VarID, cn CNode, a Annot, par parent) {
	if s.opts.PruneDead && s.Alg.Dead(a) {
		return
	}
	v = s.find(v)
	k := reachKey{cn, a}
	if _, dup := s.vars[v].reach[k]; dup {
		return
	}
	if s.opts.NoWitness {
		par = parent{fromVar: -1, step: par.step}
	}
	s.vars[v].reach[k] = par
	s.nReach++
	s.cons[cn].occur = append(s.cons[cn].occur, varAnnot{v, a})
	s.work = append(s.work, workItem{v, cn, a})
}

// meet applies the structural/clash rule to a flow src ⊆^h dst between
// constructor expressions. Covariant components flow forward with the
// composed annotation; contravariant components (Banshee-style, e.g. the
// "set" side of a points-to ref) flow backward. The annotated semantics
// (§2.3) does not define appending a word to a contravariant component,
// so a non-ε flow into a contravariant position is reported as a clash.
func (s *System) meet(src CNode, h Annot, dst CNode) {
	sd, dd := &s.cons[src], &s.cons[dst]
	if sd.cons != dd.cons {
		s.recordClash(Clash{src, dst, h})
		return
	}
	for i := range sd.args {
		if s.Sig.VarianceOf(sd.cons, i) == terms.Contravariant {
			if h != s.Alg.Identity() {
				s.recordClash(Clash{src, dst, h})
				continue
			}
			s.addEdge(s.find(dd.args[i]), s.find(sd.args[i]), h)
			continue
		}
		s.addEdge(s.find(sd.args[i]), s.find(dd.args[i]), h)
	}
}

func (s *System) recordClash(c Clash) {
	if _, dup := s.clashSeen[c]; !dup {
		s.clashSeen[c] = struct{}{}
		s.clashes = append(s.clashes, c)
	}
}

// Solve drains the work queue, running resolution to a fixed point. It is
// idempotent and may be interleaved with constraint additions (online
// solving). It returns the number of facts processed.
func (s *System) Solve() int {
	n := 0
	for len(s.work) > 0 {
		it := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		n++
		v := s.find(it.v)
		// Snapshot the lists: they may grow while we iterate, and growth
		// is handled by the inserting call itself.
		out := s.vars[v].out
		sinks := s.vars[v].sinks
		projs := s.vars[v].projs
		for _, e := range out {
			s.addReach(s.find(e.to), it.cn, s.Alg.Then(it.a, e.a), parent{fromVar: v, annot: it.a, step: stepEdge})
		}
		for _, sk := range sinks {
			s.meet(it.cn, s.Alg.Then(it.a, sk.a), sk.cn)
		}
		cd := s.cons[it.cn]
		for _, pr := range projs {
			if cd.cons == pr.cons {
				s.addEdge(s.find(cd.args[pr.idx]), s.find(pr.to), s.Alg.Then(it.a, pr.a))
			}
		}
	}
	return n
}
