package core

import "rasc/internal/terms"

// AddVar adds the constraint x ⊆^a y.
func (s *System) AddVar(x, y VarID, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawVarVar, x: x, y: y, a: a})
	s.addEdge(s.find(x), s.find(y), a)
}

// AddVarE adds the unannotated constraint x ⊆ y.
func (s *System) AddVarE(x, y VarID) { s.AddVar(x, y, s.Alg.Identity()) }

// AddLower adds the constraint cn ⊆^a y (a constructed lower bound).
func (s *System) AddLower(cn CNode, y VarID, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawLower, cn: cn, y: y, a: a})
	s.addReach(s.find(y), cn, a, parent{fromVar: -1, step: stepSeed})
}

// AddLowerE adds cn ⊆ y.
func (s *System) AddLowerE(cn CNode, y VarID) { s.AddLower(cn, y, s.Alg.Identity()) }

// AddUpper adds the constraint x ⊆^a cn (a constructed upper bound).
func (s *System) AddUpper(x VarID, cn CNode, a Annot) {
	s.raw = append(s.raw, rawConstraint{kind: rawUpper, x: x, cn: cn, a: a})
	x = s.find(x)
	if !s.sinkSeen.add(edgeKey{int32(x), int32(cn), a}) {
		return
	}
	s.vars[x].sinks = append(s.vars[x].sinks, sinkRef{cn, a})
	// Meet with sources already known to reach x. Snapshot the fact list:
	// a meet may derive new facts at x, and those are propagated to this
	// sink when their own work items drain.
	facts := s.vars[x].reach.facts
	// Compositions are counted per batch, not per call: wrapping Alg.Then
	// in a counting helper pushes it past the inlining budget and costs a
	// call frame per composition even with metrics off.
	if m := s.metrics; m != nil {
		m.Compositions.Add(int64(len(facts)))
	}
	for i := range facts {
		s.meet(facts[i].cn, s.Alg.Then(facts[i].a, a), cn)
	}
}

// AddUpperE adds x ⊆ cn.
func (s *System) AddUpperE(x VarID, cn CNode) { s.AddUpper(x, cn, s.Alg.Identity()) }

// AddConsCons adds the constraint l ⊆^a r between two constructor
// expressions. It is decomposed through a fresh variable
// (l ⊆^a W, W ⊆ r), which has the same solutions, resolves immediately
// through the structural rule, and keeps the recorded constraint system
// in the form the unidirectional solvers consume.
func (s *System) AddConsCons(l, r CNode, a Annot) {
	w := s.Fresh("conscons")
	s.AddLower(l, w, a)
	s.AddUpperE(w, r)
}

// AddProj adds the projection constraint c^-idx(x) ⊆^a z.
func (s *System) AddProj(c terms.ConsID, idx int, x, z VarID, a Annot) {
	if idx < 0 || idx >= s.Sig.Arity(c) {
		panic("core: projection index out of range")
	}
	if s.Sig.VarianceOf(c, idx) == terms.Contravariant {
		panic("core: projection on a contravariant argument")
	}
	s.raw = append(s.raw, rawConstraint{kind: rawProj, cons: c, idx: idx, x: x, y: z, a: a})
	x, z = s.find(x), s.find(z)

	if !s.opts.NoProjMerge {
		// Projection merging: all projections of (x, c, idx) share one
		// intermediate variable, so each source reaching x fires the
		// projection rule once instead of once per sink.
		if s.vars[x].projMerge == nil {
			s.vars[x].projMerge = make(map[projMergeKey]VarID)
		}
		key := projMergeKey{c, idx}
		w, ok := s.vars[x].projMerge[key]
		if !ok {
			w = s.Fresh("projmerge")
			s.vars[x].projMerge[key] = w
			s.addProjDirect(x, projRef{c, idx, w, s.Alg.Identity()})
		}
		s.addEdge(s.find(w), z, a)
		return
	}
	s.addProjDirect(x, projRef{c, idx, z, a})
}

// AddProjE adds c^-idx(x) ⊆ z.
func (s *System) AddProjE(c terms.ConsID, idx int, x, z VarID) {
	s.AddProj(c, idx, x, z, s.Alg.Identity())
}

func (s *System) addProjDirect(x VarID, pr projRef) {
	x = s.find(x)
	if !s.projSeen.add(projKey{x, pr.cons, pr.idx, pr.to, pr.a}) {
		return
	}
	s.vars[x].projs = append(s.vars[x].projs, pr)
	facts := s.vars[x].reach.facts
	m := s.metrics
	for i := range facts {
		if s.cons[facts[i].cn].cons == pr.cons {
			if m != nil {
				m.Compositions.Inc()
			}
			s.addEdge(s.find(s.cons[facts[i].cn].args[pr.idx]), s.find(pr.to), s.Alg.Then(facts[i].a, pr.a))
		}
	}
}

// addEdge inserts the (representative-level) edge x ⊆^a y, propagating
// sources already reaching x and running cycle elimination on ε edges.
func (s *System) addEdge(x, y VarID, a Annot) {
	if s.opts.PruneDead && s.Alg.Dead(a) {
		return
	}
	x, y = s.find(x), s.find(y)
	ident := a == s.Alg.Identity()
	if x == y && ident {
		return
	}
	if !s.edgeSeen.add(edgeKey{int32(x), int32(y), a}) {
		return
	}
	s.vars[x].out = append(s.vars[x].out, edge{y, a})
	s.nEdges++
	facts := s.vars[x].reach.facts
	if m := s.metrics; m != nil {
		m.EdgesAdded.Inc()
		m.Compositions.Add(int64(len(facts)))
	}

	for i := range facts {
		s.addReach(y, facts[i].cn, s.Alg.Then(facts[i].a, a), parent{fromVar: x, annot: facts[i].a, step: stepEdge})
	}

	if ident && !s.opts.NoCycleElim {
		s.tryCollapse(x, y)
	}
}

// tryCollapse looks for an ε-path from y back to x (bounded DFS); if one
// exists, the whole cycle is collapsed into one representative. The DFS
// runs over epoch-stamped scratch arrays kept on the System, so steady-
// state cycle checks allocate nothing.
func (s *System) tryCollapse(x, y VarID) {
	x, y = s.find(x), s.find(y)
	if x == y {
		return
	}
	if len(s.dfsMark) < len(s.vars) {
		mark := make([]uint32, 2*len(s.vars))
		copy(mark, s.dfsMark)
		s.dfsMark = mark
		prev := make([]VarID, 2*len(s.vars))
		copy(prev, s.dfsPrev)
		s.dfsPrev = prev
	}
	s.dfsEpoch++
	if s.dfsEpoch == 0 { // wrapped: stale marks could alias the new epoch
		clear(s.dfsMark)
		s.dfsEpoch = 1
	}
	epoch := s.dfsEpoch
	visit := func(v, from VarID) {
		s.dfsMark[v] = epoch
		s.dfsPrev[v] = from
	}
	seen := func(v VarID) bool { return s.dfsMark[v] == epoch }

	ident := s.Alg.Identity()
	budget := s.opts.CycleBudget
	stack := s.dfsStack[:0]
	visit(y, y)
	stack = append(stack, y)
	found := false
	for len(stack) > 0 && budget > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		for _, e := range s.vars[v].out {
			if e.a != ident {
				continue
			}
			t := s.find(e.to)
			if t == x {
				visit(x, v)
				found = true
				stack = stack[:0]
				break
			}
			if !seen(t) {
				visit(t, v)
				stack = append(stack, t)
			}
		}
	}
	s.dfsStack = stack[:0]
	if !found {
		return
	}
	// Collapse the path y → … → x (plus the new edge x → y) into x.
	var cycle []VarID
	for v := s.dfsPrev[x]; ; v = s.dfsPrev[v] {
		cycle = append(cycle, v)
		if v == y {
			break
		}
	}
	for _, v := range cycle {
		s.union(x, v)
	}
}

// union merges loser into winner, replaying the loser's constraints and
// facts on the representative.
func (s *System) union(winner, loser VarID) {
	winner, loser = s.find(winner), s.find(loser)
	if winner == loser {
		return
	}
	s.nCollapsed++
	if m := s.metrics; m != nil {
		m.CycleElims.Inc()
	}
	// Detach the loser's state first so replay sees the merged var.
	ld := s.vars[loser]
	s.vars[loser].out = nil
	s.vars[loser].sinks = nil
	s.vars[loser].projs = nil
	s.vars[loser].reach = reachSet{}
	s.vars[loser].projMerge = nil
	s.vars[loser].uf = winner

	// Every replay below can re-enter union through cycle elimination
	// (addEdge → tryCollapse) and merge the winner itself into yet
	// another representative. Writes to a detached variable are invisible
	// to the solver, so each block re-resolves the live representative
	// before mutating it.
	for _, e := range ld.out {
		s.addEdge(winner, s.find(e.to), e.a)
	}
	for _, sk := range ld.sinks {
		w := s.find(winner)
		if s.sinkSeen.add(edgeKey{int32(w), int32(sk.cn), sk.a}) {
			s.vars[w].sinks = append(s.vars[w].sinks, sk)
			facts := s.vars[w].reach.facts
			if m := s.metrics; m != nil {
				m.Compositions.Add(int64(len(facts)))
			}
			for i := range facts {
				s.meet(facts[i].cn, s.Alg.Then(facts[i].a, sk.a), sk.cn)
			}
		}
	}
	for _, pr := range ld.projs {
		s.addProjDirect(winner, pr)
	}
	for i := range ld.reach.facts {
		f := ld.reach.facts[i]
		p := f.par
		if p.step != stepSeed && p.fromVar >= 0 {
			p = parent{fromVar: p.fromVar, annot: p.annot, step: stepMerged}
		}
		s.addReach(winner, f.cn, f.a, p)
	}
	for key, w := range ld.projMerge {
		rw := s.find(winner)
		if s.vars[rw].projMerge == nil {
			s.vars[rw].projMerge = make(map[projMergeKey]VarID)
		}
		if _, exists := s.vars[rw].projMerge[key]; !exists {
			s.vars[rw].projMerge[key] = w
		}
	}
	// Constructor-argument occurrences must follow the representative so
	// that PN-reachability wrap steps see them.
	rw := s.find(winner)
	s.vars[rw].argOf = append(s.vars[rw].argOf, ld.argOf...)
	s.vars[loser].argOf = nil
}

// addReach records that constructor expression cn reaches v with composed
// annotation a, and schedules rule application.
func (s *System) addReach(v VarID, cn CNode, a Annot, par parent) {
	if s.opts.PruneDead && s.Alg.Dead(a) {
		return
	}
	v = s.find(v)
	if s.opts.NoWitness {
		par = parent{fromVar: -1, step: par.step}
	}
	if !s.vars[v].reach.insert(cn, a, par) {
		return
	}
	s.nReach++
	s.cons[cn].occur = append(s.cons[cn].occur, varAnnot{v, a})
	s.work = append(s.work, workItem{v, cn, a})
	if m := s.metrics; m != nil {
		m.ReachInserts.Inc()
		m.WorklistPushes.Inc()
		m.WorklistHigh.SetMax(int64(len(s.work)))
	}
}

// meet applies the structural/clash rule to a flow src ⊆^h dst between
// constructor expressions. Covariant components flow forward with the
// composed annotation; contravariant components (Banshee-style, e.g. the
// "set" side of a points-to ref) flow backward. The annotated semantics
// (§2.3) does not define appending a word to a contravariant component,
// so a non-ε flow into a contravariant position is reported as a clash.
func (s *System) meet(src CNode, h Annot, dst CNode) {
	sd, dd := &s.cons[src], &s.cons[dst]
	if sd.cons != dd.cons {
		s.recordClash(Clash{src, dst, h})
		return
	}
	for i := range sd.args {
		if s.Sig.VarianceOf(sd.cons, i) == terms.Contravariant {
			if h != s.Alg.Identity() {
				s.recordClash(Clash{src, dst, h})
				continue
			}
			s.addEdge(s.find(dd.args[i]), s.find(sd.args[i]), h)
			continue
		}
		s.addEdge(s.find(sd.args[i]), s.find(dd.args[i]), h)
	}
}

func (s *System) recordClash(c Clash) {
	if s.clashSeen.add(c) {
		s.clashes = append(s.clashes, c)
		if m := s.metrics; m != nil {
			m.Clashes.Inc()
		}
	}
}

// Solve drains the work queue, running resolution to a fixed point. It is
// idempotent and may be interleaved with constraint additions (online
// solving). It returns the number of facts processed.
func (s *System) Solve() int {
	n := 0
	m := s.metrics
	for len(s.work) > 0 {
		it := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		n++
		v := s.find(it.v)
		// Snapshot the lists: they may grow while we iterate, and growth
		// is handled by the inserting call itself.
		out := s.vars[v].out
		sinks := s.vars[v].sinks
		projs := s.vars[v].projs
		if m != nil {
			m.Compositions.Add(int64(len(out) + len(sinks)))
		}
		for _, e := range out {
			s.addReach(s.find(e.to), it.cn, s.Alg.Then(it.a, e.a), parent{fromVar: v, annot: it.a, step: stepEdge})
		}
		for _, sk := range sinks {
			s.meet(it.cn, s.Alg.Then(it.a, sk.a), sk.cn)
		}
		cd := &s.cons[it.cn]
		for _, pr := range projs {
			if cd.cons == pr.cons {
				if m != nil {
					m.Compositions.Inc()
				}
				s.addEdge(s.find(cd.args[pr.idx]), s.find(pr.to), s.Alg.Then(it.a, pr.a))
			}
		}
	}
	return n
}
